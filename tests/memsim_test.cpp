//===- tests/memsim_test.cpp - Memory hierarchy simulator tests ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "memsim/Cache.h"
#include "memsim/MemoryHierarchy.h"
#include "obs/CycleAccount.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace hds::memsim;
namespace obs = hds::obs;

namespace {

CacheConfig tinyCache() {
  // 4 sets x 2 ways x 32B blocks = 256 bytes.
  return CacheConfig{256, 2, 32};
}

TEST(CacheTest, ConfigGeometry) {
  EXPECT_EQ(tinyCache().numSets(), 4u);
  EXPECT_EQ(CacheConfig::pentiumIIIL1().numSets(), 128u);
  EXPECT_EQ(CacheConfig::pentiumIIIL2().numSets(), 1024u);
}

TEST(CacheTest, MissThenHit) {
  Cache C(tinyCache());
  EXPECT_FALSE(C.access(0x1000));
  C.fill(0x1000, /*IsPrefetch=*/false);
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_EQ(C.stats().Hits, 1u);
  EXPECT_EQ(C.stats().Misses, 1u);
}

TEST(CacheTest, SameBlockDifferentOffsetsHit) {
  Cache C(tinyCache());
  C.fill(0x1000, false);
  EXPECT_TRUE(C.access(0x1001));
  EXPECT_TRUE(C.access(0x101F));
  EXPECT_FALSE(C.contains(0x1020)); // next block
}

TEST(CacheTest, LruEvictionWithinSet) {
  Cache C(tinyCache());
  // Three blocks mapping to the same set (set stride = 4 blocks = 128B).
  const Addr A = 0x0, B = 0x80, D = 0x100;
  C.fill(A, false);
  C.fill(B, false);
  C.access(A); // A most recent; B is LRU
  C.fill(D, false);
  EXPECT_TRUE(C.contains(A));
  EXPECT_FALSE(C.contains(B));
  EXPECT_TRUE(C.contains(D));
  EXPECT_EQ(C.stats().Evictions, 1u);
}

TEST(CacheTest, FillPrefersInvalidWays) {
  Cache C(tinyCache());
  C.fill(0x0, false);
  C.fill(0x80, false); // same set, second way
  EXPECT_EQ(C.stats().Evictions, 0u);
  EXPECT_EQ(C.validLineCount(), 2u);
}

TEST(CacheTest, RefillResidentBlockDoesNotEvict) {
  Cache C(tinyCache());
  C.fill(0x0, false);
  C.fill(0x0, false);
  EXPECT_EQ(C.validLineCount(), 1u);
  EXPECT_EQ(C.stats().Evictions, 0u);
}

TEST(CacheTest, PrefetchAccounting) {
  Cache C(tinyCache());
  C.fill(0x0, /*IsPrefetch=*/true);
  EXPECT_EQ(C.stats().PrefetchFills, 1u);
  // First demand touch counts the prefetch as useful, once.
  EXPECT_TRUE(C.access(0x0));
  EXPECT_TRUE(C.access(0x0));
  EXPECT_EQ(C.stats().UsefulPrefetches, 1u);
}

TEST(CacheTest, WastedPrefetchOnEviction) {
  Cache C(tinyCache());
  C.fill(0x0, /*IsPrefetch=*/true);
  // Evict it with two demand fills in the same set, untouched.
  C.fill(0x80, false);
  C.fill(0x100, false);
  EXPECT_EQ(C.stats().WastedPrefetches, 1u);
  EXPECT_EQ(C.stats().UsefulPrefetches, 0u);
}

TEST(CacheTest, DemandRefillDoesNotRearmPrefetchBit) {
  Cache C(tinyCache());
  C.fill(0x0, /*IsPrefetch=*/true);
  C.access(0x0); // useful, bit cleared
  C.fill(0x0, /*IsPrefetch=*/true);
  // Resident-line refill refreshes recency but must not re-arm the bit.
  C.fill(0x80, false);
  C.fill(0x100, false); // evicts 0x80's set... same set as 0x0
  EXPECT_EQ(C.stats().WastedPrefetches, 0u);
}

TEST(CacheTest, ResetDropsLines) {
  Cache C(tinyCache());
  C.fill(0x0, false);
  C.reset();
  EXPECT_EQ(C.validLineCount(), 0u);
  EXPECT_FALSE(C.contains(0x0));
}

//===----------------------------------------------------------------------===//
// MemoryHierarchy
//===----------------------------------------------------------------------===//

LatencyConfig testLatency() {
  LatencyConfig L;
  L.L1HitCycles = 1;
  L.L2HitCycles = 14;
  L.MemoryCycles = 100;
  L.PrefetchIssueCycles = 1;
  L.MaxInFlightPrefetches = 4;
  return L;
}

TEST(HierarchyTest, ColdMissCostsMemoryLatency) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency());
  EXPECT_EQ(M.access(0x5000), 100u);
  EXPECT_EQ(M.now(), 100u);
  // Both levels filled.
  EXPECT_EQ(M.access(0x5000), 1u);
}

TEST(HierarchyTest, L2HitAfterL1Eviction) {
  MemoryHierarchy M(CacheConfig{256, 2, 32}, CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.access(0x0);
  // Evict 0x0 from the tiny L1 (same set: stride 128).
  M.access(0x80);
  M.access(0x100);
  EXPECT_EQ(M.access(0x0), 14u); // L2 hit
}

TEST(HierarchyTest, TickAdvancesClock) {
  MemoryHierarchy M;
  M.tick(50);
  EXPECT_EQ(M.now(), 50u);
}

TEST(HierarchyTest, PrefetchHidesMemoryLatency) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.prefetchT0(0x9000);
  EXPECT_EQ(M.inFlightCount(), 1u);
  M.tick(200); // plenty of time: the fill completes
  EXPECT_EQ(M.inFlightCount(), 0u);
  EXPECT_EQ(M.access(0x9000), 1u); // full hit, latency hidden
  EXPECT_EQ(M.l1().stats().UsefulPrefetches, 1u);
}

TEST(HierarchyTest, EarlyDemandPaysPartialLatency) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.prefetchT0(0x9000); // issue slot: now = 1; ready at 101
  M.tick(40);           // now = 41
  const uint64_t Latency = M.access(0x9000);
  // 60 cycles remained + 1 cycle L1 hit.
  EXPECT_EQ(Latency, 61u);
  EXPECT_EQ(M.stats().PartialHits, 1u);
  EXPECT_EQ(M.stats().PartialHitStallCycles, 60u);
}

TEST(HierarchyTest, RedundantPrefetchIsCounted) {
  MemoryHierarchy M;
  M.access(0x100); // now resident in L1
  M.prefetchT0(0x100);
  EXPECT_EQ(M.stats().PrefetchesRedundant, 1u);
  EXPECT_EQ(M.inFlightCount(), 0u);
}

TEST(HierarchyTest, InFlightDuplicateIsRedundant) {
  MemoryHierarchy M;
  M.prefetchT0(0x2000);
  M.prefetchT0(0x2000);
  EXPECT_EQ(M.stats().PrefetchesRedundant, 1u);
  EXPECT_EQ(M.inFlightCount(), 1u);
}

TEST(HierarchyTest, QueueCapacityDropsExtraPrefetches) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency()); // capacity 4
  for (Addr A = 0; A < 6; ++A)
    M.prefetchT0(0x10000 + A * 64);
  EXPECT_EQ(M.inFlightCount(), 4u);
  EXPECT_EQ(M.stats().PrefetchesDroppedQueueFull, 2u);
}

TEST(HierarchyTest, L2ResidentPrefetchFillsOnlyL1) {
  MemoryHierarchy M(CacheConfig{256, 2, 32}, CacheConfig::pentiumIIIL2(),
                    testLatency());
  // Bring the block to L2 (and L1), then push it out of the tiny L1.
  M.access(0x0);
  M.access(0x80);
  M.access(0x100);
  ASSERT_FALSE(M.l1().contains(0x0));
  ASSERT_TRUE(M.l2().contains(0x0));
  M.prefetchT0(0x0);
  M.tick(20); // L2 latency is 14
  EXPECT_TRUE(M.l1().contains(0x0));
  EXPECT_EQ(M.access(0x0), 1u);
}

TEST(HierarchyTest, StallCyclesAccumulate) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.access(0x0);    // memory: stall 99
  M.access(0x0);    // L1 hit: no stall
  EXPECT_EQ(M.stats().StallCycles, 99u);
}

TEST(HierarchyTest, ResetClearsEverything) {
  MemoryHierarchy M;
  M.access(0x0);
  M.prefetchT0(0x4000);
  M.reset();
  EXPECT_EQ(M.now(), 0u);
  EXPECT_EQ(M.inFlightCount(), 0u);
  EXPECT_FALSE(M.l1().contains(0x0));
  EXPECT_FALSE(M.l2().contains(0x0));
}

//===----------------------------------------------------------------------===//
// Prefetch-effectiveness classification, per stream tag
//===----------------------------------------------------------------------===//

TEST(PrefetchClassTest, UsefulPrefetchIsAttributedToItsStream) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.prefetchT0(0x9000, /*ChargeIssueSlot=*/true, /*StreamTag=*/0);
  M.tick(200); // fill completes
  EXPECT_EQ(M.access(0x9000), 1u);
  ASSERT_GE(M.streamClasses().size(), 1u);
  EXPECT_EQ(M.streamClasses()[0].Issued, 1u);
  EXPECT_EQ(M.streamClasses()[0].Useful, 1u);
  EXPECT_EQ(M.streamClasses()[0].Late, 0u);
  EXPECT_EQ(M.stats().PrefetchesUseful, 1u);
}

TEST(PrefetchClassTest, LatePrefetchIsAttributedToItsStream) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.prefetchT0(0x9000, /*ChargeIssueSlot=*/true, /*StreamTag=*/1);
  M.tick(40); // fill still in flight (ready at 101)
  M.access(0x9000);
  ASSERT_GE(M.streamClasses().size(), 2u);
  EXPECT_EQ(M.streamClasses()[1].Issued, 1u);
  EXPECT_EQ(M.streamClasses()[1].Late, 1u);
  EXPECT_EQ(M.streamClasses()[1].Useful, 0u);
  EXPECT_EQ(M.stats().PartialHits, 1u);
}

TEST(PrefetchClassTest, RedundantIssueIsAttributedToItsStream) {
  MemoryHierarchy M;
  M.access(0x100); // resident
  M.prefetchT0(0x100, /*ChargeIssueSlot=*/true, /*StreamTag=*/0);
  ASSERT_GE(M.streamClasses().size(), 1u);
  // Issued counts requests (like HierarchyStats::PrefetchesIssued);
  // redundant marks the rejection.
  EXPECT_EQ(M.streamClasses()[0].Issued, 1u);
  EXPECT_EQ(M.streamClasses()[0].Redundant, 1u);
}

TEST(PrefetchClassTest, QueueFullDropIsAttributedToItsStream) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency()); // capacity 4
  for (Addr A = 0; A < 5; ++A)
    M.prefetchT0(0x10000 + A * 64, /*ChargeIssueSlot=*/true,
                 /*StreamTag=*/0);
  ASSERT_GE(M.streamClasses().size(), 1u);
  EXPECT_EQ(M.streamClasses()[0].Issued, 5u);
  EXPECT_EQ(M.streamClasses()[0].DroppedQueueFull, 1u);
}

TEST(PrefetchClassTest, UnusedEvictedPrefetchIsAttributedToItsStream) {
  // Tiny 2-way L1 (4 sets, stride 128): prefetch a block, never touch
  // it, then push two conflicting demand blocks through its set.
  MemoryHierarchy M(CacheConfig{256, 2, 32}, CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.prefetchT0(0x0, /*ChargeIssueSlot=*/true, /*StreamTag=*/3);
  M.tick(200); // fill completes into L1
  ASSERT_TRUE(M.l1().contains(0x0));
  M.access(0x80);
  M.access(0x100); // evicts the untouched prefetched line
  ASSERT_FALSE(M.l1().contains(0x0));
  ASSERT_GE(M.streamClasses().size(), 4u);
  EXPECT_EQ(M.streamClasses()[3].UnusedEvicted, 1u);
  EXPECT_EQ(M.stats().PrefetchesUnusedEvicted, 1u);
}

TEST(PrefetchClassTest, UntaggedPrefetchesLandInTheUntaggedBucket) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.prefetchT0(0x9000); // no tag: hardware engines, tests
  M.tick(200);
  M.access(0x9000);
  EXPECT_EQ(M.untaggedClasses().Issued, 1u);
  EXPECT_EQ(M.untaggedClasses().Useful, 1u);
  EXPECT_TRUE(M.streamClasses().empty());
}

TEST(PrefetchClassTest, CycleAccountPartitionsTheHierarchyClock) {
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(), CacheConfig::pentiumIIIL2(),
                    testLatency());
  M.access(0x0);                 // miss: 1 compute + 99 demand stall
  M.tick(30);                    // pure compute
  M.tick(5, obs::CyclePhase::DynamicCheck);
  M.prefetchT0(0x9000);          // 1 prefetch-issue cycle
  M.prefetchT0(0x9000 + 64, /*ChargeIssueSlot=*/false); // hardware: free
  const obs::CycleBreakdown B = M.account().snapshot();
  EXPECT_EQ(B.total(), M.now());
  EXPECT_EQ(B.DemandStall, 99u);
  EXPECT_EQ(B.DynamicCheck, 5u);
  EXPECT_EQ(B.PrefetchIssue, 1u);
  EXPECT_EQ(B.PureCompute, 31u);
}

//===----------------------------------------------------------------------===//
// Property test: LRU thrash of a cyclic footprint
//===----------------------------------------------------------------------===//

struct ThrashCase {
  uint64_t Blocks;
  bool ExpectThrash;
};

class ThrashTest : public ::testing::TestWithParam<ThrashCase> {};

TEST_P(ThrashTest, CyclicLoopHitRate) {
  // The workloads rely on the classic result: cyclically touching a
  // working set slightly larger than an LRU cache misses every time,
  // while one that fits hits every time after warmup.
  const ThrashCase &Case = GetParam();
  Cache C(CacheConfig::pentiumIIIL1()); // 512 blocks
  const uint64_t Rounds = 8;
  uint64_t Hits = 0, Accesses = 0;
  for (uint64_t R = 0; R < Rounds; ++R)
    for (uint64_t B = 0; B < Case.Blocks; ++B) {
      const Addr A = B * 32;
      const bool Hit = C.access(A);
      if (!Hit)
        C.fill(A, false);
      if (R > 0) { // skip cold warmup round
        ++Accesses;
        Hits += Hit;
      }
    }
  const double HitRate =
      static_cast<double>(Hits) / static_cast<double>(Accesses);
  if (Case.ExpectThrash)
    EXPECT_LT(HitRate, 0.05) << Case.Blocks << " blocks";
  else
    EXPECT_GT(HitRate, 0.95) << Case.Blocks << " blocks";
}

INSTANTIATE_TEST_SUITE_P(Footprints, ThrashTest,
                         ::testing::Values(ThrashCase{256, false},
                                           ThrashCase{512, false},
                                           // >= 5 blocks per set: every
                                           // set LRU-thrashes.
                                           ThrashCase{640, true},
                                           ThrashCase{768, true},
                                           ThrashCase{1024, true}));

/// Deterministic random access pattern: cache model self-consistency —
/// contains() agrees with access() outcomes, stats add up.
TEST(CachePropertyTest, StatsAreConsistentUnderRandomTraffic) {
  hds::Rng R(99);
  Cache C(tinyCache());
  uint64_t ExpectedHits = 0, ExpectedMisses = 0;
  for (int I = 0; I < 20000; ++I) {
    const Addr A = R.nextBelow(64) * 32;
    const bool WasResident = C.contains(A);
    const bool Hit = C.access(A);
    EXPECT_EQ(Hit, WasResident);
    if (Hit)
      ++ExpectedHits;
    else {
      ++ExpectedMisses;
      C.fill(A, false);
      EXPECT_TRUE(C.contains(A));
    }
  }
  EXPECT_EQ(C.stats().Hits, ExpectedHits);
  EXPECT_EQ(C.stats().Misses, ExpectedMisses);
  EXPECT_EQ(C.stats().DemandFills, ExpectedMisses);
  EXPECT_LE(C.validLineCount(), 8u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Alternative geometries and latencies
//===----------------------------------------------------------------------===//

namespace {

TEST(CacheTest, SixtyFourByteBlocks) {
  Cache C(CacheConfig{4096, 4, 64});
  EXPECT_EQ(C.config().numSets(), 16u);
  C.fill(0x1000, false);
  EXPECT_TRUE(C.contains(0x103F));  // same 64B block
  EXPECT_FALSE(C.contains(0x1040)); // next block
}

TEST(CacheTest, DirectMappedBehaviour) {
  Cache C(CacheConfig{128, 1, 32}); // 4 sets, direct mapped
  C.fill(0x0, false);
  C.fill(0x80, false); // same set: must evict
  EXPECT_FALSE(C.contains(0x0));
  EXPECT_TRUE(C.contains(0x80));
}

TEST(HierarchyTest, CustomLatenciesAreRespected) {
  LatencyConfig L;
  L.L1HitCycles = 2;
  L.L2HitCycles = 20;
  L.MemoryCycles = 300;
  MemoryHierarchy M(CacheConfig::pentiumIIIL1(),
                    CacheConfig::pentiumIIIL2(), L);
  EXPECT_EQ(M.access(0x0), 300u);
  EXPECT_EQ(M.access(0x0), 2u);
}

TEST(HierarchyTest, HardwarePrefetchSkipsIssueSlot) {
  MemoryHierarchy M;
  M.prefetchT0(0x1000, /*ChargeIssueSlot=*/false);
  EXPECT_EQ(M.now(), 0u);
  M.prefetchT0(0x2000, /*ChargeIssueSlot=*/true);
  EXPECT_EQ(M.now(), uint64_t{LatencyConfig().PrefetchIssueCycles});
}

} // namespace
