//===- tests/cache_model_test.cpp - Cache vs ReferenceCache lockstep ------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
//
// Differential property tests for the packed memsim::Cache against the
// pre-rewrite array-of-line-structs model (ReferenceCache).
// Both models run the same operation sequence — demand accesses, demand
// and prefetch fills, probes — and must agree on every return value,
// every classification detail, and every statistics counter after every
// single operation.  The sequences come from seeded TraceGen streams and
// an Rng-driven operation mix, across associativities, capacities, and a
// non-power-of-two set count (the packed model's div/mod geometry
// fallback).
//
//===----------------------------------------------------------------------===//

#include "memsim/Cache.h"
#include "support/Rng.h"
#include "testing/ReferenceCache.h"
#include "testing/TraceGen.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

// NOTE: no `using namespace hds` — hds::testing would collide with
// gtest's ::testing.
using hds::Rng;
using hds::memsim::Addr;
using hds::memsim::Cache;
using hds::memsim::CacheConfig;
using hds::memsim::CacheStats;
using hds::obs::NoStreamTag;
using hds::testing::ReferenceCache;
using hds::testing::generateTrace;

namespace {

void expectStatsEqual(const CacheStats &A, const CacheStats &B,
                      const char *Where, uint64_t Step) {
  EXPECT_EQ(A.Hits, B.Hits) << Where << " step " << Step;
  EXPECT_EQ(A.Misses, B.Misses) << Where << " step " << Step;
  EXPECT_EQ(A.DemandFills, B.DemandFills) << Where << " step " << Step;
  EXPECT_EQ(A.PrefetchFills, B.PrefetchFills) << Where << " step " << Step;
  EXPECT_EQ(A.Evictions, B.Evictions) << Where << " step " << Step;
  EXPECT_EQ(A.UsefulPrefetches, B.UsefulPrefetches)
      << Where << " step " << Step;
  EXPECT_EQ(A.WastedPrefetches, B.WastedPrefetches)
      << Where << " step " << Step;
}

/// Drives both models through an identical operation sequence derived
/// from one TraceGen trace and checks full agreement after every step.
void runLockstep(const CacheConfig &Config, uint64_t Seed,
                 const char *Where) {
  Cache Packed(Config);
  ReferenceCache Reference(Config);
  Rng Ops(Seed * 0x9E3779B97F4A7C15ULL + 1);

  // TraceGen symbols become addresses at a handful of strides so the
  // same trace exercises dense set reuse, block-offset aliasing, and
  // conflict-heavy mappings.
  const std::vector<uint32_t> Trace = generateTrace(Seed);
  const uint64_t Strides[] = {1, 8, uint64_t{Config.BlockBytes},
                              uint64_t{Config.BlockBytes} * Config.numSets()};

  uint64_t Step = 0;
  for (uint32_t Symbol : Trace) {
    ++Step;
    const uint64_t Stride = Strides[Ops.nextBelow(4)];
    const Addr Address = uint64_t{Symbol} * Stride + Ops.nextBelow(4);

    switch (Ops.nextBelow(6)) {
    case 0: { // pure probe
      EXPECT_EQ(Packed.contains(Address), Reference.contains(Address))
          << Where << " step " << Step;
      break;
    }
    case 1: { // probe-and-touch (the prefetch redundancy check)
      EXPECT_EQ(Packed.touchIfPresent(Address),
                Reference.touchIfPresent(Address))
          << Where << " step " << Step;
      break;
    }
    case 2:
    case 3: { // demand access with classification detail
      Cache::AccessInfo InfoA, InfoB;
      EXPECT_EQ(Packed.access(Address, &InfoA),
                Reference.access(Address, &InfoB))
          << Where << " step " << Step;
      EXPECT_EQ(InfoA.PrefetchHit, InfoB.PrefetchHit)
          << Where << " step " << Step;
      EXPECT_EQ(InfoA.StreamTag, InfoB.StreamTag)
          << Where << " step " << Step;
      break;
    }
    default: { // fill (demand or prefetch, tagged or not)
      const bool IsPrefetch = Ops.nextBelow(2) == 0;
      const uint32_t Tag = IsPrefetch
                               ? static_cast<uint32_t>(Ops.nextBelow(7))
                               : NoStreamTag;
      const Cache::EvictInfo EvictA = Packed.fill(Address, IsPrefetch, Tag);
      const Cache::EvictInfo EvictB =
          Reference.fill(Address, IsPrefetch, Tag);
      EXPECT_EQ(EvictA.EvictedUntouchedPrefetch,
                EvictB.EvictedUntouchedPrefetch)
          << Where << " step " << Step;
      EXPECT_EQ(EvictA.EvictedStreamTag, EvictB.EvictedStreamTag)
          << Where << " step " << Step;
      break;
    }
    }

    expectStatsEqual(Packed.stats(), Reference.stats(), Where, Step);
    if (::testing::Test::HasFailure())
      return; // the first divergence is the interesting one
    if (Step % 512 == 0) {
      EXPECT_EQ(Packed.validLineCount(), Reference.validLineCount())
          << Where << " step " << Step;
    }
  }

  EXPECT_EQ(Packed.validLineCount(), Reference.validLineCount()) << Where;

  // reset() must leave both models in the same (empty) state and keep
  // them in agreement afterwards.
  Packed.reset();
  Reference.reset();
  EXPECT_EQ(Packed.validLineCount(), 0u) << Where;
  EXPECT_EQ(Reference.validLineCount(), 0u) << Where;
  for (uint32_t Symbol : Trace) {
    if (++Step > Trace.size() + 256)
      break;
    const Addr Address = uint64_t{Symbol} * Config.BlockBytes;
    EXPECT_EQ(Packed.access(Address), Reference.access(Address))
        << Where << " post-reset step " << Step;
    Packed.fill(Address, false);
    Reference.fill(Address, false);
  }
  expectStatsEqual(Packed.stats(), Reference.stats(), Where, Step);
}

struct Geometry {
  const char *Name;
  CacheConfig Config;
};

const Geometry Geometries[] = {
    {"direct_mapped_1k", {1024, 1, 32}},
    {"two_way_2k", {2 * 1024, 2, 32}},
    {"paper_l1_16k_4way", CacheConfig::pentiumIIIL1()},
    {"paper_l2_256k_8way", CacheConfig::pentiumIIIL2()},
    {"tiny_fully_assoc", {256, 8, 32}},
    // 12 sets: not a power of two, so the packed model must take its
    // div/mod geometry fallback instead of shift/mask.
    {"npot_sets_12x4", {12 * 4 * 32, 4, 32}},
    {"npot_sets_3x2_64b", {3 * 2 * 64, 2, 64}},
};

} // namespace

TEST(CacheModelDifferential, LockstepAcrossGeometriesAndSeeds) {
  for (const Geometry &G : Geometries)
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      SCOPED_TRACE(G.Name);
      runLockstep(G.Config, Seed, G.Name);
      if (::testing::Test::HasFailure())
        return;
    }
}

TEST(CacheModelDifferential, AdversarialSetConflicts) {
  // All addresses land in one set: maximal eviction pressure, the LRU
  // victim choice diverges immediately if the argmin is wrong.
  const CacheConfig Config{1024, 4, 32}; // 8 sets
  Cache Packed(Config);
  ReferenceCache Reference(Config);
  Rng Ops(0xC0FFEE);

  const uint64_t SetSpan = uint64_t{Config.BlockBytes} * Config.numSets();
  for (uint64_t Step = 1; Step <= 20000; ++Step) {
    const Addr Address = Ops.nextBelow(16) * SetSpan; // 16 blocks, 1 set
    const bool IsPrefetch = Ops.nextBelow(3) == 0;
    if (Ops.nextBelow(2) == 0) {
      EXPECT_EQ(Packed.access(Address), Reference.access(Address))
          << "step " << Step;
    } else {
      const uint32_t Tag =
          IsPrefetch ? static_cast<uint32_t>(Ops.nextBelow(3)) : NoStreamTag;
      const Cache::EvictInfo A = Packed.fill(Address, IsPrefetch, Tag);
      const Cache::EvictInfo B = Reference.fill(Address, IsPrefetch, Tag);
      EXPECT_EQ(A.EvictedUntouchedPrefetch, B.EvictedUntouchedPrefetch)
          << "step " << Step;
      EXPECT_EQ(A.EvictedStreamTag, B.EvictedStreamTag) << "step " << Step;
    }
    if (::testing::Test::HasFailure()) {
      expectStatsEqual(Packed.stats(), Reference.stats(), "conflict", Step);
      return;
    }
  }
  expectStatsEqual(Packed.stats(), Reference.stats(), "conflict", 20000);
  EXPECT_EQ(Packed.validLineCount(), Reference.validLineCount());
}
