//===- tests/cli_test.cpp - Shared command-line option tests --------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
//
// Covers every registration kind in cli::OptionSet (src/cli/Options.h)
// plus the vocabulary helpers the tools share (prefetcher flags, the
// --adaptive tuning flag, generated token lists), including the strict
// error paths that exit the process.
//
//===----------------------------------------------------------------------===//

#include "cli/Options.h"

#include "engine/ExperimentSpec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace hds;
using namespace hds::cli;

namespace {

/// Runs \p Set.parse over \p Args as if they were argv[1..]; argv[0] is
/// a dummy binary name, matching how the tools call it.
void parseArgs(const OptionSet &Set, std::vector<std::string> Args) {
  std::vector<char *> Argv;
  static std::string Binary = "test-tool";
  Argv.push_back(Binary.data());
  for (std::string &Arg : Args)
    Argv.push_back(Arg.data());
  Set.parse(static_cast<int>(Argv.size()), Argv.data());
}

TEST(OptionSet, EveryRegistrationKindParses) {
  bool Flag = false;
  std::string Str;
  std::vector<std::string> List;
  std::string PairA, PairB;
  uint64_t U64 = 0;
  uint32_t U32 = 0;
  unsigned Uns = 0;
  double Loose = 0.0, Positive = 0.0, NonNegative = -1.0;
  core::RunMode Mode = core::RunMode::Original;

  bool UsageCalled = false;
  OptionSet Set([&UsageCalled] { UsageCalled = true; });
  Set.flag("--flag", Flag)
      .str("--str", Str)
      .strList("--list", List)
      .strPair("--pair", PairA, PairB)
      .u64("--u64", U64)
      .u32("--u32", U32)
      .uns("--uns", Uns)
      .looseDouble("--loose", Loose)
      .positiveDouble("--positive", Positive)
      .nonNegativeDouble("--nonneg", NonNegative)
      .runMode("--mode", Mode);

  parseArgs(Set, {"--flag", "--str", "hello", "--list", "a", "--list", "b",
                  "--pair", "left", "right", "--u64", "18446744073709551615",
                  "--u32", "4096", "--uns", "7", "--loose", "0.5",
                  "--positive", "2.25", "--nonneg", "0", "--mode", "dynpref"});

  EXPECT_FALSE(UsageCalled);
  EXPECT_TRUE(Flag);
  EXPECT_EQ(Str, "hello");
  EXPECT_EQ(List, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(PairA, "left");
  EXPECT_EQ(PairB, "right");
  EXPECT_EQ(U64, 18446744073709551615ull);
  EXPECT_EQ(U32, 4096u);
  EXPECT_EQ(Uns, 7u);
  EXPECT_DOUBLE_EQ(Loose, 0.5);
  EXPECT_DOUBLE_EQ(Positive, 2.25);
  EXPECT_DOUBLE_EQ(NonNegative, 0.0);
  EXPECT_EQ(Mode, core::RunMode::DynamicPrefetch);
}

TEST(OptionSet, UnknownOptionAndMissingOperandHitUsage) {
  bool Flag = false;
  std::string Str;
  unsigned UsageCalls = 0;
  OptionSet Set([&UsageCalls] { ++UsageCalls; });
  Set.flag("--flag", Flag).str("--str", Str);

  parseArgs(Set, {"--bogus"});
  EXPECT_EQ(UsageCalls, 1u);
  // The operand for --str runs off the end of argv.
  parseArgs(Set, {"--str"});
  EXPECT_EQ(UsageCalls, 2u);
  // An unparsable run-mode token also routes through usage.
  core::RunMode Mode = core::RunMode::Original;
  Set.runMode("--mode", Mode);
  parseArgs(Set, {"--mode", "spicy"});
  EXPECT_EQ(UsageCalls, 3u);
}

TEST(OptionSetDeathTest, StrictNumericOptionsExitWithLegacyMessages) {
  double Positive = 0.0, NonNegative = 0.0;
  unsigned Repeat = 0;
  OptionSet Set([] {});
  Set.positiveDouble("--scale", Positive)
      .nonNegativeDouble("--threshold", NonNegative)
      .unsAtLeastOne("--repeat", Repeat);

  EXPECT_EXIT(parseArgs(Set, {"--scale", "0"}),
              testing::ExitedWithCode(2),
              "error: invalid --scale '0' \\(need a finite number > 0\\)");
  EXPECT_EXIT(parseArgs(Set, {"--scale", "1.5x"}),
              testing::ExitedWithCode(2),
              "error: invalid --scale '1.5x' \\(need a finite number > 0\\)");
  EXPECT_EXIT(parseArgs(Set, {"--threshold", "-1"}),
              testing::ExitedWithCode(2),
              "error: invalid --threshold '-1' \\(need a number >= 0\\)");
  EXPECT_EXIT(parseArgs(Set, {"--repeat", "0"}),
              testing::ExitedWithCode(2), "error: --repeat must be >= 1");
}

//===----------------------------------------------------------------------===//
// Vocabulary helpers
//===----------------------------------------------------------------------===//

TEST(CliVocabulary, PrefetcherFlagsCoverTheRoster) {
  prefetch::PrefetcherSelection Selection;
  OptionSet Set([] { FAIL() << "usage must not fire"; });
  addPrefetcherFlags(Set, Selection);

  parseArgs(Set, {"--stride", "--duel"});
  EXPECT_TRUE(Selection.has(prefetch::Prefetcher::Stride));
  EXPECT_TRUE(Selection.has(prefetch::Prefetcher::Duel));
  EXPECT_FALSE(Selection.has(prefetch::Prefetcher::Markov));
  EXPECT_EQ(Selection.token(), "stride+duel");

  parseArgs(Set, {"--markov", "--stream", "--pair"});
  EXPECT_EQ(Selection.count(), prefetch::PrefetcherSelection::NumKinds);
}

TEST(CliVocabulary, TunedFlagIsDefinedOnce) {
  EXPECT_STREQ(TunedFlag, "--adaptive");
  bool Tuned = false;
  OptionSet Set([] { FAIL() << "usage must not fire"; });
  addTunedFlag(Set, Tuned);
  parseArgs(Set, {"--adaptive"});
  EXPECT_TRUE(Tuned);
}

TEST(CliVocabulary, UsageFragmentsComeFromSharedTokenLists) {
  EXPECT_EQ(prefetcherFlagsUsage(),
            " [--stride] [--markov] [--stream] [--pair] [--duel]");
  EXPECT_EQ(core::runModeTokenList(),
            "original|base|prof|hds|nopref|seqpref|dynpref");
  // The filter help every tool prints must name the spec axes (the
  // usage-parity ctest greps tool output for the same strings).
  const std::string Help = engine::filterHelp();
  EXPECT_NE(Help.find("prefetcher=<none|stride|markov|stream|pair|duel>"),
            std::string::npos);
  EXPECT_NE(Help.find("tuning=<adaptive|fixed>"), std::string::npos);
  EXPECT_NE(Help.find("mode=<original|base|prof|hds|nopref|seqpref|dynpref>"),
            std::string::npos);
}

} // namespace
