//===- tests/analysis_test.cpp - Hot data stream analysis tests ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/Coverage.h"
#include "analysis/DataRef.h"
#include "analysis/FastAnalyzer.h"
#include "analysis/PreciseAnalyzer.h"

#include "sequitur/Grammar.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace hds;
using namespace hds::analysis;
using hds::sequitur::Grammar;
using hds::sequitur::GrammarSnapshot;

namespace {

GrammarSnapshot snapshotOf(const std::string &Text) {
  Grammar G;
  for (char C : Text)
    G.append(static_cast<uint64_t>(static_cast<unsigned char>(C)));
  return G.snapshot();
}

std::string wordOf(const HotDataStream &Stream) {
  std::string Out;
  for (uint32_t S : Stream.Symbols)
    Out.push_back(static_cast<char>(S));
  return Out;
}

//===----------------------------------------------------------------------===//
// DataRefTable
//===----------------------------------------------------------------------===//

TEST(DataRefTableTest, InternIsStable) {
  DataRefTable T;
  const RefId A = T.intern({1, 100});
  const RefId B = T.intern({1, 200});
  const RefId C = T.intern({2, 100});
  EXPECT_NE(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(B, C);
  EXPECT_EQ(T.intern({1, 100}), A);
  EXPECT_EQ(T.size(), 3u);
}

TEST(DataRefTableTest, LookupAndReverse) {
  DataRefTable T;
  const RefId Id = T.intern({7, 0xABCD});
  EXPECT_EQ(T.lookup({7, 0xABCD}), Id);
  EXPECT_EQ(T.lookup({7, 0xABCE}), InvalidRefId);
  EXPECT_EQ(T.refOf(Id).Pc, 7u);
  EXPECT_EQ(T.refOf(Id).Addr, 0xABCDu);
}

TEST(DataRefTableTest, DenseIds) {
  DataRefTable T;
  for (uint64_t I = 0; I < 100; ++I)
    EXPECT_EQ(T.intern({I, I * 3}), RefId(I));
}

TEST(DataRefTableTest, ClearResets) {
  DataRefTable T;
  T.intern({1, 1});
  T.clear();
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.lookup({1, 1}), InvalidRefId);
}

//===----------------------------------------------------------------------===//
// FastAnalyzer — the paper's worked example, locked down exactly
//===----------------------------------------------------------------------===//

TEST(FastAnalyzerTest, PaperTable1Exactly) {
  const GrammarSnapshot Snap = snapshotOf("abaabcabcabcabc");
  ASSERT_EQ(Snap.Rules.size(), 4u);

  AnalysisConfig Config;
  Config.MinLength = 2;
  Config.MaxLength = 7;
  Config.HeatThreshold = 8;
  const FastAnalysisResult Result = analyzeHotStreams(Snap, Config);

  EXPECT_EQ(Result.TraceLength, 15u);

  // Identify rules by their expansions (S=whole, A=ab, B=abcabc, C=abc).
  uint32_t RuleA = ~0u, RuleB = ~0u, RuleC = ~0u;
  for (uint32_t R = 1; R < 4; ++R) {
    std::vector<uint64_t> Word = Snap.expand(R);
    std::string Text;
    for (uint64_t W : Word)
      Text.push_back(static_cast<char>(W));
    if (Text == "ab")
      RuleA = R;
    else if (Text == "abcabc")
      RuleB = R;
    else if (Text == "abc")
      RuleC = R;
  }
  ASSERT_NE(RuleA, ~0u);
  ASSERT_NE(RuleB, ~0u);
  ASSERT_NE(RuleC, ~0u);

  // Table 1 values.
  EXPECT_EQ(Result.PerRule[0].Length, 15u);
  EXPECT_EQ(Result.PerRule[0].Uses, 1u);
  EXPECT_EQ(Result.PerRule[0].ColdUses, 1u);
  EXPECT_EQ(Result.PerRule[0].Heat, 15u);
  EXPECT_FALSE(Result.PerRule[0].Hot); // "no, start"

  EXPECT_EQ(Result.PerRule[RuleA].Length, 2u);
  EXPECT_EQ(Result.PerRule[RuleA].Uses, 5u);
  EXPECT_EQ(Result.PerRule[RuleA].ColdUses, 1u);
  EXPECT_EQ(Result.PerRule[RuleA].Heat, 2u);
  EXPECT_FALSE(Result.PerRule[RuleA].Hot); // "no, cold"

  EXPECT_EQ(Result.PerRule[RuleB].Length, 6u);
  EXPECT_EQ(Result.PerRule[RuleB].Uses, 2u);
  EXPECT_EQ(Result.PerRule[RuleB].ColdUses, 2u);
  EXPECT_EQ(Result.PerRule[RuleB].Heat, 12u);
  EXPECT_TRUE(Result.PerRule[RuleB].Hot); // "yes"

  EXPECT_EQ(Result.PerRule[RuleC].Length, 3u);
  EXPECT_EQ(Result.PerRule[RuleC].Uses, 4u);
  EXPECT_EQ(Result.PerRule[RuleC].ColdUses, 0u);
  EXPECT_EQ(Result.PerRule[RuleC].Heat, 0u);
  EXPECT_FALSE(Result.PerRule[RuleC].Hot); // "no, cold"

  // One hot data stream: abcabc with heat 12 (80% of references).
  ASSERT_EQ(Result.Streams.size(), 1u);
  EXPECT_EQ(wordOf(Result.Streams[0]), "abcabc");
  EXPECT_EQ(Result.Streams[0].Heat, 12u);
  EXPECT_EQ(Result.Streams[0].Frequency, 2u);
  EXPECT_NEAR(Result.coverage(), 0.8, 1e-9);

  // Index numbering: parents before children.
  EXPECT_EQ(Result.PerRule[0].Index, 0u);
  EXPECT_LT(Result.PerRule[RuleB].Index, Result.PerRule[RuleC].Index);
  EXPECT_LT(Result.PerRule[RuleC].Index, Result.PerRule[RuleA].Index);
}

TEST(FastAnalyzerTest, EmptyTrace) {
  Grammar G;
  AnalysisConfig Config;
  const FastAnalysisResult Result = analyzeHotStreams(G.snapshot(), Config);
  EXPECT_TRUE(Result.Streams.empty());
  EXPECT_EQ(Result.TraceLength, 0u);
}

TEST(FastAnalyzerTest, StartRuleNeverReported) {
  // A trace that is one long repetition: the start rule itself is the
  // hottest thing, but must not be reported.
  const GrammarSnapshot Snap = snapshotOf("xy");
  AnalysisConfig Config;
  Config.MinLength = 1;
  Config.MaxLength = 100;
  Config.HeatThreshold = 1;
  const FastAnalysisResult Result = analyzeHotStreams(Snap, Config);
  EXPECT_TRUE(Result.Streams.empty());
}

TEST(FastAnalyzerTest, LengthBoundsRespected) {
  const GrammarSnapshot Snap = snapshotOf("abcabcabcabcabcabc");
  AnalysisConfig Config;
  Config.HeatThreshold = 1;
  Config.MinLength = 4; // "abc" (len 3) is too short
  Config.MaxLength = 5; // "abcabc" (len 6) is too long
  const FastAnalysisResult Result = analyzeHotStreams(Snap, Config);
  for (const HotDataStream &S : Result.Streams) {
    EXPECT_GE(S.length(), 4u);
    EXPECT_LE(S.length(), 5u);
  }
}

TEST(FastAnalyzerTest, HeatThresholdRespected) {
  const GrammarSnapshot Snap = snapshotOf("ababababXcdcd");
  AnalysisConfig Config;
  Config.MinLength = 2;
  Config.MaxLength = 10;
  Config.HeatThreshold = 5;
  const FastAnalysisResult Result = analyzeHotStreams(Snap, Config);
  for (const HotDataStream &S : Result.Streams)
    EXPECT_GE(S.Heat, 5u);
  // "cd" repeats twice: heat 4 < 5, must be absent.
  for (const HotDataStream &S : Result.Streams)
    EXPECT_EQ(wordOf(S).find("cd"), std::string::npos);
}

TEST(FastAnalyzerTest, SubsumedRuleNotReportedTwice) {
  // In the worked example "abc" is fully subsumed by "abcabc": the fast
  // analysis must not double-report nested hot structure.
  const GrammarSnapshot Snap = snapshotOf("abaabcabcabcabc");
  AnalysisConfig Config{2, 7, 8};
  const FastAnalysisResult Result = analyzeHotStreams(Snap, Config);
  EXPECT_EQ(Result.Streams.size(), 1u);
}

struct RandomAnalysisCase {
  uint64_t Seed;
  size_t Length;
  uint64_t Alphabet;
};

class FastAnalyzerPropertyTest
    : public ::testing::TestWithParam<RandomAnalysisCase> {};

TEST_P(FastAnalyzerPropertyTest, InvariantsHoldOnRandomTraces) {
  const RandomAnalysisCase &Case = GetParam();
  Rng R(Case.Seed);
  Grammar G;
  std::vector<uint32_t> Trace;
  for (size_t I = 0; I < Case.Length; ++I) {
    // Mix random symbols with bursts of a repeated motif so hot streams
    // exist.
    if (R.nextBool(0.5)) {
      for (uint32_t M = 0; M < 6; ++M) {
        Trace.push_back(1000 + M);
        G.append(1000 + M);
      }
    } else {
      const uint32_t T = static_cast<uint32_t>(R.nextBelow(Case.Alphabet));
      Trace.push_back(T);
      G.append(T);
    }
  }

  AnalysisConfig Config;
  Config.MinLength = 3;
  Config.MaxLength = 50;
  Config.HeatThreshold = Trace.size() / 20;
  const FastAnalysisResult Result = analyzeHotStreams(G.snapshot(), Config);

  EXPECT_EQ(Result.TraceLength, Trace.size());
  uint64_t TotalHeat = 0;
  for (const HotDataStream &S : Result.Streams) {
    // Every reported stream satisfies the configured bounds.
    EXPECT_GE(S.length(), Config.MinLength);
    EXPECT_LE(S.length(), Config.MaxLength);
    EXPECT_GE(S.Heat, Config.HeatThreshold);
    EXPECT_EQ(S.Heat, S.length() * S.Frequency);
    TotalHeat += S.Heat;

    // The stream's word actually occurs in the trace at least Frequency
    // times (non-overlapping) — heat is never an overcount.
    uint64_t Occurrences = 0;
    auto It = Trace.begin();
    while (true) {
      It = std::search(It, Trace.end(), S.Symbols.begin(), S.Symbols.end());
      if (It == Trace.end())
        break;
      ++Occurrences;
      It += static_cast<ptrdiff_t>(S.Symbols.size());
    }
    EXPECT_GE(Occurrences, S.Frequency);
  }
  // Cold-use accounting: total reported heat can never exceed the trace.
  EXPECT_LE(TotalHeat, Result.TraceLength);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraces, FastAnalyzerPropertyTest,
    ::testing::Values(RandomAnalysisCase{21, 500, 8},
                      RandomAnalysisCase{22, 1000, 4},
                      RandomAnalysisCase{23, 2000, 16},
                      RandomAnalysisCase{24, 5000, 32},
                      RandomAnalysisCase{25, 1000, 2},
                      RandomAnalysisCase{26, 3000, 64},
                      RandomAnalysisCase{27, 800, 8},
                      RandomAnalysisCase{28, 10000, 16}));

//===----------------------------------------------------------------------===//
// PreciseAnalyzer
//===----------------------------------------------------------------------===//

std::vector<uint32_t> toTrace(const std::string &Text) {
  return std::vector<uint32_t>(Text.begin(), Text.end());
}

TEST(PreciseAnalyzerTest, FindsTheObviousStream) {
  AnalysisConfig Config{3, 10, 12};
  const PreciseAnalysisResult Result =
      analyzeHotStreamsPrecisely(toTrace("abcXabcYabcZabcWabc"), Config);
  ASSERT_FALSE(Result.Streams.empty());
  EXPECT_EQ(wordOf(Result.Streams[0]), "abc");
  EXPECT_EQ(Result.Streams[0].Frequency, 5u);
  EXPECT_EQ(Result.Streams[0].Heat, 15u);
}

TEST(PreciseAnalyzerTest, NonOverlappingCounting) {
  // "aaaa" contains "aa" at 3 positions but only 2 non-overlapping.
  AnalysisConfig Config{2, 2, 4};
  const PreciseAnalysisResult Result =
      analyzeHotStreamsPrecisely(toTrace("aaaa"), Config);
  ASSERT_EQ(Result.Streams.size(), 1u);
  EXPECT_EQ(Result.Streams[0].Frequency, 2u);
}

TEST(PreciseAnalyzerTest, MaximalityFilter) {
  // "abcabc..." : "abc" repeats 6x (heat 18); substreams of equally
  // frequent longer streams are dropped, so "ab" (also 6x, heat 12) must
  // not be reported alongside it.
  AnalysisConfig Config{2, 3, 12};
  const PreciseAnalysisResult Result = analyzeHotStreamsPrecisely(
      toTrace("abcabcabcabcabcabc"), Config);
  bool HasAbc = false;
  for (const HotDataStream &S : Result.Streams) {
    if (wordOf(S) == "abc")
      HasAbc = true;
    EXPECT_NE(wordOf(S), "ab");
    EXPECT_NE(wordOf(S), "bc");
  }
  EXPECT_TRUE(HasAbc);
}

TEST(PreciseAnalyzerTest, EmptyAndShortTraces) {
  AnalysisConfig Config{2, 10, 2};
  EXPECT_TRUE(analyzeHotStreamsPrecisely({}, Config).Streams.empty());
  EXPECT_TRUE(analyzeHotStreamsPrecisely({1}, Config).Streams.empty());
}

TEST(PreciseAnalyzerTest, SortedHottestFirst) {
  AnalysisConfig Config{2, 6, 4};
  const PreciseAnalysisResult Result = analyzeHotStreamsPrecisely(
      toTrace("ababababababXcdcdY"), Config);
  for (size_t I = 1; I < Result.Streams.size(); ++I)
    EXPECT_GE(Result.Streams[I - 1].Heat, Result.Streams[I].Heat);
}

/// The precise analyzer is the reference: on traces where the fast
/// analyzer reports a stream, the precise one must find a stream of at
/// least that heat (the fast algorithm is an under-approximation of the
/// best available heat, never an over-approximation).
TEST(PreciseAnalyzerTest, FastNeverBeatsPrecise) {
  Rng R(77);
  for (int Round = 0; Round < 10; ++Round) {
    Grammar G;
    std::vector<uint32_t> Trace;
    for (int I = 0; I < 400; ++I) {
      if (R.nextBool(0.6))
        for (uint32_t M = 0; M < 5; ++M) {
          Trace.push_back(500 + M);
          G.append(500 + M);
        }
      else {
        const uint32_t T = static_cast<uint32_t>(R.nextBelow(20));
        Trace.push_back(T);
        G.append(T);
      }
    }
    AnalysisConfig Config{3, 30, Trace.size() / 25};
    const FastAnalysisResult Fast = analyzeHotStreams(G.snapshot(), Config);
    const PreciseAnalysisResult Precise =
        analyzeHotStreamsPrecisely(Trace, Config);
    uint64_t FastBest = 0, PreciseBest = 0;
    for (const HotDataStream &S : Fast.Streams)
      FastBest = std::max(FastBest, S.Heat);
    for (const HotDataStream &S : Precise.Streams)
      PreciseBest = std::max(PreciseBest, S.Heat);
    EXPECT_LE(FastBest, PreciseBest) << "round " << Round;
  }
}

//===----------------------------------------------------------------------===//
// Coverage
//===----------------------------------------------------------------------===//

TEST(CoverageTest, FullAndPartial) {
  const std::vector<uint32_t> Trace = toTrace("abcabcxyz");
  HotDataStream S;
  S.Symbols = toTrace("abc");
  EXPECT_NEAR(traceCoverage(Trace, {S}), 6.0 / 9.0, 1e-9);
  HotDataStream All;
  All.Symbols = Trace;
  EXPECT_NEAR(traceCoverage(Trace, {All}), 1.0, 1e-9);
  EXPECT_EQ(traceCoverage({}, {S}), 0.0);
  EXPECT_EQ(traceCoverage(Trace, {}), 0.0);
}

TEST(CoverageTest, OverlappingStreamsCountOnce) {
  const std::vector<uint32_t> Trace = toTrace("abcd");
  HotDataStream A, B;
  A.Symbols = toTrace("abc");
  B.Symbols = toTrace("bcd");
  EXPECT_NEAR(traceCoverage(Trace, {A, B}), 1.0, 1e-9);
}

TEST(HotDataStreamTest, UniqueRefs) {
  HotDataStream S;
  S.Symbols = {1, 2, 1, 3, 2, 1};
  EXPECT_EQ(S.uniqueRefs(), 3u);
  EXPECT_EQ(S.length(), 6u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Analyzer configuration edges
//===----------------------------------------------------------------------===//

namespace {

TEST(FastAnalyzerTest, InvertedLengthBoundsFindNothing) {
  const GrammarSnapshot Snap = snapshotOf("abcabcabcabc");
  AnalysisConfig Config;
  Config.MinLength = 50;
  Config.MaxLength = 10; // min > max: nothing can qualify
  Config.HeatThreshold = 1;
  EXPECT_TRUE(analyzeHotStreams(Snap, Config).Streams.empty());
}

TEST(FastAnalyzerTest, ZeroHeatThresholdClampsSafely) {
  const GrammarSnapshot Snap = snapshotOf("ababab");
  AnalysisConfig Config{2, 10, 0};
  const FastAnalysisResult Result = analyzeHotStreams(Snap, Config);
  // Threshold 0 admits every qualifying rule; still no start rule.
  for (const HotDataStream &S : Result.Streams)
    EXPECT_LT(S.length(), 6u);
}

TEST(PreciseAnalyzerTest, SingleSymbolAlphabet) {
  AnalysisConfig Config{2, 4, 4};
  const PreciseAnalysisResult Result =
      analyzeHotStreamsPrecisely(std::vector<uint32_t>(16, 7), Config);
  ASSERT_FALSE(Result.Streams.empty());
  // The maximal stream is the longest window (length 4, 4 disjoint
  // occurrences in 16 symbols).
  EXPECT_EQ(Result.Streams[0].length(), 4u);
  EXPECT_EQ(Result.Streams[0].Frequency, 4u);
}

//===----------------------------------------------------------------------===//
// Degenerate traces and exact threshold boundaries
//===----------------------------------------------------------------------===//

TEST(FastAnalyzerTest, SingleSymbolTrace) {
  const GrammarSnapshot Snap = snapshotOf("a");
  AnalysisConfig Config{1, 10, 1};
  const FastAnalysisResult Result = analyzeHotStreams(Snap, Config);
  // A one-symbol grammar is just the start rule, which is never reported.
  EXPECT_TRUE(Result.Streams.empty());
  EXPECT_EQ(Result.TraceLength, 1u);
}

TEST(FastAnalyzerTest, AllUniqueReferencesFindNothing) {
  // Nothing repeats, so Sequitur forms no rules and there is nothing to
  // report no matter how permissive the thresholds are.
  Grammar G;
  for (uint64_t T = 0; T < 256; ++T)
    G.append(T);
  AnalysisConfig Config{1, 256, 1};
  const FastAnalysisResult Result = analyzeHotStreams(G.snapshot(), Config);
  EXPECT_TRUE(Result.Streams.empty());
  EXPECT_EQ(Result.TraceLength, 256u);
  EXPECT_EQ(Result.TotalHeat, 0u);
}

TEST(PreciseAnalyzerTest, AllUniqueReferencesFindNothing) {
  std::vector<uint32_t> Trace(256);
  for (uint32_t I = 0; I < 256; ++I)
    Trace[I] = I;
  AnalysisConfig Config{1, 256, 1};
  EXPECT_TRUE(analyzeHotStreamsPrecisely(Trace, Config).Streams.empty());
}

TEST(FastAnalyzerTest, HeatExactlyAtThresholdIsHot) {
  // "abab": rule A -> a b has length 2, coldUses 2, heat 4.  The
  // threshold test is inclusive (H <= heat, Figure 5), so heat == H
  // must be reported...
  const GrammarSnapshot Snap = snapshotOf("abab");
  AnalysisConfig Config{2, 10, 4};
  const FastAnalysisResult AtThreshold = analyzeHotStreams(Snap, Config);
  ASSERT_EQ(AtThreshold.Streams.size(), 1u);
  EXPECT_EQ(AtThreshold.Streams[0].Heat, 4u);

  // ...and one notch above the heat must not be.
  Config.HeatThreshold = 5;
  EXPECT_TRUE(analyzeHotStreams(Snap, Config).Streams.empty());
}

TEST(PreciseAnalyzerTest, HeatExactlyAtThresholdIsHot) {
  const std::vector<uint32_t> Trace = {1, 2, 1, 2}; // "ab" twice: heat 4
  AnalysisConfig Config{2, 2, 4};
  const PreciseAnalysisResult AtThreshold =
      analyzeHotStreamsPrecisely(Trace, Config);
  ASSERT_EQ(AtThreshold.Streams.size(), 1u);
  EXPECT_EQ(AtThreshold.Streams[0].Heat, 4u);

  Config.HeatThreshold = 5;
  EXPECT_TRUE(analyzeHotStreamsPrecisely(Trace, Config).Streams.empty());
}

} // namespace
