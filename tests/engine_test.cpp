//===- tests/engine_test.cpp - Parallel experiment engine tests ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Tests for src/engine: the JobScheduler worker pool, the spec-order
// ResultSink merge, and the determinism contract of the Executor API —
// the aggregate JSON must be byte-identical for any job count, shard
// failures must not corrupt or reorder the merged output, and
// cancellation must leave no leaked threads (this binary also runs
// under TSan in CI).
//
//===----------------------------------------------------------------------===//

#include "engine/Executor.h"
#include "engine/ExecutorFactory.h"
#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/JobScheduler.h"
#include "engine/ResultSink.h"
#include "engine/ResultsJson.h"

#include <gtest/gtest.h>

#include <atomic>
#include <semaphore>
#include <string>
#include <vector>

using namespace hds;
using namespace hds::engine;

namespace {

//===----------------------------------------------------------------------===//
// JobScheduler
//===----------------------------------------------------------------------===//

TEST(JobScheduler, RunsEverySubmittedJob) {
  std::atomic<int> Counter{0};
  {
    JobScheduler Pool(4);
    EXPECT_EQ(Pool.threadCount(), 4u);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Counter] { Counter.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Pool.executed(), 64u);
    EXPECT_EQ(Pool.dropped(), 0u);
  }
  EXPECT_EQ(Counter.load(), 64);
}

TEST(JobScheduler, ZeroThreadsClampsToOne) {
  JobScheduler Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::atomic<int> Counter{0};
  Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 1);
}

TEST(JobScheduler, WaitWithNoJobsReturnsImmediately) {
  JobScheduler Pool(2);
  Pool.wait();
  EXPECT_EQ(Pool.executed(), 0u);
}

TEST(JobScheduler, CancelDropsQueuedJobsButFinishesRunningOnes) {
  std::binary_semaphore JobStarted{0};
  std::binary_semaphore ReleaseJob{0};
  std::atomic<int> Ran{0};

  JobScheduler Pool(1);
  // First job occupies the only worker until we release it.
  Pool.submit([&] {
    JobStarted.release();
    ReleaseJob.acquire();
    Ran.fetch_add(1);
  });
  for (int I = 0; I < 9; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });

  JobStarted.acquire(); // the worker is now inside job 0
  Pool.cancel();        // drops the 9 queued jobs
  ReleaseJob.release();
  Pool.wait();

  EXPECT_EQ(Ran.load(), 1);
  EXPECT_EQ(Pool.executed(), 1u);
  EXPECT_EQ(Pool.dropped(), 9u);
}

TEST(JobScheduler, DestructorJoinsWithQueuedJobs) {
  // Destroying the pool while jobs are still queued must not leak
  // threads or deadlock (TSan/ASan in CI would flag either).
  std::atomic<int> Ran{0};
  {
    JobScheduler Pool(2);
    for (int I = 0; I < 8; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
    // No wait(): the destructor drops what has not started and joins.
  }
  EXPECT_LE(Ran.load(), 8);
}

//===----------------------------------------------------------------------===//
// ResultSink
//===----------------------------------------------------------------------===//

RunResult okResult(const std::string &Workload, uint64_t Cycles) {
  RunResult Result;
  Result.Spec.Workload = Workload;
  Result.State = RunResult::Status::Ok;
  Result.Cycles = Cycles;
  return Result;
}

TEST(ResultSink, MergesOutOfOrderDeliveriesInSpecOrder) {
  ResultSink Sink(3);
  Sink.deliver(2, okResult("c", 30));
  Sink.deliver(0, okResult("a", 10));
  Sink.deliver(1, okResult("b", 20));
  EXPECT_EQ(Sink.completed(), 3u);

  const std::vector<RunResult> Results = Sink.take();
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_EQ(Results[0].Spec.Workload, "a");
  EXPECT_EQ(Results[1].Spec.Workload, "b");
  EXPECT_EQ(Results[2].Spec.Workload, "c");
  EXPECT_EQ(Results[1].Cycles, 20u);
}

TEST(ResultSink, CallbackFiresInCompletionOrder) {
  ResultSink Sink(2);
  std::vector<std::size_t> Order;
  Sink.setCallback([&Order](std::size_t Index, const RunResult &) {
    Order.push_back(Index);
  });
  Sink.deliver(1, okResult("b", 2));
  Sink.deliver(0, okResult("a", 1));
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], 1u);
  EXPECT_EQ(Order[1], 0u);
}

TEST(ResultSink, UnfilledSlotsComeBackCancelled) {
  ResultSink Sink(2);
  Sink.deliver(0, okResult("a", 1));
  const std::vector<RunResult> Results = Sink.take();
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_TRUE(Results[0].ok());
  EXPECT_EQ(Results[1].State, RunResult::Status::Cancelled);
}

//===----------------------------------------------------------------------===//
// Spec vocabulary
//===----------------------------------------------------------------------===//

TEST(ExperimentSpec, ModeTokensRoundTrip) {
  const core::RunMode Modes[] = {
      core::RunMode::Original,         core::RunMode::ChecksOnly,
      core::RunMode::Profile,          core::RunMode::ProfileAnalyze,
      core::RunMode::MatchNoPrefetch,  core::RunMode::SequentialPrefetch,
      core::RunMode::DynamicPrefetch};
  for (core::RunMode Mode : Modes) {
    core::RunMode Parsed;
    ASSERT_TRUE(core::parseRunModeToken(core::runModeToken(Mode), Parsed));
    EXPECT_EQ(Parsed, Mode);
  }
  core::RunMode Parsed;
  EXPECT_FALSE(core::parseRunModeToken("bogus", Parsed));
}

TEST(ExperimentSpec, FilterNarrowsTheMatrix) {
  std::vector<ExperimentSpec> Specs = defaultMatrix();
  ASSERT_TRUE(applyFilter(Specs, "workload=mcf"));
  ASSERT_FALSE(Specs.empty());
  for (const ExperimentSpec &Spec : Specs)
    EXPECT_EQ(Spec.Workload, "mcf");

  ASSERT_TRUE(applyFilter(Specs, "mode=dynpref"));
  ASSERT_EQ(Specs.size(), 2u);
  for (const ExperimentSpec &Spec : Specs)
    EXPECT_EQ(Spec.Mode, core::RunMode::DynamicPrefetch);
  EXPECT_NE(Specs[0].Tuned, Specs[1].Tuned);

  ASSERT_TRUE(applyFilter(Specs, "tuning=fixed"));
  ASSERT_EQ(Specs.size(), 1u);
  EXPECT_FALSE(Specs[0].Tuned);
}

TEST(ExperimentSpec, BadFilterReportsErrorAndLeavesSpecsAlone) {
  std::vector<ExperimentSpec> Specs = defaultMatrix();
  const std::size_t Before = Specs.size();
  std::string Error;
  EXPECT_FALSE(applyFilter(Specs, "flavor=spicy", &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Specs.size(), Before);
  EXPECT_FALSE(applyFilter(Specs, "no-equals-sign", &Error));
  EXPECT_EQ(Specs.size(), Before);
}

//===----------------------------------------------------------------------===//
// Local executor determinism and failure isolation
//===----------------------------------------------------------------------===//

std::vector<ExperimentSpec> smallMatrix() {
  // vpr under every mode, at a fixed tiny iteration count so the whole
  // matrix stays fast even when run three times.
  std::vector<ExperimentSpec> Specs;
  const core::RunMode Modes[] = {
      core::RunMode::Original,         core::RunMode::ChecksOnly,
      core::RunMode::Profile,          core::RunMode::ProfileAnalyze,
      core::RunMode::MatchNoPrefetch,  core::RunMode::SequentialPrefetch,
      core::RunMode::DynamicPrefetch};
  for (core::RunMode Mode : Modes) {
    ExperimentSpec Spec;
    Spec.Workload = "vpr";
    Spec.Mode = Mode;
    Spec.Iterations = 300;
    Specs.push_back(Spec);
  }
  return Specs;
}

std::string jsonForJobs(const std::vector<ExperimentSpec> &Specs,
                        unsigned Jobs) {
  FleetConfig Config;
  Config.Jobs = Jobs;
  return resultsToJson(makeLocal(Config)->run(Specs));
}

TEST(RunMatrix, AggregateJsonIsByteIdenticalAcrossJobCounts) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  const std::string Json1 = jsonForJobs(Specs, 1);
  const std::string Json2 = jsonForJobs(Specs, 2);
  const std::string Json8 = jsonForJobs(Specs, 8);
  EXPECT_EQ(Json1, Json2);
  EXPECT_EQ(Json1, Json8);
}

TEST(RunMatrix, FailedShardKeepsOrderAndDoesNotPoisonNeighbours) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Good;
  Good.Workload = "vpr";
  Good.Iterations = 200;
  ExperimentSpec Bad = Good;
  Bad.Workload = "no-such-workload";
  Specs.push_back(Good);
  Specs.push_back(Bad);
  Specs.push_back(Good);

  FleetConfig Config;
  Config.Jobs = 2;
  const std::vector<RunResult> Results = makeLocal(Config)->run(Specs);
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_TRUE(Results[0].ok());
  EXPECT_EQ(Results[1].State, RunResult::Status::Error);
  EXPECT_FALSE(Results[1].Error.empty());
  EXPECT_EQ(Results[1].Spec.Workload, "no-such-workload");
  EXPECT_TRUE(Results[2].ok());
  // The two good shards are the same experiment: identical cycles.
  EXPECT_EQ(Results[0].Cycles, Results[2].Cycles);
}

TEST(RunMatrix, CancellationKeepsSpecOrderAndJoinsCleanly) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  std::atomic<bool> Cancel{false};

  FleetConfig Config;
  Config.Jobs = 1; // serial: deliveries happen in spec order
  Config.CancelRequested = &Cancel;
  const std::vector<RunResult> Results = makeLocal(Config)->run(
      Specs, [&Cancel](std::size_t, const RunResult &) {
        Cancel.store(true); // request cancellation after the first delivery
      });

  ASSERT_EQ(Results.size(), Specs.size());
  EXPECT_TRUE(Results[0].ok());
  std::size_t Cancelled = 0;
  for (std::size_t I = 0; I < Results.size(); ++I) {
    // Every slot still carries its own spec, run or not.
    EXPECT_EQ(Results[I].Spec.Workload, Specs[I].Workload);
    EXPECT_EQ(Results[I].Spec.Mode, Specs[I].Mode);
    if (Results[I].State == RunResult::Status::Cancelled)
      ++Cancelled;
  }
  EXPECT_GE(Cancelled, 1u);
}

//===----------------------------------------------------------------------===//
// JSON writer
//===----------------------------------------------------------------------===//

TEST(ResultsJson, OverheadIsRelativeToTheOriginalBaseline) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Base;
  Base.Workload = "vpr";
  Base.Mode = core::RunMode::Original;
  Base.Iterations = 300;
  ExperimentSpec Opt = Base;
  Opt.Mode = core::RunMode::DynamicPrefetch;
  Specs.push_back(Base);
  Specs.push_back(Opt);

  const std::vector<RunResult> Results = makeLocal()->run(Specs);
  const std::string Json = resultsToJson(Results);
  // The baseline's overhead over itself is exactly zero.
  EXPECT_NE(Json.find("\"overhead_pct\": 0.0000"), std::string::npos);
  EXPECT_NE(Json.find("\"schema\": \"hds-matrix-results-v1\""),
            std::string::npos);
  // Deterministic output carries no timing object unless asked for.
  EXPECT_EQ(Json.find("\"timing\""), std::string::npos);
}

TEST(ResultsJson, TimingObjectOnlyAppearsOnRequest) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 100;
  Specs.push_back(Spec);
  const std::vector<RunResult> Results = makeLocal()->run(Specs);

  TimingInfo Timing;
  Timing.IncludeWall = true;
  Timing.WallMillis = 1234;
  Timing.Jobs = 8;
  Timing.LintJson = "{\"total_ms\": 7}";
  const std::string Json = resultsToJson(Results, Timing);
  EXPECT_NE(Json.find("\"timing\""), std::string::npos);
  EXPECT_NE(Json.find("\"wall_ms\": 1234"), std::string::npos);
  EXPECT_NE(Json.find("\"jobs\": 8"), std::string::npos);
  EXPECT_NE(Json.find("\"total_ms\": 7"), std::string::npos);
}

TEST(ResultsJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string("a\x01"
                                   "b")),
            "a\\u0001b");
}

TEST(ResultsJson, LayoutSeedChangesTheRunButNotItsShape) {
  // Seeded runs perturb the heap base; the run still completes and the
  // result echoes the seed so trajectory files can group by it.
  ExperimentSpec Seeded;
  Seeded.Workload = "vpr";
  Seeded.Iterations = 200;
  Seeded.Seed = 3;
  const RunResult Result = runExperiment(Seeded);
  ASSERT_TRUE(Result.ok());
  EXPECT_EQ(Result.Spec.Seed, 3u);
  const std::string Json = resultsToJson({Result});
  EXPECT_NE(Json.find("\"seed\": 3"), std::string::npos);
}

} // namespace
