//===- tests/prefetchers_test.cpp - Hardware prefetcher baselines ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Tests for the stride and Markov prefetcher baselines and the
// static-scheme pinning model.
//
//===----------------------------------------------------------------------===//

#include "core/MarkovPrefetcher.h"
#include "core/Runtime.h"
#include "core/StridePrefetcher.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace hds;
using namespace hds::core;

namespace {

//===----------------------------------------------------------------------===//
// StridePrefetcher
//===----------------------------------------------------------------------===//

class StrideTest : public ::testing::Test {
protected:
  StrideTest() : Prefetcher(StridePrefetcherConfig()) {}
  memsim::MemoryHierarchy Memory;
  StridePrefetcher Prefetcher{StridePrefetcherConfig()};
};

TEST_F(StrideTest, ConfirmedStrideIssuesPrefetches) {
  // Three accesses with the same stride: the third confirms and issues.
  Prefetcher.onAccess(1, 0x1000, Memory);
  Prefetcher.onAccess(1, 0x1040, Memory);
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued, 0u);
  Prefetcher.onAccess(1, 0x1080, Memory);
  EXPECT_EQ(Prefetcher.stats().StridesConfirmed, 1u);
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued, 2u); // degree 2
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x10C0));
  EXPECT_TRUE(Memory.l1().contains(0x1100));
}

TEST_F(StrideTest, NegativeStrideWorks) {
  Prefetcher.onAccess(1, 0x2000, Memory);
  Prefetcher.onAccess(1, 0x1FC0, Memory);
  Prefetcher.onAccess(1, 0x1F80, Memory);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x1F40));
}

TEST_F(StrideTest, IrregularAddressesNeverConfirm) {
  // Pointer-chase-like deltas (huge, varying) never train the entry.
  const memsim::Addr Addrs[] = {0x1000, 0x9000, 0x3000, 0xF000, 0x2000};
  for (memsim::Addr A : Addrs)
    Prefetcher.onAccess(1, A, Memory);
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued, 0u);
}

TEST_F(StrideTest, SmallIrregularStridesDoNotConfirm) {
  Prefetcher.onAccess(1, 0x1000, Memory);
  Prefetcher.onAccess(1, 0x1040, Memory); // stride 0x40
  Prefetcher.onAccess(1, 0x10C0, Memory); // stride 0x80: retrain
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued, 0u);
}

TEST_F(StrideTest, DistinctPcsTrainIndependently) {
  Prefetcher.onAccess(1, 0x1000, Memory);
  Prefetcher.onAccess(2, 0x8000, Memory); // different pc, different entry
  Prefetcher.onAccess(1, 0x1040, Memory);
  Prefetcher.onAccess(2, 0x8100, Memory);
  Prefetcher.onAccess(1, 0x1080, Memory);
  Prefetcher.onAccess(2, 0x8200, Memory);
  EXPECT_EQ(Prefetcher.stats().StridesConfirmed, 2u);
}

TEST_F(StrideTest, SameAddressIsNeutral) {
  Prefetcher.onAccess(1, 0x1000, Memory);
  Prefetcher.onAccess(1, 0x1040, Memory);
  Prefetcher.onAccess(1, 0x1040, Memory); // repeat: neither trains nor breaks
  Prefetcher.onAccess(1, 0x1080, Memory);
  EXPECT_EQ(Prefetcher.stats().StridesConfirmed, 1u);
}

TEST_F(StrideTest, HardwarePrefetchesSpendNoIssueSlots) {
  const uint64_t Before = Memory.now();
  Prefetcher.onAccess(1, 0x1000, Memory);
  Prefetcher.onAccess(1, 0x1040, Memory);
  Prefetcher.onAccess(1, 0x1080, Memory);
  EXPECT_EQ(Memory.now(), Before);
}

TEST_F(StrideTest, ResetClearsState) {
  Prefetcher.onAccess(1, 0x1000, Memory);
  Prefetcher.onAccess(1, 0x1040, Memory);
  Prefetcher.reset();
  Prefetcher.onAccess(1, 0x1080, Memory);
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued, 0u);
  EXPECT_EQ(Prefetcher.stats().Updates, 1u);
}

//===----------------------------------------------------------------------===//
// MarkovPrefetcher
//===----------------------------------------------------------------------===//

class MarkovTest : public ::testing::Test {
protected:
  memsim::MemoryHierarchy Memory;
  MarkovPrefetcher Prefetcher{MarkovPrefetcherConfig()};
};

TEST_F(MarkovTest, LearnsDigramAndPrefetches) {
  // Miss sequence A, B teaches A -> B; the next miss on A prefetches B.
  Prefetcher.onMiss(0x1000, Memory);
  Prefetcher.onMiss(0x5000, Memory);
  EXPECT_EQ(Prefetcher.stats().TransitionsRecorded, 1u);
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued, 0u);
  Prefetcher.onMiss(0x1000, Memory);
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued, 1u);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x5000));
}

TEST_F(MarkovTest, SuccessorSlotsAreBounded) {
  // A followed by three different blocks: only the most recent
  // SuccessorsPerNode (2) survive.
  for (memsim::Addr B : {0x5000, 0x6000, 0x7000}) {
    Prefetcher.onMiss(0x1000, Memory);
    Prefetcher.onMiss(B, Memory);
  }
  Prefetcher.onMiss(0x1000, Memory);
  // Intermediate A-misses predicted {5}, then {6,5}; the final one
  // predicts {7,6}: 1 + 2 + 2 prefetches, never more than 2 per miss.
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued, 5u);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x7000)); // most recent always kept
}

TEST_F(MarkovTest, RepeatedMissOfSameBlockIsNotATransition) {
  Prefetcher.onMiss(0x1000, Memory);
  Prefetcher.onMiss(0x1000, Memory);
  EXPECT_EQ(Prefetcher.stats().TransitionsRecorded, 0u);
}

TEST_F(MarkovTest, TableCapacityEvicts) {
  MarkovPrefetcherConfig Config;
  Config.MaxNodes = 4;
  MarkovPrefetcher Small(Config);
  // Create 8 nodes; only 4 survive.
  for (memsim::Addr A = 0; A < 9; ++A)
    Small.onMiss(0x1000 + A * 0x1000, Memory);
  EXPECT_LE(Small.nodeCount(), 4u);
}

TEST_F(MarkovTest, PrioritizedByRecency) {
  // A->B, then A->C: C is the more recent, listed first.
  Prefetcher.onMiss(0x1000, Memory);
  Prefetcher.onMiss(0x5000, Memory); // A->B
  Prefetcher.onMiss(0x1000, Memory); // issues prefetch for B
  Prefetcher.onMiss(0x6000, Memory); // A->C
  const uint64_t Before = Prefetcher.stats().PrefetchesIssued;
  Prefetcher.onMiss(0x1000, Memory); // issues B and C
  EXPECT_EQ(Prefetcher.stats().PrefetchesIssued - Before, 2u);
}

//===----------------------------------------------------------------------===//
// Runtime integration
//===----------------------------------------------------------------------===//

TEST(RuntimePrefetcherTest, StrideCoversSequentialScan) {
  OptimizerConfig Config;
  Config.Mode = RunMode::Original;
  Config.EnableStridePrefetcher = true;
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("scan");
  const auto S = Rt.declareSite(P);
  const memsim::Addr Base = Rt.allocate(1 << 20, 64);

  Runtime::ProcedureScope Scope(Rt, P);
  for (uint64_t I = 0; I < 2000; ++I) {
    Rt.load(S, Base + I * 32);
    Rt.compute(4);
  }
  ASSERT_NE(Rt.stridePrefetcher(), nullptr);
  EXPECT_GT(Rt.stridePrefetcher()->stats().PrefetchesIssued, 1000u);
  // Most of the scan is covered: far fewer full-latency misses than refs.
  EXPECT_GT(Rt.memory().l1().stats().UsefulPrefetches +
                Rt.memory().stats().PartialHits,
            1000u);
}

TEST(RuntimePrefetcherTest, DisabledPrefetchersAreNull) {
  OptimizerConfig Config;
  Runtime Rt(Config);
  EXPECT_EQ(Rt.stridePrefetcher(), nullptr);
  EXPECT_EQ(Rt.markovPrefetcher(), nullptr);
}

TEST(RuntimePrefetcherTest, MarkovObservesOnlyMisses) {
  OptimizerConfig Config;
  Config.Mode = RunMode::Original;
  Config.EnableMarkovPrefetcher = true;
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("p");
  const auto S = Rt.declareSite(P);
  const memsim::Addr A = Rt.allocate(64);

  Runtime::ProcedureScope Scope(Rt, P);
  Rt.load(S, A); // miss
  Rt.load(S, A); // hit: not observed
  Rt.load(S, A); // hit
  ASSERT_NE(Rt.markovPrefetcher(), nullptr);
  EXPECT_EQ(Rt.markovPrefetcher()->stats().MissesObserved, 1u);
}

//===----------------------------------------------------------------------===//
// Static-scheme pinning
//===----------------------------------------------------------------------===//

TEST(PinTest, PinnedRunKeepsFirstOptimizationForever) {
  OptimizerConfig Config;
  Config.Mode = RunMode::DynamicPrefetch;
  Config.PinFirstOptimization = true;
  Config.Tracing = {1'481, 30, 30, 120, true};
  Runtime Rt(Config);
  auto W = workloads::createWorkload("vpr");
  W->setup(Rt);
  W->run(Rt, 6000);

  // Exactly one optimization cycle was recorded; the engine stayed
  // installed and the image patched.
  EXPECT_EQ(Rt.stats().Cycles.size(), 1u);
  EXPECT_TRUE(Rt.engine().installed());
  EXPECT_TRUE(Rt.optimizer().pinned());
  EXPECT_EQ(Rt.image().deoptimizations(), 0u);
  EXPECT_GT(Rt.stats().CompleteMatches, 0u);
}

TEST(PinTest, PinnedRunStopsFrameworkCosts) {
  // After pinning, checks stop costing and tracing stops: total checks
  // executed must be far below an unpinned run's.
  auto RunChecks = [](bool Pin) {
    OptimizerConfig Config;
    Config.Mode = RunMode::DynamicPrefetch;
    Config.PinFirstOptimization = Pin;
    Config.Tracing = {1'481, 30, 30, 120, true};
    Runtime Rt(Config);
    auto W = workloads::createWorkload("vpr");
    W->setup(Rt);
    W->run(Rt, 6000);
    return Rt.stats().ChecksExecuted;
  };
  EXPECT_LT(RunChecks(true), RunChecks(false) / 2);
}

TEST(PinTest, TwophaseWorkloadChangesItsStreams) {
  // The phase-change program: a pinned run matches only during the
  // first phase; a dynamic run keeps matching.
  auto RunMatches = [](bool Pin) {
    OptimizerConfig Config;
    Config.Mode = RunMode::DynamicPrefetch;
    Config.PinFirstOptimization = Pin;
    Config.Tracing = {1'481, 30, 30, 120, true};
    Runtime Rt(Config);
    auto W = workloads::createWorkload("twophase");
    W->setup(Rt);
    W->run(Rt, 12000);
    return Rt.stats().CompleteMatches;
  };
  const uint64_t Static = RunMatches(true);
  const uint64_t Dynamic = RunMatches(false);
  EXPECT_GT(Dynamic, 2 * Static);
}

} // namespace

//===----------------------------------------------------------------------===//
// Adaptive hibernation (optimizer side)
//===----------------------------------------------------------------------===//

namespace {

OptimizerConfig adaptiveConfig() {
  OptimizerConfig Config;
  Config.Mode = RunMode::DynamicPrefetch;
  Config.Tracing = {1'481, 30, 30, 120, true};
  Config.AdaptiveHibernation = true;
  return Config;
}

TEST(AdaptiveHibernationTest, StableBehaviourStretchesHibernation) {
  Runtime Rt(adaptiveConfig());
  auto W = workloads::createWorkload("vpr");
  W->setup(Rt);
  W->run(Rt, 16000);
  const RunStats &Stats = Rt.stats();
  ASSERT_GE(Stats.Cycles.size(), 2u);
  // Each stable cycle doubles the hibernation length (bounded).
  EXPECT_GT(Stats.Cycles.back().NextHibernationPeriods,
            Stats.Cycles.front().NextHibernationPeriods);
}

TEST(AdaptiveHibernationTest, BoundedByMaxFactor) {
  OptimizerConfig Config = adaptiveConfig();
  Config.AdaptiveHibernationMaxFactor = 2;
  Runtime Rt(Config);
  auto W = workloads::createWorkload("vpr");
  W->setup(Rt);
  W->run(Rt, 24000);
  for (const CycleStats &Cycle : Rt.stats().Cycles)
    EXPECT_LE(Cycle.NextHibernationPeriods, 2 * Config.Tracing.NHibernate);
}

TEST(AdaptiveHibernationTest, PhaseChangeResetsHibernation) {
  Runtime Rt(adaptiveConfig());
  auto W = workloads::createWorkload("twophase");
  W->setup(Rt);
  W->run(Rt, 24000);
  const RunStats &Stats = Rt.stats();
  ASSERT_GE(Stats.Cycles.size(), 3u);
  // At least one later cycle falls back to the base length (the phase
  // transition changed the detected stream set).
  bool SawReset = false;
  for (size_t C = 1; C < Stats.Cycles.size(); ++C)
    SawReset |= Stats.Cycles[C].NextHibernationPeriods ==
                Rt.config().Tracing.NHibernate;
  EXPECT_TRUE(SawReset);
}

TEST(AdaptiveHibernationTest, OffByDefault) {
  OptimizerConfig Config;
  EXPECT_FALSE(Config.AdaptiveHibernation);
}

} // namespace
