//===- tests/prefetchers_test.cpp - Prefetcher zoo -------------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Tests for the pluggable prefetcher zoo (src/prefetch/): the stride,
// Markov, stream, and pair-table engines, the dueling selector, the
// runtime's prefetcher stack, and the static-scheme pinning model.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "obs/PrefetchStats.h"
#include "prefetch/DuelingSelector.h"
#include "prefetch/MarkovPrefetcher.h"
#include "prefetch/PairTablePrefetcher.h"
#include "prefetch/PrefetcherStack.h"
#include "prefetch/StreamPrefetcher.h"
#include "prefetch/StridePrefetcher.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace hds;
using namespace hds::core;
using namespace hds::prefetch;

namespace {

/// A demand access as the stack would deliver it on an L1 hit.
AccessEvent hit(vulcan::SiteId Site, memsim::Addr Addr) {
  return AccessEvent{Site, Addr, 1, false};
}

/// A demand access as the stack would deliver it on an L1 miss.
AccessEvent miss(memsim::Addr Addr) {
  return AccessEvent{1, Addr, 100, true};
}

//===----------------------------------------------------------------------===//
// StridePrefetcher
//===----------------------------------------------------------------------===//

class StrideTest : public ::testing::Test {
protected:
  memsim::MemoryHierarchy Memory;
  StridePrefetcher Prefetcher{StridePrefetcherConfig(), /*AssignedTag=*/0};

  void access(vulcan::SiteId Site, memsim::Addr Addr) {
    Prefetcher.onAccess(hit(Site, Addr), Memory);
  }
};

TEST_F(StrideTest, ConfirmedStrideIssuesPrefetches) {
  // Three accesses with the same stride: the third confirms and issues.
  access(1, 0x1000);
  access(1, 0x1040);
  EXPECT_EQ(Prefetcher.issued(), 0u);
  access(1, 0x1080);
  EXPECT_EQ(Prefetcher.confirmed(), 1u);
  EXPECT_EQ(Prefetcher.issued(), 2u); // degree 2
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x10C0));
  EXPECT_TRUE(Memory.l1().contains(0x1100));
}

TEST_F(StrideTest, NegativeStrideWorks) {
  access(1, 0x2000);
  access(1, 0x1FC0);
  access(1, 0x1F80);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x1F40));
}

TEST_F(StrideTest, IrregularAddressesNeverConfirm) {
  // Pointer-chase-like deltas (huge, varying) never train the entry.
  const memsim::Addr Addrs[] = {0x1000, 0x9000, 0x3000, 0xF000, 0x2000};
  for (memsim::Addr A : Addrs)
    access(1, A);
  EXPECT_EQ(Prefetcher.issued(), 0u);
}

TEST_F(StrideTest, SmallIrregularStridesDoNotConfirm) {
  access(1, 0x1000);
  access(1, 0x1040); // stride 0x40
  access(1, 0x10C0); // stride 0x80: retrain
  EXPECT_EQ(Prefetcher.issued(), 0u);
}

TEST_F(StrideTest, DistinctPcsTrainIndependently) {
  access(1, 0x1000);
  access(2, 0x8000); // different pc, different entry
  access(1, 0x1040);
  access(2, 0x8100);
  access(1, 0x1080);
  access(2, 0x8200);
  EXPECT_EQ(Prefetcher.confirmed(), 2u);
}

TEST_F(StrideTest, SameAddressIsNeutral) {
  access(1, 0x1000);
  access(1, 0x1040);
  access(1, 0x1040); // repeat: neither trains nor breaks
  access(1, 0x1080);
  EXPECT_EQ(Prefetcher.confirmed(), 1u);
}

TEST_F(StrideTest, HardwarePrefetchesSpendNoIssueSlots) {
  const uint64_t Before = Memory.now();
  access(1, 0x1000);
  access(1, 0x1040);
  access(1, 0x1080);
  EXPECT_EQ(Memory.now(), Before);
}

TEST_F(StrideTest, ResetClearsState) {
  access(1, 0x1000);
  access(1, 0x1040);
  Prefetcher.reset();
  access(1, 0x1080);
  EXPECT_EQ(Prefetcher.issued(), 0u);
  EXPECT_EQ(Prefetcher.trains(), 1u);
}

TEST_F(StrideTest, IssueGateBlocksWithoutForgetting) {
  // The dueling selector's gate: a disabled prefetcher keeps training
  // but nothing reaches the hierarchy; re-enabling resumes issue.
  Prefetcher.setIssueEnabled(false);
  access(1, 0x1000);
  access(1, 0x1040);
  access(1, 0x1080);
  EXPECT_EQ(Prefetcher.confirmed(), 1u);
  EXPECT_EQ(Prefetcher.issued(), 0u);
  Prefetcher.setIssueEnabled(true);
  access(1, 0x10C0);
  EXPECT_EQ(Prefetcher.issued(), 2u);
}

//===----------------------------------------------------------------------===//
// MarkovPrefetcher
//===----------------------------------------------------------------------===//

class MarkovTest : public ::testing::Test {
protected:
  memsim::MemoryHierarchy Memory;
  MarkovPrefetcher Prefetcher{MarkovPrefetcherConfig(), /*AssignedTag=*/0};

  void onMiss(memsim::Addr Addr) { Prefetcher.onMiss(miss(Addr), Memory); }
};

TEST_F(MarkovTest, LearnsDigramAndPrefetches) {
  // Miss sequence A, B teaches A -> B; the next miss on A prefetches B.
  onMiss(0x1000);
  onMiss(0x5000);
  EXPECT_EQ(Prefetcher.trains(), 1u);
  EXPECT_EQ(Prefetcher.issued(), 0u);
  onMiss(0x1000);
  EXPECT_EQ(Prefetcher.issued(), 1u);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x5000));
}

TEST_F(MarkovTest, SuccessorSlotsAreBounded) {
  // A followed by three different blocks: only the most recent
  // SuccessorsPerNode (2) survive.
  for (memsim::Addr B : {0x5000, 0x6000, 0x7000}) {
    onMiss(0x1000);
    onMiss(B);
  }
  onMiss(0x1000);
  // Intermediate A-misses predicted {5}, then {6,5}; the final one
  // predicts {7,6}: 1 + 2 + 2 prefetches, never more than 2 per miss.
  EXPECT_EQ(Prefetcher.issued(), 5u);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x7000)); // most recent always kept
}

TEST_F(MarkovTest, RepeatedMissOfSameBlockIsNotATransition) {
  onMiss(0x1000);
  onMiss(0x1000);
  EXPECT_EQ(Prefetcher.trains(), 0u);
}

TEST_F(MarkovTest, TableCapacityEvicts) {
  MarkovPrefetcherConfig Config;
  Config.MaxNodes = 4;
  MarkovPrefetcher Small(Config, /*AssignedTag=*/0);
  // Create 8 nodes; only 4 survive.
  for (memsim::Addr A = 0; A < 9; ++A)
    Small.onMiss(miss(0x1000 + A * 0x1000), Memory);
  EXPECT_LE(Small.nodeCount(), 4u);
}

TEST_F(MarkovTest, PrioritizedByRecency) {
  // A->B, then A->C: C is the more recent, listed first.
  onMiss(0x1000);
  onMiss(0x5000); // A->B
  onMiss(0x1000); // issues prefetch for B
  onMiss(0x6000); // A->C
  const uint64_t Before = Prefetcher.issued();
  onMiss(0x1000); // issues B and C
  EXPECT_EQ(Prefetcher.issued() - Before, 2u);
}

//===----------------------------------------------------------------------===//
// StreamPrefetcher
//===----------------------------------------------------------------------===//

class StreamTest : public ::testing::Test {
protected:
  memsim::MemoryHierarchy Memory;
  StreamPrefetcher Prefetcher{StreamPrefetcherConfig(), /*AssignedTag=*/0};

  void onMiss(memsim::Addr Addr) { Prefetcher.onMiss(miss(Addr), Memory); }
};

TEST_F(StreamTest, AscendingMissRunIssuesAhead) {
  // Blocks are 32 bytes: three consecutive-block misses reach the
  // confidence threshold (2) and run Degree (4) blocks ahead.
  onMiss(0x1000);
  onMiss(0x1020);
  EXPECT_EQ(Prefetcher.issued(), 0u);
  onMiss(0x1040);
  EXPECT_EQ(Prefetcher.issued(), 4u);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x1060));
  EXPECT_TRUE(Memory.l1().contains(0x10C0));
}

TEST_F(StreamTest, DescendingRunDetected) {
  // Stays inside one 4 KiB region: the detector is region-indexed.
  onMiss(0x2FC0);
  onMiss(0x2FA0); // unit step against the default direction: flip
  onMiss(0x2F80); // conforming: confident
  EXPECT_EQ(Prefetcher.issued(), 4u);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x2F60));
}

TEST_F(StreamTest, UnrelatedJumpInsideRegionResetsDetection) {
  onMiss(0x1000);
  onMiss(0x1020);
  onMiss(0x1040); // confident: issues 4
  const uint64_t AfterRun = Prefetcher.issued();
  onMiss(0x1800); // jump within the 4 KiB region: restart
  onMiss(0x1820); // conforming again, but confidence only 1
  EXPECT_EQ(Prefetcher.issued(), AfterRun);
}

TEST_F(StreamTest, BlindToHitsAndPcs) {
  // The detector trains on the miss stream only: plain accesses (the
  // base-class onAccess hook) never touch the table.
  Prefetcher.onAccess(hit(1, 0x1000), Memory);
  Prefetcher.onAccess(hit(1, 0x1020), Memory);
  Prefetcher.onAccess(hit(1, 0x1040), Memory);
  EXPECT_EQ(Prefetcher.trains(), 0u);
  EXPECT_EQ(Prefetcher.issued(), 0u);
}

//===----------------------------------------------------------------------===//
// PairTablePrefetcher
//===----------------------------------------------------------------------===//

class PairTableTest : public ::testing::Test {
protected:
  memsim::MemoryHierarchy Memory;
  PairTablePrefetcher Prefetcher{PairTableConfig(), /*AssignedTag=*/0};

  void onMiss(memsim::Addr Addr) { Prefetcher.onMiss(miss(Addr), Memory); }
};

TEST_F(PairTableTest, RepeatedPairReachesIssueThreshold) {
  // (A -> B) must repeat before it is trusted (IssueThreshold 2): the
  // first traversal trains, the second reinforces, the third predicts.
  onMiss(0x1000);
  onMiss(0x5000); // A->B at confidence 1
  onMiss(0x1000); // predict(A): below threshold
  EXPECT_EQ(Prefetcher.issued(), 0u);
  onMiss(0x5000); // A->B at confidence 2
  onMiss(0x1000); // predict(A): issues B
  EXPECT_EQ(Prefetcher.issued(), 1u);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x5000));
}

TEST_F(PairTableTest, FillChainsOneStepDownTheChain) {
  // Train A->B and B->C to confidence >= 2, then simulate B's fill
  // landing: the chain hook prefetches C without a demand miss on B.
  for (int Round = 0; Round < 3; ++Round) {
    onMiss(0x1000);
    onMiss(0x5000);
    onMiss(0x9000);
  }
  const uint64_t Before = Prefetcher.issued();
  Prefetcher.onFill(0x5000, Memory);
  EXPECT_EQ(Prefetcher.issued() - Before, 1u);
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x9000));
}

TEST_F(PairTableTest, MetadataStaysStrictlyBounded) {
  // The eviction discipline keeps the table at Sets x Ways entries no
  // matter how many distinct pairs the miss stream produces.
  PairTableConfig Config;
  Config.Sets = 4;
  Config.Ways = 2;
  PairTablePrefetcher Small(Config, /*AssignedTag=*/0);
  EXPECT_EQ(Small.capacityEntries(), 8u);
  for (memsim::Addr A = 0; A < 200; ++A)
    Small.onMiss(miss(0x1000 + A * 0x1000), Memory);
  EXPECT_LE(Small.occupiedEntries(), Small.capacityEntries());
  EXPECT_GT(Small.trains(), 0u);
}

TEST_F(PairTableTest, NoisePairsMustOutvoteResidents) {
  // A full set only surrenders a way after the incumbent fully decays:
  // one traversal of a noise pair cannot displace a reinforced pair.
  for (int Round = 0; Round < 3; ++Round) {
    onMiss(0x1000);
    onMiss(0x5000); // reinforce A->B
  }
  // One traversal of a different successor for A: the reinforced pair
  // must survive it.
  onMiss(0x1000);
  onMiss(0x6000); // A->C noise, same set as A->B
  onMiss(0x1000); // predict(A): B still the confident successor
  Memory.tick(500);
  EXPECT_TRUE(Memory.l1().contains(0x5000));
  // The noise successor sits below the issue threshold: never fetched.
  EXPECT_FALSE(Memory.l1().contains(0x6000));
}

//===----------------------------------------------------------------------===//
// DuelingSelector (unit level)
//===----------------------------------------------------------------------===//

namespace duel {

std::unique_ptr<DuelingSelector> makeSelector(const DuelConfig &Cfg) {
  std::vector<std::unique_ptr<Prefetcher>> Candidates;
  Candidates.push_back(std::make_unique<StridePrefetcher>(
      StridePrefetcherConfig(), /*AssignedTag=*/0));
  Candidates.push_back(std::make_unique<StreamPrefetcher>(
      StreamPrefetcherConfig(), /*AssignedTag=*/1));
  return std::make_unique<DuelingSelector>(Cfg, /*AssignedTag=*/2,
                                           std::move(Candidates));
}

} // namespace duel

TEST(DuelingSelectorTest, ConvergesAfterBoundedEpochs) {
  DuelConfig Cfg;
  Cfg.RegionBuckets = 4;
  Cfg.EpochAccesses = 4;
  Cfg.SampleRounds = 1;
  memsim::MemoryHierarchy Memory;
  auto Selector = duel::makeSelector(Cfg);
  EXPECT_EQ(Selector->convergenceEpochs(), 2u);

  // Epoch 0 (stride sampled): a confirmed stride issues in bucket 0.
  for (memsim::Addr A : {0x100, 0x140, 0x180, 0x1C0})
    Selector->onAccess(hit(1, A), Memory);
  // Simulated hierarchy feedback: two of those prefetches turned useful.
  Selector->noteUseful(0, 0x200);
  Selector->noteUseful(0, 0x240);
  // Epoch 1 (stream sampled): hits only, so the stream engine is idle.
  for (memsim::Addr A : {0x100, 0x140, 0x180, 0x1C0})
    Selector->onAccess(hit(1, A), Memory);
  EXPECT_FALSE(Selector->converged());

  // The first access of epoch 2 freezes the decision.
  Selector->onAccess(hit(1, 0x100), Memory);
  ASSERT_TRUE(Selector->converged());
  // Bucket 0 saw stride issues with positive score: stride wins it.
  EXPECT_EQ(Selector->winnerFor(0x100), 0u);
  // Buckets with no observations fall back to the global winner.
  EXPECT_EQ(Selector->globalWinner(), 0u);
  EXPECT_EQ(Selector->winnerFor(0x3000), 0u);
  // The losing candidate never got an issue through its gate.
  EXPECT_EQ(Selector->candidates()[1]->issued(), 0u);
}

TEST(DuelingSelectorTest, FeedbackAfterConvergenceIsFrozen) {
  DuelConfig Cfg;
  Cfg.RegionBuckets = 4;
  Cfg.EpochAccesses = 2;
  Cfg.SampleRounds = 1;
  memsim::MemoryHierarchy Memory;
  auto Selector = duel::makeSelector(Cfg);
  for (int I = 0; I <= 4; ++I)
    Selector->onAccess(hit(1, 0x100 + static_cast<memsim::Addr>(I) * 0x40),
                       Memory);
  ASSERT_TRUE(Selector->converged());
  const size_t Winner = Selector->globalWinner();
  // Late feedback for the loser must not flip the frozen decision.
  Selector->noteUseful(1, 0x100);
  Selector->noteUseful(1, 0x100);
  EXPECT_EQ(Selector->globalWinner(), Winner);
}

TEST(DuelingSelectorTest, StatsReportSelectorAndCandidates) {
  DuelConfig Cfg;
  Cfg.RegionBuckets = 4;
  Cfg.EpochAccesses = 2;
  Cfg.SampleRounds = 1;
  memsim::MemoryHierarchy Memory;
  auto Selector = duel::makeSelector(Cfg);
  for (int I = 0; I <= 4; ++I)
    Selector->onAccess(hit(1, 0x100 + static_cast<memsim::Addr>(I) * 0x40),
                       Memory);
  ASSERT_TRUE(Selector->converged());
  std::vector<obs::PrefetcherStats> Rows;
  Selector->appendStats(Rows);
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Rows[0].Kind, static_cast<uint64_t>(Prefetcher::Duel));
  EXPECT_EQ(Rows[1].Kind, static_cast<uint64_t>(Prefetcher::Stride));
  EXPECT_EQ(Rows[2].Kind, static_cast<uint64_t>(Prefetcher::Stream));
  EXPECT_EQ(Rows[0].SampledEpochs, 2u);
  // Every bucket has a frozen owner: the won-region counts sum to the
  // bucket count.
  EXPECT_EQ(Rows[1].SelectedRegions + Rows[2].SelectedRegions, 4u);
}

//===----------------------------------------------------------------------===//
// Runtime integration (the prefetcher stack)
//===----------------------------------------------------------------------===//

TEST(RuntimePrefetcherTest, StrideCoversSequentialScan) {
  OptimizerConfig Config;
  Config.Mode = RunMode::Original;
  Config.Prefetchers.Enabled.set(Prefetcher::Stride, true);
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("scan");
  const auto S = Rt.declareSite(P);
  const memsim::Addr Base = Rt.allocate(1 << 20, 64);

  Runtime::ProcedureScope Scope(Rt, P);
  for (uint64_t I = 0; I < 2000; ++I) {
    Rt.load(S, Base + I * 32);
    Rt.compute(4);
  }
  ASSERT_NE(Rt.prefetcherStack(), nullptr);
  Prefetcher *Stride = Rt.prefetcherStack()->byKind(Prefetcher::Stride);
  ASSERT_NE(Stride, nullptr);
  EXPECT_GT(Stride->issued(), 1000u);
  // Most of the scan is covered: far fewer full-latency misses than refs.
  EXPECT_GT(Rt.memory().l1().stats().UsefulPrefetches +
                Rt.memory().stats().PartialHits,
            1000u);
}

TEST(RuntimePrefetcherTest, DisabledStackIsNull) {
  OptimizerConfig Config;
  Runtime Rt(Config);
  EXPECT_EQ(Rt.prefetcherStack(), nullptr);
  EXPECT_TRUE(Rt.prefetcherStats().empty());
}

TEST(RuntimePrefetcherTest, MarkovObservesOnlyMisses) {
  OptimizerConfig Config;
  Config.Mode = RunMode::Original;
  Config.Prefetchers.Enabled.set(Prefetcher::Markov, true);
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("p");
  const auto S = Rt.declareSite(P);
  const memsim::Addr A = Rt.allocate(64, 64);
  const memsim::Addr B = Rt.allocate(64, 64);
  const memsim::Addr C = Rt.allocate(64, 64);

  Runtime::ProcedureScope Scope(Rt, P);
  Rt.load(S, A); // miss
  Rt.load(S, B); // miss: A -> B
  Rt.load(S, A); // hit: must not be observed
  Rt.load(S, C); // miss: B -> C (an observed hit would record B -> A)
  ASSERT_NE(Rt.prefetcherStack(), nullptr);
  Prefetcher *Markov = Rt.prefetcherStack()->byKind(Prefetcher::Markov);
  ASSERT_NE(Markov, nullptr);
  EXPECT_EQ(Markov->trains(), 2u);
}

TEST(RuntimePrefetcherTest, FullRosterComposesWithDenseTags) {
  OptimizerConfig Config;
  Config.Mode = RunMode::Original;
  Config.Prefetchers.Enabled.set(Prefetcher::Stride, true);
  Config.Prefetchers.Enabled.set(Prefetcher::Markov, true);
  Config.Prefetchers.Enabled.set(Prefetcher::Stream, true);
  Config.Prefetchers.Enabled.set(Prefetcher::PairTable, true);
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("scan");
  const auto S = Rt.declareSite(P);
  const memsim::Addr Base = Rt.allocate(1 << 16, 64);
  Runtime::ProcedureScope Scope(Rt, P);
  for (uint64_t I = 0; I < 500; ++I)
    Rt.load(S, Base + I * 32);

  ASSERT_NE(Rt.prefetcherStack(), nullptr);
  EXPECT_EQ(Rt.prefetcherStack()->tagCount(), 4u);
  const std::vector<obs::PrefetcherStats> Rows = Rt.prefetcherStats();
  ASSERT_EQ(Rows.size(), 4u);
  EXPECT_EQ(Rows[0].Kind, static_cast<uint64_t>(Prefetcher::Stride));
  EXPECT_EQ(Rows[1].Kind, static_cast<uint64_t>(Prefetcher::Markov));
  EXPECT_EQ(Rows[2].Kind, static_cast<uint64_t>(Prefetcher::Stream));
  EXPECT_EQ(Rows[3].Kind, static_cast<uint64_t>(Prefetcher::PairTable));
  for (uint64_t Tag = 0; Tag < 4; ++Tag)
    EXPECT_EQ(Rows[Tag].Tag, Tag);
  // The scan is stride territory: classification feedback joined from
  // the hierarchy lands on the stride row.
  EXPECT_GT(Rows[0].Issued, 0u);
  EXPECT_GT(Rows[0].Useful + Rows[0].Late, 0u);
}

TEST(RuntimePrefetcherTest, DuelConvergesToClearlyBestCandidate) {
  // The selector-convergence acceptance test: duel a stride engine
  // against a Markov engine on a long single-pass sequential scan.  The
  // scan never repeats a miss digram, so Markov cannot issue anything;
  // the stride engine covers the scan.  The duel must converge to the
  // stride candidate within its bounded epoch budget.
  OptimizerConfig Config;
  Config.Mode = RunMode::Original;
  Config.Prefetchers.Enabled.set(Prefetcher::Duel, true);
  Config.Prefetchers.Enabled.set(Prefetcher::Stride, true);
  Config.Prefetchers.Enabled.set(Prefetcher::Markov, true);
  Config.Prefetchers.DuelCfg.EpochAccesses = 512;
  Config.Prefetchers.DuelCfg.SampleRounds = 2;
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("scan");
  const auto S = Rt.declareSite(P);
  const memsim::Addr Base = Rt.allocate(1 << 20, 64);

  Runtime::ProcedureScope Scope(Rt, P);
  for (uint64_t I = 0; I < 8000; ++I) {
    Rt.load(S, Base + I * 32);
    // Enough compute per access that a degree-2 stride prefetch (two
    // accesses ahead) beats the 100-cycle memory latency: the stride
    // engine's prefetches classify useful, not just late.
    Rt.compute(64);
  }

  ASSERT_NE(Rt.prefetcherStack(), nullptr);
  DuelingSelector *Selector = Rt.prefetcherStack()->selector();
  ASSERT_NE(Selector, nullptr);
  // Bounded convergence: SampleRounds * candidates = 4 epochs, well
  // inside the 8000-access run.
  EXPECT_EQ(Selector->convergenceEpochs(), 4u);
  ASSERT_TRUE(Selector->converged());
  EXPECT_EQ(Selector->candidates()[Selector->globalWinner()]->kind(),
            Prefetcher::Stride);
  // Every touched region resolves to the stride engine too (Markov
  // never issued, so no bucket prefers it).
  EXPECT_EQ(Selector->candidates()[Selector->winnerFor(Base)]->kind(),
            Prefetcher::Stride);

  // The stats report carries one selector row plus one per candidate.
  const std::vector<obs::PrefetcherStats> Rows = Rt.prefetcherStats();
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Rows[0].Kind, static_cast<uint64_t>(Prefetcher::Duel));
  EXPECT_EQ(Rows[0].SampledEpochs, 4u);
  EXPECT_GT(Rows[0].SelectedRegions, 0u);
}

TEST(RuntimePrefetcherTest, HotStreamTagsStartAboveStackTags) {
  // With prefetchers enabled in a prefetching mode, hot-data-stream
  // prefetches must classify under tags above the stack's reserved
  // range, so per-engine attribution never collides.
  OptimizerConfig Config;
  Config.Mode = RunMode::DynamicPrefetch;
  Config.Tracing = {1'481, 30, 30, 120, true};
  Config.Prefetchers.Enabled.set(Prefetcher::Stride, true);
  Runtime Rt(Config);
  auto W = workloads::createWorkload("vpr");
  W->setup(Rt);
  W->run(Rt, 6000);
  ASSERT_NE(Rt.prefetcherStack(), nullptr);
  ASSERT_EQ(Rt.prefetcherStack()->tagCount(), 1u);
  EXPECT_GT(Rt.stats().PrefetchesRequested, 0u);
  // Stream-tag buckets beyond the stack's range belong to hot streams.
  EXPECT_GT(Rt.memory().streamClasses().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Static-scheme pinning
//===----------------------------------------------------------------------===//

TEST(PinTest, PinnedRunKeepsFirstOptimizationForever) {
  OptimizerConfig Config;
  Config.Mode = RunMode::DynamicPrefetch;
  Config.PinFirstOptimization = true;
  Config.Tracing = {1'481, 30, 30, 120, true};
  Runtime Rt(Config);
  auto W = workloads::createWorkload("vpr");
  W->setup(Rt);
  W->run(Rt, 6000);

  // Exactly one optimization cycle was recorded; the engine stayed
  // installed and the image patched.
  EXPECT_EQ(Rt.stats().Cycles.size(), 1u);
  EXPECT_TRUE(Rt.engine().installed());
  EXPECT_TRUE(Rt.optimizer().pinned());
  EXPECT_EQ(Rt.image().deoptimizations(), 0u);
  EXPECT_GT(Rt.stats().CompleteMatches, 0u);
}

TEST(PinTest, PinnedRunStopsFrameworkCosts) {
  // After pinning, checks stop costing and tracing stops: total checks
  // executed must be far below an unpinned run's.
  auto RunChecks = [](bool Pin) {
    OptimizerConfig Config;
    Config.Mode = RunMode::DynamicPrefetch;
    Config.PinFirstOptimization = Pin;
    Config.Tracing = {1'481, 30, 30, 120, true};
    Runtime Rt(Config);
    auto W = workloads::createWorkload("vpr");
    W->setup(Rt);
    W->run(Rt, 6000);
    return Rt.stats().ChecksExecuted;
  };
  EXPECT_LT(RunChecks(true), RunChecks(false) / 2);
}

TEST(PinTest, TwophaseWorkloadChangesItsStreams) {
  // The phase-change program: a pinned run matches only during the
  // first phase; a dynamic run keeps matching.
  auto RunMatches = [](bool Pin) {
    OptimizerConfig Config;
    Config.Mode = RunMode::DynamicPrefetch;
    Config.PinFirstOptimization = Pin;
    Config.Tracing = {1'481, 30, 30, 120, true};
    Runtime Rt(Config);
    auto W = workloads::createWorkload("twophase");
    W->setup(Rt);
    W->run(Rt, 12000);
    return Rt.stats().CompleteMatches;
  };
  const uint64_t Static = RunMatches(true);
  const uint64_t Dynamic = RunMatches(false);
  EXPECT_GT(Dynamic, 2 * Static);
}

} // namespace

//===----------------------------------------------------------------------===//
// Adaptive hibernation (optimizer side)
//===----------------------------------------------------------------------===//

namespace {

OptimizerConfig adaptiveConfig() {
  OptimizerConfig Config;
  Config.Mode = RunMode::DynamicPrefetch;
  Config.Tracing = {1'481, 30, 30, 120, true};
  Config.AdaptiveHibernation = true;
  return Config;
}

TEST(AdaptiveHibernationTest, StableBehaviourStretchesHibernation) {
  Runtime Rt(adaptiveConfig());
  auto W = workloads::createWorkload("vpr");
  W->setup(Rt);
  W->run(Rt, 16000);
  const RunStats &Stats = Rt.stats();
  ASSERT_GE(Stats.Cycles.size(), 2u);
  // Each stable cycle doubles the hibernation length (bounded).
  EXPECT_GT(Stats.Cycles.back().NextHibernationPeriods,
            Stats.Cycles.front().NextHibernationPeriods);
}

TEST(AdaptiveHibernationTest, BoundedByMaxFactor) {
  OptimizerConfig Config = adaptiveConfig();
  Config.AdaptiveHibernationMaxFactor = 2;
  Runtime Rt(Config);
  auto W = workloads::createWorkload("vpr");
  W->setup(Rt);
  W->run(Rt, 24000);
  for (const CycleStats &Cycle : Rt.stats().Cycles)
    EXPECT_LE(Cycle.NextHibernationPeriods, 2 * Config.Tracing.NHibernate);
}

TEST(AdaptiveHibernationTest, PhaseChangeResetsHibernation) {
  Runtime Rt(adaptiveConfig());
  auto W = workloads::createWorkload("twophase");
  W->setup(Rt);
  W->run(Rt, 24000);
  const RunStats &Stats = Rt.stats();
  ASSERT_GE(Stats.Cycles.size(), 3u);
  // At least one later cycle falls back to the base length (the phase
  // transition changed the detected stream set).
  bool SawReset = false;
  for (size_t C = 1; C < Stats.Cycles.size(); ++C)
    SawReset |= Stats.Cycles[C].NextHibernationPeriods ==
                Rt.config().Tracing.NHibernate;
  EXPECT_TRUE(SawReset);
}

TEST(AdaptiveHibernationTest, OffByDefault) {
  OptimizerConfig Config;
  EXPECT_FALSE(Config.AdaptiveHibernation);
}

} // namespace
