//===- tests/subpath_test.cpp - Grammar hot-subpath analyzer tests ---------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/SubpathAnalyzer.h"

#include "analysis/FastAnalyzer.h"
#include "sequitur/Grammar.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

using namespace hds;
using namespace hds::analysis;
using hds::sequitur::Grammar;
using hds::sequitur::GrammarSnapshot;

namespace {

GrammarSnapshot snapshotOf(const std::string &Text) {
  Grammar G;
  for (char C : Text)
    G.append(static_cast<uint64_t>(static_cast<unsigned char>(C)));
  return G.snapshot();
}

std::string wordOf(const HotDataStream &S) {
  std::string Out;
  for (uint32_t X : S.Symbols)
    Out.push_back(static_cast<char>(X));
  return Out;
}

/// Brute-force total (overlapping) occurrence count.
uint64_t countOccurrences(const std::string &Text,
                          const std::string &Pattern) {
  uint64_t Count = 0;
  for (size_t Pos = 0;
       (Pos = Text.find(Pattern, Pos)) != std::string::npos; ++Pos)
    ++Count;
  return Count;
}

TEST(SubpathAnalyzerTest, EmptyAndDegenerate) {
  AnalysisConfig Config{2, 10, 1};
  EXPECT_TRUE(analyzeHotSubpaths(snapshotOf(""), Config).Streams.empty());
  EXPECT_TRUE(analyzeHotSubpaths(snapshotOf("a"), Config).Streams.empty());
  AnalysisConfig BadMin{1, 10, 1};
  EXPECT_TRUE(
      analyzeHotSubpaths(snapshotOf("abab"), BadMin).Streams.empty());
}

TEST(SubpathAnalyzerTest, WorkedExampleFindsCrossBoundaryStreams) {
  // The paper's w = abaabcabcabcabc.  The fast rule-aligned analysis can
  // only report "abcabc" (a rule's expansion, frequency 2).  The subpath
  // analyzer sees occurrences that cross rule boundaries: "abcabc"
  // actually occurs 3 times (overlapping) and longer windows like
  // "cabcabc" exist too.
  const std::string Text = "abaabcabcabcabc";
  AnalysisConfig Config{2, 7, 8};
  const SubpathAnalysisResult Result =
      analyzeHotSubpaths(snapshotOf(Text), Config);
  ASSERT_FALSE(Result.Streams.empty());
  EXPECT_EQ(Result.TraceLength, 15u);

  // Every reported stream's frequency is the exact occurrence count.
  for (const HotDataStream &S : Result.Streams) {
    EXPECT_EQ(S.Frequency, countOccurrences(Text, wordOf(S))) << wordOf(S);
    EXPECT_GE(S.Heat, Config.HeatThreshold);
    EXPECT_GE(S.length(), Config.MinLength);
    EXPECT_LE(S.length(), Config.MaxLength);
  }

  // The cross-boundary length-7 repeats are found (the fast analyzer
  // cannot see them: no grammar rule expands to them).
  bool HasLen7 = false;
  for (const HotDataStream &S : Result.Streams)
    HasLen7 |= S.length() == 7 && S.Frequency == 2;
  EXPECT_TRUE(HasLen7);
}

TEST(SubpathAnalyzerTest, FindsStreamsTheFastAnalyzerMisses) {
  // A repeating unit split across burst-like fragments: "xabcy" repeated
  // won't necessarily form one rule, but "xabcy...xabcy" repeats.  Use a
  // string where the repetition is phase-shifted so rule expansions
  // don't align with the repeating unit.
  std::string Text;
  for (int I = 0; I < 12; ++I)
    Text += "pqrst";
  // Drop the first two characters: rules form for the shifted content.
  Text = Text.substr(2);

  AnalysisConfig Config;
  Config.MinLength = 5;
  Config.MaxLength = 12;
  Config.HeatThreshold = 20;
  const SubpathAnalysisResult Subpath =
      analyzeHotSubpaths(snapshotOf(Text), Config);

  // The unit "rstpq" (or a rotation) must be found with frequency ~11.
  bool FoundUnit = false;
  for (const HotDataStream &S : Subpath.Streams)
    if (S.length() >= 5 && S.Frequency >= 8)
      FoundUnit = true;
  EXPECT_TRUE(FoundUnit);
}

TEST(SubpathAnalyzerTest, MaximalityHolds) {
  const std::string Text = "abcabcabcabcabcabc";
  AnalysisConfig Config{2, 9, 6};
  const SubpathAnalysisResult Result =
      analyzeHotSubpaths(snapshotOf(Text), Config);
  for (size_t I = 0; I < Result.Streams.size(); ++I)
    for (size_t J = 0; J < Result.Streams.size(); ++J) {
      if (I == J)
        continue;
      const auto &A = Result.Streams[I];
      const auto &B = Result.Streams[J];
      if (B.length() <= A.length() || B.Frequency < A.Frequency)
        continue;
      // A must not be contained in B.
      auto It = std::search(B.Symbols.begin(), B.Symbols.end(),
                            A.Symbols.begin(), A.Symbols.end());
      EXPECT_EQ(It, B.Symbols.end())
          << wordOf(A) << " contained in " << wordOf(B);
    }
}

struct SubpathCase {
  uint64_t Seed;
  size_t Length;
  uint64_t Alphabet;
  uint64_t MaxLen;
};

class SubpathPropertyTest : public ::testing::TestWithParam<SubpathCase> {};

TEST_P(SubpathPropertyTest, CountsAreExactOnRandomTraces) {
  const SubpathCase &Case = GetParam();
  Rng R(Case.Seed);
  std::string Text;
  for (size_t I = 0; I < Case.Length; ++I) {
    if (R.nextBool(0.5)) {
      Text += "abcde"; // planted motif
    } else {
      Text.push_back(static_cast<char>('f' + R.nextBelow(Case.Alphabet)));
    }
  }

  AnalysisConfig Config;
  Config.MinLength = 2;
  Config.MaxLength = Case.MaxLen;
  Config.HeatThreshold = Text.size() / 10;
  const SubpathAnalysisResult Result =
      analyzeHotSubpaths(snapshotOf(Text), Config);

  EXPECT_EQ(Result.TraceLength, Text.size());
  for (const HotDataStream &S : Result.Streams)
    EXPECT_EQ(S.Frequency, countOccurrences(Text, wordOf(S))) << wordOf(S);

  // Completeness at the top: the hottest qualifying substring (by brute
  // force) is matched in heat by the hottest reported stream.
  uint64_t BestBrute = 0;
  for (uint64_t Len = Config.MinLength; Len <= Config.MaxLength; ++Len) {
    if (Len > Text.size())
      break;
    std::map<std::string, uint64_t> Counts;
    for (size_t Pos = 0; Pos + Len <= Text.size(); ++Pos)
      ++Counts[Text.substr(Pos, Len)];
    for (const auto &Entry : Counts)
      if (Entry.second >= 2)
        BestBrute = std::max(BestBrute, Len * Entry.second);
  }
  uint64_t BestReported = 0;
  for (const HotDataStream &S : Result.Streams)
    BestReported = std::max(BestReported, S.Heat);
  if (BestBrute >= Config.HeatThreshold) {
    EXPECT_EQ(BestReported, BestBrute);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraces, SubpathPropertyTest,
    ::testing::Values(SubpathCase{1, 200, 4, 8}, SubpathCase{2, 400, 8, 10},
                      SubpathCase{3, 800, 2, 6}, SubpathCase{4, 300, 16, 12},
                      SubpathCase{5, 600, 4, 15}, SubpathCase{6, 150, 3, 20},
                      SubpathCase{7, 1000, 8, 9}, SubpathCase{8, 500, 5, 7}));

TEST(SubpathAnalyzerTest, SubsumesFastAnalyzerTopStream) {
  // The fast analyzer's hottest stream is rule-aligned; the subpath
  // analyzer counts at least as many occurrences for the same word.
  Rng R(42);
  std::string Text;
  for (int I = 0; I < 120; ++I) {
    if (R.nextBool(0.6))
      Text += "wxyz";
    else
      Text.push_back(static_cast<char>('a' + R.nextBelow(6)));
  }
  const GrammarSnapshot Snap = snapshotOf(Text);
  AnalysisConfig Config{3, 20, Text.size() / 12};
  const FastAnalysisResult Fast = analyzeHotStreams(Snap, Config);
  const SubpathAnalysisResult Subpath = analyzeHotSubpaths(Snap, Config);

  for (const HotDataStream &FastStream : Fast.Streams) {
    // Find a subpath stream containing the fast stream's word with at
    // least its frequency.
    bool Covered = false;
    for (const HotDataStream &S : Subpath.Streams) {
      if (S.Frequency < FastStream.Frequency)
        continue;
      auto It = std::search(S.Symbols.begin(), S.Symbols.end(),
                            FastStream.Symbols.begin(),
                            FastStream.Symbols.end());
      Covered |= It != S.Symbols.end();
    }
    EXPECT_TRUE(Covered) << wordOf(FastStream);
  }
}

//===----------------------------------------------------------------------===//
// Degenerate traces and exact threshold boundaries
//===----------------------------------------------------------------------===//

TEST(SubpathAnalyzerTest, AllUniqueReferencesFindNothing) {
  // Nothing repeats, so no subpath can reach frequency 2.
  std::string Text;
  for (int C = 0; C < 96; ++C)
    Text.push_back(static_cast<char>(' ' + C));
  AnalysisConfig Config{2, 96, 1};
  const SubpathAnalysisResult Result =
      analyzeHotSubpaths(snapshotOf(Text), Config);
  EXPECT_TRUE(Result.Streams.empty());
  EXPECT_EQ(Result.TraceLength, Text.size());
}

TEST(SubpathAnalyzerTest, HeatExactlyAtThresholdIsHot) {
  // "ab" occurs twice in "abab": heat 2 * 2 = 4.  The threshold is
  // inclusive, so H == 4 reports it and H == 5 does not.
  AnalysisConfig Config{2, 2, 4};
  const SubpathAnalysisResult AtThreshold =
      analyzeHotSubpaths(snapshotOf("abab"), Config);
  ASSERT_FALSE(AtThreshold.Streams.empty());
  EXPECT_EQ(AtThreshold.Streams[0].Heat, 4u);

  Config.HeatThreshold = 5;
  EXPECT_TRUE(
      analyzeHotSubpaths(snapshotOf("abab"), Config).Streams.empty());
}

} // namespace
