//===- tests/distributed_test.cpp - Fleet experiment service tests ---------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Tests for the wire protocol, socket transport, and the fleet experiment
// service (src/engine/Wire.h, Transport.h, src/fleet/): wire round-trips,
// frame decoding under truncation/corruption/version skew (this binary
// runs under ASan and TSan in CI), the authenticated hello (bad token,
// replayed proof, version skew), heartbeat-loss requeue, the checkpoint
// journal (round-trip, torn tail, corruption, fingerprint mismatch), and
// the headline contract — a fleet run aggregates to JSON byte-identical
// to an in-process run, including when a worker dies mid-job or the
// matrix is drained, checkpointed, and resumed.
//
//===----------------------------------------------------------------------===//

#include "engine/Executor.h"
#include "engine/ExecutorFactory.h"
#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/ResultSink.h"
#include "engine/ResultsDiff.h"
#include "engine/ResultsJson.h"
#include "engine/Transport.h"
#include "engine/Wire.h"
#include "fleet/Auth.h"
#include "fleet/Checkpoint.h"
#include "fleet/Coordinator.h"
#include "fleet/Events.h"
#include "fleet/FleetExecutor.h"
#include "fleet/Registry.h"
#include "fleet/Worker.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/time.h>
#include <thread>
#include <type_traits>
#include <unistd.h>
#include <vector>

using namespace hds;
using namespace hds::engine;
using namespace hds::fleet;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures
//===----------------------------------------------------------------------===//

ExperimentSpec fancySpec() {
  ExperimentSpec Spec;
  Spec.Workload = "mcf";
  Spec.Mode = core::RunMode::DynamicPrefetch;
  Spec.Scale = 0.625; // exactly representable: survives the bit round-trip
  Spec.Iterations = 12345;
  Spec.Seed = 77;
  Spec.HeadLength = 3;
  Spec.Prefetchers.set(prefetch::Prefetcher::Stride, true);
  Spec.Pin = true;
  Spec.Adaptive = true;
  Spec.Tuned = true;
  return Spec;
}

/// An Ok result with every counter distinct, so any field swap or drop in
/// the wire codec shows up as a mismatch.
RunResult fancyResult() {
  RunResult Result;
  Result.Spec = fancySpec();
  Result.State = RunResult::Status::Ok;
  Result.Iterations = 9001;
  Result.Cycles = 123456789;
  uint64_t Fill = 10;
  auto Assign = [&Fill](const obs::MetricDef &, auto &Field) {
    Field = static_cast<std::remove_reference_t<decltype(Field)>>(Fill++);
  };
  core::visitRunStatsMetrics(Result.Stats, Assign);
  memsim::visitHierarchyStatsMetrics(Result.Memory, Assign);
  memsim::visitCacheStatsMetrics(Result.L1, Assign);
  memsim::visitCacheStatsMetrics(Result.L2, Assign);
  for (int Phase = 0; Phase < 3; ++Phase) {
    core::CycleStats Stats;
    core::visitCycleStatsMetrics(Stats, Assign);
    Result.Stats.Cycles.push_back(Stats);
  }
  obs::visitCycleBreakdownMetrics(Result.Breakdown, Assign);
  for (int Stream = 0; Stream < 2; ++Stream) {
    obs::StreamPrefetchStats Stats;
    obs::visitStreamPrefetchStatsMetrics(Stats, Assign);
    Result.Streams.push_back(Stats);
  }
  return Result;
}

std::string jsonFor(const RunResult &Result) {
  return resultsToJson(std::vector<RunResult>{Result});
}

std::vector<ExperimentSpec> smallMatrix() {
  // vpr under every mode at a tiny fixed iteration count; one cell with a
  // layout seed so the seed field crosses the wire too.
  std::vector<ExperimentSpec> Specs;
  const core::RunMode Modes[] = {
      core::RunMode::Original,         core::RunMode::ChecksOnly,
      core::RunMode::Profile,          core::RunMode::ProfileAnalyze,
      core::RunMode::MatchNoPrefetch,  core::RunMode::SequentialPrefetch,
      core::RunMode::DynamicPrefetch};
  for (core::RunMode Mode : Modes) {
    ExperimentSpec Spec;
    Spec.Workload = "vpr";
    Spec.Mode = Mode;
    Spec.Iterations = 300;
    Specs.push_back(Spec);
  }
  Specs.back().Seed = 5;
  return Specs;
}

std::string localJson(const std::vector<ExperimentSpec> &Specs,
                      unsigned Jobs) {
  FleetConfig Config;
  Config.Jobs = Jobs;
  return resultsToJson(makeLocal(Config)->run(Specs));
}

/// A scratch file under /tmp, unique per test process.
std::string tempPath(const std::string &Stem) {
  return "/tmp/hds-fleet-test-" + Stem + "-" + std::to_string(getpid());
}

//===----------------------------------------------------------------------===//
// Wire payload round-trips
//===----------------------------------------------------------------------===//

TEST(Wire, AssignRoundTripPreservesEverySpecField) {
  const ExperimentSpec Spec = fancySpec();
  const std::vector<uint8_t> Payload = wire::encodeAssign(42, Spec);

  uint64_t Index = 0;
  ExperimentSpec Decoded;
  std::string Error;
  ASSERT_TRUE(wire::decodeAssign(Payload, Index, Decoded, Error)) << Error;
  EXPECT_EQ(Index, 42u);
  EXPECT_EQ(Decoded.Workload, Spec.Workload);
  EXPECT_EQ(Decoded.Mode, Spec.Mode);
  EXPECT_EQ(Decoded.Scale, Spec.Scale);
  EXPECT_EQ(Decoded.Iterations, Spec.Iterations);
  EXPECT_EQ(Decoded.Seed, Spec.Seed);
  EXPECT_EQ(Decoded.HeadLength, Spec.HeadLength);
  EXPECT_EQ(Decoded.Prefetchers, Spec.Prefetchers);
  EXPECT_EQ(Decoded.Pin, Spec.Pin);
  EXPECT_EQ(Decoded.Adaptive, Spec.Adaptive);
  EXPECT_EQ(Decoded.Tuned, Spec.Tuned);
}

TEST(Wire, ResultRoundTripSerializesToIdenticalJson) {
  const RunResult Original = fancyResult();
  const std::vector<uint8_t> Payload = wire::encodeResult(7, Original);

  uint64_t Index = 0;
  RunResult Decoded;
  std::string Error;
  ASSERT_TRUE(wire::decodeResult(Payload, Index, Decoded, Error)) << Error;
  EXPECT_EQ(Index, 7u);
  EXPECT_EQ(Decoded.Iterations, Original.Iterations);
  EXPECT_EQ(Decoded.Cycles, Original.Cycles);
  ASSERT_EQ(Decoded.Stats.Cycles.size(), Original.Stats.Cycles.size());
  // The JSON writer reads every serialized field; byte equality here is
  // field equality everywhere downstream.
  EXPECT_EQ(jsonFor(Decoded), jsonFor(Original));
}

TEST(Wire, ErrorResultRoundTripKeepsStatusAndMessage) {
  RunResult Failed;
  Failed.Spec = fancySpec();
  Failed.State = RunResult::Status::Error;
  Failed.Error = "unknown workload 'np-complete'";

  uint64_t Index = 0;
  RunResult Decoded;
  std::string Error;
  ASSERT_TRUE(wire::decodeResult(wire::encodeResult(3, Failed), Index,
                                 Decoded, Error))
      << Error;
  EXPECT_EQ(Decoded.State, RunResult::Status::Error);
  EXPECT_EQ(Decoded.Error, Failed.Error);
  EXPECT_EQ(jsonFor(Decoded), jsonFor(Failed));
}

TEST(Wire, HelloRoundTripCarriesCapabilities) {
  wire::HelloInfo Info;
  Info.Cores = 48;
  Info.MemoryBudgetMB = 65536;

  wire::HelloInfo Decoded;
  std::string Error;
  ASSERT_TRUE(wire::decodeHello(wire::encodeHello(Info), Decoded, Error))
      << Error;
  EXPECT_EQ(Decoded.Cores, 48u);
  EXPECT_EQ(Decoded.MemoryBudgetMB, 65536u);
}

TEST(Wire, ChallengeAndAuthProofRoundTrip) {
  uint64_t Hi = 0, Lo = 0;
  std::string Error;
  ASSERT_TRUE(wire::decodeChallenge(
      wire::encodeChallenge(0x0123456789ABCDEFull, 0xFEDCBA9876543210ull),
      Hi, Lo, Error))
      << Error;
  EXPECT_EQ(Hi, 0x0123456789ABCDEFull);
  EXPECT_EQ(Lo, 0xFEDCBA9876543210ull);

  uint64_t Digest = 0;
  ASSERT_TRUE(wire::decodeAuthProof(wire::encodeAuthProof(0xDEADBEEFCAFEull),
                                    Digest, Error))
      << Error;
  EXPECT_EQ(Digest, 0xDEADBEEFCAFEull);
}

//===----------------------------------------------------------------------===//
// Frame decoding under fault injection
//===----------------------------------------------------------------------===//

TEST(Wire, FrameRoundTrip) {
  const std::vector<uint8_t> Payload = wire::encodeAssign(9, fancySpec());
  const std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Assign, Payload);
  EXPECT_EQ(Bytes.size(),
            wire::HeaderBytes + Payload.size() + wire::TrailerBytes);

  wire::Frame Frame;
  std::size_t Consumed = 0;
  std::string Error;
  ASSERT_EQ(wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                              Error),
            wire::DecodeStatus::Ok)
      << Error;
  EXPECT_EQ(Consumed, Bytes.size());
  EXPECT_EQ(Frame.Type, wire::FrameType::Assign);
  EXPECT_EQ(Frame.Payload, Payload);
}

TEST(Wire, EveryTruncationIsNeedMoreNeverOk) {
  const std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Result,
                        wire::encodeResult(1, fancyResult()));
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len) {
    wire::Frame Frame;
    std::size_t Consumed = 0;
    std::string Error;
    const wire::DecodeStatus Status =
        wire::decodeFrame(Bytes.data(), Len, Frame, Consumed, Error);
    EXPECT_EQ(Status, wire::DecodeStatus::NeedMore)
        << "prefix of " << Len << " bytes";
  }
}

TEST(Wire, EveryInvertedByteIsRejected) {
  // Inverting any single byte must never yield a successfully decoded
  // frame: magic/version/type and unknown-type checks catch the header,
  // the length either overflows the cap or dangles past the buffer, and
  // the CRC covers the payload and itself.
  std::vector<uint8_t> Bytes = wire::encodeFrame(
      wire::FrameType::Assign, wire::encodeAssign(4, fancySpec()));
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    Bytes[I] = static_cast<uint8_t>(~Bytes[I]);
    wire::Frame Frame;
    std::size_t Consumed = 0;
    std::string Error;
    const wire::DecodeStatus Status =
        wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                          Error);
    EXPECT_NE(Status, wire::DecodeStatus::Ok) << "inverted byte " << I;
    Bytes[I] = static_cast<uint8_t>(~Bytes[I]);
  }
}

TEST(Wire, VersionSkewIsMalformedWithAClearMessage) {
  std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Hello, {});
  Bytes[2] = wire::ProtocolVersion + 1;
  wire::Frame Frame;
  std::size_t Consumed = 0;
  std::string Error;
  EXPECT_EQ(wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                              Error),
            wire::DecodeStatus::Malformed);
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(Wire, OversizedDeclaredLengthIsMalformedNotAnAllocation) {
  std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Hello, {});
  // Little-endian length at offset 4: claim just past the cap.
  const uint32_t Huge = wire::MaxPayloadBytes + 1;
  Bytes[4] = static_cast<uint8_t>(Huge & 0xFF);
  Bytes[5] = static_cast<uint8_t>((Huge >> 8) & 0xFF);
  Bytes[6] = static_cast<uint8_t>((Huge >> 16) & 0xFF);
  Bytes[7] = static_cast<uint8_t>((Huge >> 24) & 0xFF);
  wire::Frame Frame;
  std::size_t Consumed = 0;
  std::string Error;
  EXPECT_EQ(wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                              Error),
            wire::DecodeStatus::Malformed);
  EXPECT_NE(Error.find("oversized"), std::string::npos) << Error;
}

TEST(Wire, UnknownFrameTypeIsMalformed) {
  std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Hello, {});
  Bytes[3] = 99;
  wire::Frame Frame;
  std::size_t Consumed = 0;
  std::string Error;
  EXPECT_EQ(wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                              Error),
            wire::DecodeStatus::Malformed);
}

TEST(Wire, PayloadDecodersRejectEveryTruncatedPrefix) {
  const std::vector<uint8_t> Assign = wire::encodeAssign(11, fancySpec());
  for (std::size_t Len = 0; Len < Assign.size(); ++Len) {
    const std::vector<uint8_t> Prefix(Assign.begin(),
                                      Assign.begin() +
                                          static_cast<std::ptrdiff_t>(Len));
    uint64_t Index = 0;
    ExperimentSpec Spec;
    std::string Error;
    EXPECT_FALSE(wire::decodeAssign(Prefix, Index, Spec, Error))
        << "assign prefix of " << Len << " bytes decoded";
  }

  const std::vector<uint8_t> Result = wire::encodeResult(11, fancyResult());
  for (std::size_t Len = 0; Len < Result.size(); ++Len) {
    const std::vector<uint8_t> Prefix(Result.begin(),
                                      Result.begin() +
                                          static_cast<std::ptrdiff_t>(Len));
    uint64_t Index = 0;
    RunResult Decoded;
    std::string Error;
    EXPECT_FALSE(wire::decodeResult(Prefix, Index, Decoded, Error))
        << "result prefix of " << Len << " bytes decoded";
  }
}

TEST(Wire, SeededGarbagePayloadsNeverDecode) {
  // Deterministic multiplicative congruential garbage: the decoders must
  // reject it all (or, vanishingly unlikely, decode something — but they
  // must never crash; ASan is watching).
  uint64_t X = 0x243F6A8885A308D3ull; // pi digits, fixed seed
  auto NextByte = [&X]() {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint8_t>(X >> 56);
  };
  for (int Round = 0; Round < 256; ++Round) {
    std::vector<uint8_t> Garbage(static_cast<std::size_t>(Round) * 3 + 1);
    for (uint8_t &Byte : Garbage)
      Byte = NextByte();

    uint64_t Index = 0;
    ExperimentSpec Spec;
    RunResult Result;
    std::string Error;
    (void)wire::decodeAssign(Garbage, Index, Spec, Error);
    (void)wire::decodeResult(Garbage, Index, Result, Error);

    wire::Frame Frame;
    std::size_t Consumed = 0;
    (void)wire::decodeFrame(Garbage.data(), Garbage.size(), Frame, Consumed,
                            Error);
  }
}

//===----------------------------------------------------------------------===//
// Authenticated hello primitives
//===----------------------------------------------------------------------===//

TEST(Auth, ProofIsDeterministicAndKeyedByEveryInput) {
  AuthNonce Nonce;
  Nonce.Hi = 0x1111222233334444ull;
  Nonce.Lo = 0x5555666677778888ull;
  const uint64_t Proof = proofDigest("secret", Nonce, wire::ProtocolVersion);
  EXPECT_EQ(Proof, proofDigest("secret", Nonce, wire::ProtocolVersion));

  // Any input change must change the digest: a proof for the wrong
  // token, a replayed nonce, or a version-skewed peer never verifies.
  EXPECT_NE(Proof, proofDigest("Secret", Nonce, wire::ProtocolVersion));
  EXPECT_NE(Proof, proofDigest("", Nonce, wire::ProtocolVersion));
  AuthNonce Other = Nonce;
  Other.Lo ^= 1;
  EXPECT_NE(Proof, proofDigest("secret", Other, wire::ProtocolVersion));
  EXPECT_NE(Proof,
            proofDigest("secret", Nonce,
                        static_cast<uint8_t>(wire::ProtocolVersion + 1)));
}

TEST(Auth, NoncesDifferAcrossConnections) {
  // Distinct connection salts must yield distinct nonces even on the
  // no-urandom fallback path — that distinctness is what makes a
  // captured proof worthless on the next connection.
  const AuthNonce A = makeNonce(1);
  const AuthNonce B = makeNonce(2);
  EXPECT_TRUE(A.Hi != B.Hi || A.Lo != B.Lo);
}

//===----------------------------------------------------------------------===//
// Transport
//===----------------------------------------------------------------------===//

TEST(Transport, ParseAddressAcceptsBothFamilies) {
  Address Addr;
  std::string Error;
  ASSERT_TRUE(parseAddress("127.0.0.1:7077", Addr, Error)) << Error;
  EXPECT_FALSE(Addr.IsUnix);
  EXPECT_EQ(Addr.Host, "127.0.0.1");
  EXPECT_EQ(Addr.Port, 7077);

  ASSERT_TRUE(parseAddress("unix:/tmp/hds.sock", Addr, Error)) << Error;
  EXPECT_TRUE(Addr.IsUnix);
  EXPECT_EQ(Addr.UnixPath, "/tmp/hds.sock");

  EXPECT_FALSE(parseAddress("no-port-here", Addr, Error));
  EXPECT_FALSE(parseAddress("127.0.0.1:99999", Addr, Error));
  EXPECT_FALSE(parseAddress("unix:", Addr, Error));
}

void roundTripOver(const std::string &ListenAddr) {
  Listener Server;
  std::string Error;
  ASSERT_TRUE(Server.listen(ListenAddr, Error)) << Error;

  const std::vector<uint8_t> Payload = wire::encodeAssign(5, fancySpec());
  std::jthread Client([Addr = Server.boundAddress(), &Payload] {
    std::string ClientError;
    Connection Conn = connectTo(Addr, ClientError);
    ASSERT_TRUE(Conn.valid()) << ClientError;
    ASSERT_TRUE(Conn.setDeadlines(5000, 5000));
    EXPECT_EQ(Conn.sendFrame(wire::FrameType::Assign, Payload),
              IoStatus::Ok);
    // Echo leg: prove the same connection carries frames both ways.
    wire::Frame Echoed;
    EXPECT_EQ(Conn.recvFrame(Echoed, ClientError), IoStatus::Ok)
        << ClientError;
    EXPECT_EQ(Echoed.Type, wire::FrameType::Shutdown);
  });

  Connection Peer;
  ASSERT_EQ(Server.accept(Peer, 5000), Listener::AcceptStatus::Ok);
  ASSERT_TRUE(Peer.setDeadlines(5000, 5000));
  wire::Frame Frame;
  ASSERT_EQ(Peer.recvFrame(Frame, Error), IoStatus::Ok) << Error;
  EXPECT_EQ(Frame.Type, wire::FrameType::Assign);
  EXPECT_EQ(Frame.Payload, Payload);
  EXPECT_EQ(Peer.sendFrame(wire::FrameType::Shutdown, {}), IoStatus::Ok);
}

TEST(Transport, LoopbackTcpFrameRoundTrip) { roundTripOver("127.0.0.1:0"); }

TEST(Transport, UnixSocketFrameRoundTrip) {
  roundTripOver("unix:/tmp/hds-transport-test-" + std::to_string(getpid()) +
                ".sock");
}

TEST(Transport, AcceptHonorsItsDeadline) {
  Listener Server;
  std::string Error;
  ASSERT_TRUE(Server.listen("127.0.0.1:0", Error)) << Error;
  Connection Conn;
  EXPECT_EQ(Server.accept(Conn, 50), Listener::AcceptStatus::TimedOut);
  EXPECT_FALSE(Conn.valid());
}

TEST(Transport, EofAtAFrameBoundaryIsClosed) {
  Listener Server;
  std::string Error;
  ASSERT_TRUE(Server.listen("127.0.0.1:0", Error)) << Error;

  std::jthread Client([Addr = Server.boundAddress()] {
    std::string ClientError;
    Connection Conn = connectTo(Addr, ClientError);
    ASSERT_TRUE(Conn.valid()) << ClientError;
    EXPECT_EQ(Conn.sendFrame(wire::FrameType::Hello, {}), IoStatus::Ok);
    // Destructor closes the socket: a clean EOF between frames.
  });

  Connection Peer;
  ASSERT_EQ(Server.accept(Peer, 5000), Listener::AcceptStatus::Ok);
  ASSERT_TRUE(Peer.setDeadlines(5000, 5000));
  wire::Frame Frame;
  ASSERT_EQ(Peer.recvFrame(Frame, Error), IoStatus::Ok) << Error;
  EXPECT_EQ(Frame.Type, wire::FrameType::Hello);
  EXPECT_EQ(Peer.recvFrame(Frame, Error), IoStatus::Closed);
}

TEST(Transport, EofMidFrameIsMalformedNotAHang) {
  Listener Server;
  std::string Error;
  ASSERT_TRUE(Server.listen("127.0.0.1:0", Error)) << Error;

  // Raw client: sends half a frame and vanishes, which a Connection's
  // whole-frame API cannot be coaxed into doing.
  Address Addr;
  ASSERT_TRUE(parseAddress(Server.boundAddress(), Addr, Error)) << Error;
  std::jthread Client([&Addr] {
    const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_in Sin{};
    Sin.sin_family = AF_INET;
    Sin.sin_port = htons(Addr.Port);
    ASSERT_EQ(inet_pton(AF_INET, Addr.Host.c_str(), &Sin.sin_addr), 1);
    ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Sin),
                        sizeof(Sin)),
              0);
    const std::vector<uint8_t> Bytes = wire::encodeFrame(
        wire::FrameType::Assign, wire::encodeAssign(2, fancySpec()));
    const std::size_t Half = Bytes.size() / 2;
    ASSERT_EQ(::send(Fd, Bytes.data(), Half, 0),
              static_cast<ssize_t>(Half));
    ::close(Fd);
  });

  Connection Peer;
  ASSERT_EQ(Server.accept(Peer, 5000), Listener::AcceptStatus::Ok);
  ASSERT_TRUE(Peer.setDeadlines(5000, 5000));
  wire::Frame Frame;
  EXPECT_EQ(Peer.recvFrame(Frame, Error), IoStatus::Malformed);
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Coordinator + worker end-to-end
//===----------------------------------------------------------------------===//

CoordinatorOptions quickCoordinator() {
  CoordinatorOptions Opts;
  Opts.ListenAddr = "127.0.0.1:0";
  Opts.JobTimeoutMs = 30000;
  Opts.IdleTimeoutMs = 10000;
  return Opts;
}

/// Serves \p Specs with in-thread workers (one per entry in \p Workers)
/// and returns the aggregated JSON.  Every *healthy* worker (no fault
/// injection) must see the coordinator's Shutdown farewell and exit
/// cleanly — a worker that merely observes the connection drop at the
/// end of the matrix is a wind-down bug, not a success.
std::string serveWithWorkers(const std::vector<ExperimentSpec> &Specs,
                             const std::vector<WorkerOptions> &Workers,
                             const CoordinatorOptions &Opts) {
  Coordinator Coord(Opts);
  EXPECT_TRUE(Coord.listen()) << Coord.error();

  std::vector<WorkerExit> Exits(Workers.size(), WorkerExit::ProtocolError);
  std::vector<std::string> Errors(Workers.size());
  std::vector<std::jthread> Threads;
  for (std::size_t I = 0; I < Workers.size(); ++I)
    Threads.emplace_back([Addr = Coord.boundAddress(), &Workers, &Exits,
                          &Errors, I] {
      Exits[I] = runWorker(Addr, Workers[I], &Errors[I]);
    });

  ResultSink Sink(Specs.size());
  Coord.serve(Specs, Sink);
  Threads.clear(); // join workers (they saw Shutdown or dropped)
  for (std::size_t I = 0; I < Workers.size(); ++I) {
    if (Workers[I].DropAfterJobs == 0) {
      EXPECT_EQ(Exits[I], WorkerExit::CleanShutdown)
          << "worker " << I << ": " << Errors[I];
    }
  }
  return resultsToJson(Sink.take());
}

/// Performs the worker side of the authenticated hello on an already
/// connected \p Conn, optionally exposing the nonce and proof so tests
/// can replay them.
void clientHello(Connection &Conn, const std::string &Token,
                 AuthNonce *NonceOut = nullptr, uint64_t *ProofOut = nullptr) {
  std::string Error;
  ASSERT_EQ(Conn.sendFrame(wire::FrameType::Hello,
                           wire::encodeHello(wire::HelloInfo())),
            IoStatus::Ok);
  wire::Frame Frame;
  ASSERT_EQ(Conn.recvFrame(Frame, Error), IoStatus::Ok) << Error;
  ASSERT_EQ(Frame.Type, wire::FrameType::Challenge);
  AuthNonce Nonce;
  ASSERT_TRUE(wire::decodeChallenge(Frame.Payload, Nonce.Hi, Nonce.Lo,
                                    Error))
      << Error;
  const uint64_t Proof = proofDigest(Token, Nonce, wire::ProtocolVersion);
  if (NonceOut)
    *NonceOut = Nonce;
  if (ProofOut)
    *ProofOut = Proof;
  ASSERT_EQ(Conn.sendFrame(wire::FrameType::AuthProof,
                           wire::encodeAuthProof(Proof)),
            IoStatus::Ok);
}

TEST(Distributed, TwoWorkersMatchLocalJsonByteForByte) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  const std::string Local = localJson(Specs, 4);
  const std::string Remote =
      serveWithWorkers(Specs, {WorkerOptions(), WorkerOptions()},
                       quickCoordinator());
  EXPECT_EQ(Local, Remote);
}

TEST(Distributed, UnixSocketTransportIsAlsoByteIdentical) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  CoordinatorOptions Opts = quickCoordinator();
  Opts.ListenAddr =
      "unix:/tmp/hds-dist-test-" + std::to_string(getpid()) + ".sock";
  const std::string Remote =
      serveWithWorkers(Specs, {WorkerOptions(), WorkerOptions()}, Opts);
  EXPECT_EQ(localJson(Specs, 2), Remote);
}

TEST(Distributed, MatchingTokensAuthenticateAndMatchLocalBytes) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  CoordinatorOptions Opts = quickCoordinator();
  Opts.Token = "fleet-secret";
  WorkerOptions Tokened;
  Tokened.Token = "fleet-secret";
  const std::string Remote =
      serveWithWorkers(Specs, {Tokened, Tokened}, Opts);
  EXPECT_EQ(localJson(Specs, 2), Remote);
}

TEST(Distributed, WorkerKilledMidJobStillYieldsIdenticalBytes) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  // One worker drops its connection after running a job *without sending
  // the result* — exactly a mid-job kill.  The healthy worker picks the
  // orphaned cell back up; the bytes must not change.
  WorkerOptions Faulty;
  Faulty.DropAfterJobs = 1;
  const std::string Remote = serveWithWorkers(
      Specs, {Faulty, WorkerOptions()}, quickCoordinator());
  EXPECT_EQ(localJson(Specs, 4), Remote);
}

TEST(Distributed, BadTokenWorkerIsRejectedAtHello) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  CoordinatorOptions Opts = quickCoordinator();
  Opts.Token = "fleet-secret";
  FleetStatsCollector Stats;
  Opts.Events = &Stats;

  Coordinator Coord(Opts);
  ASSERT_TRUE(Coord.listen()) << Coord.error();
  ResultSink Sink(Specs.size());
  std::jthread Server([&] { Coord.serve(Specs, Sink); });

  // The impostor is rejected at the hello: it never sees an assignment
  // and its exit is not a clean shutdown.
  WorkerOptions Impostor;
  Impostor.Token = "wrong-secret";
  std::string ImpostorError;
  const WorkerExit Rejected =
      runWorker(Coord.boundAddress(), Impostor, &ImpostorError);
  EXPECT_NE(Rejected, WorkerExit::CleanShutdown);
  EXPECT_NE(ImpostorError.find("authentication rejected"),
            std::string::npos)
      << ImpostorError;

  WorkerOptions Honest;
  Honest.Token = "fleet-secret";
  std::string HonestError;
  EXPECT_EQ(runWorker(Coord.boundAddress(), Honest, &HonestError),
            WorkerExit::CleanShutdown)
      << HonestError;
  Server.join();

  EXPECT_GE(Coord.registry().authFailureCount(), 1u);
  EXPECT_EQ(Coord.registry().registeredCount(), 1u);
  EXPECT_GE(Stats.snapshot().AuthFailures, 1u);
  EXPECT_EQ(Stats.snapshot().WorkersRegistered, 1u);
  EXPECT_EQ(resultsToJson(Sink.take()), localJson(Specs, 2));
}

TEST(Distributed, ReplayedProofFromAnotherConnectionIsRejected) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  CoordinatorOptions Opts = quickCoordinator();
  Opts.Token = "fleet-secret";

  Coordinator Coord(Opts);
  ASSERT_TRUE(Coord.listen()) << Coord.error();
  ResultSink Sink(Specs.size());
  std::jthread Server([&] { Coord.serve(Specs, Sink); });

  // First connection: complete the hello honestly and capture the proof
  // an eavesdropper would have seen on the wire.
  std::string Error;
  AuthNonce FirstNonce;
  uint64_t CapturedProof = 0;
  {
    Connection First = connectTo(Coord.boundAddress(), Error);
    ASSERT_TRUE(First.valid()) << Error;
    ASSERT_TRUE(First.setDeadlines(10000, 10000));
    clientHello(First, "fleet-secret", &FirstNonce, &CapturedProof);
    // Drop the authenticated connection without requesting work.
  }

  // Second connection: replay the captured proof.  The nonce is fresh,
  // so the stale proof must be rejected and the connection dropped.
  Connection Replayer = connectTo(Coord.boundAddress(), Error);
  ASSERT_TRUE(Replayer.valid()) << Error;
  ASSERT_TRUE(Replayer.setDeadlines(10000, 10000));
  ASSERT_EQ(Replayer.sendFrame(wire::FrameType::Hello,
                               wire::encodeHello(wire::HelloInfo())),
            IoStatus::Ok);
  wire::Frame Frame;
  ASSERT_EQ(Replayer.recvFrame(Frame, Error), IoStatus::Ok) << Error;
  ASSERT_EQ(Frame.Type, wire::FrameType::Challenge);
  AuthNonce SecondNonce;
  ASSERT_TRUE(wire::decodeChallenge(Frame.Payload, SecondNonce.Hi,
                                    SecondNonce.Lo, Error))
      << Error;
  EXPECT_TRUE(SecondNonce.Hi != FirstNonce.Hi ||
              SecondNonce.Lo != FirstNonce.Lo)
      << "challenge nonce reused across connections";
  ASSERT_EQ(Replayer.sendFrame(wire::FrameType::AuthProof,
                               wire::encodeAuthProof(CapturedProof)),
            IoStatus::Ok);
  EXPECT_NE(Replayer.recvFrame(Frame, Error), IoStatus::Ok)
      << "replayed proof was accepted";
  Replayer.close();

  // A real worker finishes the matrix; the replay attempt left a mark in
  // the registry but no job ever flowed to it.
  WorkerOptions Honest;
  Honest.Token = "fleet-secret";
  std::string HonestError;
  EXPECT_EQ(runWorker(Coord.boundAddress(), Honest, &HonestError),
            WorkerExit::CleanShutdown)
      << HonestError;
  Server.join();

  EXPECT_GE(Coord.registry().authFailureCount(), 1u);
  EXPECT_EQ(resultsToJson(Sink.take()), localJson(Specs, 2));
}

TEST(Distributed, VersionSkewedHelloIsRejectedBeforeAuth) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  CoordinatorOptions Opts = quickCoordinator();
  Opts.Token = "fleet-secret";

  Coordinator Coord(Opts);
  ASSERT_TRUE(Coord.listen()) << Coord.error();
  ResultSink Sink(Specs.size());
  std::jthread Server([&] { Coord.serve(Specs, Sink); });

  // Raw client speaking a future protocol version: patch the version
  // byte of an otherwise valid Hello.  The CRC covers only the payload,
  // so the frame fails the version check, not the checksum — exactly the
  // skew a mixed-version fleet would produce.
  Address Addr;
  std::string Error;
  ASSERT_TRUE(parseAddress(Coord.boundAddress(), Addr, Error)) << Error;
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  timeval Timeout{5, 0};
  ASSERT_EQ(::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout,
                         sizeof(Timeout)),
            0);
  sockaddr_in Sin{};
  Sin.sin_family = AF_INET;
  Sin.sin_port = htons(Addr.Port);
  ASSERT_EQ(inet_pton(AF_INET, Addr.Host.c_str(), &Sin.sin_addr), 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Sin), sizeof(Sin)),
            0);
  std::vector<uint8_t> Bytes = wire::encodeFrame(
      wire::FrameType::Hello, wire::encodeHello(wire::HelloInfo()));
  Bytes[2] = wire::ProtocolVersion + 1;
  ASSERT_EQ(::send(Fd, Bytes.data(), Bytes.size(), 0),
            static_cast<ssize_t>(Bytes.size()));
  // The coordinator drops the connection without a challenge.
  uint8_t Scrap = 0;
  EXPECT_LE(::recv(Fd, &Scrap, 1, 0), 0);
  ::close(Fd);

  WorkerOptions Honest;
  Honest.Token = "fleet-secret";
  std::string HonestError;
  EXPECT_EQ(runWorker(Coord.boundAddress(), Honest, &HonestError),
            WorkerExit::CleanShutdown)
      << HonestError;
  Server.join();

  EXPECT_GE(Coord.registry().authFailureCount(), 1u);
  EXPECT_EQ(Coord.registry().registeredCount(), 1u);
  EXPECT_EQ(resultsToJson(Sink.take()), localJson(Specs, 2));
}

TEST(Distributed, HeartbeatLossRequeuesTheJobAndBytesStillMatch) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  CoordinatorOptions Opts = quickCoordinator();
  Opts.HeartbeatIntervalMs = 50;
  Opts.HeartbeatMisses = 2;
  FleetStatsCollector Stats;
  Opts.Events = &Stats;

  Coordinator Coord(Opts);
  ASSERT_TRUE(Coord.listen()) << Coord.error();
  ResultSink Sink(Specs.size());
  std::jthread Server([&] { Coord.serve(Specs, Sink); });

  // A wedged worker: handshakes, takes an assignment, then goes silent —
  // no result, no heartbeats, connection held open.  runWorker cannot be
  // coaxed into this (its beater thread is always honest), so drive the
  // protocol by hand.
  std::string Error;
  Connection Wedged = connectTo(Coord.boundAddress(), Error);
  ASSERT_TRUE(Wedged.valid()) << Error;
  ASSERT_TRUE(Wedged.setDeadlines(10000, 10000));
  clientHello(Wedged, "");
  ASSERT_EQ(Wedged.sendFrame(wire::FrameType::JobRequest, {}), IoStatus::Ok);
  wire::Frame Frame;
  ASSERT_EQ(Wedged.recvFrame(Frame, Error), IoStatus::Ok) << Error;
  ASSERT_EQ(Frame.Type, wire::FrameType::Assign);

  // Only now start the healthy worker, so the wedged one holds a real
  // assignment that must be requeued.  It beats faster than the
  // coordinator's 100 ms silence window so long cells never look dead.
  WorkerOptions Healthy;
  Healthy.HeartbeatIntervalMs = 25;
  std::string HealthyError;
  std::jthread Runner([&, Addr = Coord.boundAddress()] {
    EXPECT_EQ(runWorker(Addr, Healthy, &HealthyError),
              WorkerExit::CleanShutdown)
        << HealthyError;
  });

  // The coordinator declares the wedged worker dead after two silent
  // heartbeat intervals and closes the connection.
  while (Wedged.recvFrame(Frame, Error) == IoStatus::Ok) {
  }
  Wedged.close();
  Runner.join();
  Server.join();

  const FleetStats Observed = Stats.snapshot();
  EXPECT_GE(Observed.HeartbeatsMissed, 1u);
  EXPECT_GE(Observed.JobsRequeued, 1u);
  EXPECT_GE(Observed.Heartbeats, 1u);
  bool SawHeartbeatDeparture = false;
  for (const WorkerRecord &Row : Coord.registry().snapshot())
    if (Row.DepartReason.find("heartbeat") != std::string::npos)
      SawHeartbeatDeparture = true;
  EXPECT_TRUE(SawHeartbeatDeparture);
  EXPECT_EQ(resultsToJson(Sink.take()), localJson(Specs, 2));
}

TEST(Distributed, RetryBudgetExhaustionResolvesAsErrorNotAHang) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 100;
  Specs.push_back(Spec);

  CoordinatorOptions Opts = quickCoordinator();
  Opts.RetryBudget = 0;
  Opts.IdleTimeoutMs = 5000;
  WorkerOptions Faulty;
  Faulty.DropAfterJobs = 1; // the only worker never returns its result

  Coordinator Coord(Opts);
  ASSERT_TRUE(Coord.listen()) << Coord.error();
  std::jthread Worker([Addr = Coord.boundAddress(), Faulty] {
    std::string Error;
    (void)runWorker(Addr, Faulty, &Error);
  });

  ResultSink Sink(Specs.size());
  Coord.serve(Specs, Sink);
  const std::vector<RunResult> Results = Sink.take();
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].State, RunResult::Status::Error);
  EXPECT_NE(Results[0].Error.find("dispatch"), std::string::npos)
      << Results[0].Error;
}

TEST(Distributed, IdleDeadlineFailsTheMatrixWhenNoWorkerEverConnects) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 100;
  Specs.push_back(Spec);

  CoordinatorOptions Opts = quickCoordinator();
  Opts.IdleTimeoutMs = 200; // fail fast; nobody is coming

  Coordinator Coord(Opts);
  ASSERT_TRUE(Coord.listen()) << Coord.error();
  ResultSink Sink(Specs.size());
  Coord.serve(Specs, Sink);
  const std::vector<RunResult> Results = Sink.take();
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].State, RunResult::Status::Error);
  EXPECT_NE(Results[0].Error.find("idle"), std::string::npos)
      << Results[0].Error;
}

TEST(Distributed, InvalidListenAddressResolvesEverySlotAsError) {
  FleetConfig Config;
  Config.ListenAddr = "not-an-address";

  std::string Bound, Error;
  EXPECT_EQ(makeFleet(Config, &Bound, &Error), nullptr);
  EXPECT_FALSE(Error.empty());

  // The exposed executor still honors the never-hang contract: every
  // slot resolves as an error naming the invalid config.
  FleetExecutor Exec(Config);
  EXPECT_FALSE(Exec.valid());
  EXPECT_FALSE(Exec.error().empty());

  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 100;
  Specs.push_back(Spec);
  const std::vector<RunResult> Results = Exec.run(Specs);
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].State, RunResult::Status::Error);
  EXPECT_NE(Results[0].Error.find("invalid"), std::string::npos)
      << Results[0].Error;
}

TEST(Distributed, NonLoopbackListenersNeedOptInAndAToken) {
  FleetConfig Config;
  Config.ListenAddr = "0.0.0.0:0";
  std::string Bound, Error;
  EXPECT_EQ(makeFleet(Config, &Bound, &Error), nullptr);
  EXPECT_NE(Error.find("non-loopback"), std::string::npos) << Error;

  Config.AllowNonLoopback = true; // opted in, but still no shared secret
  Error.clear();
  EXPECT_EQ(makeFleet(Config, &Bound, &Error), nullptr);
  EXPECT_NE(Error.find("--token"), std::string::npos) << Error;
}

TEST(Distributed, WorkerAgainstNobodyFailsToConnectCleanly) {
  std::string Error;
  // Port 1 on loopback: reserved, nothing listens there.
  const WorkerExit Exit = runWorker("127.0.0.1:1", WorkerOptions(), &Error);
  EXPECT_EQ(Exit, WorkerExit::ConnectFailed);
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Worker registry
//===----------------------------------------------------------------------===//

TEST(Registry, RowsKeepRegistrationOrderAndDepartureReasons) {
  WorkerRegistry Registry;
  WorkerCapabilities BigBox;
  BigBox.Cores = 64;
  BigBox.MemoryBudgetMB = 262144;
  const uint64_t First = Registry.add(BigBox);
  const uint64_t Second = Registry.add(WorkerCapabilities());
  EXPECT_LT(First, Second);

  Registry.recordHeartbeat(First);
  Registry.recordHeartbeat(First);
  Registry.recordJob(First);
  Registry.markDeparted(First, "worker heartbeats lost");
  Registry.recordAuthFailure();

  EXPECT_EQ(Registry.registeredCount(), 2u);
  EXPECT_EQ(Registry.connectedCount(), 1u);
  EXPECT_EQ(Registry.authFailureCount(), 1u);
  EXPECT_EQ(Registry.heartbeatCount(), 2u);

  const std::vector<WorkerRecord> Rows = Registry.snapshot();
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].Id, First);
  EXPECT_EQ(Rows[0].Caps.Cores, 64u);
  EXPECT_EQ(Rows[0].Heartbeats, 2u);
  EXPECT_EQ(Rows[0].JobsCompleted, 1u);
  EXPECT_FALSE(Rows[0].Connected);
  EXPECT_EQ(Rows[0].DepartReason, "worker heartbeats lost");
  EXPECT_TRUE(Rows[1].Connected);
  EXPECT_TRUE(Rows[1].DepartReason.empty());
}

//===----------------------------------------------------------------------===//
// Checkpoint journal
//===----------------------------------------------------------------------===//

TEST(Checkpoint, WriterReaderRoundTripRestoresExactResultBytes) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  FleetConfig Local;
  Local.Jobs = 2;
  const std::vector<RunResult> Results = makeLocal(Local)->run(Specs);

  const std::string Path = tempPath("roundtrip");
  std::remove(Path.c_str());
  CheckpointWriter Writer;
  std::string Error;
  ASSERT_TRUE(Writer.create(Path, Specs, Error)) << Error;
  EXPECT_TRUE(Writer.isOpen());
  EXPECT_TRUE(Writer.append(1, Results[1]));
  EXPECT_TRUE(Writer.append(3, Results[3]));

  // Errored cells are never journaled: they must re-run on resume.
  RunResult Failed;
  Failed.Spec = Specs[0];
  Failed.State = RunResult::Status::Error;
  Failed.Error = "synthetic";
  EXPECT_FALSE(Writer.append(0, Failed));
  EXPECT_EQ(Writer.records(), 2u);
  Writer.close();

  CheckpointContents Saved;
  ASSERT_TRUE(readCheckpoint(Path, Saved, Error)) << Error;
  EXPECT_FALSE(Saved.TornTail);
  EXPECT_EQ(Saved.CompletedCells, 2u);
  EXPECT_EQ(Saved.Fingerprint, matrixFingerprint(Specs));
  ASSERT_EQ(Saved.Specs.size(), Specs.size());
  ASSERT_EQ(Saved.Resolved.size(), Specs.size());
  for (std::size_t I = 0; I < Specs.size(); ++I)
    EXPECT_EQ(Saved.Resolved[I], I == 1 || I == 3) << "cell " << I;
  // The journal stores the Result wire encoding, so restored cells
  // serialize to exactly the bytes a live worker would have delivered.
  EXPECT_EQ(jsonFor(Saved.Results[1]), jsonFor(Results[1]));
  EXPECT_EQ(jsonFor(Saved.Results[3]), jsonFor(Results[3]));
  std::remove(Path.c_str());
}

TEST(Checkpoint, TornTailIsDroppedNotFatal) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  const std::string Path = tempPath("torn");
  std::remove(Path.c_str());
  CheckpointWriter Writer;
  std::string Error;
  ASSERT_TRUE(Writer.create(Path, Specs, Error)) << Error;
  RunResult Done = fancyResult();
  Done.Spec = Specs[2];
  ASSERT_TRUE(Writer.append(2, Done));
  Done.Spec = Specs[5];
  ASSERT_TRUE(Writer.append(5, Done));
  Writer.close();

  // Chop bytes off the final record: a coordinator killed mid-append.
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  ASSERT_EQ(std::fseek(File, 0, SEEK_END), 0);
  const long Size = std::ftell(File);
  ASSERT_GT(Size, 16);
  std::fclose(File);
  ASSERT_EQ(truncate(Path.c_str(), Size - 9), 0);

  CheckpointContents Saved;
  ASSERT_TRUE(readCheckpoint(Path, Saved, Error)) << Error;
  EXPECT_TRUE(Saved.TornTail);
  EXPECT_EQ(Saved.CompletedCells, 1u);
  EXPECT_TRUE(Saved.Resolved[2]);
  EXPECT_FALSE(Saved.Resolved[5]); // the torn record re-runs
  std::remove(Path.c_str());
}

TEST(Checkpoint, CorruptionAnywhereRejectsTheWholeJournal) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  const std::string Path = tempPath("corrupt");
  std::remove(Path.c_str());
  CheckpointWriter Writer;
  std::string Error;
  ASSERT_TRUE(Writer.create(Path, Specs, Error)) << Error;
  RunResult Done = fancyResult();
  Done.Spec = Specs[0];
  ASSERT_TRUE(Writer.append(0, Done));
  Writer.close();

  // Flip one byte in the middle of the record's payload: the CRC fails,
  // and unlike a torn tail this must reject the journal outright.
  std::FILE *File = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(File, nullptr);
  ASSERT_EQ(std::fseek(File, 0, SEEK_END), 0);
  const long Size = std::ftell(File);
  ASSERT_GT(Size, 32);
  ASSERT_EQ(std::fseek(File, Size - 16, SEEK_SET), 0);
  int Byte = std::fgetc(File);
  ASSERT_NE(Byte, EOF);
  ASSERT_EQ(std::fseek(File, Size - 16, SEEK_SET), 0);
  ASSERT_NE(std::fputc(Byte ^ 0xFF, File), EOF);
  std::fclose(File);

  CheckpointContents Saved;
  EXPECT_FALSE(readCheckpoint(Path, Saved, Error));
  EXPECT_FALSE(Error.empty());
  std::remove(Path.c_str());
}

TEST(Checkpoint, DuplicateRecordsAreRejected) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  const std::string Path = tempPath("duplicate");
  std::remove(Path.c_str());
  CheckpointWriter Writer;
  std::string Error;
  ASSERT_TRUE(Writer.create(Path, Specs, Error)) << Error;
  RunResult Done = fancyResult();
  Done.Spec = Specs[4];
  ASSERT_TRUE(Writer.append(4, Done));
  ASSERT_TRUE(Writer.append(4, Done)); // the writer trusts its caller…
  Writer.close();

  CheckpointContents Saved;
  EXPECT_FALSE(readCheckpoint(Path, Saved, Error)); // …the reader does not
  EXPECT_FALSE(Error.empty());
  std::remove(Path.c_str());
}

TEST(Checkpoint, FingerprintMismatchRefusesToResume) {
  std::vector<ExperimentSpec> Journaled = smallMatrix();
  const std::string Path = tempPath("fingerprint");
  std::remove(Path.c_str());
  CheckpointWriter Writer;
  std::string Error;
  ASSERT_TRUE(Writer.create(Path, Journaled, Error)) << Error;
  Writer.close();

  // Same cell count, different matrix: the fingerprint must catch it.
  std::vector<ExperimentSpec> Different = smallMatrix();
  Different[0].Iterations += 1;
  EXPECT_NE(matrixFingerprint(Journaled), matrixFingerprint(Different));

  FleetConfig Config;
  Config.CheckpointPath = Path;
  Config.Resume = true;
  FleetExecutor Exec(Config);
  ASSERT_TRUE(Exec.valid()) << Exec.error();
  const std::vector<RunResult> Results = Exec.run(Different);
  ASSERT_EQ(Results.size(), Different.size());
  for (const RunResult &Result : Results) {
    EXPECT_EQ(Result.State, RunResult::Status::Error);
    EXPECT_NE(Result.Error.find("different matrix"), std::string::npos)
        << Result.Error;
  }
  std::remove(Path.c_str());
}

TEST(Checkpoint, MissingJournalRefusesToResume) {
  const std::string Path = tempPath("missing");
  std::remove(Path.c_str());
  FleetConfig Config;
  Config.CheckpointPath = Path;
  Config.Resume = true;
  FleetExecutor Exec(Config);

  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 100;
  Specs.push_back(Spec);
  const std::vector<RunResult> Results = Exec.run(Specs);
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].State, RunResult::Status::Error);
  EXPECT_NE(Results[0].Error.find("resume"), std::string::npos)
      << Results[0].Error;
}

//===----------------------------------------------------------------------===//
// Checkpoint/resume end-to-end through the fleet executor
//===----------------------------------------------------------------------===//

TEST(Distributed, ResumeFromPartialJournalMatchesLocalBytes) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  FleetConfig LocalConfig;
  LocalConfig.Jobs = 2;
  const std::vector<RunResult> Reference =
      makeLocal(LocalConfig)->run(Specs);

  // A journal a killed coordinator left behind: header plus two finished
  // cells.  The journaled bytes are exactly what workers would have sent
  // (the writer reuses the Result wire encoding), so resuming must
  // reproduce the uninterrupted aggregate byte for byte.
  const std::string Path = tempPath("resume");
  std::remove(Path.c_str());
  CheckpointWriter Writer;
  std::string Error;
  ASSERT_TRUE(Writer.create(Path, Specs, Error)) << Error;
  ASSERT_TRUE(Writer.append(0, Reference[0]));
  ASSERT_TRUE(Writer.append(3, Reference[3]));
  Writer.close();

  FleetConfig Config;
  Config.CheckpointPath = Path;
  Config.Resume = true;
  FleetStatsCollector Stats;
  Config.Events = &Stats;
  FleetExecutor Exec(Config);
  ASSERT_TRUE(Exec.valid()) << Exec.error();
  std::jthread Runner([Addr = Exec.boundAddress()] {
    WorkerOptions Opts;
    std::string WorkerError;
    EXPECT_EQ(runWorker(Addr, Opts, &WorkerError),
              WorkerExit::CleanShutdown)
        << WorkerError;
  });
  const std::vector<RunResult> Resumed = Exec.run(Specs);
  Runner.join();

  EXPECT_EQ(resultsToJson(Resumed), resultsToJson(Reference));
  const FleetStats Observed = Stats.snapshot();
  EXPECT_EQ(Observed.CellsResumed, 2u);
  EXPECT_EQ(Observed.CellsCheckpointed, Specs.size() - 2);

  // The journal now covers the whole matrix; a second resume needs no
  // workers at all and still emits identical bytes.
  CheckpointContents Saved;
  ASSERT_TRUE(readCheckpoint(Path, Saved, Error)) << Error;
  EXPECT_EQ(Saved.CompletedCells, Specs.size());

  FleetConfig Again = Config;
  Again.Events = nullptr;
  FleetExecutor Cold(Again);
  ASSERT_TRUE(Cold.valid()) << Cold.error();
  EXPECT_EQ(resultsToJson(Cold.run(Specs)), resultsToJson(Reference));
  std::remove(Path.c_str());
}

TEST(Distributed, DrainCancelsRemainderAndResumeFinishesTheMatrix) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  const std::string Path = tempPath("drain");
  std::remove(Path.c_str());

  // Drain requested before any assignment: every cell resolves as
  // Cancelled, the journal holds only its header, and nothing hangs.
  std::atomic<bool> Drain{true};
  FleetConfig Config;
  Config.CheckpointPath = Path;
  Config.CancelRequested = &Drain;
  Config.IdleTimeoutMs = 10000;
  FleetExecutor Exec(Config);
  ASSERT_TRUE(Exec.valid()) << Exec.error();
  const std::vector<RunResult> Drained = Exec.run(Specs);
  ASSERT_EQ(Drained.size(), Specs.size());
  for (const RunResult &Result : Drained)
    EXPECT_EQ(Result.State, RunResult::Status::Cancelled);

  // The journal a drained run leaves behind is a valid resume point.
  FleetConfig ResumeConfig;
  ResumeConfig.CheckpointPath = Path;
  ResumeConfig.Resume = true;
  FleetExecutor Resumer(ResumeConfig);
  ASSERT_TRUE(Resumer.valid()) << Resumer.error();
  std::jthread Runner([Addr = Resumer.boundAddress()] {
    WorkerOptions Opts;
    std::string WorkerError;
    EXPECT_EQ(runWorker(Addr, Opts, &WorkerError),
              WorkerExit::CleanShutdown)
        << WorkerError;
  });
  const std::vector<RunResult> Finished = Resumer.run(Specs);
  Runner.join();
  EXPECT_EQ(resultsToJson(Finished), localJson(Specs, 2));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Results diffing (the --diff surface)
//===----------------------------------------------------------------------===//

TEST(ResultsDiff, IdenticalDocumentsCompareClean) {
  const std::string Json = localJson(smallMatrix(), 2);
  DiffReport Report;
  std::string Error;
  ASSERT_TRUE(diffResults(Json, Json, DiffOptions(), Report, Error))
      << Error;
  EXPECT_FALSE(Report.regressed());
  EXPECT_EQ(Report.CellsCompared, smallMatrix().size());
}

TEST(ResultsDiff, CycleGrowthIsARegressionAndThresholdSilencesIt) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 200;
  Specs.push_back(Spec);
  std::vector<RunResult> Results = makeLocal()->run(Specs);
  const std::string Before = resultsToJson(Results);
  Results[0].Cycles += Results[0].Cycles / 100 + 1; // ~1% slower
  const std::string After = resultsToJson(Results);

  DiffReport Exact;
  std::string Error;
  ASSERT_TRUE(diffResults(Before, After, DiffOptions(), Exact, Error))
      << Error;
  EXPECT_TRUE(Exact.regressed());
  ASSERT_EQ(Exact.Regressions.size(), 1u);
  EXPECT_NE(Exact.Regressions[0].Detail.find("cycles"), std::string::npos);

  DiffOptions Loose;
  Loose.ThresholdPct = 50.0;
  DiffReport Tolerant;
  ASSERT_TRUE(diffResults(Before, After, Loose, Tolerant, Error)) << Error;
  EXPECT_TRUE(Tolerant.Regressions.empty());
}

TEST(ResultsDiff, StatusFlipAndMissingCellsAreReported) {
  std::vector<ExperimentSpec> Specs = smallMatrix();
  std::vector<RunResult> Results = makeLocal()->run(Specs);
  const std::string Before = resultsToJson(Results);

  Results[0].State = RunResult::Status::Error;
  Results[0].Error = "synthetic failure";
  Results.pop_back();
  const std::string After = resultsToJson(Results);

  DiffReport Report;
  std::string Error;
  ASSERT_TRUE(diffResults(Before, After, DiffOptions(), Report, Error))
      << Error;
  EXPECT_TRUE(Report.regressed());
  EXPECT_EQ(Report.StatusChanges.size(), 1u);
  EXPECT_EQ(Report.OnlyInA.size(), 1u);
  EXPECT_TRUE(Report.OnlyInB.empty());
}

TEST(ResultsDiff, RejectsForeignDocuments) {
  DiffReport Report;
  std::string Error;
  EXPECT_FALSE(diffResults("{]", "{}", DiffOptions(), Report, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(diffResults("{\"schema\": \"something-else\"}", "{}",
                           DiffOptions(), Report, Error));
}

} // namespace
