//===- tests/distributed_test.cpp - Distributed matrix runner tests --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Tests for the distributed shard runner (src/engine/Wire.h, Transport.h,
// Coordinator.h, Worker.h, Executor.h): wire round-trips, frame decoding
// under truncation/corruption/version skew (this binary runs under ASan
// and TSan in CI), socket transport round-trips, and the headline
// contract — a loopback distributed run aggregates to JSON byte-identical
// to an in-process run, including when a worker dies mid-job.
//
//===----------------------------------------------------------------------===//

#include "engine/Coordinator.h"
#include "engine/Executor.h"
#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/ResultSink.h"
#include "engine/ResultsDiff.h"
#include "engine/ResultsJson.h"
#include "engine/Transport.h"
#include "engine/Wire.h"
#include "engine/Worker.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cstdint>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <type_traits>
#include <unistd.h>
#include <vector>

using namespace hds;
using namespace hds::engine;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures
//===----------------------------------------------------------------------===//

ExperimentSpec fancySpec() {
  ExperimentSpec Spec;
  Spec.Workload = "mcf";
  Spec.Mode = core::RunMode::DynamicPrefetch;
  Spec.Scale = 0.625; // exactly representable: survives the bit round-trip
  Spec.Iterations = 12345;
  Spec.Seed = 77;
  Spec.HeadLength = 3;
  Spec.Prefetchers.set(prefetch::Prefetcher::Stride, true);
  Spec.Pin = true;
  Spec.Adaptive = true;
  Spec.Tuned = true;
  return Spec;
}

/// An Ok result with every counter distinct, so any field swap or drop in
/// the wire codec shows up as a mismatch.
RunResult fancyResult() {
  RunResult Result;
  Result.Spec = fancySpec();
  Result.State = RunResult::Status::Ok;
  Result.Iterations = 9001;
  Result.Cycles = 123456789;
  uint64_t Fill = 10;
  auto Assign = [&Fill](const obs::MetricDef &, auto &Field) {
    Field = static_cast<std::remove_reference_t<decltype(Field)>>(Fill++);
  };
  core::visitRunStatsMetrics(Result.Stats, Assign);
  memsim::visitHierarchyStatsMetrics(Result.Memory, Assign);
  memsim::visitCacheStatsMetrics(Result.L1, Assign);
  memsim::visitCacheStatsMetrics(Result.L2, Assign);
  for (int Phase = 0; Phase < 3; ++Phase) {
    core::CycleStats Stats;
    core::visitCycleStatsMetrics(Stats, Assign);
    Result.Stats.Cycles.push_back(Stats);
  }
  obs::visitCycleBreakdownMetrics(Result.Breakdown, Assign);
  for (int Stream = 0; Stream < 2; ++Stream) {
    obs::StreamPrefetchStats Stats;
    obs::visitStreamPrefetchStatsMetrics(Stats, Assign);
    Result.Streams.push_back(Stats);
  }
  return Result;
}

std::string jsonFor(const RunResult &Result) {
  return resultsToJson(std::vector<RunResult>{Result});
}

std::vector<ExperimentSpec> smallMatrix() {
  // vpr under every mode at a tiny fixed iteration count; one cell with a
  // layout seed so the seed field crosses the wire too.
  std::vector<ExperimentSpec> Specs;
  const core::RunMode Modes[] = {
      core::RunMode::Original,         core::RunMode::ChecksOnly,
      core::RunMode::Profile,          core::RunMode::ProfileAnalyze,
      core::RunMode::MatchNoPrefetch,  core::RunMode::SequentialPrefetch,
      core::RunMode::DynamicPrefetch};
  for (core::RunMode Mode : Modes) {
    ExperimentSpec Spec;
    Spec.Workload = "vpr";
    Spec.Mode = Mode;
    Spec.Iterations = 300;
    Specs.push_back(Spec);
  }
  Specs.back().Seed = 5;
  return Specs;
}

std::string localJson(const std::vector<ExperimentSpec> &Specs,
                      unsigned Jobs) {
  LocalExecutor::Options Opts;
  Opts.Jobs = Jobs;
  LocalExecutor Local(Opts);
  return resultsToJson(Local.run(Specs));
}

//===----------------------------------------------------------------------===//
// Wire payload round-trips
//===----------------------------------------------------------------------===//

TEST(Wire, AssignRoundTripPreservesEverySpecField) {
  const ExperimentSpec Spec = fancySpec();
  const std::vector<uint8_t> Payload = wire::encodeAssign(42, Spec);

  uint64_t Index = 0;
  ExperimentSpec Decoded;
  std::string Error;
  ASSERT_TRUE(wire::decodeAssign(Payload, Index, Decoded, Error)) << Error;
  EXPECT_EQ(Index, 42u);
  EXPECT_EQ(Decoded.Workload, Spec.Workload);
  EXPECT_EQ(Decoded.Mode, Spec.Mode);
  EXPECT_EQ(Decoded.Scale, Spec.Scale);
  EXPECT_EQ(Decoded.Iterations, Spec.Iterations);
  EXPECT_EQ(Decoded.Seed, Spec.Seed);
  EXPECT_EQ(Decoded.HeadLength, Spec.HeadLength);
  EXPECT_EQ(Decoded.Prefetchers, Spec.Prefetchers);
  EXPECT_EQ(Decoded.Pin, Spec.Pin);
  EXPECT_EQ(Decoded.Adaptive, Spec.Adaptive);
  EXPECT_EQ(Decoded.Tuned, Spec.Tuned);
}

TEST(Wire, ResultRoundTripSerializesToIdenticalJson) {
  const RunResult Original = fancyResult();
  const std::vector<uint8_t> Payload = wire::encodeResult(7, Original);

  uint64_t Index = 0;
  RunResult Decoded;
  std::string Error;
  ASSERT_TRUE(wire::decodeResult(Payload, Index, Decoded, Error)) << Error;
  EXPECT_EQ(Index, 7u);
  EXPECT_EQ(Decoded.Iterations, Original.Iterations);
  EXPECT_EQ(Decoded.Cycles, Original.Cycles);
  ASSERT_EQ(Decoded.Stats.Cycles.size(), Original.Stats.Cycles.size());
  // The JSON writer reads every serialized field; byte equality here is
  // field equality everywhere downstream.
  EXPECT_EQ(jsonFor(Decoded), jsonFor(Original));
}

TEST(Wire, ErrorResultRoundTripKeepsStatusAndMessage) {
  RunResult Failed;
  Failed.Spec = fancySpec();
  Failed.State = RunResult::Status::Error;
  Failed.Error = "unknown workload 'np-complete'";

  uint64_t Index = 0;
  RunResult Decoded;
  std::string Error;
  ASSERT_TRUE(wire::decodeResult(wire::encodeResult(3, Failed), Index,
                                 Decoded, Error))
      << Error;
  EXPECT_EQ(Decoded.State, RunResult::Status::Error);
  EXPECT_EQ(Decoded.Error, Failed.Error);
  EXPECT_EQ(jsonFor(Decoded), jsonFor(Failed));
}

//===----------------------------------------------------------------------===//
// Frame decoding under fault injection
//===----------------------------------------------------------------------===//

TEST(Wire, FrameRoundTrip) {
  const std::vector<uint8_t> Payload = wire::encodeAssign(9, fancySpec());
  const std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Assign, Payload);
  EXPECT_EQ(Bytes.size(),
            wire::HeaderBytes + Payload.size() + wire::TrailerBytes);

  wire::Frame Frame;
  std::size_t Consumed = 0;
  std::string Error;
  ASSERT_EQ(wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                              Error),
            wire::DecodeStatus::Ok)
      << Error;
  EXPECT_EQ(Consumed, Bytes.size());
  EXPECT_EQ(Frame.Type, wire::FrameType::Assign);
  EXPECT_EQ(Frame.Payload, Payload);
}

TEST(Wire, EveryTruncationIsNeedMoreNeverOk) {
  const std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Result,
                        wire::encodeResult(1, fancyResult()));
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len) {
    wire::Frame Frame;
    std::size_t Consumed = 0;
    std::string Error;
    const wire::DecodeStatus Status =
        wire::decodeFrame(Bytes.data(), Len, Frame, Consumed, Error);
    EXPECT_EQ(Status, wire::DecodeStatus::NeedMore)
        << "prefix of " << Len << " bytes";
  }
}

TEST(Wire, EveryInvertedByteIsRejected) {
  // Inverting any single byte must never yield a successfully decoded
  // frame: magic/version/type and unknown-type checks catch the header,
  // the length either overflows the cap or dangles past the buffer, and
  // the CRC covers the payload and itself.
  std::vector<uint8_t> Bytes = wire::encodeFrame(
      wire::FrameType::Assign, wire::encodeAssign(4, fancySpec()));
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    Bytes[I] = static_cast<uint8_t>(~Bytes[I]);
    wire::Frame Frame;
    std::size_t Consumed = 0;
    std::string Error;
    const wire::DecodeStatus Status =
        wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                          Error);
    EXPECT_NE(Status, wire::DecodeStatus::Ok) << "inverted byte " << I;
    Bytes[I] = static_cast<uint8_t>(~Bytes[I]);
  }
}

TEST(Wire, VersionSkewIsMalformedWithAClearMessage) {
  std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Hello, {});
  Bytes[2] = wire::ProtocolVersion + 1;
  wire::Frame Frame;
  std::size_t Consumed = 0;
  std::string Error;
  EXPECT_EQ(wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                              Error),
            wire::DecodeStatus::Malformed);
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(Wire, OversizedDeclaredLengthIsMalformedNotAnAllocation) {
  std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Hello, {});
  // Little-endian length at offset 4: claim just past the cap.
  const uint32_t Huge = wire::MaxPayloadBytes + 1;
  Bytes[4] = static_cast<uint8_t>(Huge & 0xFF);
  Bytes[5] = static_cast<uint8_t>((Huge >> 8) & 0xFF);
  Bytes[6] = static_cast<uint8_t>((Huge >> 16) & 0xFF);
  Bytes[7] = static_cast<uint8_t>((Huge >> 24) & 0xFF);
  wire::Frame Frame;
  std::size_t Consumed = 0;
  std::string Error;
  EXPECT_EQ(wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                              Error),
            wire::DecodeStatus::Malformed);
  EXPECT_NE(Error.find("oversized"), std::string::npos) << Error;
}

TEST(Wire, UnknownFrameTypeIsMalformed) {
  std::vector<uint8_t> Bytes =
      wire::encodeFrame(wire::FrameType::Hello, {});
  Bytes[3] = 99;
  wire::Frame Frame;
  std::size_t Consumed = 0;
  std::string Error;
  EXPECT_EQ(wire::decodeFrame(Bytes.data(), Bytes.size(), Frame, Consumed,
                              Error),
            wire::DecodeStatus::Malformed);
}

TEST(Wire, PayloadDecodersRejectEveryTruncatedPrefix) {
  const std::vector<uint8_t> Assign = wire::encodeAssign(11, fancySpec());
  for (std::size_t Len = 0; Len < Assign.size(); ++Len) {
    const std::vector<uint8_t> Prefix(Assign.begin(),
                                      Assign.begin() +
                                          static_cast<std::ptrdiff_t>(Len));
    uint64_t Index = 0;
    ExperimentSpec Spec;
    std::string Error;
    EXPECT_FALSE(wire::decodeAssign(Prefix, Index, Spec, Error))
        << "assign prefix of " << Len << " bytes decoded";
  }

  const std::vector<uint8_t> Result = wire::encodeResult(11, fancyResult());
  for (std::size_t Len = 0; Len < Result.size(); ++Len) {
    const std::vector<uint8_t> Prefix(Result.begin(),
                                      Result.begin() +
                                          static_cast<std::ptrdiff_t>(Len));
    uint64_t Index = 0;
    RunResult Decoded;
    std::string Error;
    EXPECT_FALSE(wire::decodeResult(Prefix, Index, Decoded, Error))
        << "result prefix of " << Len << " bytes decoded";
  }
}

TEST(Wire, SeededGarbagePayloadsNeverDecode) {
  // Deterministic multiplicative congruential garbage: the decoders must
  // reject it all (or, vanishingly unlikely, decode something — but they
  // must never crash; ASan is watching).
  uint64_t X = 0x243F6A8885A308D3ull; // pi digits, fixed seed
  auto NextByte = [&X]() {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint8_t>(X >> 56);
  };
  for (int Round = 0; Round < 256; ++Round) {
    std::vector<uint8_t> Garbage(static_cast<std::size_t>(Round) * 3 + 1);
    for (uint8_t &Byte : Garbage)
      Byte = NextByte();

    uint64_t Index = 0;
    ExperimentSpec Spec;
    RunResult Result;
    std::string Error;
    (void)wire::decodeAssign(Garbage, Index, Spec, Error);
    (void)wire::decodeResult(Garbage, Index, Result, Error);

    wire::Frame Frame;
    std::size_t Consumed = 0;
    (void)wire::decodeFrame(Garbage.data(), Garbage.size(), Frame, Consumed,
                            Error);
  }
}

//===----------------------------------------------------------------------===//
// Transport
//===----------------------------------------------------------------------===//

TEST(Transport, ParseAddressAcceptsBothFamilies) {
  Address Addr;
  std::string Error;
  ASSERT_TRUE(parseAddress("127.0.0.1:7077", Addr, Error)) << Error;
  EXPECT_FALSE(Addr.IsUnix);
  EXPECT_EQ(Addr.Host, "127.0.0.1");
  EXPECT_EQ(Addr.Port, 7077);

  ASSERT_TRUE(parseAddress("unix:/tmp/hds.sock", Addr, Error)) << Error;
  EXPECT_TRUE(Addr.IsUnix);
  EXPECT_EQ(Addr.UnixPath, "/tmp/hds.sock");

  EXPECT_FALSE(parseAddress("no-port-here", Addr, Error));
  EXPECT_FALSE(parseAddress("127.0.0.1:99999", Addr, Error));
  EXPECT_FALSE(parseAddress("unix:", Addr, Error));
}

void roundTripOver(const std::string &ListenAddr) {
  Listener Server;
  std::string Error;
  ASSERT_TRUE(Server.listen(ListenAddr, Error)) << Error;

  const std::vector<uint8_t> Payload = wire::encodeAssign(5, fancySpec());
  std::jthread Client([Addr = Server.boundAddress(), &Payload] {
    std::string ClientError;
    Connection Conn = connectTo(Addr, ClientError);
    ASSERT_TRUE(Conn.valid()) << ClientError;
    ASSERT_TRUE(Conn.setDeadlines(5000, 5000));
    EXPECT_EQ(Conn.sendFrame(wire::FrameType::Assign, Payload),
              IoStatus::Ok);
    // Echo leg: prove the same connection carries frames both ways.
    wire::Frame Echoed;
    EXPECT_EQ(Conn.recvFrame(Echoed, ClientError), IoStatus::Ok)
        << ClientError;
    EXPECT_EQ(Echoed.Type, wire::FrameType::Shutdown);
  });

  Connection Peer;
  ASSERT_EQ(Server.accept(Peer, 5000), Listener::AcceptStatus::Ok);
  ASSERT_TRUE(Peer.setDeadlines(5000, 5000));
  wire::Frame Frame;
  ASSERT_EQ(Peer.recvFrame(Frame, Error), IoStatus::Ok) << Error;
  EXPECT_EQ(Frame.Type, wire::FrameType::Assign);
  EXPECT_EQ(Frame.Payload, Payload);
  EXPECT_EQ(Peer.sendFrame(wire::FrameType::Shutdown, {}), IoStatus::Ok);
}

TEST(Transport, LoopbackTcpFrameRoundTrip) { roundTripOver("127.0.0.1:0"); }

TEST(Transport, UnixSocketFrameRoundTrip) {
  roundTripOver("unix:/tmp/hds-transport-test-" + std::to_string(getpid()) +
                ".sock");
}

TEST(Transport, AcceptHonorsItsDeadline) {
  Listener Server;
  std::string Error;
  ASSERT_TRUE(Server.listen("127.0.0.1:0", Error)) << Error;
  Connection Conn;
  EXPECT_EQ(Server.accept(Conn, 50), Listener::AcceptStatus::TimedOut);
  EXPECT_FALSE(Conn.valid());
}

TEST(Transport, EofAtAFrameBoundaryIsClosed) {
  Listener Server;
  std::string Error;
  ASSERT_TRUE(Server.listen("127.0.0.1:0", Error)) << Error;

  std::jthread Client([Addr = Server.boundAddress()] {
    std::string ClientError;
    Connection Conn = connectTo(Addr, ClientError);
    ASSERT_TRUE(Conn.valid()) << ClientError;
    EXPECT_EQ(Conn.sendFrame(wire::FrameType::Hello, {}), IoStatus::Ok);
    // Destructor closes the socket: a clean EOF between frames.
  });

  Connection Peer;
  ASSERT_EQ(Server.accept(Peer, 5000), Listener::AcceptStatus::Ok);
  ASSERT_TRUE(Peer.setDeadlines(5000, 5000));
  wire::Frame Frame;
  ASSERT_EQ(Peer.recvFrame(Frame, Error), IoStatus::Ok) << Error;
  EXPECT_EQ(Frame.Type, wire::FrameType::Hello);
  EXPECT_EQ(Peer.recvFrame(Frame, Error), IoStatus::Closed);
}

TEST(Transport, EofMidFrameIsMalformedNotAHang) {
  Listener Server;
  std::string Error;
  ASSERT_TRUE(Server.listen("127.0.0.1:0", Error)) << Error;

  // Raw client: sends half a frame and vanishes, which a Connection's
  // whole-frame API cannot be coaxed into doing.
  Address Addr;
  ASSERT_TRUE(parseAddress(Server.boundAddress(), Addr, Error)) << Error;
  std::jthread Client([&Addr] {
    const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_in Sin{};
    Sin.sin_family = AF_INET;
    Sin.sin_port = htons(Addr.Port);
    ASSERT_EQ(inet_pton(AF_INET, Addr.Host.c_str(), &Sin.sin_addr), 1);
    ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Sin),
                        sizeof(Sin)),
              0);
    const std::vector<uint8_t> Bytes = wire::encodeFrame(
        wire::FrameType::Assign, wire::encodeAssign(2, fancySpec()));
    const std::size_t Half = Bytes.size() / 2;
    ASSERT_EQ(::send(Fd, Bytes.data(), Half, 0),
              static_cast<ssize_t>(Half));
    ::close(Fd);
  });

  Connection Peer;
  ASSERT_EQ(Server.accept(Peer, 5000), Listener::AcceptStatus::Ok);
  ASSERT_TRUE(Peer.setDeadlines(5000, 5000));
  wire::Frame Frame;
  EXPECT_EQ(Peer.recvFrame(Frame, Error), IoStatus::Malformed);
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Coordinator + Worker end-to-end
//===----------------------------------------------------------------------===//

CoordinatorOptions quickCoordinator() {
  CoordinatorOptions Opts;
  Opts.ListenAddr = "127.0.0.1:0";
  Opts.JobTimeoutMs = 30000;
  Opts.IdleTimeoutMs = 10000;
  return Opts;
}

/// Serves \p Specs with in-thread workers (one per entry in \p Workers)
/// and returns the aggregated JSON.  Every *healthy* worker (no fault
/// injection) must see the coordinator's Shutdown farewell and exit
/// cleanly — a worker that merely observes the connection drop at the
/// end of the matrix is a wind-down bug, not a success.
std::string serveWithWorkers(const std::vector<ExperimentSpec> &Specs,
                             const std::vector<WorkerOptions> &Workers,
                             const CoordinatorOptions &Opts) {
  Coordinator Coord(Opts);
  EXPECT_TRUE(Coord.listen()) << Coord.error();

  std::vector<WorkerExit> Exits(Workers.size(), WorkerExit::ProtocolError);
  std::vector<std::string> Errors(Workers.size());
  std::vector<std::jthread> Threads;
  for (std::size_t I = 0; I < Workers.size(); ++I)
    Threads.emplace_back([Addr = Coord.boundAddress(), &Workers, &Exits,
                          &Errors, I] {
      Exits[I] = runWorker(Addr, Workers[I], &Errors[I]);
    });

  ResultSink Sink(Specs.size());
  Coord.serve(Specs, Sink);
  Threads.clear(); // join workers (they saw Shutdown or dropped)
  for (std::size_t I = 0; I < Workers.size(); ++I) {
    if (Workers[I].DropAfterJobs == 0) {
      EXPECT_EQ(Exits[I], WorkerExit::CleanShutdown)
          << "worker " << I << ": " << Errors[I];
    }
  }
  return resultsToJson(Sink.take());
}

TEST(Distributed, TwoWorkersMatchLocalJsonByteForByte) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  const std::string Local = localJson(Specs, 4);
  const std::string Remote =
      serveWithWorkers(Specs, {WorkerOptions(), WorkerOptions()},
                       quickCoordinator());
  EXPECT_EQ(Local, Remote);
}

TEST(Distributed, UnixSocketTransportIsAlsoByteIdentical) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  CoordinatorOptions Opts = quickCoordinator();
  Opts.ListenAddr =
      "unix:/tmp/hds-dist-test-" + std::to_string(getpid()) + ".sock";
  const std::string Remote =
      serveWithWorkers(Specs, {WorkerOptions(), WorkerOptions()}, Opts);
  EXPECT_EQ(localJson(Specs, 2), Remote);
}

TEST(Distributed, WorkerKilledMidJobStillYieldsIdenticalBytes) {
  const std::vector<ExperimentSpec> Specs = smallMatrix();
  // One worker drops its connection after running a job *without sending
  // the result* — exactly a mid-job kill.  The healthy worker picks the
  // orphaned cell back up; the bytes must not change.
  WorkerOptions Faulty;
  Faulty.DropAfterJobs = 1;
  const std::string Remote = serveWithWorkers(
      Specs, {Faulty, WorkerOptions()}, quickCoordinator());
  EXPECT_EQ(localJson(Specs, 4), Remote);
}

TEST(Distributed, RetryBudgetExhaustionResolvesAsErrorNotAHang) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 100;
  Specs.push_back(Spec);

  CoordinatorOptions Opts = quickCoordinator();
  Opts.RetryBudget = 0;
  Opts.IdleTimeoutMs = 5000;
  WorkerOptions Faulty;
  Faulty.DropAfterJobs = 1; // the only worker never returns its result

  Coordinator Coord(Opts);
  ASSERT_TRUE(Coord.listen()) << Coord.error();
  std::jthread Worker([Addr = Coord.boundAddress(), Faulty] {
    std::string Error;
    (void)runWorker(Addr, Faulty, &Error);
  });

  ResultSink Sink(Specs.size());
  Coord.serve(Specs, Sink);
  const std::vector<RunResult> Results = Sink.take();
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].State, RunResult::Status::Error);
  EXPECT_NE(Results[0].Error.find("dispatch"), std::string::npos)
      << Results[0].Error;
}

TEST(Distributed, IdleDeadlineFailsTheMatrixWhenNoWorkerEverConnects) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 100;
  Specs.push_back(Spec);

  CoordinatorOptions Opts = quickCoordinator();
  Opts.IdleTimeoutMs = 200; // fail fast; nobody is coming

  Coordinator Coord(Opts);
  ASSERT_TRUE(Coord.listen()) << Coord.error();
  ResultSink Sink(Specs.size());
  Coord.serve(Specs, Sink);
  const std::vector<RunResult> Results = Sink.take();
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].State, RunResult::Status::Error);
  EXPECT_NE(Results[0].Error.find("idle"), std::string::npos)
      << Results[0].Error;
}

TEST(Distributed, InvalidListenAddressResolvesEverySlotAsError) {
  SocketExecutor::Options Opts;
  Opts.Coordinator.ListenAddr = "not-an-address";
  SocketExecutor Exec(Opts);
  EXPECT_FALSE(Exec.valid());
  EXPECT_FALSE(Exec.error().empty());

  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 100;
  Specs.push_back(Spec);
  const std::vector<RunResult> Results = Exec.run(Specs);
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].State, RunResult::Status::Error);
  EXPECT_NE(Results[0].Error.find("listener"), std::string::npos)
      << Results[0].Error;
}

TEST(Distributed, WorkerAgainstNobodyFailsToConnectCleanly) {
  std::string Error;
  // Port 1 on loopback: reserved, nothing listens there.
  const WorkerExit Exit = runWorker("127.0.0.1:1", WorkerOptions(), &Error);
  EXPECT_EQ(Exit, WorkerExit::ConnectFailed);
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Results diffing (the --diff surface)
//===----------------------------------------------------------------------===//

TEST(ResultsDiff, IdenticalDocumentsCompareClean) {
  const std::string Json = localJson(smallMatrix(), 2);
  DiffReport Report;
  std::string Error;
  ASSERT_TRUE(diffResults(Json, Json, DiffOptions(), Report, Error))
      << Error;
  EXPECT_FALSE(Report.regressed());
  EXPECT_EQ(Report.CellsCompared, smallMatrix().size());
}

TEST(ResultsDiff, CycleGrowthIsARegressionAndThresholdSilencesIt) {
  std::vector<ExperimentSpec> Specs;
  ExperimentSpec Spec;
  Spec.Workload = "vpr";
  Spec.Iterations = 200;
  Specs.push_back(Spec);
  LocalExecutor Local;
  std::vector<RunResult> Results = Local.run(Specs);
  const std::string Before = resultsToJson(Results);
  Results[0].Cycles += Results[0].Cycles / 100 + 1; // ~1% slower
  const std::string After = resultsToJson(Results);

  DiffReport Exact;
  std::string Error;
  ASSERT_TRUE(diffResults(Before, After, DiffOptions(), Exact, Error))
      << Error;
  EXPECT_TRUE(Exact.regressed());
  ASSERT_EQ(Exact.Regressions.size(), 1u);
  EXPECT_NE(Exact.Regressions[0].Detail.find("cycles"), std::string::npos);

  DiffOptions Loose;
  Loose.ThresholdPct = 50.0;
  DiffReport Tolerant;
  ASSERT_TRUE(diffResults(Before, After, Loose, Tolerant, Error)) << Error;
  EXPECT_TRUE(Tolerant.Regressions.empty());
}

TEST(ResultsDiff, StatusFlipAndMissingCellsAreReported) {
  std::vector<ExperimentSpec> Specs = smallMatrix();
  LocalExecutor Local;
  std::vector<RunResult> Results = Local.run(Specs);
  const std::string Before = resultsToJson(Results);

  Results[0].State = RunResult::Status::Error;
  Results[0].Error = "synthetic failure";
  Results.pop_back();
  const std::string After = resultsToJson(Results);

  DiffReport Report;
  std::string Error;
  ASSERT_TRUE(diffResults(Before, After, DiffOptions(), Report, Error))
      << Error;
  EXPECT_TRUE(Report.regressed());
  EXPECT_EQ(Report.StatusChanges.size(), 1u);
  EXPECT_EQ(Report.OnlyInA.size(), 1u);
  EXPECT_TRUE(Report.OnlyInB.empty());
}

TEST(ResultsDiff, RejectsForeignDocuments) {
  DiffReport Report;
  std::string Error;
  EXPECT_FALSE(diffResults("{]", "{}", DiffOptions(), Report, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(diffResults("{\"schema\": \"something-else\"}", "{}",
                           DiffOptions(), Report, Error));
}

} // namespace
