//===- tests/profiling_test.cpp - Bursty tracing framework tests -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "profiling/BurstyTracer.h"
#include "profiling/TemporalProfiler.h"

#include <gtest/gtest.h>

using namespace hds;
using namespace hds::profiling;

namespace {

BurstyTracingConfig tinyConfig() {
  BurstyTracingConfig C;
  C.NCheck0 = 9;
  C.NInstr0 = 3;
  C.NAwake = 2;
  C.NHibernate = 4;
  C.HibernationEnabled = true;
  return C;
}

TEST(BurstyTracerTest, StartsInCheckingCode) {
  BurstyTracer T(tinyConfig());
  EXPECT_FALSE(T.inInstrumentedCode());
  EXPECT_EQ(T.phase(), TracerPhase::Awake);
}

TEST(BurstyTracerTest, BurstBeginsAfterNCheckChecks) {
  BurstyTracer T(tinyConfig());
  // nCheck = 9: after 9 checks the burst starts.
  for (int I = 0; I < 8; ++I) {
    T.check();
    EXPECT_FALSE(T.inInstrumentedCode()) << "check " << I;
  }
  T.check();
  EXPECT_TRUE(T.inInstrumentedCode());
}

TEST(BurstyTracerTest, BurstLastsNInstrChecks) {
  BurstyTracer T(tinyConfig());
  for (int I = 0; I < 9; ++I)
    T.check();
  ASSERT_TRUE(T.inInstrumentedCode());
  T.check();
  EXPECT_TRUE(T.inInstrumentedCode());
  T.check();
  EXPECT_TRUE(T.inInstrumentedCode());
  T.check(); // third instrumented check ends the burst
  EXPECT_FALSE(T.inInstrumentedCode());
  EXPECT_EQ(T.completedBurstPeriods(), 1u);
}

TEST(BurstyTracerTest, BurstPeriodIsNCheckPlusNInstrChecks) {
  BurstyTracer T(tinyConfig());
  uint64_t Checks = 0;
  while (T.completedBurstPeriods() == 0) {
    T.check();
    ++Checks;
  }
  EXPECT_EQ(Checks, tinyConfig().burstPeriodChecks());
}

TEST(BurstyTracerTest, AwakeEndsAfterNAwakeBurstPeriods) {
  BurstyTracer T(tinyConfig());
  // nAwake = 2 burst-periods of 12 checks each.
  CheckEvent Event = CheckEvent::None;
  uint64_t Checks = 0;
  while (Event == CheckEvent::None) {
    Event = T.check();
    ++Checks;
  }
  EXPECT_EQ(Event, CheckEvent::AwakeEnded);
  EXPECT_EQ(Checks, 2 * 12u);
  EXPECT_EQ(T.phase(), TracerPhase::Hibernating);
}

TEST(BurstyTracerTest, HibernationBurstPeriodsMatchAwakeLength) {
  // The §2.2 design: burst-periods correspond to the same number of
  // executed checks in either phase (nCheck = nCheck0+nInstr0-1,
  // nInstr = 1).
  BurstyTracer T(tinyConfig());
  while (T.phase() == TracerPhase::Awake)
    T.check();
  uint64_t Checks = 0;
  const uint64_t StartPeriods = T.completedBurstPeriods();
  while (T.completedBurstPeriods() == StartPeriods) {
    T.check();
    ++Checks;
  }
  EXPECT_EQ(Checks, tinyConfig().burstPeriodChecks());
}

TEST(BurstyTracerTest, HibernationTracesOneCheckPerPeriod) {
  BurstyTracer T(tinyConfig());
  while (T.phase() == TracerPhase::Awake)
    T.check();
  // Over one hibernating burst-period exactly one check runs in
  // instrumented code.
  const uint64_t Before = T.instrumentedChecks();
  const uint64_t StartPeriods = T.completedBurstPeriods();
  while (T.completedBurstPeriods() == StartPeriods)
    T.check();
  EXPECT_EQ(T.instrumentedChecks() - Before, 1u);
}

TEST(BurstyTracerTest, FullCycleReturnsToAwake) {
  BurstyTracer T(tinyConfig());
  CheckEvent Event = CheckEvent::None;
  while (Event != CheckEvent::AwakeEnded)
    Event = T.check();
  while (Event != CheckEvent::HibernationEnded)
    Event = T.check();
  EXPECT_EQ(T.phase(), TracerPhase::Awake);
  // nAwake + nHibernate burst-periods completed.
  EXPECT_EQ(T.completedBurstPeriods(), 2u + 4u);
}

TEST(BurstyTracerTest, DisabledHibernationNeverChangesPhase) {
  BurstyTracingConfig C = tinyConfig();
  C.HibernationEnabled = false;
  BurstyTracer T(C);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(T.check(), CheckEvent::None);
  EXPECT_EQ(T.phase(), TracerPhase::Awake);
  EXPECT_GT(T.completedBurstPeriods(), 10u);
}

TEST(BurstyTracerTest, ResetRestartsCycle) {
  BurstyTracer T(tinyConfig());
  for (int I = 0; I < 50; ++I)
    T.check();
  T.reset();
  EXPECT_EQ(T.checksExecuted(), 0u);
  EXPECT_EQ(T.completedBurstPeriods(), 0u);
  EXPECT_EQ(T.phase(), TracerPhase::Awake);
  EXPECT_FALSE(T.inInstrumentedCode());
}

TEST(BurstyTracerTest, DeterministicAcrossInstances) {
  BurstyTracer A(tinyConfig()), B(tinyConfig());
  for (int I = 0; I < 500; ++I) {
    EXPECT_EQ(A.check(), B.check());
    EXPECT_EQ(A.inInstrumentedCode(), B.inInstrumentedCode());
  }
}

//===----------------------------------------------------------------------===//
// Sampling-rate formula (§2.2)
//===----------------------------------------------------------------------===//

struct RateCase {
  uint64_t NCheck0, NInstr0, NAwake, NHibernate;
};

class SamplingRateTest : public ::testing::TestWithParam<RateCase> {};

TEST_P(SamplingRateTest, MeasuredRateMatchesFormula) {
  const RateCase &Case = GetParam();
  BurstyTracingConfig C;
  C.NCheck0 = Case.NCheck0;
  C.NInstr0 = Case.NInstr0;
  C.NAwake = Case.NAwake;
  C.NHibernate = Case.NHibernate;
  BurstyTracer T(C);

  // Run an integral number of full awake+hibernate cycles.
  const uint64_t CycleChecks =
      (Case.NAwake + Case.NHibernate) * C.burstPeriodChecks();
  uint64_t AwakeInstrumented = 0;
  for (uint64_t I = 0; I < 3 * CycleChecks; ++I) {
    T.check();
    // Count instrumented checks during awake phases only — that is what
    // feeds Sequitur.
    if (T.inInstrumentedCode() && T.phase() == TracerPhase::Awake)
      ++AwakeInstrumented;
  }

  const double Measured = static_cast<double>(AwakeInstrumented) /
                          (3.0 * static_cast<double>(CycleChecks));
  EXPECT_NEAR(Measured, C.overallSamplingRate(),
              C.overallSamplingRate() * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    CounterSettings, SamplingRateTest,
    ::testing::Values(RateCase{9, 3, 2, 4}, RateCase{99, 1, 5, 5},
                      RateCase{199, 10, 4, 12}, RateCase{97, 3, 10, 30},
                      RateCase{995, 5, 2, 8},
                      // The paper's §4.1 settings, scaled phases.
                      RateCase{11940, 60, 5, 15}));

TEST(SamplingRateTest, PaperFormulaValues) {
  // Section 2.1: nCheck0 = 9900, nInstr0 = 100 is a 1% sampling rate.
  BurstyTracingConfig C;
  C.NCheck0 = 9900;
  C.NInstr0 = 100;
  C.HibernationEnabled = false;
  EXPECT_NEAR(C.awakeSamplingRate(), 0.01, 1e-12);

  // Section 4.1: nCheck0 = 11940, nInstr0 = 60 is 0.5% while awake.
  C.NCheck0 = 11940;
  C.NInstr0 = 60;
  EXPECT_NEAR(C.awakeSamplingRate(), 0.005, 1e-12);

  // With nAwake = 50 and nHibernate = 2450 the overall rate is
  // (50*60)/((50+2450)*12000) = 0.01%.
  C.NAwake = 50;
  C.NHibernate = 2450;
  C.HibernationEnabled = true;
  EXPECT_NEAR(C.overallSamplingRate(), 0.0001, 1e-12);
}

//===----------------------------------------------------------------------===//
// TemporalProfiler
//===----------------------------------------------------------------------===//

TEST(TemporalProfilerTest, RecordsIntoGrammar) {
  TemporalProfiler P;
  P.recordRef({1, 100});
  P.recordRef({1, 200});
  P.recordRef({1, 100});
  P.recordRef({1, 200});
  EXPECT_EQ(P.tracedRefCount(), 4u);
  EXPECT_EQ(P.grammar().inputLength(), 4u);
  EXPECT_EQ(P.refTable().size(), 2u);
  // abab compresses to two rules.
  EXPECT_EQ(P.grammar().ruleCount(), 2u);
}

TEST(TemporalProfilerTest, PcSampleCounts) {
  TemporalProfiler P;
  P.recordRef({1, 100});
  P.recordRef({1, 200});
  P.recordRef({2, 100});
  EXPECT_EQ(P.pcSampleCount(1), 2u);
  EXPECT_EQ(P.pcSampleCount(2), 1u);
  EXPECT_EQ(P.pcSampleCount(3), 0u);
}

TEST(TemporalProfilerTest, NewCycleKeepsInterning) {
  TemporalProfiler P;
  const auto Id = P.recordRef({1, 100});
  P.startNewCycle();
  EXPECT_EQ(P.tracedRefCount(), 0u);
  EXPECT_EQ(P.grammar().inputLength(), 0u);
  EXPECT_EQ(P.pcSampleCount(1), 0u);
  // Reference ids stay stable across cycles.
  EXPECT_EQ(P.recordRef({1, 100}), Id);
}

} // namespace

//===----------------------------------------------------------------------===//
// Adaptive hibernation support (tracer side)
//===----------------------------------------------------------------------===//

namespace {

TEST(BurstyTracerTest, HibernationLengthCanBeRetuned) {
  BurstyTracingConfig C = tinyConfig(); // nAwake 2, nHibernate 4
  BurstyTracer T(C);
  // First full cycle at the default hibernation length.
  CheckEvent Event = CheckEvent::None;
  while (Event != CheckEvent::AwakeEnded)
    Event = T.check();
  T.setHibernationLength(8);
  uint64_t Checks = 0;
  while (Event != CheckEvent::HibernationEnded) {
    Event = T.check();
    ++Checks;
  }
  // 8 burst-periods of 12 checks each.
  EXPECT_EQ(Checks, 8 * 12u);
}

TEST(BurstyTracerTest, ShorteningHibernationTakesEffect) {
  BurstyTracingConfig C = tinyConfig();
  C.NHibernate = 100;
  BurstyTracer T(C);
  CheckEvent Event = CheckEvent::None;
  while (Event != CheckEvent::AwakeEnded)
    Event = T.check();
  T.setHibernationLength(2);
  uint64_t Checks = 0;
  while (Event != CheckEvent::HibernationEnded) {
    Event = T.check();
    ++Checks;
  }
  EXPECT_EQ(Checks, 2 * 12u);
}

} // namespace
