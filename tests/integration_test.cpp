//===- tests/integration_test.cpp - Whole-system integration tests ---------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Drives the full profile -> analyze -> optimize -> hibernate ->
// deoptimize cycle of Figure 1 on the real evaluation workloads (at
// reduced iteration counts) and checks the properties the paper claims
// of the whole system.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace hds;
using namespace hds::core;
using namespace hds::workloads;

namespace {

/// Scaled-down phases: several optimization cycles within a few hundred
/// thousand checks.
OptimizerConfig fastCycles(RunMode Mode) {
  OptimizerConfig Config;
  Config.Mode = Mode;
  Config.Tracing.NCheck0 = 1'481; // prime-period burst (1511 total)
  Config.Tracing.NInstr0 = 30;
  Config.Tracing.NAwake = 30;
  Config.Tracing.NHibernate = 150;
  // Burst-periods are 4x shorter than the production default, so the
  // profiler samples 4x more densely; scale the per-event software costs
  // down accordingly to keep the overhead-to-benefit ratio representative.
  Config.Costs.TraceRefCycles = 40;
  Config.Costs.AnalysisCyclesPerTracedRef = 5;
  Config.Costs.AnalysisCyclesPerGrammarSymbol = 15;
  Config.Costs.DfsmCyclesPerTransition = 50;
  return Config;
}

struct RunOutcome {
  uint64_t Cycles = 0;
  RunStats Stats;
  uint64_t UsefulPrefetches = 0;
};

RunOutcome runBench(const std::string &Name, RunMode Mode,
                    uint64_t Iterations) {
  Runtime Rt(fastCycles(Mode));
  auto W = createWorkload(Name);
  W->setup(Rt);
  W->run(Rt, Iterations);
  RunOutcome Out;
  Out.Cycles = Rt.cycles();
  Out.Stats = Rt.stats();
  Out.UsefulPrefetches = Rt.memory().l1().stats().UsefulPrefetches +
                         Rt.memory().l2().stats().UsefulPrefetches;
  return Out;
}

class EndToEndTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EndToEndTest, FullPipelineDetectsAndPrefetches) {
  const RunOutcome Out = runBench(GetParam(), RunMode::DynamicPrefetch, 6000);
  // Multiple optimization cycles completed (Figure 1's repeat for
  // long-running programs).
  EXPECT_GE(Out.Stats.Cycles.size(), 3u);

  uint64_t Installed = 0;
  for (const CycleStats &Cycle : Out.Stats.Cycles) {
    Installed += Cycle.StreamsInstalled;
    if (Cycle.StreamsInstalled > 0) {
      // DFSM sizes stay near headLen*n+1 (Section 3.1).
      EXPECT_LE(Cycle.DfsmStates, 3 * Cycle.StreamsInstalled + 2);
      EXPECT_GT(Cycle.ProceduresModified, 0u);
      EXPECT_GT(Cycle.CheckClausesInjected, 0u);
    }
  }
  EXPECT_GT(Installed, 0u);
  EXPECT_GT(Out.Stats.CompleteMatches, 0u);
  EXPECT_GT(Out.Stats.PrefetchesRequested, 0u);
  // Prefetching is accurate: the majority of issued prefetches get used
  // (hot data streams are predictable — the paper's core premise).
  EXPECT_GT(Out.UsefulPrefetches, Out.Stats.PrefetchesRequested / 2);
}

TEST_P(EndToEndTest, DeterministicExecution) {
  const RunOutcome A = runBench(GetParam(), RunMode::DynamicPrefetch, 1200);
  const RunOutcome B = runBench(GetParam(), RunMode::DynamicPrefetch, 1200);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Stats.CompleteMatches, B.Stats.CompleteMatches);
  EXPECT_EQ(A.Stats.TracedRefs, B.Stats.TracedRefs);
  ASSERT_EQ(A.Stats.Cycles.size(), B.Stats.Cycles.size());
}

TEST_P(EndToEndTest, DynamicPrefetchingImprovesExecutionTime) {
  const uint64_t Iterations = 6000;
  const RunOutcome Original =
      runBench(GetParam(), RunMode::Original, Iterations);
  const RunOutcome DynPref =
      runBench(GetParam(), RunMode::DynamicPrefetch, Iterations);
  EXPECT_LT(DynPref.Cycles, Original.Cycles) << GetParam();
}

TEST_P(EndToEndTest, OverheadLadderIsOrdered) {
  // Original <= Base <= Prof <= Hds in machinery (and, for these
  // memory-bound programs, in cycles).
  const uint64_t Iterations = 1500;
  const RunOutcome Original =
      runBench(GetParam(), RunMode::Original, Iterations);
  const RunOutcome Base =
      runBench(GetParam(), RunMode::ChecksOnly, Iterations);
  const RunOutcome Prof = runBench(GetParam(), RunMode::Profile, Iterations);
  const RunOutcome Hds =
      runBench(GetParam(), RunMode::ProfileAnalyze, Iterations);
  EXPECT_LT(Original.Cycles, Base.Cycles);
  EXPECT_LT(Base.Cycles, Prof.Cycles);
  EXPECT_LE(Prof.Cycles, Hds.Cycles);
  // The whole profiling+analysis overhead stays moderate (paper: 3-7%).
  EXPECT_LT(static_cast<double>(Hds.Cycles),
            1.15 * static_cast<double>(Original.Cycles));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EndToEndTest,
                         ::testing::ValuesIn(allWorkloadNames()));

TEST(EndToEndSpecialTest, SeqPrefHelpsParserButHurtsScatteredBenchmarks) {
  // Section 4.3: parser's sequentially allocated hot data streams make
  // Seq-pref a win there; benchmarks with scattered streams degrade.
  const RunOutcome ParserOrig = runBench("parser", RunMode::Original, 6000);
  const RunOutcome ParserSeq =
      runBench("parser", RunMode::SequentialPrefetch, 6000);
  EXPECT_LT(ParserSeq.Cycles, ParserOrig.Cycles);

  const RunOutcome VprOrig = runBench("vpr", RunMode::Original, 6000);
  const RunOutcome VprSeq = runBench("vpr", RunMode::SequentialPrefetch, 6000);
  EXPECT_GT(VprSeq.Cycles, VprOrig.Cycles);
}

TEST(EndToEndSpecialTest, DynBeatsSeqEverywhere) {
  for (const std::string &Name : allWorkloadNames()) {
    const RunOutcome Seq =
        runBench(Name, RunMode::SequentialPrefetch, 4000);
    const RunOutcome Dyn = runBench(Name, RunMode::DynamicPrefetch, 4000);
    EXPECT_LT(Dyn.Cycles, Seq.Cycles) << Name;
  }
}

TEST(EndToEndSpecialTest, HibernationDoesNotTrace) {
  // §2.4: references traced during hibernation are ignored.  The traced
  // count per cycle must therefore be close to nAwake * nInstr0 bursts'
  // worth, not the hibernation phase's volume.
  const RunOutcome Out = runBench("mcf", RunMode::DynamicPrefetch, 6000);
  const OptimizerConfig Config = fastCycles(RunMode::DynamicPrefetch);
  for (const CycleStats &Cycle : Out.Stats.Cycles) {
    // Upper bound: one awake phase traces at most nAwake bursts of
    // nInstr0 checks; with tens of refs between checks this stays well
    // under 40 refs/check.
    EXPECT_LT(Cycle.TracedRefs,
              Config.Tracing.NAwake * Config.Tracing.NInstr0 * 40);
    EXPECT_GT(Cycle.TracedRefs, 0u);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Cross-validation: live engine vs executable specification
//===----------------------------------------------------------------------===//

namespace {

/// Replays the exact reference stream of a real benchmark run through an
/// independent interpretation of the installed check code and verifies
/// the live engine produced the same number of complete matches.  This
/// closes the loop between the DFSM property tests (synthetic sequences)
/// and the end-to-end runs (real reference streams).
TEST(CrossValidationTest, EngineMatchesIndependentReplay) {
  OptimizerConfig Config = fastCycles(RunMode::MatchNoPrefetch);
  // Pin after the first optimization so one fixed check-code installation
  // covers the whole remainder of the run (replay needs a stable code
  // artifact; the unpinned system swaps artifacts every cycle).
  Config.PinFirstOptimization = true;

  Runtime Rt(Config);
  auto W = workloads::createWorkload("vpr");
  W->setup(Rt);

  // Record every access once the engine is installed, via the single
  // observer mechanism.
  struct Observed {
    vulcan::SiteId Site;
    memsim::Addr Addr;
  };
  struct InstallArmedRecorder : RuntimeObserver {
    Runtime &Rt;
    std::vector<Observed> Replay;
    uint64_t MatchesAtInstall = 0;
    bool Armed = false;

    explicit InstallArmedRecorder(Runtime &R) : Rt(R) {}
    void onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                  bool /*IsStore*/) override {
      if (!Armed && Rt.engine().installed()) {
        Armed = true;
        MatchesAtInstall = Rt.stats().CompleteMatches;
      }
      if (Armed)
        Replay.push_back({Site, Addr});
    }
  } Recorder(Rt);
  Rt.setObserver(&Recorder);
  W->run(Rt, 6000);
  Rt.setObserver(nullptr);
  std::vector<Observed> &Replay = Recorder.Replay;
  const uint64_t MatchesAtInstall = Recorder.MatchesAtInstall;
  ASSERT_TRUE(Rt.engine().installed());

  // Independent replay: interpret the installed per-pc tables directly.
  const dfsm::CheckCode &Code = Rt.engine().installedCode();
  dfsm::StateId State = 0;
  uint64_t ReplayMatches = 0;
  for (const Observed &Ref : Replay) {
    const dfsm::SiteCheckCode *Site = nullptr;
    for (const dfsm::SiteCheckCode &Candidate : Code.Sites)
      if (Candidate.Pc == Ref.Site)
        Site = &Candidate;
    if (!Site)
      continue; // uninstrumented pc: invisible to the injected code
    const dfsm::AddrGroupCode *Group = nullptr;
    for (const dfsm::AddrGroupCode &Candidate : Site->Groups)
      if (Candidate.Addr == Ref.Addr)
        Group = &Candidate;
    if (!Group) {
      State = 0;
      continue;
    }
    const dfsm::CheckClause *Match = nullptr;
    for (const dfsm::CheckClause &Clause : Group->Specific)
      if (Clause.FromState == State) {
        Match = &Clause;
        break;
      }
    if (Match) {
      State = Match->ToState;
      ReplayMatches += Match->CompletedStreams.size();
    } else {
      State = Group->DefaultToState;
      ReplayMatches += Group->DefaultCompletions.size();
    }
  }

  const uint64_t EngineMatches =
      Rt.stats().CompleteMatches - MatchesAtInstall;
  EXPECT_GT(EngineMatches, 0u);
  EXPECT_EQ(EngineMatches, ReplayMatches);
}

} // namespace
