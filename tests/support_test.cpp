//===- tests/support_test.cpp - Support utilities tests --------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>

using hds::Histogram;
using hds::Rng;
using hds::RunningStat;
using hds::Table;

namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng A(7);
  const uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RngTest, NextBelowInRange) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng R(4);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(5);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    const uint64_t V = R.nextInRange(10, 13);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 13u);
    Seen.insert(V);
  }
  // All four values show up over 2000 draws.
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(6);
  for (int I = 0; I < 1000; ++I) {
    const double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, NextBoolRoughlyMatchesProbability) {
  Rng R(8);
  int True = 0;
  for (int I = 0; I < 10000; ++I)
    True += R.nextBool(0.25);
  EXPECT_NEAR(True / 10000.0, 0.25, 0.03);
}

TEST(RunningStatTest, EmptyIsSafe) {
  RunningStat S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
}

TEST(RunningStatTest, AccumulatesCorrectly) {
  RunningStat S;
  S.addSample(2.0);
  S.addSample(4.0);
  S.addSample(9.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.sum(), 15.0);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(RunningStatTest, NegativeSamples) {
  RunningStat S;
  S.addSample(-3.0);
  S.addSample(1.0);
  EXPECT_DOUBLE_EQ(S.min(), -3.0);
  EXPECT_DOUBLE_EQ(S.max(), 1.0);
  EXPECT_DOUBLE_EQ(S.mean(), -1.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram H(4, 10); // buckets [0,10) [10,20) [20,30) [30,40) + overflow
  H.addSample(0);
  H.addSample(9);
  H.addSample(10);
  H.addSample(39);
  H.addSample(40);
  H.addSample(1000);
  EXPECT_EQ(H.total(), 6u);
  EXPECT_EQ(H.bucket(0), 2u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 0u);
  EXPECT_EQ(H.bucket(3), 1u);
  EXPECT_EQ(H.bucket(4), 2u); // overflow bucket
  EXPECT_EQ(H.bucketLowerBound(2), 20u);
}

TEST(TableTest, AlignsColumns) {
  Table T;
  T.row().cell("name").cell("value");
  T.row().cell("x").cell(uint64_t{12345});
  const std::string Out = T.toString();
  // Header, rule, one body row.
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
  EXPECT_NE(Out.find("12345"), std::string::npos);
  // Columns align: "value" and "12345" start at the same offset.
  const size_t HeaderPos = Out.find("value");
  const size_t BodyPos = Out.find("12345");
  const size_t HeaderLine = Out.rfind('\n', HeaderPos);
  const size_t BodyLine = Out.rfind('\n', BodyPos);
  EXPECT_EQ(HeaderPos - HeaderLine, BodyPos - BodyLine);
}

TEST(TableTest, MissingCellsPrintEmpty) {
  Table T;
  T.row().cell("a").cell("b").cell("c");
  T.row().cell("only");
  EXPECT_NO_THROW(T.toString());
}

TEST(TableTest, FormatString) {
  EXPECT_EQ(hds::formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(hds::formatString("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(hds::formatString("empty"), "empty");
}

} // namespace
