//===- tests/workloads_test.cpp - Benchmark workload tests -----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/ChainSet.h"
#include "workloads/NoiseRegion.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <set>

using namespace hds;
using namespace hds::core;
using namespace hds::workloads;

namespace {

OptimizerConfig originalMode() {
  OptimizerConfig C;
  C.Mode = RunMode::Original;
  return C;
}

TEST(WorkloadFactoryTest, AllNamesResolve) {
  const std::vector<std::string> Names = allWorkloadNames();
  ASSERT_EQ(Names.size(), 6u);
  for (const std::string &Name : Names) {
    auto W = createWorkload(Name);
    ASSERT_NE(W, nullptr) << Name;
    EXPECT_EQ(W->name(), Name);
    EXPECT_GT(W->defaultIterations(), 0u);
  }
}

TEST(WorkloadFactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(createWorkload("gcc"), nullptr);
  EXPECT_EQ(createWorkload(""), nullptr);
}

TEST(WorkloadFactoryTest, PaperFigureOrder) {
  EXPECT_EQ(allWorkloadNames(),
            (std::vector<std::string>{"vpr", "mcf", "twolf", "parser",
                                      "vortex", "boxsim"}));
}

class EveryWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryWorkloadTest, RunsAndTouchesMemory) {
  Runtime Rt(originalMode());
  auto W = createWorkload(GetParam());
  W->setup(Rt);
  W->run(Rt, 20);
  EXPECT_GT(Rt.stats().TotalAccesses, 1000u);
  EXPECT_GT(Rt.cycles(), Rt.stats().TotalAccesses); // at least 1 cyc/ref
}

TEST_P(EveryWorkloadTest, DeterministicAccessCounts) {
  uint64_t Counts[2];
  for (int Round = 0; Round < 2; ++Round) {
    Runtime Rt(originalMode());
    auto W = createWorkload(GetParam());
    W->setup(Rt);
    W->run(Rt, 15);
    Counts[Round] = Rt.cycles();
  }
  EXPECT_EQ(Counts[0], Counts[1]);
}

TEST_P(EveryWorkloadTest, DeclaresSeveralProcedures) {
  // Table 2 reports 6-12 procedures modified per cycle; the programs must
  // have enough procedures for that to be possible.
  Runtime Rt(originalMode());
  auto W = createWorkload(GetParam());
  W->setup(Rt);
  EXPECT_GE(Rt.image().procedureCount(), 6u);
  EXPECT_GE(Rt.image().siteCount(), 10u);
}

TEST_P(EveryWorkloadTest, IsMemoryPerformanceLimited) {
  // The paper's benchmarks are "memory-performance-limited": a
  // significant fraction of execution time must be stall cycles.
  Runtime Rt(originalMode());
  auto W = createWorkload(GetParam());
  W->setup(Rt);
  W->run(Rt, 50);
  const double StallFraction =
      static_cast<double>(Rt.memory().stats().StallCycles) /
      static_cast<double>(Rt.cycles());
  EXPECT_GT(StallFraction, 0.3) << GetParam();
}

TEST_P(EveryWorkloadTest, HotChainsMissWithoutPrefetching) {
  // After warmup, the chain re-walks must miss L1 (the stalls prefetching
  // hides); a workload whose hot data is L1-resident reproduces nothing.
  Runtime Rt(originalMode());
  auto W = createWorkload(GetParam());
  W->setup(Rt);
  W->run(Rt, 50);
  EXPECT_GT(Rt.memory().l1().stats().missRate(), 0.3) << GetParam();
  // ...but the hot working set stays L2 resident: L2 must service most
  // of those misses.
  const auto &L2 = Rt.memory().l2().stats();
  EXPECT_GT(static_cast<double>(L2.Hits) /
                static_cast<double>(L2.accesses()),
            0.5)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EveryWorkloadTest,
                         ::testing::ValuesIn(allWorkloadNames()));

//===----------------------------------------------------------------------===//
// ChainSet
//===----------------------------------------------------------------------===//

TEST(ChainSetTest, SetupDeclaresWalkersAndAllocates) {
  Runtime Rt(originalMode());
  ChainSet Chains;
  ChainSetConfig Config;
  Config.NumChains = 10;
  Config.NodesPerChain = 8;
  Config.WalkerProcs = 4;
  Chains.setup(Rt, Config, "test");
  EXPECT_EQ(Chains.chainCount(), 10u);
  EXPECT_EQ(Chains.nodesPerChain(), 8u);
  EXPECT_EQ(Rt.image().procedureCount(), 4u);
  EXPECT_EQ(Rt.image().siteCount(), 12u); // 3 sites per walker
}

TEST(ChainSetTest, ScatteredNodesLandOnDistinctBlocks) {
  Runtime Rt(originalMode());
  ChainSet Chains;
  ChainSetConfig Config;
  Config.NumChains = 8;
  Config.NodesPerChain = 12;
  Config.ScatterPadBytes = 96;
  Chains.setup(Rt, Config, "test");
  std::set<uint64_t> Blocks;
  for (uint32_t C = 0; C < 8; ++C)
    for (uint32_t N = 0; N < 12; ++N)
      Blocks.insert(Chains.nodeAddr(C, N) / 32);
  EXPECT_EQ(Blocks.size(), 8u * 12u);
}

TEST(ChainSetTest, ScatteredPitchIsNotUniform) {
  // A uniform pitch aliases a chain's nodes into one cache set; the
  // jittered allocator must produce varying deltas.
  Runtime Rt(originalMode());
  ChainSet Chains;
  ChainSetConfig Config;
  Config.NumChains = 4;
  Config.NodesPerChain = 16;
  Config.ScatterPadBytes = 96;
  Chains.setup(Rt, Config, "test");
  std::set<uint64_t> Deltas;
  for (uint32_t N = 1; N < 16; ++N)
    Deltas.insert(Chains.nodeAddr(0, N) - Chains.nodeAddr(0, N - 1));
  EXPECT_GT(Deltas.size(), 3u);
}

TEST(ChainSetTest, SequentialLayoutIsContiguous) {
  Runtime Rt(originalMode());
  ChainSet Chains;
  ChainSetConfig Config;
  Config.NumChains = 4;
  Config.NodesPerChain = 8;
  Config.NodeBytes = 32;
  Config.ScatterPadBytes = 0;
  Chains.setup(Rt, Config, "test");
  for (uint32_t C = 0; C < 4; ++C)
    for (uint32_t N = 1; N < 8; ++N)
      EXPECT_EQ(Chains.nodeAddr(C, N), Chains.nodeAddr(C, N - 1) + 32);
}

TEST(ChainSetTest, WalkIssuesExpectedRefs) {
  Runtime Rt(originalMode());
  ChainSet Chains;
  ChainSetConfig Config;
  Config.NumChains = 2;
  Config.NodesPerChain = 10;
  Chains.setup(Rt, Config, "test");
  Chains.walk(Rt, 0);
  EXPECT_EQ(Rt.stats().TotalAccesses, Chains.refsPerWalk());
  EXPECT_EQ(Rt.stats().TotalAccesses, 11u);
}

TEST(ChainSetTest, WalkIsDeterministicPerChain) {
  Runtime Rt(originalMode());
  ChainSet Chains;
  ChainSetConfig Config;
  Chains.setup(Rt, Config, "test");
  const uint64_t After1 = [&] {
    Chains.walk(Rt, 3);
    return Rt.cycles();
  }();
  // Re-walk immediately: everything cache-hot, cheaper than cold walk.
  Chains.walk(Rt, 3);
  EXPECT_LT(Rt.cycles() - After1, After1);
}

//===----------------------------------------------------------------------===//
// NoiseRegion
//===----------------------------------------------------------------------===//

TEST(NoiseRegionTest, StepIssuesRefsAndWraps) {
  Runtime Rt(originalMode());
  NoiseRegion Region;
  NoiseRegionConfig Config;
  Config.Bytes = 1024;
  Config.StrideBytes = 32;
  Region.setup(Rt, Config, "test");
  Region.step(Rt, 100); // more steps than the region holds: must wrap
  EXPECT_EQ(Rt.stats().TotalAccesses, 100u);
}

TEST(NoiseRegionTest, SmallRegionBecomesCacheResident) {
  Runtime Rt(originalMode());
  NoiseRegion Region;
  NoiseRegionConfig Config;
  Config.Bytes = 4 * 1024; // fits L1
  Config.StrideBytes = 32;
  Region.setup(Rt, Config, "test");
  Region.step(Rt, 128); // warmup round
  Rt.memory().clearStats();
  Region.step(Rt, 1280);
  EXPECT_GT(static_cast<double>(Rt.memory().l1().stats().Hits) /
                static_cast<double>(Rt.memory().l1().stats().accesses()),
            0.95);
}

TEST(NoiseRegionTest, HugeRegionAlwaysMisses) {
  Runtime Rt(originalMode());
  NoiseRegion Region;
  NoiseRegionConfig Config;
  Config.Bytes = 4 * 1024 * 1024;
  Config.StrideBytes = 32;
  Region.setup(Rt, Config, "test");
  Region.step(Rt, 2000);
  EXPECT_GT(Rt.memory().l1().stats().missRate(), 0.95);
}

TEST(NoiseRegionTest, ZeroRefsIsNoop) {
  Runtime Rt(originalMode());
  NoiseRegion Region;
  Region.setup(Rt, NoiseRegionConfig(), "test");
  Region.step(Rt, 0);
  EXPECT_EQ(Rt.stats().TotalAccesses, 0u);
}

} // namespace

//===----------------------------------------------------------------------===//
// TwoPhase workload and newer chain/noise features
//===----------------------------------------------------------------------===//

namespace {

TEST(TwoPhaseTest, ResolvableButNotInTheSuite) {
  auto W = createWorkload("twophase");
  ASSERT_NE(W, nullptr);
  EXPECT_STREQ(W->name(), "twophase");
  // Not part of the paper's figure order.
  for (const std::string &Name : allWorkloadNames())
    EXPECT_NE(Name, "twophase");
}

TEST(TwoPhaseTest, PhasesTouchDisjointChainSets) {
  // Run only the first quarter (phase A), then a fresh run of everything:
  // the second phase must touch addresses the first never did.
  Runtime RtA(originalMode());
  auto WA = createWorkload("twophase");
  WA->setup(RtA);
  WA->run(RtA, 100); // Iterations/4 = 25 sweeps of phase A... all phase A
  const uint64_t AccessesA = RtA.stats().TotalAccesses;
  EXPECT_GT(AccessesA, 0u);

  Runtime RtB(originalMode());
  auto WB = createWorkload("twophase");
  WB->setup(RtB);
  WB->run(RtB, 100);
  // Determinism across identical runs.
  EXPECT_EQ(RtB.stats().TotalAccesses, AccessesA);
}

TEST(ChainSetTest, TouchHeadIssuesOneLoad) {
  Runtime Rt(originalMode());
  ChainSet Chains;
  ChainSetConfig Config;
  Chains.setup(Rt, Config, "test");
  Chains.touchHead(Rt, 0);
  EXPECT_EQ(Rt.stats().TotalAccesses, 1u);
}

TEST(NoiseRegionTest, ShuffledOrderCoversWholeRegionPerWrap) {
  // One full wrap of a shuffled region touches every block exactly once.
  Runtime Rt(originalMode());
  NoiseRegion Region;
  NoiseRegionConfig Config;
  Config.Bytes = 4 * 1024; // 128 blocks
  Config.StrideBytes = 32;
  Config.ShuffleBlocks = true;
  Region.setup(Rt, Config, "shuffletest");
  Region.step(Rt, 127);
  // All but one block loaded; every access was a cold miss (distinct
  // blocks).
  EXPECT_EQ(Rt.memory().l1().stats().Misses, 127u);
  Region.step(Rt, 127);
  // Second wrap revisits the same blocks: mostly hits now.
  EXPECT_GT(Rt.memory().l1().stats().Hits, 100u);
}

TEST(NoiseRegionTest, ShuffledDeltasAreIrregular) {
  Runtime Rt(originalMode());
  NoiseRegion Region;
  NoiseRegionConfig Config;
  Config.Bytes = 8 * 1024;
  Config.StrideBytes = 32;
  Config.ShuffleBlocks = true;
  Region.setup(Rt, Config, "deltatest");
  // A hardware stride prefetcher trained on this sequence must almost
  // never confirm a stride: drive the region through a runtime with the
  // prefetcher enabled and check its confirmation rate.
  OptimizerConfig WithStride = originalMode();
  WithStride.Prefetchers.Enabled.set(prefetch::Prefetcher::Stride, true);
  Runtime Rt2(WithStride);
  NoiseRegion Region2;
  Region2.setup(Rt2, Config, "deltatest");
  Region2.step(Rt2, 2000);
  ASSERT_NE(Rt2.prefetcherStack(), nullptr);
  const auto *Stride = static_cast<const prefetch::StridePrefetcher *>(
      Rt2.prefetcherStack()->byKind(prefetch::Prefetcher::Stride));
  ASSERT_NE(Stride, nullptr);
  const double ConfirmRate = static_cast<double>(Stride->confirmed()) /
                             static_cast<double>(Stride->trains());
  EXPECT_LT(ConfirmRate, 0.1);
}

TEST(NoiseRegionTest, UnshuffledScanIsStridePredictable) {
  NoiseRegionConfig Config;
  Config.Bytes = 8 * 1024;
  Config.StrideBytes = 32;
  Config.ShuffleBlocks = false;
  OptimizerConfig WithStride = originalMode();
  WithStride.Prefetchers.Enabled.set(prefetch::Prefetcher::Stride, true);
  Runtime Rt(WithStride);
  NoiseRegion Region;
  Region.setup(Rt, Config, "seqtest");
  Region.step(Rt, 2000);
  ASSERT_NE(Rt.prefetcherStack(), nullptr);
  const auto *Stride = static_cast<const prefetch::StridePrefetcher *>(
      Rt.prefetcherStack()->byKind(prefetch::Prefetcher::Stride));
  ASSERT_NE(Stride, nullptr);
  const double ConfirmRate = static_cast<double>(Stride->confirmed()) /
                             static_cast<double>(Stride->trains());
  EXPECT_GT(ConfirmRate, 0.8);
}

} // namespace
