//===- tests/replay_test.cpp - Record/replay + oracle tests ---------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Covers the trace format (round-trip, versioning, corruption rejection),
// record/replay fidelity through the full Runtime, the differential
// oracles, and the seeded adversarial trace generator.
//
//===----------------------------------------------------------------------===//

#include "replay/Oracles.h"
#include "replay/TraceFormat.h"
#include "replay/TraceRecorder.h"
#include "replay/TraceReplayer.h"
#include "support/Rng.h"
#include "testing/TraceGen.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>

// Note: no `using namespace hds` here — hds::testing would collide with
// gtest's ::testing.
namespace rp = hds::replay;
namespace gen = hds::testing;

namespace {

//===----------------------------------------------------------------------===//
// Trace format
//===----------------------------------------------------------------------===//

/// A hand-built trace exercising every event kind and operand field.
rp::Trace sampleTrace() {
  rp::Trace T;
  T.Meta.Workload = "sample";
  T.Meta.Iterations = 7;
  T.Meta.Mode = hds::core::RunMode::DynamicPrefetch;
  T.Meta.HeadLength = 3;
  T.Meta.Prefetchers.set(hds::prefetch::Prefetcher::Stride, true);
  T.Meta.Pin = true;
  using K = rp::TraceEvent::Kind;
  T.Events = {
      {K::DeclareProcedure, 0, 0, 0, "walk"},
      {K::DeclareSite, 0, 0, 0, "node->next"},
      {K::Allocate, 64, 8, 0x100000, {}},
      {K::PadHeap, 24, 0, 0, {}},
      {K::SetupDone, 0, 0, 0, {}},
      {K::EnterProcedure, 0, 0, 0, {}},
      {K::Load, 0, 0x100000, 0, {}},
      {K::Store, 0, 0x100008, 0, {}},
      {K::Compute, 12, 0, 0, {}},
      {K::LoopBackEdge, 0, 0, 0, {}},
      {K::LeaveProcedure, 0, 0, 0, {}},
  };
  T.Summary.Cycles = 1234;
  T.Summary.TotalAccesses = 2;
  T.Summary.ChecksExecuted = 2;
  T.Summary.TracedRefs = 1;
  T.Summary.L1Misses = 2;
  T.Summary.L2Misses = 1;
  T.Summary.PrefetchesIssued = 0;
  T.Summary.CompleteMatches = 0;
  return T;
}

TEST(TraceFormatTest, RoundTripPreservesEverything) {
  const rp::Trace T = sampleTrace();
  const std::string Bytes = rp::serializeTrace(T);
  rp::Trace Back;
  std::string Error;
  ASSERT_TRUE(rp::deserializeTrace(Bytes, Back, &Error)) << Error;
  EXPECT_TRUE(Back.Meta == T.Meta);
  EXPECT_EQ(Back.Events.size(), T.Events.size());
  for (size_t I = 0; I < T.Events.size(); ++I)
    EXPECT_TRUE(Back.Events[I] == T.Events[I]) << "event " << I;
  EXPECT_TRUE(Back.Summary == T.Summary);
}

TEST(TraceFormatTest, EmptyTraceRoundTrips) {
  rp::Trace T;
  rp::Trace Back;
  ASSERT_TRUE(rp::deserializeTrace(rp::serializeTrace(T), Back, nullptr));
  EXPECT_TRUE(Back.Events.empty());
  EXPECT_TRUE(Back.Summary == rp::TraceSummary());
}

TEST(TraceFormatTest, RejectsBadMagic) {
  std::string Bytes = rp::serializeTrace(sampleTrace());
  Bytes[0] = 'X';
  rp::Trace Back;
  std::string Error;
  EXPECT_FALSE(rp::deserializeTrace(Bytes, Back, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST(TraceFormatTest, RejectsUnsupportedVersion) {
  std::string Bytes = rp::serializeTrace(sampleTrace());
  Bytes[8] = 99; // version word follows the 8-byte magic
  rp::Trace Back;
  std::string Error;
  EXPECT_FALSE(rp::deserializeTrace(Bytes, Back, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(TraceFormatTest, RejectsTruncationAtEveryPrefix) {
  const std::string Bytes = rp::serializeTrace(sampleTrace());
  for (size_t Length = 0; Length < Bytes.size(); ++Length) {
    rp::Trace Back;
    EXPECT_FALSE(
        rp::deserializeTrace(Bytes.substr(0, Length), Back, nullptr))
        << "prefix of " << Length << " bytes accepted";
  }
}

TEST(TraceFormatTest, RejectsTrailingGarbage) {
  std::string Bytes = rp::serializeTrace(sampleTrace());
  Bytes.push_back('\0');
  rp::Trace Back;
  std::string Error;
  EXPECT_FALSE(rp::deserializeTrace(Bytes, Back, &Error));
  EXPECT_NE(Error.find("trailing"), std::string::npos) << Error;
}

TEST(TraceFormatTest, FileRoundTrip) {
  const rp::Trace T = sampleTrace();
  const std::string Path = "replay_test_tmp.hdstrace";
  std::string Error;
  ASSERT_TRUE(rp::writeTraceFile(T, Path, &Error)) << Error;
  rp::Trace Back;
  ASSERT_TRUE(rp::readTraceFile(Path, Back, &Error)) << Error;
  EXPECT_TRUE(Back.Meta == T.Meta);
  EXPECT_TRUE(Back.Summary == T.Summary);
  std::remove(Path.c_str());
}

TEST(TraceFormatTest, SummaryDivergenceNamesChangedFields) {
  rp::TraceSummary A, B;
  A.Cycles = 10;
  B.Cycles = 12;
  B.L1Misses = 3;
  const std::string Description = rp::describeSummaryDivergence(A, B);
  EXPECT_NE(Description.find("cycles"), std::string::npos);
  EXPECT_NE(Description.find("L1 misses"), std::string::npos);
  EXPECT_EQ(Description.find("L2"), std::string::npos);
  EXPECT_TRUE(rp::describeSummaryDivergence(A, A).empty());
}

//===----------------------------------------------------------------------===//
// Record + replay through the full Runtime
//===----------------------------------------------------------------------===//

/// Records a real workload run and returns the captured trace.
rp::Trace recordWorkload(const std::string &Name, hds::core::RunMode Mode,
                         uint64_t Iterations) {
  hds::core::OptimizerConfig Config;
  Config.Mode = Mode;
  auto Bench = hds::workloads::createWorkload(Name);
  EXPECT_NE(Bench, nullptr);
  hds::core::Runtime Rt(Config);
  rp::TraceRecorder Recorder(
      rp::metaFromConfig(Config, Name, Iterations));
  Rt.setObserver(&Recorder);
  Bench->setup(Rt);
  Recorder.markSetupDone();
  Bench->run(Rt, Iterations);
  Rt.setObserver(nullptr);
  Recorder.finish(Rt);
  return Recorder.takeTrace();
}

class RecordReplayTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(RecordReplayTest, ReplayReproducesRecordedRunExactly) {
  const rp::Trace T = recordWorkload(
      GetParam(), hds::core::RunMode::DynamicPrefetch, 150);
  ASSERT_FALSE(T.Events.empty());
  EXPECT_GT(T.Summary.Cycles, 0u);

  const rp::ReplayResult Result = rp::replayTrace(T);
  EXPECT_EQ(Result.EventMismatches, 0u);
  EXPECT_TRUE(Result.SummaryMatches) << Result.Divergence;
  EXPECT_EQ(Result.Replayed.Cycles, T.Summary.Cycles);
  EXPECT_EQ(Result.Replayed.L1Misses, T.Summary.L1Misses);
  EXPECT_EQ(Result.Replayed.L2Misses, T.Summary.L2Misses);
}

INSTANTIATE_TEST_SUITE_P(Workloads, RecordReplayTest,
                         ::testing::Values("vpr", "mcf", "parser"));

TEST(RecordReplayTest, SerializedReplayMatchesToo) {
  // The full pipeline: record -> serialize -> deserialize -> replay.
  const rp::Trace T =
      recordWorkload("vpr", hds::core::RunMode::DynamicPrefetch, 100);
  rp::Trace Back;
  std::string Error;
  ASSERT_TRUE(rp::deserializeTrace(rp::serializeTrace(T), Back, &Error))
      << Error;
  const rp::ReplayResult Result = rp::replayTrace(Back);
  EXPECT_TRUE(Result.SummaryMatches) << Result.Divergence;
}

TEST(RecordReplayTest, DetectsTamperedSummary) {
  rp::Trace T =
      recordWorkload("vpr", hds::core::RunMode::DynamicPrefetch, 60);
  T.Summary.Cycles += 1;
  const rp::ReplayResult Result = rp::replayTrace(T);
  EXPECT_FALSE(Result.SummaryMatches);
  EXPECT_NE(Result.Divergence.find("cycles"), std::string::npos)
      << Result.Divergence;
}

TEST(RecordReplayTest, DetectsDroppedEvent) {
  rp::Trace T =
      recordWorkload("vpr", hds::core::RunMode::DynamicPrefetch, 60);
  // Drop the last Load/Store event; the access count must diverge.
  for (size_t I = T.Events.size(); I-- > 0;) {
    if (T.Events[I].K == rp::TraceEvent::Kind::Load ||
        T.Events[I].K == rp::TraceEvent::Kind::Store) {
      T.Events.erase(T.Events.begin() + static_cast<ptrdiff_t>(I));
      break;
    }
  }
  const rp::ReplayResult Result = rp::replayTrace(T);
  EXPECT_FALSE(Result.SummaryMatches);
}

TEST(RecordReplayTest, DetectsForgedAllocationAddress) {
  rp::Trace T;
  T.Meta.Mode = hds::core::RunMode::Original;
  using K = rp::TraceEvent::Kind;
  // The bump allocator starts at 1 MiB, so a recorded address of 0x42
  // can never be reproduced.
  T.Events = {{K::Allocate, 64, 8, 0x42, {}}, {K::SetupDone, 0, 0, 0, {}}};
  const rp::ReplayResult Result = rp::replayTrace(T);
  EXPECT_GT(Result.EventMismatches, 0u);
  EXPECT_FALSE(Result.SummaryMatches);
  EXPECT_NE(Result.Divergence.find("allocation"), std::string::npos)
      << Result.Divergence;
}

TEST(RecordReplayTest, ReplayWithoutSetupMarkerStillReplaysEverything) {
  rp::Trace T =
      recordWorkload("vpr", hds::core::RunMode::DynamicPrefetch, 60);
  // Strip the marker: all events replay in setup(), none in run(); the
  // outcome must be unchanged (the boundary carries no simulation state).
  for (size_t I = 0; I < T.Events.size(); ++I) {
    if (T.Events[I].K == rp::TraceEvent::Kind::SetupDone) {
      T.Events.erase(T.Events.begin() + static_cast<ptrdiff_t>(I));
      break;
    }
  }
  const rp::ReplayResult Result = rp::replayTrace(T);
  EXPECT_TRUE(Result.SummaryMatches) << Result.Divergence;
}

//===----------------------------------------------------------------------===//
// Trace generator
//===----------------------------------------------------------------------===//

TEST(TraceGenTest, SameSeedSameTrace) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    EXPECT_EQ(gen::generateTrace(Seed), gen::generateTrace(Seed))
        << "seed " << Seed;
}

TEST(TraceGenTest, DistinctSeedsProduceDistinctTraces) {
  EXPECT_NE(gen::generateTrace(4), gen::generateTrace(8));
  EXPECT_NE(gen::generateTrace(1), gen::generateTrace(5));
}

TEST(TraceGenTest, SeedsCycleThroughAllShapes) {
  EXPECT_EQ(gen::shapeForSeed(5), gen::TraceShape::HotLoops);
  EXPECT_EQ(gen::shapeForSeed(6), gen::TraceShape::PhaseShifts);
  EXPECT_EQ(gen::shapeForSeed(7), gen::TraceShape::NoiseFlood);
  EXPECT_EQ(gen::shapeForSeed(8), gen::TraceShape::RegexRecurrence);
  EXPECT_EQ(gen::shapeForSeed(9), gen::TraceShape::CacheThrash);
  EXPECT_STRNE(gen::shapeName(gen::TraceShape::HotLoops),
               gen::shapeName(gen::TraceShape::NoiseFlood));
}

TEST(TraceGenTest, TracesAreNonTrivial) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed)
    EXPECT_GT(gen::generateTrace(Seed).size(), 100u) << "seed " << Seed;
}

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

TEST(OracleTest, CountNonOverlappingIsGreedy) {
  const std::vector<uint32_t> Trace = {1, 2, 1, 2, 1, 2, 3};
  EXPECT_EQ(rp::countNonOverlapping(Trace, {1, 2}), 3u);
  EXPECT_EQ(rp::countNonOverlapping(Trace, {2, 1}), 2u);
  EXPECT_EQ(rp::countNonOverlapping(Trace, {1, 2, 1}), 1u);
  EXPECT_EQ(rp::countNonOverlapping(Trace, {9}), 0u);
  EXPECT_EQ(rp::countNonOverlapping(Trace, {}), 0u);
  EXPECT_EQ(rp::countNonOverlapping({}, {1}), 0u);
}

TEST(OracleTest, GrammarOraclePassesOnAdversarialTraces) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    const rp::OracleReport Report =
        rp::checkGrammarOracle(gen::generateTrace(Seed));
    EXPECT_TRUE(Report.Passed) << "seed " << Seed << ": " << Report.Failure;
  }
}

TEST(OracleTest, GrammarOracleHandlesDegenerateTraces) {
  EXPECT_TRUE(rp::checkGrammarOracle({}).Passed);
  EXPECT_TRUE(rp::checkGrammarOracle({7}).Passed);
  EXPECT_TRUE(rp::checkGrammarOracle(std::vector<uint32_t>(500, 3)).Passed);
}

TEST(OracleTest, AnalyzerOracleCrossChecksBothAnalyzers) {
  hds::analysis::AnalysisConfig Config;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    const rp::OracleReport Report =
        rp::checkAnalyzerOracle(gen::generateTrace(Seed), Config);
    EXPECT_TRUE(Report.Passed) << "seed " << Seed << ": " << Report.Failure;
  }
}

TEST(OracleTest, DfsmOracleAcceptsMatchingMachine) {
  const std::vector<std::vector<uint32_t>> Streams = {
      {1, 2, 3, 4, 5}, {1, 1, 2, 9, 9}, {2, 1, 7, 7, 7}};
  std::vector<uint32_t> Trace;
  hds::Rng R(42);
  for (int I = 0; I < 4000; ++I)
    Trace.push_back(static_cast<uint32_t>(R.nextBelow(10)));
  const rp::OracleReport Report = rp::checkDfsmOracle(Trace, Streams, 2);
  EXPECT_TRUE(Report.Passed) << Report.Failure;
}

TEST(OracleTest, DfsmOracleRejectsZeroHeadLength) {
  EXPECT_FALSE(rp::checkDfsmOracle({1, 2}, {{1, 2, 3}}, 0).Passed);
}

TEST(OracleTest, FullSuitePassesOnFixedSeeds) {
  hds::analysis::AnalysisConfig Config;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    const rp::OracleReport Report =
        rp::runOracleSuite(gen::generateTrace(Seed), Config, 2);
    EXPECT_TRUE(Report.Passed) << "seed " << Seed << ": " << Report.Failure;
  }
}

} // namespace
