//===- tests/lint_semantic_test.cpp - semantic lint engine tests ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Tests for the semantic (cross-TU) half of hds_lint: T1 lock discipline,
// W1 schema lock, E1 exhaustive dispatch, STALE suppression auditing, and
// the compile-db project model that generates H1's symbol→header table.
// Sources are supplied inline or from tests/lint_fixtures/ with virtual
// display paths, so path-scoped behavior matches the real tree.
//
//===----------------------------------------------------------------------===//

#include "lint/Lexer.h"
#include "lint/ProjectModel.h"
#include "lint/Rules.h"
#include "lint/SchemaLock.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace hds::lint;
namespace fs = std::filesystem;

namespace {

std::string readFixture(const std::string &Name) {
  const std::string Path = std::string(HDS_LINT_FIXTURE_DIR) + "/" + Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open fixture " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::string dump(const std::vector<Finding> &Fs) {
  std::string S;
  for (const Finding &F : Fs)
    S += formatFinding(F) + "\n";
  return S;
}

int countRule(const std::vector<Finding> &Fs, const std::string &Id) {
  int N = 0;
  for (const Finding &F : Fs)
    if (F.RuleId == Id)
      ++N;
  return N;
}

std::vector<Finding> lintSources(
    const std::vector<std::pair<std::string, std::string>> &Sources,
    const LintOptions &Opts = LintOptions()) {
  std::vector<LexedFile> Files;
  for (const auto &[Path, Text] : Sources)
    Files.push_back(lexSource(Path, Text));
  return runLint(Files, Opts);
}

//===----------------------------------------------------------------------===//
// T1: lock discipline
//===----------------------------------------------------------------------===//

TEST(LintT1, PositiveFixtureFires) {
  auto Fs = lintSources(
      {{"src/engine/t1_positive.cpp", readFixture("t1_positive.cpp")}});
  EXPECT_EQ(countRule(Fs, "T1"), 4) << dump(Fs);
  EXPECT_EQ(countRule(Fs, "SUP"), 0) << dump(Fs);
}

TEST(LintT1, SuppressedFixtureIsClean) {
  auto Fs = lintSources(
      {{"src/engine/t1_suppressed.cpp", readFixture("t1_suppressed.cpp")}});
  EXPECT_EQ(countRule(Fs, "T1"), 0) << dump(Fs);
  EXPECT_EQ(countRule(Fs, "SUP"), 0) << dump(Fs);
}

TEST(LintT1, AnnotationsCrossTranslationUnits) {
  // The annotated class lives in a header; the unguarded mutation in a
  // separate .cpp that never textually includes the annotation.
  const char *Header = R"(
struct Shared {
  int Mutex;
  int Hits = 0; // hds-guarded-by(Mutex)
};
)";
  const char *User = R"(
struct Shared;
void bump(Shared &S);
void caller(Shared &S) { S.Hits++; }
)";
  auto Fs = lintSources({{"src/engine/Shared.h", Header},
                         {"src/engine/User.cpp", User}});
  EXPECT_EQ(countRule(Fs, "T1"), 1) << dump(Fs);
}

TEST(LintT1, DeferLockIsNotHeld) {
  const char *Src = R"(
#include <mutex>
struct Pool {
  std::mutex Mutex;
  int Count = 0; // hds-guarded-by(Mutex)
};
void deferred(Pool &P) {
  std::unique_lock<std::mutex> Lock(P.Mutex, std::defer_lock);
  P.Count = 1;
}
)";
  auto Fs = lintSources({{"src/engine/defer.cpp", Src}});
  EXPECT_EQ(countRule(Fs, "T1"), 1) << dump(Fs);
}

TEST(LintT1, UnlockInNestedBlockDoesNotLeak) {
  // The unlock-then-return branch must not mark the fall-through path
  // unlocked (the Coordinator dispatch-loop shape).
  const char *Src = R"(
#include <mutex>
struct Pool {
  std::mutex Mutex;
  int Count = 0; // hds-guarded-by(Mutex)
  bool Done = false; // hds-guarded-by(Mutex)
};
void dispatch(Pool &P) {
  std::unique_lock<std::mutex> Lock(P.Mutex);
  if (P.Done) {
    Lock.unlock();
    return;
  }
  P.Count = 1;
}
)";
  auto Fs = lintSources({{"src/engine/nested.cpp", Src}});
  EXPECT_EQ(countRule(Fs, "T1"), 0) << dump(Fs);
}

TEST(LintT1, RequiresFunctionBodyAndCallers) {
  const char *Src = R"(
#include <mutex>
struct Pool {
  std::mutex Mutex;
  int Count = 0; // hds-guarded-by(Mutex)

  // hds-requires(Mutex)
  void bumpLocked() { ++Count; }

  void lockedCaller() {
    std::lock_guard<std::mutex> Lock(Mutex);
    bumpLocked();
  }

  void unlockedCaller() { bumpLocked(); }
};
)";
  auto Fs = lintSources({{"src/engine/req.cpp", Src}});
  // Exactly one finding: the unlocked call site.  The requires body and
  // the locked caller are clean.
  ASSERT_EQ(countRule(Fs, "T1"), 1) << dump(Fs);
  for (const Finding &F : Fs)
    if (F.RuleId == "T1") {
      EXPECT_NE(F.Message.find("bumpLocked"), std::string::npos) << dump(Fs);
    }
}

TEST(LintT1, ConstructorOfOwningClassIsExempt) {
  const char *Src = R"(
#include <mutex>
struct Pool {
  std::mutex Mutex;
  int Count = 0; // hds-guarded-by(Mutex)
  Pool() { Count = 7; }
  ~Pool() { Count = 0; }
};
)";
  auto Fs = lintSources({{"src/engine/ctor.cpp", Src}});
  EXPECT_EQ(countRule(Fs, "T1"), 0) << dump(Fs);
}

TEST(LintT1, MalformedAnnotationIsReported) {
  const char *Src = R"(
struct Pool {
  int Mutex;
  // hds-guarded-by(Mutex)
};
void idle();
// hds-guarded-by
int looseField;
)";
  auto Fs = lintSources({{"src/engine/badnote.cpp", Src}});
  EXPECT_GE(countRule(Fs, "SUP"), 2) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// E1: exhaustive dispatch
//===----------------------------------------------------------------------===//

TEST(LintE1, PositiveFixtureFires) {
  auto Fs = lintSources(
      {{"src/obs/e1_positive.cpp", readFixture("e1_positive.cpp")}});
  EXPECT_EQ(countRule(Fs, "E1"), 3) << dump(Fs);
}

TEST(LintE1, SuppressedFixtureIsClean) {
  auto Fs = lintSources(
      {{"src/obs/e1_suppressed.cpp", readFixture("e1_suppressed.cpp")}});
  EXPECT_EQ(countRule(Fs, "E1"), 0) << dump(Fs);
}

TEST(LintE1, EnumDefinitionCrossesFiles) {
  const char *Header = R"(
// hds-exhaustive
enum class Kind { A = 0, B = 1 };
)";
  const char *User = R"(
enum class Kind;
int pick(Kind K) {
  switch (K) {
  case Kind::A:
    return 0;
  }
  return -1;
}
)";
  auto Fs = lintSources({{"src/obs/Kind.h", Header},
                         {"src/obs/pick.cpp", User}});
  ASSERT_EQ(countRule(Fs, "E1"), 1) << dump(Fs);
  for (const Finding &F : Fs)
    if (F.RuleId == "E1") {
      EXPECT_NE(F.Message.find("B"), std::string::npos);
    }
}

TEST(LintE1, ClassScopeFixtureFires) {
  auto Fs = lintSources({{"src/prefetch/e1_class_scope.cpp",
                          readFixture("e1_class_scope.cpp")}});
  EXPECT_EQ(countRule(Fs, "E1"), 2) << dump(Fs);
}

TEST(LintE1, BareLabelsInsideOwningClassCount) {
  const char *Src = R"(
struct Widget {
  // hds-exhaustive
  enum State { Off = 0, On = 1 };
  bool lit(State S) const {
    switch (S) {
    case Off:
      return false;
    case On:
      return true;
    }
    return false;
  }
};
)";
  auto Fs = lintSources({{"src/obs/widget.cpp", Src}});
  EXPECT_EQ(countRule(Fs, "E1"), 0) << dump(Fs);
}

TEST(LintE1, SameNameEnumIsNotMisattributed) {
  // The JsonValue regression: a switch over an unrelated enum that also
  // happens to be called `Kind` must not be measured against the marked
  // one.  Membership, not the bare name, decides attribution.
  const char *Header = R"(
struct Engine {
  // hds-exhaustive
  enum Kind { Stride = 0, Markov = 1 };
};
)";
  const char *User = R"(
enum class Kind { Number = 0, Text = 1 };
const char *token(Kind K) {
  switch (K) {
  case Kind::Number:
    return "number";
  default:
    return "text";
  }
}
)";
  auto Fs = lintSources(
      {{"src/prefetch/Engine.h", Header}, {"src/engine/json.cpp", User}});
  EXPECT_EQ(countRule(Fs, "E1"), 0) << dump(Fs);
}

TEST(LintE1, UnmarkedEnumIsIgnored) {
  const char *Src = R"(
enum class Kind { A = 0, B = 1 };
int pick(Kind K) {
  switch (K) {
  case Kind::A:
    return 0;
  default:
    return -1;
  }
}
)";
  auto Fs = lintSources({{"src/obs/unmarked.cpp", Src}});
  EXPECT_EQ(countRule(Fs, "E1"), 0) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// W1: schema lock
//===----------------------------------------------------------------------===//

/// A miniature schema surface: a wire constant, a locked enum, and one
/// metrics visitor, as the tree-side "current" state.
const char *SchemaSource = R"(
// hds-schema-enum
enum class FrameType : unsigned char {
  Hello = 1,
  Assign = 2,
};
constexpr unsigned char ProtocolVersion = 3;
struct MetricDef { const char *Id; };
template <typename V> void visitPoolMetrics(V &&Visit) {
  Visit(MetricDef{"hits"});
  Visit(MetricDef{"misses"});
}
)";

std::vector<LexedFile> schemaFiles(const std::string &Text = SchemaSource) {
  std::vector<LexedFile> Files;
  Files.push_back(lexSource("src/engine/MiniWire.h", Text));
  return Files;
}

LintOptions schemaOpts(const std::string &LockText) {
  static std::string Keep;
  Keep = LockText;
  LintOptions Opts;
  Opts.OnlyRules = {"W1"};
  Opts.SchemaLockText = &Keep;
  Opts.SchemaLockPath = "tests/golden/mini.lock";
  return Opts;
}

TEST(LintW1, RoundTripIsClean) {
  auto Files = schemaFiles();
  const std::string Lock = renderSchemaLock(collectSchema(Files));
  auto Fs = runLint(Files, schemaOpts(Lock));
  EXPECT_EQ(countRule(Fs, "W1"), 0) << dump(Fs);
}

TEST(LintW1, CollectFindsAllSections) {
  auto Sections = collectSchema(schemaFiles());
  ASSERT_EQ(Sections.size(), 3u);
  // Sorted by (kind, name): const wire, enum FrameType, metrics visitPool.
  EXPECT_EQ(Sections[0].Kind, "const");
  EXPECT_EQ(Sections[0].Entries.front().Name, "ProtocolVersion");
  EXPECT_EQ(Sections[0].Entries.front().Value, 3);
  EXPECT_EQ(Sections[1].Name, "FrameType");
  ASSERT_EQ(Sections[1].Entries.size(), 2u);
  EXPECT_EQ(Sections[1].Entries[1].Name, "Assign");
  EXPECT_EQ(Sections[1].Entries[1].Value, 2);
  EXPECT_EQ(Sections[2].Name, "visitPoolMetrics");
  ASSERT_EQ(Sections[2].Entries.size(), 2u);
  EXPECT_EQ(Sections[2].Entries[0].Name, "hits");
  EXPECT_EQ(Sections[2].Entries[1].Value, 1);
}

TEST(LintW1, ReorderedTagFails) {
  auto Files = schemaFiles();
  std::string Lock = renderSchemaLock(collectSchema(Files));
  // Swap the two metric entries in the lock.
  size_t H = Lock.find("hits 0\nmisses 1");
  ASSERT_NE(H, std::string::npos);
  Lock.replace(H, std::string("hits 0\nmisses 1").size(),
               "misses 1\nhits 0");
  auto Fs = runLint(Files, schemaOpts(Lock));
  ASSERT_GE(countRule(Fs, "W1"), 1) << dump(Fs);
  EXPECT_NE(dump(Fs).find("reordered"), std::string::npos) << dump(Fs);
}

TEST(LintW1, DeletedMetricFails) {
  // The lock remembers a metric the tree no longer enumerates.
  auto Files = schemaFiles();
  std::string Lock = renderSchemaLock(collectSchema(Files));
  std::string Without = SchemaSource;
  size_t M = Without.find("  Visit(MetricDef{\"misses\"});\n");
  ASSERT_NE(M, std::string::npos);
  Without.erase(M, std::string("  Visit(MetricDef{\"misses\"});\n").size());
  auto Fs = runLint(schemaFiles(Without), schemaOpts(Lock));
  ASSERT_GE(countRule(Fs, "W1"), 1) << dump(Fs);
  EXPECT_NE(dump(Fs).find("removed"), std::string::npos) << dump(Fs);
}

TEST(LintW1, RenumberedFrameTypeFails) {
  auto Files = schemaFiles();
  std::string Lock = renderSchemaLock(collectSchema(Files));
  std::string Renumbered = SchemaSource;
  size_t A = Renumbered.find("Assign = 2");
  ASSERT_NE(A, std::string::npos);
  Renumbered.replace(A, std::string("Assign = 2").size(), "Assign = 9");
  auto Fs = runLint(schemaFiles(Renumbered), schemaOpts(Lock));
  ASSERT_GE(countRule(Fs, "W1"), 1) << dump(Fs);
  EXPECT_NE(dump(Fs).find("renumbered"), std::string::npos) << dump(Fs);
}

TEST(LintW1, ProtocolVersionBumpIsStaleNotFrozen) {
  // Bumping the wire version forward is the sanctioned mutation (skew is
  // rejected at the frame header); the lock merely goes stale.  Moving
  // it backwards is still a renumber finding.
  auto Files = schemaFiles();
  std::string Lock = renderSchemaLock(collectSchema(Files));
  std::string Bumped = SchemaSource;
  size_t V = Bumped.find("ProtocolVersion = 3");
  ASSERT_NE(V, std::string::npos);
  Bumped.replace(V, std::string("ProtocolVersion = 3").size(),
                 "ProtocolVersion = 4");
  auto Fs = runLint(schemaFiles(Bumped), schemaOpts(Lock));
  ASSERT_EQ(countRule(Fs, "W1"), 1) << dump(Fs);
  EXPECT_NE(dump(Fs).find("stale"), std::string::npos) << dump(Fs);

  std::string Reverted = SchemaSource;
  Reverted.replace(V, std::string("ProtocolVersion = 3").size(),
                   "ProtocolVersion = 2");
  auto Back = runLint(schemaFiles(Reverted), schemaOpts(Lock));
  ASSERT_GE(countRule(Back, "W1"), 1) << dump(Back);
  EXPECT_NE(dump(Back).find("renumbered"), std::string::npos) << dump(Back);
}

TEST(LintW1, LegalAppendReportsStaleLock) {
  auto Files = schemaFiles();
  std::string Lock = renderSchemaLock(collectSchema(Files));
  std::string Appended = SchemaSource;
  size_t E = Appended.find("  Assign = 2,\n");
  ASSERT_NE(E, std::string::npos);
  Appended.insert(E + std::string("  Assign = 2,\n").size(),
                  "  Result = 3,\n");
  auto Fs = runLint(schemaFiles(Appended), schemaOpts(Lock));
  ASSERT_EQ(countRule(Fs, "W1"), 1) << dump(Fs);
  EXPECT_NE(dump(Fs).find("stale"), std::string::npos) << dump(Fs);
}

TEST(LintW1, SuppressionCannotSilenceW1) {
  // W1 has no suppression tag; an unknown tag in a note is itself a SUP
  // finding and the W1 finding survives.
  auto Files = schemaFiles();
  std::string Lock = renderSchemaLock(collectSchema(Files));
  std::string Renumbered = SchemaSource;
  size_t A = Renumbered.find("Assign = 2");
  ASSERT_NE(A, std::string::npos);
  Renumbered.replace(A, std::string("Assign = 2").size(),
                     "Assign = 9, // hds-lint: schema-ok(nope)");
  LintOptions Opts = schemaOpts(Lock);
  Opts.OnlyRules.clear(); // let SUP run too
  auto Fs = runLint(schemaFiles(Renumbered), Opts);
  EXPECT_GE(countRule(Fs, "W1"), 1) << dump(Fs);
  EXPECT_GE(countRule(Fs, "SUP"), 1) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// STALE: suppression audit
//===----------------------------------------------------------------------===//

TEST(LintStale, UnusedSuppressionIsReportedOnlyWhenAsked) {
  const char *Src = R"(
// hds-lint: ordered-ok(nothing here iterates anything)
int answer() { return 42; }
)";
  auto Quiet = lintSources({{"src/core/quiet.cpp", Src}});
  EXPECT_EQ(countRule(Quiet, "STALE"), 0) << dump(Quiet);

  LintOptions Opts;
  Opts.ReportStale = true;
  auto Audited = lintSources({{"src/core/quiet.cpp", Src}}, Opts);
  ASSERT_EQ(countRule(Audited, "STALE"), 1) << dump(Audited);
  EXPECT_NE(dump(Audited).find("ordered-ok"), std::string::npos);
}

TEST(LintStale, UsedSuppressionIsNotStale) {
  const char *Src = R"(
#include <unordered_map>
void walk(const std::unordered_map<int, int> &Table) {
  // hds-lint: ordered-ok(sums are order-independent)
  for (const auto &KV : Table)
    (void)KV;
}
)";
  LintOptions Opts;
  Opts.ReportStale = true;
  auto Fs = lintSources({{"src/core/used.cpp", Src}}, Opts);
  EXPECT_EQ(countRule(Fs, "D2"), 0) << dump(Fs);
  EXPECT_EQ(countRule(Fs, "STALE"), 0) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// Project model: compile DB parsing and header-table generation
//===----------------------------------------------------------------------===//

TEST(LintProjectModel, ParsesCommandAndArgumentsForms) {
  const char *Json = R"([
  {
    "directory": "/work/build",
    "command": "/usr/bin/g++ -I/abs/inc -Irel/inc -isystem /sys/inc -c a.cpp",
    "file": "a.cpp"
  },
  {
    "directory": "/work/build",
    "arguments": ["clang++", "-I", "other", "-c", "b.cpp"],
    "file": "b.cpp"
  }
])";
  std::vector<CompileCommand> Cmds;
  std::string Error;
  ASSERT_TRUE(parseCompileDb(Json, "compile_commands.json", Cmds, Error))
      << Error;
  ASSERT_EQ(Cmds.size(), 2u);
  EXPECT_EQ(Cmds[0].Compiler, "/usr/bin/g++");
  ASSERT_EQ(Cmds[0].IncludeDirs.size(), 3u);
  EXPECT_EQ(Cmds[0].IncludeDirs[0], "/abs/inc");
  EXPECT_EQ(Cmds[0].IncludeDirs[1], "/work/build/rel/inc");
  EXPECT_EQ(Cmds[0].IncludeDirs[2], "/sys/inc");
  EXPECT_EQ(Cmds[1].Compiler, "clang++");
  ASSERT_EQ(Cmds[1].IncludeDirs.size(), 1u);
  EXPECT_EQ(Cmds[1].IncludeDirs[0], "/work/build/other");
}

TEST(LintProjectModel, RejectsMalformedJson) {
  std::vector<CompileCommand> Cmds;
  std::string Error;
  EXPECT_FALSE(parseCompileDb("{\"not\": \"an array\"}",
                              "compile_commands.json", Cmds, Error));
  EXPECT_FALSE(Error.empty());
}

/// Builds a fake sysroot: outer.h includes inner.h, which declares the
/// type; a macro header defines a symbol directly.
class FakeSysroot : public ::testing::Test {
protected:
  void SetUp() override {
    Root = fs::path(::testing::TempDir()) / "hds_lint_sysroot";
    fs::create_directories(Root);
    write("inner.h", "#pragma once\nstruct Widget { int X; };\n"
                     "typedef unsigned short gadget_t;\n");
    write("outer.h", "#pragma once\n#include <inner.h>\n");
    write("defs.h", "#pragma once\n#define WIDGET_MAX 16\n"
                    "using widget_fn = int;\n");
  }
  void write(const std::string &Name, const std::string &Text) {
    std::ofstream Out(Root / Name, std::ios::binary);
    Out << Text;
  }
  fs::path Root;
};

TEST_F(FakeSysroot, ResolvesTransitiveProviders) {
  auto Table = generateHeaderTable(
      {{"Widget", false}, {"gadget_t", false}, {"WIDGET_MAX", false},
       {"widget_fn", false}, {"NoSuchSymbol", false}},
      {"outer.h", "inner.h", "defs.h"}, {Root.string()});
  auto Find = [&](const std::string &Sym) -> const HeaderReq * {
    for (const HeaderReq &Req : Table)
      if (Req.Symbol == Sym)
        return &Req;
    return nullptr;
  };
  const HeaderReq *Widget = Find("Widget");
  ASSERT_NE(Widget, nullptr);
  EXPECT_TRUE(Widget->Generated);
  // Declared in inner.h, provided transitively by outer.h; the exact-name
  // provider ordering puts no header first here (no name match), but both
  // providers must be present.
  EXPECT_NE(std::find(Widget->Headers.begin(), Widget->Headers.end(),
                      "inner.h"),
            Widget->Headers.end());
  EXPECT_NE(std::find(Widget->Headers.begin(), Widget->Headers.end(),
                      "outer.h"),
            Widget->Headers.end());
  const HeaderReq *Gadget = Find("gadget_t");
  ASSERT_NE(Gadget, nullptr);
  const HeaderReq *Max = Find("WIDGET_MAX");
  ASSERT_NE(Max, nullptr);
  EXPECT_EQ(Max->Headers.front(), "defs.h");
  const HeaderReq *Fn = Find("widget_fn");
  ASSERT_NE(Fn, nullptr);
  EXPECT_EQ(Fn->Headers.front(), "defs.h");
  EXPECT_EQ(Find("NoSuchSymbol"), nullptr);
}

TEST(LintProjectModel, MergePrefersGeneratedAndFillsGaps) {
  std::vector<HeaderReq> Generated = {
      {"vector", true, {"vector"}, true},
  };
  auto Merged = mergeHeaderTable(Generated);
  bool SawVector = false, SawSizeT = false;
  for (const HeaderReq &Req : Merged) {
    if (Req.Symbol == "vector") {
      EXPECT_TRUE(Req.Generated);
      SawVector = true;
    }
    if (Req.Symbol == "size_t") {
      EXPECT_FALSE(Req.Generated);
      SawSizeT = true;
    }
  }
  EXPECT_TRUE(SawVector);
  EXPECT_TRUE(SawSizeT);
}

TEST(LintProjectModel, GeneratedTableDrivesH1) {
  // A header using std::optional without <optional>: the generated-only
  // entry (absent from the curated fallback) must catch it.
  std::vector<HeaderReq> Table = {
      {"optional", true, {"optional"}, true},
  };
  const char *Header = R"(#pragma once
inline int orZero(int *P) { return P ? *P : 0; }
inline std::optional<int> maybe(int *P);
)";
  LintOptions Opts;
  Opts.OnlyRules = {"H1"};
  Opts.HeaderTable = &Table;
  std::vector<LexedFile> Files;
  Files.push_back(lexSource("src/support/Maybe.h", Header));
  auto Fs = runLint(Files, Opts);
  ASSERT_EQ(countRule(Fs, "H1"), 1) << dump(Fs);
  EXPECT_NE(Fs.front().Message.find("optional"), std::string::npos);
  // Without the generated table, the curated fallback has no optional
  // entry and stays quiet: exactly the gap the compile DB closes.
  Opts.HeaderTable = nullptr;
  auto Fallback = runLint(Files, Opts);
  EXPECT_EQ(countRule(Fallback, "H1"), 0) << dump(Fallback);
}

} // namespace
