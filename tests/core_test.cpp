//===- tests/core_test.cpp - Runtime / optimizer / engine tests ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "core/PrefetchEngine.h"
#include "core/Runtime.h"

#include <gtest/gtest.h>

using namespace hds;
using namespace hds::core;

namespace {

OptimizerConfig quietConfig(RunMode Mode) {
  OptimizerConfig C;
  C.Mode = Mode;
  return C;
}

//===----------------------------------------------------------------------===//
// Runtime basics
//===----------------------------------------------------------------------===//

TEST(RuntimeTest, HeapAllocationIsBumpAndAligned) {
  Runtime Rt(quietConfig(RunMode::Original));
  const memsim::Addr A = Rt.allocate(10, 8);
  const memsim::Addr B = Rt.allocate(10, 8);
  EXPECT_EQ(A % 8, 0u);
  EXPECT_EQ(B % 8, 0u);
  EXPECT_GE(B, A + 10);
  const memsim::Addr C = Rt.allocate(1, 64);
  EXPECT_EQ(C % 64, 0u);
}

TEST(RuntimeTest, PadHeapSkipsAddressSpace) {
  Runtime Rt(quietConfig(RunMode::Original));
  const memsim::Addr A = Rt.allocate(8, 8);
  Rt.padHeap(1000);
  const memsim::Addr B = Rt.allocate(8, 8);
  EXPECT_GE(B, A + 8 + 1000);
}

TEST(RuntimeTest, OriginalModeHasNoInstrumentationCost) {
  Runtime Rt(quietConfig(RunMode::Original));
  const auto P = Rt.declareProcedure("p");
  const auto S = Rt.declareSite(P);
  const memsim::Addr A = Rt.allocate(64);
  {
    Runtime::ProcedureScope Scope(Rt, P);
    Rt.loopBackEdge();
    Rt.load(S, A);
  }
  EXPECT_EQ(Rt.stats().ChecksExecuted, 0u);
  EXPECT_EQ(Rt.stats().TracedRefs, 0u);
  // Exactly the memory latency of one cold miss.
  EXPECT_EQ(Rt.cycles(), uint64_t{Rt.config().Latency.MemoryCycles});
}

TEST(RuntimeTest, ChecksOnlyModeChargesChecks) {
  OptimizerConfig Config = quietConfig(RunMode::ChecksOnly);
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("p");
  {
    Runtime::ProcedureScope Scope(Rt, P); // 1 check
    Rt.loopBackEdge();                    // 1 check
  }
  EXPECT_EQ(Rt.stats().ChecksExecuted, 2u);
  EXPECT_EQ(Rt.cycles(), 2 * Config.Costs.CheckCycles);
  // ChecksOnly never enters instrumented code, so nothing is traced.
  EXPECT_EQ(Rt.stats().TracedRefs, 0u);
}

TEST(RuntimeTest, ComputeAdvancesClock) {
  Runtime Rt(quietConfig(RunMode::Original));
  Rt.compute(123);
  EXPECT_EQ(Rt.cycles(), 123u);
}

TEST(RuntimeTest, ProfileModeTracesOnlyAwakeBursts) {
  OptimizerConfig Config = quietConfig(RunMode::Profile);
  Config.Tracing = {/*NCheck0=*/9, /*NInstr0=*/3, /*NAwake=*/2,
                    /*NHibernate=*/2, /*HibernationEnabled=*/true};
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("p");
  const auto S = Rt.declareSite(P);
  const memsim::Addr A = Rt.allocate(64);

  // Drive several full phase cycles: one access per check.
  for (int I = 0; I < 500; ++I) {
    Runtime::ProcedureScope Scope(Rt, P);
    Rt.load(S, A);
  }
  // ~2 awake periods of 3 instrumented checks per 4-period cycle; with
  // one access per check roughly (2*3/48) of 500 accesses get traced.
  EXPECT_GT(Rt.stats().TracedRefs, 10u);
  EXPECT_LT(Rt.stats().TracedRefs, 120u);
  EXPECT_GT(Rt.stats().Cycles.size(), 0u);
  // Profile mode never injects.
  for (const CycleStats &Cycle : Rt.stats().Cycles) {
    EXPECT_EQ(Cycle.StreamsInstalled, 0u);
    EXPECT_EQ(Cycle.HotStreamsDetected, 0u);
  }
}

//===----------------------------------------------------------------------===//
// A miniature program the optimizer can actually optimize
//===----------------------------------------------------------------------===//

/// Fixture building a small deterministic pointer-chase program with 24
/// linked lists whose walks are the hot data streams.  The lists plus the
/// scanned buffer exceed L1 capacity, so every re-walk misses L1 and hits
/// L2 — the stalls prefetching can hide.
class MiniProgramTest : public ::testing::Test {
protected:
  static OptimizerConfig miniConfig(RunMode Mode) {
    OptimizerConfig Config;
    Config.Mode = Mode;
    Config.Tracing = {/*NCheck0=*/293, /*NInstr0=*/10, /*NAwake=*/30,
                      /*NHibernate=*/150, /*HibernationEnabled=*/true};
    Config.Analysis.MinLength = 6;
    Config.MinUniqueRefs = 5;
    // The scaled-down phases above sample ~20x more densely than the
    // production settings; scale the per-event software costs down so
    // the overhead-to-benefit ratio stays representative.
    Config.Costs.CheckCycles = 2;
    Config.Costs.TraceRefCycles = 30;
    Config.Costs.AnalysisCyclesPerTracedRef = 5;
    Config.Costs.AnalysisCyclesPerGrammarSymbol = 10;
    Config.Costs.DfsmCyclesPerTransition = 20;
    Config.Costs.PatchCyclesPerProcedure = 1000;
    return Config;
  }

  struct Program {
    static constexpr size_t NumWalkers = 3;
    vulcan::ProcId Walk[NumWalkers] = {};
    vulcan::ProcId Scan = 0;
    vulcan::SiteId Head[NumWalkers] = {};
    vulcan::SiteId First[NumWalkers] = {};
    vulcan::SiteId Node[NumWalkers] = {};
    vulcan::SiteId Cold = 0;
    std::vector<std::vector<memsim::Addr>> Lists;
    std::vector<memsim::Addr> Heads;
    memsim::Addr Region = 0;
    uint64_t Cursor = 0;

    void setup(Runtime &Rt) {
      for (size_t W = 0; W < NumWalkers; ++W) {
        Walk[W] = Rt.declareProcedure("walk");
        Head[W] = Rt.declareSite(Walk[W], "heads[i]");
        First[W] = Rt.declareSite(Walk[W], "first");
        Node[W] = Rt.declareSite(Walk[W], "node");
      }
      Scan = Rt.declareProcedure("scan");
      Cold = Rt.declareSite(Scan, "cold");
      Lists.resize(24);
      Heads.resize(24);
      for (size_t L = 0; L < 24; ++L)
        Heads[L] = Rt.allocate(8);
      uint64_t Pad = 0;
      for (size_t N = 0; N < 14; ++N)
        for (size_t L = 0; L < 24; ++L) {
          Lists[L].push_back(Rt.allocate(32));
          Pad = (Pad + 53) % 128;
          Rt.padHeap(64 + Pad);
        }
      Region = Rt.allocate(20 * 1024, 64);
    }

    void sweep(Runtime &Rt) {
      for (size_t L = 0; L < 24; ++L) {
        const size_t W = L % NumWalkers;
        {
          Runtime::ProcedureScope Scope(Rt, Walk[W]);
          Rt.load(Head[W], Heads[L]);
          Rt.load(First[W], Lists[L][0]);
          Rt.compute(2);
          for (size_t N = 1; N < 14; ++N) {
            Rt.load(Node[W], Lists[L][N]);
            Rt.compute(2);
            if (N % 5 == 0)
              Rt.loopBackEdge();
          }
        }
        Runtime::ProcedureScope Scope(Rt, Scan);
        for (int I = 0; I < 12; ++I) {
          Rt.load(Cold, Region + Cursor);
          Cursor = (Cursor + 32) % (20 * 1024 - 32);
          if (I % 6 == 5)
            Rt.loopBackEdge();
        }
      }
    }
  };

  uint64_t runProgram(RunMode Mode, int Sweeps,
                      RunStats *OutStats = nullptr) {
    Runtime Rt(miniConfig(Mode));
    Program Prog;
    Prog.setup(Rt);
    for (int I = 0; I < Sweeps; ++I)
      Prog.sweep(Rt);
    if (OutStats)
      *OutStats = Rt.stats();
    return Rt.cycles();
  }
};

TEST_F(MiniProgramTest, OptimizationCyclesHappen) {
  RunStats Stats;
  runProgram(RunMode::DynamicPrefetch, 1500, &Stats);
  ASSERT_GE(Stats.Cycles.size(), 2u);
  // Streams are detected and installed in at least one cycle.
  bool AnyInstalled = false;
  for (const CycleStats &Cycle : Stats.Cycles)
    AnyInstalled |= Cycle.StreamsInstalled > 0;
  EXPECT_TRUE(AnyInstalled);
  EXPECT_GT(Stats.CompleteMatches, 0u);
  EXPECT_GT(Stats.PrefetchesRequested, 0u);
}

TEST_F(MiniProgramTest, PrefetchingBeatsMatchingOnly) {
  const uint64_t Original = runProgram(RunMode::Original, 1500);
  const uint64_t NoPref = runProgram(RunMode::MatchNoPrefetch, 1500);
  const uint64_t DynPref = runProgram(RunMode::DynamicPrefetch, 1500);
  // No-pref pays overhead; Dyn-pref must recover it and more.
  EXPECT_GT(NoPref, Original);
  EXPECT_LT(DynPref, NoPref);
}

TEST_F(MiniProgramTest, DynamicPrefetchingBeatsOriginal) {
  const uint64_t Original = runProgram(RunMode::Original, 1500);
  const uint64_t DynPref = runProgram(RunMode::DynamicPrefetch, 1500);
  EXPECT_LT(DynPref, Original);
}

TEST_F(MiniProgramTest, ModeLadderIsMonotoneInMachinery) {
  // Each mode executes strictly more machinery than the previous; the
  // figures normalize against Original.
  RunStats Checks, Prof, Hds;
  runProgram(RunMode::ChecksOnly, 200, &Checks);
  runProgram(RunMode::Profile, 200, &Prof);
  runProgram(RunMode::ProfileAnalyze, 200, &Hds);
  EXPECT_GT(Checks.ChecksExecuted, 0u);
  EXPECT_EQ(Checks.TracedRefs, 0u);
  EXPECT_GT(Prof.TracedRefs, 0u);
  EXPECT_EQ(Prof.Cycles.empty(), false);
  bool Detected = false;
  for (const CycleStats &Cycle : Hds.Cycles)
    Detected |= Cycle.HotStreamsDetected > 0;
  EXPECT_TRUE(Detected);
}

TEST_F(MiniProgramTest, DeterministicRuns) {
  // The paper stresses that bursty tracing and the optimizer are
  // deterministic; identical runs must produce identical cycle counts.
  RunStats A, B;
  const uint64_t CyclesA = runProgram(RunMode::DynamicPrefetch, 300, &A);
  const uint64_t CyclesB = runProgram(RunMode::DynamicPrefetch, 300, &B);
  EXPECT_EQ(CyclesA, CyclesB);
  EXPECT_EQ(A.TotalAccesses, B.TotalAccesses);
  EXPECT_EQ(A.CompleteMatches, B.CompleteMatches);
  EXPECT_EQ(A.PrefetchesRequested, B.PrefetchesRequested);
  ASSERT_EQ(A.Cycles.size(), B.Cycles.size());
  for (size_t I = 0; I < A.Cycles.size(); ++I) {
    EXPECT_EQ(A.Cycles[I].TracedRefs, B.Cycles[I].TracedRefs);
    EXPECT_EQ(A.Cycles[I].StreamsInstalled, B.Cycles[I].StreamsInstalled);
  }
}

TEST_F(MiniProgramTest, SequentialPrefetchDiffersFromDynamic) {
  const uint64_t Seq = runProgram(RunMode::SequentialPrefetch, 1500);
  const uint64_t Dyn = runProgram(RunMode::DynamicPrefetch, 1500);
  // Lists are scattered: sequential prefetching fetches the wrong blocks
  // and must not beat stream-address prefetching.
  EXPECT_GT(Seq, Dyn);
}

TEST_F(MiniProgramTest, DeoptimizationRemovesInjectedCode) {
  Runtime Rt(miniConfig(RunMode::DynamicPrefetch));
  Program Prog;
  Prog.setup(Rt);
  // Run until an optimization cycle installed something...
  int Sweeps = 0;
  while (Rt.stats().Cycles.empty() && Sweeps < 2000) {
    Prog.sweep(Rt);
    ++Sweeps;
  }
  ASSERT_FALSE(Rt.stats().Cycles.empty());
  // ...then run to the end of hibernation: the image must be deoptimized
  // whenever the tracer is back in a (later) awake phase.
  for (int I = 0; I < 2000 && Rt.engine().installed(); ++I)
    Prog.sweep(Rt);
  EXPECT_FALSE(Rt.engine().installed());
  for (vulcan::ProcId P = 0; P < Rt.image().procedureCount(); ++P)
    EXPECT_FALSE(Rt.image().isPatched(P));
  EXPECT_GT(Rt.image().deoptimizations(), 0u);
}

//===----------------------------------------------------------------------===//
// Stale activation records (§3.2)
//===----------------------------------------------------------------------===//

TEST(StaleFrameTest, AccessInPrePatchFrameSkipsChecks) {
  OptimizerConfig Config = quietConfig(RunMode::DynamicPrefetch);
  Runtime Rt(Config);
  const auto P = Rt.declareProcedure("p");
  const auto S = Rt.declareSite(P);
  const memsim::Addr A = Rt.allocate(64);

  Rt.enterProcedure(P);
  // Patch the procedure while its frame is live (as the optimizer would
  // at an awake-phase boundary inside some other procedure).
  Rt.image().applyPatch({S});
  dfsm::PrefixDfsm Machine({{0, 1, 2, 3, 4, 5}}, dfsm::DfsmConfig());
  // The engine is not installed here; the point is the frame version
  // check alone: with a stale frame, the access must not reach the
  // engine (it would assert on an uninstalled engine otherwise).
  Rt.load(S, A);
  EXPECT_EQ(Rt.stats().StaleFrameAccesses, 0u); // engine not installed
  Rt.leaveProcedure();
}

//===----------------------------------------------------------------------===//
// PrefetchEngine in isolation
//===----------------------------------------------------------------------===//

class EngineTest : public ::testing::Test {
protected:
  void install(RunMode Mode) {
    Config.Mode = Mode;
    // One stream: symbols 0..5 at pcs 0,0,1,1,1,1, addr 0x100*k.
    for (uint32_t K = 0; K < 6; ++K)
      Refs.intern({K / 2, 0x1000ull + 0x100 * K});
    dfsm::PrefixDfsm Machine({{0, 1, 2, 3, 4, 5}}, dfsm::DfsmConfig());
    dfsm::CheckCode Code = dfsm::generateCheckCode(Machine, Refs);
    PrefetchEngine::InstalledStream Stream;
    for (uint32_t K = 2; K < 6; ++K)
      Stream.TailAddrs.push_back(Refs.refOf(K).Addr);
    Engine.install(std::move(Code), {Stream}, /*ImageSiteCount=*/8);
  }

  OptimizerConfig Config;
  analysis::DataRefTable Refs;
  PrefetchEngine Engine;
  memsim::MemoryHierarchy Memory;
  RunStats Stats;
};

TEST_F(EngineTest, InstallAndUninstall) {
  install(RunMode::DynamicPrefetch);
  EXPECT_TRUE(Engine.installed());
  EXPECT_TRUE(Engine.siteInstrumented(0));
  EXPECT_FALSE(Engine.siteInstrumented(1)); // tail pc carries no checks
  Engine.uninstall();
  EXPECT_FALSE(Engine.installed());
  EXPECT_FALSE(Engine.siteInstrumented(0));
}

TEST_F(EngineTest, HeadMatchIssuesTailPrefetches) {
  install(RunMode::DynamicPrefetch);
  Engine.onAccess(0, 0x1000, Config, Memory, Stats);
  EXPECT_EQ(Stats.CompleteMatches, 0u);
  Engine.onAccess(0, 0x1100, Config, Memory, Stats);
  EXPECT_EQ(Stats.CompleteMatches, 1u);
  EXPECT_EQ(Stats.PrefetchesRequested, 4u);
  EXPECT_EQ(Memory.stats().PrefetchesIssued, 4u);
}

TEST_F(EngineTest, WrongAddressResets) {
  install(RunMode::DynamicPrefetch);
  Engine.onAccess(0, 0x1000, Config, Memory, Stats);
  Engine.onAccess(0, 0x9999, Config, Memory, Stats); // unknown address
  EXPECT_EQ(Engine.currentState(), 0u);
  Engine.onAccess(0, 0x1100, Config, Memory, Stats); // second symbol alone
  EXPECT_EQ(Stats.CompleteMatches, 0u);
}

TEST_F(EngineTest, RestartWithinMatch) {
  install(RunMode::DynamicPrefetch);
  Engine.onAccess(0, 0x1000, Config, Memory, Stats);
  Engine.onAccess(0, 0x1000, Config, Memory, Stats); // restart on first
  Engine.onAccess(0, 0x1100, Config, Memory, Stats);
  EXPECT_EQ(Stats.CompleteMatches, 1u);
}

TEST_F(EngineTest, NoPrefFiresNoPrefetches) {
  install(RunMode::MatchNoPrefetch);
  Engine.onAccess(0, 0x1000, Config, Memory, Stats);
  Engine.onAccess(0, 0x1100, Config, Memory, Stats);
  EXPECT_EQ(Stats.CompleteMatches, 1u);
  EXPECT_EQ(Stats.PrefetchesRequested, 0u);
  EXPECT_EQ(Memory.stats().PrefetchesIssued, 0u);
}

TEST_F(EngineTest, SequentialPrefetchesFollowMatchAddress) {
  install(RunMode::SequentialPrefetch);
  Engine.onAccess(0, 0x1000, Config, Memory, Stats);
  Engine.onAccess(0, 0x1100, Config, Memory, Stats);
  EXPECT_EQ(Stats.PrefetchesRequested, 4u);
  Memory.tick(1000);
  // Blocks sequentially after 0x1100 are now resident.
  EXPECT_TRUE(Memory.l1().contains(0x1100 + 32));
  EXPECT_TRUE(Memory.l1().contains(0x1100 + 4 * 32));
  // The stream's actual tail was not prefetched.
  EXPECT_FALSE(Memory.l1().contains(0x1200));
}

TEST_F(EngineTest, MaxPrefetchesPerMatchCaps) {
  Config.MaxPrefetchesPerMatch = 2;
  install(RunMode::DynamicPrefetch);
  Engine.onAccess(0, 0x1000, Config, Memory, Stats);
  Engine.onAccess(0, 0x1100, Config, Memory, Stats);
  EXPECT_EQ(Stats.PrefetchesRequested, 2u);
}

TEST_F(EngineTest, ScanCostChargedToClock) {
  install(RunMode::DynamicPrefetch);
  const uint64_t Before = Memory.now();
  Engine.onAccess(0, 0x9999, Config, Memory, Stats);
  EXPECT_GT(Memory.now(), Before);
  EXPECT_GT(Stats.MatchClausesScanned, 0u);
}

} // namespace
