// T1 positive fixture: mutations of hds-guarded-by fields outside any
// scope holding the named mutex.  Expected T1 findings: 4.
#include <deque>
#include <mutex>

struct Pool {
  std::mutex Mutex;
  std::deque<int> Queue; // hds-guarded-by(Mutex)
  int Count = 0;         // hds-guarded-by(Mutex)

  // Bare-name mutation inside a member function, no lock: 2 findings.
  void unlockedMember(int V) {
    Queue.push_back(V);
    ++Count;
  }

  // The lock guards only its block; the mutation after it is bare.
  void lockTooNarrow(int V) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.push_back(V);
    }
    Count = V; // 1 finding: lock already released
  }
};

// Prefixed mutation through a bound reference, no lock: 1 finding.
void unlockedFree(Pool &P) { P.Queue.pop_front(); }

// Held paths that must stay clean.
void lockedFree(Pool &P) {
  std::scoped_lock Lock(P.Mutex);
  P.Queue.push_back(1);
  ++P.Count;
}

void manualUnlockRelock(Pool &P) {
  std::unique_lock<std::mutex> Lock(P.Mutex);
  P.Count = 1;
  Lock.unlock();
  Lock.lock();
  P.Count = 2; // re-acquired: clean
}
