// Fixture: a file-wide alloc-ok designation must silence every D4 site.
// hds-lint-file: alloc-ok(fixture models a designated intrusive allocator)
#include <cstdlib>

int *rawAllocation() {
  int *P = new int(7);
  void *Q = malloc(16);
  free(Q);
  delete P;
  return nullptr;
}
