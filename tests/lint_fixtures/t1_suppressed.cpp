// T1 suppressed fixture: the same unguarded mutations as t1_positive,
// silenced by well-formed lock-ok notes.  Expected T1 findings: 0.
#include <deque>
#include <mutex>

struct Pool {
  std::mutex Mutex;
  std::deque<int> Queue; // hds-guarded-by(Mutex)
  int Count = 0;         // hds-guarded-by(Mutex)

  void unlockedMember(int V) {
    // hds-lint: lock-ok(single-threaded setup before workers spawn)
    Queue.push_back(V);
    // hds-lint: lock-ok(single-threaded setup before workers spawn)
    ++Count;
  }
};

// hds-lint: lock-ok(caller serializes all access during teardown)
void unlockedFree(Pool &P) { P.Queue.pop_front(); }
