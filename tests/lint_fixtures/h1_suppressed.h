// Fixture: a file-wide header-ok note must silence H1.
// hds-lint-file: header-ok(fixture exercises the suppression path)
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

struct Holder {
  std::vector<int> Values;
};

#endif
