// Fixture: the defining file of `class CycleAccount` — the designated
// accounting primitive.  C1 discovers the class's fields from this
// definition; mutating them *here* is structurally exempt, so the file
// lints clean with no suppression comments at all.
#include <cstdint>

class CycleAccount {
public:
  void charge(uint64_t Cycles, uint64_t Phase) {
    Total += Cycles;
    Phases[Phase] += Cycles;
  }

  uint64_t total() const { return Total; }

private:
  uint64_t Total = 0;
  uint64_t Phases[8] = {};
};
