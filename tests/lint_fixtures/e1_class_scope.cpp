// E1 class-scope fixture: an unscoped enum nested in its class, driven
// through bare `case` labels inside the class's own scope and through
// class-qualified labels in an out-of-line member.  A same-named enum
// with different members proves attribution goes by membership, not
// name.  Expected E1 findings: 2.

struct Engine {
  // hds-exhaustive
  enum Kind : unsigned char {
    Stride = 0,
    Markov = 1,
    Pair = 2,
  };
  const char *token(Kind K) const {
    switch (K) { // 1 finding: Pair not covered (bare labels resolve here)
    case Stride:
      return "stride";
    case Markov:
      return "markov";
    }
    return "unknown";
  }
  const char *name(Kind K) const;
};

const char *Engine::name(Kind K) const {
  switch (K) { // 1 finding: class-qualified labels still leave Pair out
  case Engine::Stride:
    return "stride";
  case Engine::Markov:
    return "markov";
  }
  return "unknown";
}

// A different enum reusing the name `Kind` with its own members: label
// attribution requires membership, so this switch never counts against
// Engine::Kind (and the unmarked enum itself is not checked).
enum class Kind { Alpha = 0, Beta = 1 };

int pick(Kind K) {
  switch (K) { // clean: Alpha/Beta are not Engine::Kind members
  case Kind::Alpha:
    return 0;
  case Kind::Beta:
    return 1;
  }
  return -1;
}

int bare(int V) {
  constexpr int Stride = 4;
  switch (V) { // clean: bare `Stride` outside Engine's scope is an int
  case Stride:
    return 1;
  }
  return 0;
}
