// Fixture: D4 must fire on raw allocation in src/ files that are not
// designated allocators.
#include <cstdlib>

int *rawAllocation() {
  int *P = new int(7);                                 // D4: raw new
  void *Q = malloc(16);                                // D4: C allocation
  free(Q);                                             // D4: C allocation
  delete P;                                            // D4: raw delete
  return nullptr;
}
