// Fixture: a canonical guard and self-contained includes must lint clean.
// Lexed with virtual display path src/fixture/h1_good.h.
#ifndef HDS_FIXTURE_H1_GOOD_H
#define HDS_FIXTURE_H1_GOOD_H

#include <cstdint>
#include <vector>

struct Holder {
  std::vector<int> Values;
  uint64_t Total = 0;
};

#endif // HDS_FIXTURE_H1_GOOD_H
