// Fixture: C1 must fire on ad-hoc arithmetic on cycle counters in the
// simulator trees (virtual display path src/memsim/...).
#include <cstdint>

struct Sim {
  uint64_t Now = 0;
  uint64_t StallCycles = 0;

  void access() {
    Now += 4;          // C1: ad-hoc charge
    StallCycles += 3;  // C1: ad-hoc charge
    ++Now;             // C1: increment
  }
};
