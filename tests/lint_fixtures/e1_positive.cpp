// E1 positive fixture: switches over an hds-exhaustive enum that either
// miss an enumerator or hide behind a default.  Expected E1 findings: 3.

// hds-exhaustive
enum class Phase {
  Compute = 0,
  Stall = 1,
  Prefetch = 2,
};

const char *missingCase(Phase P) {
  switch (P) { // 1 finding: Prefetch not covered
  case Phase::Compute:
    return "compute";
  case Phase::Stall:
    return "stall";
  }
  return "unknown";
}

const char *defaulted(Phase P) {
  switch (P) { // 2 findings: default present AND Prefetch missing
  case Phase::Compute:
    return "compute";
  case Phase::Stall:
    return "stall";
  default:
    return "other";
  }
}

const char *complete(Phase P) {
  switch (P) { // clean: every enumerator, no default
  case Phase::Compute:
    return "compute";
  case Phase::Stall:
    return "stall";
  case Phase::Prefetch:
    return "prefetch";
  }
  return "unknown";
}
