// Fixture: D3 must fire on pointer-keyed ordered containers and on
// comparators ordering by raw pointer value.
#include <algorithm>
#include <map>
#include <vector>

struct Node {
  int Weight;
};

int byAddress(std::vector<Node *> &Nodes) {
  std::map<Node *, int> Ranks; // D3: pointer-keyed std::map
  std::sort(Nodes.begin(), Nodes.end(),
            [](const Node *A, const Node *B) { return A < B; }); // D3
  return static_cast<int>(Ranks.size());
}
