// Fixture: D2 must fire on iteration over unordered containers declared
// in the same file, both range-for and explicit iterator walks.
#include <unordered_map>

int sumValues() {
  std::unordered_map<int, int> Counts;
  Counts[1] = 2;
  int Sum = 0;
  for (const auto &[K, V] : Counts) // D2: range-for over unordered
    Sum += V;
  for (auto It = Counts.begin(); It != Counts.end(); ++It) // D2: walk
    Sum += It->second;
  return Sum;
}
