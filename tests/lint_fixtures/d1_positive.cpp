// Fixture: D1 must fire on ambient randomness / wall clock / environment
// reads when the file lives under src/.  This file is lexed by
// lint_test.cpp with a virtual src/ display path; it is never compiled.
#include <cstdlib>

int ambientSeed() {
  int S = rand();              // D1: banned call
  std::mt19937 Gen(42);        // D1: banned name
  const char *Home = getenv("HOME"); // D1: banned call
  (void)Gen;
  (void)Home;
  return S + static_cast<int>(time(nullptr)); // D1: banned call
}
