// Fixture: H1 must fire on a non-canonical include guard and on use of
// std symbols whose headers are not included (not self-contained).
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

struct Holder {
  std::vector<int> Values;   // H1: <vector> not included
  std::array<int, 4> Quad;   // H1: <array> not included
  std::span<const int> View; // H1: <span> not included
  uint64_t Total = 0;        // H1: <cstdint> not included
};

#endif
