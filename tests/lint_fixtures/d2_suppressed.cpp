// Fixture: D2 iteration sites annotated with ordered-ok must not be
// reported.
#include <unordered_map>

int sumValues() {
  std::unordered_map<int, int> Counts;
  Counts[1] = 2;
  int Sum = 0;
  // hds-lint: ordered-ok(summation commutes; order cannot affect the result)
  for (const auto &[K, V] : Counts)
    Sum += V;
  return Sum;
}
