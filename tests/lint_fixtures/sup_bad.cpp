// Fixture: malformed suppressions must be reported as SUP and must NOT
// silence the finding they sit next to.
#include <unordered_map>

int sumValues() {
  std::unordered_map<int, int> Counts;
  int Sum = 0;
  // hds-lint: ordered-ok
  for (const auto &[K, V] : Counts) // still D2: reason missing above
    Sum += V;
  // hds-lint: not-a-real-tag(some reason)
  for (const auto &[K, V] : Counts) // still D2: unknown tag above
    Sum += V;
  return Sum;
}
