// Fixture: the same D1 triggers as d1_positive.cpp, each carrying a
// well-formed suppression, must produce no findings.
#include <cstdlib>

int ambientSeed() {
  // hds-lint: randomness-ok(fixture exercises the suppression path)
  int S = rand();
  std::mt19937 Gen(42); // hds-lint: randomness-ok(fixture suppression)
  (void)Gen;
  // hds-lint: randomness-ok(fixture suppression)
  return S + static_cast<int>(time(nullptr));
}
