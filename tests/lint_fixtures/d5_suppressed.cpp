// Fixture: a well-formed float-cycles-ok note silences D5 (virtual
// display path src/analysis/...).

struct DisplaySmoother {
  // hds-lint: float-cycles-ok(display-only smoothing, never fed back into accounting)
  double Heat = 0;

  void decay() {
    // hds-lint: float-cycles-ok(presentation-layer decay of the copy above)
    Heat *= 0.75;
  }
};
