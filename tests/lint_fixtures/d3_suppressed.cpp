// Fixture: pointer-keyed ordering annotated with pointer-key-ok must not
// be reported.
#include <algorithm>
#include <map>
#include <vector>

struct Node {
  int Weight;
};

int byAddress(std::vector<Node *> &Nodes) {
  // hds-lint: pointer-key-ok(fixture: iteration order is never observed)
  std::map<Node *, int> Ranks;
  std::sort(Nodes.begin(), Nodes.end(),
            // hds-lint: pointer-key-ok(fixture suppression)
            [](const Node *A, const Node *B) { return A < B; });
  return static_cast<int>(Ranks.size());
}
