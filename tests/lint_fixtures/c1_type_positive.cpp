// Fixture: type-based C1 — mutating the fields the CycleAccount
// definition declares (Total, Phases) outside the defining file must
// fire, even though neither name matches the legacy Now/*Cycles net.
// Linted together with c1_account.cpp posing as the defining file.
#include <cstdint>

struct Hierarchy {
  uint64_t Total = 0;
  uint64_t Phases[8] = {};

  void tick(uint64_t Cycles) {
    Total += Cycles;     // C1: bypasses CycleAccount::charge
    Phases[0] += Cycles; // C1: bypasses CycleAccount::charge
  }
};
