// E1 suppressed fixture: intentionally non-exhaustive dispatch over an
// hds-exhaustive enum, silenced by exhaustive-ok notes.  The missing-case
// finding anchors at the switch, the default finding at the `default:`
// label, so each gets its own note.  Expected E1: 0.

// hds-exhaustive
enum class Phase {
  Compute = 0,
  Stall = 1,
  Prefetch = 2,
};

bool stalls(Phase P) {
  // hds-lint: exhaustive-ok(only the stall arm matters to this predicate)
  switch (P) {
  case Phase::Stall:
    return true;
  case Phase::Compute:
    return false;
  }
  return false;
}

const char *defaulted(Phase P) {
  switch (P) {
  case Phase::Compute:
    return "compute";
  case Phase::Stall:
    return "stall";
  case Phase::Prefetch:
    return "prefetch";
  // hds-lint: exhaustive-ok(legacy dispatch kept verbatim for comparison)
  default:
    return "other";
  }
}
