// Fixture: the designated accounting primitive pattern — every charge
// carries a cycles-ok note — must lint clean.
#include <cstdint>

struct Sim {
  uint64_t Now = 0;
  uint64_t StallCycles = 0;

  void charge(uint64_t Latency, uint64_t Stall) {
    Now += Latency;       // hds-lint: cycles-ok(designated primitive)
    StallCycles += Stall; // hds-lint: cycles-ok(designated primitive)
  }
};
