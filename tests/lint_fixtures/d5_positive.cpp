// Fixture: D5 must fire on floating-point cycle/heat accounting anywhere
// in src/ (virtual display path src/analysis/...).
#include <cstdint>

struct Stream {
  double Heat = 0;       // D5: heat counter declared as double
  float StallCycles = 0; // D5: cycle counter declared as float

  void update() {
    Heat += 0.5;          // D5: floating accumulation
    StallCycles *= 1.25f; // D5: floating scaling
  }
};

// Integer accounting and config ratios must stay clean.
struct Fine {
  uint64_t Heat = 0;
  uint64_t BusyCycles = 0;
  double HeatTraceFraction = 0.9; // a fraction, not a counter

  void bump(uint64_t Weight) {
    Heat += Weight;
    BusyCycles += 3;
  }
};
