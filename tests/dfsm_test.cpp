//===- tests/dfsm_test.cpp - Prefix-matching DFSM tests --------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "dfsm/CheckCodeGen.h"
#include "dfsm/Matchers.h"
#include "dfsm/PrefixDfsm.h"

#include "analysis/DataRef.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace hds;
using namespace hds::dfsm;

namespace {

using Streams = std::vector<std::vector<uint32_t>>;

DfsmConfig configWithHead(uint32_t HeadLength) {
  DfsmConfig C;
  C.HeadLength = HeadLength;
  return C;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

TEST(PrefixDfsmTest, EmptyStreamSet) {
  PrefixDfsm M({}, configWithHead(2));
  EXPECT_EQ(M.stateCount(), 1u); // just the start state
  EXPECT_EQ(M.transitionCount(), 0u);
  EXPECT_EQ(M.step(0, 42), 0u);
}

TEST(PrefixDfsmTest, TooShortStreamsAreSkipped) {
  PrefixDfsm M({{1, 2}}, configWithHead(2)); // all head, no tail
  EXPECT_EQ(M.skippedStreamCount(), 1u);
  EXPECT_EQ(M.stateCount(), 1u);
}

TEST(PrefixDfsmTest, SingleStreamShape) {
  // Stream abcde with headLen 2: states {}, {[v,1]}, {[v,2]}.
  PrefixDfsm M({{1, 2, 3, 4, 5}}, configWithHead(2));
  EXPECT_EQ(M.stateCount(), 3u);
  const StateId S1 = M.step(0, 1);
  ASSERT_NE(S1, 0u);
  EXPECT_TRUE(M.completionsAt(S1).empty());
  const StateId S2 = M.step(S1, 2);
  ASSERT_NE(S2, 0u);
  ASSERT_EQ(M.completionsAt(S2).size(), 1u);
  EXPECT_EQ(M.completionsAt(S2)[0], 0u);
  // Non-matching symbol resets.
  EXPECT_EQ(M.step(S1, 9), 0u);
  EXPECT_EQ(M.step(S2, 9), 0u);
  // Restart mid-match: symbol 1 from S1 goes back to {[v,1]}.
  EXPECT_EQ(M.step(S1, 1), S1);
}

TEST(PrefixDfsmTest, PaperExampleStreams) {
  // Figure 8: v = abacadae, w = bbghij, headLen 3.
  // Symbols: a=1 b=2 c=3 d=4 e=5 g=6 h=7 i=8 j=9.
  const Streams S = {{1, 2, 1, 3, 1, 4, 1, 5}, {2, 2, 6, 7, 8, 9}};
  PrefixDfsm M(S, configWithHead(3));

  // Walk v's head: a, b, a -> complete match of v.
  StateId State = M.step(0, 1);
  State = M.step(State, 2);
  // After "ab" both v (2 seen) and w (1 seen, first b) are tracked.
  {
    const auto &Elements = M.elementsOf(State);
    EXPECT_EQ(Elements.size(), 2u);
  }
  State = M.step(State, 1);
  ASSERT_EQ(M.completionsAt(State).size(), 1u);
  EXPECT_EQ(M.completionsAt(State)[0], 0u);

  // Walk w's head: b, b, g -> complete match of w.
  State = M.step(0, 2);
  State = M.step(State, 2);
  State = M.step(State, 6);
  ASSERT_EQ(M.completionsAt(State).size(), 1u);
  EXPECT_EQ(M.completionsAt(State)[0], 1u);

  // "bb" then another b: still a partial match of w (bb seen... the
  // second b also restarts [w,1]).
  State = M.step(0, 2);
  State = M.step(State, 2);
  State = M.step(State, 2);
  bool HasW2 = false;
  for (const StateElement &E : M.elementsOf(State))
    if (E.Stream == 1 && E.Seen == 2)
      HasW2 = true;
  EXPECT_TRUE(HasW2);
}

TEST(PrefixDfsmTest, StateCountNearLinear) {
  // The paper: "we usually find close to headLen*n + 1 states".
  Rng R(5);
  for (uint32_t N : {5u, 10u, 20u, 40u}) {
    Streams S;
    for (uint32_t I = 0; I < N; ++I) {
      std::vector<uint32_t> Stream;
      for (int J = 0; J < 12; ++J)
        Stream.push_back(static_cast<uint32_t>(1000 * (I + 1) + J));
      S.push_back(std::move(Stream));
    }
    PrefixDfsm M(S, configWithHead(2));
    EXPECT_EQ(M.stateCount(), 2 * N + 1) << N << " disjoint streams";
    EXPECT_FALSE(M.hitStateLimit());
  }
}

TEST(PrefixDfsmTest, SharedPrefixesMergeStates) {
  // Two streams with identical heads share their prefix states.
  const Streams S = {{1, 2, 3, 4, 5, 6}, {1, 2, 9, 8, 7, 6}};
  PrefixDfsm M(S, configWithHead(2));
  const StateId S1 = M.step(0, 1);
  const StateId S2 = M.step(S1, 2);
  // Completing state completes *both* streams.
  EXPECT_EQ(M.completionsAt(S2).size(), 2u);
}

TEST(PrefixDfsmTest, HeadLengthOneCompletesImmediately) {
  PrefixDfsm M({{7, 8, 9, 10, 11}}, configWithHead(1));
  const StateId S1 = M.step(0, 7);
  ASSERT_EQ(M.completionsAt(S1).size(), 1u);
}

TEST(PrefixDfsmTest, RepeatedHeadSymbolTracksBothPhases) {
  // Head "aa" (headLen 2): after "aa", state holds [v,2] (complete) and
  // [v,1] (restart) simultaneously — the set semantics a scalar v.seen
  // cannot express.
  PrefixDfsm M({{1, 1, 2, 3, 4, 5}}, configWithHead(2));
  StateId State = M.step(0, 1);
  State = M.step(State, 1);
  EXPECT_EQ(M.completionsAt(State).size(), 1u);
  // A third 'a' completes again (the restart element advanced).
  State = M.step(State, 1);
  EXPECT_EQ(M.completionsAt(State).size(), 1u);
}

TEST(PrefixDfsmTest, PrefixAlphabetCoversHeads) {
  const Streams S = {{1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12}};
  PrefixDfsm M(S, configWithHead(2));
  const std::vector<uint32_t> &Alphabet = M.prefixAlphabet();
  const std::set<uint32_t> Set(Alphabet.begin(), Alphabet.end());
  EXPECT_EQ(Set, (std::set<uint32_t>{1, 2, 7, 8}));
}

TEST(PrefixDfsmTest, StateLimitStopsExpansion) {
  // Many streams over a tiny alphabet force state-set blowup; the limit
  // must cap construction without crashing.
  Rng R(11);
  Streams S;
  for (int I = 0; I < 12; ++I) {
    std::vector<uint32_t> Stream;
    for (int J = 0; J < 10; ++J)
      Stream.push_back(static_cast<uint32_t>(R.nextBelow(3)));
    S.push_back(std::move(Stream));
  }
  DfsmConfig Config;
  Config.HeadLength = 4;
  Config.MaxStates = 16;
  PrefixDfsm M(S, Config);
  EXPECT_LE(M.stateCount(), 16u);
}

//===----------------------------------------------------------------------===//
// Equivalence with the executable specification (ReferenceMatcher)
//===----------------------------------------------------------------------===//

struct EquivalenceCase {
  uint64_t Seed;
  uint32_t NumStreams;
  uint32_t StreamLength;
  uint32_t HeadLength;
  uint64_t AlphabetSize;
  uint32_t SequenceLength;
};

class DfsmEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(DfsmEquivalenceTest, MatchesReferenceOnRandomSequences) {
  const EquivalenceCase &Case = GetParam();
  Rng R(Case.Seed);

  Streams S;
  for (uint32_t I = 0; I < Case.NumStreams; ++I) {
    std::vector<uint32_t> Stream;
    for (uint32_t J = 0; J < Case.StreamLength; ++J)
      Stream.push_back(static_cast<uint32_t>(R.nextBelow(Case.AlphabetSize)));
    S.push_back(std::move(Stream));
  }

  PrefixDfsm M(S, configWithHead(Case.HeadLength));
  ReferenceMatcher Ref(S, Case.HeadLength);

  StateId State = 0;
  for (uint32_t Step = 0; Step < Case.SequenceLength; ++Step) {
    const uint32_t Symbol =
        static_cast<uint32_t>(R.nextBelow(Case.AlphabetSize));
    State = M.step(State, Symbol);
    std::vector<StreamIndex> RefCompleted = Ref.step(Symbol);

    // Same state elements.
    EXPECT_EQ(M.elementsOf(State), Ref.elements()) << "step " << Step;

    // Same completions.
    std::vector<StreamIndex> DfsmCompleted = M.completionsAt(State);
    std::sort(DfsmCompleted.begin(), DfsmCompleted.end());
    std::sort(RefCompleted.begin(), RefCompleted.end());
    EXPECT_EQ(DfsmCompleted, RefCompleted) << "step " << Step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreamSets, DfsmEquivalenceTest,
    ::testing::Values(EquivalenceCase{1, 1, 6, 2, 3, 2000},
                      EquivalenceCase{2, 2, 8, 2, 4, 2000},
                      EquivalenceCase{3, 4, 10, 3, 4, 3000},
                      EquivalenceCase{4, 8, 12, 2, 8, 3000},
                      EquivalenceCase{5, 3, 6, 1, 2, 2000},
                      EquivalenceCase{6, 6, 9, 4, 5, 3000},
                      EquivalenceCase{7, 10, 15, 2, 16, 4000},
                      EquivalenceCase{8, 2, 5, 2, 2, 5000},
                      EquivalenceCase{9, 16, 12, 3, 6, 4000},
                      EquivalenceCase{10, 5, 20, 5, 4, 3000}));

//===----------------------------------------------------------------------===//
// Check code generation
//===----------------------------------------------------------------------===//

/// Builds a DataRefTable where symbol k is (pc = k / 4, addr = 0x100 * k):
/// four symbols share each pc.
analysis::DataRefTable tableForSymbols(uint32_t Count) {
  analysis::DataRefTable T;
  for (uint32_t K = 0; K < Count; ++K) {
    const analysis::RefId Id = T.intern({K / 4, 0x100ull * K});
    EXPECT_EQ(Id, K);
  }
  return T;
}

TEST(CheckCodeGenTest, ClauseCountStaysNearStreamCount) {
  // Disjoint streams: the generated code needs roughly one address group
  // per head symbol and no specific state clauses beyond the advancing
  // ones — this is the paper's <~2n checks> property (Table 2).
  Streams S;
  for (uint32_t I = 0; I < 10; ++I) {
    std::vector<uint32_t> Stream;
    for (uint32_t J = 0; J < 8; ++J)
      Stream.push_back(I * 8 + J);
    S.push_back(std::move(Stream));
  }
  analysis::DataRefTable T = tableForSymbols(80);
  PrefixDfsm M(S, configWithHead(2));
  CheckCode Code = generateCheckCode(M, T);
  // 20 head symbols -> 20 address groups; advancing transitions beyond
  // the default add at most one specific clause each.
  EXPECT_LE(Code.totalClauses(), 2 * 20u);
  EXPECT_GE(Code.totalClauses(), 20u);
}

TEST(CheckCodeGenTest, SitesCoverHeadPcsOnly) {
  const Streams S = {{0, 1, 2, 3, 4, 5, 6, 7}};
  analysis::DataRefTable T = tableForSymbols(8);
  PrefixDfsm M(S, configWithHead(2));
  CheckCode Code = generateCheckCode(M, T);
  // Head symbols 0 and 1 share pc 0; tail pcs carry no checks.
  ASSERT_EQ(Code.Sites.size(), 1u);
  EXPECT_EQ(Code.Sites[0].Pc, 0u);
  EXPECT_EQ(Code.Sites[0].Groups.size(), 2u);
}

TEST(CheckCodeGenTest, InterpreterReproducesDfsm) {
  // Interpreting the generated code must be step-for-step equivalent to
  // the DFSM itself.  (The core PrefetchEngine embeds this interpreter;
  // here we drive the structure directly.)
  Rng R(31);
  Streams S;
  for (uint32_t I = 0; I < 6; ++I) {
    std::vector<uint32_t> Stream;
    for (uint32_t J = 0; J < 10; ++J)
      Stream.push_back(static_cast<uint32_t>(R.nextBelow(24)));
    S.push_back(std::move(Stream));
  }
  analysis::DataRefTable T = tableForSymbols(24);
  PrefixDfsm M(S, configWithHead(2));
  CheckCode Code = generateCheckCode(M, T);

  StateId DfsmState = 0, CodeState = 0;
  for (int Step = 0; Step < 4000; ++Step) {
    const uint32_t Symbol = static_cast<uint32_t>(R.nextBelow(24));
    const analysis::DataRef &Ref = T.refOf(Symbol);

    DfsmState = M.step(DfsmState, Symbol);

    // Interpret the generated code at Ref.Pc (uninstrumented pcs leave
    // the state alone only if the DFSM also has no transitions there —
    // in this test every symbol's pc carries code iff it is in a head).
    const SiteCheckCode *Site = nullptr;
    for (const SiteCheckCode &Candidate : Code.Sites)
      if (Candidate.Pc == Ref.Pc)
        Site = &Candidate;
    if (Site) {
      const AddrGroupCode *Group = nullptr;
      for (const AddrGroupCode &G : Site->Groups)
        if (G.Addr == Ref.Addr)
          Group = &G;
      if (!Group) {
        CodeState = 0;
      } else {
        const CheckClause *Match = nullptr;
        for (const CheckClause &Clause : Group->Specific)
          if (Clause.FromState == CodeState) {
            Match = &Clause;
            break;
          }
        CodeState = Match ? Match->ToState : Group->DefaultToState;
      }
      EXPECT_EQ(CodeState, DfsmState) << "step " << Step;
    } else {
      // No checks at this pc: the injected program cannot see the
      // access — and by construction the DFSM has no transition for
      // tail-only symbols either, so it reset to the start state.
      EXPECT_EQ(DfsmState, 0u) << "step " << Step;
      CodeState = DfsmState;
    }
  }
}

TEST(CheckCodeGenTest, DumpMentionsPrefetches) {
  const Streams S = {{0, 1, 2, 3, 4, 5}};
  analysis::DataRefTable T = tableForSymbols(8);
  PrefixDfsm M(S, configWithHead(2));
  CheckCode Code = generateCheckCode(M, T);
  const std::string Text = Code.dump();
  EXPECT_NE(Text.find("if (accessing"), std::string::npos);
  EXPECT_NE(Text.find("prefetch tails"), std::string::npos);
  EXPECT_NE(Text.find("else state = 0;"), std::string::npos);
}

TEST(CheckCodeGenTest, NaiveStatsCountStreamsTimesHead) {
  Streams S;
  for (uint32_t I = 0; I < 7; ++I) {
    std::vector<uint32_t> Stream;
    for (uint32_t J = 0; J < 6; ++J)
      Stream.push_back(I * 6 + J);
    S.push_back(std::move(Stream));
  }
  analysis::DataRefTable T = tableForSymbols(42);
  const NaiveCheckStats Stats = computeNaiveCheckStats(S, 2, T);
  EXPECT_EQ(Stats.Clauses, 14u);
}

//===----------------------------------------------------------------------===//
// ScalarMatcherBank
//===----------------------------------------------------------------------===//

TEST(ScalarMatcherTest, MatchesSimpleHead) {
  const Streams S = {{1, 2, 3, 4, 5, 6}};
  // SymbolPcs maps symbol id -> pc: head symbols 1 and 2 live at pc 0.
  const std::vector<uint64_t> Pcs = {9, 0, 0, 1, 1, 1, 1};
  ScalarMatcherBank Bank(S, 2, Pcs);
  EXPECT_TRUE(Bank.step(1, 0).empty());
  const auto Completed = Bank.step(2, 0);
  ASSERT_EQ(Completed.size(), 1u);
  EXPECT_EQ(Completed[0], 0u);
}

TEST(ScalarMatcherTest, UninstrumentedPcLeavesCountersAlone) {
  const Streams S = {{1, 2, 3, 4, 5, 6}};
  const std::vector<uint64_t> Pcs = {9, 0, 0, 1, 1, 1, 1};
  ScalarMatcherBank Bank(S, 2, Pcs);
  Bank.step(1, 0);
  // Accesses at pc 9 (not a head pc) are invisible.
  Bank.step(99, 9);
  const auto Completed = Bank.step(2, 0);
  EXPECT_EQ(Completed.size(), 1u);
}

TEST(ScalarMatcherTest, CountsClauseEvaluations) {
  // Two streams sharing their head pcs: each access at a head pc
  // consults both streams — the redundant work the DFSM removes.
  const Streams S = {{1, 2, 3, 4, 5, 6}, {1, 7, 8, 9, 10, 11}};
  std::vector<uint64_t> Pcs(12, 1);
  Pcs[1] = 0;
  Pcs[2] = 0;
  Pcs[7] = 0;
  ScalarMatcherBank Bank(S, 2, Pcs);
  Bank.step(1, 0);
  EXPECT_EQ(Bank.clauseEvaluations(), 2u);
}

} // namespace
