//===- tests/vulcan_test.cpp - Simulated executable image tests ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "vulcan/Image.h"

#include <gtest/gtest.h>

using namespace hds::vulcan;

namespace {

TEST(ImageTest, ProcedureAndSiteRegistration) {
  Image Img;
  const ProcId P0 = Img.createProcedure("alpha");
  const ProcId P1 = Img.createProcedure("beta");
  const SiteId S0 = Img.createSite(P0, "x");
  const SiteId S1 = Img.createSite(P1, "y");
  const SiteId S2 = Img.createSite(P0, "z");

  EXPECT_EQ(Img.procedureCount(), 2u);
  EXPECT_EQ(Img.siteCount(), 3u);
  EXPECT_EQ(Img.procOf(S0), P0);
  EXPECT_EQ(Img.procOf(S1), P1);
  EXPECT_EQ(Img.procOf(S2), P0);
  EXPECT_EQ(Img.proc(P0).Name, "alpha");
  EXPECT_EQ(Img.proc(P0).Sites.size(), 2u);
}

TEST(ImageTest, SiteIdsAreGloballyUniquePcs) {
  Image Img;
  const ProcId P = Img.createProcedure("p");
  for (SiteId Expected = 0; Expected < 10; ++Expected)
    EXPECT_EQ(Img.createSite(P), Expected);
}

TEST(ImageTest, BurstyTracingInstrumentation) {
  Image Img;
  const ProcId P = Img.createProcedure("p");
  EXPECT_FALSE(Img.proc(P).DuplicatedForTracing);
  Img.instrumentForBurstyTracing();
  EXPECT_TRUE(Img.proc(P).DuplicatedForTracing);
  Img.instrumentForBurstyTracing(); // idempotent
  EXPECT_TRUE(Img.proc(P).DuplicatedForTracing);
}

TEST(ImageTest, PatchMarksOwningProcedures) {
  Image Img;
  const ProcId P0 = Img.createProcedure("p0");
  const ProcId P1 = Img.createProcedure("p1");
  const ProcId P2 = Img.createProcedure("p2");
  const SiteId A = Img.createSite(P0);
  const SiteId B = Img.createSite(P1);
  Img.createSite(P2);

  const PatchResult Result = Img.applyPatch({A, B});
  EXPECT_EQ(Result.ProceduresModified, 2u);
  EXPECT_EQ(Result.SitesInstrumented, 2u);
  EXPECT_TRUE(Img.isPatched(P0));
  EXPECT_TRUE(Img.isPatched(P1));
  EXPECT_FALSE(Img.isPatched(P2));
}

TEST(ImageTest, PatchBumpsCodeVersionOncePerProcedure) {
  Image Img;
  const ProcId P = Img.createProcedure("p");
  const SiteId A = Img.createSite(P);
  const SiteId B = Img.createSite(P);
  const uint32_t Before = Img.codeVersion(P);
  Img.applyPatch({A, B}); // two sites, one procedure
  EXPECT_EQ(Img.codeVersion(P), Before + 1);
}

TEST(ImageTest, DeoptimizationRestoresAndBumps) {
  Image Img;
  const ProcId P = Img.createProcedure("p");
  const SiteId A = Img.createSite(P);
  Img.applyPatch({A});
  const uint32_t Patched = Img.codeVersion(P);
  EXPECT_EQ(Img.removePatches(), 1u);
  EXPECT_FALSE(Img.isPatched(P));
  // Deopt is a binary modification too: frames inside the optimized copy
  // must be distinguishable.
  EXPECT_EQ(Img.codeVersion(P), Patched + 1);
}

TEST(ImageTest, RemovePatchesOnCleanImageIsNoop) {
  Image Img;
  Img.createProcedure("p");
  EXPECT_EQ(Img.removePatches(), 0u);
  EXPECT_EQ(Img.deoptimizations(), 0u);
}

TEST(ImageTest, LifetimeCountersAccumulate) {
  Image Img;
  const ProcId P = Img.createProcedure("p");
  const SiteId A = Img.createSite(P);
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    Img.applyPatch({A});
    Img.removePatches();
  }
  EXPECT_EQ(Img.patchApplications(), 3u);
  EXPECT_EQ(Img.deoptimizations(), 3u);
  EXPECT_EQ(Img.codeVersion(P), 6u);
}

TEST(ImageTest, RepatchingKeepsProcedurePatched) {
  Image Img;
  const ProcId P = Img.createProcedure("p");
  const SiteId A = Img.createSite(P);
  const SiteId B = Img.createSite(P);
  Img.applyPatch({A});
  Img.applyPatch({B});
  EXPECT_TRUE(Img.isPatched(P));
  EXPECT_EQ(Img.patchApplications(), 2u);
}

} // namespace
