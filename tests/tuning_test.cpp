//===- tests/tuning_test.cpp - Closed-loop tuning policy tests ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
//
// Unit and property tests for the per-stream closed-loop degree/distance
// controller (prefetch/TuningPolicy.h) and for the PrefetcherSelection
// value type (prefetch/Selection.h) its CLI/spec plumbing rides on.
//
//===----------------------------------------------------------------------===//

#include "prefetch/Selection.h"
#include "prefetch/TuningPolicy.h"

#include <gtest/gtest.h>

#include <vector>

using namespace hds;
using namespace hds::prefetch;

namespace {

/// Cumulative per-tag buckets the hierarchy would hand rollEpoch();
/// tests advance them by epoch deltas.
struct Buckets {
  std::vector<obs::PrefetchClassCounts> Classes;

  explicit Buckets(size_t Tags) : Classes(Tags) {}

  /// Adds one epoch's worth of activity to \p Tag's cumulative counters.
  void addEpoch(size_t Tag, uint64_t Issued, uint64_t Useful,
                uint64_t Late = 0) {
    Classes[Tag].Issued += Issued;
    Classes[Tag].Useful += Useful;
    Classes[Tag].Late += Late;
  }
};

TuningConfig smallConfig() {
  TuningConfig Cfg;
  Cfg.Enabled = true;
  Cfg.EpochAccesses = 8;
  Cfg.MaxDegree = 8;
  Cfg.MaxDistance = 4;
  Cfg.MinSample = 4;
  Cfg.ProbationEpochs = 2;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Epoch clock
//===----------------------------------------------------------------------===//

TEST(TuningPolicy, EpochClockFiresEveryEpochAccesses) {
  TuningPolicy Policy(smallConfig());
  unsigned Boundaries = 0;
  for (unsigned I = 0; I < 24; ++I)
    if (Policy.onDemandAccess())
      ++Boundaries;
  EXPECT_EQ(Boundaries, 3u);
}

TEST(TuningPolicy, RegistrationUsesFallbackDegreeCappedAtMax) {
  TuningPolicy Policy(smallConfig());
  EXPECT_EQ(Policy.degree(0, 3), 3u);
  // The fallback saturates to MaxDegree on first registration.
  EXPECT_EQ(Policy.degree(1, 100), 8u);
  // Unregistered tags report the fallback read-only and distance 0.
  EXPECT_EQ(Policy.peekDegree(9, 24), 24u);
  EXPECT_EQ(Policy.distance(9), 0u);
  EXPECT_EQ(Policy.peek(9), nullptr);
}

//===----------------------------------------------------------------------===//
// Degree rule: multiplicative decay to squelch, probation re-probe
//===----------------------------------------------------------------------===//

TEST(TuningPolicy, InaccurateStreamDecaysToSquelchThenReProbes) {
  TuningPolicy Policy(smallConfig());
  Buckets B(1);
  ASSERT_EQ(Policy.degree(0, 8), 8u);

  // Zero useful prefetches: 8 -> 4 -> 2 -> 1 -> 0 (squelched).
  for (uint32_t Want : {4u, 2u, 1u, 0u}) {
    B.addEpoch(0, /*Issued=*/16, /*Useful=*/0);
    Policy.rollEpoch(B.Classes);
    EXPECT_EQ(Policy.degree(0, 8), Want);
  }
  const TuningPolicy::StreamState *State = Policy.peek(0);
  ASSERT_NE(State, nullptr);
  EXPECT_EQ(State->Squelches, 1u);

  // Squelched streams issue nothing, so their epoch deltas are empty;
  // after ProbationEpochs boundaries the stream is probed at degree 1.
  Policy.rollEpoch(B.Classes);
  EXPECT_EQ(Policy.degree(0, 8), 0u);
  Policy.rollEpoch(B.Classes);
  EXPECT_EQ(Policy.degree(0, 8), 1u);
  EXPECT_EQ(Policy.peek(0)->Probes, 1u);
}

TEST(TuningPolicy, AccurateStreamRaisesDegreeAdditivelyToMax) {
  TuningPolicy Policy(smallConfig());
  Buckets B(1);
  ASSERT_EQ(Policy.degree(0, 2), 2u);
  // All-useful epochs: +1 per epoch, saturating at MaxDegree = 8.
  for (uint32_t Want : {3u, 4u, 5u, 6u, 7u, 8u, 8u}) {
    B.addEpoch(0, /*Issued=*/16, /*Useful=*/16);
    Policy.rollEpoch(B.Classes);
    EXPECT_EQ(Policy.degree(0, 2), Want);
  }
}

TEST(TuningPolicy, ThinEpochHoldsTheSettings) {
  TuningPolicy Policy(smallConfig());
  Buckets B(1);
  ASSERT_EQ(Policy.degree(0, 4), 4u);
  // Below MinSample the rules do not fire, however bad the ratio.
  B.addEpoch(0, /*Issued=*/3, /*Useful=*/0);
  Policy.rollEpoch(B.Classes);
  EXPECT_EQ(Policy.degree(0, 4), 4u);
}

//===----------------------------------------------------------------------===//
// Distance rule: grows while late-heavy, plateaus, cautious shrink
//===----------------------------------------------------------------------===//

TEST(TuningPolicy, LateHeavyStreamGrowsDistanceAndPlateaus) {
  TuningPolicy Policy(smallConfig());
  Buckets B(1);
  ASSERT_EQ(Policy.degree(0, 4), 4u);
  EXPECT_EQ(Policy.distance(0), 0u);

  // Accurate but late-heavy epochs (useful/(useful+late) < 1/2): the
  // distance walks up by 1 per epoch and saturates at MaxDistance = 4.
  for (uint32_t Want : {1u, 2u, 3u, 4u, 4u, 4u}) {
    B.addEpoch(0, /*Issued=*/16, /*Useful=*/6, /*Late=*/10);
    Policy.rollEpoch(B.Classes);
    EXPECT_EQ(Policy.distance(0), Want);
  }

  // Timely epochs that still see some lateness hold the distance...
  B.addEpoch(0, /*Issued=*/16, /*Useful=*/15, /*Late=*/1);
  Policy.rollEpoch(B.Classes);
  EXPECT_EQ(Policy.distance(0), 4u);
  // ...and only an epoch with zero late prefetches shrinks it.
  B.addEpoch(0, /*Issued=*/16, /*Useful=*/16, /*Late=*/0);
  Policy.rollEpoch(B.Classes);
  EXPECT_EQ(Policy.distance(0), 3u);
}

//===----------------------------------------------------------------------===//
// Purity: adjustments are a function of epoch-delta counters only
//===----------------------------------------------------------------------===//

TEST(TuningPolicy, AdjustmentsAreAPureFunctionOfEpochDeltas) {
  // Two policies fed the same per-epoch deltas on top of different
  // cumulative histories must land in identical state: the rules read
  // only the delta against the previous boundary's snapshot.
  TuningPolicy A(smallConfig());
  TuningPolicy B(smallConfig());
  Buckets BucketsA(2), BucketsB(2);

  // Policy B's tag 0 starts with a large pre-registration history that
  // the first snapshot absorbs.
  BucketsB.addEpoch(0, 1000, 900, 50);
  ASSERT_EQ(A.degree(0, 6), 6u);
  ASSERT_EQ(B.degree(0, 6), 6u);
  ASSERT_EQ(A.degree(1, 6), 6u);
  ASSERT_EQ(B.degree(1, 6), 6u);
  A.rollEpoch(BucketsA.Classes);
  B.rollEpoch(BucketsB.Classes);

  const struct {
    uint64_t Issued, Useful, Late;
  } Epochs[] = {{16, 2, 0}, {16, 16, 0}, {16, 5, 11}, {3, 0, 0}, {16, 0, 0}};
  for (const auto &E : Epochs) {
    for (size_t Tag = 0; Tag < 2; ++Tag) {
      BucketsA.addEpoch(Tag, E.Issued, E.Useful, E.Late);
      BucketsB.addEpoch(Tag, E.Issued, E.Useful, E.Late);
    }
    A.rollEpoch(BucketsA.Classes);
    B.rollEpoch(BucketsB.Classes);
    for (uint32_t Tag = 0; Tag < 2; ++Tag) {
      EXPECT_EQ(A.degree(Tag, 6), B.degree(Tag, 6));
      EXPECT_EQ(A.distance(Tag), B.distance(Tag));
    }
  }
  EXPECT_EQ(A.epochsRolled(), B.epochsRolled());
}

TEST(TuningPolicy, ResetDropsAllStreamState) {
  TuningPolicy Policy(smallConfig());
  Buckets B(1);
  ASSERT_EQ(Policy.degree(0, 4), 4u);
  B.addEpoch(0, 16, 16);
  Policy.rollEpoch(B.Classes);
  ASSERT_EQ(Policy.degree(0, 4), 5u);
  Policy.reset();
  EXPECT_EQ(Policy.epochsRolled(), 0u);
  EXPECT_EQ(Policy.peek(0), nullptr);
  EXPECT_EQ(Policy.degree(0, 4), 4u);
}

//===----------------------------------------------------------------------===//
// PrefetcherSelection token round-trip
//===----------------------------------------------------------------------===//

TEST(PrefetcherSelection, TokenRoundTripIsCanonical) {
  PrefetcherSelection Empty;
  EXPECT_EQ(Empty.token(), "none");
  EXPECT_TRUE(Empty.none());
  EXPECT_EQ(Empty.count(), 0u);

  PrefetcherSelection Sel;
  Sel.set(Prefetcher::Stream, true);
  Sel.set(Prefetcher::Stride, true);
  // Canonical printing follows Kind enumeration order regardless of the
  // order the bits were set in.
  EXPECT_EQ(Sel.token(), "stride+stream");
  EXPECT_EQ(Sel.count(), 2u);
  EXPECT_FALSE(Sel.only(Prefetcher::Stride));

  for (const char *Token :
       {"none", "stride", "duel", "stride+stream", "markov+pair+duel",
        "stride+markov+stream+pair+duel"}) {
    PrefetcherSelection Parsed;
    ASSERT_TRUE(PrefetcherSelection::parseToken(Token, Parsed)) << Token;
    EXPECT_EQ(Parsed.token(), Token);
  }

  // Reordered tokens parse, but print canonically.
  PrefetcherSelection Reordered;
  ASSERT_TRUE(PrefetcherSelection::parseToken("stream+stride", Reordered));
  EXPECT_EQ(Reordered, Sel);
  EXPECT_EQ(Reordered.token(), "stride+stream");
}

TEST(PrefetcherSelection, ParseRejectsMalformedTokens) {
  PrefetcherSelection Out;
  for (const char *Bad :
       {"", "bogus", "stride+", "+stride", "stride++markov",
        "stride+stride", "none+stride"})
    EXPECT_FALSE(PrefetcherSelection::parseToken(Bad, Out)) << Bad;
}

TEST(PrefetcherSelection, TokenListMatchesTheRoster) {
  EXPECT_EQ(PrefetcherSelection::tokenList(),
            "none|stride|markov|stream|pair|duel");
}

} // namespace
