//===- tests/sequitur_test.cpp - Sequitur grammar tests --------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "sequitur/Grammar.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using hds::Rng;
using hds::sequitur::Grammar;
using hds::sequitur::GrammarSnapshot;
using hds::sequitur::Rule;
using hds::sequitur::Symbol;

namespace {

/// Appends every character of \p Text as a terminal.
void appendString(Grammar &G, const std::string &Text) {
  for (char C : Text)
    G.append(static_cast<uint64_t>(static_cast<unsigned char>(C)));
}

/// Expands the start rule back into a string.
std::string expandToString(const Grammar &G) {
  std::string Out;
  for (uint64_t T : G.expandRule(*G.start()))
    Out.push_back(static_cast<char>(T));
  return Out;
}

TEST(SequiturTest, EmptyGrammar) {
  Grammar G;
  EXPECT_EQ(G.inputLength(), 0u);
  EXPECT_EQ(G.ruleCount(), 1u); // just the start rule
  EXPECT_TRUE(G.expandRule(*G.start()).empty());
}

TEST(SequiturTest, SingleSymbol) {
  Grammar G;
  G.append(42);
  EXPECT_EQ(G.inputLength(), 1u);
  EXPECT_EQ(expandToString(G), std::string(1, char(42)));
}

TEST(SequiturTest, NoRepetitionMakesNoRules) {
  Grammar G;
  appendString(G, "abcdefg");
  EXPECT_EQ(G.ruleCount(), 1u);
  EXPECT_EQ(expandToString(G), "abcdefg");
}

TEST(SequiturTest, SimpleRepeatFormsRule) {
  Grammar G;
  appendString(G, "abab");
  // Classic sequitur result: S -> A A, A -> a b.
  EXPECT_EQ(G.ruleCount(), 2u);
  EXPECT_EQ(expandToString(G), "abab");
  EXPECT_TRUE(G.digramUniquenessHolds());
  EXPECT_TRUE(G.ruleUtilityHolds());
}

TEST(SequiturTest, PaperFigure4Example) {
  // Figure 4: w = abaabcabcabcabc.
  Grammar G;
  appendString(G, "abaabcabcabcabc");
  EXPECT_EQ(expandToString(G), "abaabcabcabcabc");
  EXPECT_TRUE(G.digramUniquenessHolds());
  EXPECT_TRUE(G.ruleUtilityHolds());
  EXPECT_TRUE(G.rulesAreNonTrivialHolds());

  // The paper's grammar has 4 rules: S -> A a B B, A -> a b, B -> C C,
  // C -> A c.  Sequitur's exact rule set for this string is canonical.
  EXPECT_EQ(G.ruleCount(), 4u);

  // The start rule derives the whole string; some rule derives "abcabc"
  // (the hot data stream of the worked example) and some rule derives
  // "abc".
  std::vector<std::string> Expansions;
  for (const Rule *R : G.rules()) {
    std::string Word;
    for (uint64_t T : G.expandRule(*R))
      Word.push_back(static_cast<char>(T));
    Expansions.push_back(Word);
  }
  EXPECT_NE(std::find(Expansions.begin(), Expansions.end(), "abcabc"),
            Expansions.end());
  EXPECT_NE(std::find(Expansions.begin(), Expansions.end(), "abc"),
            Expansions.end());
  EXPECT_NE(std::find(Expansions.begin(), Expansions.end(), "ab"),
            Expansions.end());
}

TEST(SequiturTest, TriplesAreHandled) {
  // Runs of one symbol exercise the overlapping-digram special case.
  for (size_t Len = 1; Len <= 40; ++Len) {
    Grammar G;
    appendString(G, std::string(Len, 'a'));
    EXPECT_EQ(expandToString(G), std::string(Len, 'a')) << "length " << Len;
    EXPECT_TRUE(G.digramUniquenessHolds()) << "length " << Len;
    EXPECT_TRUE(G.ruleUtilityHolds()) << "length " << Len;
  }
}

TEST(SequiturTest, RuleUtilityInlinesSingleUseRules) {
  // "abcdbcabcd": rule for "bc" forms, then gets subsumed; whatever the
  // final shape, no rule may be used fewer than two times.
  Grammar G;
  appendString(G, "abcdbcabcd");
  EXPECT_EQ(expandToString(G), "abcdbcabcd");
  EXPECT_TRUE(G.ruleUtilityHolds());
}

TEST(SequiturTest, SnapshotMatchesGrammar) {
  Grammar G;
  appendString(G, "xyxyzxyxyzw");
  GrammarSnapshot Snap = G.snapshot();
  ASSERT_EQ(Snap.Rules.size(), G.ruleCount());
  std::vector<uint64_t> FromSnap = Snap.expand(0);
  std::vector<uint64_t> FromGrammar = G.expandRule(*G.start());
  EXPECT_EQ(FromSnap, FromGrammar);
}

TEST(SequiturTest, DumpShowsRules) {
  Grammar G;
  appendString(G, "abab");
  const std::string Dump = G.dump();
  EXPECT_NE(Dump.find("R0 ->"), std::string::npos);
  EXPECT_NE(Dump.find("R1"), std::string::npos);
}

TEST(SequiturTest, TotalRhsSymbolsCountsGrammarSize) {
  Grammar G;
  appendString(G, "abab");
  // S -> A A (2 symbols), A -> a b (2 symbols).
  EXPECT_EQ(G.totalRhsSymbols(), 4u);
}

//===----------------------------------------------------------------------===//
// Property tests over random inputs
//===----------------------------------------------------------------------===//

struct RandomInputCase {
  uint64_t Seed;
  size_t Length;
  uint64_t AlphabetSize;
};

class SequiturPropertyTest : public ::testing::TestWithParam<RandomInputCase> {
};

TEST_P(SequiturPropertyTest, ExpansionEqualsInputAndInvariantsHold) {
  const RandomInputCase &Case = GetParam();
  Rng Rand(Case.Seed);
  Grammar G;
  std::vector<uint64_t> Input;
  Input.reserve(Case.Length);
  for (size_t I = 0; I < Case.Length; ++I) {
    const uint64_t T = Rand.nextBelow(Case.AlphabetSize);
    Input.push_back(T);
    G.append(T);
  }
  EXPECT_EQ(G.inputLength(), Case.Length);
  EXPECT_EQ(G.expandRule(*G.start()), Input);
  EXPECT_TRUE(G.digramUniquenessHolds());
  EXPECT_TRUE(G.ruleUtilityHolds());
  EXPECT_TRUE(G.rulesAreNonTrivialHolds());
  std::string Why;
  EXPECT_TRUE(G.checkInvariants(&Why)) << Why;

  // The snapshot agrees too.
  EXPECT_EQ(G.snapshot().expand(0), Input);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, SequiturPropertyTest,
    ::testing::Values(
        RandomInputCase{1, 10, 2}, RandomInputCase{2, 100, 2},
        RandomInputCase{3, 1000, 2}, RandomInputCase{4, 100, 4},
        RandomInputCase{5, 1000, 4}, RandomInputCase{6, 5000, 4},
        RandomInputCase{7, 100, 16}, RandomInputCase{8, 1000, 16},
        RandomInputCase{9, 10000, 16}, RandomInputCase{10, 1000, 256},
        RandomInputCase{11, 10000, 256}, RandomInputCase{12, 2000, 3},
        RandomInputCase{13, 3000, 5}, RandomInputCase{14, 20000, 8},
        RandomInputCase{15, 500, 2}, RandomInputCase{16, 50000, 64}));

/// Repetitive inputs (the interesting case for compression).
TEST(SequiturTest, PeriodicInputCompressesWell) {
  Grammar G;
  std::vector<uint64_t> Input;
  for (int Rep = 0; Rep < 200; ++Rep)
    for (uint64_t T : {uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{4},
                       uint64_t{5}, uint64_t{6}, uint64_t{7}, uint64_t{8}}) {
      Input.push_back(T);
      G.append(T);
    }
  EXPECT_EQ(G.expandRule(*G.start()), Input);
  // 1600 symbols compress into a grammar far smaller than the input.
  EXPECT_LT(G.totalRhsSymbols(), 100u);
  EXPECT_TRUE(G.digramUniquenessHolds());
  EXPECT_TRUE(G.ruleUtilityHolds());
}

} // namespace

//===----------------------------------------------------------------------===//
// Adversarially structured inputs
//===----------------------------------------------------------------------===//

namespace {

/// Thue-Morse words are overlap-free (no factor of the form xyxyx), the
/// worst case for digram-based compression.
std::string thueMorse(unsigned Order) {
  std::string Word = "a";
  for (unsigned I = 0; I < Order; ++I) {
    std::string Next;
    for (char C : Word) {
      Next += C;
      Next += (C == 'a') ? 'b' : 'a';
    }
    Word = Next;
  }
  return Word;
}

/// Fibonacci words are Sturmian: maximally repetitive without being
/// periodic, the best case for hierarchical inference.
std::string fibonacciWord(unsigned Order) {
  std::string Previous = "b", Current = "a";
  for (unsigned I = 0; I < Order; ++I) {
    std::string Next = Current + Previous;
    Previous = std::move(Current);
    Current = std::move(Next);
  }
  return Current;
}

TEST(SequiturStructuredTest, ThueMorseInvariantsAndRoundTrip) {
  for (unsigned Order : {4u, 8u, 12u}) {
    const std::string Word = thueMorse(Order);
    Grammar G;
    appendString(G, Word);
    EXPECT_EQ(expandToString(G), Word) << "order " << Order;
    EXPECT_TRUE(G.digramUniquenessHolds()) << "order " << Order;
    EXPECT_TRUE(G.ruleUtilityHolds()) << "order " << Order;
  }
}

TEST(SequiturStructuredTest, FibonacciWordCompressesLogarithmically) {
  const std::string Word = fibonacciWord(20); // 10946 symbols
  Grammar G;
  appendString(G, Word);
  EXPECT_EQ(expandToString(G), Word);
  EXPECT_TRUE(G.digramUniquenessHolds());
  EXPECT_TRUE(G.ruleUtilityHolds());
  // Sturmian structure compresses to a grammar logarithmic in the input.
  EXPECT_LT(G.totalRhsSymbols(), 200u);
}

TEST(SequiturStructuredTest, NestedRepetition) {
  // ((ab)^4 c)^8 d repeated: deeply nested structure.
  std::string Unit;
  for (int I = 0; I < 4; ++I)
    Unit += "ab";
  Unit += 'c';
  std::string Big;
  for (int I = 0; I < 8; ++I)
    Big += Unit;
  Big += 'd';
  std::string Input;
  for (int I = 0; I < 5; ++I)
    Input += Big;

  Grammar G;
  appendString(G, Input);
  EXPECT_EQ(expandToString(G), Input);
  EXPECT_TRUE(G.digramUniquenessHolds());
  EXPECT_TRUE(G.ruleUtilityHolds());
  EXPECT_LT(G.totalRhsSymbols(), 60u);
}

TEST(SequiturStructuredTest, AlternatingPairsWithSeparators) {
  // Burst-boundary-like input: motif fragments separated by unique ids.
  Grammar G;
  std::vector<uint64_t> Input;
  uint64_t Unique = 1000;
  for (int Burst = 0; Burst < 50; ++Burst) {
    for (int Phase = Burst % 4; Phase < 12; ++Phase) {
      Input.push_back(100 + static_cast<uint64_t>(Phase));
      G.append(100 + static_cast<uint64_t>(Phase));
    }
    Input.push_back(Unique);
    G.append(Unique++);
  }
  EXPECT_EQ(G.expandRule(*G.start()), Input);
  EXPECT_TRUE(G.digramUniquenessHolds());
  EXPECT_TRUE(G.ruleUtilityHolds());
}

TEST(SequiturStructuredTest, LargeAlphabetNoCrashNearTagBoundary) {
  // Terminals close to (but below) the 2^63 tag boundary must work.
  Grammar G;
  const uint64_t Big = Grammar::MaxTerminal;
  std::vector<uint64_t> Input = {Big, Big - 1, Big, Big - 1, Big, Big - 1};
  for (uint64_t T : Input)
    G.append(T);
  EXPECT_EQ(G.expandRule(*G.start()), Input);
  EXPECT_TRUE(G.digramUniquenessHolds());
}

} // namespace

namespace {

TEST(SequiturTest, DumpWithTerminalNames) {
  Grammar G;
  appendString(G, "abab");
  const std::string Dump = G.dump(+[](uint64_t T) {
    return std::string(1, static_cast<char>(T));
  });
  EXPECT_NE(Dump.find("a b"), std::string::npos);
  EXPECT_EQ(Dump.find("97"), std::string::npos); // no raw codes
}

TEST(SequiturTest, RulesListStartsWithStartRule) {
  Grammar G;
  appendString(G, "xyxyxy");
  const std::vector<const Rule *> Rules = G.rules();
  ASSERT_FALSE(Rules.empty());
  EXPECT_EQ(Rules.front(), G.start());
  for (size_t I = 1; I < Rules.size(); ++I)
    EXPECT_GT(Rules[I]->id(), Rules[I - 1]->id());
}

//===----------------------------------------------------------------------===//
// checkInvariants (the combined oracle entry point)
//===----------------------------------------------------------------------===//

TEST(SequiturTest, CheckInvariantsHoldsAfterEveryAppend) {
  // The paper's Figure 4 input, checked exhaustively at every prefix —
  // this is the contract the trace fuzzer's grammar oracle relies on.
  Grammar G;
  std::string Why;
  for (char C : std::string("abcabcabcabcabc")) {
    G.append(static_cast<uint64_t>(C));
    EXPECT_TRUE(G.checkInvariants(&Why))
        << "after " << G.inputLength() << " appends: " << Why;
  }
}

TEST(SequiturTest, CheckInvariantsHoldsOnEmptyGrammar) {
  Grammar G;
  std::string Why;
  EXPECT_TRUE(G.checkInvariants(&Why)) << Why;
}

TEST(SequiturTest, CheckInvariantsHoldsOnTripleRuns) {
  // aaaa...: the classic overlapping-digram corner case.
  Grammar G;
  std::string Why;
  for (int I = 0; I < 64; ++I) {
    G.append(7);
    EXPECT_TRUE(G.checkInvariants(&Why))
        << "after " << G.inputLength() << " appends: " << Why;
  }
}

} // namespace
