//===- tests/obs_test.cpp - Observability subsystem tests -------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Tests for the typed observability layer (src/obs) and the engine's
// metric registry built on top of it: the cycle account's clock/phase
// coupling, the phase timeline invariants, stable-id uniqueness, and the
// registry <-> wire <-> JSON agreement that makes the metric ids the one
// source of truth for every serializer.
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentRunner.h"
#include "engine/MetricRegistry.h"
#include "engine/ResultsJson.h"
#include "engine/Wire.h"
#include "obs/CycleAccount.h"
#include "obs/Metrics.h"
#include "obs/PrefetchStats.h"
#include "obs/Timeline.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <type_traits>
#include <vector>

using namespace hds;
using namespace hds::engine;

namespace {

//===----------------------------------------------------------------------===//
// CycleAccount
//===----------------------------------------------------------------------===//

TEST(CycleAccountTest, ChargeAdvancesClockAndPhaseTogether) {
  obs::CycleAccount Account;
  Account.charge(10, obs::CyclePhase::PureCompute);
  Account.charge(4, obs::CyclePhase::DemandStall);
  Account.charge(1, obs::CyclePhase::DynamicCheck);
  EXPECT_EQ(Account.total(), 15u);
  EXPECT_EQ(Account.phase(obs::CyclePhase::PureCompute), 10u);
  EXPECT_EQ(Account.phase(obs::CyclePhase::DemandStall), 4u);
  EXPECT_EQ(Account.phase(obs::CyclePhase::DynamicCheck), 1u);
}

TEST(CycleAccountTest, PhasesPartitionTheClock) {
  obs::CycleAccount Account;
  uint64_t Expected = 0;
  for (std::size_t Phase = 0; Phase < obs::NumCyclePhases; ++Phase) {
    Account.charge(Phase * 7 + 1, static_cast<obs::CyclePhase>(Phase));
    Expected += Phase * 7 + 1;
  }
  EXPECT_EQ(Account.total(), Expected);
  EXPECT_EQ(Account.snapshot().total(), Account.total());

  uint64_t Sum = 0;
  for (std::size_t Phase = 0; Phase < obs::NumCyclePhases; ++Phase)
    Sum += Account.phase(static_cast<obs::CyclePhase>(Phase));
  EXPECT_EQ(Sum, Account.total());
}

TEST(CycleAccountTest, StallCyclesCoversFullAndPartialDemandStall) {
  obs::CycleAccount Account;
  Account.charge(100, obs::CyclePhase::DemandStall);
  Account.charge(13, obs::CyclePhase::PartialHitStall);
  Account.charge(50, obs::CyclePhase::PureCompute);
  EXPECT_EQ(Account.stallCycles(), 113u);
}

TEST(CycleAccountTest, ResetClearsEverything) {
  obs::CycleAccount Account;
  Account.charge(42, obs::CyclePhase::Analysis);
  Account.reset();
  EXPECT_EQ(Account.total(), 0u);
  EXPECT_EQ(Account.phase(obs::CyclePhase::Analysis), 0u);
}

TEST(CycleAccountTest, EveryPhaseHasAStableName) {
  std::set<std::string> Names;
  for (std::size_t Phase = 0; Phase < obs::NumCyclePhases; ++Phase) {
    const char *Name =
        obs::cyclePhaseName(static_cast<obs::CyclePhase>(Phase));
    EXPECT_STRNE(Name, "unknown");
    Names.insert(Name);
  }
  EXPECT_EQ(Names.size(), obs::NumCyclePhases); // all distinct
}

//===----------------------------------------------------------------------===//
// Timeline
//===----------------------------------------------------------------------===//

TEST(TimelineTest, BeginClosesThePreviousSpan) {
  obs::Timeline Timeline;
  Timeline.begin("awake", 0);
  Timeline.begin("analysis", 100);
  Timeline.begin("hibernation", 130);
  Timeline.closeOpen(500);

  ASSERT_EQ(Timeline.spans().size(), 3u);
  EXPECT_EQ(Timeline.spans()[0].Name, "awake");
  EXPECT_EQ(Timeline.spans()[0].BeginCycle, 0u);
  EXPECT_EQ(Timeline.spans()[0].EndCycle, 100u);
  EXPECT_FALSE(Timeline.spans()[0].Open);
  EXPECT_EQ(Timeline.spans()[1].EndCycle, 130u);
  EXPECT_EQ(Timeline.spans()[2].EndCycle, 500u);
  EXPECT_FALSE(Timeline.spans()[2].Open);
}

TEST(TimelineTest, SpansAreAGapFreePartition) {
  obs::Timeline Timeline;
  Timeline.begin("a", 0);
  Timeline.begin("b", 10);
  Timeline.begin("c", 25);
  Timeline.closeOpen(40);
  for (std::size_t I = 1; I < Timeline.spans().size(); ++I)
    EXPECT_EQ(Timeline.spans()[I].BeginCycle,
              Timeline.spans()[I - 1].EndCycle);
}

TEST(TimelineTest, ZeroLengthSpansAreDropped) {
  obs::Timeline Timeline;
  Timeline.begin("awake", 0);
  Timeline.begin("analysis", 50);
  Timeline.begin("hibernation", 50); // analysis lasted zero cycles
  Timeline.closeOpen(80);
  ASSERT_EQ(Timeline.spans().size(), 2u);
  EXPECT_EQ(Timeline.spans()[0].Name, "awake");
  EXPECT_EQ(Timeline.spans()[1].Name, "hibernation");
}

//===----------------------------------------------------------------------===//
// Prefetch effectiveness figures of merit
//===----------------------------------------------------------------------===//

TEST(StreamPrefetchStatsTest, FiguresOfMeritHandleZeroDenominators) {
  obs::StreamPrefetchStats Empty;
  EXPECT_EQ(Empty.accuracy(), 0.0);
  EXPECT_EQ(Empty.timeliness(), 0.0);

  obs::StreamPrefetchStats S;
  S.Issued = 10;
  S.Useful = 6;
  S.Late = 2;
  EXPECT_DOUBLE_EQ(S.accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(S.timeliness(), 0.75);
}

//===----------------------------------------------------------------------===//
// MetricRegistry
//===----------------------------------------------------------------------===//

TEST(MetricRegistryTest, HasEveryBlockInDocumentOrder) {
  const std::vector<MetricBlock> &Registry = metricRegistry();
  ASSERT_EQ(Registry.size(), 8u);
  EXPECT_STREQ(Registry[0].Name, "result");
  EXPECT_STREQ(Registry[1].Name, "phase");
  EXPECT_STREQ(Registry[2].Name, "memory");
  EXPECT_STREQ(Registry[3].Name, "cache");
  EXPECT_STREQ(Registry[4].Name, "cycle_breakdown");
  EXPECT_STREQ(Registry[5].Name, "stream");
  EXPECT_STREQ(Registry[6].Name, "prefetcher");
  EXPECT_STREQ(Registry[7].Name, "timing");
  for (const MetricBlock &Block : Registry)
    EXPECT_FALSE(Block.Metrics.empty()) << Block.Name;
}

TEST(MetricRegistryTest, IdsAreUniqueAndDocumentedWithinEachBlock) {
  for (const MetricBlock &Block : metricRegistry()) {
    std::set<std::string> Ids;
    for (const obs::MetricDef &Def : Block.Metrics) {
      EXPECT_TRUE(Ids.insert(Def.Id).second)
          << "duplicate id '" << Def.Id << "' in block " << Block.Name;
      EXPECT_NE(Def.Unit, nullptr);
      EXPECT_STRNE(Def.Unit, "");
      EXPECT_NE(Def.Doc, nullptr);
      EXPECT_STRNE(Def.Doc, "");
    }
  }
}

TEST(MetricRegistryTest, TracksTheAppendOnlyCycleBreakdownShape) {
  // One metric per cycle phase, in enum order, named by cyclePhaseName —
  // the registry, the enum, and the serialized shape can't drift apart.
  const MetricBlock *Breakdown = nullptr;
  for (const MetricBlock &Block : metricRegistry())
    if (std::string(Block.Name) == "cycle_breakdown")
      Breakdown = &Block;
  ASSERT_NE(Breakdown, nullptr);
  ASSERT_EQ(Breakdown->Metrics.size(), obs::NumCyclePhases);
  for (std::size_t Phase = 0; Phase < obs::NumCyclePhases; ++Phase)
    EXPECT_STREQ(Breakdown->Metrics[Phase].Id,
                 obs::cyclePhaseName(static_cast<obs::CyclePhase>(Phase)));
}

TEST(MetricRegistryTest, FindMetricLooksUpByBlockAndId) {
  const obs::MetricDef *Stall = findMetric("memory", "stall_cycles");
  ASSERT_NE(Stall, nullptr);
  EXPECT_STREQ(Stall->Unit, "cycles");
  EXPECT_EQ(findMetric("memory", "no_such_metric"), nullptr);
  EXPECT_EQ(findMetric("no_such_block", "stall_cycles"), nullptr);
}

TEST(MetricRegistryTest, IdentityFieldsMatchTheSpecEcho) {
  const std::vector<const char *> &Fields = specIdentityFields();
  ASSERT_FALSE(Fields.empty());
  std::set<std::string> Unique(Fields.begin(), Fields.end());
  EXPECT_EQ(Unique.size(), Fields.size());
  // Identity fields are spec echo, never metrics.
  for (const char *Field : Fields)
    for (const MetricBlock &Block : metricRegistry())
      for (const obs::MetricDef &Def : Block.Metrics)
        EXPECT_STRNE(Def.Id, Field);
}

//===----------------------------------------------------------------------===//
// Registry <-> wire <-> JSON agreement
//===----------------------------------------------------------------------===//

/// An Ok result with every registered counter set to a distinct value.
RunResult denseResult() {
  RunResult Result;
  Result.Spec.Workload = "vpr";
  Result.State = RunResult::Status::Ok;
  Result.Iterations = 5;
  Result.Cycles = 99;
  uint64_t Fill = 1000;
  auto Assign = [&Fill](const obs::MetricDef &, auto &Field) {
    Field = static_cast<std::remove_reference_t<decltype(Field)>>(Fill++);
  };
  core::visitRunStatsMetrics(Result.Stats, Assign);
  memsim::visitHierarchyStatsMetrics(Result.Memory, Assign);
  memsim::visitCacheStatsMetrics(Result.L1, Assign);
  memsim::visitCacheStatsMetrics(Result.L2, Assign);
  core::CycleStats Phase;
  core::visitCycleStatsMetrics(Phase, Assign);
  Result.Stats.Cycles.push_back(Phase);
  obs::visitCycleBreakdownMetrics(Result.Breakdown, Assign);
  obs::StreamPrefetchStats Stream;
  obs::visitStreamPrefetchStatsMetrics(Stream, Assign);
  Result.Streams.push_back(Stream);
  obs::PrefetcherStats Prefetcher;
  obs::visitPrefetcherStatsMetrics(Prefetcher, Assign);
  Result.Prefetchers.push_back(Prefetcher);
  visitResultTimingMetrics(Result.Timing, Assign);
  return Result;
}

/// TimingInfo that turns on the per-result "timing" object (the
/// registry's "timing" block only reaches the JSON when a caller
/// measures wall clock and opts in).
TimingInfo perResultTiming() {
  TimingInfo Timing;
  Timing.IncludePerResult = true;
  return Timing;
}

TEST(MetricRegistryTest, EveryRegisteredIdAppearsInTheJson) {
  const std::string Json =
      resultsToJson(std::vector<RunResult>{denseResult()}, perResultTiming());
  for (const MetricBlock &Block : metricRegistry())
    for (const obs::MetricDef &Def : Block.Metrics) {
      std::string Needle(1, '"');
      Needle += Def.Id;
      Needle += "\":";
      EXPECT_NE(Json.find(Needle), std::string::npos)
          << "metric " << Block.Name << "." << Def.Id
          << " registered but absent from the JSON";
    }
}

TEST(MetricRegistryTest, WireRoundTripPreservesEveryRegisteredMetric) {
  const RunResult Original = denseResult();
  uint64_t Index = 0;
  RunResult Decoded;
  std::string Error;
  ASSERT_TRUE(wire::decodeResult(wire::encodeResult(21, Original), Index,
                                 Decoded, Error))
      << Error;
  // Byte-identical JSON == every registered field survived the trip
  // (timing enabled so the wall-clock gauges are covered too).
  EXPECT_EQ(
      resultsToJson(std::vector<RunResult>{Decoded}, perResultTiming()),
      resultsToJson(std::vector<RunResult>{Original}, perResultTiming()));
}

} // namespace
