//===- tests/lint_test.cpp - hds_lint rule engine tests ---------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Drives the hds_lint rule engine in-process over the fixture files in
// tests/lint_fixtures/.  Each rule has a positive fixture (the rule must
// fire) and a suppressed fixture (a well-formed `// hds-lint: <tag>(<why>)`
// note must silence it).  Fixtures are lexed with *virtual* display paths
// so the path-scoped rules (D1/D4 in src/, C1 in src/memsim, H1 guards)
// behave exactly as they do on the real tree.
//
//===----------------------------------------------------------------------===//

#include "lint/Lexer.h"
#include "lint/Rules.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace hds::lint;

namespace {

std::string readFixture(const std::string &Name) {
  const std::string Path = std::string(HDS_LINT_FIXTURE_DIR) + "/" + Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open fixture " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Lexes fixture \p Name as if it lived at \p DisplayPath and lints it in
/// isolation.
std::vector<Finding> lintFixture(const std::string &Name,
                                 const std::string &DisplayPath) {
  std::vector<hds::lint::LexedFile> Files;
  Files.push_back(lexSource(DisplayPath, readFixture(Name)));
  return runLint(Files);
}

/// Histogram of finding rule ids.
std::map<std::string, int> idCounts(const std::vector<Finding> &Fs) {
  std::map<std::string, int> Counts;
  for (const Finding &F : Fs)
    ++Counts[F.RuleId];
  return Counts;
}

std::string dump(const std::vector<Finding> &Fs) {
  std::string S;
  for (const Finding &F : Fs)
    S += formatFinding(F) + "\n";
  return S;
}

//===----------------------------------------------------------------------===//
// D1: ambient nondeterminism
//===----------------------------------------------------------------------===//

TEST(LintD1Test, FiresOnRandomClockAndEnvironment) {
  auto Fs = lintFixture("d1_positive.cpp", "src/fixture/d1_positive.cpp");
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["D1"], 4) << dump(Fs); // rand, mt19937, getenv, time
  EXPECT_EQ(static_cast<int>(Fs.size()), Counts["D1"]) << dump(Fs);
}

TEST(LintD1Test, DoesNotFireOutsideSrc) {
  auto Fs = lintFixture("d1_positive.cpp", "tools/fixture/d1_positive.cpp");
  EXPECT_EQ(idCounts(Fs)["D1"], 0) << dump(Fs);
}

TEST(LintD1Test, SuppressionSilencesFindings) {
  auto Fs = lintFixture("d1_suppressed.cpp", "src/fixture/d1_suppressed.cpp");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintD1Test, MethodCallsAreNotFreeCalls) {
  // A member function named `time` is not the libc call.
  auto File = lexSource("src/fixture/inline.cpp",
                        "int f(Clock &C) { return C.time() + Obj->rand(); }");
  auto Fs = runLint({File});
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintD1Test, StringsAndCommentsAreIgnored) {
  auto File = lexSource("src/fixture/inline.cpp",
                        "// rand() in a comment\n"
                        "const char *S = \"rand() time() getenv()\";\n");
  auto Fs = runLint({File});
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// D2: unordered iteration
//===----------------------------------------------------------------------===//

TEST(LintD2Test, FiresOnRangeForAndIteratorWalk) {
  auto Fs = lintFixture("d2_positive.cpp", "src/fixture/d2_positive.cpp");
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["D2"], 2) << dump(Fs);
}

TEST(LintD2Test, OrderedOkSilencesFindings) {
  auto Fs = lintFixture("d2_suppressed.cpp", "src/fixture/d2_suppressed.cpp");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintD2Test, TracksDeclarationsAcrossIncludes) {
  // Header declares the unordered member; the .cpp iterates it.  The
  // cross-file index must connect the two through the quoted include.
  auto Header = lexSource("src/fixture/Store.h",
                          "#ifndef HDS_FIXTURE_STORE_H\n"
                          "#define HDS_FIXTURE_STORE_H\n"
                          "#include <unordered_map>\n"
                          "inline std::unordered_map<int, int> Table;\n"
                          "#endif // HDS_FIXTURE_STORE_H\n");
  auto Impl = lexSource("src/fixture/Store.cpp",
                        "#include \"fixture/Store.h\"\n"
                        "int sum() {\n"
                        "  int S = 0;\n"
                        "  for (auto &KV : Table) S += KV.second;\n"
                        "  return S;\n"
                        "}\n");
  auto Fs = runLint({Header, Impl});
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["D2"], 1) << dump(Fs);
  ASSERT_FALSE(Fs.empty());
  EXPECT_EQ(Fs.front().Path, "src/fixture/Store.cpp");
}

TEST(LintD2Test, ClassicIndexLoopIsFine) {
  auto File = lexSource("src/fixture/inline.cpp",
                        "#include <unordered_map>\n"
                        "std::unordered_map<int, int> M;\n"
                        "int f(int K) { return M.count(K) ? M.at(K) : 0; }\n");
  auto Fs = runLint({File});
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// D3: pointer-keyed ordering
//===----------------------------------------------------------------------===//

TEST(LintD3Test, FiresOnPointerKeyedMapAndComparator) {
  auto Fs = lintFixture("d3_positive.cpp", "src/fixture/d3_positive.cpp");
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["D3"], 2) << dump(Fs);
}

TEST(LintD3Test, PointerKeyOkSilencesFindings) {
  auto Fs = lintFixture("d3_suppressed.cpp", "src/fixture/d3_suppressed.cpp");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintD3Test, ValueKeyedMapIsFine) {
  auto File = lexSource("src/fixture/inline.cpp",
                        "#include <map>\n"
                        "std::map<int, int> ByValue;\n"
                        "std::map<const char *, int> ByName; // still flagged\n");
  auto Fs = runLint({File});
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["D3"], 1) << dump(Fs); // only the pointer-keyed one
}

//===----------------------------------------------------------------------===//
// D4: raw allocation
//===----------------------------------------------------------------------===//

TEST(LintD4Test, FiresOnNewDeleteAndCAllocation) {
  auto Fs = lintFixture("d4_positive.cpp", "src/fixture/d4_positive.cpp");
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["D4"], 4) << dump(Fs); // new, malloc, free, delete
}

TEST(LintD4Test, FileWideAllocOkSilencesEverySite) {
  auto Fs = lintFixture("d4_suppressed.cpp", "src/fixture/d4_suppressed.cpp");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintD4Test, DoesNotFireOutsideSrc) {
  auto Fs = lintFixture("d4_positive.cpp", "tests/fixture/d4_positive.cpp");
  EXPECT_EQ(idCounts(Fs)["D4"], 0) << dump(Fs);
}

TEST(LintD4Test, MakeUniqueAndDefaultedOperatorsAreFine) {
  auto File = lexSource("src/fixture/inline.cpp",
                        "#include <memory>\n"
                        "struct S { void *operator new(unsigned long); };\n"
                        "auto P = std::make_unique<int>(3);\n");
  auto Fs = runLint({File});
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// H1: header hygiene
//===----------------------------------------------------------------------===//

TEST(LintH1Test, FiresOnWrongGuardAndMissingIncludes) {
  auto Fs = lintFixture("h1_bad.h", "src/fixture/h1_bad.h");
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["H1"], 5)
      << dump(Fs); // guard, vector, array, span, uint64_t
  bool MentionsCanonical = false;
  for (const Finding &F : Fs)
    if (F.FixHint.find("HDS_FIXTURE_H1_BAD_H") != std::string::npos)
      MentionsCanonical = true;
  EXPECT_TRUE(MentionsCanonical) << dump(Fs);
}

TEST(LintH1Test, CanonicalSelfContainedHeaderIsClean) {
  auto Fs = lintFixture("h1_good.h", "src/fixture/h1_good.h");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintH1Test, HeaderOkSilencesFindings) {
  auto Fs = lintFixture("h1_suppressed.h", "src/fixture/h1_suppressed.h");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintH1Test, DoesNotApplyToSourceFiles) {
  auto Fs = lintFixture("h1_bad.h", "src/fixture/h1_bad_as_source.cpp");
  EXPECT_EQ(idCounts(Fs)["H1"], 0) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// C1: cycle accounting
//===----------------------------------------------------------------------===//

TEST(LintC1Test, FiresOnAdHocCycleArithmeticInMemsim) {
  auto Fs = lintFixture("c1_positive.cpp", "src/memsim/c1_positive.cpp");
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["C1"], 3) << dump(Fs); // Now +=, StallCycles +=, ++Now
}

TEST(LintC1Test, DoesNotFireOutsideSimulatorTrees) {
  auto Fs = lintFixture("c1_positive.cpp", "src/analysis/c1_positive.cpp");
  EXPECT_EQ(idCounts(Fs)["C1"], 0) << dump(Fs);
}

TEST(LintC1Test, CyclesOkSuppressionStillSilencesLegacyNames) {
  auto Fs = lintFixture("c1_suppressed.cpp", "src/memsim/c1_suppressed.cpp");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintC1Test, TypeNetFlagsAccountFieldMutationsOutsideDefiningFile) {
  // The real tree's protection: C1 reads the CycleAccount definition,
  // learns its field names (Total, Phases), and flags mutations of them
  // anywhere else in the simulator trees — no name pattern involved.
  std::vector<LexedFile> Files;
  Files.push_back(lexSource("src/obs/CycleAccount.cpp",
                            readFixture("c1_account.cpp")));
  Files.push_back(lexSource("src/memsim/bad.cpp",
                            readFixture("c1_type_positive.cpp")));
  auto Fs = runLint(Files);
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["C1"], 2) << dump(Fs); // Total +=, Phases[0] +=
  for (const Finding &F : Fs)
    EXPECT_EQ(F.Path, "src/memsim/bad.cpp") << dump(Fs);
}

TEST(LintC1Test, TypeNetCoversObsTree) {
  std::vector<LexedFile> Files;
  Files.push_back(lexSource("src/obs/CycleAccount.cpp",
                            readFixture("c1_account.cpp")));
  Files.push_back(lexSource("src/obs/other.cpp",
                            readFixture("c1_type_positive.cpp")));
  auto Fs = runLint(Files);
  EXPECT_EQ(idCounts(Fs)["C1"], 2) << dump(Fs);
}

TEST(LintC1Test, DefiningFileIsStructurallyExempt) {
  // The primitive itself needs no suppression comments.
  auto Fs = lintFixture("c1_account.cpp", "src/obs/CycleAccount.cpp");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintC1Test, TypeNetIsInertWithoutTheDefinition) {
  // Total/Phases match no legacy pattern, so without the class
  // definition in the linted set nothing fires.
  auto Fs = lintFixture("c1_type_positive.cpp", "src/memsim/bad.cpp");
  EXPECT_EQ(idCounts(Fs)["C1"], 0) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// D5: floating-point cycle / heat accounting
//===----------------------------------------------------------------------===//

TEST(LintD5Test, FiresOnFloatDeclarationsAndAccumulation) {
  auto Fs = lintFixture("d5_positive.cpp", "src/analysis/d5_positive.cpp");
  auto Counts = idCounts(Fs);
  // double Heat, float StallCycles, Heat += 0.5, StallCycles *= 1.25f
  EXPECT_EQ(Counts["D5"], 4) << dump(Fs);
  EXPECT_EQ(static_cast<int>(Fs.size()), Counts["D5"]) << dump(Fs);
}

TEST(LintD5Test, DoesNotFireOutsideSrc) {
  auto Fs = lintFixture("d5_positive.cpp", "bench/fixture/d5_positive.cpp");
  EXPECT_EQ(idCounts(Fs)["D5"], 0) << dump(Fs);
}

TEST(LintD5Test, FloatCyclesOkSilencesFindings) {
  auto Fs =
      lintFixture("d5_suppressed.cpp", "src/analysis/d5_suppressed.cpp");
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintD5Test, IntegerAccumulationAndRatiosAreFine) {
  auto File = lexSource("src/analysis/clean.cpp",
                        "#include <cstdint>\n"
                        "struct S { uint64_t Heat = 0; double "
                        "HeatTraceFraction = 0.9; };\n"
                        "void f(S &X) { X.Heat += 2; }\n");
  auto Fs = runLint({File});
  EXPECT_EQ(idCounts(Fs)["D5"], 0) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// SUP: suppression hygiene
//===----------------------------------------------------------------------===//

TEST(LintSupTest, MalformedSuppressionsAreReportedAndIgnored) {
  auto Fs = lintFixture("sup_bad.cpp", "src/fixture/sup_bad.cpp");
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["SUP"], 2) << dump(Fs); // missing reason, unknown tag
  EXPECT_EQ(Counts["D2"], 2) << dump(Fs);  // neither note suppresses
}

TEST(LintSupTest, SuppressionOnlyCoversTheNextLine) {
  auto File = lexSource("src/fixture/inline.cpp",
                        "// hds-lint: randomness-ok(covers only line 2)\n"
                        "int A = 0;\n"
                        "int B = rand();\n");
  auto Fs = runLint({File});
  auto Counts = idCounts(Fs);
  EXPECT_EQ(Counts["D1"], 1) << dump(Fs);
}

//===----------------------------------------------------------------------===//
// Driver-level behaviour
//===----------------------------------------------------------------------===//

TEST(LintDriverTest, OnlyRulesFilterRestrictsTheRun) {
  std::vector<hds::lint::LexedFile> Files;
  Files.push_back(lexSource("src/fixture/d1_positive.cpp",
                            readFixture("d1_positive.cpp")));
  LintOptions Opts;
  Opts.OnlyRules = {"D4"};
  auto Fs = runLint(Files, Opts);
  EXPECT_TRUE(Fs.empty()) << dump(Fs);
}

TEST(LintDriverTest, FindingsAreSortedByPathLineRule) {
  std::vector<hds::lint::LexedFile> Files;
  Files.push_back(lexSource("src/fixture/b.cpp", "int X = rand();\n"));
  Files.push_back(lexSource("src/fixture/a.cpp",
                            "int Y = rand();\nint Z = rand();\n"));
  auto Fs = runLint(Files);
  ASSERT_EQ(Fs.size(), 3u) << dump(Fs);
  EXPECT_EQ(Fs[0].Path, "src/fixture/a.cpp");
  EXPECT_EQ(Fs[0].Line, 1u);
  EXPECT_EQ(Fs[1].Line, 2u);
  EXPECT_EQ(Fs[2].Path, "src/fixture/b.cpp");
}

TEST(LintDriverTest, FormatIncludesPathLineRuleAndHint) {
  Finding F{"D1", "src/x.cpp", 12, "message text", "hint text"};
  const std::string S = formatFinding(F);
  EXPECT_NE(S.find("src/x.cpp:12: [D1] message text"), std::string::npos)
      << S;
  EXPECT_NE(S.find("fix: hint text"), std::string::npos) << S;
}

TEST(LintDriverTest, EveryRuleHasCatalogEntryWithSummary) {
  bool SawSup = false;
  for (const RuleInfo &R : ruleCatalog()) {
    EXPECT_NE(R.Id, nullptr);
    EXPECT_NE(R.Summary, nullptr);
    std::string Id = R.Id;
    if (Id == "SUP" || Id == "W1" || Id == "STALE") {
      SawSup |= Id == "SUP";
      EXPECT_EQ(R.Tag, nullptr) << Id << " must not be suppressible";
    } else {
      EXPECT_NE(R.Tag, nullptr) << Id;
    }
  }
  EXPECT_TRUE(SawSup);
}

} // namespace
