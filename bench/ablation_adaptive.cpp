//===- bench/ablation_adaptive.cpp - Adaptive hibernation ------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Section 5.2, discussing Saavedra & Park's adaptive execution: "They
// also discuss adaptive profiling: when profiling information changes,
// the profiler starts polling more frequently.  This idea may be a
// useful extension to our simpler hibernation approach."
//
// This bench implements and evaluates that extension: when consecutive
// optimization cycles detect essentially the same hot data streams, the
// hibernation phase doubles (profile less while behaviour is stable);
// when the stream set shifts, it snaps back to the base length.  On the
// stationary benchmarks this trims the recurring profiling/analysis
// cost; on the phase-changing program it must not hurt adaptation.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

namespace {

void adaptive(core::OptimizerConfig &Config) {
  Config.AdaptiveHibernation = true;
}

std::string hibernationTrail(const core::RunStats &Stats) {
  std::string Trail;
  for (const core::CycleStats &Cycle : Stats.Cycles) {
    if (!Trail.empty())
      Trail += ",";
    Trail += formatString("%llu",
                          (unsigned long long)Cycle.NextHibernationPeriods);
  }
  return Trail.empty() ? "-" : Trail;
}

} // namespace

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Ablation: adaptive hibernation (the §5.2 extension) ==\n");
  std::printf("Dyn-pref %% vs original; trail = hibernation burst-periods "
              "chosen after each cycle (base 150)\n\n");

  Table Out;
  Out.row()
      .cell("benchmark")
      .cell("fixed")
      .cell("adaptive")
      .cell("cycles")
      .cell("hibernation trail");

  std::vector<std::string> Names = workloads::allWorkloadNames();
  Names.push_back("twophase");
  for (const std::string &Name : Names) {
    const RunResult Original =
        runWorkload(Name, core::RunMode::Original, Scale);
    const RunResult Fixed =
        runWorkload(Name, core::RunMode::DynamicPrefetch, Scale);
    const RunResult Adaptive = runWorkload(
        Name, core::RunMode::DynamicPrefetch, Scale, adaptive);

    Out.row()
        .cell(Name)
        .cell(overheadPercent(Fixed.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(Adaptive.Cycles, Original.Cycles), "%+.1f%%")
        .cell(formatString("%zu->%zu", Fixed.Stats.Cycles.size(),
                           Adaptive.Stats.Cycles.size()))
        .cell(hibernationTrail(Adaptive.Stats));
  }
  Out.print();
  std::printf("\nexpected: stable benchmarks stretch their hibernation "
              "(fewer, cheaper cycles, equal or better net time); the "
              "phase change in twophase snaps it back to the base\n");
  return 0;
}
