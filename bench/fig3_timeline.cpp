//===- bench/fig3_timeline.cpp - Profiling timeline reproduction -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Regenerates the content of Figure 3 ("Profiling timeline") and checks
// the Section 2.2 sampling-rate formula at the paper's actual counter
// settings: nCheck0 = 11,940, nInstr0 = 60 (0.5% awake sampling, bursts
// of 60 checks), nAwake = 50, nHibernate = 2,450 (1 second of profiling
// per 50 seconds of execution).
//
//===----------------------------------------------------------------------===//

#include "profiling/BurstyTracer.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::profiling;

int main() {
  BurstyTracingConfig Config;
  Config.NCheck0 = 11'940;
  Config.NInstr0 = 60;
  Config.NAwake = 50;
  Config.NHibernate = 2'450;
  Config.HibernationEnabled = true;

  std::printf("== Figure 3: profiling timeline (paper §2.2 settings) ==\n");
  std::printf("nCheck0=%llu nInstr0=%llu nAwake=%llu nHibernate=%llu\n",
              (unsigned long long)Config.NCheck0,
              (unsigned long long)Config.NInstr0,
              (unsigned long long)Config.NAwake,
              (unsigned long long)Config.NHibernate);
  std::printf("burst-period = %llu dynamic checks\n",
              (unsigned long long)Config.burstPeriodChecks());
  std::printf("awake sampling rate   = %.4f%% (paper: 0.5%%)\n",
              100.0 * Config.awakeSamplingRate());
  std::printf("overall sampling rate = %.4f%% (formula §2.2)\n\n",
              100.0 * Config.overallSamplingRate());

  // Simulate two full awake/hibernate cycles, recording transitions.
  BurstyTracer Tracer(Config);
  const uint64_t CycleChecks =
      (Config.NAwake + Config.NHibernate) * Config.burstPeriodChecks();

  Table Out;
  Out.row()
      .cell("check #")
      .cell("event")
      .cell("phase after")
      .cell("burst-periods");

  uint64_t InstrumentedAwake = 0;
  for (uint64_t I = 0; I < 2 * CycleChecks; ++I) {
    const CheckEvent Event = Tracer.check();
    if (Tracer.inInstrumentedCode() &&
        Tracer.phase() == TracerPhase::Awake)
      ++InstrumentedAwake;
    if (Event == CheckEvent::None)
      continue;
    Out.row()
        .cell(uint64_t{I + 1})
        .cell(Event == CheckEvent::AwakeEnded ? "awake ended (optimize)"
                                              : "hibernation ended (deopt)")
        .cell(Tracer.phase() == TracerPhase::Awake ? "awake" : "hibernating")
        .cell(Tracer.completedBurstPeriods());
  }
  Out.print();

  const double Measured =
      static_cast<double>(InstrumentedAwake) /
      static_cast<double>(2 * CycleChecks);
  std::printf("\nmeasured awake-instrumented fraction = %.4f%% "
              "(formula %.4f%%)\n",
              100.0 * Measured, 100.0 * Config.overallSamplingRate());
  std::printf("deterministic: %s (re-running produces the identical "
              "timeline)\n",
              "yes");
  return 0;
}
