//===- bench/BenchHarness.h - Shared figure-bench plumbing -----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the benches that regenerate the paper's figures
/// and tables: run one benchmark under one RunMode and report cycles plus
/// the collected statistics.  "% overhead" follows the paper's Figures
/// 11/12: normalized to the execution time of the original unoptimized
/// program; positive values indicate performance degradation and negative
/// values indicate speedup.
///
/// All benches accept an optional scale factor as argv[1] (default 1.0)
/// multiplying each benchmark's iteration count — useful for quick local
/// runs (e.g. `fig12_prefetching 0.25`).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_BENCH_BENCHHARNESS_H
#define HDS_BENCH_BENCHHARNESS_H

#include "core/Runtime.h"
#include "workloads/Workload.h"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace hds {
namespace bench {

/// Outcome of one benchmark run.
struct RunResult {
  uint64_t Cycles = 0;
  core::RunStats Stats;
  memsim::HierarchyStats Memory;
  memsim::CacheStats L1;
  memsim::CacheStats L2;
};

/// Runs \p WorkloadName under \p Mode for its default iteration count
/// scaled by \p Scale.  \p Tweak (optional) may adjust the configuration
/// before the runtime is constructed.
inline RunResult
runWorkload(const std::string &WorkloadName, core::RunMode Mode,
            double Scale = 1.0,
            void (*Tweak)(core::OptimizerConfig &) = nullptr) {
  std::unique_ptr<workloads::Workload> Bench =
      workloads::createWorkload(WorkloadName);
  assert(Bench && "unknown workload");

  core::OptimizerConfig Config;
  Config.Mode = Mode;
  if (Tweak)
    Tweak(Config);

  core::Runtime Rt(Config);
  Bench->setup(Rt);
  const uint64_t Iterations = static_cast<uint64_t>(
      static_cast<double>(Bench->defaultIterations()) * Scale);
  Bench->run(Rt, Iterations > 0 ? Iterations : 1);

  RunResult Result;
  Result.Cycles = Rt.cycles();
  Result.Stats = Rt.stats();
  Result.Memory = Rt.memory().stats();
  Result.L1 = Rt.memory().l1().stats();
  Result.L2 = Rt.memory().l2().stats();
  return Result;
}

/// % overhead of \p Cycles relative to \p BaselineCycles (negative =
/// speedup), as plotted in Figures 11 and 12.
inline double overheadPercent(uint64_t Cycles, uint64_t BaselineCycles) {
  return 100.0 * (static_cast<double>(Cycles) -
                  static_cast<double>(BaselineCycles)) /
         static_cast<double>(BaselineCycles);
}

/// Parses the optional argv[1] scale factor.
inline double parseScale(int Argc, char **Argv) {
  if (Argc < 2)
    return 1.0;
  const double Scale = std::atof(Argv[1]);
  if (Scale <= 0.0) {
    std::fprintf(stderr, "usage: %s [scale > 0]\n", Argv[0]);
    std::exit(1);
  }
  return Scale;
}

} // namespace bench
} // namespace hds

#endif // HDS_BENCH_BENCHHARNESS_H
