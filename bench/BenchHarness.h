//===- bench/BenchHarness.h - Shared figure-bench plumbing -----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the benches that regenerate the paper's figures
/// and tables, now a thin adapter over the experiment engine
/// (src/engine): one benchmark under one RunMode is one ExperimentSpec,
/// and a whole figure is a matrix the engine can shard across cores.
/// "% overhead" follows the paper's Figures 11/12: normalized to the
/// execution time of the original unoptimized program; positive values
/// indicate performance degradation and negative values indicate
/// speedup.
///
/// All benches accept an optional scale factor as argv[1] (default 1.0)
/// multiplying each benchmark's iteration count — useful for quick local
/// runs (e.g. `fig12_prefetching 0.25`).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_BENCH_BENCHHARNESS_H
#define HDS_BENCH_BENCHHARNESS_H

#include "core/Runtime.h"
#include "engine/ExecutorFactory.h"
#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "workloads/Workload.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace hds {
namespace bench {

/// Outcome of one benchmark run (the engine's result record; benches use
/// the Cycles/Stats/Memory/L1/L2 fields).
using RunResult = engine::RunResult;

/// Runs \p WorkloadName under \p Mode for its default iteration count
/// scaled by \p Scale.  \p Tweak (optional) may adjust the configuration
/// before the runtime is constructed.
inline RunResult
runWorkload(const std::string &WorkloadName, core::RunMode Mode,
            double Scale = 1.0,
            void (*Tweak)(core::OptimizerConfig &) = nullptr) {
  engine::ExperimentSpec Spec;
  Spec.Workload = WorkloadName;
  Spec.Mode = Mode;
  Spec.Scale = Scale;
  RunResult Result = engine::runExperiment(Spec, Tweak);
  assert(Result.ok() && "unknown workload");
  return Result;
}

/// Matrix entry point: runs every spec through the local executor
/// (engine::makeLocal), sharded across \p Jobs worker threads, and
/// returns results in spec order.  Results are byte-identical for any
/// job count; benches that fan out whole figures use this instead of
/// serial runWorkload loops.
inline std::vector<RunResult>
runSpecs(const std::vector<engine::ExperimentSpec> &Specs,
         unsigned Jobs = 1) {
  engine::FleetConfig Config;
  Config.Jobs = Jobs;
  return engine::makeLocal(Config)->run(Specs);
}

/// % overhead of \p Cycles relative to \p BaselineCycles (negative =
/// speedup), as plotted in Figures 11 and 12.
inline double overheadPercent(uint64_t Cycles, uint64_t BaselineCycles) {
  return 100.0 * (static_cast<double>(Cycles) -
                  static_cast<double>(BaselineCycles)) /
         static_cast<double>(BaselineCycles);
}

/// Parses the optional argv[1] scale factor.  Rejects anything that is
/// not a finite number > 0 — a garbled scale would silently run every
/// benchmark at nonsense iteration counts.
inline double parseScale(int Argc, char **Argv) {
  if (Argc < 2)
    return 1.0;
  char *End = nullptr;
  const double Scale = std::strtod(Argv[1], &End);
  if (End == Argv[1] || *End != '\0' || !std::isfinite(Scale) ||
      Scale <= 0.0) {
    std::fprintf(stderr,
                 "%s: invalid scale '%s' (expected a finite number > 0)\n",
                 Argv[0], Argv[1]);
    std::exit(1);
  }
  return Scale;
}

} // namespace bench
} // namespace hds

#endif // HDS_BENCH_BENCHHARNESS_H
