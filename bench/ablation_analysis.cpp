//===- bench/ablation_analysis.cpp - Fast vs precise stream detection ------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Section 2.3: "Larus describes an algorithm for finding a set of hot
// data streams from a Sequitur grammar [21]; we use a faster, less
// precise algorithm that relies more heavily on the ability of Sequitur
// to infer hierarchical structure.  ...  The running time of the
// algorithm is linear in the size of the grammar."
//
// This bench quantifies the trade: on synthetic temporal profiles with
// planted hot streams it measures wall-clock analysis time (including
// grammar construction for the fast path, since that happens online
// anyway), the number of streams found, and the fraction of the trace the
// reported streams cover.
//
//===----------------------------------------------------------------------===//

#include "analysis/Coverage.h"
#include "analysis/FastAnalyzer.h"
#include "analysis/PreciseAnalyzer.h"
#include "analysis/SubpathAnalyzer.h"
#include "sequitur/Grammar.h"
#include "support/Rng.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <vector>

using namespace hds;
using namespace hds::analysis;

namespace {

/// A synthetic temporal profile: M distinct hot motifs of length L,
/// interleaved with unique cold references — the structure bursty tracing
/// produces for chain-walking programs.
std::vector<uint32_t> makeTrace(Rng &Rand, size_t Length, uint32_t Motifs,
                                uint32_t MotifLen) {
  std::vector<uint32_t> Trace;
  Trace.reserve(Length);
  uint32_t NextCold = 1'000'000;
  while (Trace.size() < Length) {
    if (Rand.nextBool(0.7)) {
      const uint32_t M = static_cast<uint32_t>(Rand.nextBelow(Motifs));
      for (uint32_t J = 0; J < MotifLen; ++J)
        Trace.push_back(1000 + M * 100 + J);
    } else {
      // Cold refs never repeat (fresh ids).
      for (int J = 0; J < 6; ++J)
        Trace.push_back(NextCold++);
    }
  }
  Trace.resize(Length);
  return Trace;
}

double seconds(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main() {
  std::printf("== Ablation: fast grammar analysis vs precise detection "
              "(§2.3) ==\n\n");

  Table Out;
  Out.row()
      .cell("trace len")
      .cell("fast ms")
      .cell("subpath ms")
      .cell("precise ms")
      .cell("fast streams")
      .cell("subpath streams")
      .cell("precise streams")
      .cell("fast cov")
      .cell("subpath cov")
      .cell("precise cov");

  Rng Rand(2026);
  for (size_t Length : {5'000ull, 20'000ull, 50'000ull, 100'000ull}) {
    const std::vector<uint32_t> Trace = makeTrace(Rand, Length, 24, 14);

    AnalysisConfig Config;
    Config.MinLength = 8;
    Config.MaxLength = 60;
    Config.HeatThreshold = Length / 100; // streams covering >= 1%

    // Fast path: build the grammar (as the online profiler would) and run
    // the linear Figure 5 pass.
    const auto FastStart = std::chrono::steady_clock::now();
    sequitur::Grammar Grammar;
    for (uint32_t T : Trace)
      Grammar.append(T);
    const FastAnalysisResult Fast =
        analyzeHotStreams(Grammar.snapshot(), Config);
    const double FastSeconds = seconds(FastStart);

    // Larus-style subpath analysis on the grammar (finds streams that
    // cross rule boundaries; §2.3's precise-but-grammar-based middle
    // ground).
    const auto SubpathStart = std::chrono::steady_clock::now();
    const SubpathAnalysisResult Subpath =
        analyzeHotSubpaths(Grammar.snapshot(), Config);
    const double SubpathSeconds = seconds(SubpathStart);

    // Precise path: exact enumeration over the raw trace.
    const auto PreciseStart = std::chrono::steady_clock::now();
    const PreciseAnalysisResult Precise =
        analyzeHotStreamsPrecisely(Trace, Config);
    const double PreciseSeconds = seconds(PreciseStart);

    Out.row()
        .cell(uint64_t{Length})
        .cell(FastSeconds * 1e3, "%.1f")
        .cell(SubpathSeconds * 1e3, "%.1f")
        .cell(PreciseSeconds * 1e3, "%.1f")
        .cell(uint64_t{Fast.Streams.size()})
        .cell(uint64_t{Subpath.Streams.size()})
        .cell(uint64_t{Precise.Streams.size()})
        .cell(traceCoverage(Trace, Fast.Streams), "%.2f")
        .cell(traceCoverage(Trace, Subpath.Streams), "%.2f")
        .cell(traceCoverage(Trace, Precise.Streams), "%.2f");
  }
  Out.print();
  std::printf("\npaper: the fast analysis trades some precision for a "
              "running time linear in the (compressed) grammar size — "
              "it must find most of what the exact detector finds at a "
              "fraction of the cost.  The Larus-style grammar subpath "
              "analysis [21] additionally finds streams that cross rule "
              "boundaries, with exact occurrence counts; note this "
              "simplified reconstruction omits Larus' candidate pruning, "
              "so unlike his it is not faster than trace-based "
              "enumeration — only the Figure-5 pass is cheap enough to "
              "run online\n");
  return 0;
}
