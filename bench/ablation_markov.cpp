//===- bench/ablation_markov.cpp - vs correlation-based prefetching --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Section 5.1 positions Markov (correlation-based) hardware prefetching
// [16] as the technique "most similar" to hot data stream prefetching,
// and claims the software scheme's advantages include "more global
// access pattern analysis" and "using more context for its predictions
// than digrams of data accesses".
//
// This bench compares: the Markov prefetcher alone (digram successor
// prediction on miss addresses, 2 and 4 successor slots), hot data
// stream prefetching alone, and both together.  The Markov predictor
// prefetches only one miss ahead per step and mispredicts at stream
// interleaving points; stream prefetching runs a whole tail ahead after
// one two-reference match.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

namespace {

uint32_t GSuccessors = 2;

void enableMarkov(core::OptimizerConfig &Config) {
  Config.Prefetchers.Enabled.set(prefetch::Prefetcher::Markov, true);
  Config.Prefetchers.MarkovCfg.SuccessorsPerNode = GSuccessors;
}

} // namespace

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Ablation: Markov correlation prefetching vs hot data "
              "streams (§5.1) ==\n");
  std::printf("%% vs original (negative = faster)\n\n");

  Table Out;
  Out.row()
      .cell("benchmark")
      .cell("markov(2)")
      .cell("markov(4)")
      .cell("Dyn-pref")
      .cell("Dyn-pref+markov(2)");

  for (const std::string &Name : workloads::allWorkloadNames()) {
    const RunResult Original =
        runWorkload(Name, core::RunMode::Original, Scale);
    GSuccessors = 2;
    const RunResult Markov2 =
        runWorkload(Name, core::RunMode::Original, Scale, enableMarkov);
    GSuccessors = 4;
    const RunResult Markov4 =
        runWorkload(Name, core::RunMode::Original, Scale, enableMarkov);
    const RunResult Dyn =
        runWorkload(Name, core::RunMode::DynamicPrefetch, Scale);
    GSuccessors = 2;
    const RunResult Both = runWorkload(
        Name, core::RunMode::DynamicPrefetch, Scale, enableMarkov);

    Out.row()
        .cell(Name)
        .cell(overheadPercent(Markov2.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(Markov4.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(Dyn.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(Both.Cycles, Original.Cycles), "%+.1f%%");
  }
  Out.print();
  std::printf("\nreading: with generous table state and free (hardware) "
              "issue, miss-correlation is very effective on these "
              "stationary, deterministic benchmarks — more so than the "
              "paper's prose suggests for real programs, where miss "
              "streams are far less repeatable and table state costs "
              "megabytes (Joseph & Grunwald dedicated 1-4 MB).  The "
              "stream scheme achieves its wins with ~100 DFSM states of "
              "software state, adapts across phases, and composes with "
              "the hardware schemes (last column).\n");
  return 0;
}
