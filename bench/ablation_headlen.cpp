//===- bench/ablation_headlen.cpp - Prefix-match length sensitivity --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Section 4.3 of the paper evaluates the hot data stream prefix matching
// length: matching a single element lowered the checking overhead "but at
// the cost of less effective prefetching, yielding a net performance
// loss"; matching three elements "increased this overhead without
// providing any corresponding benefit in prefetching accuracy, resulting
// in a net performance loss as well".  The paper settles on 2.
//
// This bench sweeps headLen over {1, 2, 3} for every benchmark in two
// configurations:
//
//  * literal head placement (the paper's setup: match each stream's
//    first references) — reproducing the §4.3 trade-off, and
//  * quiet head placement (this implementation's improvement: slide the
//    matched window to the stream's least-trafficked program points),
//    which recovers most of headLen=1's accuracy loss by preferring
//    unambiguous references.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

namespace {

uint32_t GHeadLength = 2;
bool GQuietPlacement = false;

void tweak(core::OptimizerConfig &Config) {
  Config.Dfsm.HeadLength = GHeadLength;
  Config.QuietHeadPlacement = GQuietPlacement;
}

void sweep(double Scale, bool QuietPlacement) {
  GQuietPlacement = QuietPlacement;
  Table Out;
  Out.row()
      .cell("benchmark")
      .cell("headLen=1")
      .cell("headLen=2")
      .cell("headLen=3")
      .cell("acc@1")
      .cell("acc@2")
      .cell("acc@3");

  for (const std::string &Name : workloads::allWorkloadNames()) {
    const RunResult Original =
        runWorkload(Name, core::RunMode::Original, Scale);

    double Net[3] = {0, 0, 0};
    double Accuracy[3] = {0, 0, 0};
    for (uint32_t Head = 1; Head <= 3; ++Head) {
      GHeadLength = Head;
      const RunResult Result =
          runWorkload(Name, core::RunMode::DynamicPrefetch, Scale, tweak);
      Net[Head - 1] = overheadPercent(Result.Cycles, Original.Cycles);
      const uint64_t Issued = Result.Memory.PrefetchesIssued;
      const uint64_t Useful =
          Result.L1.UsefulPrefetches + Result.L2.UsefulPrefetches;
      Accuracy[Head - 1] =
          Issued == 0
              ? 0.0
              : static_cast<double>(Useful) / static_cast<double>(Issued);
    }

    Out.row()
        .cell(Name)
        .cell(Net[0], "%+.1f%%")
        .cell(Net[1], "%+.1f%%")
        .cell(Net[2], "%+.1f%%")
        .cell(Accuracy[0], "%.2f")
        .cell(Accuracy[1], "%.2f")
        .cell(Accuracy[2], "%.2f");
  }
  Out.print();
}

} // namespace

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Ablation: hot data stream prefix match length (§4.3) ==\n");
  std::printf("net Dyn-pref %% vs original | useful-prefetch fraction\n");

  std::printf("\n-- literal head placement (the paper's setup) --\n");
  sweep(Scale, /*QuietPlacement=*/false);
  std::printf("\npaper: headLen=1 cheaper checks but less accurate; "
              "headLen=3 more overhead, no accuracy gain; 2 is the sweet "
              "spot\n");

  std::printf("\n-- quiet head placement (this implementation's default) "
              "--\n");
  sweep(Scale, /*QuietPlacement=*/true);
  std::printf("\nextension: sliding the matched window to quiet, "
              "unambiguous references recovers headLen=1's accuracy "
              "loss\n");
  return 0;
}
