//===- bench/table2_characterization.cpp - Table 2 reproduction ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Regenerates Table 2, "Detailed dynamic prefetching characterization":
// per benchmark, the number of optimization cycles and — averaged per
// cycle — traced references, hot data streams detected, DFSM size
// (states, check transitions), and procedures modified.
//
// Paper values: 3–55 cycles; 67k–88k traced refs/cycle; 14–41 hds/cycle;
// DFSMs of <29..79 states, 28..74 checks>; 6–12 procedures modified.
// (Traced-reference magnitudes here are smaller in proportion to the
// scaled-down burst-period/phase lengths; see DESIGN.md §4.)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Table 2: detailed dynamic prefetching characterization ==\n");
  std::printf("(per-cycle averages, like the paper)\n\n");

  Table Out;
  Out.row()
      .cell("benchmark")
      .cell("# opt. cycles")
      .cell("traced refs")
      .cell("# hds")
      .cell("DFSM")
      .cell("# procs modified");

  for (const std::string &Name : workloads::allWorkloadNames()) {
    const RunResult Result =
        runWorkload(Name, core::RunMode::DynamicPrefetch, Scale);

    RunningStat Traced, Streams, States, Checks, Procs;
    for (const core::CycleStats &Cycle : Result.Stats.Cycles) {
      Traced.addSample(static_cast<double>(Cycle.TracedRefs));
      Streams.addSample(static_cast<double>(Cycle.StreamsInstalled));
      States.addSample(static_cast<double>(Cycle.DfsmStates));
      // The paper counts injected check clauses, not raw DFSM edges
      // (restart edges fold into per-address default arms; see
      // dfsm/CheckCodeGen.h).
      Checks.addSample(static_cast<double>(Cycle.CheckClausesInjected));
      Procs.addSample(static_cast<double>(Cycle.ProceduresModified));
    }

    Out.row()
        .cell(Name)
        .cell(uint64_t{Result.Stats.Cycles.size()})
        .cell(formatString("%.0f", Traced.mean()))
        .cell(formatString("%.0f", Streams.mean()))
        .cell(formatString("<%.0f states, %.0f checks>", States.mean(),
                           Checks.mean()))
        .cell(formatString("%.0f", Procs.mean()));
  }
  Out.print();
  std::printf("\npaper: cycles 3..55, hds 14..41/cycle, DFSM <29..79 "
              "states, 28..74 checks>, procs 6..12\n");
  return 0;
}
