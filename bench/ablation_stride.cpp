//===- bench/ablation_stride.cpp - Stride prefetching as a complement ------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Section 4.3: "manual examination of the hot data addresses indicates
// that many will not be successfully prefetched using a simple
// stride-based prefetching scheme.  However, a stride-based prefetcher
// could complement our scheme by prefetching data address sequences that
// do not qualify as hot data streams."
//
// This bench tests both halves of that claim: a classic PC-indexed
// stride prefetcher alone (it accelerates the strided cold scans but not
// the pointer chains), hot data stream prefetching alone (the converse),
// and the combination (which should win, because the two cover disjoint
// miss classes).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

namespace {

void enableStride(core::OptimizerConfig &Config) {
  Config.Prefetchers.Enabled.set(prefetch::Prefetcher::Stride, true);
}

} // namespace

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Ablation: stride prefetching as a complement (§4.3) ==\n");
  std::printf("%% vs original (negative = faster)\n\n");

  Table Out;
  Out.row()
      .cell("benchmark")
      .cell("stride only")
      .cell("Dyn-pref only")
      .cell("Dyn-pref + stride")
      .cell("stride pf")
      .cell("stream pf");

  for (const std::string &Name : workloads::allWorkloadNames()) {
    const RunResult Original =
        runWorkload(Name, core::RunMode::Original, Scale);
    const RunResult StrideOnly =
        runWorkload(Name, core::RunMode::Original, Scale, enableStride);
    const RunResult DynOnly =
        runWorkload(Name, core::RunMode::DynamicPrefetch, Scale);
    const RunResult Combined = runWorkload(
        Name, core::RunMode::DynamicPrefetch, Scale, enableStride);

    Out.row()
        .cell(Name)
        .cell(overheadPercent(StrideOnly.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(DynOnly.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(Combined.Cycles, Original.Cycles), "%+.1f%%")
        .cell(StrideOnly.Memory.PrefetchesIssued)
        .cell(DynOnly.Stats.PrefetchesRequested);
  }
  Out.print();
  std::printf("\npaper's claim: stride prefetching cannot cover the hot "
              "data streams, but complements them on sequential data — "
              "the combination should be the fastest column\n");
  return 0;
}
