//===- bench/fig11_overhead.cpp - Figure 11 reproduction -------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Regenerates Figure 11, "Overhead of online profiling and analysis":
// for each benchmark, the % overhead (vs. the original program) of
//   Base — just the dynamic checks, (virtually) no profiling
//          (nCheck extremely large, nInstr = 1),
//   Prof — collecting the sampled temporal data reference profile at the
//          production counter settings, and
//   Hds  — Prof plus hot data stream analysis every awake phase.
//
// Paper shape: Base 2.5% (boxsim) .. 6% (parser); Prof adds at most
// ~1.6%; Hds adds at most ~1.4%; overall 3% (mcf) .. 7% (parser/vortex).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Figure 11: overhead of online profiling and analysis ==\n");
  std::printf("%% overhead vs. original program\n\n");

  Table Out;
  Out.row()
      .cell("benchmark")
      .cell("Base")
      .cell("Prof")
      .cell("Hds")
      .cell("traced refs")
      .cell("checks");

  for (const std::string &Name : workloads::allWorkloadNames()) {
    const RunResult Original =
        runWorkload(Name, core::RunMode::Original, Scale);
    const RunResult Base = runWorkload(Name, core::RunMode::ChecksOnly, Scale);
    const RunResult Prof = runWorkload(Name, core::RunMode::Profile, Scale);
    const RunResult Hds =
        runWorkload(Name, core::RunMode::ProfileAnalyze, Scale);

    Out.row()
        .cell(Name)
        .cell(overheadPercent(Base.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(Prof.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(Hds.Cycles, Original.Cycles), "%+.1f%%")
        .cell(Hds.Stats.TracedRefs)
        .cell(Hds.Stats.ChecksExecuted);
  }
  Out.print();
  std::printf("\npaper: Base 2.5..6%%, Prof <= Base+1.6%%, "
              "Hds <= Prof+1.4%%; overall 3..7%%\n");
  return 0;
}
