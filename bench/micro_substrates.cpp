//===- bench/micro_substrates.cpp - Substrate throughput microbenches ------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// google-benchmark microbenchmarks for the building blocks: Sequitur
// append throughput, hot-stream analysis, DFSM construction and stepping,
// and the cache/hierarchy models.  Not a paper experiment — engineering
// sanity for the substrates everything else stands on.
//
//===----------------------------------------------------------------------===//

#include "analysis/FastAnalyzer.h"
#include "analysis/PreciseAnalyzer.h"
#include "dfsm/PrefixDfsm.h"
#include "memsim/MemoryHierarchy.h"
#include "sequitur/Grammar.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace hds;

namespace {

std::vector<uint32_t> motifTrace(size_t Length, uint32_t Motifs,
                                 uint32_t MotifLen, uint64_t Seed) {
  Rng Rand(Seed);
  std::vector<uint32_t> Trace;
  Trace.reserve(Length + MotifLen);
  uint32_t Cold = 1 << 20;
  while (Trace.size() < Length) {
    if (Rand.nextBool(0.7)) {
      const uint32_t M = static_cast<uint32_t>(Rand.nextBelow(Motifs));
      for (uint32_t J = 0; J < MotifLen; ++J)
        Trace.push_back(1000 + M * 64 + J);
    } else {
      Trace.push_back(Cold++);
    }
  }
  Trace.resize(Length);
  return Trace;
}

void BM_SequiturAppendRandom(benchmark::State &State) {
  Rng Rand(7);
  std::vector<uint32_t> Input(16384);
  for (uint32_t &T : Input)
    T = static_cast<uint32_t>(Rand.nextBelow(64));
  for (auto _ : State) {
    sequitur::Grammar G;
    for (uint32_t T : Input)
      G.append(T);
    benchmark::DoNotOptimize(G.ruleCount());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Input.size()));
}
BENCHMARK(BM_SequiturAppendRandom);

void BM_SequiturAppendRepetitive(benchmark::State &State) {
  const std::vector<uint32_t> Input = motifTrace(16384, 16, 12, 9);
  for (auto _ : State) {
    sequitur::Grammar G;
    for (uint32_t T : Input)
      G.append(T);
    benchmark::DoNotOptimize(G.totalRhsSymbols());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Input.size()));
}
BENCHMARK(BM_SequiturAppendRepetitive);

void BM_FastAnalysis(benchmark::State &State) {
  const std::vector<uint32_t> Input = motifTrace(32768, 24, 14, 11);
  sequitur::Grammar G;
  for (uint32_t T : Input)
    G.append(T);
  const sequitur::GrammarSnapshot Snapshot = G.snapshot();
  analysis::AnalysisConfig Config{8, 60, Input.size() / 100};
  for (auto _ : State) {
    auto Result = analysis::analyzeHotStreams(Snapshot, Config);
    benchmark::DoNotOptimize(Result.Streams.size());
  }
}
BENCHMARK(BM_FastAnalysis);

void BM_PreciseAnalysis(benchmark::State &State) {
  const std::vector<uint32_t> Input = motifTrace(8192, 24, 14, 13);
  analysis::AnalysisConfig Config{8, 60, Input.size() / 100};
  for (auto _ : State) {
    auto Result = analysis::analyzeHotStreamsPrecisely(Input, Config);
    benchmark::DoNotOptimize(Result.Streams.size());
  }
}
BENCHMARK(BM_PreciseAnalysis);

std::vector<std::vector<uint32_t>> syntheticStreams(uint32_t N,
                                                    uint32_t Len) {
  std::vector<std::vector<uint32_t>> Streams;
  for (uint32_t I = 0; I < N; ++I) {
    std::vector<uint32_t> S;
    for (uint32_t J = 0; J < Len; ++J)
      S.push_back(I * Len + J);
    Streams.push_back(std::move(S));
  }
  return Streams;
}

void BM_DfsmConstruction(benchmark::State &State) {
  const auto Streams =
      syntheticStreams(static_cast<uint32_t>(State.range(0)), 16);
  dfsm::DfsmConfig Config;
  for (auto _ : State) {
    dfsm::PrefixDfsm Machine(Streams, Config);
    benchmark::DoNotOptimize(Machine.stateCount());
  }
}
BENCHMARK(BM_DfsmConstruction)->Arg(8)->Arg(32)->Arg(64);

void BM_DfsmStep(benchmark::State &State) {
  const auto Streams = syntheticStreams(32, 16);
  dfsm::DfsmConfig Config;
  dfsm::PrefixDfsm Machine(Streams, Config);
  Rng Rand(3);
  std::vector<uint32_t> Symbols(4096);
  for (uint32_t &S : Symbols)
    S = static_cast<uint32_t>(Rand.nextBelow(32 * 16));
  dfsm::StateId Current = 0;
  for (auto _ : State) {
    for (uint32_t S : Symbols)
      Current = Machine.step(Current, S);
    benchmark::DoNotOptimize(Current);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Symbols.size()));
}
BENCHMARK(BM_DfsmStep);

void BM_CacheAccess(benchmark::State &State) {
  memsim::Cache Cache(memsim::CacheConfig::pentiumIIIL1());
  Rng Rand(5);
  std::vector<memsim::Addr> Addrs(4096);
  for (memsim::Addr &A : Addrs)
    A = Rand.nextBelow(1 << 16) * 32;
  for (auto _ : State) {
    for (memsim::Addr A : Addrs)
      if (!Cache.access(A))
        Cache.fill(A, false);
    benchmark::DoNotOptimize(Cache.validLineCount());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Addrs.size()));
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyAccess(benchmark::State &State) {
  memsim::MemoryHierarchy Memory;
  Rng Rand(6);
  std::vector<memsim::Addr> Addrs(4096);
  for (memsim::Addr &A : Addrs)
    A = Rand.nextBelow(1 << 18) * 32;
  for (auto _ : State) {
    for (memsim::Addr A : Addrs)
      Memory.access(A);
    benchmark::DoNotOptimize(Memory.now());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Addrs.size()));
}
BENCHMARK(BM_HierarchyAccess);

void BM_HierarchyPrefetch(benchmark::State &State) {
  memsim::MemoryHierarchy Memory;
  Rng Rand(8);
  for (auto _ : State) {
    const memsim::Addr Base = Rand.nextBelow(1 << 18) * 32;
    for (int I = 0; I < 16; ++I)
      Memory.prefetchT0(Base + static_cast<memsim::Addr>(I) * 32);
    Memory.tick(200);
    benchmark::DoNotOptimize(Memory.stats().PrefetchesIssued);
  }
}
BENCHMARK(BM_HierarchyPrefetch);

} // namespace

BENCHMARK_MAIN();
