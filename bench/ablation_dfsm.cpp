//===- bench/ablation_dfsm.cpp - Combined DFSM vs per-stream matching ------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Section 3.1: "Instead of driving one DFSM per hot data stream, we would
// like to drive just one DFSM that keeps track of matching for all hot
// data streams simultaneously.  By incurring the one-time cost of
// constructing the DFSM, we make the frequent detection and prefetching
// of hot data streams faster."  The paper also claims the state count
// stays near headLen*n + 1 rather than the theoretical 2^(headLen*n).
//
// This bench quantifies both claims: for growing stream sets it reports
// the combined machine's size (states, injected clauses) against the
// naive scheme's clause count, and the dynamic work (clause evaluations)
// of both matchers over the same reference sequence.
//
//===----------------------------------------------------------------------===//

#include "analysis/DataRef.h"
#include "dfsm/CheckCodeGen.h"
#include "dfsm/Matchers.h"
#include "dfsm/PrefixDfsm.h"
#include "support/Rng.h"
#include "support/Table.h"

#include <cstdio>
#include <vector>

using namespace hds;
using namespace hds::dfsm;

namespace {

struct StreamSet {
  std::vector<std::vector<uint32_t>> Streams;
  analysis::DataRefTable Refs;
  std::vector<uint64_t> SymbolPcs;
};

/// Builds \p N streams of length \p Len.  Streams share walker pcs (as
/// real traversal code does) but have distinct addresses; every fourth
/// stream shares its first symbol with a neighbour so restart ambiguity
/// exists.
StreamSet makeStreams(uint32_t N, uint32_t Len) {
  StreamSet Set;
  for (uint32_t I = 0; I < N; ++I) {
    std::vector<uint32_t> Stream;
    for (uint32_t J = 0; J < Len; ++J) {
      const uint64_t Pc = J < 2 ? J : 2;       // head pcs 0/1, body pc 2
      const uint64_t Addr = 0x1000 + I * 0x1000 + J * 0x40;
      const analysis::RefId Id = Set.Refs.intern({Pc + (I % 4) * 3, Addr});
      Stream.push_back(Id);
    }
    Set.Streams.push_back(std::move(Stream));
  }
  Set.SymbolPcs.resize(Set.Refs.size());
  for (uint32_t K = 0; K < Set.Refs.size(); ++K)
    Set.SymbolPcs[K] = Set.Refs.refOf(K).Pc;
  return Set;
}

} // namespace

int main() {
  std::printf("== Ablation: one combined DFSM vs per-stream matchers "
              "(§3.1) ==\n\n");

  Table Out;
  Out.row()
      .cell("streams")
      .cell("DFSM states")
      .cell("headLen*n+1")
      .cell("DFSM clauses")
      .cell("naive clauses")
      .cell("DFSM evals/ref")
      .cell("naive evals/ref")
      .cell("completions agree");

  Rng Rand(1234);
  for (uint32_t N : {4u, 8u, 16u, 24u, 32u, 48u, 64u}) {
    StreamSet Set = makeStreams(N, 12);
    DfsmConfig Config;
    PrefixDfsm Machine(Set.Streams, Config);
    const CheckCode Code = generateCheckCode(Machine, Set.Refs);
    const NaiveCheckStats Naive =
        computeNaiveCheckStats(Set.Streams, Config.HeadLength, Set.Refs);

    // Drive both matchers over a synthetic access sequence: stream walks
    // in round-robin order with noise between them.
    ScalarMatcherBank Bank(Set.Streams, Config.HeadLength, Set.SymbolPcs);
    StateId State = 0;
    uint64_t DfsmEvals = 0, DfsmCompletions = 0, NaiveCompletions = 0;
    uint64_t TotalRefs = 0;
    for (int Round = 0; Round < 50; ++Round) {
      for (uint32_t S = 0; S < N; ++S) {
        for (uint32_t J = 0; J < Set.Streams[S].size(); ++J) {
          const uint32_t Symbol = Set.Streams[S][J];
          ++TotalRefs;
          // The DFSM pays roughly one evaluation per instrumented access
          // (address-group scan); count a faithful clause-walk cost.
          const analysis::DataRef &Ref = Set.Refs.refOf(Symbol);
          for (const SiteCheckCode &Site : Code.Sites)
            if (Site.Pc == Ref.Pc)
              for (const AddrGroupCode &Group : Site.Groups) {
                ++DfsmEvals;
                if (Group.Addr == Ref.Addr)
                  break;
              }
          State = Machine.step(State, Symbol);
          DfsmCompletions += Machine.completionsAt(State).size();
          NaiveCompletions += Bank.step(Symbol, Ref.Pc).size();
        }
      }
    }

    Out.row()
        .cell(uint64_t{N})
        .cell(uint64_t{Machine.stateCount()})
        .cell(uint64_t{Config.HeadLength * N + 1})
        .cell(uint64_t{Code.totalClauses()})
        .cell(uint64_t{Naive.Clauses})
        .cell(static_cast<double>(DfsmEvals) / static_cast<double>(TotalRefs),
              "%.2f")
        .cell(static_cast<double>(Bank.clauseEvaluations()) /
                  static_cast<double>(TotalRefs),
              "%.2f")
        .cell(DfsmCompletions == NaiveCompletions ? "yes" : "NO");
  }
  Out.print();
  std::printf("\npaper: states stay near headLen*n+1 (no exponential "
              "blow-up); the combined machine avoids the per-stream "
              "scheme's redundant work\n");
  return 0;
}
