//===- bench/ablation_static.cpp - Static vs dynamic prefetching -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// The comparison the paper leaves open: "hot data streams ... could serve
// as the basis for an off-line static prefetching scheme [10].  On the
// other hand, for programs with distinct phase behavior, a dynamic
// prefetching scheme that adapts to program phase transitions may
// perform better.  In this paper, we explore a dynamic software
// prefetching scheme and leave a comparison with static prefetching for
// future work." (Section 1)
//
// The static scheme is modelled by pinning the first successful
// optimization: after the initial profile/analyze/inject, the installed
// prefetching code stays forever and the whole profiling framework
// disappears (a statically instrumented binary carries only the prefetch
// checks).  On the paper's stationary benchmarks the static scheme
// should win slightly — it keeps the benefit without the recurring
// framework cost.  On a program with phase behaviour it should lose
// badly: its streams train on phase A and idle through phase B.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

namespace {

void pinFirst(core::OptimizerConfig &Config) {
  Config.PinFirstOptimization = true;
}

} // namespace

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Static vs dynamic prefetching (the paper's future-work "
              "comparison) ==\n");
  std::printf("%% vs original (negative = faster)\n\n");

  Table Out;
  Out.row()
      .cell("benchmark")
      .cell("static")
      .cell("dynamic")
      .cell("static matches")
      .cell("dynamic matches");

  std::vector<std::string> Names = workloads::allWorkloadNames();
  Names.push_back("twophase"); // the phase-changing program
  for (const std::string &Name : Names) {
    const RunResult Original =
        runWorkload(Name, core::RunMode::Original, Scale);
    const RunResult Static = runWorkload(
        Name, core::RunMode::DynamicPrefetch, Scale, pinFirst);
    const RunResult Dynamic =
        runWorkload(Name, core::RunMode::DynamicPrefetch, Scale);

    Out.row()
        .cell(Name)
        .cell(overheadPercent(Static.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(Dynamic.Cycles, Original.Cycles), "%+.1f%%")
        .cell(Static.Stats.CompleteMatches)
        .cell(Dynamic.Stats.CompleteMatches);
  }
  Out.print();
  std::printf("\nexpected: static edges out dynamic on the stationary "
              "benchmarks (no recurring framework cost) but collapses on "
              "twophase, whose hot streams change under it — the paper's "
              "motivation for the dynamic scheme\n");
  return 0;
}
