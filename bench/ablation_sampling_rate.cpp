//===- bench/ablation_sampling_rate.cpp - Overhead vs sampling rate --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Section 2.1: "The profiling overhead is easy to control: there is a
// basic overhead for the checks, and beyond that the overhead is
// proportional to the sampling rate nInstr0/(nCheck0+nInstr0)."
//
// This bench sweeps the awake-phase sampling rate on one benchmark (mcf)
// and reports the Prof overhead (vs. the original program) next to the
// rate, demonstrating the basic-overhead floor plus the proportional
// part, and the traced-reference volume the analysis gets in exchange.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

namespace {

uint64_t GNCheck0 = 5'970;

void setRate(core::OptimizerConfig &Config) {
  Config.Tracing.NCheck0 = GNCheck0;
}

} // namespace

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Ablation: profiling overhead vs sampling rate (§2.1) "
              "==\n(benchmark: mcf; bursts of 30 checks)\n\n");

  const RunResult Original = runWorkload("mcf", core::RunMode::Original,
                                         Scale);
  const RunResult Base =
      runWorkload("mcf", core::RunMode::ChecksOnly, Scale);

  Table Out;
  Out.row()
      .cell("awake sampling rate")
      .cell("Prof overhead")
      .cell("traced refs")
      .cell("checks");
  Out.row()
      .cell("(checks only)")
      .cell(overheadPercent(Base.Cycles, Original.Cycles), "%+.2f%%")
      .cell(uint64_t{0})
      .cell(Base.Stats.ChecksExecuted);

  // Keep the burst length (nInstr0 = 30) fixed and sweep nCheck0; the
  // off-by-a-bit values keep the burst-period away from the workload's
  // loop period (see OptimizerConfig.h on sampling aliasing).
  for (uint64_t NCheck0 : {23'971ull, 11'971ull, 5'971ull, 2'971ull,
                           1'471ull}) {
    GNCheck0 = NCheck0;
    const RunResult Prof =
        runWorkload("mcf", core::RunMode::Profile, Scale, setRate);
    const double Rate = 30.0 / static_cast<double>(NCheck0 + 30);
    Out.row()
        .cell(hds::formatString("%.3f%%", 100.0 * Rate))
        .cell(overheadPercent(Prof.Cycles, Original.Cycles), "%+.2f%%")
        .cell(Prof.Stats.TracedRefs)
        .cell(Prof.Stats.ChecksExecuted);
  }
  Out.print();
  std::printf("\npaper: a basic check overhead floor, plus a part "
              "proportional to the sampling rate\n");
  return 0;
}
