//===- bench/ablation_cachesize.cpp - L2 size sensitivity ------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// A sensitivity study the paper does not run but its setup invites: how
// does the Dyn-pref win depend on the L2 size?  With the paper's 256 KB
// L2, hot data streams stay L2-resident between re-walks, so prefetching
// hides L2-hit latency (~13 cycles/reference).  A smaller L2 pushes
// stream blocks out to memory — each prefetch then hides much more
// (~99 cycles), but timeliness gets harder; a larger L2 changes little
// (the streams already fit).  This bench sweeps the L2 over
// {16 KB, 32 KB, 64 KB, 256 KB, 1 MB} at fixed associativity/block
// size (the hot working sets are a few tens of KB, so the interesting
// transitions happen below the paper's point) and reports the Dyn-pref
// net impact plus the original program's L2 miss rate.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

namespace {

uint64_t GL2Bytes = 256 * 1024;

void setL2(core::OptimizerConfig &Config) {
  Config.L2.SizeBytes = GL2Bytes;
}

} // namespace

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Sensitivity: L2 capacity vs Dyn-pref win ==\n");
  std::printf("cells: Dyn-pref %% vs original at that L2 | original L2 "
              "miss rate\n\n");

  // The hot working sets are ~30-40 KB, so the interesting transitions
  // happen well below the paper's 256 KB point.
  const uint64_t Sizes[] = {16 * 1024, 32 * 1024, 64 * 1024, 256 * 1024,
                            1024 * 1024};

  Table Out;
  {
    auto Header = Out.row();
    Header.cell("benchmark");
    for (uint64_t Bytes : Sizes)
      Header.cell(formatString("%lluKB", (unsigned long long)(Bytes / 1024)));
  }

  for (const std::string &Name : {std::string("vpr"), std::string("mcf"),
                                  std::string("vortex")}) {
    auto Row = Out.row();
    Row.cell(Name);
    for (uint64_t Bytes : Sizes) {
      GL2Bytes = Bytes;
      const RunResult Original =
          runWorkload(Name, core::RunMode::Original, Scale, setL2);
      const RunResult Dyn = runWorkload(
          Name, core::RunMode::DynamicPrefetch, Scale, setL2);
      Row.cell(formatString(
          "%+.1f%% | %.0f%%",
          overheadPercent(Dyn.Cycles, Original.Cycles),
          100.0 * Original.L2.missRate()));
    }
  }
  Out.print();
  std::printf("\nreading: at the paper's 256KB point the win comes from "
              "hiding L2-hit latency; shrinking the L2 turns stream "
              "misses into memory misses, raising both the stakes and "
              "the (partial) win per prefetch\n");
  return 0;
}
