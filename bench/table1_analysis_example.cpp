//===- bench/table1_analysis_example.cpp - Paper worked example ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Regenerates Figures 4/6 and Table 1 of the paper: the Sequitur grammar
// for w = abaabcabcabcabc and the values computed by the fast hot data
// stream analysis (index, uses, coldUses, heat) with H = 8, minLen = 2,
// maxLen = 7.  The paper's result: exactly one hot data stream, abcabc,
// with heat 12, accounting for 12/15 = 80% of all data references.
//
//===----------------------------------------------------------------------===//

#include "analysis/FastAnalyzer.h"
#include "sequitur/Grammar.h"
#include "support/Table.h"

#include <cstdio>
#include <string>

using namespace hds;

int main() {
  const std::string Input = "abaabcabcabcabc";
  std::printf("== Paper worked example (Figures 4/6, Table 1) ==\n");
  std::printf("input string w = %s\n\n", Input.c_str());

  sequitur::Grammar Grammar;
  for (char C : Input)
    Grammar.append(static_cast<uint64_t>(static_cast<unsigned char>(C)));

  std::printf("Sequitur grammar (Figure 4):\n%s\n",
              Grammar
                  .dump(+[](uint64_t T) {
                    return std::string(1, static_cast<char>(T));
                  })
                  .c_str());

  analysis::AnalysisConfig Config;
  Config.MinLength = 2;
  Config.MaxLength = 7;
  Config.HeatThreshold = 8;

  const sequitur::GrammarSnapshot Snapshot = Grammar.snapshot();
  const analysis::FastAnalysisResult Result =
      analysis::analyzeHotStreams(Snapshot, Config);

  std::printf("analysis values (Table 1, H=8, minLen=2, maxLen=7):\n");
  Table Out;
  Out.row()
      .cell("rule")
      .cell("expansion")
      .cell("length")
      .cell("index")
      .cell("uses")
      .cell("coldUses")
      .cell("heat")
      .cell("hot?");
  for (uint32_t R = 0; R < Snapshot.Rules.size(); ++R) {
    const analysis::RuleAnalysis &A = Result.PerRule[R];
    std::string Word;
    for (uint64_t T : Snapshot.expand(R))
      Word.push_back(static_cast<char>(T));
    Out.row()
        .cell(formatString("R%u", R))
        .cell(Word)
        .cell(uint64_t{A.Length})
        .cell(uint64_t{A.Index})
        .cell(uint64_t{A.Uses})
        .cell(uint64_t{A.ColdUses})
        .cell(uint64_t{A.Heat})
        .cell(R == 0 ? "no, start" : (A.Hot ? "yes" : "no, cold"));
  }
  Out.print();

  std::printf("\nhot data streams:\n");
  for (const analysis::HotDataStream &Stream : Result.Streams) {
    std::string Word;
    for (uint32_t T : Stream.Symbols)
      Word.push_back(static_cast<char>(T));
    std::printf("  %s  heat=%llu  (%.0f%% of all data references)\n",
                Word.c_str(), (unsigned long long)Stream.Heat,
                100.0 * static_cast<double>(Stream.Heat) /
                    static_cast<double>(Result.TraceLength));
  }
  std::printf("\npaper: one hot data stream, abcabc, heat 12, 80%%\n");
  return 0;
}
