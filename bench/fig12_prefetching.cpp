//===- bench/fig12_prefetching.cpp - Figure 12 reproduction ----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Regenerates Figure 12, "Performance impact of dynamic prefetching": for
// each benchmark, the % overhead (normalized to the original unoptimized
// program) of
//   No-pref  — profiling + analysis + prefix matching, no prefetches,
//   Seq-pref — prefetch the blocks sequentially following the last
//              matched reference, and
//   Dyn-pref — the paper's scheme, prefetching the stream's addresses.
//
// Paper shape: No-pref costs 4–8%; Seq-pref degrades 7–12% except parser
// (~5% faster, sequentially allocated streams); Dyn-pref yields net
// improvements of 5% (vortex) to 19% (vpr).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>

using namespace hds;
using namespace hds::bench;

int main(int Argc, char **Argv) {
  const double Scale = parseScale(Argc, Argv);
  std::printf("== Figure 12: performance impact of dynamic prefetching ==\n");
  std::printf("%% overhead vs. original program "
              "(positive = slower, negative = faster)\n\n");

  Table Out;
  Out.row()
      .cell("benchmark")
      .cell("No-pref")
      .cell("Seq-pref")
      .cell("Dyn-pref")
      .cell("prefetches")
      .cell("useful");

  for (const std::string &Name : workloads::allWorkloadNames()) {
    const RunResult Original =
        runWorkload(Name, core::RunMode::Original, Scale);
    const RunResult NoPref =
        runWorkload(Name, core::RunMode::MatchNoPrefetch, Scale);
    const RunResult SeqPref =
        runWorkload(Name, core::RunMode::SequentialPrefetch, Scale);
    const RunResult DynPref =
        runWorkload(Name, core::RunMode::DynamicPrefetch, Scale);

    const uint64_t UsefulPrefetches =
        DynPref.L1.UsefulPrefetches + DynPref.L2.UsefulPrefetches;
    Out.row()
        .cell(Name)
        .cell(overheadPercent(NoPref.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(SeqPref.Cycles, Original.Cycles), "%+.1f%%")
        .cell(overheadPercent(DynPref.Cycles, Original.Cycles), "%+.1f%%")
        .cell(DynPref.Memory.PrefetchesIssued)
        .cell(UsefulPrefetches);
  }
  Out.print();
  std::printf("\npaper: No-pref +4..8%%, Seq-pref +7..12%% "
              "(parser ~-5%%), Dyn-pref -5%% (vortex) .. -19%% (vpr)\n");
  return 0;
}
