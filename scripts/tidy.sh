#!/bin/sh
# Runs clang-tidy (profile: .clang-tidy) over the project sources using
# the compile_commands.json that CMake exports on configure.
#
# clang-tidy is optional tooling: containers that only carry gcc skip
# this gate (exit 0 with a notice) — hds_lint and the -Werror build in
# scripts/lint.sh remain the mandatory layers.
#
# Usage: scripts/tidy.sh [files...]   (default: all src/ and tools/ .cpp)
set -e
cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "tidy.sh: $TIDY not found; skipping (install clang-tidy to enable)"
  exit 0
fi

cmake -B build -S . >/dev/null   # refresh compile_commands.json
if [ ! -f build/compile_commands.json ]; then
  echo "tidy.sh: build/compile_commands.json missing" >&2
  exit 1
fi

if [ "$#" -gt 0 ]; then
  FILES="$*"
else
  FILES="$(find src tools -name '*.cpp' | sort)"
fi

# shellcheck disable=SC2086
"$TIDY" -p build --quiet $FILES
