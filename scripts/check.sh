#!/bin/sh
# Builds and runs the test suite.
#
# By default only tier1 runs: the fast unit/property/smoke tests that
# gate every change (~1 minute).  --full adds tier2, the 50-seed
# differential fuzzing sweep (hds_fuzz through the grammar, analyzer,
# and DFSM oracles).  See docs/testing.md for the tier definitions.
#
# Usage: scripts/check.sh [--full]
set -e
cd "$(dirname "$0")/.."

LABELS="tier1"
if [ "$1" = "--full" ]; then
  LABELS="tier1|tier2"
elif [ -n "$1" ]; then
  echo "usage: $0 [--full]" >&2
  exit 1
fi

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc 2>/dev/null || echo 4)"

ctest --test-dir build --output-on-failure -j"$(nproc 2>/dev/null || echo 4)" \
      -L "$LABELS"
