#!/bin/sh
# Builds and runs the test suite, then the static-analysis gate.
#
# By default tier1 runs: the fast unit/property/smoke tests that gate
# every change (~1 minute), followed by scripts/lint.sh --lint-only
# (the hds_lint invariant rules; the -Werror warning set is already
# part of the build).  --full adds tier2 — the 50-seed differential
# fuzzing sweep — plus the ASan+UBSan tier1 run from scripts/lint.sh.
# See docs/testing.md and docs/static-analysis.md.
#
# Usage: scripts/check.sh [--full]
set -e
cd "$(dirname "$0")/.."

LABELS="tier1"
FULL=0
if [ "$1" = "--full" ]; then
  LABELS="tier1|tier2"
  FULL=1
elif [ -n "$1" ]; then
  echo "usage: $0 [--full]" >&2
  exit 1
fi

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc 2>/dev/null || echo 4)"

ctest --test-dir build --output-on-failure -j"$(nproc 2>/dev/null || echo 4)" \
      -L "$LABELS"

if [ "$FULL" = 1 ]; then
  scripts/lint.sh            # lint + sanitizer tier1
else
  scripts/lint.sh --lint-only
fi
