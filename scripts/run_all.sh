#!/bin/sh
# Builds everything, runs the test suite, and regenerates the full
# experiment matrix through the parallel engine, capturing outputs like
# the final artifacts in the repository root.
#
# The per-figure bench binaries still exist (bench/) for focused runs;
# the canonical trajectory artifact is now one sharded hds_matrix
# invocation whose merged JSON is byte-identical for any --jobs value
# (see docs/engine.md).
#
# Usage: scripts/run_all.sh [bench-scale]   (default 1.0)
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-1.0}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"

ctest --test-dir build --output-on-failure -j"$JOBS" 2>&1 | tee test_output.txt

# Lint pass, timed: scripts/lint.sh leaves build/lint_timing.json behind
# for the matrix run to embed.
scripts/lint.sh --lint-only

./build/tools/hds_matrix \
  --jobs "$JOBS" \
  --scale "$SCALE" \
  --seeds 2 \
  --timing \
  --lint-timing build/lint_timing.json \
  --out BENCH_matrix.json 2>&1 | tee bench_output.txt

echo "matrix results: BENCH_matrix.json"
