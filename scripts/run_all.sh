#!/bin/sh
# Builds everything, runs the test suite, and regenerates every paper
# table/figure and ablation, capturing outputs like the final artifacts
# in the repository root.
#
# Usage: scripts/run_all.sh [bench-scale]   (default 1.0)
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-1.0}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo "==== $b $SCALE ===="
    case "$(basename "$b")" in
      table1_analysis_example|fig3_timeline|ablation_dfsm|ablation_analysis|micro_substrates)
        "$b" ;;
      *)
        "$b" "$SCALE" ;;
    esac
    echo
  done
} 2>&1 | tee bench_output.txt
