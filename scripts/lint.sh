#!/bin/sh
# Static-analysis gate: hds_lint over the tree, a -Werror build with the
# full warning set, and the tier1 suite under ASan+UBSan.
#
# Layers (each skippable, see flags):
#   1. hds_lint src tools bench tests       (determinism/invariant rules)
#   2. -Wall -Wextra -Wconversion -Wshadow -Werror build (HDS_WERROR=ON,
#      the default; this is the same build check.sh performs)
#   3. tier1 ctest under -fsanitize=address,undefined in build-asan/
#
# Usage: scripts/lint.sh [--no-sanitize] [--lint-only]
# See docs/static-analysis.md for the rule catalogue and suppression
# policy.
set -e
cd "$(dirname "$0")/.."

SANITIZE=1
LINT_ONLY=0
for Arg in "$@"; do
  case "$Arg" in
    --no-sanitize) SANITIZE=0 ;;
    --lint-only)   LINT_ONLY=1 ;;
    *) echo "usage: $0 [--no-sanitize] [--lint-only]" >&2; exit 1 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

# Milliseconds since the epoch (POSIX shell, no bashisms).
now_ms() {
  # %N is a GNU extension; fall back to second resolution elsewhere.
  NS="$(date +%s%N 2>/dev/null)"
  case "$NS" in
    *N|'') echo "$(( $(date +%s) * 1000 ))" ;;
    *)     echo "$(( NS / 1000000 ))" ;;
  esac
}

# Layer 1+2: the -Werror build also produces the hds_lint binary.
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" --target hds_lint
echo "== hds_lint =="
LINT_START="$(now_ms)"
./build/tools/hds_lint \
  --schema-lock tests/golden/schema.lock \
  --compile-db build/compile_commands.json \
  --stale-suppressions \
  src tools bench tests
LINT_END="$(now_ms)"
echo "hds_lint: clean"

# Machine-readable timing for the results pipeline: hds_matrix embeds
# this file under "timing.lint" when invoked with --lint-timing.
printf '{"schema": "hds-lint-timing-v1", "lint_ms": %s}\n' \
  "$(( LINT_END - LINT_START ))" > build/lint_timing.json

if [ "$LINT_ONLY" = 1 ]; then
  exit 0
fi

echo "== -Werror build =="
cmake --build build -j"$JOBS"

if [ "$SANITIZE" = 1 ]; then
  echo "== tier1 under ASan+UBSan =="
  cmake -B build-asan -S . -DHDS_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j"$JOBS"
  ctest --test-dir build-asan --output-on-failure -j"$JOBS" -L tier1
fi
