file(REMOVE_RECURSE
  "CMakeFiles/sequitur_test.dir/sequitur_test.cpp.o"
  "CMakeFiles/sequitur_test.dir/sequitur_test.cpp.o.d"
  "sequitur_test"
  "sequitur_test.pdb"
  "sequitur_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequitur_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
