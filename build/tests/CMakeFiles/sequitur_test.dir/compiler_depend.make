# Empty compiler generated dependencies file for sequitur_test.
# This may be replaced when dependencies are built.
