# Empty compiler generated dependencies file for dfsm_test.
# This may be replaced when dependencies are built.
