file(REMOVE_RECURSE
  "CMakeFiles/dfsm_test.dir/dfsm_test.cpp.o"
  "CMakeFiles/dfsm_test.dir/dfsm_test.cpp.o.d"
  "dfsm_test"
  "dfsm_test.pdb"
  "dfsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
