file(REMOVE_RECURSE
  "CMakeFiles/prefetchers_test.dir/prefetchers_test.cpp.o"
  "CMakeFiles/prefetchers_test.dir/prefetchers_test.cpp.o.d"
  "prefetchers_test"
  "prefetchers_test.pdb"
  "prefetchers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetchers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
