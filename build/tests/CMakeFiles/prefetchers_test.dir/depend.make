# Empty dependencies file for prefetchers_test.
# This may be replaced when dependencies are built.
