# Empty dependencies file for profiling_test.
# This may be replaced when dependencies are built.
