file(REMOVE_RECURSE
  "CMakeFiles/profiling_test.dir/profiling_test.cpp.o"
  "CMakeFiles/profiling_test.dir/profiling_test.cpp.o.d"
  "profiling_test"
  "profiling_test.pdb"
  "profiling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
