# Empty compiler generated dependencies file for memsim_test.
# This may be replaced when dependencies are built.
