# Empty compiler generated dependencies file for vulcan_test.
# This may be replaced when dependencies are built.
