file(REMOVE_RECURSE
  "CMakeFiles/vulcan_test.dir/vulcan_test.cpp.o"
  "CMakeFiles/vulcan_test.dir/vulcan_test.cpp.o.d"
  "vulcan_test"
  "vulcan_test.pdb"
  "vulcan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulcan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
