file(REMOVE_RECURSE
  "CMakeFiles/subpath_test.dir/subpath_test.cpp.o"
  "CMakeFiles/subpath_test.dir/subpath_test.cpp.o.d"
  "subpath_test"
  "subpath_test.pdb"
  "subpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
