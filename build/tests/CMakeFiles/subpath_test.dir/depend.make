# Empty dependencies file for subpath_test.
# This may be replaced when dependencies are built.
