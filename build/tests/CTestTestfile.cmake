# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/memsim_test[1]_include.cmake")
include("/root/repo/build/tests/sequitur_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/subpath_test[1]_include.cmake")
include("/root/repo/build/tests/dfsm_test[1]_include.cmake")
include("/root/repo/build/tests/vulcan_test[1]_include.cmake")
include("/root/repo/build/tests/profiling_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/prefetchers_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
