file(REMOVE_RECURSE
  "CMakeFiles/ablation_stride.dir/ablation_stride.cpp.o"
  "CMakeFiles/ablation_stride.dir/ablation_stride.cpp.o.d"
  "ablation_stride"
  "ablation_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
