# Empty dependencies file for ablation_stride.
# This may be replaced when dependencies are built.
