# Empty compiler generated dependencies file for ablation_sampling_rate.
# This may be replaced when dependencies are built.
