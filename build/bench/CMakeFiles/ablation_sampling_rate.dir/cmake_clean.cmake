file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampling_rate.dir/ablation_sampling_rate.cpp.o"
  "CMakeFiles/ablation_sampling_rate.dir/ablation_sampling_rate.cpp.o.d"
  "ablation_sampling_rate"
  "ablation_sampling_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampling_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
