file(REMOVE_RECURSE
  "CMakeFiles/table1_analysis_example.dir/table1_analysis_example.cpp.o"
  "CMakeFiles/table1_analysis_example.dir/table1_analysis_example.cpp.o.d"
  "table1_analysis_example"
  "table1_analysis_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_analysis_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
