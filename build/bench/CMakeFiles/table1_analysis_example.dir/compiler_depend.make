# Empty compiler generated dependencies file for table1_analysis_example.
# This may be replaced when dependencies are built.
