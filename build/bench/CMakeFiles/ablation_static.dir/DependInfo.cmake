
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_static.cpp" "bench/CMakeFiles/ablation_static.dir/ablation_static.cpp.o" "gcc" "bench/CMakeFiles/ablation_static.dir/ablation_static.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfsm/CMakeFiles/hds_dfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/hds_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hds_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sequitur/CMakeFiles/hds_sequitur.dir/DependInfo.cmake"
  "/root/repo/build/src/vulcan/CMakeFiles/hds_vulcan.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/hds_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
