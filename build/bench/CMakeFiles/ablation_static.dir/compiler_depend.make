# Empty compiler generated dependencies file for ablation_static.
# This may be replaced when dependencies are built.
