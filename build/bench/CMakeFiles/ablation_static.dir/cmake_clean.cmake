file(REMOVE_RECURSE
  "CMakeFiles/ablation_static.dir/ablation_static.cpp.o"
  "CMakeFiles/ablation_static.dir/ablation_static.cpp.o.d"
  "ablation_static"
  "ablation_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
