# Empty dependencies file for ablation_adaptive.
# This may be replaced when dependencies are built.
