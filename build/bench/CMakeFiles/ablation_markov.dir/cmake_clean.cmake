file(REMOVE_RECURSE
  "CMakeFiles/ablation_markov.dir/ablation_markov.cpp.o"
  "CMakeFiles/ablation_markov.dir/ablation_markov.cpp.o.d"
  "ablation_markov"
  "ablation_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
