# Empty compiler generated dependencies file for ablation_markov.
# This may be replaced when dependencies are built.
