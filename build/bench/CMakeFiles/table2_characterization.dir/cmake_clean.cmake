file(REMOVE_RECURSE
  "CMakeFiles/table2_characterization.dir/table2_characterization.cpp.o"
  "CMakeFiles/table2_characterization.dir/table2_characterization.cpp.o.d"
  "table2_characterization"
  "table2_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
