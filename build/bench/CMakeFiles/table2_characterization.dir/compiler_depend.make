# Empty compiler generated dependencies file for table2_characterization.
# This may be replaced when dependencies are built.
