# Empty compiler generated dependencies file for fig12_prefetching.
# This may be replaced when dependencies are built.
