file(REMOVE_RECURSE
  "CMakeFiles/fig12_prefetching.dir/fig12_prefetching.cpp.o"
  "CMakeFiles/fig12_prefetching.dir/fig12_prefetching.cpp.o.d"
  "fig12_prefetching"
  "fig12_prefetching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_prefetching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
