# Empty compiler generated dependencies file for fig11_overhead.
# This may be replaced when dependencies are built.
