file(REMOVE_RECURSE
  "CMakeFiles/fig11_overhead.dir/fig11_overhead.cpp.o"
  "CMakeFiles/fig11_overhead.dir/fig11_overhead.cpp.o.d"
  "fig11_overhead"
  "fig11_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
