file(REMOVE_RECURSE
  "CMakeFiles/fig3_timeline.dir/fig3_timeline.cpp.o"
  "CMakeFiles/fig3_timeline.dir/fig3_timeline.cpp.o.d"
  "fig3_timeline"
  "fig3_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
