# Empty dependencies file for fig3_timeline.
# This may be replaced when dependencies are built.
