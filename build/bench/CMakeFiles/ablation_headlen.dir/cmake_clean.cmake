file(REMOVE_RECURSE
  "CMakeFiles/ablation_headlen.dir/ablation_headlen.cpp.o"
  "CMakeFiles/ablation_headlen.dir/ablation_headlen.cpp.o.d"
  "ablation_headlen"
  "ablation_headlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_headlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
