# Empty compiler generated dependencies file for ablation_headlen.
# This may be replaced when dependencies are built.
