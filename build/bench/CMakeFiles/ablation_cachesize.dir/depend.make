# Empty dependencies file for ablation_cachesize.
# This may be replaced when dependencies are built.
