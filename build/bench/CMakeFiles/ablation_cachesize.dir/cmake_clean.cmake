file(REMOVE_RECURSE
  "CMakeFiles/ablation_cachesize.dir/ablation_cachesize.cpp.o"
  "CMakeFiles/ablation_cachesize.dir/ablation_cachesize.cpp.o.d"
  "ablation_cachesize"
  "ablation_cachesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
