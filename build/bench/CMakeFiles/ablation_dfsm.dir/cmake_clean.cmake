file(REMOVE_RECURSE
  "CMakeFiles/ablation_dfsm.dir/ablation_dfsm.cpp.o"
  "CMakeFiles/ablation_dfsm.dir/ablation_dfsm.cpp.o.d"
  "ablation_dfsm"
  "ablation_dfsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dfsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
