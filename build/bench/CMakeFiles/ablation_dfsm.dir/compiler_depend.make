# Empty compiler generated dependencies file for ablation_dfsm.
# This may be replaced when dependencies are built.
