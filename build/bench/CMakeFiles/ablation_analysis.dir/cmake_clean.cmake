file(REMOVE_RECURSE
  "CMakeFiles/ablation_analysis.dir/ablation_analysis.cpp.o"
  "CMakeFiles/ablation_analysis.dir/ablation_analysis.cpp.o.d"
  "ablation_analysis"
  "ablation_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
