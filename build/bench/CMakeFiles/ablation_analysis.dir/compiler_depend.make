# Empty compiler generated dependencies file for ablation_analysis.
# This may be replaced when dependencies are built.
