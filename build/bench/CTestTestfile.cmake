# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig11_overhead "/root/repo/build/bench/fig11_overhead" "0.02")
set_tests_properties(bench_smoke_fig11_overhead PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig12_prefetching "/root/repo/build/bench/fig12_prefetching" "0.02")
set_tests_properties(bench_smoke_fig12_prefetching PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2_characterization "/root/repo/build/bench/table2_characterization" "0.02")
set_tests_properties(bench_smoke_table2_characterization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_headlen "/root/repo/build/bench/ablation_headlen" "0.02")
set_tests_properties(bench_smoke_ablation_headlen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_sampling_rate "/root/repo/build/bench/ablation_sampling_rate" "0.02")
set_tests_properties(bench_smoke_ablation_sampling_rate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_stride "/root/repo/build/bench/ablation_stride" "0.02")
set_tests_properties(bench_smoke_ablation_stride PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_markov "/root/repo/build/bench/ablation_markov" "0.02")
set_tests_properties(bench_smoke_ablation_markov PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_static "/root/repo/build/bench/ablation_static" "0.02")
set_tests_properties(bench_smoke_ablation_static PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_adaptive "/root/repo/build/bench/ablation_adaptive" "0.02")
set_tests_properties(bench_smoke_ablation_adaptive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_cachesize "/root/repo/build/bench/ablation_cachesize" "0.02")
set_tests_properties(bench_smoke_ablation_cachesize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table1 "/root/repo/build/bench/table1_analysis_example")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3 "/root/repo/build/bench/fig3_timeline")
set_tests_properties(bench_smoke_fig3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_dfsm "/root/repo/build/bench/ablation_dfsm")
set_tests_properties(bench_smoke_dfsm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;42;add_test;/root/repo/bench/CMakeLists.txt;0;")
