file(REMOVE_RECURSE
  "CMakeFiles/adaptive_phases.dir/adaptive_phases.cpp.o"
  "CMakeFiles/adaptive_phases.dir/adaptive_phases.cpp.o.d"
  "adaptive_phases"
  "adaptive_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
