# Empty compiler generated dependencies file for adaptive_phases.
# This may be replaced when dependencies are built.
