file(REMOVE_RECURSE
  "CMakeFiles/stream_inspector.dir/stream_inspector.cpp.o"
  "CMakeFiles/stream_inspector.dir/stream_inspector.cpp.o.d"
  "stream_inspector"
  "stream_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
