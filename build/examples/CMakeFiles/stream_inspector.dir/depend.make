# Empty dependencies file for stream_inspector.
# This may be replaced when dependencies are built.
