# Empty compiler generated dependencies file for grammar_explorer.
# This may be replaced when dependencies are built.
