file(REMOVE_RECURSE
  "CMakeFiles/grammar_explorer.dir/grammar_explorer.cpp.o"
  "CMakeFiles/grammar_explorer.dir/grammar_explorer.cpp.o.d"
  "grammar_explorer"
  "grammar_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
