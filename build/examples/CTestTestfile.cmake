# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grammar_explorer "/root/repo/build/examples/grammar_explorer")
set_tests_properties(example_grammar_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grammar_explorer_custom "/root/repo/build/examples/grammar_explorer" "mississippimississippi" "6" "3" "11")
set_tests_properties(example_grammar_explorer_custom PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_inspector "/root/repo/build/examples/stream_inspector" "parser" "2500")
set_tests_properties(example_stream_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_phases "/root/repo/build/examples/adaptive_phases")
set_tests_properties(example_adaptive_phases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
