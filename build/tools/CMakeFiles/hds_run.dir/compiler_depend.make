# Empty compiler generated dependencies file for hds_run.
# This may be replaced when dependencies are built.
