file(REMOVE_RECURSE
  "CMakeFiles/hds_run.dir/hds_run.cpp.o"
  "CMakeFiles/hds_run.dir/hds_run.cpp.o.d"
  "hds_run"
  "hds_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
