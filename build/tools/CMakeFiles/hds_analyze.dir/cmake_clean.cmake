file(REMOVE_RECURSE
  "CMakeFiles/hds_analyze.dir/hds_analyze.cpp.o"
  "CMakeFiles/hds_analyze.dir/hds_analyze.cpp.o.d"
  "hds_analyze"
  "hds_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
