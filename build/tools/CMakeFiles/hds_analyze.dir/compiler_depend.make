# Empty compiler generated dependencies file for hds_analyze.
# This may be replaced when dependencies are built.
