# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_hds_run "/root/repo/build/tools/hds_run" "--workload" "parser" "--mode" "dynpref" "--iterations" "600" "--compare")
set_tests_properties(tool_hds_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_hds_analyze "sh" "-c" "printf 'a b c a b c a b c x y a b c a b c\\n' | /root/repo/build/tools/hds_analyze --minlen 3 --heat 6 --precise --dfsm")
set_tests_properties(tool_hds_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_trace_roundtrip "sh" "-c" "/root/repo/build/tools/hds_run --workload vpr --mode original --iterations 40 --dump-trace trace_roundtrip.txt >/dev/null && /root/repo/build/tools/hds_analyze --minlen 10 trace_roundtrip.txt && rm -f trace_roundtrip.txt")
set_tests_properties(tool_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
