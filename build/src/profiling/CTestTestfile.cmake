# CMake generated Testfile for 
# Source directory: /root/repo/src/profiling
# Build directory: /root/repo/build/src/profiling
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
