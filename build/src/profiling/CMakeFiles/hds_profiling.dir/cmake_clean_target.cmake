file(REMOVE_RECURSE
  "libhds_profiling.a"
)
