file(REMOVE_RECURSE
  "CMakeFiles/hds_profiling.dir/BurstyTracer.cpp.o"
  "CMakeFiles/hds_profiling.dir/BurstyTracer.cpp.o.d"
  "libhds_profiling.a"
  "libhds_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
