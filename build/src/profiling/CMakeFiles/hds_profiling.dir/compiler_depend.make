# Empty compiler generated dependencies file for hds_profiling.
# This may be replaced when dependencies are built.
