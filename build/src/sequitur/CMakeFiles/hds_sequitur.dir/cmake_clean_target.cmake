file(REMOVE_RECURSE
  "libhds_sequitur.a"
)
