file(REMOVE_RECURSE
  "CMakeFiles/hds_sequitur.dir/Grammar.cpp.o"
  "CMakeFiles/hds_sequitur.dir/Grammar.cpp.o.d"
  "libhds_sequitur.a"
  "libhds_sequitur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_sequitur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
