# Empty compiler generated dependencies file for hds_sequitur.
# This may be replaced when dependencies are built.
