
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Coverage.cpp" "src/analysis/CMakeFiles/hds_analysis.dir/Coverage.cpp.o" "gcc" "src/analysis/CMakeFiles/hds_analysis.dir/Coverage.cpp.o.d"
  "/root/repo/src/analysis/FastAnalyzer.cpp" "src/analysis/CMakeFiles/hds_analysis.dir/FastAnalyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/hds_analysis.dir/FastAnalyzer.cpp.o.d"
  "/root/repo/src/analysis/PreciseAnalyzer.cpp" "src/analysis/CMakeFiles/hds_analysis.dir/PreciseAnalyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/hds_analysis.dir/PreciseAnalyzer.cpp.o.d"
  "/root/repo/src/analysis/StreamFilter.cpp" "src/analysis/CMakeFiles/hds_analysis.dir/StreamFilter.cpp.o" "gcc" "src/analysis/CMakeFiles/hds_analysis.dir/StreamFilter.cpp.o.d"
  "/root/repo/src/analysis/SubpathAnalyzer.cpp" "src/analysis/CMakeFiles/hds_analysis.dir/SubpathAnalyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/hds_analysis.dir/SubpathAnalyzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sequitur/CMakeFiles/hds_sequitur.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
