file(REMOVE_RECURSE
  "CMakeFiles/hds_analysis.dir/Coverage.cpp.o"
  "CMakeFiles/hds_analysis.dir/Coverage.cpp.o.d"
  "CMakeFiles/hds_analysis.dir/FastAnalyzer.cpp.o"
  "CMakeFiles/hds_analysis.dir/FastAnalyzer.cpp.o.d"
  "CMakeFiles/hds_analysis.dir/PreciseAnalyzer.cpp.o"
  "CMakeFiles/hds_analysis.dir/PreciseAnalyzer.cpp.o.d"
  "CMakeFiles/hds_analysis.dir/StreamFilter.cpp.o"
  "CMakeFiles/hds_analysis.dir/StreamFilter.cpp.o.d"
  "CMakeFiles/hds_analysis.dir/SubpathAnalyzer.cpp.o"
  "CMakeFiles/hds_analysis.dir/SubpathAnalyzer.cpp.o.d"
  "libhds_analysis.a"
  "libhds_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
