file(REMOVE_RECURSE
  "libhds_analysis.a"
)
