# Empty compiler generated dependencies file for hds_analysis.
# This may be replaced when dependencies are built.
