file(REMOVE_RECURSE
  "libhds_dfsm.a"
)
