file(REMOVE_RECURSE
  "CMakeFiles/hds_dfsm.dir/CheckCodeGen.cpp.o"
  "CMakeFiles/hds_dfsm.dir/CheckCodeGen.cpp.o.d"
  "CMakeFiles/hds_dfsm.dir/Matchers.cpp.o"
  "CMakeFiles/hds_dfsm.dir/Matchers.cpp.o.d"
  "CMakeFiles/hds_dfsm.dir/PrefixDfsm.cpp.o"
  "CMakeFiles/hds_dfsm.dir/PrefixDfsm.cpp.o.d"
  "libhds_dfsm.a"
  "libhds_dfsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_dfsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
