
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfsm/CheckCodeGen.cpp" "src/dfsm/CMakeFiles/hds_dfsm.dir/CheckCodeGen.cpp.o" "gcc" "src/dfsm/CMakeFiles/hds_dfsm.dir/CheckCodeGen.cpp.o.d"
  "/root/repo/src/dfsm/Matchers.cpp" "src/dfsm/CMakeFiles/hds_dfsm.dir/Matchers.cpp.o" "gcc" "src/dfsm/CMakeFiles/hds_dfsm.dir/Matchers.cpp.o.d"
  "/root/repo/src/dfsm/PrefixDfsm.cpp" "src/dfsm/CMakeFiles/hds_dfsm.dir/PrefixDfsm.cpp.o" "gcc" "src/dfsm/CMakeFiles/hds_dfsm.dir/PrefixDfsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hds_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hds_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sequitur/CMakeFiles/hds_sequitur.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
