# Empty dependencies file for hds_dfsm.
# This may be replaced when dependencies are built.
