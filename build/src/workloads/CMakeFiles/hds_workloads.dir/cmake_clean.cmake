file(REMOVE_RECURSE
  "CMakeFiles/hds_workloads.dir/Boxsim.cpp.o"
  "CMakeFiles/hds_workloads.dir/Boxsim.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/ChainNoiseWorkload.cpp.o"
  "CMakeFiles/hds_workloads.dir/ChainNoiseWorkload.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/ChainSet.cpp.o"
  "CMakeFiles/hds_workloads.dir/ChainSet.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/Mcf.cpp.o"
  "CMakeFiles/hds_workloads.dir/Mcf.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/NoiseRegion.cpp.o"
  "CMakeFiles/hds_workloads.dir/NoiseRegion.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/Parser.cpp.o"
  "CMakeFiles/hds_workloads.dir/Parser.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/TwoPhase.cpp.o"
  "CMakeFiles/hds_workloads.dir/TwoPhase.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/Twolf.cpp.o"
  "CMakeFiles/hds_workloads.dir/Twolf.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/Vortex.cpp.o"
  "CMakeFiles/hds_workloads.dir/Vortex.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/Vpr.cpp.o"
  "CMakeFiles/hds_workloads.dir/Vpr.cpp.o.d"
  "CMakeFiles/hds_workloads.dir/Workload.cpp.o"
  "CMakeFiles/hds_workloads.dir/Workload.cpp.o.d"
  "libhds_workloads.a"
  "libhds_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
