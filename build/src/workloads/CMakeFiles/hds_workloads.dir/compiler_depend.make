# Empty compiler generated dependencies file for hds_workloads.
# This may be replaced when dependencies are built.
