
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Boxsim.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/Boxsim.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/Boxsim.cpp.o.d"
  "/root/repo/src/workloads/ChainNoiseWorkload.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/ChainNoiseWorkload.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/ChainNoiseWorkload.cpp.o.d"
  "/root/repo/src/workloads/ChainSet.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/ChainSet.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/ChainSet.cpp.o.d"
  "/root/repo/src/workloads/Mcf.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/Mcf.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/Mcf.cpp.o.d"
  "/root/repo/src/workloads/NoiseRegion.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/NoiseRegion.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/NoiseRegion.cpp.o.d"
  "/root/repo/src/workloads/Parser.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/Parser.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/Parser.cpp.o.d"
  "/root/repo/src/workloads/TwoPhase.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/TwoPhase.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/TwoPhase.cpp.o.d"
  "/root/repo/src/workloads/Twolf.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/Twolf.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/Twolf.cpp.o.d"
  "/root/repo/src/workloads/Vortex.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/Vortex.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/Vortex.cpp.o.d"
  "/root/repo/src/workloads/Vpr.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/Vpr.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/Vpr.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/workloads/CMakeFiles/hds_workloads.dir/Workload.cpp.o" "gcc" "src/workloads/CMakeFiles/hds_workloads.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfsm/CMakeFiles/hds_dfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/hds_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hds_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sequitur/CMakeFiles/hds_sequitur.dir/DependInfo.cmake"
  "/root/repo/build/src/vulcan/CMakeFiles/hds_vulcan.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/hds_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
