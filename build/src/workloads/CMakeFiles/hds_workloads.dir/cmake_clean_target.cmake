file(REMOVE_RECURSE
  "libhds_workloads.a"
)
