
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/Cache.cpp" "src/memsim/CMakeFiles/hds_memsim.dir/Cache.cpp.o" "gcc" "src/memsim/CMakeFiles/hds_memsim.dir/Cache.cpp.o.d"
  "/root/repo/src/memsim/MemoryHierarchy.cpp" "src/memsim/CMakeFiles/hds_memsim.dir/MemoryHierarchy.cpp.o" "gcc" "src/memsim/CMakeFiles/hds_memsim.dir/MemoryHierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
