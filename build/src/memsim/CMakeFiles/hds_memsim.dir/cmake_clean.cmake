file(REMOVE_RECURSE
  "CMakeFiles/hds_memsim.dir/Cache.cpp.o"
  "CMakeFiles/hds_memsim.dir/Cache.cpp.o.d"
  "CMakeFiles/hds_memsim.dir/MemoryHierarchy.cpp.o"
  "CMakeFiles/hds_memsim.dir/MemoryHierarchy.cpp.o.d"
  "libhds_memsim.a"
  "libhds_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
