# Empty dependencies file for hds_memsim.
# This may be replaced when dependencies are built.
