file(REMOVE_RECURSE
  "libhds_memsim.a"
)
