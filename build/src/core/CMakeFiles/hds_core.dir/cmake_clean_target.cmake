file(REMOVE_RECURSE
  "libhds_core.a"
)
