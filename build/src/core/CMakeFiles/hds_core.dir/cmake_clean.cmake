file(REMOVE_RECURSE
  "CMakeFiles/hds_core.dir/DynamicOptimizer.cpp.o"
  "CMakeFiles/hds_core.dir/DynamicOptimizer.cpp.o.d"
  "CMakeFiles/hds_core.dir/MarkovPrefetcher.cpp.o"
  "CMakeFiles/hds_core.dir/MarkovPrefetcher.cpp.o.d"
  "CMakeFiles/hds_core.dir/PrefetchEngine.cpp.o"
  "CMakeFiles/hds_core.dir/PrefetchEngine.cpp.o.d"
  "CMakeFiles/hds_core.dir/Runtime.cpp.o"
  "CMakeFiles/hds_core.dir/Runtime.cpp.o.d"
  "CMakeFiles/hds_core.dir/StridePrefetcher.cpp.o"
  "CMakeFiles/hds_core.dir/StridePrefetcher.cpp.o.d"
  "libhds_core.a"
  "libhds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
