# Empty compiler generated dependencies file for hds_core.
# This may be replaced when dependencies are built.
