file(REMOVE_RECURSE
  "libhds_vulcan.a"
)
