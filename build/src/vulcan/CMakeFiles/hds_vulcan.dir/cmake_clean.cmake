file(REMOVE_RECURSE
  "CMakeFiles/hds_vulcan.dir/Image.cpp.o"
  "CMakeFiles/hds_vulcan.dir/Image.cpp.o.d"
  "libhds_vulcan.a"
  "libhds_vulcan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_vulcan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
