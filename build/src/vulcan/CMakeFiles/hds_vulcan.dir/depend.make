# Empty dependencies file for hds_vulcan.
# This may be replaced when dependencies are built.
