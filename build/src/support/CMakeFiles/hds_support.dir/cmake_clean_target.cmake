file(REMOVE_RECURSE
  "libhds_support.a"
)
