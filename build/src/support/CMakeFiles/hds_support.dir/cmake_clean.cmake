file(REMOVE_RECURSE
  "CMakeFiles/hds_support.dir/Table.cpp.o"
  "CMakeFiles/hds_support.dir/Table.cpp.o.d"
  "libhds_support.a"
  "libhds_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hds_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
