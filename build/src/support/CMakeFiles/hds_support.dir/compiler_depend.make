# Empty compiler generated dependencies file for hds_support.
# This may be replaced when dependencies are built.
