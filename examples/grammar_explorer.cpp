//===- examples/grammar_explorer.cpp - Explore the analysis pipeline -------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Feeds a string through the offline pieces of the pipeline and shows
// every intermediate artifact: the incremental Sequitur grammar, the fast
// hot data stream analysis values (the paper's Table 1 columns), the
// prefix-matching DFSM, and the generated detection/prefetching code in
// the shape of Figure 7.
//
// Usage: grammar_explorer [string] [heatThreshold] [minLen] [maxLen]
//   defaults: the paper's worked example, H=8, minLen=2, maxLen=7.
//
// Try:
//   grammar_explorer
//   grammar_explorer mississippimississippi 6 3 11
//
//===----------------------------------------------------------------------===//

#include "analysis/DataRef.h"
#include "analysis/FastAnalyzer.h"
#include "dfsm/CheckCodeGen.h"
#include "dfsm/PrefixDfsm.h"
#include "sequitur/Grammar.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace hds;

int main(int Argc, char **Argv) {
  const std::string Input = Argc > 1 ? Argv[1] : "abaabcabcabcabc";
  analysis::AnalysisConfig Config;
  Config.HeatThreshold = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 8;
  Config.MinLength = Argc > 3 ? std::strtoull(Argv[3], nullptr, 10) : 2;
  Config.MaxLength = Argc > 4 ? std::strtoull(Argv[4], nullptr, 10) : 7;

  std::printf("input: %s  (H=%llu, minLen=%llu, maxLen=%llu)\n\n",
              Input.c_str(), (unsigned long long)Config.HeatThreshold,
              (unsigned long long)Config.MinLength,
              (unsigned long long)Config.MaxLength);

  // Treat each character as a data reference (pc = addr = the character):
  // in the real system the profiler interns (pc, addr) pairs the same way.
  analysis::DataRefTable Refs;
  sequitur::Grammar Grammar;
  for (char C : Input) {
    const auto Ch = static_cast<uint64_t>(static_cast<unsigned char>(C));
    Grammar.append(Refs.intern({Ch, Ch}));
  }

  auto SymbolName = [&Refs](uint32_t Symbol) {
    return std::string(1, static_cast<char>(Refs.refOf(Symbol).Pc));
  };

  std::printf("-- Sequitur grammar (%zu rules, %zu RHS symbols for %zu "
              "input symbols) --\n",
              Grammar.ruleCount(), Grammar.totalRhsSymbols(),
              Grammar.inputLength());
  // Print with single-character terminals.
  for (const sequitur::Rule *R : Grammar.rules()) {
    std::printf("R%u ->", R->id());
    for (sequitur::Symbol *S = R->first(); !S->isGuard(); S = S->next()) {
      if (S->isTerminal())
        std::printf(" %s",
                    SymbolName(static_cast<uint32_t>(S->terminal())).c_str());
      else
        std::printf(" R%u", S->rule()->id());
    }
    std::printf("\n");
  }

  const sequitur::GrammarSnapshot Snapshot = Grammar.snapshot();
  const analysis::FastAnalysisResult Result =
      analysis::analyzeHotStreams(Snapshot, Config);

  std::printf("\n-- fast hot data stream analysis (Figure 5 / Table 1) "
              "--\n");
  Table Out;
  Out.row()
      .cell("rule")
      .cell("word")
      .cell("length")
      .cell("index")
      .cell("uses")
      .cell("coldUses")
      .cell("heat")
      .cell("hot?");
  for (uint32_t R = 0; R < Snapshot.Rules.size(); ++R) {
    const analysis::RuleAnalysis &A = Result.PerRule[R];
    std::string Word;
    for (uint64_t T : Snapshot.expand(R))
      Word += SymbolName(static_cast<uint32_t>(T));
    if (Word.size() > 24)
      Word = Word.substr(0, 21) + "...";
    Out.row()
        .cell(formatString("R%u", R))
        .cell(Word)
        .cell(uint64_t{A.Length})
        .cell(uint64_t{A.Index})
        .cell(uint64_t{A.Uses})
        .cell(uint64_t{A.ColdUses})
        .cell(uint64_t{A.Heat})
        .cell(R == 0 ? "start" : (A.Hot ? "HOT" : "cold"));
  }
  Out.print();

  if (Result.Streams.empty()) {
    std::printf("\nno hot data streams at these thresholds\n");
    return 0;
  }

  std::printf("\n-- hot data streams (%.0f%% of the trace) --\n",
              100.0 * Result.coverage());
  std::vector<std::vector<uint32_t>> StreamSymbols;
  for (const analysis::HotDataStream &Stream : Result.Streams) {
    std::string Word;
    for (uint32_t S : Stream.Symbols)
      Word += SymbolName(S);
    std::printf("  %-24s heat=%llu frequency=%llu\n", Word.c_str(),
                (unsigned long long)Stream.Heat,
                (unsigned long long)Stream.Frequency);
    StreamSymbols.push_back(Stream.Symbols);
  }

  dfsm::DfsmConfig MachineConfig;
  MachineConfig.HeadLength = 2;
  dfsm::PrefixDfsm Machine(StreamSymbols, MachineConfig);
  std::printf("\n-- prefix-matching DFSM (headLen=2) --\n");
  std::printf("%zu states, %zu transitions (%zu streams too short to "
              "prefetch)\n",
              Machine.stateCount(), Machine.transitionCount(),
              Machine.skippedStreamCount());
  for (dfsm::StateId S = 0; S < Machine.stateCount(); ++S) {
    std::printf("  state %u = {", S);
    bool FirstElement = true;
    for (const dfsm::StateElement &E : Machine.elementsOf(S)) {
      std::printf("%s[v%u,%u]", FirstElement ? "" : ", ", E.Stream, E.Seen);
      FirstElement = false;
    }
    std::printf("}%s\n",
                Machine.completionsAt(S).empty() ? "" : "  <- prefetch!");
  }

  const dfsm::CheckCode Code = dfsm::generateCheckCode(Machine, Refs);
  std::printf("\n-- generated detection/prefetching code (Figure 7 shape; "
              "%zu clauses) --\n%s",
              Code.totalClauses(), Code.dump().c_str());
  return 0;
}
