//===- examples/quickstart.cpp - Smallest end-to-end usage -----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Builds a tiny pointer-chasing program against the public Runtime API,
// runs it once without and once with dynamic hot data stream prefetching,
// and prints what the optimizer found and how much time it saved.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include <cstdio>
#include <vector>

using namespace hds;

namespace {

/// A toy program: repeatedly walks 16 scattered linked lists of 16 nodes
/// each, interleaved with scans of a working buffer just big enough that
/// the lists fall out of the L1 cache before each re-walk — the access
/// pattern hot data stream prefetching exists for.
struct ToyProgram {
  vulcan::ProcId WalkProc = 0;
  vulcan::ProcId ScanProc = 0;
  vulcan::SiteId HeadSite = 0;
  vulcan::SiteId FirstSite = 0;
  vulcan::SiteId NodeSite = 0;
  vulcan::SiteId ScanSite = 0;
  std::vector<std::vector<memsim::Addr>> Lists;
  std::vector<memsim::Addr> Heads;
  /// Big enough that (lists + buffer) overflow the 16 KB L1, small
  /// enough to stay L2 resident.
  static constexpr uint64_t ColdRegionBytes = 16 * 1024;
  memsim::Addr ColdRegion = 0;
  uint64_t ColdCursor = 0;

  void setup(core::Runtime &Rt) {
    WalkProc = Rt.declareProcedure("walk_list");
    ScanProc = Rt.declareProcedure("scan_cold");
    HeadSite = Rt.declareSite(WalkProc, "heads[i]");
    FirstSite = Rt.declareSite(WalkProc, "head->first");
    NodeSite = Rt.declareSite(WalkProc, "node->next");
    ScanSite = Rt.declareSite(ScanProc, "cold[cursor]");

    Lists.resize(16);
    Heads.resize(16);
    for (size_t L = 0; L < Lists.size(); ++L)
      Heads[L] = Rt.allocate(8);
    uint64_t Pad = 0;
    for (size_t N = 0; N < 16; ++N)
      for (size_t L = 0; L < Lists.size(); ++L) {
        Lists[L].push_back(Rt.allocate(32));
        // Scatter nodes across cache blocks with a varying pitch (a
        // uniform pitch would alias a list's nodes into one cache set).
        Pad = (Pad + 53) % 160;
        Rt.padHeap(96 + Pad);
      }
    ColdRegion = Rt.allocate(ColdRegionBytes, 64);
  }

  void walkList(core::Runtime &Rt, size_t L) {
    core::Runtime::ProcedureScope Scope(Rt, WalkProc);
    Rt.load(HeadSite, Heads[L]);
    Rt.load(FirstSite, Lists[L][0]);
    Rt.compute(2);
    for (size_t N = 1; N < Lists[L].size(); ++N) {
      Rt.load(NodeSite, Lists[L][N]);
      Rt.compute(2);
      if (N % 6 == 0)
        Rt.loopBackEdge();
    }
  }

  void scanCold(core::Runtime &Rt, uint64_t Refs) {
    core::Runtime::ProcedureScope Scope(Rt, ScanProc);
    for (uint64_t I = 0; I < Refs; ++I) {
      Rt.load(ScanSite, ColdRegion + ColdCursor);
      ColdCursor = (ColdCursor + 32) % (ColdRegionBytes - 64);
      if (I % 16 == 15)
        Rt.loopBackEdge();
    }
  }

  void run(core::Runtime &Rt, uint64_t Sweeps) {
    for (uint64_t S = 0; S < Sweeps; ++S) {
      for (size_t L = 0; L < Lists.size(); ++L) {
        walkList(Rt, L);
        scanCold(Rt, 20);
      }
      scanCold(Rt, 60);
    }
  }
};

uint64_t runOnce(core::RunMode Mode, uint64_t Sweeps, bool Verbose) {
  core::OptimizerConfig Config;
  Config.Mode = Mode;
  // Short phases (with a prime burst-period, see OptimizerConfig.h) so
  // the toy program goes through several full profile/analyze/optimize/
  // hibernate cycles; bursts stay 30 checks long so each one still
  // captures whole list walks.
  Config.Tracing.NCheck0 = 6'007;
  Config.Tracing.NInstr0 = 30;
  Config.Tracing.NAwake = 20;
  Config.Tracing.NHibernate = 60;
  Config.Analysis.MinLength = 8;
  Config.MinUniqueRefs = 8;

  core::Runtime Rt(Config);
  ToyProgram Program;
  Program.setup(Rt);
  Program.run(Rt, Sweeps);

  if (Verbose) {
    const core::RunStats &Stats = Rt.stats();
    std::printf("  mode %-8s: %12llu cycles, %llu accesses, "
                "%zu optimization cycles\n",
                core::runModeName(Mode),
                (unsigned long long)Rt.cycles(),
                (unsigned long long)Stats.TotalAccesses,
                Stats.Cycles.size());
    for (size_t C = 0; C < Stats.Cycles.size(); ++C) {
      const core::CycleStats &Cycle = Stats.Cycles[C];
      std::printf("    cycle %zu: traced %llu refs, %zu hot streams, "
                  "%zu installed, DFSM <%zu states, %zu transitions>, "
                  "%zu procs modified\n",
                  C, (unsigned long long)Cycle.TracedRefs,
                  Cycle.HotStreamsDetected, Cycle.StreamsInstalled,
                  Cycle.DfsmStates, Cycle.DfsmTransitions,
                  Cycle.ProceduresModified);
    }
    std::printf("    prefetches requested: %llu, complete matches: %llu, "
                "useful: %llu, wasted: %llu, partial: %llu\n",
                (unsigned long long)Stats.PrefetchesRequested,
                (unsigned long long)Stats.CompleteMatches,
                (unsigned long long)Rt.memory().l1().stats().UsefulPrefetches,
                (unsigned long long)Rt.memory().l1().stats().WastedPrefetches,
                (unsigned long long)Rt.memory().stats().PartialHits);
  }
  return Rt.cycles();
}

} // namespace

int main() {
  const uint64_t Sweeps = 10000;
  std::printf("hds quickstart: 16 scattered linked lists, %llu sweeps\n\n",
              (unsigned long long)Sweeps);

  std::printf("running the original program...\n");
  const uint64_t Original = runOnce(core::RunMode::Original, Sweeps, true);

  std::printf("running with dynamic hot data stream prefetching...\n");
  const uint64_t Prefetched =
      runOnce(core::RunMode::DynamicPrefetch, Sweeps, true);

  const double Improvement =
      100.0 * (1.0 - static_cast<double>(Prefetched) /
                         static_cast<double>(Original));
  std::printf("\noriginal:   %12llu cycles\n", (unsigned long long)Original);
  std::printf("prefetched: %12llu cycles\n", (unsigned long long)Prefetched);
  std::printf("overall execution time improvement: %.1f%%\n", Improvement);
  return 0;
}
