//===- examples/stream_inspector.cpp - Inspect detected hot streams --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Runs one of the evaluation benchmarks under the full dynamic optimizer
// with verbose analysis enabled: every optimization cycle prints the hot
// data streams the analysis detected (length, frequency, heat, unique
// references, where their matched head was placed) and whether they were
// installed.  Useful both as a debugging aid and to see what the
// profiling + Sequitur + analysis pipeline extracts from a real
// reference stream.
//
// Usage: stream_inspector [workload] [sweeps]
//   workload: vpr | mcf | twolf | parser | vortex | boxsim (default vpr)
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace hds;

int main(int Argc, char **Argv) {
  const std::string Name = Argc > 1 ? Argv[1] : "vpr";
  std::unique_ptr<workloads::Workload> Bench = workloads::createWorkload(Name);
  if (!Bench) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name.c_str());
    return 1;
  }

  core::OptimizerConfig Config;
  Config.Mode = core::RunMode::DynamicPrefetch;
  Config.VerboseAnalysis = true;

  core::Runtime Rt(Config);
  Bench->setup(Rt);

  const uint64_t Sweeps =
      Argc > 2 ? std::strtoull(Argv[2], nullptr, 10)
               : Bench->defaultIterations() / 2;
  std::printf("inspecting %s for %llu sweeps "
              "(stream reports follow per optimization cycle)\n",
              Name.c_str(), (unsigned long long)Sweeps);
  Bench->run(Rt, Sweeps);

  const core::RunStats &Stats = Rt.stats();
  std::printf("\n%zu optimization cycles, %llu accesses, %llu cycles\n",
              Stats.Cycles.size(), (unsigned long long)Stats.TotalAccesses,
              (unsigned long long)Rt.cycles());
  for (size_t C = 0; C < Stats.Cycles.size(); ++C) {
    const core::CycleStats &Cycle = Stats.Cycles[C];
    std::printf("cycle %zu: traced %llu, detected %zu, installed %zu, "
                "DFSM <%zu states, %zu transitions>, %zu clauses, "
                "%zu procs\n",
                C, (unsigned long long)Cycle.TracedRefs,
                Cycle.HotStreamsDetected, Cycle.StreamsInstalled,
                Cycle.DfsmStates, Cycle.DfsmTransitions,
                Cycle.CheckClausesInjected, Cycle.ProceduresModified);
  }
  const memsim::HierarchyStats &Mem = Rt.memory().stats();
  const memsim::CacheStats &L1 = Rt.memory().l1().stats();
  std::printf("matches %llu, prefetches %llu, useful L1 %llu, "
              "stale-frame accesses %llu\n",
              (unsigned long long)Stats.CompleteMatches,
              (unsigned long long)Stats.PrefetchesRequested,
              (unsigned long long)L1.UsefulPrefetches,
              (unsigned long long)Stats.StaleFrameAccesses);
  std::printf("prefetch detail: issued %llu, redundant %llu, dropped %llu, "
              "partial hits %llu, wasted L1 %llu, L1 miss rate %.1f%%\n",
              (unsigned long long)Mem.PrefetchesIssued,
              (unsigned long long)Mem.PrefetchesRedundant,
              (unsigned long long)Mem.PrefetchesDroppedQueueFull,
              (unsigned long long)Mem.PartialHits,
              (unsigned long long)L1.WastedPrefetches, 100.0 * L1.missRate());
  return 0;
}
