//===- examples/adaptive_phases.cpp - Adapting to program phases -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// The paper's motivation for a *dynamic* scheme over a static one: "for
// programs with distinct phase behavior, a dynamic prefetching scheme
// that adapts to program phase transitions may perform better"
// (Section 1), with the profile/analyze/optimize/hibernate cycle
// repeating for long-running programs (Figure 1).
//
// This example builds a program with two phases that walk *disjoint* sets
// of linked lists.  A static optimizer trained on phase A would prefetch
// nothing useful in phase B; the dynamic optimizer re-profiles after
// every hibernation and swaps its installed streams.  The per-cycle
// report shows the detected streams tracking the phase change, and the
// cycle counts show prefetching keeps winning in both phases.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "workloads/ChainSet.h"
#include "workloads/NoiseRegion.h"

#include <cstdio>

using namespace hds;
using namespace hds::workloads;

namespace {

struct TwoPhaseProgram {
  ChainSet PhaseA;
  ChainSet PhaseB;
  NoiseRegion Noise;

  void setup(core::Runtime &Rt) {
    ChainSetConfig Chains;
    Chains.NumChains = 24;
    Chains.NodesPerChain = 16;
    Chains.WalkerProcs = 6;
    Chains.ScatterPadBytes = 96;
    Chains.ComputePerHop = 2;
    PhaseA.setup(Rt, Chains, "phaseA");
    PhaseB.setup(Rt, Chains, "phaseB");

    NoiseRegionConfig NoiseConfig;
    NoiseConfig.Bytes = 12 * 1024;
    NoiseConfig.StrideBytes = 32;
    Noise.setup(Rt, NoiseConfig, "shared");
  }

  void sweep(core::Runtime &Rt, bool InPhaseA) {
    ChainSet &Active = InPhaseA ? PhaseA : PhaseB;
    for (uint32_t C = 0; C < Active.chainCount(); ++C) {
      Active.walk(Rt, C);
      Noise.step(Rt, 10);
    }
    Noise.step(Rt, 40);
  }

  void run(core::Runtime &Rt, uint64_t SweepsPerPhase, int Phases) {
    for (int Phase = 0; Phase < Phases; ++Phase)
      for (uint64_t S = 0; S < SweepsPerPhase; ++S)
        sweep(Rt, Phase % 2 == 0);
  }
};

uint64_t runOnce(core::RunMode Mode, bool Verbose) {
  core::OptimizerConfig Config;
  Config.Mode = Mode;
  Config.Tracing.NCheck0 = 1'481; // short prime burst-period
  Config.Tracing.NInstr0 = 30;
  Config.Tracing.NAwake = 30;
  Config.Tracing.NHibernate = 120;

  core::Runtime Rt(Config);
  TwoPhaseProgram Program;
  Program.setup(Rt);
  Program.run(Rt, /*SweepsPerPhase=*/4000, /*Phases=*/4);

  if (Verbose) {
    std::printf("\nper-cycle view (phases switch every 4000 sweeps):\n");
    const core::RunStats &Stats = Rt.stats();
    for (size_t C = 0; C < Stats.Cycles.size(); ++C) {
      const core::CycleStats &Cycle = Stats.Cycles[C];
      std::printf("  cycle %2zu: %2zu streams installed, %zu procedures "
                  "modified, %llu refs traced\n",
                  C, Cycle.StreamsInstalled, Cycle.ProceduresModified,
                  (unsigned long long)Cycle.TracedRefs);
    }
    std::printf("  complete matches: %llu, prefetches: %llu, useful: "
                "%llu\n",
                (unsigned long long)Stats.CompleteMatches,
                (unsigned long long)Stats.PrefetchesRequested,
                (unsigned long long)
                    Rt.memory().l1().stats().UsefulPrefetches);
  }
  return Rt.cycles();
}

} // namespace

int main() {
  std::printf("adaptive phases: 4 phases x 4000 sweeps, phase A and B "
              "walk disjoint list sets\n");

  const uint64_t Original = runOnce(core::RunMode::Original, false);
  const uint64_t Prefetched =
      runOnce(core::RunMode::DynamicPrefetch, true);

  std::printf("\noriginal:   %llu cycles\n", (unsigned long long)Original);
  std::printf("prefetched: %llu cycles\n", (unsigned long long)Prefetched);
  std::printf("improvement across phase changes: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(Prefetched) /
                                 static_cast<double>(Original)));
  std::printf("\nthe dynamic scheme re-profiles every cycle, so the "
              "installed streams follow the active phase — a static "
              "scheme trained on one phase would idle for half the run\n");
  return 0;
}
