//===- tools/hds_matrix.cpp - Sharded experiment-matrix driver -------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Runs the (workload × RunMode × seed × scale) experiment matrix through
// the engine's Executor API (src/engine/ExecutorFactory.h) and emits
// machine-readable results.  The merged output is byte-identical for any
// execution strategy — local threads (--jobs) or the fleet service
// (--serve/--workers) — so trajectory files can be diffed across
// machines, thread counts, and transports (see docs/engine.md for the
// determinism contract and the JSON schema).
//
// The distributed flags here are thin wrappers over the fleet service;
// `hds_fleet` is the full-featured front end (status, resume,
// summarize — docs/fleet.md).  Both parse the same cli::FleetOptions
// fragment, so the vocabularies cannot drift.
//
// Usage:
//   hds_matrix [options]
//     --jobs N              worker threads (default: hardware concurrency)
//     --scale F             iteration scale factor (default 1.0)
//     --seeds N             add layout-seed variants 1..N of every cell
//     --filter key=value    narrow the matrix (workload=mcf, mode=dynpref,
//                           seed=3); repeatable, filters AND together
//     --out FILE            write the results JSON to FILE ("-" = stdout)
//     --timing              include wall-clock timing in the JSON (makes
//                           the output non-deterministic by design)
//     --lint-timing FILE    embed a lint_timing.json (scripts/lint.sh)
//                           under "timing.lint"
//     --list                print the selected specs and exit
//     --quiet               suppress the progress lines on stderr
//
//   Fleet execution (cli/Options.h fleet fragment; see docs/fleet.md):
//     --serve ADDR, --workers N, --job-timeout MS, --idle-timeout MS,
//     --token SECRET, --allow-remote, --heartbeat-interval MS,
//     --heartbeat-misses N, --checkpoint FILE on the serve side;
//     --worker ADDR plus the worker-side subset to join a fleet.
//
//   Result comparison:
//     --diff A.json B.json  compare two results files cell-by-cell;
//                           exits 1 when B regressed against A
//     --threshold PCT       relative change a metric must exceed to
//                           count as a difference (default 0 = exact)
//     --wall-threshold PCT  also gate timing.accesses_per_sec: a drop
//                           beyond PCT is a regression (default: all
//                           timing.* paths are ignored as machine noise)
//
//===----------------------------------------------------------------------===//

#include "cli/Options.h"
#include "engine/ExecutorFactory.h"
#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/ResultsDiff.h"
#include "engine/ResultsJson.h"
#include "fleet/FleetCli.h"
#include "fleet/Worker.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace hds;

namespace {

struct Options {
  unsigned Jobs = 0; // 0 = hardware concurrency
  double Scale = 1.0;
  uint64_t Seeds = 0;
  std::vector<std::string> Filters;
  std::string OutPath;
  bool Timing = false;
  std::string LintTimingPath;
  bool List = false;
  bool Quiet = false;

  /// Distributed modes: the shared fleet vocabulary.
  cli::FleetOptions Fleet;

  // Diff mode.
  std::string DiffA, DiffB;
  double ThresholdPct = 0.0;
  double WallThresholdPct = -1.0; ///< < 0 ignores timing.* (the default)
};

[[noreturn]] void usage(const char *Binary) {
  std::fprintf(
      stderr,
      "usage: %s [--jobs N] [--scale F] [--seeds N] [--filter key=value]...\n"
      "          [--out FILE] [--timing] [--lint-timing FILE] [--list]\n"
      "          [--quiet]%s\n"
      "       %s%s\n"
      "       %s --diff A.json B.json [--threshold PCT] "
      "[--wall-threshold PCT]\n"
      "%s"
      "addresses: host:port (port 0 = ephemeral) or unix:/path\n",
      Binary, cli::fleetServeOptionsUsage().c_str(), Binary,
      cli::fleetWorkerOptionsUsage().c_str(), Binary,
      engine::filterHelp().c_str());
  std::exit(2);
}

Options parseOptions(int Argc, char **Argv) {
  Options Opts;
  const char *Binary = Argv[0];
  cli::OptionSet Set([Binary] { usage(Binary); });
  Set.uns("--jobs", Opts.Jobs)
      .positiveDouble("--scale", Opts.Scale)
      .u64("--seeds", Opts.Seeds)
      .strList("--filter", Opts.Filters)
      .str("--out", Opts.OutPath)
      .flag("--timing", Opts.Timing)
      .str("--lint-timing", Opts.LintTimingPath)
      .flag("--list", Opts.List)
      .flag("--quiet", Opts.Quiet)
      .strPair("--diff", Opts.DiffA, Opts.DiffB)
      .nonNegativeDouble("--threshold", Opts.ThresholdPct)
      .nonNegativeDouble("--wall-threshold", Opts.WallThresholdPct);
  // Both fleet sides: this tool can coordinate or join.  Rows present on
  // both sides register twice; the parser takes the first match and both
  // write the same field, so the duplicate is harmless.
  cli::addFleetServeOptions(Set, Opts.Fleet);
  cli::addFleetWorkerOptions(Set, Opts.Fleet);
  Set.parse(Argc, Argv);
  if (!Opts.Fleet.WorkerAddr.empty() &&
      (!Opts.Fleet.ServeAddr.empty() || Opts.Fleet.Workers != 0 ||
       !Opts.DiffA.empty())) {
    std::fprintf(stderr,
                 "error: --worker excludes --serve/--workers/--diff\n");
    std::exit(2);
  }
  return Opts;
}

std::string readWholeFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Ok = false;
    return std::string();
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Ok = true;
  return Buf.str();
}

void printSummary(const std::vector<engine::RunResult> &Results) {
  Table Out;
  Out.row()
      .cell("experiment")
      .cell("status")
      .cell("cycles")
      .cell("L1 miss")
      .cell("prefetches")
      .cell("useful");
  for (const engine::RunResult &Result : Results) {
    auto Row = Out.row();
    Row.cell(Result.Spec.label());
    if (!Result.ok()) {
      Row.cell(Result.State == engine::RunResult::Status::Error
                   ? "ERROR"
                   : "cancelled");
      continue;
    }
    Row.cell("ok")
        .cell(Result.Cycles)
        .cell(100.0 * Result.L1.missRate(), "%.1f%%")
        .cell(Result.Memory.PrefetchesIssued)
        .cell(Result.L1.UsefulPrefetches + Result.L2.UsefulPrefetches);
  }
  Out.print();
}

int runDiffMode(const Options &Opts) {
  bool OkA = false, OkB = false;
  const std::string JsonA = readWholeFile(Opts.DiffA, OkA);
  const std::string JsonB = readWholeFile(Opts.DiffB, OkB);
  if (!OkA || !OkB) {
    std::fprintf(stderr, "error: cannot read '%s'\n",
                 (!OkA ? Opts.DiffA : Opts.DiffB).c_str());
    return 2;
  }
  engine::DiffOptions Diff;
  Diff.ThresholdPct = Opts.ThresholdPct;
  Diff.WallThresholdPct = Opts.WallThresholdPct;
  engine::DiffReport Report;
  std::string Error;
  if (!engine::diffResults(JsonA, JsonB, Diff, Report, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  const std::string Text = Report.render(Opts.DiffA, Opts.DiffB);
  std::fwrite(Text.data(), 1, Text.size(), stdout);
  return Report.regressed() ? 1 : 0;
}

int runWorkerMode(const Options &Opts) {
  std::string Error;
  const fleet::WorkerExit Exit = fleet::runWorker(
      Opts.Fleet.WorkerAddr, fleet::workerOptionsFromCli(Opts.Fleet), &Error);
  if (Exit == fleet::WorkerExit::CleanShutdown) {
    if (!Opts.Quiet)
      std::fprintf(stderr, "worker: clean shutdown\n");
    return 0;
  }
  std::fprintf(stderr, "worker: %s\n", Error.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  const Options Opts = parseOptions(Argc, Argv);

  if (!Opts.DiffA.empty())
    return runDiffMode(Opts);
  if (!Opts.Fleet.WorkerAddr.empty())
    return runWorkerMode(Opts);

  std::vector<engine::ExperimentSpec> Specs =
      engine::defaultMatrix(Opts.Scale);
  if (Opts.Seeds > 0) {
    const std::vector<engine::ExperimentSpec> Base = Specs;
    for (uint64_t Seed = 1; Seed <= Opts.Seeds; ++Seed)
      for (const engine::ExperimentSpec &Spec : Base) {
        engine::ExperimentSpec Variant = Spec;
        Variant.Seed = Seed;
        Specs.push_back(Variant);
      }
  }
  for (const std::string &Filter : Opts.Filters) {
    std::string Error;
    if (!engine::applyFilter(Specs, Filter, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
  }
  if (Specs.empty()) {
    std::fprintf(stderr, "error: filters selected no experiments\n");
    return 2;
  }

  if (Opts.List) {
    for (const engine::ExperimentSpec &Spec : Specs)
      std::printf("%s\n", Spec.label().c_str());
    return 0;
  }

  engine::TimingInfo Timing;
  if (!Opts.LintTimingPath.empty()) {
    bool Ok = false;
    std::string Text = readWholeFile(Opts.LintTimingPath, Ok);
    if (!Ok) {
      std::fprintf(stderr, "error: cannot read lint timing file '%s'\n",
                   Opts.LintTimingPath.c_str());
      return 2;
    }
    // Trim trailing whitespace so the embedded value nests cleanly.
    while (!Text.empty() &&
           (Text.back() == '\n' || Text.back() == '\r' || Text.back() == ' '))
      Text.pop_back();
    Timing.LintJson = Text;
  }

  const bool Distributed =
      !Opts.Fleet.ServeAddr.empty() || Opts.Fleet.Workers != 0;
  unsigned Jobs = Opts.Jobs != 0 ? Opts.Jobs
                                 : std::thread::hardware_concurrency();
  if (Jobs == 0)
    Jobs = 1;

  // Pick the executor: same API, different transport.
  std::unique_ptr<engine::Executor> Exec;
  if (Distributed) {
    engine::FleetConfig Config = fleet::fleetConfigFromCli(Opts.Fleet);
    if (Opts.Fleet.ServeAddr.empty())
      // Workers-only mode: a private Unix socket nobody races on.
      Config.ListenAddr =
          "unix:/tmp/hds-matrix-" + std::to_string(getpid()) + ".sock";
    std::string Bound, Error;
    std::unique_ptr<engine::Executor> Remote =
        engine::makeFleet(Config, &Bound, &Error);
    if (!Remote) {
      std::fprintf(stderr, "error: cannot listen on '%s': %s\n",
                   Config.ListenAddr.c_str(), Error.c_str());
      return 2;
    }
    if (!Opts.Quiet)
      std::fprintf(stderr, "serving %zu experiments on %s (%u local "
                           "worker(s))\n",
                   Specs.size(), Bound.c_str(), Opts.Fleet.Workers);
    Exec = std::move(Remote);
  } else {
    engine::FleetConfig Config;
    Config.Jobs = Jobs;
    Exec = engine::makeLocal(Config);
  }

  std::function<void(std::size_t, const engine::RunResult &)> OnResult;
  const size_t Total = Specs.size();
  if (!Opts.Quiet)
    // Mutable counter; deliveries are serialized under the sink lock.
    OnResult = [Total, Done = size_t{0}](
                   size_t, const engine::RunResult &R) mutable {
      std::fprintf(stderr, "[%zu/%zu] %s: %s\n", ++Done, Total,
                   R.Spec.label().c_str(),
                   R.ok() ? "ok"
                          : (R.State == engine::RunResult::Status::Error
                                 ? R.Error.c_str()
                                 : "cancelled"));
    };

  const auto Start = std::chrono::steady_clock::now();
  const std::vector<engine::RunResult> Results =
      Exec->run(Specs, std::move(OnResult));
  const auto End = std::chrono::steady_clock::now();

  if (Opts.Timing) {
    Timing.IncludeWall = true;
    Timing.WallMillis = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(End - Start)
            .count());
    Timing.Jobs = Distributed ? Opts.Fleet.Workers : Jobs;
  }

  // With --out - the JSON owns stdout; keep the human table off it.
  if (Opts.OutPath != "-")
    printSummary(Results);

  bool AnyError = false;
  for (const engine::RunResult &Result : Results)
    if (Result.State == engine::RunResult::Status::Error)
      AnyError = true;

  if (!Opts.OutPath.empty()) {
    const std::string Json = engine::resultsToJson(Results, Timing);
    if (Opts.OutPath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
    } else {
      std::FILE *Out = std::fopen(Opts.OutPath.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     Opts.OutPath.c_str());
        return 2;
      }
      std::fwrite(Json.data(), 1, Json.size(), Out);
      std::fclose(Out);
      if (!Opts.Quiet)
        std::fprintf(stderr, "results: %zu experiments -> %s\n",
                     Results.size(), Opts.OutPath.c_str());
    }
  }

  return AnyError ? 1 : 0;
}
