//===- tools/hds_matrix.cpp - Sharded experiment-matrix driver -------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Runs the (workload × RunMode × seed × scale) experiment matrix through
// the parallel engine (src/engine) and emits machine-readable results.
// The merged output is byte-identical for any --jobs value — only
// wall-clock changes — so trajectory files can be diffed across machines
// and thread counts (see docs/engine.md for the determinism contract and
// the JSON schema).
//
// Usage:
//   hds_matrix [options]
//     --jobs N              worker threads (default: hardware concurrency)
//     --scale F             iteration scale factor (default 1.0)
//     --seeds N             add layout-seed variants 1..N of every cell
//     --filter key=value    narrow the matrix (workload=mcf, mode=dynpref,
//                           seed=3); repeatable, filters AND together
//     --out FILE            write the results JSON to FILE ("-" = stdout)
//     --timing              include wall-clock timing in the JSON (makes
//                           the output non-deterministic by design)
//     --lint-timing FILE    embed a lint_timing.json (scripts/lint.sh)
//                           under "timing.lint"
//     --list                print the selected specs and exit
//     --quiet               suppress the progress lines on stderr
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/ResultsJson.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace hds;

namespace {

struct Options {
  unsigned Jobs = 0; // 0 = hardware concurrency
  double Scale = 1.0;
  uint64_t Seeds = 0;
  std::vector<std::string> Filters;
  std::string OutPath;
  bool Timing = false;
  std::string LintTimingPath;
  bool List = false;
  bool Quiet = false;
};

[[noreturn]] void usage(const char *Binary) {
  std::fprintf(
      stderr,
      "usage: %s [--jobs N] [--scale F] [--seeds N] [--filter key=value]...\n"
      "          [--out FILE] [--timing] [--lint-timing FILE] [--list]\n"
      "          [--quiet]\n"
      "filters: workload=<name>  mode=<original|base|prof|hds|nopref|"
      "seqpref|dynpref>  seed=<n>\n",
      Binary);
  std::exit(2);
}

Options parseOptions(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0]);
      return Argv[++I];
    };
    if (Arg == "--jobs") {
      Opts.Jobs = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    } else if (Arg == "--scale") {
      const char *Text = Next();
      char *End = nullptr;
      Opts.Scale = std::strtod(Text, &End);
      if (End == Text || *End != '\0' || !(Opts.Scale > 0.0)) {
        std::fprintf(stderr, "error: invalid --scale '%s' (need a finite "
                             "number > 0)\n",
                     Text);
        std::exit(2);
      }
    } else if (Arg == "--seeds") {
      Opts.Seeds = std::strtoull(Next(), nullptr, 10);
    } else if (Arg == "--filter") {
      Opts.Filters.push_back(Next());
    } else if (Arg == "--out") {
      Opts.OutPath = Next();
    } else if (Arg == "--timing") {
      Opts.Timing = true;
    } else if (Arg == "--lint-timing") {
      Opts.LintTimingPath = Next();
    } else if (Arg == "--list") {
      Opts.List = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else {
      usage(Argv[0]);
    }
  }
  return Opts;
}

std::string readWholeFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Ok = false;
    return std::string();
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Ok = true;
  std::string Text = Buf.str();
  // Trim trailing whitespace so the embedded value nests cleanly.
  while (!Text.empty() &&
         (Text.back() == '\n' || Text.back() == '\r' || Text.back() == ' '))
    Text.pop_back();
  return Text;
}

void printSummary(const std::vector<engine::RunResult> &Results) {
  Table Out;
  Out.row()
      .cell("experiment")
      .cell("status")
      .cell("cycles")
      .cell("L1 miss")
      .cell("prefetches")
      .cell("useful");
  for (const engine::RunResult &Result : Results) {
    auto Row = Out.row();
    Row.cell(Result.Spec.label());
    if (!Result.ok()) {
      Row.cell(Result.State == engine::RunResult::Status::Error
                   ? "ERROR"
                   : "cancelled");
      continue;
    }
    Row.cell("ok")
        .cell(Result.Cycles)
        .cell(100.0 * Result.L1.missRate(), "%.1f%%")
        .cell(Result.Memory.PrefetchesIssued)
        .cell(Result.L1.UsefulPrefetches + Result.L2.UsefulPrefetches);
  }
  Out.print();
}

} // namespace

int main(int Argc, char **Argv) {
  const Options Opts = parseOptions(Argc, Argv);

  std::vector<engine::ExperimentSpec> Specs =
      engine::defaultMatrix(Opts.Scale);
  if (Opts.Seeds > 0) {
    const std::vector<engine::ExperimentSpec> Base = Specs;
    for (uint64_t Seed = 1; Seed <= Opts.Seeds; ++Seed)
      for (const engine::ExperimentSpec &Spec : Base) {
        engine::ExperimentSpec Variant = Spec;
        Variant.Seed = Seed;
        Specs.push_back(Variant);
      }
  }
  for (const std::string &Filter : Opts.Filters) {
    std::string Error;
    if (!engine::applyFilter(Specs, Filter, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
  }
  if (Specs.empty()) {
    std::fprintf(stderr, "error: filters selected no experiments\n");
    return 2;
  }

  if (Opts.List) {
    for (const engine::ExperimentSpec &Spec : Specs)
      std::printf("%s\n", Spec.label().c_str());
    return 0;
  }

  engine::TimingInfo Timing;
  if (!Opts.LintTimingPath.empty()) {
    bool Ok = false;
    Timing.LintJson = readWholeFile(Opts.LintTimingPath, Ok);
    if (!Ok) {
      std::fprintf(stderr, "error: cannot read lint timing file '%s'\n",
                   Opts.LintTimingPath.c_str());
      return 2;
    }
  }

  engine::MatrixOptions Matrix;
  Matrix.Jobs = Opts.Jobs != 0 ? Opts.Jobs
                               : std::thread::hardware_concurrency();
  if (Matrix.Jobs == 0)
    Matrix.Jobs = 1;
  const size_t Total = Specs.size();
  if (!Opts.Quiet)
    // Mutable counter; deliveries are serialized under the sink lock.
    Matrix.OnResult = [Total, Done = size_t{0}](
                          size_t, const engine::RunResult &R) mutable {
      std::fprintf(stderr, "[%zu/%zu] %s: %s\n", ++Done, Total,
                   R.Spec.label().c_str(),
                   R.ok() ? "ok"
                          : (R.State == engine::RunResult::Status::Error
                                 ? R.Error.c_str()
                                 : "cancelled"));
    };

  const auto Start = std::chrono::steady_clock::now();
  const std::vector<engine::RunResult> Results =
      engine::runMatrix(Specs, Matrix);
  const auto End = std::chrono::steady_clock::now();

  if (Opts.Timing) {
    Timing.IncludeWall = true;
    Timing.WallMillis = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(End - Start)
            .count());
    Timing.Jobs = Matrix.Jobs;
  }

  // With --out - the JSON owns stdout; keep the human table off it.
  if (Opts.OutPath != "-")
    printSummary(Results);

  bool AnyError = false;
  for (const engine::RunResult &Result : Results)
    if (Result.State == engine::RunResult::Status::Error)
      AnyError = true;

  if (!Opts.OutPath.empty()) {
    const std::string Json = engine::resultsToJson(Results, Timing);
    if (Opts.OutPath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
    } else {
      std::FILE *Out = std::fopen(Opts.OutPath.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     Opts.OutPath.c_str());
        return 2;
      }
      std::fwrite(Json.data(), 1, Json.size(), Out);
      std::fclose(Out);
      if (!Opts.Quiet)
        std::fprintf(stderr, "results: %zu experiments -> %s\n",
                     Results.size(), Opts.OutPath.c_str());
    }
  }

  return AnyError ? 1 : 0;
}
