//===- tools/hds_fuzz.cpp - Seeded differential trace fuzzer ---------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Generates adversarial reference traces (hot loops, phase shifts, noise
// floods, regex-shaped recurrences, cache-thrash sweeps — see
// src/testing/TraceGen.h) and runs
// the full differential oracle suite over each: Sequitur invariants +
// exact decompression, fast-vs-precise analyzer cross-checks, and
// DFSM-vs-reference-matcher equivalence.  Every trace is a pure function
// of its seed, so any reported failure reproduces with
//
//   hds_fuzz --start <seed> --seeds 1 --verbose
//
// Usage:
//   hds_fuzz [options]
//     --start <n>     first seed (default 1)
//     --seeds <n>     number of consecutive seeds to run (default 50)
//     --headlen <n>   DFSM prefix match length (default 2)
//     --minlen <n>    analysis minLen (default 2)
//     --maxlen <n>    analysis maxLen (default 100)
//     --heat <n>      analysis heat threshold H (default 8)
//     --verbose       per-seed progress to stderr
//
// Exit status: 0 when every seed passes all oracles, 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "replay/Oracles.h"
#include "testing/TraceGen.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

struct Options {
  uint64_t Start = 1;
  uint64_t Seeds = 50;
  uint32_t HeadLength = 2;
  hds::analysis::AnalysisConfig Analysis;
  bool Verbose = false;
};

[[noreturn]] void usage(const char *Binary) {
  std::fprintf(stderr,
               "usage: %s [--start N] [--seeds N] [--headlen N]\n"
               "          [--minlen N] [--maxlen N] [--heat N] [--verbose]\n",
               Binary);
  std::exit(1);
}

Options parseOptions(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0]);
      return Argv[++I];
    };
    if (Arg == "--start")
      Opts.Start = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--seeds")
      Opts.Seeds = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--headlen")
      Opts.HeadLength =
          static_cast<uint32_t>(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--minlen")
      Opts.Analysis.MinLength = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--maxlen")
      Opts.Analysis.MaxLength = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--heat")
      Opts.Analysis.HeatThreshold = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--verbose")
      Opts.Verbose = true;
    else
      usage(Argv[0]);
  }
  return Opts;
}

} // namespace

int main(int Argc, char **Argv) {
  const Options Opts = parseOptions(Argc, Argv);

  uint64_t Failures = 0;
  uint64_t TotalSymbols = 0;
  for (uint64_t Seed = Opts.Start; Seed < Opts.Start + Opts.Seeds; ++Seed) {
    const std::vector<uint32_t> Trace = hds::testing::generateTrace(Seed);
    TotalSymbols += Trace.size();
    const char *Shape =
        hds::testing::shapeName(hds::testing::shapeForSeed(Seed));
    if (Opts.Verbose)
      std::fprintf(stderr, "seed %llu (%s): %zu symbols\n",
                   (unsigned long long)Seed, Shape, Trace.size());

    const hds::replay::OracleReport Report =
        hds::replay::runOracleSuite(Trace, Opts.Analysis, Opts.HeadLength);
    if (!Report.Passed) {
      ++Failures;
      std::fprintf(stderr,
                   "FAIL seed %llu (%s, %zu symbols): %s\n"
                   "  reproduce: hds_fuzz --start %llu --seeds 1 --verbose\n",
                   (unsigned long long)Seed, Shape, Trace.size(),
                   Report.Failure.c_str(), (unsigned long long)Seed);
    }
  }

  std::printf("%llu seeds [%llu, %llu): %llu failed, %llu symbols fuzzed\n",
              (unsigned long long)Opts.Seeds,
              (unsigned long long)Opts.Start,
              (unsigned long long)(Opts.Start + Opts.Seeds),
              (unsigned long long)Failures,
              (unsigned long long)TotalSymbols);
  return Failures == 0 ? 0 : 1;
}
