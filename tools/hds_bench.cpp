//===- tools/hds_bench.cpp - Wall-clock benchmark harness ------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
//
// Measures how fast the simulator itself runs: wall-clock accesses/sec
// for every (workload, mode) cell, recorded alongside the simulated
// cycle counts in one hds-matrix-results-v1 document with per-result
// "timing" objects (the BENCH_matrix.json shape).  The simulated
// metrics in that document stay byte-deterministic; only the timing
// gauges vary run to run, and `hds_matrix --diff` ignores them unless
// asked to gate with --wall-threshold.  See docs/benchmarks.md.
//
// Cells run sequentially in one thread — this harness measures the
// per-access hot path, and concurrent cells would contend for cache and
// memory bandwidth and poison each other's readings.  Each cell runs
// --repeat times and keeps the fastest wall time (the run least
// disturbed by the machine; the simulated results of every repeat are
// identical by construction).
//
//   hds_bench [options]
//     --scale F             iteration scale factor (default 1.0)
//     --repeat N            timed runs per cell, fastest kept (default 3)
//     --filter key=value    narrow the matrix (workload=, mode=, seed=)
//     --out FILE            write results JSON here ('-' = stdout)
//     --quiet               suppress the summary table
//
//===----------------------------------------------------------------------===//

#include "cli/Options.h"
#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/ResultsJson.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace hds;

namespace {

struct Options {
  double Scale = 1.0;
  unsigned Repeat = 3;
  std::vector<std::string> Filters;
  std::string OutPath;
  bool Quiet = false;
};

[[noreturn]] void usage(const char *Binary) {
  std::fprintf(stderr,
               "usage: %s [--scale F] [--repeat N] [--filter key=value]...\n"
               "          [--out FILE] [--quiet]\n"
               "%s",
               Binary, engine::filterHelp().c_str());
  std::exit(2);
}

Options parseOptions(int Argc, char **Argv) {
  Options Opts;
  const char *Binary = Argv[0];
  cli::OptionSet Set([Binary] { usage(Binary); });
  Set.positiveDouble("--scale", Opts.Scale)
      .unsAtLeastOne("--repeat", Opts.Repeat)
      .strList("--filter", Opts.Filters)
      .str("--out", Opts.OutPath)
      .flag("--quiet", Opts.Quiet);
  Set.parse(Argc, Argv);
  return Opts;
}

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runs one cell --repeat times, keeping the result of the fastest run
/// with its wall time stamped into RunResult::Timing.
engine::RunResult benchCell(const engine::ExperimentSpec &Spec,
                            unsigned Repeat) {
  engine::RunResult Best;
  uint64_t BestNanos = 0;
  for (unsigned Run = 0; Run < Repeat; ++Run) {
    const uint64_t Start = nowNanos();
    engine::RunResult Result = engine::runExperiment(Spec);
    const uint64_t Elapsed = nowNanos() - Start;
    if (Run == 0 || Elapsed < BestNanos) {
      BestNanos = Elapsed;
      Best = std::move(Result);
    }
  }
  if (Best.ok() && BestNanos > 0) {
    Best.Timing.WallNanos = BestNanos;
    const double Rate = static_cast<double>(Best.Stats.TotalAccesses) *
                        1.0e9 / static_cast<double>(BestNanos);
    Best.Timing.AccessesPerSec = static_cast<uint64_t>(Rate + 0.5);
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  const Options Opts = parseOptions(Argc, Argv);

  std::vector<engine::ExperimentSpec> Specs =
      engine::defaultMatrix(Opts.Scale);
  for (const std::string &Filter : Opts.Filters) {
    std::string Error;
    if (!engine::applyFilter(Specs, Filter, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
  }
  if (Specs.empty()) {
    std::fprintf(stderr, "error: filters matched no cells\n");
    return 2;
  }

  const uint64_t SuiteStart = nowNanos();
  std::vector<engine::RunResult> Results;
  Results.reserve(Specs.size());
  for (const engine::ExperimentSpec &Spec : Specs)
    Results.push_back(benchCell(Spec, Opts.Repeat));
  const uint64_t SuiteNanos = nowNanos() - SuiteStart;

  if (!Opts.Quiet) {
    Table Summary;
    Summary.row()
        .cell("experiment")
        .cell("status")
        .cell("cycles")
        .cell("accesses")
        .cell("wall ms")
        .cell("Macc/s");
    for (const engine::RunResult &Result : Results) {
      auto Row = Summary.row();
      Row.cell(Result.Spec.label());
      if (!Result.ok()) {
        Row.cell(Result.State == engine::RunResult::Status::Error ? "error"
                                                                  : "cancelled");
        continue;
      }
      Row.cell("ok")
          .cell(Result.Cycles)
          .cell(Result.Stats.TotalAccesses)
          .cell(static_cast<double>(Result.Timing.WallNanos) / 1.0e6, "%.2f")
          .cell(static_cast<double>(Result.Timing.AccessesPerSec) / 1.0e6,
                "%.1f");
    }
    Summary.print();
  }

  if (!Opts.OutPath.empty()) {
    engine::TimingInfo Timing;
    Timing.IncludeWall = true;
    Timing.WallMillis = SuiteNanos / 1000000u;
    Timing.Jobs = 1;
    Timing.IncludePerResult = true;
    const std::string Json = engine::resultsToJson(Results, Timing);
    if (Opts.OutPath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
    } else {
      std::ofstream Out(Opts.OutPath, std::ios::binary);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     Opts.OutPath.c_str());
        return 1;
      }
      Out.write(Json.data(), static_cast<std::streamsize>(Json.size()));
    }
  }

  for (const engine::RunResult &Result : Results)
    if (!Result.ok())
      return 1;
  return 0;
}
