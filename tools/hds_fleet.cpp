//===- tools/hds_fleet.cpp - Fleet experiment service front end ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// The full-featured front end for the fleet experiment service
// (src/fleet/, docs/fleet.md): coordinate a matrix across worker
// processes, join a fleet as a worker, and inspect or finish checkpoint
// journals.  `hds_matrix --serve/--worker` are thin wrappers over the
// same machinery; this tool adds the lifecycle subcommands.
//
// Usage:
//   hds_fleet serve [matrix options] [fleet serve options]
//       Coordinate the (workload × mode × seed × scale) matrix on
//       --serve ADDR (default 127.0.0.1:0), forking --workers N local
//       workers.  With --checkpoint FILE, completed cells are journaled;
//       SIGINT/SIGTERM drains gracefully (in-flight cells finish and
//       journal, the rest are cancelled).
//   hds_fleet worker ADDR [fleet worker options]
//       Run the worker loop against the coordinator at ADDR.
//   hds_fleet status --checkpoint FILE
//       Describe a checkpoint journal: cells completed, fingerprint,
//       torn tail.
//   hds_fleet resume --checkpoint FILE [fleet serve options] [--out F]
//       Finish an interrupted sweep: restore completed cells from the
//       journal, serve only the remainder, emit the full aggregate —
//       byte-identical to an uninterrupted run (tier-1 enforced).
//   hds_fleet summarize --checkpoint FILE [--out F]
//       Render the journal as aggregate JSON without running anything
//       (unfinished cells appear as cancelled).
//
//===----------------------------------------------------------------------===//

#include "cli/Options.h"
#include "engine/ExecutorFactory.h"
#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/ResultsJson.h"
#include "fleet/Checkpoint.h"
#include "fleet/Events.h"
#include "fleet/FleetCli.h"
#include "fleet/Worker.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace hds;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: hds_fleet serve [--scale F] [--seeds N] [--filter key=value]..."
      "\n"
      "                       [--out FILE] [--quiet]%s\n"
      "       hds_fleet worker ADDR%s\n"
      "       hds_fleet status --checkpoint FILE\n"
      "       hds_fleet resume --checkpoint FILE [--out FILE] [--quiet]%s\n"
      "       hds_fleet summarize --checkpoint FILE [--out FILE]\n"
      "%s"
      "addresses: host:port (port 0 = ephemeral) or unix:/path\n"
      "see docs/fleet.md for the registry, heartbeat, checkpoint, and\n"
      "trust-model details\n",
      cli::fleetServeOptionsUsage().c_str(),
      cli::fleetWorkerOptionsUsage().c_str(),
      cli::fleetServeOptionsUsage().c_str(), engine::filterHelp().c_str());
  std::exit(2);
}

/// SIGINT/SIGTERM request a graceful drain; the executor notices via
/// FleetConfig::CancelRequested.
std::atomic<bool> DrainRequested{false};

extern "C" void onDrainSignal(int) {
  DrainRequested.store(true, std::memory_order_relaxed);
}

struct ServeArgs {
  double Scale = 1.0;
  uint64_t Seeds = 0;
  std::vector<std::string> Filters;
  std::string OutPath;
  bool Quiet = false;
  cli::FleetOptions Fleet;
};

/// The same spec construction hds_matrix uses, so a fleet sweep and a
/// local `hds_matrix --jobs N` run agree on the matrix cell for cell.
std::vector<engine::ExperimentSpec> buildSpecs(const ServeArgs &Args) {
  std::vector<engine::ExperimentSpec> Specs =
      engine::defaultMatrix(Args.Scale);
  if (Args.Seeds > 0) {
    const std::vector<engine::ExperimentSpec> Base = Specs;
    for (uint64_t Seed = 1; Seed <= Args.Seeds; ++Seed)
      for (const engine::ExperimentSpec &Spec : Base) {
        engine::ExperimentSpec Variant = Spec;
        Variant.Seed = Seed;
        Specs.push_back(Variant);
      }
  }
  for (const std::string &Filter : Args.Filters) {
    std::string Error;
    if (!engine::applyFilter(Specs, Filter, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      std::exit(2);
    }
  }
  if (Specs.empty()) {
    std::fprintf(stderr, "error: filters selected no experiments\n");
    std::exit(2);
  }
  return Specs;
}

int emitResults(const std::vector<engine::RunResult> &Results,
                const std::string &OutPath, bool Quiet) {
  bool AnyError = false;
  for (const engine::RunResult &Result : Results)
    if (Result.State == engine::RunResult::Status::Error)
      AnyError = true;
  if (!OutPath.empty()) {
    const std::string Json =
        engine::resultsToJson(Results, engine::TimingInfo());
    if (OutPath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
    } else {
      std::FILE *Out = std::fopen(OutPath.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     OutPath.c_str());
        return 2;
      }
      std::fwrite(Json.data(), 1, Json.size(), Out);
      std::fclose(Out);
      if (!Quiet)
        std::fprintf(stderr, "results: %zu experiments -> %s\n",
                     Results.size(), OutPath.c_str());
    }
  }
  return AnyError ? 1 : 0;
}

void printFleetStats(const fleet::FleetStatsCollector &Collector) {
  const fleet::FleetStats Stats = Collector.snapshot();
  std::fprintf(stderr, "fleet:");
  fleet::visitFleetStatsMetrics(
      Stats, [](const obs::MetricDef &Def, uint64_t Value) {
        std::fprintf(stderr, " %s=%llu", Def.Id,
                     static_cast<unsigned long long>(Value));
      });
  std::fprintf(stderr, "\n");
}

/// Shared by `serve` (fresh journal) and `resume` (existing journal).
int runSweep(const ServeArgs &Args,
             std::vector<engine::ExperimentSpec> Specs, bool Resume) {
  engine::FleetConfig Config = fleet::fleetConfigFromCli(Args.Fleet);
  Config.Resume = Resume;
  Config.CancelRequested = &DrainRequested;
  fleet::FleetStatsCollector Stats;
  Config.Events = &Stats;

  std::signal(SIGINT, onDrainSignal);
  std::signal(SIGTERM, onDrainSignal);

  std::string Bound, Error;
  std::unique_ptr<engine::Executor> Exec =
      engine::makeFleet(Config, &Bound, &Error);
  if (!Exec) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  if (!Args.Quiet)
    std::fprintf(stderr, "serving %zu experiments on %s (%u local "
                         "worker(s))\n",
                 Specs.size(), Bound.c_str(), Args.Fleet.Workers);

  std::function<void(std::size_t, const engine::RunResult &)> OnResult;
  const std::size_t Total = Specs.size();
  if (!Args.Quiet)
    OnResult = [Total, Done = std::size_t{0}](
                   std::size_t, const engine::RunResult &R) mutable {
      std::fprintf(stderr, "[%zu/%zu] %s: %s\n", ++Done, Total,
                   R.Spec.label().c_str(),
                   R.ok() ? "ok"
                          : (R.State == engine::RunResult::Status::Error
                                 ? R.Error.c_str()
                                 : "cancelled"));
    };

  const std::vector<engine::RunResult> Results =
      Exec->run(Specs, std::move(OnResult));

  if (!Args.Quiet)
    printFleetStats(Stats);

  if (DrainRequested.load(std::memory_order_relaxed)) {
    std::size_t Finished = 0;
    for (const engine::RunResult &Result : Results)
      if (Result.State != engine::RunResult::Status::Cancelled)
        ++Finished;
    std::fprintf(stderr,
                 "drained: %zu/%zu cells resolved%s; resume with "
                 "`hds_fleet resume --checkpoint FILE`\n",
                 Finished, Results.size(),
                 Args.Fleet.CheckpointPath.empty() ? " (no --checkpoint: "
                                                    "progress not journaled)"
                                                  : "");
    return 0;
  }
  return emitResults(Results, Args.OutPath, Args.Quiet);
}

cli::OptionSet makeServeSet(ServeArgs &Args) {
  cli::OptionSet Set([] { usage(); });
  Set.positiveDouble("--scale", Args.Scale)
      .u64("--seeds", Args.Seeds)
      .strList("--filter", Args.Filters)
      .str("--out", Args.OutPath)
      .flag("--quiet", Args.Quiet);
  cli::addFleetServeOptions(Set, Args.Fleet);
  return Set;
}

int mainServe(int Argc, char **Argv) {
  ServeArgs Args;
  makeServeSet(Args).parse(Argc, Argv);
  return runSweep(Args, buildSpecs(Args), /*Resume=*/false);
}

int mainWorker(int Argc, char **Argv) {
  cli::FleetOptions Fleet;
  bool Quiet = false;
  // Positional coordinator address (`hds_fleet worker unix:/x.sock`);
  // --worker ADDR works too for symmetry with hds_matrix.
  int Skip = 0;
  if (Argc >= 2 && Argv[1][0] != '-') {
    Fleet.WorkerAddr = Argv[1];
    Skip = 1;
  }
  cli::OptionSet Set([] { usage(); });
  Set.flag("--quiet", Quiet);
  cli::addFleetWorkerOptions(Set, Fleet);
  Set.parse(Argc - Skip, Argv + Skip);
  if (Fleet.WorkerAddr.empty())
    usage();

  std::string Error;
  const fleet::WorkerExit Exit = fleet::runWorker(
      Fleet.WorkerAddr, fleet::workerOptionsFromCli(Fleet), &Error);
  if (Exit == fleet::WorkerExit::CleanShutdown) {
    if (!Quiet)
      std::fprintf(stderr, "worker: clean shutdown\n");
    return 0;
  }
  std::fprintf(stderr, "worker: %s\n", Error.c_str());
  return 1;
}

int mainStatus(int Argc, char **Argv) {
  cli::FleetOptions Fleet;
  cli::OptionSet Set([] { usage(); });
  cli::addFleetServeOptions(Set, Fleet);
  Set.parse(Argc, Argv);
  if (Fleet.CheckpointPath.empty())
    usage();

  fleet::CheckpointContents Saved;
  std::string Error;
  if (!fleet::readCheckpoint(Fleet.CheckpointPath, Saved, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  std::printf("checkpoint: %s\n", Fleet.CheckpointPath.c_str());
  std::printf("cells: %zu/%zu completed\n", Saved.CompletedCells,
              Saved.Specs.size());
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(Saved.Fingerprint));
  std::printf("torn tail: %s\n", Saved.TornTail ? "yes" : "no");
  return Saved.CompletedCells == Saved.Specs.size() ? 0 : 1;
}

int mainResume(int Argc, char **Argv) {
  ServeArgs Args;
  makeServeSet(Args).parse(Argc, Argv);
  if (Args.Fleet.CheckpointPath.empty())
    usage();

  // The journal header is the source of truth for the matrix: resume
  // never re-derives specs from flags, so it cannot disagree with the
  // sweep it is finishing.
  fleet::CheckpointContents Saved;
  std::string Error;
  if (!fleet::readCheckpoint(Args.Fleet.CheckpointPath, Saved, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  if (!Args.Quiet)
    std::fprintf(stderr, "resuming: %zu/%zu cells already completed\n",
                 Saved.CompletedCells, Saved.Specs.size());
  return runSweep(Args, std::move(Saved.Specs), /*Resume=*/true);
}

int mainSummarize(int Argc, char **Argv) {
  ServeArgs Args;
  makeServeSet(Args).parse(Argc, Argv);
  if (Args.Fleet.CheckpointPath.empty())
    usage();

  fleet::CheckpointContents Saved;
  std::string Error;
  if (!fleet::readCheckpoint(Args.Fleet.CheckpointPath, Saved, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  // Unfinished cells render as cancelled, the same shape a drained
  // in-process run emits, so the JSON is schema-valid either way.
  std::vector<engine::RunResult> Results = std::move(Saved.Results);
  for (std::size_t Index = 0; Index < Results.size(); ++Index)
    if (!Saved.Resolved[Index])
      Results[Index].Spec = Saved.Specs[Index];
  if (Args.OutPath.empty())
    Args.OutPath = "-";
  return emitResults(Results, Args.OutPath, Args.Quiet);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    usage();
  const char *Cmd = Argv[1];
  if (std::strcmp(Cmd, "serve") == 0)
    return mainServe(Argc - 1, Argv + 1);
  if (std::strcmp(Cmd, "worker") == 0)
    return mainWorker(Argc - 1, Argv + 1);
  if (std::strcmp(Cmd, "status") == 0)
    return mainStatus(Argc - 1, Argv + 1);
  if (std::strcmp(Cmd, "resume") == 0)
    return mainResume(Argc - 1, Argv + 1);
  if (std::strcmp(Cmd, "summarize") == 0)
    return mainSummarize(Argc - 1, Argv + 1);
  usage();
}
