# The W1 append-only gate must actually bite: mutate a copy of the
# committed schema lock three ways (reorder a tag, delete a metric,
# renumber a frame type) and require hds_lint to exit nonzero for each.
#
# Inputs: HDS_LINT, SOURCE_DIR, WORK_DIR.

file(READ ${SOURCE_DIR}/tests/golden/schema.lock ORIGINAL)

function(expect_w1_failure NAME MUTATED)
  if(MUTATED STREQUAL "${ORIGINAL}")
    message(FATAL_ERROR "${NAME}: mutation did not change the lock "
                        "(pattern no longer matches schema.lock)")
  endif()
  set(LOCK ${WORK_DIR}/schema.lock.${NAME})
  file(WRITE ${LOCK} "${MUTATED}")
  execute_process(
    COMMAND ${HDS_LINT} --rule W1 --schema-lock ${LOCK}
            ${SOURCE_DIR}/src ${SOURCE_DIR}/tools ${SOURCE_DIR}/bench
            ${SOURCE_DIR}/tests
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE OUT)
  if(RC EQUAL 0)
    message(FATAL_ERROR "${NAME}: hds_lint accepted a ${NAME} schema lock")
  endif()
  if(NOT RC EQUAL 1)
    message(FATAL_ERROR "${NAME}: hds_lint failed unexpectedly "
                        "(exit ${RC}): ${OUT}")
  endif()
endfunction()

# Reordered tag: SpecWorkload/SpecMode swap places in the lock, so the
# tree's order no longer matches the locked order.
string(REPLACE "SpecWorkload 1\nSpecMode 2" "SpecMode 2\nSpecWorkload 1"
       MUTATED "${ORIGINAL}")
expect_w1_failure(reordered "${MUTATED}")

# Deleted metric: drop the first entry of the first metrics section.
string(REGEX REPLACE "\\[metrics ([A-Za-z_]+)\\]\n[^\n]+\n"
       "[metrics \\1]\n" MUTATED "${ORIGINAL}")
expect_w1_failure(deleted "${MUTATED}")

# Renumbered frame type: Hello moves from 1 to 9 in the lock while the
# tree still says 1.
string(REPLACE "Hello 1" "Hello 9" MUTATED "${ORIGINAL}")
expect_w1_failure(renumbered "${MUTATED}")
