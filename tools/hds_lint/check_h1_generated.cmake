# The compile-db-driven H1 table must (a) resolve the generated-only
# symbols (std::optional/variant/expected) from the real toolchain
# headers, and (b) catch a header that uses std::optional after its
# #include <optional> was deleted.
#
# Inputs: HDS_LINT, SOURCE_DIR, COMPILE_DB, WORK_DIR.

if(NOT EXISTS ${COMPILE_DB})
  message(FATAL_ERROR "compile database not found at ${COMPILE_DB} "
                      "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
endif()

# (a) The dump must show generated entries for the three symbols.
execute_process(
  COMMAND ${HDS_LINT} --compile-db ${COMPILE_DB} --dump-h1-table
          ${SOURCE_DIR}/src
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE TABLE)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "hds_lint --dump-h1-table failed (exit ${RC})")
endif()
foreach(SYMBOL optional variant expected)
  if(NOT TABLE MATCHES "std::${SYMBOL} ->[^\n]*\\(generated\\)")
    message(FATAL_ERROR "generated H1 table has no entry for "
                        "std::${SYMBOL}:\n${TABLE}")
  endif()
endforeach()

# (b) A header that lost its needed include must trip H1.
set(FIXTURE_DIR ${WORK_DIR}/h1_generated_fixture)
file(WRITE ${FIXTURE_DIR}/Bad.h
"#pragma once
#include <vector>
inline std::optional<int> firstOf(const std::vector<int> &V) {
  return V.empty() ? std::optional<int>() : std::optional<int>(V.front())\;
}
")
execute_process(
  COMMAND ${HDS_LINT} --rule H1 --compile-db ${COMPILE_DB}
          ${FIXTURE_DIR}/Bad.h
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT)
if(RC EQUAL 0)
  message(FATAL_ERROR "H1 missed a header using std::optional without "
                      "#include <optional>")
endif()
if(NOT OUT MATCHES "optional")
  message(FATAL_ERROR "H1 fired but not for std::optional: ${OUT}")
endif()

# Control: adding the include makes the same header clean.
file(WRITE ${FIXTURE_DIR}/Good.h
"#pragma once
#include <optional>
#include <vector>
inline std::optional<int> firstOf(const std::vector<int> &V) {
  return V.empty() ? std::optional<int>() : std::optional<int>(V.front())\;
}
")
execute_process(
  COMMAND ${HDS_LINT} --rule H1 --compile-db ${COMPILE_DB}
          ${FIXTURE_DIR}/Good.h
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "H1 flagged a self-contained header (exit ${RC}): "
                      "${OUT}")
endif()
