# Regenerates the schema lock from the tree and byte-compares it with the
# committed tests/golden/schema.lock.  A mismatch means the tree changed
# the wire/metric schema without regenerating the lock in the same commit.
#
# Inputs: HDS_LINT, SOURCE_DIR, WORK_DIR.

execute_process(
  COMMAND ${HDS_LINT} --write-schema-lock ${WORK_DIR}/schema.lock.regen
          ${SOURCE_DIR}/src ${SOURCE_DIR}/tools ${SOURCE_DIR}/bench
          ${SOURCE_DIR}/tests
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "hds_lint --write-schema-lock failed (exit ${RC})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/schema.lock.regen
          ${SOURCE_DIR}/tests/golden/schema.lock
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "tests/golden/schema.lock is stale: regenerate with "
    "`build/tools/hds_lint --write-schema-lock tests/golden/schema.lock "
    "src tools bench tests` and commit the diff")
endif()
