//===- tools/hds_lint/hds_lint_main.cpp - hds_lint CLI --------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the project lint pass:
///
///   hds_lint [options] <file-or-dir>...
///
///   --rule <id>              run only this rule (repeatable)
///   --list-rules             print the rule catalogue and exit
///   --schema-lock <file>     enable W1 against this committed lock
///   --write-schema-lock <f>  regenerate the lock from the tree and exit
///   --compile-db <file>      generate the H1 symbol→header table from
///                            this compile_commands.json
///   --sys-include <dir>      system include dir for table generation
///                            (repeatable; overrides the compiler probe)
///   --dump-h1-table          print the effective H1 table and exit
///   --stale-suppressions     report suppression notes that no longer
///                            suppress anything (STALE)
///
/// Directories are scanned recursively for C++ sources; `lint_fixtures`
/// directories (seeded rule violations used by tests/lint_test.cpp) and
/// build trees are skipped unless a file inside them is named explicitly.
/// Exit code is 1 when any unsuppressed finding is reported, 2 on usage
/// or I/O errors.
///
//===----------------------------------------------------------------------===//

#include "lint/IncludeGraph.h"
#include "lint/Rules.h"
#include "lint/SchemaLock.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace hds::lint;

namespace {

bool hasSourceExtension(const fs::path &P) {
  std::string Ext = P.extension().string();
  return Ext == ".h" || Ext == ".hpp" || Ext == ".cpp" || Ext == ".cc" ||
         Ext == ".cxx";
}

bool isSkippedDir(const fs::path &P) {
  std::string Name = P.filename().string();
  return Name == "lint_fixtures" || Name == "build" || Name == ".git" ||
         Name == "CMakeFiles";
}

void gather(const fs::path &Root, std::vector<fs::path> &Out) {
  if (fs::is_regular_file(Root)) {
    Out.push_back(Root);
    return;
  }
  if (!fs::is_directory(Root))
    return;
  std::vector<fs::path> Entries;
  for (const fs::directory_entry &E : fs::directory_iterator(Root))
    Entries.push_back(E.path());
  // Deterministic scan order regardless of directory enumeration order.
  std::sort(Entries.begin(), Entries.end());
  for (const fs::path &P : Entries) {
    if (fs::is_directory(P)) {
      if (!isSkippedDir(P))
        gather(P, Out);
    } else if (hasSourceExtension(P)) {
      Out.push_back(P);
    }
  }
}

bool readFile(const fs::path &P, std::string &Out) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

/// Builds the generated H1 table from the compile database: first compile
/// command → compiler → system include dirs (unless overridden), candidate
/// top-level headers = every angle include in the linted tree plus the
/// symbol table's known providers, then an on-disk declaration walk.
/// Returns an empty table (caller falls back to the curated one) when the
/// database or the toolchain headers cannot be read.
std::vector<HeaderReq>
buildGeneratedTable(const std::vector<LexedFile> &Files,
                    const std::string &CompileDbPath,
                    const std::vector<std::string> &SysIncludeOverride) {
  std::string Json;
  if (!readFile(CompileDbPath, Json)) {
    std::fprintf(stderr,
                 "hds_lint: warning: cannot read compile db %s; H1 uses "
                 "the curated fallback table\n",
                 CompileDbPath.c_str());
    return {};
  }
  std::vector<CompileCommand> Commands;
  std::string Error;
  if (!parseCompileDb(Json, CompileDbPath, Commands, Error) ||
      Commands.empty()) {
    std::fprintf(stderr,
                 "hds_lint: warning: %s; H1 uses the curated fallback "
                 "table\n",
                 Error.empty() ? "compile db has no entries" : Error.c_str());
    return {};
  }

  std::vector<std::string> SearchDirs = SysIncludeOverride;
  if (SearchDirs.empty())
    SearchDirs = querySystemIncludeDirs(Commands.front().Compiler);
  if (SearchDirs.empty()) {
    std::fprintf(stderr,
                 "hds_lint: warning: cannot determine system include dirs "
                 "for '%s'; H1 uses the curated fallback table\n",
                 Commands.front().Compiler.c_str());
    return {};
  }
  for (const std::string &Dir : Commands.front().IncludeDirs)
    SearchDirs.push_back(Dir);

  std::set<std::string> Candidates;
  for (const LexedFile &F : Files)
    for (const std::string &H : angleIncludes(F))
      Candidates.insert(H);
  for (const HeaderReq &Req : fallbackHeaderTable())
    for (const std::string &H : Req.Headers)
      Candidates.insert(H);
  for (const char *H : {"optional", "variant", "expected"})
    Candidates.insert(H);

  return generateHeaderTable(
      h1SymbolKeys(),
      std::vector<std::string>(Candidates.begin(), Candidates.end()),
      SearchDirs);
}

void usage(std::FILE *To) {
  std::fprintf(To,
               "usage: hds_lint [--rule <id>]... [--list-rules]\n"
               "                [--schema-lock <file>] "
               "[--write-schema-lock <file>]\n"
               "                [--compile-db <file>] "
               "[--sys-include <dir>]...\n"
               "                [--dump-h1-table] [--stale-suppressions]\n"
               "                <file-or-dir>...\n");
}

} // namespace

int main(int Argc, char **Argv) {
  LintOptions Opts;
  std::vector<fs::path> Roots;
  std::string SchemaLockPath;
  std::string WriteSchemaLockPath;
  std::string CompileDbPath;
  std::vector<std::string> SysIncludes;
  bool DumpH1Table = false;

  auto NeedValue = [&](int &I, const char *Flag) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "hds_lint: %s requires an argument\n", Flag);
      return nullptr;
    }
    return Argv[++I];
  };

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--list-rules") {
      for (const RuleInfo &R : ruleCatalog())
        std::printf("%-5s %-16s %s\n", R.Id, R.Tag ? R.Tag : "-", R.Summary);
      return 0;
    }
    if (Arg == "--rule") {
      const char *V = NeedValue(I, "--rule");
      if (!V)
        return 2;
      Opts.OnlyRules.push_back(V);
      continue;
    }
    if (Arg == "--schema-lock") {
      const char *V = NeedValue(I, "--schema-lock");
      if (!V)
        return 2;
      SchemaLockPath = V;
      continue;
    }
    if (Arg == "--write-schema-lock") {
      const char *V = NeedValue(I, "--write-schema-lock");
      if (!V)
        return 2;
      WriteSchemaLockPath = V;
      continue;
    }
    if (Arg == "--compile-db") {
      const char *V = NeedValue(I, "--compile-db");
      if (!V)
        return 2;
      CompileDbPath = V;
      continue;
    }
    if (Arg == "--sys-include") {
      const char *V = NeedValue(I, "--sys-include");
      if (!V)
        return 2;
      SysIncludes.push_back(V);
      continue;
    }
    if (Arg == "--dump-h1-table") {
      DumpH1Table = true;
      continue;
    }
    if (Arg == "--stale-suppressions") {
      Opts.ReportStale = true;
      continue;
    }
    if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-') {
      std::fprintf(stderr, "hds_lint: unknown option %s\n", Arg.c_str());
      usage(stderr);
      return 2;
    }
    Roots.emplace_back(Arg);
  }
  if (Opts.ReportStale && !Opts.OnlyRules.empty()) {
    // A restricted run cannot tell a stale note from one whose rule was
    // simply not executed.
    std::fprintf(stderr,
                 "hds_lint: --stale-suppressions requires running all "
                 "rules (drop --rule)\n");
    return 2;
  }
  if (Roots.empty()) {
    usage(stderr);
    return 2;
  }

  std::vector<fs::path> Paths;
  for (const fs::path &Root : Roots) {
    if (!fs::exists(Root)) {
      std::fprintf(stderr, "hds_lint: no such file or directory: %s\n",
                   Root.string().c_str());
      return 2;
    }
    gather(Root, Paths);
  }

  std::vector<LexedFile> Files;
  Files.reserve(Paths.size());
  for (const fs::path &P : Paths) {
    std::string Source;
    if (!readFile(P, Source)) {
      std::fprintf(stderr, "hds_lint: cannot read %s\n",
                   P.string().c_str());
      return 2;
    }
    Files.push_back(lexSource(P.generic_string(), Source));
  }

  if (!WriteSchemaLockPath.empty()) {
    std::string Rendered = renderSchemaLock(collectSchema(Files));
    std::ofstream Out(WriteSchemaLockPath, std::ios::binary);
    if (!Out || !(Out << Rendered)) {
      std::fprintf(stderr, "hds_lint: cannot write %s\n",
                   WriteSchemaLockPath.c_str());
      return 2;
    }
    return 0;
  }

  std::vector<HeaderReq> Table;
  if (!CompileDbPath.empty())
    Table = mergeHeaderTable(
        buildGeneratedTable(Files, CompileDbPath, SysIncludes));
  if (!Table.empty())
    Opts.HeaderTable = &Table;

  if (DumpH1Table) {
    const std::vector<HeaderReq> &Effective =
        Opts.HeaderTable ? *Opts.HeaderTable : fallbackHeaderTable();
    for (const HeaderReq &Req : Effective) {
      std::printf("%s%s ->", Req.NeedsStd ? "std::" : "", Req.Symbol.c_str());
      for (const std::string &H : Req.Headers)
        std::printf(" <%s>", H.c_str());
      std::printf("%s\n", Req.Generated ? " (generated)" : " (curated)");
    }
    return 0;
  }

  std::string SchemaLockText;
  if (!SchemaLockPath.empty()) {
    if (!readFile(SchemaLockPath, SchemaLockText)) {
      std::fprintf(stderr, "hds_lint: cannot read schema lock %s\n",
                   SchemaLockPath.c_str());
      return 2;
    }
    Opts.SchemaLockText = &SchemaLockText;
    Opts.SchemaLockPath = SchemaLockPath;
  }

  std::vector<Finding> Findings = runLint(Files, Opts);
  for (const Finding &F : Findings)
    std::printf("%s\n", formatFinding(F).c_str());
  if (!Findings.empty()) {
    std::printf("hds_lint: %zu finding(s) in %zu file(s) scanned\n",
                Findings.size(), Files.size());
    return 1;
  }
  return 0;
}
