//===- tools/hds_lint/hds_lint_main.cpp - hds_lint CLI --------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the project lint pass:
///
///   hds_lint [--rule <id>]... [--list-rules] <file-or-dir>...
///
/// Directories are scanned recursively for C++ sources; `lint_fixtures`
/// directories (seeded rule violations used by tests/lint_test.cpp) and
/// build trees are skipped unless a file inside them is named explicitly.
/// Exit code is 1 when any unsuppressed finding is reported, 2 on usage
/// or I/O errors.
///
//===----------------------------------------------------------------------===//

#include "LintRules.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace hds::lint;

namespace {

bool hasSourceExtension(const fs::path &P) {
  std::string Ext = P.extension().string();
  return Ext == ".h" || Ext == ".hpp" || Ext == ".cpp" || Ext == ".cc" ||
         Ext == ".cxx";
}

bool isSkippedDir(const fs::path &P) {
  std::string Name = P.filename().string();
  return Name == "lint_fixtures" || Name == "build" || Name == ".git" ||
         Name == "CMakeFiles";
}

void gather(const fs::path &Root, std::vector<fs::path> &Out) {
  if (fs::is_regular_file(Root)) {
    Out.push_back(Root);
    return;
  }
  if (!fs::is_directory(Root))
    return;
  std::vector<fs::path> Entries;
  for (const fs::directory_entry &E : fs::directory_iterator(Root))
    Entries.push_back(E.path());
  // Deterministic scan order regardless of directory enumeration order.
  std::sort(Entries.begin(), Entries.end());
  for (const fs::path &P : Entries) {
    if (fs::is_directory(P)) {
      if (!isSkippedDir(P))
        gather(P, Out);
    } else if (hasSourceExtension(P)) {
      Out.push_back(P);
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  LintOptions Opts;
  std::vector<fs::path> Roots;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--list-rules") {
      for (const RuleInfo &R : ruleCatalog())
        std::printf("%-4s %-16s %s\n", R.Id, R.Tag ? R.Tag : "-", R.Summary);
      return 0;
    }
    if (Arg == "--rule") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "hds_lint: --rule requires an argument\n");
        return 2;
      }
      Opts.OnlyRules.push_back(Argv[++I]);
      continue;
    }
    if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: hds_lint [--rule <id>]... [--list-rules] "
                  "<file-or-dir>...\n");
      return 0;
    }
    Roots.emplace_back(Arg);
  }
  if (Roots.empty()) {
    std::fprintf(stderr,
                 "usage: hds_lint [--rule <id>]... [--list-rules] "
                 "<file-or-dir>...\n");
    return 2;
  }

  std::vector<fs::path> Paths;
  for (const fs::path &Root : Roots) {
    if (!fs::exists(Root)) {
      std::fprintf(stderr, "hds_lint: no such file or directory: %s\n",
                   Root.string().c_str());
      return 2;
    }
    gather(Root, Paths);
  }

  std::vector<LexedFile> Files;
  Files.reserve(Paths.size());
  for (const fs::path &P : Paths) {
    std::ifstream In(P, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "hds_lint: cannot read %s\n",
                   P.string().c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Files.push_back(lexSource(P.generic_string(), Buf.str()));
  }

  std::vector<Finding> Findings = runLint(Files, Opts);
  for (const Finding &F : Findings)
    std::printf("%s\n", formatFinding(F).c_str());
  if (!Findings.empty()) {
    std::printf("hds_lint: %zu finding(s) in %zu file(s) scanned\n",
                Findings.size(), Files.size());
    return 1;
  }
  return 0;
}
