//===- tools/hds_lint/LintRules.h - Project invariant rules ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hds_lint rule engine.  Rules encode the project's determinism and
/// hygiene invariants (see docs/static-analysis.md for the catalogue):
///
///   D1  no ambient randomness / wall clock / environment reads in src/
///   D2  no iteration over unordered containers without an ordered-ok note
///   D3  no ordering or sorting keyed on raw pointer values
///   D4  no raw new/delete/malloc outside designated allocator files
///   H1  header hygiene: canonical include guards, self-contained includes
///   C1  cycle accounting must route through the MemoryHierarchy API
///   SUP malformed hds-lint suppression comments
///
/// Findings at a line are suppressed by a comment on the same line or the
/// line above of the form `// hds-lint: <tag>(<reason>)`, and file-wide by
/// `// hds-lint-file: <tag>(<reason>)`.  The reason is mandatory: a
/// suppression without one does not suppress and is itself reported.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_TOOLS_HDS_LINT_LINTRULES_H
#define HDS_TOOLS_HDS_LINT_LINTRULES_H

#include "LintLexer.h"

#include <string>
#include <vector>

namespace hds {
namespace lint {

/// One reported violation.
struct Finding {
  std::string RuleId;  ///< "D1" ... "C1", "SUP"
  std::string Path;    ///< display path of the offending file
  unsigned Line = 0;
  std::string Message;
  std::string FixHint;
};

/// Static description of one rule.
struct RuleInfo {
  const char *Id;
  const char *Tag; ///< suppression tag, or nullptr if not suppressible
  const char *Summary;
};

/// The full rule catalogue, in report order.
const std::vector<RuleInfo> &ruleCatalog();

struct LintOptions {
  /// If nonempty, only run rules with these ids.
  std::vector<std::string> OnlyRules;
};

/// Runs every (selected) rule over \p Files and returns the unsuppressed
/// findings, sorted by path, line, and rule id.  Cross-file context (the
/// unordered-container index for D2) is built from exactly the files
/// passed in, so callers should lint a whole tree at once.
std::vector<Finding> runLint(const std::vector<LexedFile> &Files,
                             const LintOptions &Opts = LintOptions());

/// Formats \p F as "path:line: [ID] message" (+ "  fix: hint" if present).
std::string formatFinding(const Finding &F);

} // namespace lint
} // namespace hds

#endif // HDS_TOOLS_HDS_LINT_LINTRULES_H
