//===- tools/hds_analyze.cpp - Offline trace analysis tool -----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Runs the hot data stream pipeline over a trace file: each whitespace-
// separated token is one data reference (tokens are interned, so any
// strings work — symbolic names, addresses, "pc:addr" pairs...).  Prints
// the Sequitur compression summary, the detected hot data streams, and
// optionally the exact-detector comparison and the prefix-match DFSM.
//
// This is the offline workflow of the paper's §1 prior work (collect a
// trace, compress with Sequitur, extract hot data streams) as a reusable
// command.
//
// Usage:
//   hds_analyze [options] [tracefile]     (stdin when no file)
//     --heat <h>       heat threshold (default: 1% of the trace)
//     --minlen <n>     minimum stream length (default 4)
//     --maxlen <n>     maximum stream length (default 100)
//     --top <n>        print at most n streams (default 20)
//     --precise        also run the exact detector and compare
//     --dfsm           build the prefix DFSM and print its size
//
//===----------------------------------------------------------------------===//

#include "analysis/Coverage.h"
#include "analysis/FastAnalyzer.h"
#include "analysis/PreciseAnalyzer.h"
#include "analysis/SubpathAnalyzer.h"
#include "dfsm/PrefixDfsm.h"
#include "sequitur/Grammar.h"
#include "support/Table.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

using namespace hds;

namespace {

struct Options {
  uint64_t Heat = 0; // 0 = 1% of the trace
  uint64_t MinLen = 4;
  uint64_t MaxLen = 100;
  uint64_t Top = 20;
  bool Precise = false;
  bool Subpath = false;
  bool Dfsm = false;
  std::string File;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: hds_analyze [--heat H] [--minlen N] [--maxlen N] "
               "[--top N] [--precise] [--subpath] [--dfsm] [tracefile]\n");
  std::exit(1);
}

Options parseOptions(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage();
      return Argv[++I];
    };
    if (Arg == "--heat")
      Opts.Heat = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--minlen")
      Opts.MinLen = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--maxlen")
      Opts.MaxLen = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--top")
      Opts.Top = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--precise")
      Opts.Precise = true;
    else if (Arg == "--subpath")
      Opts.Subpath = true;
    else if (Arg == "--dfsm")
      Opts.Dfsm = true;
    else if (!Arg.empty() && Arg[0] == '-')
      usage();
    else
      Opts.File = Arg;
  }
  return Opts;
}

} // namespace

int main(int Argc, char **Argv) {
  const Options Opts = parseOptions(Argc, Argv);

  // Read and intern the trace.
  std::istream *In = &std::cin;
  std::ifstream File;
  if (!Opts.File.empty()) {
    File.open(Opts.File);
    if (!File) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Opts.File.c_str());
      return 1;
    }
    In = &File;
  }

  std::unordered_map<std::string, uint32_t> Intern;
  std::vector<std::string> Names;
  std::vector<uint32_t> Trace;
  std::string Token;
  while (*In >> Token) {
    auto [It, Inserted] =
        Intern.try_emplace(Token, static_cast<uint32_t>(Names.size()));
    if (Inserted)
      Names.push_back(Token);
    Trace.push_back(It->second);
  }
  if (Trace.empty()) {
    std::fprintf(stderr, "error: empty trace\n");
    return 1;
  }

  analysis::AnalysisConfig Config;
  Config.MinLength = Opts.MinLen;
  Config.MaxLength = Opts.MaxLen;
  Config.HeatThreshold =
      Opts.Heat != 0 ? Opts.Heat : std::max<uint64_t>(1, Trace.size() / 100);

  std::printf("trace: %zu references, %zu distinct (H=%llu, len %llu..%llu)"
              "\n\n",
              Trace.size(), Names.size(),
              (unsigned long long)Config.HeatThreshold,
              (unsigned long long)Config.MinLength,
              (unsigned long long)Config.MaxLength);

  // Sequitur + fast analysis.
  const auto Start = std::chrono::steady_clock::now();
  sequitur::Grammar Grammar;
  for (uint32_t T : Trace)
    Grammar.append(T);
  const analysis::FastAnalysisResult Result =
      analysis::analyzeHotStreams(Grammar.snapshot(), Config);
  const double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();

  std::printf("sequitur: %zu rules, %zu RHS symbols (%.1fx compression), "
              "%.1f ms including analysis\n",
              Grammar.ruleCount(), Grammar.totalRhsSymbols(),
              static_cast<double>(Trace.size()) /
                  static_cast<double>(Grammar.totalRhsSymbols()),
              Ms);
  std::printf("hot data streams: %zu, covering %.1f%% of the trace\n\n",
              Result.Streams.size(),
              100.0 * analysis::traceCoverage(Trace, Result.Streams));

  // Hottest first.
  std::vector<analysis::HotDataStream> Streams = Result.Streams;
  std::sort(Streams.begin(), Streams.end(),
            [](const analysis::HotDataStream &A,
               const analysis::HotDataStream &B) { return A.Heat > B.Heat; });

  Table Out;
  Out.row().cell("heat").cell("freq").cell("len").cell("stream");
  for (size_t I = 0; I < Streams.size() && I < Opts.Top; ++I) {
    std::string Word;
    for (size_t J = 0; J < Streams[I].Symbols.size(); ++J) {
      if (J)
        Word += ' ';
      if (Word.size() > 60) {
        Word += "...";
        break;
      }
      Word += Names[Streams[I].Symbols[J]];
    }
    Out.row()
        .cell(uint64_t{Streams[I].Heat})
        .cell(uint64_t{Streams[I].Frequency})
        .cell(uint64_t{Streams[I].length()})
        .cell(Word);
  }
  Out.print();

  if (Opts.Subpath) {
    const auto SStart = std::chrono::steady_clock::now();
    const analysis::SubpathAnalysisResult Subpath =
        analysis::analyzeHotSubpaths(Grammar.snapshot(), Config);
    const double SMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - SStart)
                           .count();
    std::printf("\ngrammar subpaths (Larus-style): %zu streams, %.1f%% "
                "coverage, %.1f ms\n",
                Subpath.Streams.size(),
                100.0 * analysis::traceCoverage(Trace, Subpath.Streams),
                SMs);
  }

  if (Opts.Precise) {
    const auto PStart = std::chrono::steady_clock::now();
    const analysis::PreciseAnalysisResult Precise =
        analysis::analyzeHotStreamsPrecisely(Trace, Config);
    const double PMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - PStart)
                           .count();
    std::printf("\nprecise detector: %zu streams, %.1f%% coverage, %.1f ms "
                "(%.1fx slower)\n",
                Precise.Streams.size(),
                100.0 * analysis::traceCoverage(Trace, Precise.Streams), PMs,
                PMs / Ms);
  }

  if (Opts.Dfsm && !Streams.empty()) {
    std::vector<std::vector<uint32_t>> StreamSymbols;
    for (const analysis::HotDataStream &S : Streams)
      StreamSymbols.push_back(S.Symbols);
    dfsm::DfsmConfig MachineConfig;
    dfsm::PrefixDfsm Machine(StreamSymbols, MachineConfig);
    std::printf("\nprefix DFSM (headLen=%u): %zu states, %zu transitions "
                "(headLen*n+1 = %zu)\n",
                MachineConfig.HeadLength, Machine.stateCount(),
                Machine.transitionCount(),
                size_t{MachineConfig.HeadLength} * StreamSymbols.size() + 1);
  }
  return 0;
}
