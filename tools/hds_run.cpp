//===- tools/hds_run.cpp - Command-line benchmark driver -------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// Runs one benchmark under one configuration and prints a full report:
// simulated cycles, cache behaviour, prefetching activity, and the
// per-optimization-cycle characterization.  Everything the figure benches
// measure, exposed as a single configurable command.
//
// Usage:
//   hds_run [options]
//     --workload <vpr|mcf|twolf|parser|vortex|boxsim|twophase>  (default vpr)
//     --mode <original|base|prof|hds|nopref|seqpref|dynpref>    (default dynpref)
//     --iterations <n>      override the workload's default
//     --scale <f>           scale the default iteration count
//     --headlen <n>         prefix match length (default 2)
//     --stride              enable the hardware stride prefetcher
//     --markov              enable the Markov correlation prefetcher
//     --stream              enable the confidence-counter stream prefetcher
//     --pair                enable the bounded temporal pair-table prefetcher
//     --duel                wrap the enabled prefetchers (or, alone, all
//                           four) in the per-region dueling selector
//     --adaptive            closed-loop per-stream degree/distance tuning
//                           (docs/tuning.md)
//     --pin                 static-scheme model (pin first optimization)
//     --verbose             per-cycle stream reports to stderr
//     --compare             also run the original program and report %
//     --report              overhead breakdown (Fig 11) and per-stream
//                           prefetch effectiveness (Fig 10) tables
//     --trace-events <file> write the awake/analysis/hibernation phase
//                           timeline as Chrome trace-event JSON
//                           (chrome://tracing, Perfetto)
//     --dump-trace <file>   write every reference as "pc:addr" tokens
//                           (feed the file to hds_analyze)
//     --record <file>       capture the run as a binary replay trace
//     --replay <file>       re-execute a recorded trace and verify the
//                           replay reproduces the recorded cycle/miss
//                           counts exactly (exit 1 on divergence)
//
//===----------------------------------------------------------------------===//

#include "cli/Options.h"
#include "core/Runtime.h"
#include "obs/CycleAccount.h"
#include "prefetch/Prefetcher.h"
#include "obs/PrefetchStats.h"
#include "obs/Timeline.h"
#include "replay/TraceFormat.h"
#include "replay/TraceRecorder.h"
#include "replay/TraceReplayer.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <memory>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace hds;
using namespace hds::core;

namespace {

struct Options {
  std::string Workload = "vpr";
  RunMode Mode = RunMode::DynamicPrefetch;
  uint64_t Iterations = 0; // 0 = workload default * Scale
  double Scale = 1.0;
  uint32_t HeadLength = 2;
  prefetch::PrefetcherSelection Prefetchers;
  bool Tuned = false;
  bool Pin = false;
  bool Verbose = false;
  bool Compare = false;
  bool Report = false;
  std::string TraceEvents;
  std::string DumpTrace;
  std::string RecordTo;
  std::string ReplayFrom;
};

[[noreturn]] void usage(const char *Binary) {
  const std::string Modes = runModeTokenList();
  const std::string Workloads = [] {
    std::string Out;
    for (const std::string &Name : workloads::allWorkloadNames()) {
      if (!Out.empty())
        Out += ' ';
      Out += Name;
    }
    return Out;
  }();
  std::fprintf(
      stderr,
      "usage: %s [--workload NAME] [--mode MODE] [--iterations N]\n"
      "          [--scale F] [--headlen N]%s\n"
      "          [%s] [--pin] [--verbose] [--compare] [--report]\n"
      "          [--trace-events FILE]\n"
      "          [--dump-trace FILE] [--record FILE] [--replay FILE]\n"
      "modes: %s\n"
      "workloads: %s\n",
      Binary, cli::prefetcherFlagsUsage().c_str(), cli::TunedFlag,
      Modes.c_str(), Workloads.c_str());
  std::exit(1);
}

Options parseOptions(int Argc, char **Argv) {
  Options Opts;
  const char *Binary = Argv[0];
  cli::OptionSet Set([Binary] { usage(Binary); });
  Set.str("--workload", Opts.Workload)
      .runMode("--mode", Opts.Mode)
      .u64("--iterations", Opts.Iterations)
      .looseDouble("--scale", Opts.Scale)
      .u32("--headlen", Opts.HeadLength)
      .flag("--pin", Opts.Pin)
      .flag("--verbose", Opts.Verbose)
      .flag("--report", Opts.Report)
      .flag("--compare", Opts.Compare)
      .str("--trace-events", Opts.TraceEvents)
      .str("--dump-trace", Opts.DumpTrace)
      .str("--record", Opts.RecordTo)
      .str("--replay", Opts.ReplayFrom);
  cli::addPrefetcherFlags(Set, Opts.Prefetchers);
  cli::addTunedFlag(Set, Opts.Tuned);
  Set.parse(Argc, Argv);
  return Opts;
}

/// " +stride +markov ... +pinned +tuned" — the report's mode-line
/// suffix for the enabled features (legacy spelling and order).
std::string featureSuffix(const prefetch::PrefetcherSelection &Selection,
                          bool Pin, bool Tuned) {
  std::string Out;
  for (unsigned I = 0; I < prefetch::PrefetcherSelection::NumKinds; ++I) {
    const auto K = static_cast<prefetch::Prefetcher::Kind>(I);
    if (Selection.has(K)) {
      Out += " +";
      Out += prefetch::Prefetcher::kindToken(K);
    }
  }
  if (Pin)
    Out += " +pinned";
  if (Tuned)
    Out += " +tuned";
  return Out;
}

/// RuntimeObserver that prints the reference stream as "pc:addr" tokens —
/// the hds_analyze input format.  Replaces the removed per-access
/// callback: trace dumping now rides the single observer mechanism.
class TraceDumpObserver : public RuntimeObserver {
public:
  explicit TraceDumpObserver(std::FILE *File) : Out(File) {}

  void onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                bool /*IsStore*/) override {
    std::fprintf(Out, "%llu:%llx\n", (unsigned long long)Site,
                 (unsigned long long)Addr);
  }

private:
  std::FILE *Out;
};

/// Fans the event stream out to two observers (--dump-trace + --record
/// in the same run: the Runtime has exactly one observer slot).
class TeeObserver : public RuntimeObserver {
public:
  TeeObserver(RuntimeObserver &First, RuntimeObserver &Second)
      : A(First), B(Second) {}

  void onDeclareProcedure(vulcan::ProcId Proc,
                          const std::string &Name) override {
    A.onDeclareProcedure(Proc, Name);
    B.onDeclareProcedure(Proc, Name);
  }
  void onDeclareSite(vulcan::SiteId Site, vulcan::ProcId Proc,
                     const std::string &Label) override {
    A.onDeclareSite(Site, Proc, Label);
    B.onDeclareSite(Site, Proc, Label);
  }
  void onAllocate(memsim::Addr Result, uint64_t Bytes,
                  uint64_t Align) override {
    A.onAllocate(Result, Bytes, Align);
    B.onAllocate(Result, Bytes, Align);
  }
  void onPadHeap(uint64_t Bytes) override {
    A.onPadHeap(Bytes);
    B.onPadHeap(Bytes);
  }
  void onEnterProcedure(vulcan::ProcId Proc) override {
    A.onEnterProcedure(Proc);
    B.onEnterProcedure(Proc);
  }
  void onLeaveProcedure() override {
    A.onLeaveProcedure();
    B.onLeaveProcedure();
  }
  void onLoopBackEdge() override {
    A.onLoopBackEdge();
    B.onLoopBackEdge();
  }
  void onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                bool IsStore) override {
    A.onAccess(Site, Addr, IsStore);
    B.onAccess(Site, Addr, IsStore);
  }
  void onAccessBatch(const AccessEvent *Events, size_t Count) override {
    // Forward whole blocks so a batching downstream (the recorder) keeps
    // its amortization even behind the tee.
    A.onAccessBatch(Events, Count);
    B.onAccessBatch(Events, Count);
  }
  void onCompute(uint64_t Cycles) override {
    A.onCompute(Cycles);
    B.onCompute(Cycles);
  }

private:
  RuntimeObserver &A;
  RuntimeObserver &B;
};

/// Writes the phase timeline as Chrome trace-event JSON ("X" complete
/// events; ts/dur are simulated cycles presented in the microsecond
/// field).  The final open span is closed at \p EndCycle.
void writeTraceEvents(const std::string &Path, const obs::Timeline &Timeline,
                      uint64_t EndCycle) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::fprintf(Out, "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [");
  bool First = true;
  for (const obs::PhaseSpan &Span : Timeline.spans()) {
    const uint64_t End = Span.Open ? EndCycle : Span.EndCycle;
    if (End <= Span.BeginCycle)
      continue;
    std::fprintf(Out,
                 "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                 "\"tid\": 1, \"ts\": %llu, \"dur\": %llu}",
                 First ? "" : ",", Span.Name.c_str(),
                 (unsigned long long)Span.BeginCycle,
                 (unsigned long long)(End - Span.BeginCycle));
    First = false;
  }
  std::fprintf(Out, "\n]}\n");
  std::fclose(Out);
  std::printf("trace-events: %zu spans -> %s\n", Timeline.spans().size(),
              Path.c_str());
}

/// The Figure-11-style overhead breakdown: every attributed phase, then
/// the paper's four reporting groups, which sum to the total by
/// construction (CyclePhase is a partition).
void printOverheadBreakdown(const obs::CycleBreakdown &B) {
  const uint64_t Total = B.total();
  const auto Pct = [Total](uint64_t Cycles) {
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(Cycles) /
                            static_cast<double>(Total);
  };

  std::printf("\noverhead breakdown (all simulated cycles, by phase):\n");
  Table Phases;
  Phases.row().cell("phase").cell("cycles").cell("% of run");
  const struct {
    const char *Name;
    uint64_t Cycles;
  } Rows[] = {
      {"pure_compute", B.PureCompute},
      {"demand_stall", B.DemandStall},
      {"partial_hit_stall", B.PartialHitStall},
      {"dynamic_check", B.DynamicCheck},
      {"profiling", B.Profiling},
      {"prefix_match", B.PrefixMatch},
      {"prefetch_issue", B.PrefetchIssue},
      {"analysis", B.Analysis},
  };
  for (const auto &Row : Rows)
    Phases.row().cell(Row.Name).cell(Row.Cycles).cell(Pct(Row.Cycles),
                                                      "%.2f");
  Phases.print();

  const uint64_t Base = B.PureCompute + B.DemandStall + B.PartialHitStall;
  const uint64_t Checking = B.DynamicCheck + B.PrefixMatch + B.PrefetchIssue;
  std::printf("\ngroups: base %llu (%.2f%%), checking %llu (%.2f%%), "
              "profiling %llu (%.2f%%), analysis %llu (%.2f%%), "
              "total %llu\n",
              (unsigned long long)Base, Pct(Base),
              (unsigned long long)Checking, Pct(Checking),
              (unsigned long long)B.Profiling, Pct(B.Profiling),
              (unsigned long long)B.Analysis, Pct(B.Analysis),
              (unsigned long long)Total);
}

/// The Figure-10-style per-stream effectiveness table.  Per-stream
/// coverage is the stream's share of coverable misses (useful_s /
/// (all useful + remaining demand misses)), so the rows sum to the
/// run-level coverage.
void printStreamEffectiveness(
    const std::vector<obs::StreamPrefetchStats> &Streams,
    uint64_t RemainingDemandMisses) {
  if (Streams.empty())
    return;

  uint64_t TotalUseful = 0, TotalLate = 0, TotalIssued = 0;
  for (const obs::StreamPrefetchStats &S : Streams) {
    TotalUseful += S.Useful;
    TotalLate += S.Late;
    TotalIssued += S.Issued;
  }
  const double CoverageDenom =
      static_cast<double>(TotalUseful + RemainingDemandMisses);

  std::printf("\nprefetch effectiveness per stream:\n");
  Table Out;
  Out.row()
      .cell("stream")
      .cell("installed")
      .cell("len")
      .cell("issued")
      .cell("useful")
      .cell("late")
      .cell("redundant")
      .cell("dropped")
      .cell("evicted")
      .cell("accuracy")
      .cell("coverage")
      .cell("timeliness");
  for (const obs::StreamPrefetchStats &S : Streams) {
    const double Coverage =
        CoverageDenom == 0.0 ? 0.0
                             : static_cast<double>(S.Useful) / CoverageDenom;
    Out.row()
        .cell(S.StreamTag)
        .cell(S.InstallCycle)
        .cell(S.Length)
        .cell(S.Issued)
        .cell(S.Useful)
        .cell(S.Late)
        .cell(S.Redundant)
        .cell(S.DroppedQueueFull)
        .cell(S.UnusedEvicted)
        .cell(100.0 * S.accuracy(), "%.1f")
        .cell(100.0 * Coverage, "%.1f")
        .cell(100.0 * S.timeliness(), "%.1f");
  }
  Out.print();

  const double RunAccuracy =
      TotalIssued == 0 ? 0.0
                       : static_cast<double>(TotalUseful) /
                             static_cast<double>(TotalIssued);
  const double RunCoverage =
      CoverageDenom == 0.0
          ? 0.0
          : static_cast<double>(TotalUseful) / CoverageDenom;
  const double RunTimeliness =
      TotalUseful + TotalLate == 0
          ? 0.0
          : static_cast<double>(TotalUseful) /
                static_cast<double>(TotalUseful + TotalLate);
  std::printf("run totals: accuracy %.1f%%, coverage %.1f%%, "
              "timeliness %.1f%%\n",
              100.0 * RunAccuracy, 100.0 * RunCoverage,
              100.0 * RunTimeliness);
}

uint64_t runConfigured(const Options &Opts, RunMode Mode, bool Report) {
  OptimizerConfig Config;
  Config.Mode = Mode;
  Config.Dfsm.HeadLength = Opts.HeadLength;
  Config.Prefetchers.Enabled = Opts.Prefetchers;
  Config.Tuning.Enabled = Opts.Tuned;
  Config.PinFirstOptimization = Opts.Pin;
  Config.VerboseAnalysis = Opts.Verbose;

  auto Bench = workloads::createWorkload(Opts.Workload);
  if (!Bench) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 Opts.Workload.c_str());
    std::exit(1);
  }

  Runtime Rt(Config);

  const uint64_t Iterations =
      Opts.Iterations != 0
          ? Opts.Iterations
          : static_cast<uint64_t>(
                static_cast<double>(Bench->defaultIterations()) * Opts.Scale);

  // All observation rides the one RuntimeObserver slot; when both a trace
  // dump and a recording are requested the tee fans the stream out.
  std::FILE *TraceFile = nullptr;
  std::unique_ptr<TraceDumpObserver> Dumper;
  if (Report && !Opts.DumpTrace.empty()) {
    TraceFile = std::fopen(Opts.DumpTrace.c_str(), "w");
    if (!TraceFile) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.DumpTrace.c_str());
      std::exit(1);
    }
    Dumper = std::make_unique<TraceDumpObserver>(TraceFile);
  }

  std::unique_ptr<replay::TraceRecorder> Recorder;
  if (Report && !Opts.RecordTo.empty())
    Recorder = std::make_unique<replay::TraceRecorder>(
        replay::metaFromConfig(Config, Opts.Workload, Iterations));

  std::unique_ptr<TeeObserver> Tee;
  if (Dumper && Recorder) {
    Tee = std::make_unique<TeeObserver>(*Dumper, *Recorder);
    Rt.setObserver(Tee.get());
  } else if (Dumper) {
    Rt.setObserver(Dumper.get());
  } else if (Recorder) {
    Rt.setObserver(Recorder.get());
  }

  Bench->setup(Rt);
  if (Recorder)
    Recorder->markSetupDone();
  Bench->run(Rt, Iterations);
  Rt.setObserver(nullptr);
  if (TraceFile)
    std::fclose(TraceFile);

  if (Recorder) {
    Recorder->finish(Rt);
    std::string Error;
    if (!replay::writeTraceFile(Recorder->trace(), Opts.RecordTo, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      std::exit(1);
    }
    std::printf("recorded:   %zu events -> %s\n",
                Recorder->trace().Events.size(), Opts.RecordTo.c_str());
  }

  if (!Report)
    return Rt.cycles();

  const RunStats &Stats = Rt.stats();
  const memsim::CacheStats &L1 = Rt.memory().l1().stats();
  const memsim::CacheStats &L2 = Rt.memory().l2().stats();
  const memsim::HierarchyStats &Mem = Rt.memory().stats();

  std::printf("workload:   %s (%llu iterations)\n", Opts.Workload.c_str(),
              (unsigned long long)Iterations);
  std::printf("mode:       %s%s\n", runModeName(Mode),
              featureSuffix(Opts.Prefetchers, Opts.Pin, Opts.Tuned).c_str());
  std::printf("cycles:     %llu\n", (unsigned long long)Rt.cycles());
  std::printf("accesses:   %llu (%.2f cycles/access)\n",
              (unsigned long long)Stats.TotalAccesses,
              static_cast<double>(Rt.cycles()) /
                  static_cast<double>(Stats.TotalAccesses));
  std::printf("L1:         %.1f%% miss (%llu hits, %llu misses)\n",
              100.0 * L1.missRate(), (unsigned long long)L1.Hits,
              (unsigned long long)L1.Misses);
  std::printf("L2:         %.1f%% miss (%llu hits, %llu misses)\n",
              100.0 * L2.missRate(), (unsigned long long)L2.Hits,
              (unsigned long long)L2.Misses);
  std::printf("stalls:     %llu cycles (%.1f%% of run)\n",
              (unsigned long long)Mem.StallCycles,
              100.0 * static_cast<double>(Mem.StallCycles) /
                  static_cast<double>(Rt.cycles()));
  std::printf("checks:     %llu executed, %llu refs traced\n",
              (unsigned long long)Stats.ChecksExecuted,
              (unsigned long long)Stats.TracedRefs);
  std::printf("matching:   %llu complete matches, %llu clauses scanned\n",
              (unsigned long long)Stats.CompleteMatches,
              (unsigned long long)Stats.MatchClausesScanned);
  std::printf("prefetches: %llu issued, %llu useful, %llu wasted, "
              "%llu redundant, %llu partial hits\n",
              (unsigned long long)Mem.PrefetchesIssued,
              (unsigned long long)(L1.UsefulPrefetches + L2.UsefulPrefetches),
              (unsigned long long)(L1.WastedPrefetches + L2.WastedPrefetches),
              (unsigned long long)Mem.PrefetchesRedundant,
              (unsigned long long)Mem.PartialHits);
  for (const obs::PrefetcherStats &Pf : Rt.prefetcherStats())
    std::printf("%-12s%llu prefetches (%llu useful, %llu late), "
                "%llu trains\n",
                prefetch::Prefetcher::kindToken(
                    static_cast<prefetch::Prefetcher::Kind>(
                        static_cast<uint8_t>(Pf.Kind))),
                (unsigned long long)Pf.Issued, (unsigned long long)Pf.Useful,
                (unsigned long long)Pf.Late, (unsigned long long)Pf.Trains);

  if (!Stats.Cycles.empty()) {
    std::printf("\noptimization cycles:\n");
    Table Out;
    Out.row()
        .cell("cycle")
        .cell("traced")
        .cell("detected")
        .cell("installed")
        .cell("DFSM states")
        .cell("clauses")
        .cell("procs");
    for (size_t C = 0; C < Stats.Cycles.size(); ++C) {
      const CycleStats &Cycle = Stats.Cycles[C];
      Out.row()
          .cell(uint64_t{C})
          .cell(uint64_t{Cycle.TracedRefs})
          .cell(uint64_t{Cycle.HotStreamsDetected})
          .cell(uint64_t{Cycle.StreamsInstalled})
          .cell(uint64_t{Cycle.DfsmStates})
          .cell(uint64_t{Cycle.CheckClausesInjected})
          .cell(uint64_t{Cycle.ProceduresModified});
    }
    Out.print();
  }

  if (Opts.Report) {
    printOverheadBreakdown(Rt.cycleBreakdown());
    // Remaining demand misses = L1 demand misses not hidden by a
    // prefetch (useful hits never reached the miss path).
    printStreamEffectiveness(Rt.streamPrefetchStats(), L1.Misses);
  }
  if (!Opts.TraceEvents.empty())
    writeTraceEvents(Opts.TraceEvents, Rt.timeline(), Rt.cycles());

  return Rt.cycles();
}

} // namespace

/// Replays a recorded trace and verifies the run reproduced the recorded
/// outcome exactly.  Returns the process exit code.
int replayRecordedTrace(const std::string &Path) {
  replay::Trace T;
  std::string Error;
  if (!replay::readTraceFile(Path, T, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  const replay::ReplayResult Result = replay::replayTrace(T);
  std::printf("workload:   %s (%llu iterations, recorded)\n",
              T.Meta.Workload.c_str(), (unsigned long long)T.Meta.Iterations);
  std::printf("mode:       %s%s\n", runModeName(T.Meta.Mode),
              featureSuffix(T.Meta.Prefetchers, T.Meta.Pin,
                            /*Tuned=*/false)
                  .c_str());
  std::printf("events:     %zu replayed\n", T.Events.size());
  std::printf("cycles:     %llu recorded, %llu replayed\n",
              (unsigned long long)T.Summary.Cycles,
              (unsigned long long)Result.Replayed.Cycles);
  std::printf("L1 misses:  %llu recorded, %llu replayed\n",
              (unsigned long long)T.Summary.L1Misses,
              (unsigned long long)Result.Replayed.L1Misses);
  std::printf("L2 misses:  %llu recorded, %llu replayed\n",
              (unsigned long long)T.Summary.L2Misses,
              (unsigned long long)Result.Replayed.L2Misses);
  if (!Result.SummaryMatches) {
    std::fprintf(stderr, "replay:     DIVERGED (%s)\n",
                 Result.Divergence.c_str());
    return 1;
  }
  std::printf("replay:     identical\n");
  return 0;
}

int main(int Argc, char **Argv) {
  const Options Opts = parseOptions(Argc, Argv);
  if (!Opts.ReplayFrom.empty())
    return replayRecordedTrace(Opts.ReplayFrom);
  const uint64_t Cycles = runConfigured(Opts, Opts.Mode, /*Report=*/true);

  if (Opts.Compare && Opts.Mode != RunMode::Original) {
    const uint64_t Original =
        runConfigured(Opts, RunMode::Original, /*Report=*/false);
    std::printf("\nvs original: %+.2f%% (%llu -> %llu cycles)\n",
                100.0 * (static_cast<double>(Cycles) -
                         static_cast<double>(Original)) /
                    static_cast<double>(Original),
                (unsigned long long)Original, (unsigned long long)Cycles);
  }
  return 0;
}
