//===- testing/TraceGen.cpp - Seeded adversarial trace generator ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "testing/TraceGen.h"

#include "support/Rng.h"

using namespace hds;
using namespace hds::testing;

namespace {

/// Emits one randomly built motif of \p Length symbols drawn from
/// [Base, Base + Vocab).
std::vector<uint32_t> makeMotif(Rng &R, uint32_t Base,
                                uint64_t Vocab, uint64_t Length) {
  std::vector<uint32_t> Motif;
  Motif.reserve(Length);
  for (uint64_t I = 0; I < Length; ++I)
    Motif.push_back(Base + static_cast<uint32_t>(R.nextBelow(Vocab)));
  return Motif;
}

void appendMotif(std::vector<uint32_t> &Out,
                 const std::vector<uint32_t> &Motif) {
  Out.insert(Out.end(), Motif.begin(), Motif.end());
}

std::vector<uint32_t> hotLoops(Rng &R) {
  // 2-4 motifs of length 3-12, interleaved with occasional noise symbols.
  const uint64_t MotifCount = R.nextInRange(2, 4);
  std::vector<std::vector<uint32_t>> Motifs;
  for (uint64_t M = 0; M < MotifCount; ++M)
    Motifs.push_back(makeMotif(R, 0, 24, R.nextInRange(3, 12)));

  std::vector<uint32_t> Trace;
  const uint64_t Bursts = R.nextInRange(120, 400);
  for (uint64_t B = 0; B < Bursts; ++B) {
    appendMotif(Trace, Motifs[R.nextBelow(MotifCount)]);
    if (R.nextBool(0.15))
      Trace.push_back(1000 + static_cast<uint32_t>(R.nextBelow(64)));
  }
  return Trace;
}

std::vector<uint32_t> phaseShifts(Rng &R) {
  // Each phase has its own motif vocabulary; the analyzer must not blend
  // heat across phases.
  std::vector<uint32_t> Trace;
  const uint64_t Phases = R.nextInRange(2, 5);
  for (uint64_t P = 0; P < Phases; ++P) {
    const uint32_t Base = static_cast<uint32_t>(P * 100);
    std::vector<uint32_t> Motif =
        makeMotif(R, Base, 16, R.nextInRange(4, 10));
    const uint64_t Repeats = R.nextInRange(60, 200);
    for (uint64_t I = 0; I < Repeats; ++I)
      appendMotif(Trace, Motif);
  }
  return Trace;
}

std::vector<uint32_t> noiseFlood(Rng &R) {
  // One genuinely hot motif drowned in mostly-unique references; unique
  // ids count up so nothing outside the motif ever recurs.
  std::vector<uint32_t> Motif = makeMotif(R, 0, 12, R.nextInRange(3, 8));
  std::vector<uint32_t> Trace;
  uint32_t NextUnique = 1u << 16;
  const uint64_t Steps = R.nextInRange(400, 1200);
  for (uint64_t I = 0; I < Steps; ++I) {
    if (R.nextBool(0.3))
      appendMotif(Trace, Motif);
    else
      Trace.push_back(NextUnique++);
  }
  return Trace;
}

std::vector<uint32_t> regexRecurrence(Rng &R) {
  // Self-similar nested repetition (a^k b)^m interleaved with re-entrant
  // heads like aab — worst cases for digram handling (aaa runs) and for
  // single-candidate prefix matching.
  std::vector<uint32_t> Trace;
  const uint32_t A = static_cast<uint32_t>(R.nextBelow(4));
  const uint32_t B = 8 + static_cast<uint32_t>(R.nextBelow(4));
  const uint64_t Outer = R.nextInRange(40, 150);
  for (uint64_t O = 0; O < Outer; ++O) {
    const uint64_t RunLength = R.nextInRange(1, 6);
    for (uint64_t I = 0; I < RunLength; ++I)
      Trace.push_back(A);
    Trace.push_back(B);
    if (R.nextBool(0.25)) {
      // aab-style re-entrant head.
      Trace.push_back(A);
      Trace.push_back(A);
      Trace.push_back(B);
    }
  }
  return Trace;
}

std::vector<uint32_t> cacheThrash(Rng &R) {
  // A working set larger than a small cache's line count, swept
  // end-to-end lap after lap: by the time the sweep wraps, LRU has
  // evicted everything the previous lap filled, so every lap misses on
  // every block.  The sweep order within a lap is a fixed stride walk
  // (deterministic per seed), and a short hot motif at each lap boundary
  // gives the analyzers a genuine stream to find amid the churn.
  const uint64_t WorkingSet = R.nextInRange(64, 160);
  const uint64_t Stride = 1 + 2 * R.nextBelow(3); // odd: 1, 3, or 5
  const std::vector<uint32_t> Motif =
      makeMotif(R, 1u << 12, 8, R.nextInRange(3, 6));
  std::vector<uint32_t> Trace;
  const uint64_t Laps = R.nextInRange(8, 24);
  uint64_t Cursor = R.nextBelow(WorkingSet);
  for (uint64_t Lap = 0; Lap < Laps; ++Lap) {
    for (uint64_t I = 0; I < WorkingSet; ++I) {
      Trace.push_back(static_cast<uint32_t>(Cursor));
      Cursor = (Cursor + Stride) % WorkingSet;
    }
    appendMotif(Trace, Motif);
  }
  return Trace;
}

} // namespace

TraceShape hds::testing::shapeForSeed(uint64_t Seed) {
  return static_cast<TraceShape>(Seed % 5);
}

const char *hds::testing::shapeName(TraceShape Shape) {
  switch (Shape) {
  case TraceShape::HotLoops:
    return "hot-loops";
  case TraceShape::PhaseShifts:
    return "phase-shifts";
  case TraceShape::NoiseFlood:
    return "noise-flood";
  case TraceShape::RegexRecurrence:
    return "regex-recurrence";
  case TraceShape::CacheThrash:
    return "cache-thrash";
  }
  return "unknown";
}

std::vector<uint32_t> hds::testing::generateTrace(uint64_t Seed) {
  Rng R(Seed * 0x9E3779B97F4A7C15ULL + 1);
  switch (shapeForSeed(Seed)) {
  case TraceShape::HotLoops:
    return hotLoops(R);
  case TraceShape::PhaseShifts:
    return phaseShifts(R);
  case TraceShape::NoiseFlood:
    return noiseFlood(R);
  case TraceShape::RegexRecurrence:
    return regexRecurrence(R);
  case TraceShape::CacheThrash:
    return cacheThrash(R);
  }
  return {};
}
