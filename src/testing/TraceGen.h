//===- testing/TraceGen.h - Seeded adversarial trace generator -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of adversarial reference traces for the
/// differential-testing oracles (src/replay/Oracles.h).  Every trace is a
/// pure function of its seed, so a failing fuzzer seed reproduces exactly
/// (docs/testing.md explains the workflow).
///
/// The shapes target the pipeline's soft spots:
///
///  * HotLoops — a few short sequences repeated many times, the paper's
///    bread and butter; stresses Sequitur rule formation and the heat
///    accounting.
///  * PhaseShifts — the hot vocabulary changes abruptly partway through,
///    like a program changing phases; stresses cold-use attribution when
///    several rule families coexist.
///  * NoiseFlood — hot streams buried in a majority of unique one-off
///    references; stresses thresholding and digram index churn.
///  * RegexRecurrence — overlapping, self-similar patterns (aab-style
///    re-entrant heads, nested repetitions a^k b a^k); stresses digram
///    uniqueness corner cases and the DFSM's multi-candidate tracking,
///    where the scalar matcher is known to lose matches.
///  * CacheThrash — a working set larger than the modeled cache swept
///    end-to-end lap after lap, LRU's pathological reuse-distance case;
///    stresses long-period recurrence in the analyzers, and (via the
///    set-aliasing address mapping in tests/cache_model_test.cpp) the
///    packed cache model's eviction bookkeeping under 100% conflict
///    pressure.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_TESTING_TRACEGEN_H
#define HDS_TESTING_TRACEGEN_H

#include <cstdint>
#include <vector>

namespace hds {
namespace testing {

/// The adversarial trace families.
enum class TraceShape : uint8_t {
  HotLoops = 0,
  PhaseShifts = 1,
  NoiseFlood = 2,
  RegexRecurrence = 3,
  CacheThrash = 4,
};

/// Seeds cycle round-robin through the shapes so a contiguous seed sweep
/// covers every family evenly.
TraceShape shapeForSeed(uint64_t Seed);

/// Human-readable shape name for failure messages.
const char *shapeName(TraceShape Shape);

/// Generates the trace for \p Seed: same seed, same trace, forever.
/// Traces are a few thousand symbols — big enough to grow real grammar
/// hierarchy, small enough for a 50-seed ctest sweep.
std::vector<uint32_t> generateTrace(uint64_t Seed);

} // namespace testing
} // namespace hds

#endif // HDS_TESTING_TRACEGEN_H
