//===- testing/ReferenceCache.h - Pre-rewrite cache model ------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The straightforward array-of-line-structs cache model that
/// memsim::Cache replaced with a packed set-major layout.  Kept verbatim
/// as the differential-testing oracle: tests/cache_model_test.cpp drives
/// both models through identical access/fill/contains sequences and
/// requires identical hit/miss/eviction decisions and statistics at
/// every step.  The implementation is deliberately naive — its
/// correctness is readable at a glance, which is the whole point of an
/// oracle.  Do not optimize this file.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_TESTING_REFERENCECACHE_H
#define HDS_TESTING_REFERENCECACHE_H

#include "memsim/Cache.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace testing {

/// One level of a set-associative, true-LRU, tag-only cache — the
/// pre-rewrite memsim::Cache.  Shares the production model's config,
/// stats, and classification-detail types so differential tests compare
/// them member for member.
class ReferenceCache {
public:
  using AccessInfo = memsim::Cache::AccessInfo;
  using EvictInfo = memsim::Cache::EvictInfo;

  explicit ReferenceCache(const memsim::CacheConfig &Config);

  /// Looks up \p Address without changing any state.
  bool contains(memsim::Addr Address) const;

  /// Demand access: returns true on hit (and updates LRU + prefetch
  /// accounting).  On miss, no fill happens here.
  bool access(memsim::Addr Address, AccessInfo *Info = nullptr);

  /// Probe-and-touch: on a hit exactly access() (hit counted, LRU
  /// refreshed, prefetched bit consumed); on a miss nothing changes.
  bool touchIfPresent(memsim::Addr Address);

  /// Fills the block containing \p Address, evicting LRU if needed.
  EvictInfo fill(memsim::Addr Address, bool IsPrefetch,
                 uint32_t StreamTag = obs::NoStreamTag);

  /// Drops all lines.
  void reset();

  const memsim::CacheConfig &config() const { return Config; }
  const memsim::CacheStats &stats() const { return Stats; }
  void clearStats() { Stats = memsim::CacheStats(); }

  /// Number of currently valid lines.
  uint64_t validLineCount() const;

private:
  struct Line {
    memsim::Addr Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
    bool PrefetchedUntouched = false;
    uint32_t StreamTag = obs::NoStreamTag;
  };

  uint64_t blockNumber(memsim::Addr Address) const {
    return Address / Config.BlockBytes;
  }
  uint64_t setIndex(memsim::Addr Address) const {
    return blockNumber(Address) % NumSets;
  }
  memsim::Addr tagOf(memsim::Addr Address) const {
    return blockNumber(Address) / NumSets;
  }

  Line *findLine(memsim::Addr Address);
  const Line *findLine(memsim::Addr Address) const;

  memsim::CacheConfig Config;
  uint64_t NumSets;
  uint64_t UseClock = 0;
  std::vector<Line> Lines; // NumSets * Associativity, set-major.
  memsim::CacheStats Stats;
};

} // namespace testing
} // namespace hds

#endif // HDS_TESTING_REFERENCECACHE_H
