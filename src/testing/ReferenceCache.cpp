//===- testing/ReferenceCache.cpp - Pre-rewrite cache model ---------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "testing/ReferenceCache.h"

using namespace hds;
using namespace hds::testing;
using memsim::Addr;

ReferenceCache::ReferenceCache(const memsim::CacheConfig &Cfg)
    : Config(Cfg), NumSets(Cfg.numSets()),
      Lines(NumSets * Cfg.Associativity) {}

ReferenceCache::Line *ReferenceCache::findLine(Addr Address) {
  const Addr Tag = tagOf(Address);
  Line *Set = &Lines[setIndex(Address) * Config.Associativity];
  for (unsigned Way = 0; Way < Config.Associativity; ++Way)
    if (Set[Way].Valid && Set[Way].Tag == Tag)
      return &Set[Way];
  return nullptr;
}

const ReferenceCache::Line *ReferenceCache::findLine(Addr Address) const {
  return const_cast<ReferenceCache *>(this)->findLine(Address);
}

bool ReferenceCache::contains(Addr Address) const { return findLine(Address); }

bool ReferenceCache::access(Addr Address, AccessInfo *Info) {
  Line *Hit = findLine(Address);
  if (!Hit) {
    ++Stats.Misses;
    return false;
  }
  ++Stats.Hits;
  Hit->LastUse = ++UseClock;
  if (Hit->PrefetchedUntouched) {
    ++Stats.UsefulPrefetches;
    Hit->PrefetchedUntouched = false;
    if (Info) {
      Info->PrefetchHit = true;
      Info->StreamTag = Hit->StreamTag;
    }
  }
  return true;
}

bool ReferenceCache::touchIfPresent(Addr Address) {
  if (!findLine(Address))
    return false;
  return access(Address);
}

ReferenceCache::EvictInfo ReferenceCache::fill(Addr Address, bool IsPrefetch,
                                               uint32_t StreamTag) {
  if (Line *Existing = findLine(Address)) {
    // Refilling a resident block just refreshes recency; it must not
    // re-arm the prefetch bit on a demand-touched line.
    Existing->LastUse = ++UseClock;
    return EvictInfo();
  }

  Line *Set = &Lines[setIndex(Address) * Config.Associativity];
  Line *Victim = &Set[0];
  for (unsigned Way = 0; Way < Config.Associativity; ++Way) {
    if (!Set[Way].Valid) {
      Victim = &Set[Way];
      break;
    }
    if (Set[Way].LastUse < Victim->LastUse)
      Victim = &Set[Way];
  }

  EvictInfo Evicted;
  if (Victim->Valid) {
    ++Stats.Evictions;
    if (Victim->PrefetchedUntouched) {
      ++Stats.WastedPrefetches;
      Evicted.EvictedUntouchedPrefetch = true;
      Evicted.EvictedStreamTag = Victim->StreamTag;
      Evicted.EvictedBlockAddr =
          (Victim->Tag * NumSets + setIndex(Address)) * Config.BlockBytes;
    }
  }

  Victim->Valid = true;
  Victim->Tag = tagOf(Address);
  Victim->LastUse = ++UseClock;
  Victim->PrefetchedUntouched = IsPrefetch;
  Victim->StreamTag = IsPrefetch ? StreamTag : obs::NoStreamTag;
  if (IsPrefetch)
    ++Stats.PrefetchFills;
  else
    ++Stats.DemandFills;
  return Evicted;
}

void ReferenceCache::reset() {
  for (Line &L : Lines)
    L = Line();
  UseClock = 0;
}

uint64_t ReferenceCache::validLineCount() const {
  uint64_t Count = 0;
  for (const Line &L : Lines)
    if (L.Valid)
      ++Count;
  return Count;
}
