//===- cli/Options.cpp - Shared command-line option machinery -------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "cli/Options.h"

#include "prefetch/Prefetcher.h"

#include <cstdio>
#include <cstdlib>

using namespace hds;
using namespace hds::cli;

OptionSet &OptionSet::add(const char *Name, unsigned Operands,
                          std::function<void(const char *const *)> Apply) {
  Table.push_back({Name, Operands, std::move(Apply)});
  return *this;
}

OptionSet &OptionSet::flag(const char *Name, bool &Target) {
  return add(Name, 0,
             [&Target](const char *const *) { Target = true; });
}

OptionSet &OptionSet::str(const char *Name, std::string &Target) {
  return add(Name, 1,
             [&Target](const char *const *Ops) { Target = Ops[0]; });
}

OptionSet &OptionSet::strList(const char *Name,
                              std::vector<std::string> &Target) {
  return add(Name, 1, [&Target](const char *const *Ops) {
    Target.push_back(Ops[0]);
  });
}

OptionSet &OptionSet::strPair(const char *Name, std::string &A,
                              std::string &B) {
  return add(Name, 2, [&A, &B](const char *const *Ops) {
    A = Ops[0];
    B = Ops[1];
  });
}

OptionSet &OptionSet::u64(const char *Name, uint64_t &Target) {
  return add(Name, 1, [&Target](const char *const *Ops) {
    Target = std::strtoull(Ops[0], nullptr, 10);
  });
}

OptionSet &OptionSet::u32(const char *Name, uint32_t &Target) {
  return add(Name, 1, [&Target](const char *const *Ops) {
    Target = static_cast<uint32_t>(std::strtoul(Ops[0], nullptr, 10));
  });
}

OptionSet &OptionSet::uns(const char *Name, unsigned &Target) {
  return add(Name, 1, [&Target](const char *const *Ops) {
    Target = static_cast<unsigned>(std::strtoul(Ops[0], nullptr, 10));
  });
}

OptionSet &OptionSet::unsAtLeastOne(const char *Name, unsigned &Target) {
  std::string Flag = Name;
  return add(Name, 1, [&Target, Flag](const char *const *Ops) {
    Target = static_cast<unsigned>(std::strtoul(Ops[0], nullptr, 10));
    if (Target == 0) {
      std::fprintf(stderr, "error: %s must be >= 1\n", Flag.c_str());
      std::exit(2);
    }
  });
}

OptionSet &OptionSet::looseDouble(const char *Name, double &Target) {
  return add(Name, 1, [&Target](const char *const *Ops) {
    Target = std::atof(Ops[0]);
  });
}

OptionSet &OptionSet::positiveDouble(const char *Name, double &Target) {
  std::string Flag = Name;
  return add(Name, 1, [&Target, Flag](const char *const *Ops) {
    char *End = nullptr;
    Target = std::strtod(Ops[0], &End);
    if (End == Ops[0] || *End != '\0' || !(Target > 0.0)) {
      std::fprintf(stderr,
                   "error: invalid %s '%s' (need a finite number > 0)\n",
                   Flag.c_str(), Ops[0]);
      std::exit(2);
    }
  });
}

OptionSet &OptionSet::nonNegativeDouble(const char *Name, double &Target) {
  std::string Flag = Name;
  return add(Name, 1, [&Target, Flag](const char *const *Ops) {
    char *End = nullptr;
    Target = std::strtod(Ops[0], &End);
    if (End == Ops[0] || *End != '\0' || Target < 0.0) {
      std::fprintf(stderr, "error: invalid %s '%s' (need a number >= 0)\n",
                   Flag.c_str(), Ops[0]);
      std::exit(2);
    }
  });
}

OptionSet &OptionSet::runMode(const char *Name, core::RunMode &Target) {
  return add(Name, 1, [this, &Target](const char *const *Ops) {
    if (!core::parseRunModeToken(Ops[0], Target))
      Usage();
  });
}

void OptionSet::parse(int Argc, char **Argv) const {
  for (int I = 1; I < Argc; ++I) {
    const Option *Match = nullptr;
    for (const Option &Candidate : Table)
      if (Candidate.Name == Argv[I]) {
        Match = &Candidate;
        break;
      }
    if (!Match || I + static_cast<int>(Match->Operands) >= Argc) {
      // The tools' usage callbacks exit; stop scanning anyway so a
      // callback that returns (tests) leaves the parse well defined.
      Usage();
      return;
    }
    // argv stays alive for the whole parse; hand the operands over as a
    // pointer into it.
    Match->Apply(const_cast<const char *const *>(Argv) + I + 1);
    I += static_cast<int>(Match->Operands);
  }
}

void hds::cli::addPrefetcherFlags(OptionSet &Opts,
                                  prefetch::PrefetcherSelection &Selection) {
  // One static spelling per kind: the registered table stores the name
  // by value, but keeping the strings alive for the process keeps usage
  // rendering cheap too.
  static const std::vector<std::string> Flags = [] {
    std::vector<std::string> Out;
    for (unsigned I = 0; I < prefetch::PrefetcherSelection::NumKinds; ++I)
      Out.push_back(std::string("--") +
                    prefetch::Prefetcher::kindToken(
                        static_cast<prefetch::Prefetcher::Kind>(I)));
    return Out;
  }();
  for (unsigned I = 0; I < prefetch::PrefetcherSelection::NumKinds; ++I) {
    const auto K = static_cast<prefetch::Prefetcher::Kind>(I);
    Opts.add(Flags[I].c_str(), 0, [&Selection, K](const char *const *) {
      Selection.set(K, true);
    });
  }
}

void hds::cli::addTunedFlag(OptionSet &Opts, bool &Tuned) {
  Opts.flag(TunedFlag, Tuned);
}

std::string hds::cli::prefetcherFlagsUsage() {
  std::string Out;
  for (unsigned I = 0; I < prefetch::PrefetcherSelection::NumKinds; ++I) {
    Out += " [--";
    Out += prefetch::Prefetcher::kindToken(
        static_cast<prefetch::Prefetcher::Kind>(I));
    Out += ']';
  }
  return Out;
}

namespace {

/// One row per fleet flag: spelling, operand placeholder (null = no
/// operand), which sides register it, and how it lands in FleetOptions.
/// Registration and usage rendering both walk this table — the single
/// source of truth the serve/worker tools share.
struct FleetRow {
  const char *Flag;
  const char *Operand; // nullptr = boolean flag
  bool ServeSide;
  bool WorkerSide;
  void (*Register)(OptionSet &, FleetOptions &);
};

constexpr FleetRow FleetTable[] = {
    {"--serve", "ADDR", true, false,
     [](OptionSet &O, FleetOptions &T) { O.str("--serve", T.ServeAddr); }},
    {"--workers", "N", true, false,
     [](OptionSet &O, FleetOptions &T) { O.uns("--workers", T.Workers); }},
    {"--worker", "ADDR", false, true,
     [](OptionSet &O, FleetOptions &T) { O.str("--worker", T.WorkerAddr); }},
    {"--job-timeout", "MS", true, true,
     [](OptionSet &O, FleetOptions &T) {
       O.u32("--job-timeout", T.JobTimeoutMs);
     }},
    {"--idle-timeout", "MS", true, false,
     [](OptionSet &O, FleetOptions &T) {
       O.u32("--idle-timeout", T.IdleTimeoutMs);
     }},
    {"--token", "SECRET", true, true,
     [](OptionSet &O, FleetOptions &T) { O.str("--token", T.Token); }},
    {"--allow-remote", nullptr, true, false,
     [](OptionSet &O, FleetOptions &T) {
       O.flag("--allow-remote", T.AllowRemote);
     }},
    {"--heartbeat-interval", "MS", true, true,
     [](OptionSet &O, FleetOptions &T) {
       O.u32("--heartbeat-interval", T.HeartbeatIntervalMs);
     }},
    {"--heartbeat-misses", "N", true, false,
     [](OptionSet &O, FleetOptions &T) {
       O.uns("--heartbeat-misses", T.HeartbeatMisses);
     }},
    {"--checkpoint", "FILE", true, false,
     [](OptionSet &O, FleetOptions &T) {
       O.str("--checkpoint", T.CheckpointPath);
     }},
    {"--cores", "N", false, true,
     [](OptionSet &O, FleetOptions &T) { O.u64("--cores", T.Cores); }},
    {"--memory", "MB", false, true,
     [](OptionSet &O, FleetOptions &T) { O.u64("--memory", T.MemoryMB); }},
};

void addFleetSide(OptionSet &Opts, FleetOptions &Target, bool ServeSide) {
  for (const FleetRow &Row : FleetTable)
    if (ServeSide ? Row.ServeSide : Row.WorkerSide)
      Row.Register(Opts, Target);
}

std::string fleetSideUsage(bool ServeSide) {
  std::string Out;
  for (const FleetRow &Row : FleetTable) {
    if (!(ServeSide ? Row.ServeSide : Row.WorkerSide))
      continue;
    Out += " [";
    Out += Row.Flag;
    if (Row.Operand) {
      Out += ' ';
      Out += Row.Operand;
    }
    Out += ']';
  }
  return Out;
}

} // namespace

void hds::cli::addFleetServeOptions(OptionSet &Opts, FleetOptions &Target) {
  addFleetSide(Opts, Target, true);
}

void hds::cli::addFleetWorkerOptions(OptionSet &Opts, FleetOptions &Target) {
  addFleetSide(Opts, Target, false);
}

std::string hds::cli::fleetServeOptionsUsage() { return fleetSideUsage(true); }

std::string hds::cli::fleetWorkerOptionsUsage() {
  return fleetSideUsage(false);
}
