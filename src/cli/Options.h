//===- cli/Options.h - Shared command-line option machinery ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one command-line vocabulary shared by hds_run, hds_matrix, and
/// hds_bench.  Each tool declares its options against an OptionSet and
/// calls parse(); the set owns matching, operand collection, and the
/// numeric conversions, so a flag like --adaptive or --scale is defined
/// (spelling, operand shape, validation, error text) in exactly one
/// place and every tool parses it identically.
///
/// The registration vocabulary deliberately mirrors the historical
/// per-tool parsers, quirks included: raw integer options convert with
/// strtoul/strtoull and no validation (legacy behavior the goldens
/// depend on), while the strict double options reject trailing garbage
/// and out-of-range values with the exact legacy error messages and
/// exit code 2.  An unknown option or missing operand calls the tool's
/// usage callback, which prints and exits with the tool's historical
/// status.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_CLI_OPTIONS_H
#define HDS_CLI_OPTIONS_H

#include "core/OptimizerConfig.h"
#include "prefetch/Selection.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hds {
namespace cli {

/// A declarative option table plus the parser that walks argv against
/// it.  Registration methods return *this so tables read as a chain.
class OptionSet {
public:
  /// Called on an unknown option, a missing operand, or a bad run-mode
  /// token.  The tools' callbacks print usage and exit; if a callback
  /// returns (tests), parse() abandons the remaining argv.
  using UsageFn = std::function<void()>;

  explicit OptionSet(UsageFn UsageIn) : Usage(std::move(UsageIn)) {}

  /// --name (no operand): sets \p Target to true.
  OptionSet &flag(const char *Name, bool &Target);
  /// --name VALUE: stores the operand verbatim.
  OptionSet &str(const char *Name, std::string &Target);
  /// --name VALUE, repeatable: appends each operand.
  OptionSet &strList(const char *Name, std::vector<std::string> &Target);
  /// --name A B: two operands (hds_matrix --diff).
  OptionSet &strPair(const char *Name, std::string &A, std::string &B);

  /// \name Raw integer options: strtoull/strtoul with no validation,
  /// matching the historical per-tool parsers bit for bit.
  /// @{
  OptionSet &u64(const char *Name, uint64_t &Target);
  OptionSet &u32(const char *Name, uint32_t &Target);
  OptionSet &uns(const char *Name, unsigned &Target);
  /// @}

  /// strtoul, then "error: --name must be >= 1" and exit 2 on zero
  /// (hds_bench --repeat).
  OptionSet &unsAtLeastOne(const char *Name, unsigned &Target);

  /// atof, anything goes (the historical hds_run --scale).
  OptionSet &looseDouble(const char *Name, double &Target);
  /// Strict parse; "error: invalid --name '...' (need a finite number
  /// > 0)" and exit 2 unless the value is finite and positive.
  OptionSet &positiveDouble(const char *Name, double &Target);
  /// Strict parse; "error: invalid --name '...' (need a number >= 0)"
  /// and exit 2 on a negative or malformed value.
  OptionSet &nonNegativeDouble(const char *Name, double &Target);

  /// --name TOKEN via core::parseRunModeToken; unknown tokens fall
  /// through to the usage callback.
  OptionSet &runMode(const char *Name, core::RunMode &Target);

  /// Escape hatch for vocabulary helpers (addPrefetcherFlags): an
  /// option with \p Operands operands and an arbitrary apply callback.
  OptionSet &add(const char *Name, unsigned Operands,
                 std::function<void(const char *const *)> Apply);

  /// Walks argv; calls the usage callback on anything unregistered.
  void parse(int Argc, char **Argv) const;

private:
  struct Option {
    std::string Name;
    unsigned Operands = 0;
    /// Receives the option's operands (Operands entries).
    std::function<void(const char *const *)> Apply;
  };

  UsageFn Usage;
  std::vector<Option> Table;
};

/// Registers the five hardware-prefetcher flags (--stride --markov
/// --stream --pair --duel), each enabling one Prefetcher::Kind in
/// \p Selection.  Flag spellings come from Prefetcher::kindToken, so
/// the CLI can never drift from the zoo roster.
void addPrefetcherFlags(OptionSet &Opts,
                        prefetch::PrefetcherSelection &Selection);

/// The closed-loop degree/distance tuning flag (docs/tuning.md),
/// defined here and nowhere else.
inline constexpr const char *TunedFlag = "--adaptive";
void addTunedFlag(OptionSet &Opts, bool &Tuned);

/// " [--stride] [--markov] [--stream] [--pair] [--duel]" — the usage
/// fragment for addPrefetcherFlags, generated from the roster.
std::string prefetcherFlagsUsage();

/// The fleet-service vocabulary shared by hds_fleet and hds_matrix:
/// one value type holding every distributed knob, registered against an
/// OptionSet by the side (serve/worker) that understands it.  Flag
/// spellings, operand names, and side membership live in one internal
/// table, so a tool's usage text (fleetServeOptionsUsage /
/// fleetWorkerOptionsUsage) can never drift from what its parser
/// accepts.
struct FleetOptions {
  /// --serve ADDR: listen address ("host:port" or "unix:/path").
  std::string ServeAddr;
  /// --workers N: local worker processes forked by the serving tool.
  unsigned Workers = 0;
  /// --worker ADDR: run as a worker against this coordinator.
  std::string WorkerAddr;
  /// --job-timeout MS (both sides).
  uint32_t JobTimeoutMs = 120000;
  /// --idle-timeout MS (serve side).
  uint32_t IdleTimeoutMs = 30000;
  /// --token SECRET (both sides): shared secret for the hello.
  std::string Token;
  /// --allow-remote (serve side): permit non-loopback listeners.
  bool AllowRemote = false;
  /// --heartbeat-interval MS (both sides; 0 disables).
  uint32_t HeartbeatIntervalMs = 1000;
  /// --heartbeat-misses N (serve side).
  unsigned HeartbeatMisses = 5;
  /// --checkpoint FILE (serve side): journal completed cells here.
  std::string CheckpointPath;
  /// --cores N / --memory MB (worker side): advisory capabilities.
  uint64_t Cores = 0;
  uint64_t MemoryMB = 0;
};

/// Registers the serve-side fleet options (--serve --workers
/// --job-timeout --idle-timeout --token --allow-remote
/// --heartbeat-interval --heartbeat-misses --checkpoint).
void addFleetServeOptions(OptionSet &Opts, FleetOptions &Target);
/// Registers the worker-side fleet options (--worker --job-timeout
/// --token --heartbeat-interval --cores --memory).
void addFleetWorkerOptions(OptionSet &Opts, FleetOptions &Target);

/// Usage fragments generated from the same table the parsers register
/// from, e.g. " [--serve ADDR] [--workers N] ...".
std::string fleetServeOptionsUsage();
std::string fleetWorkerOptionsUsage();

} // namespace cli
} // namespace hds

#endif // HDS_CLI_OPTIONS_H
