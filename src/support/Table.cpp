//===- support/Table.cpp - Aligned text table printing --------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cstdarg>
#include <cstdint>

using namespace hds;

std::string hds::formatString(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Format, Args);
  va_end(Args);
  std::string Result(Size > 0 ? static_cast<size_t>(Size) : 0, '\0');
  if (Size > 0)
    std::vsnprintf(Result.data(), Result.size() + 1, Format, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

Table::RowBuilder &Table::RowBuilder::cell(double Value, const char *Format) {
  Cells.push_back(formatString(Format, Value));
  return *this;
}

Table::RowBuilder &Table::RowBuilder::cell(uint64_t Value) {
  Cells.push_back(formatString("%llu", (unsigned long long)Value));
  return *this;
}

Table::RowBuilder &Table::RowBuilder::cell(int64_t Value) {
  Cells.push_back(formatString("%lld", (long long)Value));
  return *this;
}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string Table::toString() const {
  // Compute the width of every column.
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  }

  auto AppendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      Out += Cell;
      if (I + 1 < Widths.size())
        Out += std::string(Widths[I] - Cell.size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  for (size_t R = 0; R < Rows.size(); ++R) {
    AppendRow(Out, Rows[R]);
    if (R == 0 && Rows.size() > 1) {
      size_t RuleWidth = 0;
      for (size_t I = 0; I < Widths.size(); ++I)
        RuleWidth += Widths[I] + (I + 1 < Widths.size() ? 2 : 0);
      Out += std::string(RuleWidth, '-');
      Out += '\n';
    }
  }
  return Out;
}

void Table::print(std::FILE *Out) const {
  std::string Text = toString();
  std::fwrite(Text.data(), 1, Text.size(), Out);
}
