//===- support/Statistics.h - Running statistics ---------------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small accumulator types used by the evaluation harness: a running
/// scalar statistic (count/mean/min/max) and a fixed-width histogram.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_SUPPORT_STATISTICS_H
#define HDS_SUPPORT_STATISTICS_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

namespace hds {

/// Accumulates count, sum, min, and max of a stream of samples.
///
/// Table 2 of the paper reports several quantities "averaged on a per
/// optimization cycle basis"; the characterization harness feeds one sample
/// per cycle into instances of this class.
class RunningStat {
public:
  void addSample(double Value) {
    Count += 1;
    Sum += Value;
    Minimum = std::min(Minimum, Value);
    Maximum = std::max(Maximum, Value);
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }

  /// Mean of all samples; 0 when empty so reports stay printable.
  double mean() const {
    return Count == 0 ? 0.0 : Sum / static_cast<double>(Count);
  }

  /// Smallest sample; +inf when empty.
  double min() const { return Minimum; }
  /// Largest sample; -inf when empty.
  double max() const { return Maximum; }

  bool empty() const { return Count == 0; }

private:
  uint64_t Count = 0;
  double Sum = 0.0;
  double Minimum = std::numeric_limits<double>::infinity();
  double Maximum = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [0, BucketCount * BucketWidth); samples at or
/// beyond the top land in the final (overflow) bucket.
class Histogram {
public:
  Histogram(uint64_t BucketCount, uint64_t BucketWidth)
      : Width(BucketWidth), Buckets(BucketCount + 1, 0) {
    assert(BucketCount > 0 && BucketWidth > 0 && "degenerate histogram");
  }

  void addSample(uint64_t Value) {
    uint64_t Index = std::min<uint64_t>(Value / Width, Buckets.size() - 1);
    ++Buckets[Index];
    ++Total;
  }

  uint64_t bucketCount() const { return Buckets.size(); }
  uint64_t bucket(uint64_t Index) const { return Buckets.at(Index); }
  uint64_t total() const { return Total; }

  /// Lower bound of bucket \p Index.
  uint64_t bucketLowerBound(uint64_t Index) const { return Index * Width; }

private:
  uint64_t Width;
  uint64_t Total = 0;
  std::vector<uint64_t> Buckets;
};

} // namespace hds

#endif // HDS_SUPPORT_STATISTICS_H
