//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the hds project: a reproduction of "Dynamic Hot Data Stream
// Prefetching for General-Purpose Programs" (Chilimbi & Hirzel, PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic pseudo-random number generator.
///
/// The paper stresses that bursty tracing and the optimizer are
/// deterministic, which makes executions of deterministic benchmarks
/// repeatable (Section 2.2).  Everything in this project that needs
/// randomness (workload inputs, property tests, synthetic traces) therefore
/// uses this explicitly seeded generator rather than global random state.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_SUPPORT_RNG_H
#define HDS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace hds {

/// xorshift128+ generator: fast, deterministic, and good enough for
/// workload shuffling and property-test input generation.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Resets the generator to the deterministic stream for \p Seed.
  void reseed(uint64_t Seed) {
    // SplitMix64 to spread a possibly low-entropy seed over both words.
    State0 = splitMix64(Seed);
    State1 = splitMix64(State0 ^ 0xBF58476D1CE4E5B9ULL);
    if (State0 == 0 && State1 == 0)
      State1 = 1;
  }

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next() {
    uint64_t S1 = State0;
    const uint64_t S0 = State1;
    const uint64_t Result = S0 + S1;
    State0 = S0;
    S1 ^= S1 << 23;
    State1 = S1 ^ S0 ^ (S1 >> 18) ^ (S0 >> 5);
    return Result;
  }

  /// Returns a uniformly distributed integer in [0, Bound).
  /// \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible
    // for the bounds used in this project and determinism is what matters.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniformly distributed integer in the inclusive range
  /// [\p Lo, \p Hi].
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t splitMix64(uint64_t X) {
    X += 0x9E3779B97F4A7C15ULL;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
    return X ^ (X >> 31);
  }

  uint64_t State0 = 0;
  uint64_t State1 = 0;
};

} // namespace hds

#endif // HDS_SUPPORT_RNG_H
