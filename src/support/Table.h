//===- support/Table.h - Aligned text table printing -----------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned text table writer used by the benchmark harnesses to
/// print the paper's tables and figure data series in a uniform format.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_SUPPORT_TABLE_H
#define HDS_SUPPORT_TABLE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace hds {

/// Collects rows of string cells and prints them with columns padded to the
/// widest cell.  The first row added is treated as the header and separated
/// from the body by a rule.
class Table {
public:
  /// Appends one row.  Rows may have differing cell counts; missing cells
  /// print as empty.
  void addRow(std::vector<std::string> Cells);

  /// Convenience for building a row cell-by-cell.
  class RowBuilder {
  public:
    explicit RowBuilder(Table &Owner) : Parent(Owner) {}
    RowBuilder &cell(std::string Text) {
      Cells.push_back(std::move(Text));
      return *this;
    }
    RowBuilder &cell(double Value, const char *Format = "%.2f");
    RowBuilder &cell(uint64_t Value);
    RowBuilder &cell(int64_t Value);
    ~RowBuilder() { Parent.addRow(std::move(Cells)); }

  private:
    Table &Parent;
    std::vector<std::string> Cells;
  };

  RowBuilder row() { return RowBuilder(*this); }

  /// Renders the table to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  /// Renders the table into a string (used by tests).
  std::string toString() const;

private:
  std::vector<std::vector<std::string>> Rows;
};

/// printf-style std::string formatter shared by the report printers.
std::string formatString(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hds

#endif // HDS_SUPPORT_TABLE_H
