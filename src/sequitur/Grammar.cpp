//===- sequitur/Grammar.cpp - Incremental Sequitur grammar ----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// The structure of append/check/match/substitute/expand follows the
// canonical Sequitur implementation by Nevill-Manning & Witten, including
// the digram-index "triple" fix in join() for runs of identical symbols.
//
//===----------------------------------------------------------------------===//

// hds-lint-file: alloc-ok(designated allocator: Sequitur's doubly-linked symbol/rule graph is an intrusive structure whose nodes are owned by the grammar and recycled on substitution; see Grammar::~Grammar)

#include "sequitur/Grammar.h"

#include "support/Table.h"

#include <cassert>

using namespace hds;
using namespace hds::sequitur;

//===----------------------------------------------------------------------===//
// Symbol and Rule accessors
//===----------------------------------------------------------------------===//

uint64_t Symbol::terminal() const {
  assert(isTerminal() && "terminal() on a non-terminal symbol");
  return Value;
}

Rule *Symbol::rule() const {
  assert(!isTerminal() && "rule() on a terminal symbol");
  return R;
}

size_t Rule::rhsLength() const {
  size_t Length = 0;
  for (Symbol *S = first(); !S->isGuard(); S = S->next())
    ++Length;
  return Length;
}

//===----------------------------------------------------------------------===//
// Symbol/Rule creation and destruction
//===----------------------------------------------------------------------===//

Symbol *Grammar::newTerminalSymbol(uint64_t Value) {
  assert(Value <= MaxTerminal && "terminal value collides with rule codes");
  Symbol *S = new Symbol();
  S->Kind = Symbol::SymbolKind::Terminal;
  S->Value = Value;
  return S;
}

Symbol *Grammar::newNonTerminalSymbol(Rule *R) {
  Symbol *S = new Symbol();
  S->Kind = Symbol::SymbolKind::NonTerminal;
  S->R = R;
  ++R->RefCount;
  return S;
}

Symbol *Grammar::copySymbol(const Symbol *S) {
  assert(!S->isGuard() && "cannot copy a guard");
  if (S->isTerminal())
    return newTerminalSymbol(S->Value);
  return newNonTerminalSymbol(S->R);
}

Rule *Grammar::newRule() {
  Rule *R = new Rule();
  R->Id = static_cast<uint32_t>(AllRules.size());
  R->Guard = new Symbol();
  R->Guard->Kind = Symbol::SymbolKind::Guard;
  R->Guard->R = R;
  R->Guard->Next = R->Guard;
  R->Guard->Prev = R->Guard;
  AllRules.push_back(R);
  ++LiveRuleCount;
  return R;
}

void Grammar::destroyRule(Rule *R) {
  assert(AllRules[R->Id] == R && "rule already destroyed");
  AllRules[R->Id] = nullptr;
  --LiveRuleCount;
  delete R->Guard;
  delete R;
}

Grammar::Grammar() { Start = newRule(); }

Grammar::~Grammar() {
  for (Rule *R : AllRules) {
    if (!R)
      continue;
    Symbol *S = R->first();
    while (!S->isGuard()) {
      Symbol *Next = S->next();
      delete S;
      S = Next;
    }
    delete R->Guard;
    delete R;
  }
}

//===----------------------------------------------------------------------===//
// Digram index
//===----------------------------------------------------------------------===//

uint64_t Grammar::codeOf(const Symbol *S) {
  assert(!S->isGuard() && "guards have no digram code");
  if (S->isTerminal())
    return S->Value;
  return (uint64_t{1} << 63) | S->R->Id;
}

bool Grammar::sameContent(const Symbol *A, const Symbol *B) {
  if (A->isGuard() || B->isGuard())
    return false;
  return codeOf(A) == codeOf(B);
}

Grammar::DigramKey Grammar::keyOf(const Symbol *S) {
  assert(!S->isGuard() && !S->Next->isGuard() && "digram touches a guard");
  return DigramKey(codeOf(S), codeOf(S->Next));
}

void Grammar::deleteDigram(Symbol *S) {
  if (S->isGuard() || !S->Next || S->Next->isGuard())
    return;
  auto It = DigramIndex.find(keyOf(S));
  if (It != DigramIndex.end() && It->second == S)
    DigramIndex.erase(It);
}

void Grammar::indexDigram(Symbol *S) {
  if (S->isGuard() || !S->Next || S->Next->isGuard())
    return;
  DigramIndex[keyOf(S)] = S;
}

//===----------------------------------------------------------------------===//
// Linking primitives
//===----------------------------------------------------------------------===//

void Grammar::join(Symbol *Left, Symbol *Right) {
  if (Left->Next) {
    deleteDigram(Left);

    // "Triple" fix: breaking a run like bbb can leave a digram that must be
    // re-pointed at its surviving occurrence; re-index around both ends.
    if (Right->Prev && Right->Next && sameContent(Right, Right->Prev) &&
        sameContent(Right, Right->Next))
      indexDigram(Right);
    if (Left->Prev && Left->Next && sameContent(Left, Left->Next) &&
        sameContent(Left, Left->Prev))
      indexDigram(Left->Prev);
  }
  Left->Next = Right;
  Right->Prev = Left;
}

void Grammar::insertAfter(Symbol *Pos, Symbol *NewSym) {
  join(NewSym, Pos->Next);
  join(Pos, NewSym);
}

void Grammar::removeSymbol(Symbol *S) {
  assert(!S->isGuard() && "removing a guard");
  join(S->Prev, S->Next);
  deleteDigram(S);
  if (S->isNonTerminal()) {
    assert(S->R->RefCount > 0 && "rule reference count underflow");
    --S->R->RefCount;
  }
  delete S;
}

//===----------------------------------------------------------------------===//
// The Sequitur algorithm
//===----------------------------------------------------------------------===//

void Grammar::append(uint64_t Terminal) {
  ++InputLength;
  Symbol *Sym = newTerminalSymbol(Terminal);
  insertAfter(Start->last(), Sym);
  // Check the digram formed with the previous final symbol (a no-op when
  // this is the very first symbol: its predecessor is the guard).
  check(Sym->Prev);
}

bool Grammar::check(Symbol *S) {
  if (S->isGuard() || S->Next->isGuard())
    return false;

  auto Key = keyOf(S);
  auto It = DigramIndex.find(Key);
  if (It == DigramIndex.end()) {
    DigramIndex.emplace(Key, S);
    return false;
  }

  Symbol *Found = It->second;
  // Overlapping occurrences (e.g. the middle of "aaa") are left alone; a
  // digram can only be replaced when both occurrences are disjoint.
  if (Found != S && Found->Next != S)
    match(S, Found);
  return true;
}

void Grammar::match(Symbol *S, Symbol *Match) {
  Rule *R;
  if (Match->Prev->isGuard() && Match->Next->Next->isGuard()) {
    // The matched occurrence is exactly the right-hand side of an existing
    // rule: reuse that rule.
    R = Match->Prev->rule();
    substitute(S, R);
  } else {
    // Create a new rule for the repeated digram and replace both
    // occurrences with it.
    R = newRule();
    insertAfter(R->last(), copySymbol(S));
    insertAfter(R->last(), copySymbol(S->Next));
    substitute(Match, R);
    substitute(S, R);
    indexDigram(R->first());
  }

  // Rule utility: substitution may have dropped an inner rule to a single
  // remaining use; inline it.
  if (R->first()->isNonTerminal() && R->first()->rule()->RefCount == 1)
    expandUse(R->first());
}

void Grammar::substitute(Symbol *S, Rule *R) {
  Symbol *Q = S->Prev;
  removeSymbol(S);
  removeSymbol(Q->Next);
  insertAfter(Q, newNonTerminalSymbol(R));
  // Check the two digrams created around the new non-terminal.  When the
  // first check triggers a match the list is restructured, so only fall
  // through to the second when nothing happened.
  if (!check(Q))
    check(Q->Next);
}

void Grammar::expandUse(Symbol *Use) {
  assert(Use->isNonTerminal() && "can only expand a non-terminal use");
  Rule *R = Use->rule();
  assert(R->RefCount == 1 && "expanding a rule that is still shared");

  Symbol *Left = Use->Prev;
  Symbol *Right = Use->Next;
  Symbol *First = R->first();
  Symbol *Last = R->last();
  assert(!First->isGuard() && "expanding an empty rule");

  deleteDigram(Use); // the (Use, Right) digram
  join(Left, First); // also clears the (Left, Use) digram
  join(Last, Right);
  indexDigram(Last); // the newly created (Last, Right) digram

  destroyRule(R);
  delete Use;
}

//===----------------------------------------------------------------------===//
// Read-only views
//===----------------------------------------------------------------------===//

size_t Grammar::totalRhsSymbols() const {
  size_t Total = 0;
  for (const Rule *R : AllRules)
    if (R)
      Total += R->rhsLength();
  return Total;
}

std::vector<const Rule *> Grammar::rules() const {
  std::vector<const Rule *> Result;
  Result.reserve(LiveRuleCount);
  for (const Rule *R : AllRules)
    if (R)
      Result.push_back(R);
  return Result;
}

std::vector<uint64_t> Grammar::expandRule(const Rule &R) const {
  std::vector<uint64_t> Result;
  // Iterative DFS over the derivation: the stack holds the next symbol to
  // visit at every nesting level.
  std::vector<const Symbol *> Stack;
  Stack.push_back(R.first());
  while (!Stack.empty()) {
    const Symbol *S = Stack.back();
    if (S->isGuard()) {
      Stack.pop_back();
      continue;
    }
    Stack.back() = S->next();
    if (S->isTerminal())
      Result.push_back(S->terminal());
    else
      Stack.push_back(S->rule()->first());
  }
  return Result;
}

GrammarSnapshot Grammar::snapshot() const {
  GrammarSnapshot Snap;
  std::vector<const Rule *> Live = rules();
  // Dense renumbering: live rules in id order; the start rule has id 0 and
  // is never deleted, so it maps to index 0.
  std::unordered_map<uint32_t, uint32_t> IdToIndex;
  IdToIndex.reserve(Live.size());
  for (size_t I = 0; I < Live.size(); ++I)
    IdToIndex[Live[I]->id()] = static_cast<uint32_t>(I);
  assert(!Live.empty() && Live[0] == Start && "start rule must be first");

  Snap.Rules.resize(Live.size());
  for (size_t I = 0; I < Live.size(); ++I) {
    for (Symbol *S = Live[I]->first(); !S->isGuard(); S = S->next()) {
      GrammarSnapshot::Item Item;
      if (S->isTerminal()) {
        Item.IsRule = false;
        Item.RuleIndex = 0;
        Item.Terminal = S->terminal();
      } else {
        Item.IsRule = true;
        Item.RuleIndex = IdToIndex.at(S->rule()->id());
        Item.Terminal = 0;
      }
      Snap.Rules[I].Rhs.push_back(Item);
    }
  }
  return Snap;
}

std::vector<uint64_t> GrammarSnapshot::expand(uint32_t RuleIndex) const {
  std::vector<uint64_t> Result;
  struct Frame {
    uint32_t Rule;
    size_t Pos;
  };
  std::vector<Frame> Stack;
  Stack.push_back({RuleIndex, 0});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const SnapshotRule &R = Rules.at(Top.Rule);
    if (Top.Pos >= R.Rhs.size()) {
      Stack.pop_back();
      continue;
    }
    const Item &It = R.Rhs[Top.Pos++];
    if (It.IsRule)
      Stack.push_back({It.RuleIndex, 0});
    else
      Result.push_back(It.Terminal);
  }
  return Result;
}

std::string Grammar::dump(std::string (*TerminalName)(uint64_t)) const {
  std::string Out;
  for (const Rule *R : rules()) {
    Out += formatString("R%u ->", R->id());
    for (Symbol *S = R->first(); !S->isGuard(); S = S->next()) {
      Out += ' ';
      if (S->isTerminal()) {
        if (TerminalName)
          Out += TerminalName(S->terminal());
        else
          Out += formatString("%llu", (unsigned long long)S->terminal());
      } else {
        Out += formatString("R%u", S->rule()->id());
      }
    }
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Invariant checks
//===----------------------------------------------------------------------===//

bool Grammar::digramUniquenessHolds() const {
  std::unordered_map<DigramKey, std::vector<const Symbol *>, DigramKeyHash>
      Occurrences;
  for (const Rule *R : AllRules) {
    if (!R)
      continue;
    for (Symbol *S = R->first();
         !S->isGuard() && !S->next()->isGuard(); S = S->next())
      Occurrences[keyOf(S)].push_back(S);
  }
  // hds-lint: ordered-ok(order-insensitive boolean audit over all pairs)
  for (const auto &Entry : Occurrences) {
    const auto &List = Entry.second;
    for (size_t I = 0; I < List.size(); ++I)
      for (size_t J = I + 1; J < List.size(); ++J) {
        const Symbol *A = List[I];
        const Symbol *B = List[J];
        const bool Overlap = A->next() == B || B->next() == A;
        if (!Overlap)
          return false;
      }
  }
  return true;
}

bool Grammar::ruleUtilityHolds() const {
  std::unordered_map<const Rule *, uint32_t> Uses;
  for (const Rule *R : AllRules) {
    if (!R)
      continue;
    for (Symbol *S = R->first(); !S->isGuard(); S = S->next())
      if (S->isNonTerminal())
        ++Uses[S->rule()];
  }
  for (const Rule *R : AllRules) {
    if (!R)
      continue;
    const uint32_t ActualUses = Uses.count(R) ? Uses.at(R) : 0;
    if (ActualUses != R->refCount())
      return false;
    if (R != Start && ActualUses < 2)
      return false;
  }
  return true;
}

bool Grammar::rulesAreNonTrivialHolds() const {
  for (const Rule *R : AllRules)
    if (R && R != Start && R->rhsLength() < 2)
      return false;
  return true;
}

bool Grammar::checkInvariants(std::string *Error) const {
  auto Fail = [&](const char *Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  if (!digramUniquenessHolds())
    return Fail("digram uniqueness violated: some adjacent symbol pair "
                "occurs twice");
  if (!ruleUtilityHolds())
    return Fail("rule utility violated: a non-start rule is used fewer "
                "than twice or a refcount is stale");
  if (!rulesAreNonTrivialHolds())
    return Fail("non-trivial rules violated: a rule body has fewer than "
                "two symbols");
  if (expandRule(*Start).size() != InputLength)
    return Fail("start rule expansion length differs from the number of "
                "appended terminals");
  return true;
}
