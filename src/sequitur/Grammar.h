//===- sequitur/Grammar.h - Incremental Sequitur grammar -------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An incremental implementation of the Sequitur compression algorithm
/// (Nevill-Manning & Witten, "Linear-time, incremental hierarchy inference
/// for compression", DCC 1997 — reference [23] of the paper).
///
/// Sequitur builds a context-free grammar whose language is exactly the
/// input string, maintaining two invariants after every appended symbol:
///
///   * digram uniqueness — no pair of adjacent symbols appears more than
///     once in the grammar, and
///   * rule utility — every rule other than the start rule is used at
///     least twice.
///
/// The paper's online profiling framework appends each sampled data
/// reference to this grammar as it is traced (Section 2.4); the grammar is
/// then handed to the hot data stream analysis as a compressed, hierarchical
/// representation of the temporal profile (Section 2.3, Figure 4).
///
/// Terminal symbols are opaque uint64_t values below 2^63 (the profiler
/// interns (pc, addr) data references into dense ids).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_SEQUITUR_GRAMMAR_H
#define HDS_SEQUITUR_GRAMMAR_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace hds {
namespace sequitur {

class Rule;
class Grammar;

/// One node in a rule's right-hand side (or a rule's guard node).
/// Symbols form a circular doubly-linked list per rule, with the guard as
/// the sentinel.
class Symbol {
public:
  enum class SymbolKind : uint8_t { Terminal, NonTerminal, Guard };

  bool isGuard() const { return Kind == SymbolKind::Guard; }
  bool isNonTerminal() const { return Kind == SymbolKind::NonTerminal; }
  bool isTerminal() const { return Kind == SymbolKind::Terminal; }

  /// The terminal value; only valid for terminal symbols.
  uint64_t terminal() const;

  /// The referenced rule (non-terminals) or owning rule (guards).
  Rule *rule() const;

  Symbol *next() const { return Next; }
  Symbol *prev() const { return Prev; }

private:
  friend class Grammar;
  friend class Rule;

  Symbol() = default;

  Symbol *Next = nullptr;
  Symbol *Prev = nullptr;
  uint64_t Value = 0; // terminal value
  Rule *R = nullptr;  // referenced rule (non-terminal) / owner (guard)
  SymbolKind Kind = SymbolKind::Terminal;
};

/// A grammar rule: S -> <right-hand side>.  The right-hand side hangs off a
/// guard sentinel in a circular list.
class Rule {
public:
  /// Stable id; the start rule has id 0 and ids grow monotonically as rules
  /// are created (deleted rule ids are never reused).
  uint32_t id() const { return Id; }

  /// Number of times this rule is referenced from other rules' right-hand
  /// sides.  Always >= 2 for live non-start rules (rule utility).
  uint32_t refCount() const { return RefCount; }

  Symbol *guard() const { return Guard; }
  Symbol *first() const { return Guard->next(); }
  Symbol *last() const { return Guard->prev(); }

  /// Walks the right-hand side and counts its symbols.
  size_t rhsLength() const;

private:
  friend class Grammar;
  friend class Symbol;

  Rule() = default;

  Symbol *Guard = nullptr;
  uint32_t RefCount = 0;
  uint32_t Id = 0;
};

/// A decoupled, index-based copy of the grammar used by the hot data stream
/// analysis.  Rule 0 is the start rule; every other entry is reachable from
/// it.  Taking a snapshot at the end of the awake phase lets the analysis
/// run without touching live grammar internals.
struct GrammarSnapshot {
  struct Item {
    bool IsRule;
    uint32_t RuleIndex; // valid when IsRule
    uint64_t Terminal;  // valid when !IsRule
  };
  struct SnapshotRule {
    std::vector<Item> Rhs;
  };

  std::vector<SnapshotRule> Rules;

  /// Expands rule \p RuleIndex into its terminal string.
  std::vector<uint64_t> expand(uint32_t RuleIndex) const;
};

/// The incremental Sequitur grammar.
class Grammar {
public:
  /// Terminal values must stay below this bound; the top bit namespace is
  /// reserved for non-terminal digram codes.
  static constexpr uint64_t MaxTerminal = (uint64_t{1} << 63) - 1;

  Grammar();
  ~Grammar();

  Grammar(const Grammar &) = delete;
  Grammar &operator=(const Grammar &) = delete;

  /// Appends one terminal to the represented string.  Amortized O(1).
  void append(uint64_t Terminal);

  /// The start rule (S in the paper's Figure 4).
  const Rule *start() const { return Start; }

  /// Number of terminals appended so far.
  size_t inputLength() const { return InputLength; }

  /// Number of live rules, including the start rule.
  size_t ruleCount() const { return LiveRuleCount; }

  /// Total number of right-hand-side symbols over all live rules — the
  /// "size of the grammar" in which the analysis runs linearly (§2.3).
  size_t totalRhsSymbols() const;

  /// Live rules in ascending id order; element 0 is the start rule.
  std::vector<const Rule *> rules() const;

  /// Expands \p R into the terminal string it derives.
  std::vector<uint64_t> expandRule(const Rule &R) const;

  /// Takes an index-based snapshot for the analyzer.
  GrammarSnapshot snapshot() const;

  /// Human-readable rendering, e.g. "R0 -> R1 a R2 R2\nR1 -> a b\n...".
  /// Terminals print via \p TerminalName when provided, else as numbers.
  std::string
  dump(std::string (*TerminalName)(uint64_t) = nullptr) const;

  /// \name Invariant checks (exercised by the property tests).
  /// @{

  /// True iff no digram (adjacent symbol pair) occurs twice across the
  /// whole grammar, overlapping occurrences excepted.
  bool digramUniquenessHolds() const;

  /// True iff every non-start rule is referenced at least twice and the
  /// stored reference counts match the actual use counts.
  bool ruleUtilityHolds() const;

  /// True iff every rule body has at least two symbols.
  bool rulesAreNonTrivialHolds() const;

  /// Checks every grammar invariant at once: digram uniqueness, rule
  /// utility, non-trivial rules, and that the start rule expands to
  /// exactly inputLength() terminals.  On failure names the violated
  /// invariant in \p Error (when non-null).  This is the hook the
  /// differential-testing oracles and the trace fuzzer call after every
  /// batch of appends.
  bool checkInvariants(std::string *Error = nullptr) const;
  /// @}

private:
  using DigramKey = std::pair<uint64_t, uint64_t>;
  struct DigramKeyHash {
    size_t operator()(const DigramKey &Key) const {
      // 64-bit mix of both halves.
      uint64_t H = Key.first * 0x9E3779B97F4A7C15ULL;
      H ^= Key.second + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
      return static_cast<size_t>(H);
    }
  };

  /// Digram content code of one symbol (terminal value or tagged rule id).
  static uint64_t codeOf(const Symbol *S);
  /// True iff \p A and \p B have identical digram content.
  static bool sameContent(const Symbol *A, const Symbol *B);
  /// Key of the digram starting at \p S (requires a non-guard next).
  static DigramKey keyOf(const Symbol *S);

  Symbol *newTerminalSymbol(uint64_t Value);
  Symbol *newNonTerminalSymbol(Rule *R);
  Symbol *copySymbol(const Symbol *S);
  Rule *newRule();
  void destroyRule(Rule *R);

  /// Links \p Left and \p Right, maintaining digram index bookkeeping
  /// (including the classic "triple" fix for runs like aaa).
  void join(Symbol *Left, Symbol *Right);
  /// Inserts \p NewSym immediately after \p Pos.
  void insertAfter(Symbol *Pos, Symbol *NewSym);
  /// Unlinks and frees \p S, removing its digrams and dropping a rule
  /// reference when it is a non-terminal.
  void removeSymbol(Symbol *S);

  /// Removes the digram starting at \p S from the index if the index entry
  /// points at \p S.
  void deleteDigram(Symbol *S);
  /// Points the index entry for \p S's digram at \p S.
  void indexDigram(Symbol *S);

  /// Checks the digram starting at \p S against the index, triggering a
  /// match when a second occurrence is found.  Returns true iff the digram
  /// was already present (matched or overlapping).
  bool check(Symbol *S);
  /// Handles a repeated digram: \p S is the new occurrence, \p Match the
  /// indexed one.
  void match(Symbol *S, Symbol *Match);
  /// Replaces the digram starting at \p S with a reference to \p R.
  void substitute(Symbol *S, Rule *R);
  /// Inlines \p Use (a non-terminal whose rule is referenced exactly once).
  void expandUse(Symbol *Use);

  std::unordered_map<DigramKey, Symbol *, DigramKeyHash> DigramIndex;
  std::vector<Rule *> AllRules; // index == id; null when deleted
  Rule *Start = nullptr;
  size_t InputLength = 0;
  size_t LiveRuleCount = 0;
};

} // namespace sequitur
} // namespace hds

#endif // HDS_SEQUITUR_GRAMMAR_H
