//===- prefetch/TuningPolicy.h - Closed-loop degree/distance --*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-stream closed-loop prefetch tuning.  The paper injects a fixed
/// prefetch sequence per hot data stream; this controller feeds the
/// per-tag classification counters (obs/PrefetchStats.h) back into the
/// issuing decision, the "accurate AND timely" control loop temporal
/// prefetchers use (Triangel, PAPERS.md):
///
///   * accuracy  = useful / issued          steers **degree** — how many
///     targets to issue per trigger.  An inaccurate stream's degree is
///     halved each epoch (multiplicative back-off) down to 0 =
///     **squelched**; an accurate one's creeps up by 1 (cautious
///     additive raise) toward MaxDegree.
///   * timeliness = useful / (useful + late) steers **distance** — how
///     far ahead of the trigger to start issuing.  A late-heavy stream's
///     distance grows by 1 per epoch toward MaxDistance; it shrinks only
///     when an epoch sees no late prefetch at all (the cautious reverse
///     move), so the loop doesn't oscillate.
///
/// A squelched stream issues nothing; after ProbationEpochs epochs it is
/// re-probed at degree 1 so a stream whose behavior changed can earn its
/// way back.
///
/// Epochs are counted in demand accesses (one deterministic clock per
/// Runtime, advanced from the simulated access stream), so adjustments
/// are a pure function of the observed epoch-delta counters and the
/// config — never of wall clock, thread schedule, or shard assignment.
/// That is what keeps adaptive cells byte-identical across --jobs counts
/// and the distributed runner.
///
/// Both issuing paths consume one instance: core/PrefetchEngine threads
/// degree/distance into how much of an installed stream's tail it issues
/// and from which offset, and the zoo engines (stream/pair) replace
/// their hardcoded degree constants.  See docs/tuning.md.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_TUNINGPOLICY_H
#define HDS_PREFETCH_TUNINGPOLICY_H

#include "obs/PrefetchStats.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace prefetch {

/// Knobs of the closed-loop controller.  All thresholds are integer
/// ratios (compared by cross-multiplication) so epoch rolls stay within
/// the determinism lint's no-float-accumulation rule.
struct TuningConfig {
  /// Master switch: when false, no TuningPolicy is constructed and every
  /// issuing path keeps its static constant (byte-identical behavior).
  bool Enabled = false;
  /// Demand accesses per tuning epoch.
  uint64_t EpochAccesses = 32768;
  /// Degree ceiling for the additive raise.
  uint32_t MaxDegree = 32;
  /// Distance ceiling for the timeliness walk.
  uint32_t MaxDistance = 8;
  /// Accuracy floor: useful/issued >= AccuracyNum/AccuracyDen keeps the
  /// degree; below it the degree halves.
  uint32_t AccuracyNum = 1;
  uint32_t AccuracyDen = 4;
  /// Timeliness floor: useful/(useful+late) >= TimelyNum/TimelyDen
  /// holds the distance; below it the distance grows.
  uint32_t TimelyNum = 1;
  uint32_t TimelyDen = 2;
  /// Minimum epoch-delta issued count before the rules fire (too little
  /// signal reads as noise; the stream keeps its settings).
  uint64_t MinSample = 16;
  /// Epochs a squelched stream sits out before the degree-1 re-probe.
  uint32_t ProbationEpochs = 4;
};

/// The per-stream controller.  One instance per Runtime owns the epoch
/// clock and a dense tag-indexed state table; streams register lazily
/// the first time their issuing path asks for a degree.
class TuningPolicy {
public:
  /// One stream's control state.
  struct StreamState {
    /// True once the stream's issuing path first queried the policy.
    bool Active = false;
    /// Targets to issue per trigger; 0 = squelched.
    uint32_t Degree = 0;
    /// Targets (or blocks) to skip ahead of the trigger point.
    uint32_t Distance = 0;
    /// Epochs spent squelched since the last squelch or probe.
    uint32_t SquelchedEpochs = 0;
    /// Times the degree decayed to 0.
    uint64_t Squelches = 0;
    /// Times probation re-enabled the stream at degree 1.
    uint64_t Probes = 0;
    /// Cumulative per-tag counters at the last epoch boundary; the
    /// rules run on the delta against this snapshot.
    obs::PrefetchClassCounts Snapshot;
  };

  explicit TuningPolicy(const TuningConfig &Cfg) : Config(Cfg) {}

  const TuningConfig &config() const { return Config; }

  /// Advances the demand-access epoch clock; returns true exactly at an
  /// epoch boundary, when the caller must rollEpoch() with the current
  /// per-tag classification buckets.
  bool onDemandAccess() {
    if (++AccessesInEpoch < Config.EpochAccesses)
      return false;
    AccessesInEpoch = 0;
    return true;
  }

  /// Applies the saturating rules to every active stream, using the
  /// epoch delta of \p Classes (the hierarchy's cumulative per-tag
  /// buckets) against the previous boundary's snapshot.  Deterministic:
  /// iterates tags in index order, integer arithmetic only.
  void rollEpoch(const std::vector<obs::PrefetchClassCounts> &Classes);

  /// Current degree for \p Tag, registering the stream on first use
  /// with \p FallbackDegree (the issuing path's static constant, capped
  /// at MaxDegree).
  uint32_t degree(uint32_t Tag, uint32_t FallbackDegree) {
    StreamState &State = stateFor(Tag, FallbackDegree);
    return State.Degree;
  }

  /// Current distance for \p Tag (0 until the stream registers).
  uint32_t distance(uint32_t Tag) const {
    return Tag < States.size() ? States[Tag].Distance : 0;
  }

  /// Read-only degree for reports: the tuned value once the stream
  /// registered, \p FallbackDegree before.
  uint32_t peekDegree(uint32_t Tag, uint32_t FallbackDegree) const {
    if (Tag < States.size() && States[Tag].Active)
      return States[Tag].Degree;
    return FallbackDegree;
  }

  /// Read-only state for tests and reports, or null when the stream
  /// never registered.
  const StreamState *peek(uint32_t Tag) const {
    if (Tag < States.size() && States[Tag].Active)
      return &States[Tag];
    return nullptr;
  }

  /// Epoch boundaries crossed so far (for reports/tests).
  uint64_t epochsRolled() const { return EpochsRolled; }

  /// Drops all stream state and restarts the epoch clock.
  void reset() {
    States.clear();
    AccessesInEpoch = 0;
    EpochsRolled = 0;
  }

private:
  StreamState &stateFor(uint32_t Tag, uint32_t FallbackDegree);

  TuningConfig Config;
  std::vector<StreamState> States;
  uint64_t AccessesInEpoch = 0;
  uint64_t EpochsRolled = 0;
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_TUNINGPOLICY_H
