//===- prefetch/StreamPrefetcher.h - Confidence stream prefetcher -*- C++ -*-=//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A confidence-counter stream prefetcher: the region-based sequential
/// detector every commercial core since the Pentium 4 has shipped in some
/// form, and the baseline hardware competitor the temporal-prefetching
/// literature (Pangloss, Triangel — PAPERS.md) measures against.
///
/// Model: a direct-mapped table of detector entries indexed by 4 KiB
/// region.  Each entry tracks the last miss block inside its region, the
/// run direction (+1 / -1), and a saturating confidence counter.  A miss
/// one block away from the last one in the same direction trains the
/// counter; a direction flip retrains at confidence 1; an unrelated jump
/// inside the region resets.  Once confidence reaches the threshold the
/// detector issues `Degree` blocks ahead along the direction on every
/// further conforming miss.  Trains on the L1 miss stream only — unlike
/// the pc-indexed stride table it is address-indexed and blind to which
/// instruction misses, which is exactly the contrast the zoo wants.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_STREAMPREFETCHER_H
#define HDS_PREFETCH_STREAMPREFETCHER_H

#include "prefetch/Prefetcher.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace prefetch {

/// Knobs for the stream prefetcher.
struct StreamPrefetcherConfig {
  /// Detector entries (direct mapped by region number).
  uint32_t TableEntries = 64;
  /// log2 of the detection region size in bytes (4 KiB default).
  uint32_t RegionShift = 12;
  /// Conforming misses before the detector starts issuing.
  uint32_t ConfidenceThreshold = 2;
  /// Saturation ceiling for the confidence counter.
  uint32_t MaxConfidence = 7;
  /// Blocks prefetched ahead per conforming miss once confident.
  uint32_t Degree = 4;
};

/// The stream detector table.
class StreamPrefetcher : public Prefetcher {
public:
  StreamPrefetcher(const StreamPrefetcherConfig &Cfg, uint32_t AssignedTag)
      : Prefetcher(Kind::Stream, AssignedTag), Config(Cfg), Table(Cfg.TableEntries) {}

  /// Observes an L1 miss and extends or retrains the region's run.
  void onMiss(const AccessEvent &Event,
              memsim::MemoryHierarchy &Hierarchy) override;

  uint32_t configuredDegree() const override { return Config.Degree; }

  void reset() override;

private:
  struct Entry {
    /// Region number owning the entry; ~0 = empty.
    uint64_t Region = ~uint64_t{0};
    uint64_t LastBlock = 0;
    /// +1 ascending, -1 descending.
    int8_t Direction = 1;
    uint8_t Confidence = 0;
  };

  StreamPrefetcherConfig Config;
  std::vector<Entry> Table;
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_STREAMPREFETCHER_H
