//===- prefetch/PrefetcherStack.h - Configured prefetcher set --*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime's view of the zoo: a StackConfig says which prefetchers a
/// run enables, and the PrefetcherStack materializes them with reserved
/// stream tags 0..tagCount()-1, dispatches the demand stream to them,
/// and routes memsim::PrefetchListener feedback (fills, useful/late
/// classifications, pollution evictions) back to the owning engine by
/// tag.
///
/// Composition rules: each enabled flag outside a duel runs
/// concurrently, exactly as the old hardcoded Stride/Markov members did.
/// With Duel set, the enabled flags name the duel's candidates (the
/// paper-era ablations duel stride against markov, say); fewer than two
/// named candidates means the duel runs over the full roster.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_PREFETCHERSTACK_H
#define HDS_PREFETCH_PREFETCHERSTACK_H

#include "prefetch/DuelingSelector.h"
#include "prefetch/MarkovPrefetcher.h"
#include "prefetch/PairTablePrefetcher.h"
#include "prefetch/Prefetcher.h"
#include "prefetch/Selection.h"
#include "prefetch/StreamPrefetcher.h"
#include "prefetch/StridePrefetcher.h"

#include <memory>
#include <vector>

namespace hds {
namespace prefetch {

/// Which prefetchers a run enables (one PrefetcherSelection, shared
/// with spec identity and CLI tokens), and their knobs.  Enabling Duel
/// duels over the other enabled kinds (all four when fewer than two are
/// named).
struct StackConfig {
  PrefetcherSelection Enabled;

  StridePrefetcherConfig StrideCfg;
  MarkovPrefetcherConfig MarkovCfg;
  StreamPrefetcherConfig StreamCfg;
  PairTableConfig PairCfg;
  DuelConfig DuelCfg;

  bool any() const { return Enabled.any(); }
};

/// The materialized stack.  Implements the hierarchy's listener
/// interface; core/Runtime installs it when the config is non-empty.
class PrefetcherStack : public memsim::PrefetchListener {
public:
  explicit PrefetcherStack(const StackConfig &Cfg);

  /// Stream tags reserved for the stack: 0..tagCount()-1.  Hot data
  /// stream tags must start here (core/PrefetchEngine).
  uint32_t tagCount() const { return static_cast<uint32_t>(Owners.size()); }

  /// Dispatches one demand access (already charged by the hierarchy) to
  /// every active prefetcher.
  void onAccess(vulcan::SiteId Site, memsim::Addr Addr, uint64_t Latency,
                bool L1Miss, memsim::MemoryHierarchy &Hierarchy) {
    AccessEvent Event{Site, Addr, Latency, L1Miss};
    for (const std::unique_ptr<Prefetcher> &P : TopLevel) {
      P->onAccess(Event, Hierarchy);
      if (L1Miss)
        P->onMiss(Event, Hierarchy);
    }
  }

  // memsim::PrefetchListener feedback, routed by tag.
  void onPrefetchFill(memsim::Addr BlockAddr, uint32_t StreamTag,
                      memsim::MemoryHierarchy &Hierarchy) override;
  void onPrefetchUseful(memsim::Addr Addr, uint32_t StreamTag) override;
  void onPrefetchLate(memsim::Addr Addr, uint32_t StreamTag) override;
  void onPrefetchEvicted(memsim::Addr BlockAddr, uint32_t StreamTag) override;

  /// Attaches the closed-loop tuner to every owned prefetcher (duel
  /// candidates included); null detaches.
  void setTuner(TuningPolicy *Policy);

  /// Per-prefetcher report rows with classification counters joined from
  /// the hierarchy's per-tag buckets.
  std::vector<obs::PrefetcherStats>
  snapshotStats(const memsim::MemoryHierarchy &Hierarchy) const;

  /// First prefetcher of \p K anywhere in the stack (top-level or duel
  /// candidate), or null.  For reports and tests.
  Prefetcher *byKind(Prefetcher::Kind K);
  /// The dueling selector, when configured.
  DuelingSelector *selector() { return Selector; }

  const std::vector<std::unique_ptr<Prefetcher>> &topLevel() const {
    return TopLevel;
  }

  /// Drops all learned state (fresh machine).
  void reset();

private:
  std::unique_ptr<Prefetcher> make(Prefetcher::Kind K, const StackConfig &Cfg,
                                   uint32_t AssignedTag);

  std::vector<std::unique_ptr<Prefetcher>> TopLevel;
  /// Tag -> owning prefetcher (duel candidates included); parallel Duels
  /// entry points at the selector scoring that tag's feedback, or null.
  std::vector<Prefetcher *> Owners;
  std::vector<DuelingSelector *> Duels;
  DuelingSelector *Selector = nullptr;
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_PREFETCHERSTACK_H
