//===- prefetch/PrefetcherStack.cpp - Configured prefetcher set ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/PrefetcherStack.h"

#include "obs/PrefetchStats.h"

using namespace hds;
using namespace hds::prefetch;

std::unique_ptr<Prefetcher> PrefetcherStack::make(Prefetcher::Kind K,
                                                  const StackConfig &Cfg,
                                                  uint32_t AssignedTag) {
  // hds-exhaustive (unqualified class-scope dispatch, lint rule E1)
  switch (K) {
  case Prefetcher::Stride:
    return std::make_unique<StridePrefetcher>(Cfg.StrideCfg, AssignedTag);
  case Prefetcher::Markov:
    return std::make_unique<MarkovPrefetcher>(Cfg.MarkovCfg, AssignedTag);
  case Prefetcher::Stream:
    return std::make_unique<StreamPrefetcher>(Cfg.StreamCfg, AssignedTag);
  case Prefetcher::PairTable:
    return std::make_unique<PairTablePrefetcher>(Cfg.PairCfg, AssignedTag);
  case Prefetcher::Duel:
    break; // the selector is assembled below, never via make()
  }
  return nullptr;
}

PrefetcherStack::PrefetcherStack(const StackConfig &Cfg) {
  std::vector<Prefetcher::Kind> Enabled;
  if (Cfg.Enabled.has(Prefetcher::Stride))
    Enabled.push_back(Prefetcher::Stride);
  if (Cfg.Enabled.has(Prefetcher::Markov))
    Enabled.push_back(Prefetcher::Markov);
  if (Cfg.Enabled.has(Prefetcher::Stream))
    Enabled.push_back(Prefetcher::Stream);
  if (Cfg.Enabled.has(Prefetcher::PairTable))
    Enabled.push_back(Prefetcher::PairTable);

  auto NextTag = [this]() {
    const uint32_t Tag = static_cast<uint32_t>(Owners.size());
    Owners.push_back(nullptr);
    Duels.push_back(nullptr);
    return Tag;
  };

  if (Cfg.Enabled.has(Prefetcher::Duel)) {
    // Duel over the named candidates; an unconstrained duel (or a
    // degenerate single-candidate one) runs the full roster.
    std::vector<Prefetcher::Kind> Roster = Enabled;
    if (Roster.size() < 2)
      Roster = {Prefetcher::Stride, Prefetcher::Markov, Prefetcher::Stream,
                Prefetcher::PairTable};
    std::vector<std::unique_ptr<Prefetcher>> Candidates;
    Candidates.reserve(Roster.size());
    for (Prefetcher::Kind K : Roster)
      Candidates.push_back(make(K, Cfg, NextTag()));
    auto Duel = std::make_unique<DuelingSelector>(Cfg.DuelCfg, NextTag(),
                                                  std::move(Candidates));
    Selector = Duel.get();
    for (const std::unique_ptr<Prefetcher> &C : Selector->candidates()) {
      Owners[C->tag()] = C.get();
      Duels[C->tag()] = Selector;
    }
    Owners[Selector->tag()] = Selector;
    TopLevel.push_back(std::move(Duel));
    return;
  }

  for (Prefetcher::Kind K : Enabled) {
    std::unique_ptr<Prefetcher> P = make(K, Cfg, NextTag());
    Owners[P->tag()] = P.get();
    TopLevel.push_back(std::move(P));
  }
}

void PrefetcherStack::onPrefetchFill(memsim::Addr BlockAddr,
                                     uint32_t StreamTag,
                                     memsim::MemoryHierarchy &Hierarchy) {
  if (StreamTag >= Owners.size())
    return; // hot-stream or untagged prefetch, not ours
  Owners[StreamTag]->onFill(BlockAddr, Hierarchy);
}

void PrefetcherStack::onPrefetchUseful(memsim::Addr Addr, uint32_t StreamTag) {
  if (StreamTag >= Owners.size())
    return;
  if (DuelingSelector *D = Duels[StreamTag])
    D->noteUseful(StreamTag, Addr);
}

void PrefetcherStack::onPrefetchLate(memsim::Addr Addr, uint32_t StreamTag) {
  if (StreamTag >= Owners.size())
    return;
  if (DuelingSelector *D = Duels[StreamTag])
    D->noteLate(StreamTag, Addr);
}

void PrefetcherStack::onPrefetchEvicted(memsim::Addr BlockAddr,
                                        uint32_t StreamTag) {
  if (StreamTag >= Owners.size())
    return;
  Owners[StreamTag]->onEvict(BlockAddr);
}

void PrefetcherStack::setTuner(TuningPolicy *Policy) {
  for (Prefetcher *P : Owners)
    if (P)
      P->setTuner(Policy);
}

std::vector<obs::PrefetcherStats>
PrefetcherStack::snapshotStats(const memsim::MemoryHierarchy &Hierarchy) const {
  std::vector<obs::PrefetcherStats> Rows;
  for (const std::unique_ptr<Prefetcher> &P : TopLevel)
    P->appendStats(Rows);

  const std::vector<obs::PrefetchClassCounts> &Buckets =
      Hierarchy.streamClasses();
  for (obs::PrefetcherStats &Row : Rows) {
    if (Row.Tag < Owners.size() && Owners[Row.Tag])
      Row.FinalDegree = Owners[Row.Tag]->finalDegree();
    if (Row.Tag >= Buckets.size())
      continue; // tag never produced a classification event
    const obs::PrefetchClassCounts &B = Buckets[Row.Tag];
    Row.Issued = B.Issued;
    Row.Useful = B.Useful;
    Row.Late = B.Late;
    Row.Redundant = B.Redundant;
    Row.DroppedQueueFull = B.DroppedQueueFull;
    Row.UnusedEvicted = B.UnusedEvicted;
  }
  return Rows;
}

Prefetcher *PrefetcherStack::byKind(Prefetcher::Kind K) {
  for (Prefetcher *P : Owners)
    if (P && P->kind() == K)
      return P;
  return nullptr;
}

void PrefetcherStack::reset() {
  for (const std::unique_ptr<Prefetcher> &P : TopLevel)
    P->reset();
}
