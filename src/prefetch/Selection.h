//===- prefetch/Selection.h - Which prefetchers a run enables -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PrefetcherSelection: the value type naming which zoo prefetchers a
/// run enables.  It replaces the parallel Stride/Markov/Stream/Pair/Duel
/// booleans that used to be mirrored across ExperimentSpec,
/// OptimizerConfig, and StackConfig with one bitset over
/// Prefetcher::Kind and one canonical token round-trip ("none",
/// "stride", "stream+pair", "stride+markov+duel", ...) shared by CLI
/// flags, matrix filters, labels, and JSON identity fields.
///
/// The token grammar is '+'-joined kind tokens in Kind enumeration
/// order; an empty selection prints (and parses) as "none".  Parsing
/// accepts tokens in any order but printing is canonical, so two equal
/// selections always print identically — the property spec identity
/// depends on.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_SELECTION_H
#define HDS_PREFETCH_SELECTION_H

#include "prefetch/Prefetcher.h"

#include <cstdint>
#include <string>

namespace hds {
namespace prefetch {

/// Bitset over Prefetcher::Kind.  Plain value data: two equal
/// selections describe byte-identical prefetcher stacks.
class PrefetcherSelection {
public:
  /// Number of Prefetcher::Kind enumerators (append-only roster).
  static constexpr unsigned NumKinds = 5;

  constexpr PrefetcherSelection() = default;

  bool has(Prefetcher::Kind K) const {
    return (Bits & maskOf(K)) != 0;
  }
  void set(Prefetcher::Kind K, bool Enabled) {
    if (Enabled)
      Bits |= maskOf(K);
    else
      Bits &= static_cast<uint8_t>(~maskOf(K));
  }

  bool any() const { return Bits != 0; }
  bool none() const { return Bits == 0; }
  /// True when exactly \p K is enabled (the zoo-bar matrix cells).
  bool only(Prefetcher::Kind K) const { return Bits == maskOf(K); }
  unsigned count() const;

  /// Canonical token: '+'-joined kind tokens in Kind order, or "none".
  std::string token() const;
  /// Parses a canonical (or reordered) token into \p Out.  Returns false
  /// on an unknown kind token, an empty component, or a duplicate.
  static bool parseToken(const std::string &Token, PrefetcherSelection &Out);
  /// "none|stride|markov|stream|pair|duel" — the usage-text form of the
  /// per-kind vocabulary, generated from the roster.
  static std::string tokenList();

  bool operator==(const PrefetcherSelection &Other) const = default;

private:
  static constexpr uint8_t maskOf(Prefetcher::Kind K) {
    return static_cast<uint8_t>(1u << static_cast<unsigned>(K));
  }

  uint8_t Bits = 0;
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_SELECTION_H
