//===- prefetch/Selection.cpp - Which prefetchers a run enables -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/Selection.h"

using namespace hds;
using namespace hds::prefetch;

unsigned PrefetcherSelection::count() const {
  unsigned N = 0;
  for (unsigned I = 0; I < NumKinds; ++I)
    if (has(static_cast<Prefetcher::Kind>(I)))
      ++N;
  return N;
}

std::string PrefetcherSelection::token() const {
  if (none())
    return "none";
  std::string Out;
  for (unsigned I = 0; I < NumKinds; ++I) {
    const auto K = static_cast<Prefetcher::Kind>(I);
    if (!has(K))
      continue;
    if (!Out.empty())
      Out += '+';
    Out += Prefetcher::kindToken(K);
  }
  return Out;
}

std::string PrefetcherSelection::tokenList() {
  std::string Out = "none";
  for (unsigned I = 0; I < NumKinds; ++I) {
    Out += '|';
    Out += Prefetcher::kindToken(static_cast<Prefetcher::Kind>(I));
  }
  return Out;
}

bool PrefetcherSelection::parseToken(const std::string &Token,
                                     PrefetcherSelection &Out) {
  PrefetcherSelection Parsed;
  if (Token == "none") {
    Out = Parsed;
    return true;
  }
  size_t Begin = 0;
  while (Begin <= Token.size()) {
    size_t End = Token.find('+', Begin);
    if (End == std::string::npos)
      End = Token.size();
    const std::string Component = Token.substr(Begin, End - Begin);
    Prefetcher::Kind K;
    if (Component.empty() || !Prefetcher::parseKindToken(Component, K))
      return false;
    if (Parsed.has(K))
      return false; // duplicate component
    Parsed.set(K, true);
    Begin = End + 1;
  }
  Out = Parsed;
  return true;
}
