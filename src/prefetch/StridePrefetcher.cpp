//===- prefetch/StridePrefetcher.cpp - PC-indexed stride prefetcher --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/StridePrefetcher.h"

#include <cstdlib>

using namespace hds;
using namespace hds::prefetch;

void StridePrefetcher::onAccess(const AccessEvent &Event,
                                memsim::MemoryHierarchy &Hierarchy) {
  countTrain();
  Entry &E = Table[static_cast<size_t>(Event.Site) % Table.size()];

  if (E.Pc != Event.Site) {
    // Direct-mapped replacement: a new pc takes over the entry.
    E.Pc = Event.Site;
    E.LastAddr = Event.Addr;
    E.Stride = 0;
    E.Confidence = 0;
    return;
  }

  const int64_t NewStride =
      static_cast<int64_t>(Event.Addr) - static_cast<int64_t>(E.LastAddr);
  E.LastAddr = Event.Addr;

  if (NewStride == 0)
    return; // same address: neither trains nor breaks the pattern

  if (static_cast<uint64_t>(std::llabs(NewStride)) > Config.MaxStrideBytes) {
    // A jump: pointer chases and data-structure hops look like huge
    // pseudo-strides; drop the training state.
    E.Stride = 0;
    E.Confidence = 0;
    return;
  }

  if (NewStride == E.Stride) {
    if (E.Confidence < 2)
      ++E.Confidence;
  } else {
    E.Stride = NewStride;
    E.Confidence = 1;
    return;
  }

  if (E.Confidence < 2)
    return;

  ++StridesConfirmed;
  // Confirmed: run ahead.  Hardware prefetches spend no issue slots.
  for (uint32_t I = 1; I <= Config.Degree; ++I) {
    const int64_t Target =
        static_cast<int64_t>(Event.Addr) + NewStride * static_cast<int64_t>(I);
    if (Target < 0)
      break;
    issue(static_cast<memsim::Addr>(Target), Hierarchy);
  }
}

void StridePrefetcher::reset() {
  Prefetcher::reset();
  for (Entry &E : Table)
    E = Entry();
  StridesConfirmed = 0;
}
