//===- prefetch/DuelingSelector.cpp - Per-region dueling selector ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/DuelingSelector.h"

#include "obs/PrefetchStats.h"

#include <cassert>

using namespace hds;
using namespace hds::prefetch;

DuelingSelector::DuelingSelector(
    const DuelConfig &Cfg, uint32_t AssignedTag,
    std::vector<std::unique_ptr<Prefetcher>> CandidatesIn)
    : Prefetcher(Kind::Duel, AssignedTag), Config(Cfg),
      Candidates(std::move(CandidatesIn)) {
  assert(!Candidates.empty() && "duel needs at least one candidate");
  const size_t Cells =
      static_cast<size_t>(Config.RegionBuckets) * Candidates.size();
  UsefulCount.assign(Cells, 0);
  LateCount.assign(Cells, 0);
  IssuedCount.assign(Cells, 0);
  EpochsSampled.assign(Candidates.size(), 0);
  Winner.assign(Config.RegionBuckets, 0);
}

int64_t DuelingSelector::score(size_t Bucket, size_t Candidate) const {
  const size_t C = cell(Bucket, Candidate);
  return 4 * static_cast<int64_t>(UsefulCount[C]) +
         static_cast<int64_t>(LateCount[C]) -
         static_cast<int64_t>(IssuedCount[C]);
}

void DuelingSelector::converge() {
  const size_t N = Candidates.size();

  // Global fallback: argmax of the summed per-candidate scores.
  int64_t BestTotal = 0;
  GlobalWinner = 0;
  for (size_t I = 0; I < N; ++I) {
    int64_t Total = 0;
    for (size_t B = 0; B < Config.RegionBuckets; ++B)
      Total += score(B, I);
    if (I == 0 || Total > BestTotal) {
      BestTotal = Total;
      GlobalWinner = I;
    }
  }

  // Per-bucket winners where the bucket saw any issues at all.
  ResolvedBuckets = 0;
  for (size_t B = 0; B < Config.RegionBuckets; ++B) {
    uint64_t BucketIssued = 0;
    size_t Best = 0;
    int64_t BestScore = 0;
    for (size_t I = 0; I < N; ++I) {
      BucketIssued += IssuedCount[cell(B, I)];
      const int64_t S = score(B, I);
      if (I == 0 || S > BestScore) {
        BestScore = S;
        Best = I;
      }
    }
    if (BucketIssued == 0) {
      Winner[B] = static_cast<uint32_t>(GlobalWinner);
    } else {
      Winner[B] = static_cast<uint32_t>(Best);
      ++ResolvedBuckets;
    }
  }
  Converged = true;
}

void DuelingSelector::onAccess(const AccessEvent &Event,
                               memsim::MemoryHierarchy &Hierarchy) {
  const size_t N = Candidates.size();

  if (!Converged) {
    if (AccessesInEpoch >= Config.EpochAccesses) {
      AccessesInEpoch = 0;
      ++EpochsSampled[ActiveIdx];
      ++Epoch;
      if (Epoch >= convergenceEpochs())
        converge();
      else
        ActiveIdx = static_cast<size_t>(Epoch % N);
    }
    ++AccessesInEpoch;
  }

  const size_t Bucket = bucketOf(Event.Addr);
  const size_t Issuer = Converged ? Winner[Bucket] : ActiveIdx;

  for (size_t I = 0; I < N; ++I) {
    Prefetcher &C = *Candidates[I];
    C.setIssueEnabled(I == Issuer);
    const uint64_t Before = C.issued();
    // Train everyone on everything; only the issuer's gate is open.
    C.onAccess(Event, Hierarchy);
    if (Event.L1Miss)
      C.onMiss(Event, Hierarchy);
    if (!Converged)
      IssuedCount[cell(Bucket, I)] += C.issued() - Before;
  }
}

void DuelingSelector::noteUseful(uint32_t CandidateTag, memsim::Addr Addr) {
  if (Converged)
    return;
  for (size_t I = 0; I < Candidates.size(); ++I)
    if (Candidates[I]->tag() == CandidateTag) {
      ++UsefulCount[cell(bucketOf(Addr), I)];
      return;
    }
}

void DuelingSelector::noteLate(uint32_t CandidateTag, memsim::Addr Addr) {
  if (Converged)
    return;
  for (size_t I = 0; I < Candidates.size(); ++I)
    if (Candidates[I]->tag() == CandidateTag) {
      ++LateCount[cell(bucketOf(Addr), I)];
      return;
    }
}

Prefetcher *DuelingSelector::candidateByTag(uint32_t CandidateTag) {
  for (std::unique_ptr<Prefetcher> &C : Candidates)
    if (C->tag() == CandidateTag)
      return C.get();
  return nullptr;
}

size_t DuelingSelector::winnerFor(memsim::Addr Addr) const {
  return Winner[bucketOf(Addr)];
}

void DuelingSelector::appendStats(
    std::vector<obs::PrefetcherStats> &Rows) const {
  obs::PrefetcherStats Own;
  Own.Kind = kind();
  Own.Tag = tag();
  Own.SelectedRegions = ResolvedBuckets;
  Own.SampledEpochs = Epoch;
  Rows.push_back(Own);

  for (size_t I = 0; I < Candidates.size(); ++I) {
    const Prefetcher &C = *Candidates[I];
    obs::PrefetcherStats Row;
    Row.Kind = C.kind();
    Row.Tag = C.tag();
    Row.Trains = C.trains();
    Row.Issued = C.issued();
    Row.SampledEpochs = EpochsSampled[I];
    if (Converged) {
      uint64_t Won = 0;
      for (size_t B = 0; B < Config.RegionBuckets; ++B)
        Won += Winner[B] == I ? 1 : 0;
      Row.SelectedRegions = Won;
    }
    Rows.push_back(Row);
  }
}

void DuelingSelector::reset() {
  Prefetcher::reset();
  for (std::unique_ptr<Prefetcher> &C : Candidates) {
    C->reset();
    C->setIssueEnabled(true);
  }
  Epoch = 0;
  AccessesInEpoch = 0;
  ActiveIdx = 0;
  Converged = false;
  UsefulCount.assign(UsefulCount.size(), 0);
  LateCount.assign(LateCount.size(), 0);
  IssuedCount.assign(IssuedCount.size(), 0);
  EpochsSampled.assign(EpochsSampled.size(), 0);
  Winner.assign(Winner.size(), 0);
  ResolvedBuckets = 0;
  GlobalWinner = 0;
}
