//===- prefetch/MarkovPrefetcher.h - Correlation-based prefetcher -*- C++ -*-=//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Markov (correlation-based) prefetcher after Joseph & Grunwald,
/// reference [16] of the paper, as a zoo member.
///
/// The paper calls correlation-based prefetching the hardware technique
/// its scheme is "most similar to", and differentiates itself three ways:
/// software (configurable/tunable), more global access pattern analysis,
/// and "capable of using more context for its predictions than digrams of
/// data accesses" (Section 5.1).  This implementation exists so the
/// comparison can be run (bench/ablation_markov): a digram predictor
/// keyed on cache-miss addresses, with a fixed number of successor slots
/// per node and prefetches issued for all of them, prioritized by
/// recency.
///
/// Model: on every L1 demand miss to block B, (a) record B as a successor
/// of the previously missed block, and (b) issue prefetches for B's
/// recorded successors.  As a hardware mechanism it spends no instruction
/// issue slots; its table capacity is bounded like the original paper's
/// (which dedicated megabytes of state — generous, but that is the
/// comparison point).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_MARKOVPREFETCHER_H
#define HDS_PREFETCH_MARKOVPREFETCHER_H

#include "prefetch/Prefetcher.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hds {
namespace prefetch {

/// Knobs for the Markov prefetcher.
struct MarkovPrefetcherConfig {
  /// Successor slots per node (the original evaluates 1-4).
  uint32_t SuccessorsPerNode = 2;
  /// Maximum nodes in the correlation table; beyond it, new nodes evict
  /// in insertion order (a coarse model of a bounded hardware table).
  uint32_t MaxNodes = 1 << 16;
};

/// The correlation table.
class MarkovPrefetcher : public Prefetcher {
public:
  MarkovPrefetcher(const MarkovPrefetcherConfig &Cfg, uint32_t AssignedTag)
      : Prefetcher(Kind::Markov, AssignedTag), Config(Cfg) {}

  /// Observes a demand access that missed L1 (block granularity) and
  /// issues prefetches for the predicted successors.
  void onMiss(const AccessEvent &Event,
              memsim::MemoryHierarchy &Hierarchy) override;

  size_t nodeCount() const { return Nodes.size(); }

  void reset() override;

private:
  struct Node {
    /// Most-recent-first successor blocks.
    std::vector<uint64_t> Successors;
  };

  MarkovPrefetcherConfig Config;
  std::unordered_map<uint64_t, Node> Nodes;
  std::vector<uint64_t> InsertionOrder;
  size_t EvictCursor = 0;
  uint64_t LastMissBlock = ~uint64_t{0};
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_MARKOVPREFETCHER_H
