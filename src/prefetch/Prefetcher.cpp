//===- prefetch/Prefetcher.cpp - Pluggable prefetcher interface -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/Prefetcher.h"

#include "obs/PrefetchStats.h"

using namespace hds;
using namespace hds::prefetch;

void Prefetcher::appendStats(std::vector<obs::PrefetcherStats> &Rows) const {
  obs::PrefetcherStats Row;
  Row.Kind = WhichKind;
  Row.Tag = Tag;
  Row.Trains = Trains;
  Row.Issued = Issued;
  Rows.push_back(Row);
}

const char *Prefetcher::kindToken(Kind K) {
  // hds-exhaustive (unqualified class-scope dispatch, lint rule E1)
  switch (K) {
  case Stride:
    return "stride";
  case Markov:
    return "markov";
  case Stream:
    return "stream";
  case PairTable:
    return "pair";
  case Duel:
    return "duel";
  }
  return "unknown";
}

const char *Prefetcher::kindName(Kind K) {
  // hds-exhaustive (unqualified class-scope dispatch, lint rule E1)
  switch (K) {
  case Stride:
    return "Stride";
  case Markov:
    return "Markov";
  case Stream:
    return "Stream";
  case PairTable:
    return "Pair-table";
  case Duel:
    return "Duel";
  }
  return "unknown";
}

bool Prefetcher::parseKindToken(const std::string &Token, Kind &K) {
  static const Kind All[] = {Stride, Markov, Stream, PairTable, Duel};
  for (Kind Candidate : All)
    if (Token == kindToken(Candidate)) {
      K = Candidate;
      return true;
    }
  return false;
}
