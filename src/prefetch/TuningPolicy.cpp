//===- prefetch/TuningPolicy.cpp - Closed-loop degree/distance ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/TuningPolicy.h"

#include <algorithm>

using namespace hds;
using namespace hds::prefetch;

TuningPolicy::StreamState &TuningPolicy::stateFor(uint32_t Tag,
                                                  uint32_t FallbackDegree) {
  if (Tag >= States.size())
    States.resize(Tag + 1);
  StreamState &State = States[Tag];
  if (!State.Active) {
    State.Active = true;
    State.Degree = std::min(FallbackDegree, Config.MaxDegree);
    State.Distance = 0;
  }
  return State;
}

void TuningPolicy::rollEpoch(
    const std::vector<obs::PrefetchClassCounts> &Classes) {
  ++EpochsRolled;
  const size_t Tags = std::min(States.size(), Classes.size());
  for (size_t Tag = 0; Tag < Tags; ++Tag) {
    StreamState &State = States[Tag];
    if (!State.Active)
      continue;
    const obs::PrefetchClassCounts &Now = Classes[Tag];
    const uint64_t Issued = Now.Issued - State.Snapshot.Issued;
    const uint64_t Useful = Now.Useful - State.Snapshot.Useful;
    const uint64_t Late = Now.Late - State.Snapshot.Late;
    State.Snapshot = Now;

    if (State.Degree == 0) {
      // Squelched: sit out probation, then probe at degree 1.
      if (++State.SquelchedEpochs >= Config.ProbationEpochs) {
        State.Degree = 1;
        State.SquelchedEpochs = 0;
        ++State.Probes;
      }
      continue;
    }
    if (Issued < Config.MinSample)
      continue; // too little signal; hold the settings

    // accuracy = useful/issued vs AccuracyNum/AccuracyDen, compared by
    // cross-multiplication to stay in integers.
    const bool Accurate =
        Useful * Config.AccuracyDen >= Issued * Config.AccuracyNum;
    if (!Accurate) {
      State.Degree /= 2;
      if (State.Degree == 0) {
        ++State.Squelches;
        State.SquelchedEpochs = 0;
        continue; // newly squelched; distance holds until the re-probe
      }
    } else if (State.Degree < Config.MaxDegree) {
      ++State.Degree;
    }

    // timeliness = useful/(useful+late); grow the distance while late
    // prefetches dominate, shrink it only on an epoch with none at all
    // (the cautious reverse move, so the loop doesn't oscillate).
    const uint64_t Demanded = Useful + Late;
    if (Demanded == 0)
      continue;
    const bool Timely =
        Useful * Config.TimelyDen >= Demanded * Config.TimelyNum;
    if (!Timely) {
      if (State.Distance < Config.MaxDistance)
        ++State.Distance;
    } else if (Late == 0 && State.Distance > 0) {
      --State.Distance;
    }
  }
}
