//===- prefetch/StreamPrefetcher.cpp - Confidence stream prefetcher --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/StreamPrefetcher.h"

using namespace hds;
using namespace hds::prefetch;

void StreamPrefetcher::onMiss(const AccessEvent &Event,
                              memsim::MemoryHierarchy &Hierarchy) {
  const uint64_t BlockBytes = Hierarchy.l1().config().BlockBytes;
  const uint64_t Block = Event.Addr / BlockBytes;
  const uint64_t Region = Event.Addr >> Config.RegionShift;

  Entry &E = Table[static_cast<size_t>(Region) % Table.size()];
  if (E.Region != Region) {
    // Direct-mapped takeover: a new region restarts detection.
    E.Region = Region;
    E.LastBlock = Block;
    E.Direction = 1;
    E.Confidence = 0;
    return;
  }

  const int64_t Delta =
      static_cast<int64_t>(Block) - static_cast<int64_t>(E.LastBlock);
  if (Delta == 0)
    return; // re-miss of the same block (e.g. L2 hit): neutral

  countTrain();
  const int8_t Dir = Delta > 0 ? int8_t{1} : int8_t{-1};
  const bool Conforming = (Delta == 1 || Delta == -1) && Dir == E.Direction;
  if (Conforming) {
    if (E.Confidence < Config.MaxConfidence)
      ++E.Confidence;
  } else if (Delta == 1 || Delta == -1) {
    // Unit step against the trained direction: flip and retrain.
    E.Direction = Dir;
    E.Confidence = 1;
  } else {
    // Unrelated jump inside the region: restart detection from here.
    E.Confidence = 0;
  }
  E.LastBlock = Block;

  if (E.Confidence < Config.ConfidenceThreshold)
    return;

  // Confident run: fetch Degree blocks along the direction, starting
  // Distance blocks past the miss (both closed-loop tuned; without a
  // tuner Degree is the configured constant and Distance is 0).
  const uint32_t Degree = effectiveDegree(Config.Degree);
  const uint32_t Distance = tunedDistance();
  for (uint32_t I = 1 + Distance; I <= Distance + Degree; ++I) {
    const int64_t Target = static_cast<int64_t>(Block) +
                           static_cast<int64_t>(E.Direction) *
                               static_cast<int64_t>(I);
    if (Target < 0)
      break;
    issue(static_cast<memsim::Addr>(Target) * BlockBytes, Hierarchy);
  }
}

void StreamPrefetcher::reset() {
  Prefetcher::reset();
  for (Entry &E : Table)
    E = Entry();
}
