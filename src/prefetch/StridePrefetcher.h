//===- prefetch/StridePrefetcher.h - PC-indexed stride prefetcher -*- C++ -*-=//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic reference-prediction-table stride prefetcher (Chen & Baer,
/// reference [7] of the paper), as a zoo member.
///
/// The paper positions stride prefetching as both related work ("mostly
/// limited to programs that make heavy use of loops and arrays") and as a
/// complement: "a stride-based prefetcher could complement our scheme by
/// prefetching data address sequences that do not qualify as hot data
/// streams" (Section 4.3).  This implementation exists to evaluate both
/// claims (bench/ablation_stride): on its own it accelerates the strided
/// cold scans the benchmarks contain but not the pointer chains; combined
/// with hot data stream prefetching the two cover disjoint miss classes.
///
/// Model: a direct-mapped table indexed by the access site (pc).  Each
/// entry tracks the last address, the last observed stride, and a
/// two-state confidence; once the same non-zero stride repeats, the
/// prefetcher issues `Degree` prefetches ahead along the stride.  As a
/// hardware mechanism it spends no instruction issue slots.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_STRIDEPREFETCHER_H
#define HDS_PREFETCH_STRIDEPREFETCHER_H

#include "prefetch/Prefetcher.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace prefetch {

/// Knobs for the stride prefetcher.
struct StridePrefetcherConfig {
  /// Number of reference-prediction-table entries (direct mapped by pc).
  uint32_t TableEntries = 256;
  /// Prefetches issued ahead once a stride is confirmed.
  uint32_t Degree = 2;
  /// Strides larger than this are treated as pattern breaks (pointer
  /// chases produce huge pseudo-strides that must not train the table).
  uint64_t MaxStrideBytes = 4096;
};

/// The reference prediction table.
class StridePrefetcher : public Prefetcher {
public:
  StridePrefetcher(const StridePrefetcherConfig &Cfg, uint32_t AssignedTag)
      : Prefetcher(Kind::Stride, AssignedTag), Config(Cfg), Table(Cfg.TableEntries) {}

  /// Observes a demand access and issues stride prefetches when the
  /// entry's stride is confirmed.
  void onAccess(const AccessEvent &Event,
                memsim::MemoryHierarchy &Hierarchy) override;

  /// Entries that reached full confidence and ran ahead (tests, benches).
  uint64_t confirmed() const { return StridesConfirmed; }

  void reset() override;

private:
  struct Entry {
    uint64_t Pc = ~uint64_t{0};
    memsim::Addr LastAddr = 0;
    int64_t Stride = 0;
    /// 0 = untrained, 1 = stride seen once, 2 = confirmed.
    uint8_t Confidence = 0;
  };

  StridePrefetcherConfig Config;
  std::vector<Entry> Table;
  uint64_t StridesConfirmed = 0;
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_STRIDEPREFETCHER_H
