//===- prefetch/PairTablePrefetcher.h - Temporal pair table ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A temporal pair-table prefetcher in the Pangloss / Triangel family
/// (PAPERS.md): miss-to-miss successor prediction like the Markov digram
/// table, but with the properties that made the modern designs practical
/// — strictly bounded set-associative metadata with confidence-guided
/// replacement (Pangloss keeps Markov-chain transition weights in a
/// fixed-size cache; Triangel adds filters so only pairs likely to be
/// accurate and timely occupy metadata), and chained lookahead: when a
/// prefetched block lands, its own best successor is fetched, walking
/// the recorded temporal chain ahead of demand instead of staying one
/// miss ahead.
///
/// Model: a Sets x Ways table of (key block -> successor block,
/// confidence) entries.  On an L1 miss to B after previous miss A: an
/// exact (A -> B) hit gains confidence; otherwise the lowest-confidence
/// way in A's set decays, and only a fully decayed way is reallocated to
/// the new pair — repeat pairs must out-vote noise to claim metadata,
/// the bounded-table discipline of the modern designs.  Prediction
/// issues the most confident successors of B at or above the issue
/// threshold, and the onFill hook chains one step further per completed
/// prefetch.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_PAIRTABLEPREFETCHER_H
#define HDS_PREFETCH_PAIRTABLEPREFETCHER_H

#include "prefetch/Prefetcher.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace prefetch {

/// Knobs for the pair-table prefetcher.
struct PairTableConfig {
  /// Sets in the pair table (power of two recommended, not required).
  uint32_t Sets = 1024;
  /// Ways per set.
  uint32_t Ways = 4;
  /// Saturation ceiling for the per-pair confidence counter.
  uint32_t MaxConfidence = 15;
  /// Minimum confidence before a successor is prefetched.
  uint32_t IssueThreshold = 2;
  /// Successors issued per triggering miss.
  uint32_t Degree = 2;
  /// Whether a completed prefetch chains one step down its own pair
  /// entry (temporal lookahead).
  bool ChainOnFill = true;
};

/// The bounded pair table.
class PairTablePrefetcher : public Prefetcher {
public:
  PairTablePrefetcher(const PairTableConfig &Cfg, uint32_t AssignedTag)
      : Prefetcher(Kind::PairTable, AssignedTag), Config(Cfg),
        Table(static_cast<size_t>(Cfg.Sets) * Cfg.Ways) {}

  /// Observes an L1 miss: trains the (previous miss -> this miss) pair
  /// and issues this miss's recorded successors.
  void onMiss(const AccessEvent &Event,
              memsim::MemoryHierarchy &Hierarchy) override;

  /// Chains one step: the landed block's own best successor.
  void onFill(memsim::Addr BlockAddr,
              memsim::MemoryHierarchy &Hierarchy) override;

  uint32_t configuredDegree() const override { return Config.Degree; }

  /// Occupied entries (tests: metadata stays within Sets * Ways).
  uint64_t occupiedEntries() const;
  /// Total table capacity in entries.
  uint64_t capacityEntries() const { return Table.size(); }

  void reset() override;

private:
  struct Entry {
    /// Key miss block; ~0 = empty.
    uint64_t KeyBlock = ~uint64_t{0};
    uint64_t NextBlock = 0;
    uint8_t Confidence = 0;
  };

  size_t setBase(uint64_t Block) const {
    // Deterministic multiplicative mix so adjacent blocks spread over
    // sets (a plain modulo aliases strided workloads onto few sets).
    const uint64_t Mixed = Block * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>((Mixed >> 32) % Config.Sets) * Config.Ways;
  }

  void train(uint64_t FromBlock, uint64_t ToBlock);
  /// Issues up to \p Budget successors of \p Block, most confident first.
  void predict(uint64_t Block, uint32_t Budget, uint64_t BlockBytes,
               memsim::MemoryHierarchy &Hierarchy);

  PairTableConfig Config;
  std::vector<Entry> Table;
  uint64_t LastMissBlock = ~uint64_t{0};
  /// predict() candidate ways, sorted (confidence desc, way asc); a
  /// member so the per-miss path stops allocating once warm.
  std::vector<uint32_t> Scratch;
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_PAIRTABLEPREFETCHER_H
