//===- prefetch/MarkovPrefetcher.cpp - Correlation-based prefetcher --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/MarkovPrefetcher.h"

#include <algorithm>

using namespace hds;
using namespace hds::prefetch;

void MarkovPrefetcher::onMiss(const AccessEvent &Event,
                              memsim::MemoryHierarchy &Hierarchy) {
  const uint64_t BlockBytes = Hierarchy.l1().config().BlockBytes;
  const uint64_t Block = Event.Addr / BlockBytes;

  // (a) Learn: the previous miss is followed by this one.
  if (LastMissBlock != ~uint64_t{0} && LastMissBlock != Block) {
    auto It = Nodes.find(LastMissBlock);
    if (It == Nodes.end()) {
      if (Nodes.size() >= Config.MaxNodes && !InsertionOrder.empty()) {
        // Evict the oldest node (round-robin over insertion order).
        Nodes.erase(InsertionOrder[EvictCursor]);
        InsertionOrder[EvictCursor] = LastMissBlock;
        EvictCursor = (EvictCursor + 1) % InsertionOrder.size();
      } else {
        InsertionOrder.push_back(LastMissBlock);
      }
      It = Nodes.emplace(LastMissBlock, Node()).first;
    }
    std::vector<uint64_t> &Successors = It->second.Successors;
    auto Existing = std::find(Successors.begin(), Successors.end(), Block);
    if (Existing != Successors.end()) {
      // Move to front (highest priority).
      std::rotate(Successors.begin(), Existing, Existing + 1);
    } else {
      Successors.insert(Successors.begin(), Block);
      if (Successors.size() > Config.SuccessorsPerNode)
        Successors.pop_back();
      countTrain();
    }
  }
  LastMissBlock = Block;

  // (b) Predict: prefetch this block's recorded successors, prioritized
  // by recency.
  auto It = Nodes.find(Block);
  if (It != Nodes.end())
    for (uint64_t Successor : It->second.Successors)
      issue(Successor * BlockBytes, Hierarchy);
}

void MarkovPrefetcher::reset() {
  Prefetcher::reset();
  Nodes.clear();
  InsertionOrder.clear();
  EvictCursor = 0;
  LastMissBlock = ~uint64_t{0};
}
