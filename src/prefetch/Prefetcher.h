//===- prefetch/Prefetcher.h - Pluggable prefetcher interface --*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable hardware-prefetcher interface behind the prefetcher zoo.
///
/// The paper compares its DFSM-injected hot-stream prefetching against
/// hardware techniques only in prose (Section 5.1); this subsystem makes
/// the comparison runnable.  Every prefetcher is an object behind one
/// interface — `onAccess` / `onMiss` observe the demand stream, `onFill` /
/// `onEvict` observe prefetch completions and pollution (delivered via
/// memsim::PrefetchListener) — and issues through
/// `MemoryHierarchy::prefetchT0` under its own reserved stream tag, so
/// the obs classification machinery (useful / late / redundant / dropped /
/// unused-evicted, obs/PrefetchStats.h) attributes every event to the
/// engine that earned it.
///
/// Tags: core/Runtime reserves tags 0..N-1 for the N constructed
/// prefetchers and starts hot-data-stream tags at N, so per-tag buckets
/// stay dense and small (memsim grows its bucket vector to the largest
/// tag seen).
///
/// Determinism: implementations must derive every decision from the
/// observed access sequence and their config — no ambient randomness,
/// clocks, or address-ordered container iteration (docs/determinism.md).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_PREFETCHER_H
#define HDS_PREFETCH_PREFETCHER_H

#include "memsim/MemoryHierarchy.h"
#include "prefetch/TuningPolicy.h"
#include "vulcan/Image.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace prefetch {

/// One demand access as the prefetcher stack sees it: the instrumented
/// site (pc), the address, and the latency the hierarchy already charged
/// for it (so trainers can distinguish L1 hits from misses without a
/// second probe).
struct AccessEvent {
  vulcan::SiteId Site = 0;
  memsim::Addr Addr = 0;
  /// Cycles the hierarchy charged for this access.
  uint64_t Latency = 0;
  /// True when the access did not hit L1 (Latency above the L1 hit cost).
  bool L1Miss = false;
};

/// Abstract base of every zoo prefetcher.
///
/// Hooks are observation points, not obligations: a pc-indexed stride
/// table trains on every access (onAccess), correlation tables train on
/// the miss stream (onMiss), and chaining prefetchers extend their runs
/// when a prefetched block lands (onFill).  All issuing funnels through
/// issue(), which applies the dueling selector's gate and the
/// per-prefetcher tag.
class Prefetcher {
public:
  /// The zoo roster.  Unscoped on purpose: dispatch inside this class
  /// uses bare enumerator case labels, the pattern hds_lint rule E1
  /// checks for exhaustiveness in class scope.  Values are wire-visible
  /// (the "kind" gauge of the prefetchers result block) and append-only.
  // hds-schema-enum, hds-exhaustive
  enum Kind : uint8_t {
    Stride = 0,    ///< pc-indexed reference prediction table (Chen & Baer)
    Markov = 1,    ///< miss-digram correlation table (Joseph & Grunwald)
    Stream = 2,    ///< confidence-counter stream detector (next-N-blocks)
    PairTable = 3, ///< bounded temporal pair table (Pangloss / Triangel)
    Duel = 4,      ///< online per-region dueling selector over candidates
  };

  Prefetcher(Kind KindIn, uint32_t TagIn) : WhichKind(KindIn), Tag(TagIn) {}
  virtual ~Prefetcher() = default;

  Prefetcher(const Prefetcher &) = delete;
  Prefetcher &operator=(const Prefetcher &) = delete;

  Kind kind() const { return WhichKind; }
  /// The stream tag this prefetcher issues under.
  uint32_t tag() const { return Tag; }

  /// CLI token ("stride", "markov", ...) and report name for \p K.
  static const char *kindToken(Kind K);
  static const char *kindName(Kind K);
  /// Parses a CLI token; returns false on unknown input.
  static bool parseKindToken(const std::string &Token, Kind &K);

  /// Observes every demand access (after the hierarchy charged it).
  virtual void onAccess(const AccessEvent &Event,
                        memsim::MemoryHierarchy &Hierarchy) {
    (void)Event;
    (void)Hierarchy;
  }
  /// Observes the L1 miss stream (called in addition to onAccess).
  virtual void onMiss(const AccessEvent &Event,
                      memsim::MemoryHierarchy &Hierarchy) {
    (void)Event;
    (void)Hierarchy;
  }
  /// A prefetch issued under this prefetcher's tag completed its fill of
  /// \p BlockAddr.  May issue follow-up prefetches (chaining).
  virtual void onFill(memsim::Addr BlockAddr,
                      memsim::MemoryHierarchy &Hierarchy) {
    (void)BlockAddr;
    (void)Hierarchy;
  }
  /// A line prefetched under this prefetcher's tag was evicted from L1
  /// before any demand touch (pollution feedback).
  virtual void onEvict(memsim::Addr BlockAddr) { (void)BlockAddr; }

  /// Drops all learned state and counters (fresh machine).
  virtual void reset() {
    Trains = 0;
    Issued = 0;
  }

  /// Appends this prefetcher's report row(s): identity plus the local
  /// train/issue counters.  Classification counters stay zero here — the
  /// stack joins them from the hierarchy's per-tag buckets.  The dueling
  /// selector overrides to add one row per candidate.
  virtual void appendStats(std::vector<obs::PrefetcherStats> &Rows) const;

  /// Whether issue() currently reaches the hierarchy.  The dueling
  /// selector trains every candidate all the time but lets only the
  /// sampled (or converged) one issue.
  bool issueEnabled() const { return IssueEnabled; }
  void setIssueEnabled(bool Enabled) { IssueEnabled = Enabled; }

  /// Attaches (or detaches, with null) the closed-loop tuner.  Engines
  /// with a degree knob consult it through effectiveDegree() /
  /// tunedDistance(); with no tuner attached they keep their configured
  /// constants, bit for bit.
  void setTuner(TuningPolicy *Policy) { Tuner = Policy; }

  /// The static degree this engine issues at without a tuner (1 for the
  /// single-target engines); the fallback the tuner starts from and the
  /// value the final_degree gauge reports for untuned runs.
  virtual uint32_t configuredDegree() const { return 1; }

  /// Degree for the final_degree report gauge: the tuned value once the
  /// stream registered with the tuner, configuredDegree() otherwise.
  uint64_t finalDegree() const {
    return Tuner ? Tuner->peekDegree(Tag, configuredDegree())
                 : configuredDegree();
  }

  /// Training updates performed (table writes), for the stats row.
  uint64_t trains() const { return Trains; }
  /// Prefetches this object pushed through issue() while enabled.
  uint64_t issued() const { return Issued; }

protected:
  /// Issues a hardware prefetch for \p Target under this prefetcher's
  /// tag, spending no instruction issue slot.  Gated by the selector's
  /// enable bit; returns true when the issue reached the hierarchy.
  bool issue(memsim::Addr Target, memsim::MemoryHierarchy &Hierarchy) {
    if (!IssueEnabled)
      return false;
    Hierarchy.prefetchT0(Target, /*ChargeIssueSlot=*/false, Tag);
    ++Issued;
    return true;
  }

  /// Bumps the training counter (call once per table update).
  void countTrain() { ++Trains; }

  /// Degree to issue at this trigger: the tuner's closed-loop value
  /// (registering this engine's tag on first use) or \p FallbackDegree.
  uint32_t effectiveDegree(uint32_t FallbackDegree) {
    return Tuner ? Tuner->degree(Tag, FallbackDegree) : FallbackDegree;
  }

  /// Blocks/targets to skip ahead of the trigger point (0 untuned).
  uint32_t tunedDistance() const {
    return Tuner ? Tuner->distance(Tag) : 0;
  }

private:
  Kind WhichKind;
  uint32_t Tag;
  bool IssueEnabled = true;
  uint64_t Trains = 0;
  uint64_t Issued = 0;
  TuningPolicy *Tuner = nullptr;
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_PREFETCHER_H
