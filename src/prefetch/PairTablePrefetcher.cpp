//===- prefetch/PairTablePrefetcher.cpp - Temporal pair table --------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "prefetch/PairTablePrefetcher.h"

using namespace hds;
using namespace hds::prefetch;

void PairTablePrefetcher::train(uint64_t FromBlock, uint64_t ToBlock) {
  countTrain();
  Entry *Set = &Table[setBase(FromBlock)];

  // Exact pair present: reinforce.
  for (uint32_t Way = 0; Way < Config.Ways; ++Way) {
    Entry &E = Set[Way];
    if (E.KeyBlock == FromBlock && E.NextBlock == ToBlock) {
      if (E.Confidence < Config.MaxConfidence)
        ++E.Confidence;
      return;
    }
  }

  // Empty way: allocate at confidence 1.
  for (uint32_t Way = 0; Way < Config.Ways; ++Way) {
    Entry &E = Set[Way];
    if (E.KeyBlock == ~uint64_t{0}) {
      E.KeyBlock = FromBlock;
      E.NextBlock = ToBlock;
      E.Confidence = 1;
      return;
    }
  }

  // Full set: decay the weakest way (first-wins ties keep replacement
  // deterministic); only a fully decayed way is handed to the new pair.
  uint32_t Victim = 0;
  for (uint32_t Way = 1; Way < Config.Ways; ++Way)
    if (Set[Way].Confidence < Set[Victim].Confidence)
      Victim = Way;
  Entry &E = Set[Victim];
  if (E.Confidence > 0) {
    --E.Confidence;
    return;
  }
  E.KeyBlock = FromBlock;
  E.NextBlock = ToBlock;
  E.Confidence = 1;
}

void PairTablePrefetcher::predict(uint64_t Block, uint32_t Budget,
                                  uint64_t BlockBytes,
                                  memsim::MemoryHierarchy &Hierarchy) {
  const Entry *Set = &Table[setBase(Block)];
  // Most confident successors first; ties resolve by way order so the
  // issue sequence is a pure function of table state.  Candidate ways
  // are gathered into a scratch list kept sorted by (confidence desc,
  // way asc) — sets are a handful of ways, so insertion sort is the
  // cheap option and allocates nothing after warm-up.
  Scratch.clear();
  for (uint32_t Way = 0; Way < Config.Ways; ++Way) {
    const Entry &E = Set[Way];
    if (E.KeyBlock != Block || E.Confidence < Config.IssueThreshold)
      continue;
    size_t Pos = Scratch.size();
    while (Pos > 0 && Set[Scratch[Pos - 1]].Confidence < E.Confidence)
      --Pos;
    Scratch.insert(Scratch.begin() + static_cast<ptrdiff_t>(Pos), Way);
  }
  const uint32_t Count = static_cast<uint32_t>(Scratch.size());
  for (uint32_t I = 0; I < Count && I < Budget; ++I)
    issue(Set[Scratch[I]].NextBlock * BlockBytes, Hierarchy);
}

void PairTablePrefetcher::onMiss(const AccessEvent &Event,
                                 memsim::MemoryHierarchy &Hierarchy) {
  const uint64_t BlockBytes = Hierarchy.l1().config().BlockBytes;
  const uint64_t Block = Event.Addr / BlockBytes;

  if (LastMissBlock != ~uint64_t{0} && LastMissBlock != Block)
    train(LastMissBlock, Block);
  LastMissBlock = Block;

  // Closed-loop tuned successor budget (the configured constant with no
  // tuner attached).  A squelched budget of 0 issues nothing.
  predict(Block, effectiveDegree(Config.Degree), BlockBytes, Hierarchy);
}

void PairTablePrefetcher::onFill(memsim::Addr BlockAddr,
                                 memsim::MemoryHierarchy &Hierarchy) {
  if (!Config.ChainOnFill)
    return;
  const uint64_t BlockBytes = Hierarchy.l1().config().BlockBytes;
  predict(BlockAddr / BlockBytes, 1, BlockBytes, Hierarchy);
}

uint64_t PairTablePrefetcher::occupiedEntries() const {
  uint64_t Count = 0;
  for (const Entry &E : Table)
    Count += E.KeyBlock != ~uint64_t{0} ? 1 : 0;
  return Count;
}

void PairTablePrefetcher::reset() {
  Prefetcher::reset();
  for (Entry &E : Table)
    E = Entry();
  LastMissBlock = ~uint64_t{0};
}
