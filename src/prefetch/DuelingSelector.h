//===- prefetch/DuelingSelector.h - Per-region dueling selector -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An online dueling selector over zoo candidates, in the spirit of
/// set-dueling cache policy selection: instead of committing to one
/// hardware prefetcher, sample each candidate for a fixed number of
/// profiling epochs, score what its prefetches achieved per address
/// region, and converge on a per-region winner.
///
/// Sampling is round-robin over epochs measured in demand accesses (a
/// simulated quantity, so decisions are a pure function of the access
/// sequence and the config — never of wall clock or host scheduling;
/// docs/determinism.md).  Every candidate trains on every access the
/// whole time so its tables are warm when its turn comes; only the
/// sampled candidate's issue() gate is open.  Classification feedback
/// (useful / late, from the memsim listener hooks) is attributed to the
/// issuing candidate by stream tag and to a region bucket by demand
/// address.
///
/// Scoring is integer arithmetic over the obs::StreamPrefetchStats
/// classes (rule D5 forbids float accumulation in src/):
///
///   score(region, candidate) = 4*useful + 1*late - 1*issued
///
/// which linearizes accuracy and timeliness: a useful prefetch nets +3
/// (it paid for its issue and hid a full miss), a late one nets 0 (it
/// hid only a tail), and an issue that never helped nets -1.  After
/// SampleRounds full rotations the selector freezes: each region bucket
/// with any observed issues keeps its argmax candidate (ties to the
/// lowest index), and unresolved buckets fall back to the global argmax.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PREFETCH_DUELINGSELECTOR_H
#define HDS_PREFETCH_DUELINGSELECTOR_H

#include "prefetch/Prefetcher.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace hds {
namespace obs {
struct PrefetcherStats;
}
namespace prefetch {

/// Knobs for the dueling selector.
struct DuelConfig {
  /// log2 of the dueling region size in bytes (4 KiB default).
  uint32_t RegionShift = 12;
  /// Region hash buckets scores are kept per (regions alias onto
  /// buckets deterministically; 64 buckets cover the zoo workloads).
  uint32_t RegionBuckets = 64;
  /// Demand accesses per sampling epoch.
  uint64_t EpochAccesses = 4096;
  /// Full round-robin rotations over the candidates before the selector
  /// converges — the bounded number of profiling epochs is
  /// SampleRounds * candidateCount().
  uint32_t SampleRounds = 2;
};

/// The selector.  Owns its candidate prefetchers; each keeps its own
/// reserved stream tag so obs classification stays attributed.
class DuelingSelector : public Prefetcher {
public:
  DuelingSelector(const DuelConfig &Cfg, uint32_t AssignedTag,
                  std::vector<std::unique_ptr<Prefetcher>> CandidatesIn);

  void onAccess(const AccessEvent &Event,
                memsim::MemoryHierarchy &Hierarchy) override;
  void reset() override;

  /// Classification feedback routed by the prefetcher stack: a prefetch
  /// issued under candidate tag \p Tag turned useful / arrived late for
  /// the demand access at \p Addr.
  void noteUseful(uint32_t AssignedTag, memsim::Addr Addr);
  void noteLate(uint32_t AssignedTag, memsim::Addr Addr);

  const std::vector<std::unique_ptr<Prefetcher>> &candidates() const {
    return Candidates;
  }
  /// Candidate holding the tag, or null (stack routing).
  Prefetcher *candidateByTag(uint32_t CandidateTag);

  size_t candidateCount() const { return Candidates.size(); }
  /// Epochs after which decisions are frozen.
  uint64_t convergenceEpochs() const {
    return static_cast<uint64_t>(Config.SampleRounds) * Candidates.size();
  }
  bool converged() const { return Converged; }
  /// Converged winner index for the bucket covering \p Addr (tests).
  size_t winnerFor(memsim::Addr Addr) const;
  /// Converged global fallback winner index (tests).
  size_t globalWinner() const { return GlobalWinner; }

  /// One row for the selector itself plus one per candidate, in
  /// candidate order (classification counters joined by the stack).
  void appendStats(std::vector<obs::PrefetcherStats> &Rows) const;

private:
  size_t bucketOf(memsim::Addr Addr) const {
    return static_cast<size_t>((Addr >> Config.RegionShift) %
                               Config.RegionBuckets);
  }
  size_t cell(size_t Bucket, size_t Candidate) const {
    return Bucket * Candidates.size() + Candidate;
  }
  int64_t score(size_t Bucket, size_t Candidate) const;
  void converge();

  DuelConfig Config;
  std::vector<std::unique_ptr<Prefetcher>> Candidates;

  uint64_t Epoch = 0;
  uint64_t AccessesInEpoch = 0;
  size_t ActiveIdx = 0;
  bool Converged = false;

  /// Per (bucket, candidate) observation counters, indexed by cell().
  std::vector<uint64_t> UsefulCount;
  std::vector<uint64_t> LateCount;
  std::vector<uint64_t> IssuedCount;
  /// Epochs each candidate spent as the sampled issuer.
  std::vector<uint64_t> EpochsSampled;
  /// Converged per-bucket winner (candidate index).
  std::vector<uint32_t> Winner;
  /// Buckets resolved from their own scores (others fell back).
  uint64_t ResolvedBuckets = 0;
  size_t GlobalWinner = 0;
};

} // namespace prefetch
} // namespace hds

#endif // HDS_PREFETCH_DUELINGSELECTOR_H
