//===- vulcan/Image.cpp - Simulated executable image ----------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "vulcan/Image.h"

#include <unordered_set>

using namespace hds;
using namespace hds::vulcan;

ProcId Image::createProcedure(std::string Name) {
  const ProcId Id = static_cast<ProcId>(Procs.size());
  Procedure P;
  P.Name = std::move(Name);
  Procs.push_back(std::move(P));
  return Id;
}

SiteId Image::createSite(ProcId Proc, std::string Label) {
  (void)Label; // labels exist for debuggability of workload definitions
  assert(Proc < Procs.size() && "unknown procedure");
  const SiteId Site = static_cast<SiteId>(SiteOwners.size());
  SiteOwners.push_back(Proc);
  Procs[Proc].Sites.push_back(Site);
  return Site;
}

void Image::instrumentForBurstyTracing() {
  for (Procedure &P : Procs)
    P.DuplicatedForTracing = true;
}

PatchResult Image::applyPatch(const std::vector<SiteId> &Pcs) {
  PatchResult Result;
  Result.SitesInstrumented = Pcs.size();

  std::unordered_set<ProcId> Touched;
  for (SiteId Site : Pcs)
    Touched.insert(procOf(Site));

  // hds-lint: ordered-ok(per-procedure version bumps commute; no output depends on visit order)
  for (ProcId Proc : Touched) {
    Procedure &P = Procs[Proc];
    // Copy the procedure, inject into the copy, overwrite the original's
    // first instruction with a jump to the copy.  Frames already inside
    // the procedure keep running the old version (their entry snapshot of
    // CodeVersion no longer matches).
    ++P.CodeVersion;
    P.Patched = true;
  }
  Result.ProceduresModified = Touched.size();
  ++PatchApplications;
  return Result;
}

size_t Image::removePatches() {
  size_t Restored = 0;
  for (Procedure &P : Procs) {
    if (!P.Patched)
      continue;
    // Removing the entry jump restores the original code.
    ++P.CodeVersion;
    P.Patched = false;
    ++Restored;
  }
  if (Restored > 0)
    ++Deoptimizations;
  return Restored;
}
