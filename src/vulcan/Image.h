//===- vulcan/Image.h - Simulated executable image -------------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of the executable image that the paper edits with Vulcan [32]
/// (a binary editing tool for x86, similar to ATOM).  See DESIGN.md §1 for
/// the substitution rationale.
///
/// The image knows the program's procedures and their data access sites
/// (pc's).  It models the two Vulcan uses in the paper:
///
///  * Static editing (Figure 2/10): every procedure is duplicated into a
///    checking version and an instrumented version for bursty tracing.
///
///  * Dynamic editing (Section 3.2): to inject detection/prefetching code
///    the optimizer copies each affected procedure, injects into the copy,
///    and overwrites the original's first instruction with a jump.
///    Deoptimization removes the jumps.  Return addresses on the stack
///    keep referring to the original code, so a procedure with live
///    activation records keeps executing unoptimized code until those
///    frames unwind — modelled here with per-procedure code versions that
///    the runtime snapshots at procedure entry.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_VULCAN_IMAGE_H
#define HDS_VULCAN_IMAGE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace vulcan {

using ProcId = uint32_t;
/// A program point (the paper's r.pc).  Site ids are globally unique
/// across the image.
using SiteId = uint64_t;

/// One procedure of the simulated binary.
struct Procedure {
  std::string Name;
  std::vector<SiteId> Sites;
  /// Bumped on every binary modification affecting this procedure; frames
  /// entered under an older version keep running the old code.
  uint32_t CodeVersion = 0;
  /// Whether the current code version carries injected prefix-match /
  /// prefetch checks.
  bool Patched = false;
  /// Whether the bursty-tracing dual version exists (static editing).
  bool DuplicatedForTracing = false;
};

/// Counters describing one dynamic patch application.
struct PatchResult {
  size_t ProceduresModified = 0;
  size_t SitesInstrumented = 0;
};

/// The simulated executable image.
class Image {
public:
  /// Registers a procedure; returns its id.
  ProcId createProcedure(std::string Name);

  /// Registers a load/store site inside \p Proc; returns its pc.
  SiteId createSite(ProcId Proc, std::string Label = std::string());

  size_t procedureCount() const { return Procs.size(); }
  size_t siteCount() const { return SiteOwners.size(); }

  const Procedure &proc(ProcId Id) const {
    assert(Id < Procs.size() && "unknown procedure");
    return Procs[Id];
  }

  ProcId procOf(SiteId Site) const {
    assert(Site < SiteOwners.size() && "unknown site");
    return SiteOwners[static_cast<size_t>(Site)];
  }

  /// Static Vulcan step (Figure 10): duplicates every procedure for the
  /// bursty tracing framework.  Idempotent.
  void instrumentForBurstyTracing();

  /// Dynamic Vulcan step: injects detection and prefetching code at
  /// \p Pcs.  Every procedure containing at least one of the pcs is
  /// copied, patched, and redirected (its code version bumps).  Returns
  /// how many procedures and sites were modified — the paper's Table 2
  /// reports both per optimization cycle.
  PatchResult applyPatch(const std::vector<SiteId> &Pcs);

  /// Deoptimization: removes the entry jumps of all patched procedures
  /// (end of the hibernation phase).  Returns the number of procedures
  /// restored.
  size_t removePatches();

  uint32_t codeVersion(ProcId Id) const { return proc(Id).CodeVersion; }
  bool isPatched(ProcId Id) const { return proc(Id).Patched; }

  /// Lifetime counters (across all optimization cycles).
  uint64_t patchApplications() const { return PatchApplications; }
  uint64_t deoptimizations() const { return Deoptimizations; }

private:
  std::vector<Procedure> Procs;
  std::vector<ProcId> SiteOwners; // indexed by SiteId
  uint64_t PatchApplications = 0;
  uint64_t Deoptimizations = 0;
};

} // namespace vulcan
} // namespace hds

#endif // HDS_VULCAN_IMAGE_H
