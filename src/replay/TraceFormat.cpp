//===- replay/TraceFormat.cpp - Versioned binary trace format -------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "replay/TraceFormat.h"

#include "support/Table.h"

#include <cstdio>
#include <cstring>

using namespace hds;
using namespace hds::replay;

namespace {

constexpr char FileMagic[8] = {'H', 'D', 'S', 'T', 'R', 'A', 'C', 'E'};
constexpr char EndMagic[4] = {'H', 'D', 'S', 'E'};

//===----------------------------------------------------------------------===//
// LEB128 byte stream helpers
//===----------------------------------------------------------------------===//

void putVarint(std::string &Out, uint64_t Value) {
  do {
    uint8_t Byte = Value & 0x7F;
    Value >>= 7;
    if (Value)
      Byte |= 0x80;
    Out.push_back(static_cast<char>(Byte));
  } while (Value);
}

void putString(std::string &Out, const std::string &Text) {
  putVarint(Out, Text.size());
  Out.append(Text);
}

/// Bounds-checked reader over the serialized bytes.
class ByteReader {
public:
  explicit ByteReader(const std::string &Buffer) : Bytes(Buffer) {}

  bool failed() const { return Failed; }
  size_t position() const { return Pos; }
  bool atEnd() const { return Pos == Bytes.size(); }

  bool takeRaw(const char *Expected, size_t Length) {
    if (Failed || Pos + Length > Bytes.size() ||
        std::memcmp(Bytes.data() + Pos, Expected, Length) != 0) {
      Failed = true;
      return false;
    }
    Pos += Length;
    return true;
  }

  uint32_t takeU32() {
    uint32_t Value = 0;
    if (Failed || Pos + 4 > Bytes.size()) {
      Failed = true;
      return 0;
    }
    for (int I = 0; I < 4; ++I)
      Value |= static_cast<uint32_t>(
                   static_cast<uint8_t>(Bytes[Pos + static_cast<size_t>(I)]))
               << (8 * I);
    Pos += 4;
    return Value;
  }

  uint64_t takeVarint() {
    uint64_t Value = 0;
    unsigned Shift = 0;
    while (true) {
      if (Failed || Pos >= Bytes.size() || Shift >= 64) {
        Failed = true;
        return 0;
      }
      const uint8_t Byte = static_cast<uint8_t>(Bytes[Pos++]);
      Value |= static_cast<uint64_t>(Byte & 0x7F) << Shift;
      if (!(Byte & 0x80))
        return Value;
      Shift += 7;
    }
  }

  std::string takeString() {
    const uint64_t Length = takeVarint();
    if (Failed || Pos + Length > Bytes.size()) {
      Failed = true;
      return std::string();
    }
    std::string Result = Bytes.substr(Pos, Length);
    Pos += Length;
    return Result;
  }

private:
  const std::string &Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

void putU32(std::string &Out, uint32_t Value) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((Value >> (8 * I)) & 0xFF));
}

bool fail(std::string *Error, const std::string &Why) {
  if (Error)
    *Error = Why;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string hds::replay::serializeTrace(const Trace &T) {
  std::string Out;
  Out.reserve(64 + T.Events.size() * 4);
  Out.append(FileMagic, sizeof(FileMagic));
  putU32(Out, Trace::CurrentVersion);

  putString(Out, T.Meta.Workload);
  putVarint(Out, T.Meta.Iterations);
  Out.push_back(static_cast<char>(T.Meta.Mode));
  putVarint(Out, T.Meta.HeadLength);
  // The flags byte keeps the original per-kind bit layout (stride=1,
  // markov=2, pin=4, stream=8, pair=16, duel=32) so version-1 traces
  // recorded before PrefetcherSelection existed read back unchanged.
  using prefetch::Prefetcher;
  const uint8_t Flags =
      (T.Meta.Prefetchers.has(Prefetcher::Stride) ? 1 : 0) |
      (T.Meta.Prefetchers.has(Prefetcher::Markov) ? 2 : 0) |
      (T.Meta.Pin ? 4 : 0) |
      (T.Meta.Prefetchers.has(Prefetcher::Stream) ? 8 : 0) |
      (T.Meta.Prefetchers.has(Prefetcher::PairTable) ? 16 : 0) |
      (T.Meta.Prefetchers.has(Prefetcher::Duel) ? 32 : 0);
  Out.push_back(static_cast<char>(Flags));

  putVarint(Out, T.Events.size());
  for (const TraceEvent &E : T.Events) {
    Out.push_back(static_cast<char>(E.K));
    switch (E.K) {
    case TraceEvent::Kind::DeclareProcedure:
      putVarint(Out, E.A);
      putString(Out, E.Text);
      break;
    case TraceEvent::Kind::DeclareSite:
      putVarint(Out, E.A);
      putVarint(Out, E.B);
      putString(Out, E.Text);
      break;
    case TraceEvent::Kind::Allocate:
      putVarint(Out, E.A);
      putVarint(Out, E.B);
      putVarint(Out, E.C);
      break;
    case TraceEvent::Kind::PadHeap:
    case TraceEvent::Kind::EnterProcedure:
    case TraceEvent::Kind::Compute:
      putVarint(Out, E.A);
      break;
    case TraceEvent::Kind::Load:
    case TraceEvent::Kind::Store:
      putVarint(Out, E.A);
      putVarint(Out, E.B);
      break;
    case TraceEvent::Kind::LeaveProcedure:
    case TraceEvent::Kind::LoopBackEdge:
    case TraceEvent::Kind::SetupDone:
      break;
    }
  }

  putVarint(Out, T.Summary.Cycles);
  putVarint(Out, T.Summary.TotalAccesses);
  putVarint(Out, T.Summary.ChecksExecuted);
  putVarint(Out, T.Summary.TracedRefs);
  putVarint(Out, T.Summary.L1Misses);
  putVarint(Out, T.Summary.L2Misses);
  putVarint(Out, T.Summary.PrefetchesIssued);
  putVarint(Out, T.Summary.CompleteMatches);
  Out.append(EndMagic, sizeof(EndMagic));
  return Out;
}

bool hds::replay::deserializeTrace(const std::string &Bytes, Trace &Out,
                                   std::string *Error) {
  Out = Trace();
  ByteReader In(Bytes);
  if (!In.takeRaw(FileMagic, sizeof(FileMagic)))
    return fail(Error, "not an hds trace (bad magic)");
  const uint32_t Version = In.takeU32();
  if (In.failed())
    return fail(Error, "truncated header");
  if (Version != Trace::CurrentVersion)
    return fail(Error, formatString("unsupported trace version %u "
                                    "(this build reads version %u)",
                                    Version, Trace::CurrentVersion));

  Out.Meta.Workload = In.takeString();
  Out.Meta.Iterations = In.takeVarint();
  const uint64_t Mode = In.takeVarint();
  if (Mode > static_cast<uint64_t>(core::RunMode::DynamicPrefetch))
    return fail(Error, "invalid run mode in trace meta");
  Out.Meta.Mode = static_cast<core::RunMode>(Mode);
  Out.Meta.HeadLength = static_cast<uint32_t>(In.takeVarint());
  const uint64_t Flags = In.takeVarint();
  using prefetch::Prefetcher;
  Out.Meta.Prefetchers.set(Prefetcher::Stride, (Flags & 1) != 0);
  Out.Meta.Prefetchers.set(Prefetcher::Markov, (Flags & 2) != 0);
  Out.Meta.Pin = (Flags & 4) != 0;
  Out.Meta.Prefetchers.set(Prefetcher::Stream, (Flags & 8) != 0);
  Out.Meta.Prefetchers.set(Prefetcher::PairTable, (Flags & 16) != 0);
  Out.Meta.Prefetchers.set(Prefetcher::Duel, (Flags & 32) != 0);
  if (In.failed())
    return fail(Error, "truncated trace meta");

  const uint64_t EventCount = In.takeVarint();
  if (In.failed())
    return fail(Error, "truncated event count");
  Out.Events.reserve(EventCount);
  for (uint64_t I = 0; I < EventCount; ++I) {
    TraceEvent E;
    const uint64_t Opcode = In.takeVarint();
    if (In.failed())
      return fail(Error, formatString("truncated at event %llu",
                                      (unsigned long long)I));
    if (Opcode > static_cast<uint64_t>(TraceEvent::Kind::SetupDone))
      return fail(Error, formatString("unknown opcode %llu at event %llu",
                                      (unsigned long long)Opcode,
                                      (unsigned long long)I));
    E.K = static_cast<TraceEvent::Kind>(Opcode);
    switch (E.K) {
    case TraceEvent::Kind::DeclareProcedure:
      E.A = In.takeVarint();
      E.Text = In.takeString();
      break;
    case TraceEvent::Kind::DeclareSite:
      E.A = In.takeVarint();
      E.B = In.takeVarint();
      E.Text = In.takeString();
      break;
    case TraceEvent::Kind::Allocate:
      E.A = In.takeVarint();
      E.B = In.takeVarint();
      E.C = In.takeVarint();
      break;
    case TraceEvent::Kind::PadHeap:
    case TraceEvent::Kind::EnterProcedure:
    case TraceEvent::Kind::Compute:
      E.A = In.takeVarint();
      break;
    case TraceEvent::Kind::Load:
    case TraceEvent::Kind::Store:
      E.A = In.takeVarint();
      E.B = In.takeVarint();
      break;
    case TraceEvent::Kind::LeaveProcedure:
    case TraceEvent::Kind::LoopBackEdge:
    case TraceEvent::Kind::SetupDone:
      break;
    }
    if (In.failed())
      return fail(Error, formatString("truncated inside event %llu",
                                      (unsigned long long)I));
    Out.Events.push_back(std::move(E));
  }

  Out.Summary.Cycles = In.takeVarint();
  Out.Summary.TotalAccesses = In.takeVarint();
  Out.Summary.ChecksExecuted = In.takeVarint();
  Out.Summary.TracedRefs = In.takeVarint();
  Out.Summary.L1Misses = In.takeVarint();
  Out.Summary.L2Misses = In.takeVarint();
  Out.Summary.PrefetchesIssued = In.takeVarint();
  Out.Summary.CompleteMatches = In.takeVarint();
  if (In.failed())
    return fail(Error, "truncated summary footer");
  if (!In.takeRaw(EndMagic, sizeof(EndMagic)))
    return fail(Error, "missing end magic (truncated file?)");
  if (!In.atEnd())
    return fail(Error, "trailing bytes after end magic");
  return true;
}

bool hds::replay::writeTraceFile(const Trace &T, const std::string &Path,
                                 std::string *Error) {
  const std::string Bytes = serializeTrace(T);
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return fail(Error, "cannot open '" + Path + "' for writing");
  const size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  const bool Ok = std::fclose(File) == 0 && Written == Bytes.size();
  if (!Ok)
    return fail(Error, "short write to '" + Path + "'");
  return true;
}

bool hds::replay::readTraceFile(const std::string &Path, Trace &Out,
                                std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return fail(Error, "cannot open '" + Path + "'");
  std::string Bytes;
  char Buffer[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Bytes.append(Buffer, Got);
  std::fclose(File);
  return deserializeTrace(Bytes, Out, Error);
}

std::string
hds::replay::describeSummaryDivergence(const TraceSummary &Recorded,
                                       const TraceSummary &Replayed) {
  std::string Out;
  auto Field = [&](const char *Name, uint64_t Was, uint64_t Is) {
    if (Was == Is)
      return;
    if (!Out.empty())
      Out += "; ";
    Out += formatString("%s: recorded %llu, replayed %llu", Name,
                        (unsigned long long)Was, (unsigned long long)Is);
  };
  Field("cycles", Recorded.Cycles, Replayed.Cycles);
  Field("accesses", Recorded.TotalAccesses, Replayed.TotalAccesses);
  Field("checks", Recorded.ChecksExecuted, Replayed.ChecksExecuted);
  Field("traced refs", Recorded.TracedRefs, Replayed.TracedRefs);
  Field("L1 misses", Recorded.L1Misses, Replayed.L1Misses);
  Field("L2 misses", Recorded.L2Misses, Replayed.L2Misses);
  Field("prefetches", Recorded.PrefetchesIssued, Replayed.PrefetchesIssued);
  Field("complete matches", Recorded.CompleteMatches,
        Replayed.CompleteMatches);
  return Out;
}
