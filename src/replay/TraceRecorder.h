//===- replay/TraceRecorder.h - Runtime event capture ----------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Captures a benchmark run as a replayable Trace via the Runtime's
/// observer hook.  Usage mirrors the Workload protocol:
///
/// \code
///   replay::TraceRecorder Recorder(
///       replay::metaFromConfig(Config, "vpr", Iterations));
///   Rt.setObserver(&Recorder);
///   Bench->setup(Rt);
///   Recorder.markSetupDone();
///   Bench->run(Rt, Iterations);
///   Rt.setObserver(nullptr);
///   Recorder.finish(Rt);                 // snapshot the summary footer
///   replay::writeTraceFile(Recorder.trace(), "run.hdstrace");
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef HDS_REPLAY_TRACERECORDER_H
#define HDS_REPLAY_TRACERECORDER_H

#include "core/Runtime.h"
#include "replay/TraceFormat.h"

#include <cstdint>
#include <string>

namespace hds {
namespace replay {

/// Builds the trace meta block from the configuration knobs hds_run
/// exposes; \p Workload and \p Iterations label the recorded run.
TraceMeta metaFromConfig(const core::OptimizerConfig &Config,
                         std::string Workload, uint64_t Iterations);

/// Snapshots a run's observable outcome into a summary footer.
TraceSummary summarizeRun(const core::Runtime &Rt);

/// RuntimeObserver that appends every event to an in-memory Trace.
class TraceRecorder : public core::RuntimeObserver {
public:
  explicit TraceRecorder(TraceMeta Meta);

  /// Records the setup/run boundary so the replayer can honour the
  /// Workload protocol exactly.
  void markSetupDone();

  /// Captures the summary footer; call after the run completes (and after
  /// detaching the observer, though recording ignores its own reads).
  void finish(const core::Runtime &Rt);

  const Trace &trace() const { return T; }
  Trace takeTrace() { return std::move(T); }

  void onDeclareProcedure(vulcan::ProcId Proc,
                          const std::string &Name) override;
  void onDeclareSite(vulcan::SiteId Site, vulcan::ProcId Proc,
                     const std::string &Label) override;
  void onAllocate(memsim::Addr Result, uint64_t Bytes,
                  uint64_t Align) override;
  void onPadHeap(uint64_t Bytes) override;
  void onEnterProcedure(vulcan::ProcId Proc) override;
  void onLeaveProcedure() override;
  void onLoopBackEdge() override;
  void onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                bool IsStore) override;
  void onAccessBatch(const AccessEvent *Events, size_t Count) override;
  void onCompute(uint64_t Cycles) override;

private:
  Trace T;
};

} // namespace replay
} // namespace hds

#endif // HDS_REPLAY_TRACERECORDER_H
