//===- replay/Oracles.cpp - Differential testing oracles ------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "replay/Oracles.h"

#include "analysis/FastAnalyzer.h"
#include "analysis/PreciseAnalyzer.h"
#include "dfsm/Matchers.h"
#include "dfsm/PrefixDfsm.h"
#include "sequitur/Grammar.h"
#include "support/Table.h"

#include <algorithm>
#include <unordered_set>

using namespace hds;
using namespace hds::replay;

namespace {

OracleReport failWith(std::string Why) {
  OracleReport Report;
  Report.Passed = false;
  Report.Failure = std::move(Why);
  return Report;
}

/// Grammar invariants are O(grammar size) to check, so validating after
/// every single append makes the oracle quadratic.  Checking on a stride
/// still catches invariant breakage (the invariants are maintained
/// incrementally — once broken they stay broken under further appends in
/// every failure mode we care about) while keeping fuzz runs fast.
constexpr size_t InvariantCheckStride = 64;

} // namespace

uint64_t
hds::replay::countNonOverlapping(const std::vector<uint32_t> &Trace,
                                 const std::vector<uint32_t> &Pattern) {
  if (Pattern.empty() || Pattern.size() > Trace.size())
    return 0;
  uint64_t Count = 0;
  auto It = Trace.begin();
  while (true) {
    It = std::search(It, Trace.end(), Pattern.begin(), Pattern.end());
    if (It == Trace.end())
      return Count;
    ++Count;
    It += static_cast<ptrdiff_t>(Pattern.size());
  }
}

//===----------------------------------------------------------------------===//
// Grammar oracle
//===----------------------------------------------------------------------===//

OracleReport
hds::replay::checkGrammarOracle(const std::vector<uint32_t> &Trace) {
  sequitur::Grammar G;
  std::string Why;
  for (size_t I = 0; I < Trace.size(); ++I) {
    G.append(Trace[I]);
    if ((I + 1) % InvariantCheckStride == 0 && !G.checkInvariants(&Why))
      return failWith(formatString("after %zu appends: ", I + 1) + Why);
  }
  if (!G.checkInvariants(&Why))
    return failWith("at end of input: " + Why);

  if (G.inputLength() != Trace.size())
    return failWith(formatString("input length %zu, appended %zu",
                                 G.inputLength(), Trace.size()));
  const std::vector<uint64_t> Expanded = G.expandRule(*G.start());
  if (Expanded.size() != Trace.size())
    return failWith(formatString("expansion has %zu symbols, input %zu",
                                 Expanded.size(), Trace.size()));
  for (size_t I = 0; I < Trace.size(); ++I)
    if (Expanded[I] != Trace[I])
      return failWith(formatString("expansion diverges from input at "
                                   "position %zu (%llu != %llu)",
                                   I, (unsigned long long)Expanded[I],
                                   (unsigned long long)Trace[I]));
  return OracleReport();
}

//===----------------------------------------------------------------------===//
// Analyzer oracle
//===----------------------------------------------------------------------===//

OracleReport
hds::replay::checkAnalyzerOracle(const std::vector<uint32_t> &Trace,
                                 const analysis::AnalysisConfig &Config) {
  sequitur::Grammar G;
  for (uint32_t Symbol : Trace)
    G.append(Symbol);
  const analysis::FastAnalysisResult Fast =
      analysis::analyzeHotStreams(G.snapshot(), Config);
  const analysis::PreciseAnalysisResult Precise =
      analysis::analyzeHotStreamsPrecisely(Trace, Config);

  if (Fast.TraceLength != Trace.size())
    return failWith(formatString("fast analyzer saw trace length %llu, "
                                 "actual %zu",
                                 (unsigned long long)Fast.TraceLength,
                                 Trace.size()));
  if (Precise.TraceLength != Trace.size())
    return failWith(formatString("precise analyzer saw trace length %llu, "
                                 "actual %zu",
                                 (unsigned long long)Precise.TraceLength,
                                 Trace.size()));

  // Fast streams: each must honour the config bounds and really occur in
  // the trace at least Frequency times without overlap (Frequency is a
  // count of parse-tree occurrences, which are disjoint substrings).
  uint64_t HeatSum = 0;
  uint64_t MaxFastHeat = 0;
  for (size_t I = 0; I < Fast.Streams.size(); ++I) {
    const analysis::HotDataStream &S = Fast.Streams[I];
    if (S.length() < Config.MinLength || S.length() > Config.MaxLength)
      return failWith(formatString("fast stream %zu has length %llu, "
                                   "outside [%llu, %llu]",
                                   I, (unsigned long long)S.length(),
                                   (unsigned long long)Config.MinLength,
                                   (unsigned long long)Config.MaxLength));
    if (S.Frequency == 0 || S.Heat != S.length() * S.Frequency)
      return failWith(formatString("fast stream %zu heat %llu != length "
                                   "%llu * frequency %llu",
                                   I, (unsigned long long)S.Heat,
                                   (unsigned long long)S.length(),
                                   (unsigned long long)S.Frequency));
    if (S.Heat < Config.HeatThreshold)
      return failWith(formatString("fast stream %zu heat %llu below "
                                   "threshold %llu",
                                   I, (unsigned long long)S.Heat,
                                   (unsigned long long)Config.HeatThreshold));
    const uint64_t Occurrences = countNonOverlapping(Trace, S.Symbols);
    if (Occurrences < S.Frequency)
      return failWith(formatString("fast stream %zu claims frequency %llu "
                                   "but only %llu non-overlapping "
                                   "occurrences exist",
                                   I, (unsigned long long)S.Frequency,
                                   (unsigned long long)Occurrences));
    HeatSum += S.Heat;
    MaxFastHeat = std::max(MaxFastHeat, S.Heat);
  }
  if (Fast.TotalHeat != HeatSum)
    return failWith(formatString("fast TotalHeat %llu != sum of stream "
                                 "heats %llu",
                                 (unsigned long long)Fast.TotalHeat,
                                 (unsigned long long)HeatSum));
  // Cold-uses accounting never double-counts a trace position, so the
  // reported streams cannot cover more than the whole trace.
  if (Fast.TotalHeat > Fast.TraceLength)
    return failWith(formatString("fast TotalHeat %llu exceeds trace "
                                 "length %llu",
                                 (unsigned long long)Fast.TotalHeat,
                                 (unsigned long long)Fast.TraceLength));

  // Precise streams: frequencies are exact, ordering is hottest-first,
  // and Frequency >= 2 by definition of a recurring stream.
  uint64_t MaxPreciseHeat = 0;
  for (size_t I = 0; I < Precise.Streams.size(); ++I) {
    const analysis::HotDataStream &S = Precise.Streams[I];
    if (S.length() < Config.MinLength || S.length() > Config.MaxLength)
      return failWith(formatString("precise stream %zu has length %llu, "
                                   "outside [%llu, %llu]",
                                   I, (unsigned long long)S.length(),
                                   (unsigned long long)Config.MinLength,
                                   (unsigned long long)Config.MaxLength));
    if (S.Frequency < 2)
      return failWith(formatString("precise stream %zu frequency %llu < 2",
                                   I, (unsigned long long)S.Frequency));
    if (S.Heat != S.length() * S.Frequency ||
        S.Heat < Config.HeatThreshold)
      return failWith(formatString("precise stream %zu heat %llu "
                                   "inconsistent or below threshold",
                                   I, (unsigned long long)S.Heat));
    const uint64_t Occurrences = countNonOverlapping(Trace, S.Symbols);
    if (Occurrences != S.Frequency)
      return failWith(formatString("precise stream %zu frequency %llu but "
                                   "greedy recount gives %llu",
                                   I, (unsigned long long)S.Frequency,
                                   (unsigned long long)Occurrences));
    if (I > 0 && S.Heat > Precise.Streams[I - 1].Heat)
      return failWith(formatString("precise streams not sorted "
                                   "hottest-first at index %zu",
                                   I));
    MaxPreciseHeat = std::max(MaxPreciseHeat, S.Heat);
  }

  // The exact detector can only find hotter-or-equal streams than the
  // grammar approximation (the property the paper trades away precision
  // for, locked down by the FastNeverBeatsPrecise unit test).
  if (MaxFastHeat > MaxPreciseHeat)
    return failWith(formatString("fast analyzer's hottest stream (heat "
                                 "%llu) beats the precise detector's "
                                 "(heat %llu)",
                                 (unsigned long long)MaxFastHeat,
                                 (unsigned long long)MaxPreciseHeat));
  return OracleReport();
}

//===----------------------------------------------------------------------===//
// DFSM oracle
//===----------------------------------------------------------------------===//

OracleReport
hds::replay::checkDfsmOracle(const std::vector<uint32_t> &Trace,
                             const std::vector<std::vector<uint32_t>> &Streams,
                             uint32_t HeadLength) {
  if (HeadLength == 0)
    return failWith("head length must be at least 1");

  dfsm::DfsmConfig Config;
  Config.HeadLength = HeadLength;
  const dfsm::PrefixDfsm M(Streams, Config);
  dfsm::ReferenceMatcher Ref(Streams, HeadLength);

  // Part 1: the DFSM is step-for-step equivalent to the executable
  // specification — same element sets, same completions.  When
  // construction hit the state limit, unexpanded states legitimately
  // reset early and equivalence is not promised.
  if (!M.hitStateLimit()) {
    dfsm::StateId State = M.startState();
    for (size_t I = 0; I < Trace.size(); ++I) {
      State = M.step(State, Trace[I]);
      std::vector<dfsm::StreamIndex> RefCompleted = Ref.step(Trace[I]);
      if (!(M.elementsOf(State) == Ref.elements()))
        return failWith(formatString("DFSM state elements diverge from the "
                                     "reference matcher at step %zu",
                                     I));
      std::vector<dfsm::StreamIndex> DfsmCompleted = M.completionsAt(State);
      std::sort(DfsmCompleted.begin(), DfsmCompleted.end());
      std::sort(RefCompleted.begin(), RefCompleted.end());
      if (DfsmCompleted != RefCompleted)
        return failWith(formatString("DFSM completions diverge from the "
                                     "reference matcher at step %zu",
                                     I));
    }
  }

  // Part 2: every completion the scalar matcher bank (Figure 7) reports
  // is a genuine head occurrence in the trace *as that stream sees it*:
  // a per-stream counter is only consulted at its own head pcs, so the
  // last HeadLength consulted symbols must spell the head exactly.
  uint32_t MaxSymbol = 0;
  for (const std::vector<uint32_t> &S : Streams)
    for (uint32_t Symbol : S)
      MaxSymbol = std::max(MaxSymbol, Symbol);
  for (uint32_t Symbol : Trace)
    MaxSymbol = std::max(MaxSymbol, Symbol);
  std::vector<uint64_t> IdentityPcs(static_cast<size_t>(MaxSymbol) + 1);
  for (size_t I = 0; I < IdentityPcs.size(); ++I)
    IdentityPcs[I] = I;

  dfsm::ScalarMatcherBank Bank(Streams, HeadLength, IdentityPcs);
  std::vector<std::unordered_set<uint32_t>> HeadSymbols(Streams.size());
  std::vector<std::vector<uint32_t>> Consulted(Streams.size());
  for (size_t S = 0; S < Streams.size(); ++S)
    if (Streams[S].size() > HeadLength)
      HeadSymbols[S].insert(Streams[S].begin(),
                            Streams[S].begin() + HeadLength);

  for (size_t I = 0; I < Trace.size(); ++I) {
    const uint32_t Symbol = Trace[I];
    for (size_t S = 0; S < Streams.size(); ++S)
      if (HeadSymbols[S].count(Symbol))
        Consulted[S].push_back(Symbol);
    const std::vector<dfsm::StreamIndex> Completed =
        Bank.step(Symbol, IdentityPcs[Symbol]);
    for (dfsm::StreamIndex S : Completed) {
      const std::vector<uint32_t> &History = Consulted[S];
      if (History.size() < HeadLength ||
          !std::equal(Streams[S].begin(), Streams[S].begin() + HeadLength,
                      History.end() - HeadLength))
        return failWith(formatString("scalar matcher completed stream %u "
                                     "at step %zu without a real head "
                                     "occurrence",
                                     S, I));
    }
  }
  return OracleReport();
}

//===----------------------------------------------------------------------===//
// Full suite
//===----------------------------------------------------------------------===//

OracleReport
hds::replay::runOracleSuite(const std::vector<uint32_t> &Trace,
                            const analysis::AnalysisConfig &Config,
                            uint32_t HeadLength) {
  OracleReport Report = checkGrammarOracle(Trace);
  if (!Report.Passed) {
    Report.Failure = "grammar oracle: " + Report.Failure;
    return Report;
  }
  Report = checkAnalyzerOracle(Trace, Config);
  if (!Report.Passed) {
    Report.Failure = "analyzer oracle: " + Report.Failure;
    return Report;
  }

  // Match the streams the pipeline itself would inject: the fast
  // analyzer's output.  An empty stream set is a legitimate outcome and
  // still exercises the matchers' no-transition paths.
  sequitur::Grammar G;
  for (uint32_t Symbol : Trace)
    G.append(Symbol);
  const analysis::FastAnalysisResult Fast =
      analysis::analyzeHotStreams(G.snapshot(), Config);
  std::vector<std::vector<uint32_t>> Streams;
  Streams.reserve(Fast.Streams.size());
  for (const analysis::HotDataStream &S : Fast.Streams)
    Streams.push_back(S.Symbols);

  Report = checkDfsmOracle(Trace, Streams, HeadLength);
  if (!Report.Passed)
    Report.Failure = "dfsm oracle: " + Report.Failure;
  return Report;
}
