//===- replay/TraceReplayer.h - Deterministic trace replay -----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-executes a recorded Trace through a fresh Runtime.  The replayer is
/// itself a Workload: setup() replays the events up to the SetupDone
/// marker, run() replays the rest.  Because every simulator component is
/// deterministic, a faithful replay lands on the exact cycle count, cache
/// miss counts, and optimization behaviour of the recorded run — and
/// replayTrace() checks that it did, field by field.
///
/// Replay also cross-checks the Runtime's own outputs against the
/// recording as it goes: declared procedure/site ids and allocator
/// addresses must come back identical, so any drift is caught at the
/// first diverging event rather than only in the final summary.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_REPLAY_TRACEREPLAYER_H
#define HDS_REPLAY_TRACEREPLAYER_H

#include "replay/TraceFormat.h"
#include "workloads/Workload.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace hds {
namespace replay {

/// Rebuilds the OptimizerConfig the recorded run used (the inverse of
/// metaFromConfig).
core::OptimizerConfig configFromMeta(const TraceMeta &Meta);

/// A Workload that re-executes a recorded event stream.
class ReplayWorkload : public workloads::Workload {
public:
  explicit ReplayWorkload(const Trace &Recorded) : T(Recorded) {}

  const char *name() const override { return "replay"; }

  /// Replays events up to (and consuming) the SetupDone marker.
  void setup(core::Runtime &Rt) override;

  /// Replays the remaining events.  \p Iterations is ignored: the trace
  /// already contains the full recorded run.
  void run(core::Runtime &Rt, uint64_t Iterations) override;

  uint64_t defaultIterations() const override { return 1; }

  /// Events whose Runtime-produced outputs (declared ids, allocation
  /// addresses) disagreed with the recording.
  uint64_t eventMismatches() const { return Mismatches; }

  /// Description of the first diverging event; empty when faithful.
  const std::string &firstMismatch() const { return FirstMismatch; }

private:
  void replayRange(core::Runtime &Rt, size_t Begin, size_t End);
  void noteMismatch(size_t Index, const std::string &Why);

  const Trace &T;
  size_t SetupEnd = 0;
  uint64_t Mismatches = 0;
  std::string FirstMismatch;
};

/// Outcome of replaying a trace end to end.
struct ReplayResult {
  TraceSummary Replayed;
  bool SummaryMatches = false;
  uint64_t EventMismatches = 0;
  /// Human-readable account of any divergence; empty on a perfect replay.
  std::string Divergence;
};

/// Replays \p T through a fresh Runtime built from its meta block and
/// compares the outcome against the recorded summary footer.
ReplayResult replayTrace(const Trace &T);

} // namespace replay
} // namespace hds

#endif // HDS_REPLAY_TRACEREPLAYER_H
