//===- replay/Oracles.h - Differential testing oracles ---------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential-testing oracles over an arbitrary reference trace.  Each
/// oracle checks one pipeline stage against an independent ground truth,
/// so a fuzzer can drive the whole Sequitur -> analysis -> DFSM pipeline
/// with adversarial inputs and detect wrong answers, not just crashes:
///
///  * Grammar oracle — the Sequitur invariants hold after every append and
///    the grammar expands back to exactly the input string.
///
///  * Analyzer oracle — the fast grammar-based analyzer's output is sound
///    against the trace itself (every reported stream really occurs at
///    least Frequency times non-overlapping; heats respect the config
///    bounds) and against the precise detector (which can only find
///    hotter-or-equal maximal streams, never cooler ones).
///
///  * DFSM oracle — the combined prefix-match DFSM, stepped over the
///    trace, completes exactly the same stream prefixes at exactly the
///    same positions as the executable-specification ReferenceMatcher,
///    and the per-stream scalar matcher (Figure 7) completes a subset.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_REPLAY_ORACLES_H
#define HDS_REPLAY_ORACLES_H

#include "analysis/HotDataStream.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace replay {

/// Outcome of one oracle run.
struct OracleReport {
  bool Passed = true;
  /// First violated property, human-readable; empty when Passed.
  std::string Failure;
};

/// Counts the greedy left-to-right non-overlapping occurrences of
/// \p Pattern in \p Trace — the exact Frequency semantics both analyzers
/// promise.  Exposed for tests.
uint64_t countNonOverlapping(const std::vector<uint32_t> &Trace,
                             const std::vector<uint32_t> &Pattern);

/// Builds a Sequitur grammar from \p Trace, checking the grammar
/// invariants after every append and expansion == input at the end.
OracleReport checkGrammarOracle(const std::vector<uint32_t> &Trace);

/// Runs the fast (grammar-based) and precise (trace-based) hot data
/// stream analyzers over \p Trace and cross-checks their outputs.
OracleReport checkAnalyzerOracle(const std::vector<uint32_t> &Trace,
                                 const analysis::AnalysisConfig &Config);

/// Builds a prefix-match DFSM for \p Streams and steps it over \p Trace
/// in lock step with the ReferenceMatcher specification and the scalar
/// matcher bank (symbols map to pcs one-to-one).
OracleReport checkDfsmOracle(const std::vector<uint32_t> &Trace,
                             const std::vector<std::vector<uint32_t>> &Streams,
                             uint32_t HeadLength);

/// Runs all three oracles over \p Trace: the grammar and analyzer oracles
/// directly, and the DFSM oracle against the hot streams the fast
/// analyzer detected (falling back to nothing detected == nothing to
/// match, which is itself a valid outcome).  Returns the first failure.
OracleReport runOracleSuite(const std::vector<uint32_t> &Trace,
                            const analysis::AnalysisConfig &Config,
                            uint32_t HeadLength);

} // namespace replay
} // namespace hds

#endif // HDS_REPLAY_ORACLES_H
