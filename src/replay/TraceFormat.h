//===- replay/TraceFormat.h - Versioned binary trace format ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic record/replay trace format.
///
/// A trace is a complete capture of one benchmark run at the Runtime API
/// level: every declaration, allocation, check point, and data reference,
/// in program order.  Because the Runtime is deterministic (the paper's
/// Section 2.2 property this project preserves everywhere), re-executing
/// the event stream through a fresh Runtime built from the same
/// configuration reproduces the original run bit for bit — cycles, cache
/// behaviour, optimization cycles, everything.  The recorded summary
/// footer lets the replayer prove it did.
///
/// On disk the format is versioned and self-contained:
///
///   magic "HDSTRACE" | version u32 | meta (workload, iterations, mode,
///   headLen, feature flags) | event count | events (opcode + LEB128
///   operands) | summary footer | end magic "HDSE"
///
/// All integers are unsigned LEB128 varints except the fixed-width magic
/// and version words, so traces are compact (a load event is typically
/// 3-6 bytes) and the format is endian-independent.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_REPLAY_TRACEFORMAT_H
#define HDS_REPLAY_TRACEFORMAT_H

#include "core/OptimizerConfig.h"
#include "prefetch/Selection.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace replay {

/// One recorded Runtime API event.  Operand meaning depends on the kind:
///
///   DeclareProcedure  A=assigned ProcId                Text=name
///   DeclareSite       A=assigned SiteId  B=ProcId      Text=label
///   Allocate          A=bytes  B=align   C=returned address
///   PadHeap           A=bytes
///   EnterProcedure    A=ProcId
///   LeaveProcedure    -
///   LoopBackEdge      -
///   Load / Store      A=SiteId  B=address
///   Compute           A=cycles
///   SetupDone         -  (marks the Workload::setup / run boundary)
struct TraceEvent {
  enum class Kind : uint8_t {
    DeclareProcedure = 0,
    DeclareSite = 1,
    Allocate = 2,
    PadHeap = 3,
    EnterProcedure = 4,
    LeaveProcedure = 5,
    LoopBackEdge = 6,
    Load = 7,
    Store = 8,
    Compute = 9,
    SetupDone = 10,
  };

  Kind K = Kind::LeaveProcedure;
  uint64_t A = 0;
  uint64_t B = 0;
  uint64_t C = 0;
  std::string Text;

  friend bool operator==(const TraceEvent &X, const TraceEvent &Y) {
    return X.K == Y.K && X.A == Y.A && X.B == Y.B && X.C == Y.C &&
           X.Text == Y.Text;
  }
};

/// The recorded run configuration — everything hds_run needs to rebuild
/// the exact OptimizerConfig the original run used.
struct TraceMeta {
  std::string Workload;
  uint64_t Iterations = 0;
  core::RunMode Mode = core::RunMode::DynamicPrefetch;
  uint32_t HeadLength = 2;
  /// Enabled hardware prefetchers.  The serialized flags byte keeps the
  /// original per-kind bit layout, so existing traces read back
  /// unchanged.
  prefetch::PrefetcherSelection Prefetchers;
  bool Pin = false;

  friend bool operator==(const TraceMeta &X, const TraceMeta &Y) {
    return X.Workload == Y.Workload && X.Iterations == Y.Iterations &&
           X.Mode == Y.Mode && X.HeadLength == Y.HeadLength &&
           X.Prefetchers == Y.Prefetchers && X.Pin == Y.Pin;
  }
};

/// The summary footer: the run's observable outcome.  A replay that
/// reproduces the event stream must land on these exact values.
struct TraceSummary {
  uint64_t Cycles = 0;
  uint64_t TotalAccesses = 0;
  uint64_t ChecksExecuted = 0;
  uint64_t TracedRefs = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t PrefetchesIssued = 0;
  uint64_t CompleteMatches = 0;

  friend bool operator==(const TraceSummary &X, const TraceSummary &Y) {
    return X.Cycles == Y.Cycles && X.TotalAccesses == Y.TotalAccesses &&
           X.ChecksExecuted == Y.ChecksExecuted &&
           X.TracedRefs == Y.TracedRefs && X.L1Misses == Y.L1Misses &&
           X.L2Misses == Y.L2Misses &&
           X.PrefetchesIssued == Y.PrefetchesIssued &&
           X.CompleteMatches == Y.CompleteMatches;
  }
};

/// Describes field-by-field how \p Replayed diverges from \p Recorded;
/// empty when they agree.
std::string describeSummaryDivergence(const TraceSummary &Recorded,
                                      const TraceSummary &Replayed);

/// A complete in-memory trace.
struct Trace {
  /// Bump on any change to the serialized layout; readers reject other
  /// versions (no silent misinterpretation of old traces).
  static constexpr uint32_t CurrentVersion = 1;

  TraceMeta Meta;
  std::vector<TraceEvent> Events;
  TraceSummary Summary;
};

/// \name Serialization.
/// @{
std::string serializeTrace(const Trace &T);

/// Parses \p Bytes; returns false (with \p Error set when non-null) on a
/// bad magic, unsupported version, unknown opcode, or truncation.
bool deserializeTrace(const std::string &Bytes, Trace &Out,
                      std::string *Error = nullptr);

bool writeTraceFile(const Trace &T, const std::string &Path,
                    std::string *Error = nullptr);
bool readTraceFile(const std::string &Path, Trace &Out,
                   std::string *Error = nullptr);
/// @}

} // namespace replay
} // namespace hds

#endif // HDS_REPLAY_TRACEFORMAT_H
