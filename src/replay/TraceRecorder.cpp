//===- replay/TraceRecorder.cpp - Runtime event capture -------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "replay/TraceRecorder.h"

using namespace hds;
using namespace hds::replay;

TraceMeta hds::replay::metaFromConfig(const core::OptimizerConfig &Config,
                                      std::string Workload,
                                      uint64_t Iterations) {
  TraceMeta Meta;
  Meta.Workload = std::move(Workload);
  Meta.Iterations = Iterations;
  Meta.Mode = Config.Mode;
  Meta.HeadLength = Config.Dfsm.HeadLength;
  Meta.Prefetchers = Config.Prefetchers.Enabled;
  Meta.Pin = Config.PinFirstOptimization;
  return Meta;
}

TraceSummary hds::replay::summarizeRun(const core::Runtime &Rt) {
  TraceSummary Summary;
  Summary.Cycles = Rt.cycles();
  Summary.TotalAccesses = Rt.stats().TotalAccesses;
  Summary.ChecksExecuted = Rt.stats().ChecksExecuted;
  Summary.TracedRefs = Rt.stats().TracedRefs;
  Summary.L1Misses = Rt.memory().l1().stats().Misses;
  Summary.L2Misses = Rt.memory().l2().stats().Misses;
  Summary.PrefetchesIssued = Rt.memory().stats().PrefetchesIssued;
  Summary.CompleteMatches = Rt.stats().CompleteMatches;
  return Summary;
}

TraceRecorder::TraceRecorder(TraceMeta Meta) { T.Meta = std::move(Meta); }

void TraceRecorder::markSetupDone() {
  T.Events.push_back({TraceEvent::Kind::SetupDone, 0, 0, 0, {}});
}

void TraceRecorder::finish(const core::Runtime &Rt) {
  T.Summary = summarizeRun(Rt);
}

void TraceRecorder::onDeclareProcedure(vulcan::ProcId Proc,
                                       const std::string &Name) {
  T.Events.push_back({TraceEvent::Kind::DeclareProcedure, Proc, 0, 0, Name});
}

void TraceRecorder::onDeclareSite(vulcan::SiteId Site, vulcan::ProcId Proc,
                                  const std::string &Label) {
  T.Events.push_back({TraceEvent::Kind::DeclareSite, Site, Proc, 0, Label});
}

void TraceRecorder::onAllocate(memsim::Addr Result, uint64_t Bytes,
                               uint64_t Align) {
  T.Events.push_back({TraceEvent::Kind::Allocate, Bytes, Align, Result, {}});
}

void TraceRecorder::onPadHeap(uint64_t Bytes) {
  T.Events.push_back({TraceEvent::Kind::PadHeap, Bytes, 0, 0, {}});
}

void TraceRecorder::onEnterProcedure(vulcan::ProcId Proc) {
  T.Events.push_back({TraceEvent::Kind::EnterProcedure, Proc, 0, 0, {}});
}

void TraceRecorder::onLeaveProcedure() {
  T.Events.push_back({TraceEvent::Kind::LeaveProcedure, 0, 0, 0, {}});
}

void TraceRecorder::onLoopBackEdge() {
  T.Events.push_back({TraceEvent::Kind::LoopBackEdge, 0, 0, 0, {}});
}

void TraceRecorder::onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                             bool IsStore) {
  T.Events.push_back({IsStore ? TraceEvent::Kind::Store
                              : TraceEvent::Kind::Load,
                      Site, Addr, 0, {}});
}

void TraceRecorder::onAccessBatch(const AccessEvent *Events, size_t Count) {
  // One virtual dispatch per block; the append loop is the whole body.
  T.Events.reserve(T.Events.size() + Count);
  for (size_t I = 0; I < Count; ++I)
    T.Events.push_back({Events[I].IsStore ? TraceEvent::Kind::Store
                                          : TraceEvent::Kind::Load,
                        Events[I].Site, Events[I].Addr, 0, {}});
}

void TraceRecorder::onCompute(uint64_t Cycles) {
  T.Events.push_back({TraceEvent::Kind::Compute, Cycles, 0, 0, {}});
}
