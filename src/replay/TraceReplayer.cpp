//===- replay/TraceReplayer.cpp - Deterministic trace replay --------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "replay/TraceReplayer.h"

#include "replay/TraceRecorder.h"
#include "support/Table.h"

using namespace hds;
using namespace hds::replay;

core::OptimizerConfig hds::replay::configFromMeta(const TraceMeta &Meta) {
  core::OptimizerConfig Config;
  Config.Mode = Meta.Mode;
  Config.Dfsm.HeadLength = Meta.HeadLength;
  Config.Prefetchers.Enabled = Meta.Prefetchers;
  Config.PinFirstOptimization = Meta.Pin;
  return Config;
}

void ReplayWorkload::noteMismatch(size_t Index, const std::string &Why) {
  ++Mismatches;
  if (FirstMismatch.empty())
    FirstMismatch =
        formatString("event %zu: ", Index) + Why;
}

void ReplayWorkload::replayRange(core::Runtime &Rt, size_t Begin,
                                 size_t End) {
  for (size_t I = Begin; I < End; ++I) {
    const TraceEvent &E = T.Events[I];
    switch (E.K) {
    case TraceEvent::Kind::DeclareProcedure: {
      const vulcan::ProcId Proc = Rt.declareProcedure(E.Text);
      if (Proc != E.A)
        noteMismatch(I, formatString("procedure '%s' got id %llu, "
                                     "recorded %llu",
                                     E.Text.c_str(), (unsigned long long)Proc,
                                     (unsigned long long)E.A));
      break;
    }
    case TraceEvent::Kind::DeclareSite: {
      const vulcan::SiteId Site =
          Rt.declareSite(static_cast<vulcan::ProcId>(E.B), E.Text);
      if (Site != E.A)
        noteMismatch(I, formatString("site '%s' got id %llu, recorded %llu",
                                     E.Text.c_str(), (unsigned long long)Site,
                                     (unsigned long long)E.A));
      break;
    }
    case TraceEvent::Kind::Allocate: {
      const memsim::Addr Addr = Rt.allocate(E.A, E.B);
      if (Addr != E.C)
        noteMismatch(I, formatString("allocation of %llu bytes landed at "
                                     "%llx, recorded %llx",
                                     (unsigned long long)E.A,
                                     (unsigned long long)Addr,
                                     (unsigned long long)E.C));
      break;
    }
    case TraceEvent::Kind::PadHeap:
      Rt.padHeap(E.A);
      break;
    case TraceEvent::Kind::EnterProcedure:
      Rt.enterProcedure(static_cast<vulcan::ProcId>(E.A));
      break;
    case TraceEvent::Kind::LeaveProcedure:
      Rt.leaveProcedure();
      break;
    case TraceEvent::Kind::LoopBackEdge:
      Rt.loopBackEdge();
      break;
    case TraceEvent::Kind::Load:
      Rt.load(E.A, E.B);
      break;
    case TraceEvent::Kind::Store:
      Rt.store(E.A, E.B);
      break;
    case TraceEvent::Kind::Compute:
      Rt.compute(E.A);
      break;
    case TraceEvent::Kind::SetupDone:
      break; // boundary marker only; consumed by setup()/run() split
    }
  }
}

void ReplayWorkload::setup(core::Runtime &Rt) {
  SetupEnd = T.Events.size();
  for (size_t I = 0; I < T.Events.size(); ++I) {
    if (T.Events[I].K == TraceEvent::Kind::SetupDone) {
      SetupEnd = I;
      break;
    }
  }
  replayRange(Rt, 0, SetupEnd);
}

void ReplayWorkload::run(core::Runtime &Rt, uint64_t /*Iterations*/) {
  const size_t Begin =
      SetupEnd < T.Events.size() ? SetupEnd + 1 : T.Events.size();
  replayRange(Rt, Begin, T.Events.size());
}

ReplayResult hds::replay::replayTrace(const Trace &T) {
  core::Runtime Rt(configFromMeta(T.Meta));
  ReplayWorkload Replay(T);
  Replay.setup(Rt);
  Replay.run(Rt, /*Iterations=*/1);

  ReplayResult Result;
  Result.Replayed = summarizeRun(Rt);
  Result.EventMismatches = Replay.eventMismatches();
  Result.SummaryMatches =
      Result.Replayed == T.Summary && Result.EventMismatches == 0;
  if (Result.EventMismatches != 0)
    Result.Divergence = Replay.firstMismatch();
  else if (!(Result.Replayed == T.Summary))
    Result.Divergence = describeSummaryDivergence(T.Summary, Result.Replayed);
  return Result;
}
