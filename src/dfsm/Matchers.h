//===- dfsm/Matchers.h - Reference and scalar prefix matchers --*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two non-DFSM prefix matchers:
///
///  * ReferenceMatcher — computes the transition function d(s, a) directly
///    from the stream definitions on every step.  It is the executable
///    specification the PrefixDfsm property tests compare against.
///
///  * ScalarMatcherBank — the paper's "straight-forward way": one v.seen
///    counter per hot data stream driven independently (Section 3.1,
///    Figure 7).  It is cheaper to build but does redundant work per
///    access; the DFSM ablation bench quantifies the difference.  Note the
///    scalar matcher tracks only one candidate occurrence per stream, so
///    it can miss matches the set-based DFSM finds (e.g. re-entrant heads
///    like "aab") — another reason the paper builds the combined machine.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_DFSM_MATCHERS_H
#define HDS_DFSM_MATCHERS_H

#include "dfsm/PrefixDfsm.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace hds {
namespace dfsm {

/// Executable specification of the combined DFSM's behaviour.
class ReferenceMatcher {
public:
  ReferenceMatcher(const std::vector<std::vector<uint32_t>> &Streams,
                   uint32_t HeadLength);

  /// Feeds one symbol; returns the streams completed by this step.  The
  /// current element set is updated to d(current, Symbol).
  std::vector<StreamIndex> step(uint32_t Symbol);

  const std::vector<StateElement> &elements() const { return Current; }
  void reset() { Current.clear(); }

private:
  const std::vector<std::vector<uint32_t>> &Streams;
  uint32_t HeadLength;
  std::vector<StreamIndex> Eligible;
  std::vector<StateElement> Current; // sorted
};

/// Bank of independent per-stream v.seen counters (Figure 7 semantics).
class ScalarMatcherBank {
public:
  ScalarMatcherBank(const std::vector<std::vector<uint32_t>> &Streams,
                    uint32_t HeadLength,
                    const std::vector<uint64_t> &SymbolPcs);

  /// Feeds one data reference (symbol \p Symbol at pc \p Pc); returns the
  /// streams whose heads completed.  Only streams with \p Pc among their
  /// head pcs are consulted — uninstrumented pcs leave counters untouched,
  /// exactly like the injected code of Figure 7.
  std::vector<StreamIndex> step(uint32_t Symbol, uint64_t Pc);

  /// Number of per-stream clause evaluations so far (the redundant-work
  /// metric of the ablation).
  uint64_t clauseEvaluations() const { return ClauseEvaluations; }

  void reset();

private:
  struct StreamState {
    uint32_t Seen = 0;
  };

  const std::vector<std::vector<uint32_t>> &Streams;
  uint32_t HeadLength;
  const std::vector<uint64_t> &SymbolPcs;
  std::vector<StreamState> SeenCounters;
  /// pc -> streams whose head references that pc.
  std::unordered_map<uint64_t, std::vector<StreamIndex>> PcToStreams;
  uint64_t ClauseEvaluations = 0;
};

} // namespace dfsm
} // namespace hds

#endif // HDS_DFSM_MATCHERS_H
