//===- dfsm/CheckCodeGen.h - Detection/prefetch code generation -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the prefix-matching DFSM into per-pc check tables — the shape of
/// the instrumentation the paper's optimizer injects with dynamic Vulcan
/// (Section 3.1, Figure 7):
///
///   a.pc:  if (accessing a.addr) {
///            if (state == s1) state = t1;        // specific transitions
///            else if (state == s2) state = t2;
///            else state = d(start, a);           // "initial match works
///          } else {                              //  regardless of v.seen"
///            state = 0;                          // failed match
///          }
///
/// Restart transitions — d(s, a) that equals d(start, a) — are folded
/// into the per-address *default* arm instead of one clause per state;
/// only transitions that advance beyond the restart behaviour need a
/// specific state compare.  This is what keeps the paper's injected check
/// counts near 2n for n streams (Table 2) even though the DFSM's full
/// transition function has an edge per (state, symbol) pair.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_DFSM_CHECKCODEGEN_H
#define HDS_DFSM_CHECKCODEGEN_H

#include "analysis/DataRef.h"
#include "dfsm/PrefixDfsm.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace dfsm {

/// One specific "(state == From)" clause inside an address group.
struct CheckClause {
  StateId FromState = 0;
  StateId ToState = 0;
  /// Streams completed by taking this transition (prefetch their tails).
  std::vector<StreamIndex> CompletedStreams;
};

/// One "(accessing addr)" outer branch: its specific state clauses plus
/// the default (restart) behaviour when none of them matches.
struct AddrGroupCode {
  uint64_t Addr = 0;
  std::vector<CheckClause> Specific; // ordered by FromState
  /// Where the default arm sends the state: d(start, a).
  StateId DefaultToState = 0;
  /// Completions fired by the default arm (non-empty only for streams
  /// whose whole head is this single symbol, i.e. headLen == 1).
  std::vector<StreamIndex> DefaultCompletions;
};

/// All code injected at one program point.
struct SiteCheckCode {
  uint64_t Pc = 0;
  std::vector<AddrGroupCode> Groups; // ordered by Addr

  /// Injected clause count: one default arm per address group plus the
  /// specific state compares.
  size_t clauseCount() const {
    size_t Count = Groups.size();
    for (const AddrGroupCode &Group : Groups)
      Count += Group.Specific.size();
    return Count;
  }
};

/// The complete injectable artifact for one optimization cycle.
struct CheckCode {
  std::vector<SiteCheckCode> Sites; // ascending pc

  size_t totalClauses() const {
    size_t Total = 0;
    for (const SiteCheckCode &Site : Sites)
      Total += Site.clauseCount();
    return Total;
  }

  /// Pretty-prints the generated checks in the style of Figure 7 (used by
  /// the grammar-explorer example and tests).
  std::string dump() const;
};

/// Generates the per-pc check tables for \p Dfsm; \p Refs maps the DFSM's
/// symbol ids back to concrete (pc, addr) pairs.
CheckCode generateCheckCode(const PrefixDfsm &Dfsm,
                            const analysis::DataRefTable &Refs);

/// Size of the code the *naive* per-stream scheme (one v.seen variable and
/// independent checks per stream, Section 3.1's straw man) would inject:
/// one clause per (stream, head position).  Used by the DFSM ablation.
struct NaiveCheckStats {
  size_t Sites = 0;   // distinct pcs instrumented
  size_t Clauses = 0; // total injected clauses
};
NaiveCheckStats
computeNaiveCheckStats(const std::vector<std::vector<uint32_t>> &Streams,
                       uint32_t HeadLength, const analysis::DataRefTable &Refs);

} // namespace dfsm
} // namespace hds

#endif // HDS_DFSM_CHECKCODEGEN_H
