//===- dfsm/PrefixDfsm.cpp - Combined stream prefix matcher ---------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "dfsm/PrefixDfsm.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>

using namespace hds;
using namespace hds::dfsm;

PrefixDfsm::PrefixDfsm(const std::vector<std::vector<uint32_t>> &Streams,
                       const DfsmConfig &Cfg)
    : Config(Cfg) {
  assert(Config.HeadLength >= 1 && "heads must have at least one symbol");

  // Streams that are all head and no tail cannot be prefetched.
  std::vector<StreamIndex> Eligible;
  for (StreamIndex I = 0; I < Streams.size(); ++I) {
    if (Streams[I].size() > Config.HeadLength)
      Eligible.push_back(I);
    else
      ++SkippedStreams;
  }

  // The prefix alphabet and the per-symbol list of streams starting with
  // that symbol (the "union { [w,1] | a == w_1 }" part of d).
  std::unordered_set<uint32_t> AlphabetSet;
  std::unordered_map<uint32_t, std::vector<StreamIndex>> StartsWith;
  for (StreamIndex I : Eligible) {
    StartsWith[Streams[I][0]].push_back(I);
    for (uint32_t Pos = 0; Pos < Config.HeadLength; ++Pos)
      AlphabetSet.insert(Streams[I][Pos]);
  }
  // hds-lint: ordered-ok(copied out and sorted on the next line)
  PrefixAlphabet.assign(AlphabetSet.begin(), AlphabetSet.end());
  std::sort(PrefixAlphabet.begin(), PrefixAlphabet.end());

  // Canonical state interning.  std::map over the sorted element vector
  // keeps construction deterministic.
  std::map<std::vector<StateElement>, StateId> Interned;
  auto InternState = [&](std::vector<StateElement> Elements) -> StateId {
    std::sort(Elements.begin(), Elements.end());
    auto It = Interned.find(Elements);
    if (It != Interned.end())
      return It->second;
    const StateId Id = static_cast<StateId>(States.size());
    State NewState;
    for (const StateElement &E : Elements)
      if (E.Seen == Config.HeadLength)
        NewState.Completions.push_back(E.Stream);
    NewState.Elements = std::move(Elements);
    Interned.emplace(NewState.Elements, Id);
    States.push_back(std::move(NewState));
    return Id;
  };

  const StateId StartId = InternState({});
  (void)StartId;
  assert(StartId == 0 && "start state must be state 0");

  std::vector<StateId> WorkList;
  WorkList.push_back(0);
  std::vector<uint8_t> Expanded(1, 0);

  while (!WorkList.empty()) {
    const StateId Current = WorkList.back();
    WorkList.pop_back();
    if (Expanded[Current])
      continue;
    Expanded[Current] = 1;

    // Candidate symbols: whatever advances an element of this state, plus
    // every stream-initial symbol (Figure 9's two addTransition loops).
    std::vector<uint32_t> Candidates;
    for (const StateElement &E : States[Current].Elements)
      if (E.Seen < Config.HeadLength)
        Candidates.push_back(Streams[E.Stream][E.Seen]);
    // hds-lint: ordered-ok(candidate symbols are sorted and deduplicated below)
    for (const auto &Entry : StartsWith)
      Candidates.push_back(Entry.first);
    std::sort(Candidates.begin(), Candidates.end());
    Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                     Candidates.end());

    for (uint32_t Symbol : Candidates) {
      const uint64_t Key = transitionKey(Current, Symbol);
      if (Transitions.count(Key))
        continue;

      std::vector<StateElement> Target;
      for (const StateElement &E : States[Current].Elements)
        if (E.Seen < Config.HeadLength &&
            Streams[E.Stream][E.Seen] == Symbol)
          Target.push_back({E.Stream, E.Seen + 1});
      auto StartIt = StartsWith.find(Symbol);
      if (StartIt != StartsWith.end())
        for (StreamIndex S : StartIt->second)
          Target.push_back({S, 1});
      // Advancing from [v,1] on v's (repeated) first symbol would add
      // [v,1] twice via advance + restart when v_1 == v_2 == a; dedup.
      std::sort(Target.begin(), Target.end());
      Target.erase(std::unique(Target.begin(), Target.end()), Target.end());

      if (Target.empty())
        continue; // implicit edge to the start state

      if (States.size() >= Config.MaxStates &&
          !Interned.count(Target)) {
        HitStateLimit = true;
        continue;
      }

      const StateId TargetId = InternState(std::move(Target));
      if (TargetId >= Expanded.size())
        Expanded.resize(TargetId + 1, 0);
      if (!Expanded[TargetId])
        WorkList.push_back(TargetId);
      Transitions.emplace(Key, TargetId);
    }
  }
}
