//===- dfsm/CheckCodeGen.cpp - Detection/prefetch code generation ---------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "dfsm/CheckCodeGen.h"

#include "support/Table.h"

#include <algorithm>
#include <map>
#include <set>

using namespace hds;
using namespace hds::dfsm;
using hds::analysis::DataRefTable;

CheckCode hds::dfsm::generateCheckCode(const PrefixDfsm &Dfsm,
                                       const DataRefTable &Refs) {
  // Bucket transitions by (pc, addr), i.e. by symbol.
  struct SymbolTransitions {
    uint32_t Symbol;
    std::vector<std::pair<StateId, StateId>> Edges; // (From, To)
  };
  std::map<std::pair<uint64_t, uint64_t>, SymbolTransitions> BySymbol;
  // hds-lint: ordered-ok(entries are re-keyed into the std::map and edge lists are sorted before use)
  for (const auto &Entry : Dfsm.transitions()) {
    const StateId From = PrefixDfsm::keyState(Entry.first);
    const uint32_t Symbol = PrefixDfsm::keySymbol(Entry.first);
    const analysis::DataRef &Ref = Refs.refOf(Symbol);
    auto &Bucket = BySymbol[{Ref.Pc, Ref.Addr}];
    Bucket.Symbol = Symbol;
    Bucket.Edges.emplace_back(From, Entry.second);
  }

  std::map<uint64_t, SiteCheckCode> ByPc;
  for (auto &Entry : BySymbol) {
    const uint64_t Pc = Entry.first.first;
    const uint64_t Addr = Entry.first.second;
    SymbolTransitions &Bucket = Entry.second;

    AddrGroupCode Group;
    Group.Addr = Addr;
    // The default arm implements the "initial match works regardless"
    // behaviour of Figure 7: with no specific state compare matching,
    // observing this reference restarts matching at d(start, a).
    Group.DefaultToState = Dfsm.step(0, Bucket.Symbol);
    if (Group.DefaultToState != 0)
      Group.DefaultCompletions = Dfsm.completionsAt(Group.DefaultToState);

    std::sort(Bucket.Edges.begin(), Bucket.Edges.end());
    for (const auto &[From, To] : Bucket.Edges) {
      // Transitions indistinguishable from the default arm need no
      // specific clause; this is what keeps the injected check count
      // near the number of state elements rather than states * symbols.
      if (To == Group.DefaultToState)
        continue;
      CheckClause Clause;
      Clause.FromState = From;
      Clause.ToState = To;
      Clause.CompletedStreams = Dfsm.completionsAt(To);
      Group.Specific.push_back(std::move(Clause));
    }

    SiteCheckCode &Site = ByPc[Pc];
    Site.Pc = Pc;
    Site.Groups.push_back(std::move(Group));
  }

  CheckCode Code;
  Code.Sites.reserve(ByPc.size());
  for (auto &Entry : ByPc) {
    std::sort(Entry.second.Groups.begin(), Entry.second.Groups.end(),
              [](const AddrGroupCode &A, const AddrGroupCode &B) {
                return A.Addr < B.Addr;
              });
    Code.Sites.push_back(std::move(Entry.second));
  }
  return Code;
}

std::string CheckCode::dump() const {
  std::string Out;
  auto AppendCompletions = [&](const std::vector<StreamIndex> &Streams) {
    if (Streams.empty())
      return;
    Out += " prefetch tails of streams {";
    for (size_t I = 0; I < Streams.size(); ++I)
      Out += formatString("%s%u", I ? ", " : "", Streams[I]);
    Out += "};";
  };

  for (const SiteCheckCode &Site : Sites) {
    Out += formatString("pc %llu:\n", (unsigned long long)Site.Pc);
    for (const AddrGroupCode &Group : Site.Groups) {
      Out += formatString("  if (accessing %llu) {\n",
                          (unsigned long long)Group.Addr);
      for (const CheckClause &Clause : Group.Specific) {
        Out += formatString("    if (state == %u) state = %u;",
                            Clause.FromState, Clause.ToState);
        AppendCompletions(Clause.CompletedStreams);
        Out += '\n';
      }
      Out += formatString("    else state = %u;", Group.DefaultToState);
      AppendCompletions(Group.DefaultCompletions);
      Out += "\n  } else state = 0;\n";
    }
  }
  return Out;
}

NaiveCheckStats hds::dfsm::computeNaiveCheckStats(
    const std::vector<std::vector<uint32_t>> &Streams, uint32_t HeadLength,
    const DataRefTable &Refs) {
  NaiveCheckStats Stats;
  std::set<uint64_t> Pcs;
  for (const auto &Stream : Streams) {
    if (Stream.size() <= HeadLength)
      continue;
    for (uint32_t Pos = 0; Pos < HeadLength; ++Pos) {
      Pcs.insert(Refs.refOf(Stream[Pos]).Pc);
      ++Stats.Clauses; // one seen-check clause per (stream, position)
    }
  }
  Stats.Sites = Pcs.size();
  return Stats;
}
