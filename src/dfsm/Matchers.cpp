//===- dfsm/Matchers.cpp - Reference and scalar prefix matchers -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "dfsm/Matchers.h"

#include <algorithm>
#include <cassert>

using namespace hds;
using namespace hds::dfsm;

//===----------------------------------------------------------------------===//
// ReferenceMatcher
//===----------------------------------------------------------------------===//

ReferenceMatcher::ReferenceMatcher(
    const std::vector<std::vector<uint32_t>> &HotStreams, uint32_t HeadLen)
    : Streams(HotStreams), HeadLength(HeadLen) {
  assert(HeadLength >= 1 && "heads must have at least one symbol");
  for (StreamIndex I = 0; I < Streams.size(); ++I)
    if (Streams[I].size() > HeadLength)
      Eligible.push_back(I);
}

std::vector<StreamIndex> ReferenceMatcher::step(uint32_t Symbol) {
  std::vector<StateElement> Next;
  // Advance elements whose next head symbol is Symbol; drop the rest.
  for (const StateElement &E : Current)
    if (E.Seen < HeadLength && Streams[E.Stream][E.Seen] == Symbol)
      Next.push_back({E.Stream, E.Seen + 1});
  // Restart every stream whose head begins with Symbol.
  for (StreamIndex S : Eligible)
    if (Streams[S][0] == Symbol)
      Next.push_back({S, 1});
  std::sort(Next.begin(), Next.end());
  Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
  Current = std::move(Next);

  std::vector<StreamIndex> Completed;
  for (const StateElement &E : Current)
    if (E.Seen == HeadLength)
      Completed.push_back(E.Stream);
  return Completed;
}

//===----------------------------------------------------------------------===//
// ScalarMatcherBank
//===----------------------------------------------------------------------===//

ScalarMatcherBank::ScalarMatcherBank(
    const std::vector<std::vector<uint32_t>> &HotStreams, uint32_t HeadLen,
    const std::vector<uint64_t> &Pcs)
    : Streams(HotStreams), HeadLength(HeadLen), SymbolPcs(Pcs),
      SeenCounters(Streams.size()) {
  for (StreamIndex I = 0; I < Streams.size(); ++I) {
    if (Streams[I].size() <= HeadLength)
      continue;
    for (uint32_t Pos = 0; Pos < HeadLength; ++Pos) {
      const uint64_t Pc = SymbolPcs.at(Streams[I][Pos]);
      auto &List = PcToStreams[Pc];
      if (std::find(List.begin(), List.end(), I) == List.end())
        List.push_back(I);
    }
  }
}

std::vector<StreamIndex> ScalarMatcherBank::step(uint32_t Symbol,
                                                 uint64_t Pc) {
  std::vector<StreamIndex> Completed;
  auto It = PcToStreams.find(Pc);
  if (It == PcToStreams.end())
    return Completed;

  for (StreamIndex S : It->second) {
    ++ClauseEvaluations;
    StreamState &State = SeenCounters[S];
    const auto &Head = Streams[S];
    if (State.Seen < HeadLength && Head[State.Seen] == Symbol) {
      ++State.Seen;
      if (State.Seen == HeadLength) {
        Completed.push_back(S);
        State.Seen = 0; // re-arm after a complete match (Figure 7)
      }
    } else if (Head[0] == Symbol) {
      // Failed to extend, but this reference restarts the head.
      State.Seen = 1;
      if (State.Seen == HeadLength) {
        Completed.push_back(S);
        State.Seen = 0;
      }
    } else {
      State.Seen = 0;
    }
  }
  return Completed;
}

void ScalarMatcherBank::reset() {
  for (StreamState &State : SeenCounters)
    State.Seen = 0;
  ClauseEvaluations = 0;
}
