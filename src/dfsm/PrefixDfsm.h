//===- dfsm/PrefixDfsm.h - Combined stream prefix matcher ------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic finite state machine that simultaneously tracks
/// matching prefixes for all hot data streams (Sections 3 and 3.1,
/// Figures 8 and 9 of the paper).
///
/// A state is a set of state elements; a state element is a pair of a hot
/// data stream v and an integer seen, meaning "the last seen data
/// references ended with the first `seen` references of v.head".  The
/// transition function is
///
///   d(s, a) = { [v, n+1] | n < headLen && [v, n] in s && a == v_{n+1} }
///       union { [w, 1]   | a == w_1 }
///
/// Elements that reach seen == headLen are complete matches: entering such
/// a state triggers prefetches for the tails of the completed streams.
/// Transitions to the (empty) start state are implicit: stepping on a
/// symbol with no recorded transition resets matching, exactly like the
/// "else v.seen = 0" arms of Figure 7.
///
/// The machine is built with the lazy work-list algorithm of Figure 9.
/// Although there are up to 2^(headLen*n) possible states, the paper (and
/// this implementation's tests) observe close to headLen*n + 1 in
/// practice.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_DFSM_PREFIXDFSM_H
#define HDS_DFSM_PREFIXDFSM_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hds {
namespace dfsm {

/// Index of a hot data stream in the stream list the DFSM was built from.
using StreamIndex = uint32_t;

/// Dense state number; the start state (empty element set) is always 0.
using StateId = uint32_t;

/// One element [v, seen] of a DFSM state.
struct StateElement {
  StreamIndex Stream;
  uint32_t Seen;

  friend bool operator==(const StateElement &A, const StateElement &B) {
    return A.Stream == B.Stream && A.Seen == B.Seen;
  }
  friend bool operator<(const StateElement &A, const StateElement &B) {
    return A.Stream != B.Stream ? A.Stream < B.Stream : A.Seen < B.Seen;
  }
};

/// Construction knobs.
struct DfsmConfig {
  /// Number of stream references to match before prefetching the rest —
  /// the paper's evaluation uses 2 (Section 4.3).
  uint32_t HeadLength = 2;
  /// Safety valve against the theoretical exponential blow-up; if reached,
  /// construction stops expanding and unexpanded states simply reset.
  uint32_t MaxStates = 1 << 16;
};

/// The combined prefix-matching DFSM.
class PrefixDfsm {
public:
  /// Builds the machine for \p Streams (each a reference-id sequence).
  /// Streams with length <= HeadLength carry no prefetchable tail and are
  /// ignored (their count is available via skippedStreamCount()).
  PrefixDfsm(const std::vector<std::vector<uint32_t>> &Streams,
             const DfsmConfig &Config);

  StateId startState() const { return 0; }
  uint32_t headLength() const { return Config.HeadLength; }

  size_t stateCount() const { return States.size(); }
  size_t transitionCount() const { return Transitions.size(); }
  size_t skippedStreamCount() const { return SkippedStreams; }
  bool hitStateLimit() const { return HitStateLimit; }

  /// Runtime step: observing symbol \p Symbol in state \p From.  Returns
  /// the successor (the start state when no transition matches, modelling
  /// a failed match).
  StateId step(StateId From, uint32_t Symbol) const {
    auto It = Transitions.find(transitionKey(From, Symbol));
    return It == Transitions.end() ? 0 : It->second;
  }

  /// Streams whose heads complete upon *entering* \p State.  Every entry
  /// into this state is a fresh complete match (the final head symbol is
  /// the transition that led here), so callers prefetch each time.
  const std::vector<StreamIndex> &completionsAt(StateId Id) const {
    return States.at(Id).Completions;
  }

  /// Elements of \p State, sorted (tests and debugging).
  const std::vector<StateElement> &elementsOf(StateId Id) const {
    return States.at(Id).Elements;
  }

  /// All symbols appearing in any stream head, i.e. the program points
  /// that need check instrumentation.
  const std::vector<uint32_t> &prefixAlphabet() const {
    return PrefixAlphabet;
  }

  /// The (From, Symbol) -> To transition map (used by code generation).
  const std::unordered_map<uint64_t, StateId> &transitions() const {
    return Transitions;
  }

  /// Decodes a transition key (inverse of the packing used by the map).
  static StateId keyState(uint64_t Key) {
    return static_cast<StateId>(Key >> 32);
  }
  static uint32_t keySymbol(uint64_t Key) {
    return static_cast<uint32_t>(Key);
  }

private:
  struct State {
    std::vector<StateElement> Elements; // sorted, canonical
    std::vector<StreamIndex> Completions;
  };

  static uint64_t transitionKey(StateId From, uint32_t Symbol) {
    return (static_cast<uint64_t>(From) << 32) | Symbol;
  }

  DfsmConfig Config;
  std::vector<State> States;
  std::unordered_map<uint64_t, StateId> Transitions;
  std::vector<uint32_t> PrefixAlphabet;
  size_t SkippedStreams = 0;
  bool HitStateLimit = false;
};

} // namespace dfsm
} // namespace hds

#endif // HDS_DFSM_PREFIXDFSM_H
