//===- workloads/ChainNoiseWorkload.h - Common benchmark shape -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-behaviour skeleton all six benchmarks share: an outer sweep
/// that walks a set of hot pointer chains in a fixed order (the hot data
/// streams), interleaved with cold-region traffic (the cache-filling
/// references that make the chains miss on re-walk).  Each benchmark
/// instantiates the skeleton with its own shape parameters and hooks in
/// its own extra structure — probe tables, descriptor indirections,
/// result stores — so the six programs differ where their namesakes
/// differ: stream count and length, allocation layout, compute density,
/// check density, and cold-traffic volume (DESIGN.md §1).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_WORKLOADS_CHAINNOISEWORKLOAD_H
#define HDS_WORKLOADS_CHAINNOISEWORKLOAD_H

#include "workloads/ChainSet.h"
#include "workloads/NoiseRegion.h"
#include "workloads/Workload.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace workloads {

/// Shape parameters of one benchmark.
struct BenchParams {
  std::string Name;
  ChainSetConfig Chains;

  /// The *warm* working set: a small fixed region cycled every sweep so
  /// that (chains + warm region) exceed L1 capacity and LRU-thrash — every
  /// re-walk of a chain misses L1 but hits L2.  These are the stalls
  /// stream prefetching hides.
  NoiseRegionConfig WarmNoise;
  uint64_t WarmRefsPerChain = 8;
  uint64_t WarmRefsPerSweep = 0;

  /// The *cold* streaming traffic: a multi-megabyte region walked with a
  /// wrap-around cursor whose blocks always miss to memory.  It keeps the
  /// benchmark memory-performance-limited and dilutes the achievable gain
  /// — the knob that spreads the six benchmarks across the paper's 5–19%
  /// range.
  NoiseRegionConfig ColdNoise;
  uint64_t ColdRefsPerChain = 0;
  uint64_t ColdRefsPerSweep = 100;

  /// Whether a per-chain result store is issued after each walk.
  bool StoreCostPerChain = true;
  /// Every N-th chain walk is followed by a head-only touch of another
  /// chain (a pointer peek without traversal).  0 disables.  Touches make
  /// a one-reference prefix ambiguous — the paper's reason for matching
  /// two references before prefetching (Section 4.3).
  uint32_t TouchEveryNChains = 2;
  /// Computation at the end of every sweep.
  uint64_t ComputePerSweep = 50;
  uint64_t DefaultIterations = 30'000;
};

/// Base class implementing the sweep loop; benchmarks customize via the
/// three hooks.
class ChainNoiseWorkload : public Workload {
public:
  explicit ChainNoiseWorkload(BenchParams P) : Params(std::move(P)) {}

  const char *name() const override { return Params.Name.c_str(); }
  void setup(core::Runtime &Rt) override;
  void run(core::Runtime &Rt, uint64_t Iterations) override;
  uint64_t defaultIterations() const override {
    return Params.DefaultIterations;
  }

  const ChainSet &chains() const { return HotChains; }

protected:
  /// Benchmark-specific setup after the common structures exist.
  virtual void setupExtra(core::Runtime &Rt) { (void)Rt; }
  /// Runs (inside the main procedure) immediately before chain \p Index.
  virtual void beforeChain(core::Runtime &Rt, uint32_t Index) {
    (void)Rt;
    (void)Index;
  }
  /// Runs (inside the main procedure) immediately after chain \p Index.
  virtual void afterChain(core::Runtime &Rt, uint32_t Index) {
    (void)Rt;
    (void)Index;
  }
  /// Runs at the end of every sweep.
  virtual void sweepExtra(core::Runtime &Rt, uint64_t Iteration) {
    (void)Rt;
    (void)Iteration;
  }

  /// Interleaved warm + cold traffic after chain \p Index (also used by
  /// subclasses that override run()).
  void noiseAfterChain(core::Runtime &Rt);
  /// Warm + cold traffic at the end of a sweep.
  void noiseAfterSweep(core::Runtime &Rt);
  /// Head-only peek after every TouchEveryNChains-th walk.
  void maybeTouch(core::Runtime &Rt, uint32_t Index);

  BenchParams Params;
  ChainSet HotChains;
  NoiseRegion WarmRegion;
  NoiseRegion ColdRegion;
  vulcan::ProcId MainProc = 0;
  vulcan::SiteId CostSite = 0;
  std::vector<memsim::Addr> CostSlots;
};

} // namespace workloads
} // namespace hds

#endif // HDS_WORKLOADS_CHAINNOISEWORKLOAD_H
