//===- workloads/Parser.cpp - Link-grammar parser analogue -----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// parser looks words up in a dictionary whose entries hang off hash
// buckets as linked lists built at load time — consecutive list nodes are
// *sequentially allocated*.  The per-word list walks are the hot data
// streams, and because the lists are contiguous, prefetching the blocks
// that sequentially follow a matched reference happens to fetch the right
// data: parser is the one benchmark where the paper's Seq-pref straw man
// wins (~5%), while Dyn-pref still does better.  parser also has the
// suite's densest dynamic checks (~6% Base overhead): short loops,
// frequent calls.
//
//===----------------------------------------------------------------------===//

#include "workloads/Benchmarks.h"
#include "workloads/ChainNoiseWorkload.h"

using namespace hds;
using namespace hds::workloads;

namespace {

BenchParams parserParams() {
  BenchParams P;
  P.Name = "parser";
  // Dictionary bucket lists: sequentially allocated (ScatterPadBytes 0).
  P.Chains.NumChains = 24;
  P.Chains.NodesPerChain = 20;
  P.Chains.WalkerProcs = 9;
  P.Chains.NodeBytes = 32;
  P.Chains.ScatterPadBytes = 0;
  P.Chains.ComputePerHop = 2;
  P.Chains.HopsPerCheck = 4; // dense checks, but bursts still span walks
  // Linkage working buffers: warm per-sentence scratch.
  P.WarmNoise.Bytes = 11 * 1024;
  P.WarmNoise.StrideBytes = 32;
  P.WarmNoise.RefsPerCheck = 8; // dense checks here too
  P.WarmNoise.ComputePerRef = 1;
  P.WarmRefsPerChain = 11;
  P.WarmRefsPerSweep = 6;
  // Sentence text and expression memory: cold streaming traffic.
  P.ColdNoise.Bytes = 2 * 512 * 1024;
  P.ColdNoise.StrideBytes = 32;
  P.ColdNoise.RefsPerCheck = 8;
  P.ColdNoise.ComputePerRef = 1;
  P.ColdRefsPerChain = 0;
  P.ColdRefsPerSweep = 110;
  P.StoreCostPerChain = false; // lookups don't write the dictionary
  P.ComputePerSweep = 60;
  P.DefaultIterations = 20'000;
  return P;
}

/// The sentence-processing benchmark: each word lookup first probes the
/// hash table (two probes into a table that stays cache resident), then
/// walks the bucket's list.  Besides the sequentially allocated
/// dictionary lists, parser also chases scattered expression trees built
/// during linkage — so only *some* of its hot data streams are
/// sequentially allocated, which is why the paper finds Seq-pref helps
/// parser (~5%) while Dyn-pref helps more.
class ParserWorkload : public ChainNoiseWorkload {
public:
  ParserWorkload() : ChainNoiseWorkload(parserParams()) {}

  void setupExtra(core::Runtime &Rt) override {
    ProbeSite = Rt.declareSite(MainProc, "hash[h]");
    ProbeTable = Rt.allocate(64 * 8, 64);

    // Expression trees: scattered chains walked every other lookup.
    ChainSetConfig Scattered = Params.Chains;
    Scattered.NumChains = 12;
    Scattered.NodesPerChain = 16;
    Scattered.WalkerProcs = 4;
    Scattered.ScatterPadBytes = 720;
    ExpressionChains.setup(Rt, Scattered, "parser_expr");
  }

  void beforeChain(core::Runtime &Rt, uint32_t Index) override {
    // Two hash probes per lookup; the table is small and stays hot.
    Rt.load(ProbeSite, ProbeTable + (Index % 64) * 8);
    Rt.load(ProbeSite, ProbeTable + ((Index * 7 + 3) % 64) * 8);
    Rt.compute(2);
  }

  void afterChain(core::Runtime &Rt, uint32_t Index) override {
    if (Index % 2 == 0)
      ExpressionChains.walk(Rt, Index / 2);
  }

private:
  vulcan::SiteId ProbeSite = 0;
  memsim::Addr ProbeTable = 0;
  ChainSet ExpressionChains;
};

} // namespace

std::unique_ptr<Workload> hds::workloads::createParser() {
  return std::make_unique<ParserWorkload>();
}
