//===- workloads/NoiseRegion.cpp - Cold-data traffic generator ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/NoiseRegion.h"

#include "support/Rng.h"
#include "support/Table.h"

#include <cassert>

using namespace hds;
using namespace hds::workloads;

void NoiseRegion::setup(core::Runtime &Rt, const NoiseRegionConfig &NewConfig,
                        const std::string &NamePrefix) {
  Config = NewConfig;
  assert(Config.Bytes > 0 && Config.StrideBytes > 0 && "degenerate region");
  Proc = Rt.declareProcedure(formatString("%s_scan", NamePrefix.c_str()));
  Site = Rt.declareSite(Proc, "region[cursor]");
  Base = Rt.allocate(Config.Bytes, 64);
  Cursor = 0;

  if (Config.ShuffleBlocks) {
    // Deterministic Fisher-Yates permutation of the region's blocks,
    // seeded by the region name so different regions interleave
    // differently.
    const uint64_t Blocks = Config.Bytes / 32;
    BlockOrder.resize(Blocks);
    for (uint64_t B = 0; B < Blocks; ++B)
      BlockOrder[B] = static_cast<uint32_t>(B);
    Rng Shuffler(0x5EEDC01D ^ NamePrefix.size() ^
                 (NamePrefix.empty() ? 0 : uint64_t(NamePrefix[0]) << 40));
    for (uint64_t B = Blocks; B > 1; --B) {
      const uint64_t J = Shuffler.nextBelow(B);
      std::swap(BlockOrder[B - 1], BlockOrder[J]);
    }
  }
}

void NoiseRegion::step(core::Runtime &Rt, uint64_t Refs) {
  if (Refs == 0)
    return;
  core::Runtime::ProcedureScope Scope(Rt, Proc);
  // Countdown instead of `(I + 1) % RefsPerCheck`: the modulo by a
  // runtime value is an integer divide on every reference, in a loop
  // whose whole body is a couple dozen instructions.
  uint32_t UntilCheck = Config.RefsPerCheck;
  for (uint64_t I = 0; I < Refs; ++I) {
    memsim::Addr Target = Base + Cursor;
    if (Config.ShuffleBlocks) {
      // The cursor still sweeps the region linearly (same coverage and
      // wrap period); the permutation only scrambles which block each
      // position maps to.
      const uint64_t Block = Cursor / 32;
      const uint64_t Offset = Cursor % 32;
      Target = Base + uint64_t{BlockOrder[Block]} * 32 + Offset;
    }
    Rt.load(Site, Target);
    Rt.compute(Config.ComputePerRef);
    Cursor += Config.StrideBytes;
    if (Cursor + 8 > Config.Bytes)
      Cursor = 0;
    if (--UntilCheck == 0) {
      Rt.loopBackEdge();
      UntilCheck = Config.RefsPerCheck;
    }
  }
}
