//===- workloads/TwoPhase.cpp - Phase-changing benchmark -------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// A program with distinct phase behaviour: the first quarter of the run
// walks one set of hot pointer chains (a build/initialization phase),
// the rest walks a disjoint set (the steady state).  The paper's case
// for a *dynamic* scheme rests on exactly this program class ("for
// programs with distinct phase behavior, a dynamic prefetching scheme
// that adapts to program phase transitions may perform better",
// Section 1): anything trained once on the early phase prefetches
// nothing useful for the rest of the run.
//
//===----------------------------------------------------------------------===//

#include "workloads/Benchmarks.h"
#include "workloads/ChainSet.h"
#include "workloads/NoiseRegion.h"

using namespace hds;
using namespace hds::workloads;

namespace {

class TwoPhaseWorkload : public Workload {
public:
  const char *name() const override { return "twophase"; }

  void setup(core::Runtime &Rt) override {
    ChainSetConfig Chains;
    Chains.NumChains = 24;
    Chains.NodesPerChain = 16;
    Chains.WalkerProcs = 6;
    Chains.ScatterPadBytes = 96;
    Chains.ComputePerHop = 2;
    PhaseA.setup(Rt, Chains, "phaseA");
    PhaseB.setup(Rt, Chains, "phaseB");

    NoiseRegionConfig NoiseConfig;
    NoiseConfig.Bytes = 12 * 1024;
    NoiseConfig.StrideBytes = 32;
    Noise.setup(Rt, NoiseConfig, "twophase");
  }

  void run(core::Runtime &Rt, uint64_t Iterations) override {
    for (uint64_t It = 0; It < Iterations; ++It) {
      const bool InPhaseA = It < Iterations / 4;
      ChainSet &Active = InPhaseA ? PhaseA : PhaseB;
      for (uint32_t C = 0; C < Active.chainCount(); ++C) {
        Active.walk(Rt, C);
        Noise.step(Rt, 10);
      }
      Noise.step(Rt, 40);
    }
  }

  uint64_t defaultIterations() const override { return 48'000; }

private:
  ChainSet PhaseA;
  ChainSet PhaseB;
  NoiseRegion Noise;
};

} // namespace

std::unique_ptr<Workload> hds::workloads::createTwoPhase() {
  return std::make_unique<TwoPhaseWorkload>();
}
