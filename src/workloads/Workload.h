//===- workloads/Workload.h - Benchmark interface and factory --*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark interface and factory for the six programs standing in
/// for the paper's evaluation suite (memory-performance-limited
/// SPECint2000 benchmarks plus boxsim, Section 4.1).  Each workload is a
/// deterministic pointer-chasing program written against the core
/// Runtime; DESIGN.md §1 explains the substitution and how each workload
/// mirrors its namesake's memory behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_WORKLOADS_WORKLOAD_H
#define HDS_WORKLOADS_WORKLOAD_H

#include "core/Runtime.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hds {
namespace workloads {

/// A deterministic benchmark program.
class Workload {
public:
  virtual ~Workload();

  /// Short name matching the paper's figures ("vpr", "mcf", ...).
  virtual const char *name() const = 0;

  /// Declares procedures and data access sites and allocates the data
  /// structures.  Must be called exactly once, before run().
  virtual void setup(core::Runtime &Rt) = 0;

  /// Executes \p Iterations outer iterations (routing passes, simplex
  /// pivots, placement sweeps, ... depending on the benchmark).
  virtual void run(core::Runtime &Rt, uint64_t Iterations) = 0;

  /// Iteration count giving a run long enough for several optimization
  /// cycles at the default tracing configuration.
  virtual uint64_t defaultIterations() const = 0;
};

/// Creates a workload by name; returns nullptr for unknown names.
std::unique_ptr<Workload> createWorkload(const std::string &Name);

/// All benchmark names, in the paper's figure order:
/// vpr, mcf, twolf, parser, vortex, boxsim.
std::vector<std::string> allWorkloadNames();

} // namespace workloads
} // namespace hds

#endif // HDS_WORKLOADS_WORKLOAD_H
