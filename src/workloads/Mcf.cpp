//===- workloads/Mcf.cpp - Network-simplex analogue ------------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// mcf solves a minimum-cost flow problem with the network simplex method:
// it repeatedly walks basis paths in a spanning tree (parent-pointer
// chases) and scans large arc arrays while pricing.  The basis-path walks
// are the hot data streams; the arc pricing scans are the cold traffic
// that keeps mcf memory bound.  mcf has the paper's lowest dynamic-check
// overhead (few procedures, long loops) — modelled with sparser checks.
//
//===----------------------------------------------------------------------===//

#include "workloads/Benchmarks.h"
#include "workloads/ChainNoiseWorkload.h"

using namespace hds;
using namespace hds::workloads;

namespace {

BenchParams mcfParams() {
  BenchParams P;
  P.Name = "mcf";
  // Basis paths: tree-node chains, cheap per-hop work.
  P.Chains.NumChains = 36;
  P.Chains.NodesPerChain = 14;
  P.Chains.WalkerProcs = 6;
  P.Chains.NodeBytes = 48; // mcf nodes are fat structs
  P.Chains.ScatterPadBytes = 720;
  P.Chains.ComputePerHop = 1;
  P.Chains.HopsPerCheck = 5;
  // Node potentials: warm per-sweep working data.
  P.WarmNoise.Bytes = 10 * 1024;
  P.WarmNoise.StrideBytes = 32;
  P.WarmNoise.RefsPerCheck = 8;
  P.WarmNoise.ComputePerRef = 1;
  P.WarmRefsPerChain = 7;
  P.WarmRefsPerSweep = 0;
  // Arc pricing scans: heavy, genuinely cold streaming traffic (mcf's
  // dominant miss source).
  P.ColdNoise.Bytes = 5 * 512 * 1024;
  P.ColdNoise.StrideBytes = 32;
  P.ColdNoise.RefsPerCheck = 8;
  P.ColdNoise.ComputePerRef = 1;
  P.ColdRefsPerChain = 3;
  P.ColdRefsPerSweep = 160;
  P.StoreCostPerChain = true;
  P.ComputePerSweep = 30;
  P.DefaultIterations = 38'000;
  return P;
}

/// The simplex-pivot benchmark.  Every pivot rotates which basis path is
/// examined first — the stream set is unchanged but the inter-stream
/// order varies, like real pivot selection.
class McfWorkload : public ChainNoiseWorkload {
public:
  McfWorkload() : ChainNoiseWorkload(mcfParams()) {}

  void run(core::Runtime &Rt, uint64_t Iterations) override {
    const uint32_t Count = HotChains.chainCount();
    for (uint64_t It = 0; It < Iterations; ++It) {
      core::Runtime::ProcedureScope Main(Rt, MainProc);
      const uint32_t First = static_cast<uint32_t>(It % Count);
      for (uint32_t I = 0; I < Count; ++I) {
        const uint32_t C = (First + I) % Count;
        HotChains.walk(Rt, C);
        Rt.store(CostSite, CostSlots[C]);
        maybeTouch(Rt, C);
        noiseAfterChain(Rt);
      }
      noiseAfterSweep(Rt);
      Rt.compute(Params.ComputePerSweep);
    }
  }
};

} // namespace

std::unique_ptr<Workload> hds::workloads::createMcf() {
  return std::make_unique<McfWorkload>();
}
