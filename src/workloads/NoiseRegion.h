//===- workloads/NoiseRegion.h - Cold-data traffic generator ---*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic cold-data traffic: a large region walked with a fixed
/// stride, wrapping around.  This is the part of a benchmark's reference
/// stream that is *not* a hot data stream — it evicts the hot chains from
/// L1 between walks (so their re-references miss and prefetching has
/// something to hide), contributes the memory-level misses that make the
/// benchmarks memory-performance-limited, and never repeats the same
/// (pc, addr) sequence, so the analysis correctly leaves it alone.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_WORKLOADS_NOISEREGION_H
#define HDS_WORKLOADS_NOISEREGION_H

#include "core/Runtime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace workloads {

/// Shape of the cold region and its scan loop.
struct NoiseRegionConfig {
  uint64_t Bytes = 2 * 1024 * 1024;
  /// Address increment between consecutive scan references.  With a
  /// 32-byte block, a stride of 4 touches each block 8 times before
  /// moving on (1/8 of scan references miss).
  uint64_t StrideBytes = 4;
  /// Loop back-edge checks execute every this many references.
  uint32_t RefsPerCheck = 8;
  /// Computation cycles per reference.
  uint64_t ComputePerRef = 1;
  /// Visit the region's blocks in a deterministic shuffled order instead
  /// of ascending addresses.  Footprint, per-wrap coverage, and miss
  /// counts are unchanged — only the address *sequence* becomes
  /// irregular, which is what the cold traffic of pointer-based programs
  /// looks like (and what keeps a hardware stride prefetcher from
  /// trivially covering it; see bench/ablation_stride).
  bool ShuffleBlocks = true;
};

/// The cold region plus its scan procedure.
class NoiseRegion {
public:
  void setup(core::Runtime &Rt, const NoiseRegionConfig &Config,
             const std::string &NamePrefix);

  /// Scans \p Refs references, advancing the wrap-around cursor.
  void step(core::Runtime &Rt, uint64_t Refs);

private:
  NoiseRegionConfig Config;
  vulcan::ProcId Proc = 0;
  vulcan::SiteId Site = 0;
  memsim::Addr Base = 0;
  uint64_t Cursor = 0;
  /// Block visit order when ShuffleBlocks is set (a permutation of the
  /// region's block indices, fixed at setup).
  std::vector<uint32_t> BlockOrder;
};

} // namespace workloads
} // namespace hds

#endif // HDS_WORKLOADS_NOISEREGION_H
