//===- workloads/Boxsim.cpp - Bouncing-spheres simulation ------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// boxsim simulates spheres bouncing in a box (the paper runs 1000 of
// them).  Each timestep iterates the spatial cells, walking every cell's
// sphere list to integrate positions and test collisions against the
// neighbouring cell's first sphere.  The per-cell sphere lists are the
// hot data streams; physics math gives moderate per-reference compute,
// and the loop structure is check-sparse (boxsim has the suite's lowest
// Base overhead, ~2.5%).
//
//===----------------------------------------------------------------------===//

#include "workloads/Benchmarks.h"
#include "workloads/ChainNoiseWorkload.h"

using namespace hds;
using namespace hds::workloads;

namespace {

BenchParams boxsimParams() {
  BenchParams P;
  P.Name = "boxsim";
  // 26 cells of ~15 spheres each -> 390 spheres in flight per sweep;
  // spheres are fat structs allocated as they enter cells.
  P.Chains.NumChains = 26;
  P.Chains.NodesPerChain = 15;
  P.Chains.WalkerProcs = 7;
  P.Chains.NodeBytes = 64;
  P.Chains.ScatterPadBytes = 520;
  P.Chains.ComputePerHop = 4; // integration math
  P.Chains.HopsPerCheck = 5;  // check-sparse loops
  // Broad-phase grid: warm per-timestep working data.
  P.WarmNoise.Bytes = 11 * 1024;
  P.WarmNoise.StrideBytes = 32;
  P.WarmNoise.RefsPerCheck = 8;
  P.WarmNoise.ComputePerRef = 1;
  P.WarmRefsPerChain = 10;
  P.WarmRefsPerSweep = 10;
  // Trajectory history buffer: cold streaming traffic.
  P.ColdNoise.Bytes = 2 * 512 * 1024;
  P.ColdNoise.StrideBytes = 32;
  P.ColdNoise.RefsPerCheck = 12;
  P.ColdNoise.ComputePerRef = 1;
  P.ColdRefsPerChain = 0;
  P.ColdRefsPerSweep = 120;
  P.StoreCostPerChain = true; // per-cell bounding update
  P.ComputePerSweep = 100;    // timestep bookkeeping
  P.DefaultIterations = 43'000;
  return P;
}

/// The timestep benchmark: after each cell's list walk, the collision
/// test peeks at the first sphere of the next cell.
class BoxsimWorkload : public ChainNoiseWorkload {
public:
  BoxsimWorkload() : ChainNoiseWorkload(boxsimParams()) {}

  void setupExtra(core::Runtime &Rt) override {
    NeighborSite = Rt.declareSite(MainProc, "nextCell->first");
  }

  void afterChain(core::Runtime &Rt, uint32_t Index) override {
    const uint32_t Next = (Index + 1) % HotChains.chainCount();
    Rt.load(NeighborSite, HotChains.nodeAddr(Next, 0));
    Rt.compute(2);
  }

private:
  vulcan::SiteId NeighborSite = 0;
};

} // namespace

std::unique_ptr<Workload> hds::workloads::createBoxsim() {
  return std::make_unique<BoxsimWorkload>();
}
