//===- workloads/Workload.cpp - Benchmark factory --------------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/Benchmarks.h"

using namespace hds;
using namespace hds::workloads;

std::unique_ptr<Workload>
hds::workloads::createWorkload(const std::string &Name) {
  if (Name == "vpr")
    return createVpr();
  if (Name == "mcf")
    return createMcf();
  if (Name == "twolf")
    return createTwolf();
  if (Name == "parser")
    return createParser();
  if (Name == "vortex")
    return createVortex();
  if (Name == "boxsim")
    return createBoxsim();
  if (Name == "twophase")
    return createTwoPhase();
  return nullptr;
}

std::vector<std::string> hds::workloads::allWorkloadNames() {
  return {"vpr", "mcf", "twolf", "parser", "vortex", "boxsim"};
}
