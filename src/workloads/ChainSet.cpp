//===- workloads/ChainSet.cpp - Hot pointer-chain infrastructure ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/ChainSet.h"

#include "support/Rng.h"
#include "support/Table.h"

#include <cassert>

using namespace hds;
using namespace hds::workloads;

void ChainSet::setup(core::Runtime &Rt, const ChainSetConfig &NewConfig,
                     const std::string &NamePrefix) {
  Config = NewConfig;
  assert(Config.NumChains > 0 && Config.NodesPerChain > 0 &&
         Config.WalkerProcs > 0 && "degenerate chain set");

  Walkers.resize(Config.WalkerProcs);
  for (uint32_t W = 0; W < Config.WalkerProcs; ++W) {
    Walker &Walk = Walkers[W];
    Walk.Proc =
        Rt.declareProcedure(formatString("%s_walk%u", NamePrefix.c_str(), W));
    Walk.HeadSite = Rt.declareSite(Walk.Proc, "chainTable[i]");
    Walk.FirstSite = Rt.declareSite(Walk.Proc, "head->first");
    Walk.BodySite = Rt.declareSite(Walk.Proc, "node->next");
  }

  // The head table itself: one pointer slot per chain, densely packed (it
  // stays cache resident, like any hot top-level table).
  HeadTable.resize(Config.NumChains);
  for (uint32_t C = 0; C < Config.NumChains; ++C)
    HeadTable[C] = Rt.allocate(8, 8);

  // The chain nodes.  Interleave allocation across chains when scattering
  // so consecutive nodes of one chain land far apart — the layout real
  // allocation order produces for structures built incrementally.  The
  // inter-allocation padding is jittered (deterministically, seeded by
  // the benchmark name) so a chain's nodes do not sit at one uniform
  // stride: a power-of-two pitch would alias every node of a chain into
  // the same cache set, which no real allocation pattern does.
  Rng Jitter(0x9E1CC00DULL ^ NamePrefix.size() ^
             (NamePrefix.empty() ? 0 : uint64_t(NamePrefix[0]) << 32));
  Chains.assign(Config.NumChains, {});
  for (auto &Chain : Chains)
    Chain.reserve(Config.NodesPerChain);
  for (uint32_t N = 0; N < Config.NodesPerChain; ++N) {
    for (uint32_t C = 0; C < Config.NumChains; ++C) {
      if (Config.ScatterPadBytes == 0) {
        // Contiguous layout: all of chain C's nodes back to back.
        continue;
      }
      Chains[C].push_back(Rt.allocate(Config.NodeBytes, 8));
      Rt.padHeap(Config.ScatterPadBytes + 32 * Jitter.nextBelow(8));
    }
  }
  if (Config.ScatterPadBytes == 0) {
    for (uint32_t C = 0; C < Config.NumChains; ++C)
      for (uint32_t N = 0; N < Config.NodesPerChain; ++N)
        Chains[C].push_back(Rt.allocate(Config.NodeBytes, 8));
  }
}

void ChainSet::touchHead(core::Runtime &Rt, uint32_t Index) const {
  assert(Index < Config.NumChains && "chain index out of range");
  const Walker &Walk = Walkers[Index % Config.WalkerProcs];
  core::Runtime::ProcedureScope Scope(Rt, Walk.Proc);
  Rt.load(Walk.HeadSite, HeadTable[Index]);
  Rt.compute(1);
}

void ChainSet::walk(core::Runtime &Rt, uint32_t Index) const {
  assert(Index < Config.NumChains && "chain index out of range");
  const Walker &Walk = Walkers[Index % Config.WalkerProcs];
  const std::vector<memsim::Addr> &Nodes = Chains[Index];

  core::Runtime::ProcedureScope Scope(Rt, Walk.Proc);
  // Fetch the chain head pointer, then chase the nodes.
  Rt.load(Walk.HeadSite, HeadTable[Index]);
  Rt.load(Walk.FirstSite, Nodes[0]);
  Rt.compute(Config.ComputePerHop);
  // Countdown instead of `N % HopsPerCheck`: no integer divide on the
  // per-hop path (fires at the same N).
  uint32_t UntilCheck = Config.HopsPerCheck;
  for (uint32_t N = 1; N < Nodes.size(); ++N) {
    Rt.load(Walk.BodySite, Nodes[N]);
    Rt.compute(Config.ComputePerHop);
    if (--UntilCheck == 0) {
      Rt.loopBackEdge();
      UntilCheck = Config.HopsPerCheck;
    }
  }
}
