//===- workloads/Vpr.cpp - FPGA place-and-route analogue -------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// vpr routes nets through a routing-resource graph; its inner loop
// repeatedly re-traces the routed path of each net to update congestion
// costs.  Those per-net paths are the hot data streams: long, pointer
// linked, revisited every routing pass in the same order, and scattered
// across the heap (the routing graph is built breadth-first, not in path
// order).  vpr shows the paper's largest dynamic-prefetching win (~19%).
//
//===----------------------------------------------------------------------===//

#include "workloads/Benchmarks.h"
#include "workloads/ChainNoiseWorkload.h"

using namespace hds;
using namespace hds::workloads;

namespace {

BenchParams vprParams() {
  BenchParams P;
  P.Name = "vpr";
  // Net paths through routing-resource nodes: many medium-length chains,
  // scattered allocation, light per-hop cost computation.
  P.Chains.NumChains = 32;
  P.Chains.NodesPerChain = 18;
  P.Chains.WalkerProcs = 8;
  P.Chains.NodeBytes = 32;
  P.Chains.ScatterPadBytes = 720;
  P.Chains.ComputePerHop = 2;
  P.Chains.HopsPerCheck = 4;
  // Timing-graph scratch data: warm (L2-resident) traffic that thrashes
  // L1 together with the net paths.
  P.WarmNoise.Bytes = 12 * 1024;
  P.WarmNoise.StrideBytes = 32;
  P.WarmNoise.RefsPerCheck = 8;
  P.WarmNoise.ComputePerRef = 1;
  P.WarmRefsPerChain = 9;
  P.WarmRefsPerSweep = 12;
  // Congestion map sweeps: genuinely cold, streaming traffic.
  P.ColdNoise.Bytes = 3 * 512 * 1024;
  P.ColdNoise.StrideBytes = 32;
  P.ColdNoise.RefsPerCheck = 8;
  P.ColdNoise.ComputePerRef = 1;
  P.ColdRefsPerChain = 0;
  P.ColdRefsPerSweep = 40;
  P.StoreCostPerChain = true;
  P.ComputePerSweep = 40;
  P.DefaultIterations = 25'000;
  return P;
}

/// The routing-pass benchmark; the common sweep shape is exactly vpr's
/// rip-up-and-reroute loop, so no extra hooks are needed.
class VprWorkload : public ChainNoiseWorkload {
public:
  VprWorkload() : ChainNoiseWorkload(vprParams()) {}
};

} // namespace

std::unique_ptr<Workload> hds::workloads::createVpr() {
  return std::make_unique<VprWorkload>();
}
