//===- workloads/ChainSet.h - Hot pointer-chain infrastructure -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set of linked pointer chains that are walked repeatedly in the same
/// order — the data-structure shape that produces hot data streams in the
/// paper's benchmarks (recurring (pc, addr) sequences over pointer-based
/// structures).
///
/// Each walk issues the chain-head fetch and the first node access from
/// dedicated "preheader" sites and the remaining hops from a shared loop
/// body site, matching how real traversal code splits between loop setup
/// and steady state.  The first two references of each chain's stream
/// therefore come from low-traffic pcs, which keeps the injected
/// prefix-match checks off the hot loop body — the property that makes
/// the paper's No-pref overhead small (Section 4.3).
///
/// Chains are distributed over several walker procedures so one
/// optimization cycle modifies a handful of procedures, as in Table 2.
/// Node placement is controlled by ScatterPadBytes: 0 lays each chain out
/// contiguously (the "sequentially allocated hot data streams" that make
/// Seq-pref work on parser), larger values scatter nodes across cache
/// blocks so sequential prefetching only pollutes.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_WORKLOADS_CHAINSET_H
#define HDS_WORKLOADS_CHAINSET_H

#include "core/Runtime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace workloads {

/// Shape of a chain set.
struct ChainSetConfig {
  uint32_t NumChains = 20;
  uint32_t NodesPerChain = 16;
  /// Chains are spread over this many walker procedures.
  uint32_t WalkerProcs = 8;
  uint64_t NodeBytes = 32;
  /// Padding between consecutive node allocations; 0 = contiguous chain.
  uint64_t ScatterPadBytes = 96;
  /// Computation cycles after each hop (cost of "using" the node).
  uint64_t ComputePerHop = 2;
  /// Loop back-edge checks execute every this many hops, modelling the
  /// check-reduction optimizations of [15] that Figure 11's Base bar
  /// depends on.
  uint32_t HopsPerCheck = 4;
};

/// The chain data structure plus its walker procedures.
class ChainSet {
public:
  /// Allocates the chains and declares walker procedures/sites.
  void setup(core::Runtime &Rt, const ChainSetConfig &Config,
             const std::string &NamePrefix);

  /// Walks chain \p Index front to back inside its walker procedure.
  void walk(core::Runtime &Rt, uint32_t Index) const;

  /// Touches chain \p Index's head pointer without traversing (a pointer
  /// null-check, a length peek, ...).  Real programs do this constantly;
  /// it is what makes a one-reference prefix ambiguous — the reason the
  /// paper's prefix-match length of 1 "hurt prefetching accuracy" and 2
  /// was the sweet spot (Section 4.3).
  void touchHead(core::Runtime &Rt, uint32_t Index) const;

  uint32_t chainCount() const { return Config.NumChains; }
  uint32_t nodesPerChain() const { return Config.NodesPerChain; }

  /// References issued by one walk (head fetch + all node hops).
  uint64_t refsPerWalk() const { return 1 + Config.NodesPerChain; }

  /// Address of node \p Node of chain \p Chain (tests).
  memsim::Addr nodeAddr(uint32_t Chain, uint32_t Node) const {
    return Chains.at(Chain).at(Node);
  }

private:
  struct Walker {
    vulcan::ProcId Proc = 0;
    vulcan::SiteId HeadSite = 0;  // chainTable[i] fetch
    vulcan::SiteId FirstSite = 0; // first node access (loop preheader)
    vulcan::SiteId BodySite = 0;  // remaining hops (loop body)
  };

  ChainSetConfig Config;
  std::vector<Walker> Walkers;
  std::vector<std::vector<memsim::Addr>> Chains;
  std::vector<memsim::Addr> HeadTable; // &chainTable[i]
};

} // namespace workloads
} // namespace hds

#endif // HDS_WORKLOADS_CHAINSET_H
