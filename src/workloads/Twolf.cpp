//===- workloads/Twolf.cpp - Standard-cell placement analogue --------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// twolf places standard cells with simulated annealing; evaluating a move
// walks the moved cell's net lists (pointer chains over pins and nets)
// and recomputes wire-length costs, then writes the updated cost and
// position back.  The net-list walks are the hot data streams; cost
// computation makes twolf's per-reference work the heaviest of the suite,
// and its hot procedures are many (Table 2: 11 procedures modified).
//
//===----------------------------------------------------------------------===//

#include "workloads/Benchmarks.h"
#include "workloads/ChainNoiseWorkload.h"

using namespace hds;
using namespace hds::workloads;

namespace {

BenchParams twolfParams() {
  BenchParams P;
  P.Name = "twolf";
  // Per-cell net lists: moderately many chains, heavy per-hop cost
  // evaluation, strongly scattered (cells allocated as the netlist is
  // read, nets discovered later).
  P.Chains.NumChains = 28;
  P.Chains.NodesPerChain = 16;
  P.Chains.WalkerProcs = 10;
  P.Chains.NodeBytes = 40;
  P.Chains.ScatterPadBytes = 880;
  P.Chains.ComputePerHop = 5;
  P.Chains.HopsPerCheck = 4;
  // Row-structure tables: warm per-move working data.
  P.WarmNoise.Bytes = 12 * 1024;
  P.WarmNoise.StrideBytes = 32;
  P.WarmNoise.RefsPerCheck = 8;
  P.WarmNoise.ComputePerRef = 2;
  P.WarmRefsPerChain = 10;
  P.WarmRefsPerSweep = 20;
  // Cost-matrix scans: cold streaming traffic.
  P.ColdNoise.Bytes = 2 * 512 * 1024;
  P.ColdNoise.StrideBytes = 32;
  P.ColdNoise.RefsPerCheck = 8;
  P.ColdNoise.ComputePerRef = 1;
  P.ColdRefsPerChain = 0;
  P.ColdRefsPerSweep = 170;
  P.StoreCostPerChain = true;
  P.ComputePerSweep = 120; // accept/reject bookkeeping
  P.DefaultIterations = 30'000;
  return P;
}

/// The annealing-move benchmark: after each net walk the accepted move
/// writes the cell's new position as well as its cost.
class TwolfWorkload : public ChainNoiseWorkload {
public:
  TwolfWorkload() : ChainNoiseWorkload(twolfParams()) {}

  void setupExtra(core::Runtime &Rt) override {
    PositionSite = Rt.declareSite(MainProc, "cell->pos");
    PositionSlots.resize(Params.Chains.NumChains);
    for (auto &Slot : PositionSlots)
      Slot = Rt.allocate(16, 8);
  }

  void afterChain(core::Runtime &Rt, uint32_t Index) override {
    Rt.store(PositionSite, PositionSlots[Index]);
    Rt.compute(3);
  }

private:
  vulcan::SiteId PositionSite = 0;
  std::vector<memsim::Addr> PositionSlots;
};

} // namespace

std::unique_ptr<Workload> hds::workloads::createTwolf() {
  return std::make_unique<TwolfWorkload>();
}
