//===- workloads/Vortex.cpp - Object database analogue ---------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
// vortex is an object-oriented database: transactions traverse object
// graphs through schema descriptors and chunked object memory.  Hot data
// streams are comparatively few (Table 2: 14 per cycle) but its working
// set is large, so most time goes to cold traffic — dynamic prefetching
// still wins, but by the suite's smallest margin (~5%).  Many procedures
// participate in each traversal (Table 2: 12 modified).
//
//===----------------------------------------------------------------------===//

#include "workloads/Benchmarks.h"
#include "workloads/ChainNoiseWorkload.h"

using namespace hds;
using namespace hds::workloads;

namespace {

BenchParams vortexParams() {
  BenchParams P;
  P.Name = "vortex";
  // Few, long object-graph traversals, spread over many procedures.
  P.Chains.NumChains = 14;
  P.Chains.NodesPerChain = 22;
  P.Chains.WalkerProcs = 12;
  P.Chains.NodeBytes = 56;
  P.Chains.ScatterPadBytes = 880;
  P.Chains.ComputePerHop = 2;
  P.Chains.HopsPerCheck = 4;
  // Index pages: warm per-transaction working data.
  P.WarmNoise.Bytes = 9 * 1024;
  P.WarmNoise.StrideBytes = 32;
  P.WarmNoise.RefsPerCheck = 6;
  P.WarmNoise.ComputePerRef = 1;
  P.WarmRefsPerChain = 20;
  P.WarmRefsPerSweep = 0;
  // Chunked object memory: the big cold footprint that dominates vortex.
  P.ColdNoise.Bytes = 6 * 512 * 1024;
  P.ColdNoise.StrideBytes = 32;
  P.ColdNoise.RefsPerCheck = 6;
  P.ColdNoise.ComputePerRef = 2;
  P.ColdRefsPerChain = 6;
  P.ColdRefsPerSweep = 195;
  P.StoreCostPerChain = true;
  P.ComputePerSweep = 80;
  P.DefaultIterations = 40'000;
  return P;
}

/// The transaction benchmark: each traversal first loads the object's
/// schema descriptor (an extra scattered indirection ahead of the chain).
class VortexWorkload : public ChainNoiseWorkload {
public:
  VortexWorkload() : ChainNoiseWorkload(vortexParams()) {}

  void setupExtra(core::Runtime &Rt) override {
    DescriptorSite = Rt.declareSite(MainProc, "obj->schema");
    Descriptors.resize(Params.Chains.NumChains);
    for (auto &D : Descriptors) {
      D = Rt.allocate(64, 8);
      Rt.padHeap(192);
    }
  }

  void beforeChain(core::Runtime &Rt, uint32_t Index) override {
    Rt.load(DescriptorSite, Descriptors[Index]);
    Rt.compute(2);
  }

private:
  vulcan::SiteId DescriptorSite = 0;
  std::vector<memsim::Addr> Descriptors;
};

} // namespace

std::unique_ptr<Workload> hds::workloads::createVortex() {
  return std::make_unique<VortexWorkload>();
}
