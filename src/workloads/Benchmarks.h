//===- workloads/Benchmarks.h - The six evaluation programs ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories for the six benchmarks of the paper's evaluation (Section
/// 4.1): several memory-performance-limited SPECint2000 programs plus
/// boxsim, a graphics application simulating spheres bouncing in a box.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_WORKLOADS_BENCHMARKS_H
#define HDS_WORKLOADS_BENCHMARKS_H

#include "workloads/Workload.h"

#include <memory>

namespace hds {
namespace workloads {

std::unique_ptr<Workload> createVpr();
std::unique_ptr<Workload> createMcf();
std::unique_ptr<Workload> createTwolf();
std::unique_ptr<Workload> createParser();
std::unique_ptr<Workload> createVortex();
std::unique_ptr<Workload> createBoxsim();

/// A phase-changing program (not part of the paper's suite; drives the
/// static-vs-dynamic comparison the paper leaves as future work).  Also
/// reachable through createWorkload("twophase").
std::unique_ptr<Workload> createTwoPhase();

} // namespace workloads
} // namespace hds

#endif // HDS_WORKLOADS_BENCHMARKS_H
