//===- workloads/ChainNoiseWorkload.cpp - Common benchmark shape ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/ChainNoiseWorkload.h"

using namespace hds;
using namespace hds::workloads;

Workload::~Workload() = default;

void ChainNoiseWorkload::setup(core::Runtime &Rt) {
  MainProc = Rt.declareProcedure(Params.Name + "_main");
  CostSite = Rt.declareSite(MainProc, "cost[i]");

  HotChains.setup(Rt, Params.Chains, Params.Name);
  WarmRegion.setup(Rt, Params.WarmNoise, Params.Name + "_warm");
  ColdRegion.setup(Rt, Params.ColdNoise, Params.Name + "_cold");

  if (Params.StoreCostPerChain) {
    CostSlots.resize(Params.Chains.NumChains);
    for (uint32_t C = 0; C < Params.Chains.NumChains; ++C)
      CostSlots[C] = Rt.allocate(8, 8);
  }

  setupExtra(Rt);
}

void ChainNoiseWorkload::noiseAfterChain(core::Runtime &Rt) {
  WarmRegion.step(Rt, Params.WarmRefsPerChain);
  ColdRegion.step(Rt, Params.ColdRefsPerChain);
}

void ChainNoiseWorkload::maybeTouch(core::Runtime &Rt, uint32_t Index) {
  if (Params.TouchEveryNChains == 0 ||
      Index % Params.TouchEveryNChains != 0)
    return;
  // Peek at a chain whose next walk is most of a sweep away: a false
  // prefetch triggered by this touch fetches blocks that are evicted
  // again before they are used.
  const uint32_t Target =
      (Index + (HotChains.chainCount() * 3) / 4) % HotChains.chainCount();
  HotChains.touchHead(Rt, Target);
}

void ChainNoiseWorkload::noiseAfterSweep(core::Runtime &Rt) {
  WarmRegion.step(Rt, Params.WarmRefsPerSweep);
  ColdRegion.step(Rt, Params.ColdRefsPerSweep);
}

void ChainNoiseWorkload::run(core::Runtime &Rt, uint64_t Iterations) {
  for (uint64_t It = 0; It < Iterations; ++It) {
    core::Runtime::ProcedureScope Main(Rt, MainProc);
    for (uint32_t C = 0; C < HotChains.chainCount(); ++C) {
      beforeChain(Rt, C);
      HotChains.walk(Rt, C);
      if (Params.StoreCostPerChain)
        Rt.store(CostSite, CostSlots[C]);
      afterChain(Rt, C);
      maybeTouch(Rt, C);
      noiseAfterChain(Rt);
    }
    noiseAfterSweep(Rt);
    Rt.compute(Params.ComputePerSweep);
    sweepExtra(Rt, It);
  }
}
