//===- core/DynamicOptimizer.cpp - Profile/analyze/optimize cycle ---------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "core/DynamicOptimizer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

using namespace hds;
using namespace hds::core;

const char *hds::core::runModeName(RunMode Mode) {
  switch (Mode) {
  case RunMode::Original:
    return "Original";
  case RunMode::ChecksOnly:
    return "Base";
  case RunMode::Profile:
    return "Prof";
  case RunMode::ProfileAnalyze:
    return "Hds";
  case RunMode::MatchNoPrefetch:
    return "No-pref";
  case RunMode::SequentialPrefetch:
    return "Seq-pref";
  case RunMode::DynamicPrefetch:
    return "Dyn-pref";
  }
  return "unknown";
}

const char *hds::core::runModeToken(RunMode Mode) {
  switch (Mode) {
  case RunMode::Original:
    return "original";
  case RunMode::ChecksOnly:
    return "base";
  case RunMode::Profile:
    return "prof";
  case RunMode::ProfileAnalyze:
    return "hds";
  case RunMode::MatchNoPrefetch:
    return "nopref";
  case RunMode::SequentialPrefetch:
    return "seqpref";
  case RunMode::DynamicPrefetch:
    return "dynpref";
  }
  return "unknown";
}

const std::vector<RunMode> &hds::core::allRunModes() {
  static const std::vector<RunMode> All = {
      RunMode::Original,        RunMode::ChecksOnly,
      RunMode::Profile,         RunMode::ProfileAnalyze,
      RunMode::MatchNoPrefetch, RunMode::SequentialPrefetch,
      RunMode::DynamicPrefetch};
  return All;
}

std::string hds::core::runModeTokenList() {
  std::string Out;
  for (RunMode Mode : allRunModes()) {
    if (!Out.empty())
      Out += '|';
    Out += runModeToken(Mode);
  }
  return Out;
}

bool hds::core::parseRunModeToken(const std::string &Token, RunMode &Mode) {
  for (RunMode M : allRunModes())
    if (Token == runModeToken(M)) {
      Mode = M;
      return true;
    }
  return false;
}

void DynamicOptimizer::onCheckEvent(profiling::CheckEvent Event) {
  if (Pinned)
    return; // static-scheme model: the installed code stays as-is
  switch (Event) {
  case profiling::CheckEvent::None:
    break;
  case profiling::CheckEvent::AwakeEnded:
    analyzeAndOptimize();
    break;
  case profiling::CheckEvent::HibernationEnded:
    deoptimize();
    break;
  }
}

void DynamicOptimizer::analyzeAndOptimize() {
  Timeline.begin("analysis", Hierarchy.now());
  CycleStats Cycle;
  Cycle.TracedRefs = Profiler.tracedRefCount();
  const sequitur::Grammar &Grammar = Profiler.grammar();
  Cycle.GrammarRules = Grammar.ruleCount();
  Cycle.GrammarSymbols = Grammar.totalRhsSymbols();

  uint64_t Cost = 0;

  if (analysisEnabled(Config.Mode)) {
    // The analysis itself: Sequitur is already built incrementally; what
    // remains is the snapshot plus the linear Figure 5 pass.
    Cost += Cycle.TracedRefs * Config.Costs.AnalysisCyclesPerTracedRef;
    Cost += Cycle.GrammarSymbols * Config.Costs.AnalysisCyclesPerGrammarSymbol;

    analysis::AnalysisConfig AC = Config.Analysis;
    AC.HeatThreshold = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(Cycle.TracedRefs) *
                                 Config.HeatTraceFraction));

    const sequitur::GrammarSnapshot Snapshot = Grammar.snapshot();
    analysis::FastAnalysisResult Result =
        analysis::analyzeHotStreams(Snapshot, AC);
    Cycle.HotStreamsDetected = Result.Streams.size();

    if (injectionEnabled(Config.Mode) && !Result.Streams.empty()) {
      // Hottest first, then filter to prefetchable streams: a non-empty
      // tail beyond the matched head and enough unique references to be
      // worth the injected checks (Section 4.1).
      std::sort(Result.Streams.begin(), Result.Streams.end(),
                [](const analysis::HotDataStream &A,
                   const analysis::HotDataStream &B) {
                  return A.Heat > B.Heat;
                });

      const analysis::DataRefTable &Refs = Profiler.refTable();

      // Sampled traffic per pc (from the profiler) is used to place each
      // installed stream's matched head at quiet program points:
      // Sequitur sees bursts starting at arbitrary phases, so a detected
      // stream is often a rotation of the underlying repeating sequence
      // — matching its literal first references would inject checks into
      // the hottest loop pcs, whose every execution would then scan the
      // check clauses (the same concern behind the paper's "sort the
      // if-branches" note).  Dropping a short prefix is always sound: a
      // suffix of a recurring sequence recurs at least as often.
      const uint32_t HeadLen = Config.Dfsm.HeadLength;
      auto HeadCostAt = [&](const std::vector<uint32_t> &Symbols,
                            size_t Pos) {
        uint64_t Sum = 0;
        for (uint32_t H = 0; H < HeadLen; ++H)
          Sum += Profiler.pcSampleCount(Refs.refOf(Symbols[Pos + H]).Pc);
        return Sum;
      };
      auto FindQuietHead =
          [&](const std::vector<uint32_t> &Symbols) -> size_t {
        constexpr size_t MinTailRefs = 4;
        if (Symbols.size() < HeadLen + MinTailRefs + 1)
          return 0;
        const size_t Limit = Symbols.size() - (HeadLen + MinTailRefs);
        size_t Best = 0;
        uint64_t BestCost = ~uint64_t{0};
        for (size_t Pos = 0; Pos <= Limit; ++Pos) {
          const uint64_t PosCost = HeadCostAt(Symbols, Pos);
          if (PosCost < BestCost) {
            BestCost = PosCost;
            Best = Pos;
          }
        }
        return Best;
      };

      std::vector<std::vector<uint32_t>> StreamSymbols;
      // Per-reference record of the highest frequency among installed
      // streams covering it.  A candidate only counts as "covered" where
      // an at-least-as-frequent stream already prefetches the reference:
      // a long, rarely-recurring super-sequence (e.g. two chains merged
      // across a coincidental noise alignment) must not block the
      // frequently-matching streams inside it.
      std::unordered_map<uint32_t, uint64_t> CoveredBy;
      for (const analysis::HotDataStream &Stream : Result.Streams) {
        if (StreamSymbols.size() >= Config.MaxStreamsPerCycle)
          break;

        const size_t HeadPos =
            Config.QuietHeadPlacement ? FindQuietHead(Stream.Symbols) : 0;
        std::vector<uint32_t> Symbols(
            Stream.Symbols.begin() + static_cast<ptrdiff_t>(HeadPos),
            Stream.Symbols.end());

        const char *Decision = nullptr;
        size_t AlreadyCovered = 0;
        for (uint32_t Symbol : Symbols) {
          auto It = CoveredBy.find(Symbol);
          if (It != CoveredBy.end() && It->second >= Stream.Frequency)
            ++AlreadyCovered;
        }

        if (Symbols.size() <= HeadLen) {
          Decision = "skipped: no tail";
        } else if (static_cast<double>(HeadCostAt(Stream.Symbols, HeadPos)) >
                   Config.MaxHeadTrafficRatio *
                       static_cast<double>(HeadLen) *
                       static_cast<double>(Stream.Frequency)) {
          // Even the quietest head pcs execute mostly for other data
          // (e.g. a strided scan): the per-execution check cost would
          // outweigh the prefetch benefit.
          Decision = "skipped: heads too hot";
        } else if (Stream.uniqueRefs() <= Config.MinUniqueRefs) {
          Decision = "skipped: too few unique refs";
        } else if (static_cast<double>(AlreadyCovered) >
                   Config.MaxInstalledOverlap *
                       static_cast<double>(Symbols.size())) {
          // Rotations and substrings of hotter streams add checks but no
          // new prefetch opportunities.
          Decision = "skipped: covered by hotter stream";
        } else {
          Decision = "installed";
          for (uint32_t Symbol : Symbols) {
            uint64_t &Freq = CoveredBy[Symbol];
            Freq = std::max(Freq, Stream.Frequency);
          }
          StreamSymbols.push_back(std::move(Symbols));
        }

        if (Config.VerboseAnalysis) {
          const analysis::DataRef &First = Refs.refOf(Stream.Symbols[0]);
          std::fprintf(stderr,
                       "  stream len=%-4zu freq=%-5llu heat=%-7llu "
                       "unique=%-4llu firstPc=%-4llu trim=%zu  %s\n",
                       Stream.Symbols.size(),
                       (unsigned long long)Stream.Frequency,
                       (unsigned long long)Stream.Heat,
                       (unsigned long long)Stream.uniqueRefs(),
                       (unsigned long long)First.Pc,
                       FindQuietHead(Stream.Symbols), Decision);
          if (Decision[0] == 'i') { // installed: show the reference list
            std::fprintf(stderr, "    refs:");
            for (uint32_t Symbol : StreamSymbols.back()) {
              const analysis::DataRef &Ref = Refs.refOf(Symbol);
              std::fprintf(stderr, " %llu:%llx", (unsigned long long)Ref.Pc,
                           (unsigned long long)Ref.Addr);
            }
            std::fprintf(stderr, "\n");
          }
        }
      }

      if (!StreamSymbols.empty()) {
        dfsm::PrefixDfsm Machine(StreamSymbols, Config.Dfsm);
        Cost += Machine.transitionCount() *
                Config.Costs.DfsmCyclesPerTransition;

        dfsm::CheckCode Code = dfsm::generateCheckCode(Machine, Refs);

        // Prefetch targets: the addresses of each stream's tail.
        std::vector<PrefetchEngine::InstalledStream> Installed;
        Installed.reserve(StreamSymbols.size());
        for (const auto &Symbols : StreamSymbols) {
          PrefetchEngine::InstalledStream S;
          for (size_t I = Config.Dfsm.HeadLength; I < Symbols.size(); ++I)
            S.TailAddrs.push_back(Refs.refOf(Symbols[I]).Addr);
          Installed.push_back(std::move(S));
        }

        // Inject with dynamic Vulcan: copy + patch every procedure that
        // contains an instrumented pc.
        std::vector<vulcan::SiteId> Pcs;
        Pcs.reserve(Code.Sites.size());
        for (const dfsm::SiteCheckCode &Site : Code.Sites)
          Pcs.push_back(Site.Pc);
        const vulcan::PatchResult Patch = TheImage.applyPatch(Pcs);
        Cost += Patch.ProceduresModified * Config.Costs.PatchCyclesPerProcedure;

        Cycle.StreamsInstalled = StreamSymbols.size();
        Cycle.DfsmStates = Machine.stateCount();
        Cycle.DfsmTransitions = Machine.transitionCount();
        Cycle.CheckClausesInjected = Code.totalClauses();
        Cycle.ProceduresModified = Patch.ProceduresModified;
        Cycle.SitesInstrumented = Patch.SitesInstrumented;

        Engine.install(std::move(Code), std::move(Installed),
                       TheImage.siteCount(),
                       /*InstallCycle=*/Stats.Cycles.size());
        if (Config.PinFirstOptimization)
          Pinned = true;
      }

      if (Config.AdaptiveHibernation)
        adaptHibernation(StreamSymbols, Cycle);
    }
  }

  Cycle.AnalysisCostCycles = Cost;
  Cycle.NextHibernationPeriods = Tracer.config().NHibernate;
  Hierarchy.tick(Cost, obs::CyclePhase::Analysis);
  Stats.Cycles.push_back(Cycle);
  Timeline.begin("hibernation", Hierarchy.now());
}

void DynamicOptimizer::adaptHibernation(
    const std::vector<std::vector<uint32_t>> &Streams, CycleStats &Cycle) {
  (void)Cycle;
  // Compare this cycle's covered references against the previous
  // cycle's: stable behaviour -> hibernate twice as long (bounded);
  // changed behaviour -> back to the configured base.
  std::unordered_set<uint32_t> Covered;
  for (const auto &Symbols : Streams)
    Covered.insert(Symbols.begin(), Symbols.end());

  size_t Intersection = 0;
  // hds-lint: ordered-ok(commutative membership count; order cannot affect the sum)
  for (uint32_t Ref : Covered)
    Intersection += LastCoveredRefs.count(Ref);
  const size_t Union =
      Covered.size() + LastCoveredRefs.size() - Intersection;
  const double Similarity =
      Union == 0 ? 0.0
                 : static_cast<double>(Intersection) /
                       static_cast<double>(Union);

  const uint64_t Base = Config.Tracing.NHibernate;
  if (CurrentHibernate == 0)
    CurrentHibernate = Base;
  if (!Covered.empty() && Similarity >= Config.AdaptiveStabilityThreshold)
    CurrentHibernate = std::min(CurrentHibernate * 2,
                                Base * Config.AdaptiveHibernationMaxFactor);
  else
    CurrentHibernate = Base;

  Tracer.setHibernationLength(CurrentHibernate);
  LastCoveredRefs = std::move(Covered);
}

void DynamicOptimizer::deoptimize() {
  if (Engine.installed()) {
    Engine.uninstall();
    TheImage.removePatches();
  }
  // Fresh profile for the next cycle; hibernation-phase references were
  // never recorded, so there is no trace contamination to clean up.
  Profiler.startNewCycle();
  Timeline.begin("awake", Hierarchy.now());
}
