//===- core/MarkovPrefetcher.h - Correlation-based prefetcher --*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Markov (correlation-based) prefetcher after Joseph & Grunwald,
/// reference [16] of the paper.
///
/// The paper calls correlation-based prefetching the hardware technique
/// its scheme is "most similar to", and differentiates itself three ways:
/// software (configurable/tunable), more global access pattern analysis,
/// and "capable of using more context for its predictions than digrams of
/// data accesses" (Section 5.1).  This implementation exists so the
/// comparison can be run (bench/ablation_markov): a digram predictor
/// keyed on cache-miss addresses, with a fixed number of successor slots
/// per node and prefetches issued for all of them, prioritized by
/// recency.
///
/// Model: on every L1 demand miss to block B, (a) record B as a successor
/// of the previously missed block, and (b) issue prefetches for B's
/// recorded successors.  As a hardware mechanism it spends no instruction
/// issue slots; its table capacity is bounded like the original paper's
/// (which dedicated megabytes of state — generous, but that is the
/// comparison point).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_CORE_MARKOVPREFETCHER_H
#define HDS_CORE_MARKOVPREFETCHER_H

#include "memsim/MemoryHierarchy.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hds {
namespace core {

/// Knobs for the Markov prefetcher.
struct MarkovPrefetcherConfig {
  /// Successor slots per node (the original evaluates 1-4).
  uint32_t SuccessorsPerNode = 2;
  /// Maximum nodes in the correlation table; beyond it, new nodes evict
  /// in insertion order (a coarse model of a bounded hardware table).
  uint32_t MaxNodes = 1 << 16;
};

/// Counters for the ablation bench.
struct MarkovStats {
  uint64_t MissesObserved = 0;
  uint64_t TransitionsRecorded = 0;
  uint64_t PrefetchesIssued = 0;
};

/// The correlation table.
class MarkovPrefetcher {
public:
  explicit MarkovPrefetcher(const MarkovPrefetcherConfig &Cfg)
      : Config(Cfg) {}

  /// Observes a demand access that missed L1 (block granularity) and
  /// issues prefetches for the predicted successors.
  void onMiss(memsim::Addr Addr, memsim::MemoryHierarchy &Hierarchy);

  const MarkovStats &stats() const { return Stats; }
  size_t nodeCount() const { return Nodes.size(); }
  void reset();

private:
  struct Node {
    /// Most-recent-first successor blocks.
    std::vector<uint64_t> Successors;
  };

  MarkovPrefetcherConfig Config;
  std::unordered_map<uint64_t, Node> Nodes;
  std::vector<uint64_t> InsertionOrder;
  size_t EvictCursor = 0;
  uint64_t LastMissBlock = ~uint64_t{0};
  MarkovStats Stats;
};

} // namespace core
} // namespace hds

#endif // HDS_CORE_MARKOVPREFETCHER_H
