//===- core/DynamicOptimizer.h - Profile/analyze/optimize cycle -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The controller of Figure 1: it reacts to bursty-tracing phase
/// boundaries, turning the sampled temporal profile into hot data streams,
/// the streams into a prefix-matching DFSM, the DFSM into injected check
/// code, and — at the end of each hibernation — deoptimizing everything
/// and starting the next profiling cycle.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_CORE_DYNAMICOPTIMIZER_H
#define HDS_CORE_DYNAMICOPTIMIZER_H

#include "analysis/FastAnalyzer.h"
#include "core/OptimizerConfig.h"
#include "core/PrefetchEngine.h"
#include "core/RunStats.h"
#include "obs/Timeline.h"
#include "profiling/BurstyTracer.h"
#include "profiling/TemporalProfiler.h"
#include "vulcan/Image.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace hds {
namespace core {

/// Orchestrates one benchmark run's optimization cycles.
class DynamicOptimizer {
public:
  DynamicOptimizer(const OptimizerConfig &Cfg, vulcan::Image &Image,
                   memsim::MemoryHierarchy &Hier, PrefetchEngine &Eng,
                   profiling::BurstyTracer &Trc, RunStats &RS,
                   obs::Timeline &TL)
      : Config(Cfg), TheImage(Image), Hierarchy(Hier), Engine(Eng),
        Tracer(Trc), Stats(RS), Timeline(TL) {}

  /// Records one traced data reference (called by the runtime while the
  /// profiler is awake and in instrumented code).
  void recordRef(const analysis::DataRef &Ref) {
    Profiler.recordRef(Ref);
    ++Stats.TracedRefs;
  }

  /// Reacts to a bursty-tracing phase boundary.
  void onCheckEvent(profiling::CheckEvent Event);

  /// True once PinFirstOptimization has latched an installed
  /// optimization: the system behaves like a statically instrumented
  /// binary from here on (no re-profiling, no deoptimization).
  bool pinned() const { return Pinned; }

  profiling::TemporalProfiler &profiler() { return Profiler; }
  const profiling::TemporalProfiler &profiler() const { return Profiler; }

private:
  /// End of the awake phase: extract hot data streams, build the DFSM,
  /// generate and inject the detection/prefetching code.
  void analyzeAndOptimize();

  /// End of the hibernation phase: remove the injected checks and start a
  /// fresh profiling cycle.
  void deoptimize();

  /// Adaptive hibernation (§5.2 extension): stretch or reset the
  /// hibernation length based on stream-set stability.
  void adaptHibernation(const std::vector<std::vector<uint32_t>> &Streams,
                        CycleStats &Cycle);

  const OptimizerConfig &Config;
  vulcan::Image &TheImage;
  memsim::MemoryHierarchy &Hierarchy;
  PrefetchEngine &Engine;
  profiling::BurstyTracer &Tracer;
  RunStats &Stats;
  obs::Timeline &Timeline;
  profiling::TemporalProfiler Profiler;
  bool Pinned = false;
  /// Adaptive hibernation state: references covered by the previous
  /// cycle's installed streams and the current hibernation length.
  std::unordered_set<uint32_t> LastCoveredRefs;
  uint64_t CurrentHibernate = 0;
};

} // namespace core
} // namespace hds

#endif // HDS_CORE_DYNAMICOPTIMIZER_H
