//===- core/Runtime.cpp - The mediated execution environment --------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include <cassert>

using namespace hds;
using namespace hds::core;

RuntimeObserver::~RuntimeObserver() = default;
void RuntimeObserver::onDeclareProcedure(vulcan::ProcId, const std::string &) {
}
void RuntimeObserver::onDeclareSite(vulcan::SiteId, vulcan::ProcId,
                                    const std::string &) {}
void RuntimeObserver::onAllocate(memsim::Addr, uint64_t, uint64_t) {}
void RuntimeObserver::onPadHeap(uint64_t) {}
void RuntimeObserver::onEnterProcedure(vulcan::ProcId) {}
void RuntimeObserver::onLeaveProcedure() {}
void RuntimeObserver::onLoopBackEdge() {}
void RuntimeObserver::onAccess(vulcan::SiteId, memsim::Addr, bool) {}
void RuntimeObserver::onAccessBatch(const AccessEvent *Events, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    onAccess(Events[I].Site, Events[I].Addr, Events[I].IsStore);
}
void RuntimeObserver::onCompute(uint64_t) {}

profiling::BurstyTracingConfig
Runtime::effectiveTracingConfig(const OptimizerConfig &Config) {
  profiling::BurstyTracingConfig Tracing = Config.Tracing;
  if (Config.Mode == RunMode::ChecksOnly) {
    // Figure 11 "Base": "setting nCheck to an extremely large value and
    // nInstr to 1" — checks run, (virtually) nothing is profiled.
    Tracing.NCheck0 = uint64_t{1} << 62;
    Tracing.NInstr0 = 1;
    Tracing.HibernationEnabled = false;
  }
  return Tracing;
}

Runtime::Runtime(const OptimizerConfig &Cfg)
    : Config(Cfg), Hierarchy(Cfg.L1, Cfg.L2, Cfg.Latency),
      Tracer(effectiveTracingConfig(Cfg)),
      Optimizer(this->Config, TheImage, Hierarchy, Engine, Tracer, Stats,
                Timeline),
      HeapBreak(1 << 20) {
  TheImage.instrumentForBurstyTracing();
  if (Config.Prefetchers.any()) {
    Prefetchers = std::make_unique<prefetch::PrefetcherStack>(
        Config.Prefetchers);
    // Prefetcher fill/useful/late/eviction feedback flows back through
    // the hierarchy's listener; hot-stream tags start above the
    // prefetcher tag range so the per-tag buckets never collide.
    Hierarchy.setListener(Prefetchers.get());
    Engine.setStreamTagBase(Prefetchers->tagCount());
  }
  if (Config.Tuning.Enabled) {
    // One controller per Runtime feeds both issuing paths: the injected
    // hot-stream prefetches and the hardware zoo (docs/tuning.md).
    Tuner = std::make_unique<prefetch::TuningPolicy>(Config.Tuning);
    Engine.setTuner(Tuner.get());
    if (Prefetchers)
      Prefetchers->setTuner(Tuner.get());
  }
  // The run opens in the profiler's awake phase; the optimizer records
  // every later phase boundary.
  if (tracingEnabled(Config.Mode))
    Timeline.begin("awake", 0);
}

std::vector<obs::PrefetcherStats> Runtime::prefetcherStats() const {
  if (!Prefetchers)
    return {};
  return Prefetchers->snapshotStats(Hierarchy);
}

std::vector<obs::StreamPrefetchStats> Runtime::streamPrefetchStats() const {
  std::vector<obs::StreamPrefetchStats> Rows = Engine.streamHistory();
  const std::vector<obs::PrefetchClassCounts> &Classes =
      Hierarchy.streamClasses();
  for (obs::StreamPrefetchStats &Row : Rows) {
    // Tuning gauges: the controller's settled state, or the static
    // constants (MaxPrefetchesPerMatch at distance 0) for fixed runs.
    const auto Tag = static_cast<uint32_t>(Row.StreamTag);
    Row.FinalDegree = Config.MaxPrefetchesPerMatch;
    if (Tuner) {
      Row.FinalDegree = Tuner->peekDegree(
          Tag, static_cast<uint32_t>(Config.MaxPrefetchesPerMatch));
      Row.FinalDistance = Tuner->distance(Tag);
      if (const prefetch::TuningPolicy::StreamState *State = Tuner->peek(Tag))
        Row.Squelches = State->Squelches;
    }
    if (Row.StreamTag >= Classes.size())
      continue; // stream never produced a classification event
    const obs::PrefetchClassCounts &Counts =
        Classes[static_cast<size_t>(Row.StreamTag)];
    Row.Issued = Counts.Issued;
    Row.Useful = Counts.Useful;
    Row.Late = Counts.Late;
    Row.Redundant = Counts.Redundant;
    Row.DroppedQueueFull = Counts.DroppedQueueFull;
    Row.UnusedEvicted = Counts.UnusedEvicted;
  }
  return Rows;
}

vulcan::ProcId Runtime::declareProcedure(std::string Name) {
  const vulcan::ProcId Proc = TheImage.createProcedure(Name);
  if (Observer) {
    flushObserver();
    Observer->onDeclareProcedure(Proc, Name);
  }
  return Proc;
}

vulcan::SiteId Runtime::declareSite(vulcan::ProcId Proc, std::string Label) {
  const vulcan::SiteId Site = TheImage.createSite(Proc, Label);
  if (Observer) {
    flushObserver();
    Observer->onDeclareSite(Site, Proc, Label);
  }
  return Site;
}

memsim::Addr Runtime::allocate(uint64_t Bytes, uint64_t Align) {
  assert(Align > 0 && (Align & (Align - 1)) == 0 && "non power-of-two align");
  HeapBreak = (HeapBreak + Align - 1) & ~(Align - 1);
  const memsim::Addr Result = HeapBreak;
  HeapBreak += Bytes;
  if (Observer) {
    flushObserver();
    Observer->onAllocate(Result, Bytes, Align);
  }
  return Result;
}

void Runtime::padHeap(uint64_t Bytes) {
  HeapBreak += Bytes;
  if (Observer) {
    flushObserver();
    Observer->onPadHeap(Bytes);
  }
}

bool Runtime::currentFrameIsFresh() const {
  if (CallStack.empty())
    return true; // top-level code is never stale
  const Frame &Top = CallStack.back();
  return Top.CodeVersionAtEntry == TheImage.codeVersion(Top.Proc);
}

void Runtime::dynamicCheck() {
  if (!checksEnabled(Config.Mode))
    return;
  if (Optimizer.pinned())
    return; // static-scheme model: no bursty-tracing framework left
  Hierarchy.tick(Config.Costs.CheckCycles, obs::CyclePhase::DynamicCheck);
  ++Stats.ChecksExecuted;
  const profiling::CheckEvent Event = Tracer.check();
  if (Event != profiling::CheckEvent::None)
    Optimizer.onCheckEvent(Event);
}

void Runtime::enterProcedure(vulcan::ProcId Proc) {
  if (Observer) {
    flushObserver();
    Observer->onEnterProcedure(Proc);
  }
  CallStack.push_back({Proc, TheImage.codeVersion(Proc)});
  dynamicCheck();
}

void Runtime::leaveProcedure() {
  assert(!CallStack.empty() && "leaveProcedure without enterProcedure");
  if (Observer) {
    flushObserver();
    Observer->onLeaveProcedure();
  }
  CallStack.pop_back();
}

void Runtime::loopBackEdge() {
  if (Observer) {
    flushObserver();
    Observer->onLoopBackEdge();
  }
  dynamicCheck();
}

void Runtime::accessInstrumented(vulcan::SiteId Site, memsim::Addr Addr) {
  // Instrumented-code version: every data reference pays the tracing cost
  // (even the discarded hibernation-burst references, §2.2); only awake
  // references reach Sequitur (§2.4: hibernation refs are ignored to
  // avoid trace contamination).  Once a static-scheme run is pinned the
  // profiling framework is gone entirely.
  if (Tracer.inInstrumentedCode() && !Optimizer.pinned()) {
    Hierarchy.tick(Config.Costs.TraceRefCycles, obs::CyclePhase::Profiling);
    if (tracingEnabled(Config.Mode) &&
        Tracer.phase() == profiling::TracerPhase::Awake)
      Optimizer.recordRef(analysis::DataRef{Site, Addr});
  }

  // Injected prefix-match / prefetch code.
  if (Engine.siteInstrumented(Site)) {
    if (currentFrameIsFresh())
      Engine.onAccess(Site, Addr, Config, Hierarchy, Stats);
    else
      ++Stats.StaleFrameAccesses; // still running pre-patch code (§3.2)
  }
}
