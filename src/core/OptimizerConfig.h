//===- core/OptimizerConfig.h - All system knobs ---------------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration for the whole dynamic prefetching system: run mode,
/// bursty tracing counters, analysis thresholds, DFSM head length, and the
/// cycle-cost model that stands in for real instrumented-code execution
/// cost.  Defaults follow Section 4.1 of the paper, scaled so a full
/// profile/analyze/optimize/hibernate cycle fits a simulation run (see
/// DESIGN.md §4).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_CORE_OPTIMIZERCONFIG_H
#define HDS_CORE_OPTIMIZERCONFIG_H

#include "analysis/HotDataStream.h"
#include "dfsm/PrefixDfsm.h"
#include "memsim/Cache.h"
#include "memsim/MemoryHierarchy.h"
#include "prefetch/PrefetcherStack.h"
#include "prefetch/TuningPolicy.h"
#include "profiling/BurstyTracer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace core {

/// Which slice of the system is active — one mode per bar of the paper's
/// Figures 11 and 12.
enum class RunMode : uint8_t {
  /// The unmodified program: no checks, no tracing.  Normalization
  /// baseline for every overhead percentage.
  Original,
  /// Figure 11 "Base": dynamic checks execute but (virtually) no data
  /// references are profiled (nCheck extremely large, nInstr = 1).
  ChecksOnly,
  /// Figure 11 "Prof": checks + sampled temporal data reference
  /// collection into Sequitur at the configured counter settings.
  Profile,
  /// Figure 11 "Hds": Prof + hot data stream analysis at the end of each
  /// awake phase (results discarded).
  ProfileAnalyze,
  /// Figure 12 "No-pref": full pipeline including DFSM construction,
  /// code injection and prefix matching — but no prefetches are issued.
  MatchNoPrefetch,
  /// Figure 12 "Seq-pref": on a prefix match, prefetch the cache blocks
  /// that sequentially follow the last matched reference instead of the
  /// stream's addresses.
  SequentialPrefetch,
  /// Figure 12 "Dyn-pref": the paper's scheme — prefetch the remaining
  /// stream addresses.
  DynamicPrefetch,
};

/// Returns a short printable name ("Dyn-pref" etc.) for \p Mode.
const char *runModeName(RunMode Mode);

/// Returns the stable command-line token ("dynpref" etc.) for \p Mode.
/// Tokens are the vocabulary of hds_run --mode, hds_matrix filters, and
/// the machine-readable results JSON.
const char *runModeToken(RunMode Mode);

/// Parses a command-line token (original, base, prof, hds, nopref,
/// seqpref, dynpref) into \p Mode.  Returns false for unknown tokens.
bool parseRunModeToken(const std::string &Token, RunMode &Mode);

/// Every RunMode in canonical (paper figure) order — the single source
/// for CLI usage text, filter vocabularies, and mode enumerations, so
/// token lists never drift from the enum.
const std::vector<RunMode> &allRunModes();

/// "original|base|prof|hds|nopref|seqpref|dynpref", generated from
/// allRunModes() — the usage-text form of the mode vocabulary.
std::string runModeTokenList();

/// \name Feature ladder: each mode includes everything below it.
/// @{
inline bool checksEnabled(RunMode Mode) { return Mode >= RunMode::ChecksOnly; }
inline bool tracingEnabled(RunMode Mode) { return Mode >= RunMode::Profile; }
inline bool analysisEnabled(RunMode Mode) {
  return Mode >= RunMode::ProfileAnalyze;
}
inline bool injectionEnabled(RunMode Mode) {
  return Mode >= RunMode::MatchNoPrefetch;
}
inline bool prefetchingEnabled(RunMode Mode) {
  return Mode >= RunMode::SequentialPrefetch;
}
/// @}

/// Simulated-cycle costs of the software machinery.  These stand in for
/// the execution cost of real injected x86 code; DESIGN.md §4 documents
/// the calibration against the paper's Figure 11 overhead ranges.
struct CostModel {
  /// One dynamic check in checking code (Figure 11 "Base" driver).
  uint64_t CheckCycles = 4;
  /// Tracing one data reference in instrumented code: interning the
  /// (pc, addr) pair, appending to Sequitur (hash probes, possible rule
  /// restructuring), and buffering — a few hundred instructions of real
  /// work per sampled reference.
  uint64_t TraceRefCycles = 150;
  /// Hot data stream analysis, per grammar symbol (Figure 11 "Hds").
  uint64_t AnalysisCyclesPerGrammarSymbol = 60;
  /// Analysis bookkeeping per traced reference (Sequitur flush etc.).
  uint64_t AnalysisCyclesPerTracedRef = 20;
  /// DFSM construction, per created transition.
  uint64_t DfsmCyclesPerTransition = 200;
  /// Dynamic Vulcan procedure copy + jump overwrite, per procedure
  /// (threads are stopped while binary modifications are in progress).
  uint64_t PatchCyclesPerProcedure = 5'000;
  /// Scanning one injected check clause at an instrumented pc.
  uint64_t MatchClauseCycles = 1;
};

/// Everything the system needs to run one benchmark configuration.
struct OptimizerConfig {
  RunMode Mode = RunMode::DynamicPrefetch;

  /// Bursty tracing counters.  The defaults keep the paper's 0.5%
  /// awake-phase sampling rate with bursts of 30 checks, but shrink the
  /// burst-period and phase lengths so several optimization cycles fit in
  /// a simulated run.  The burst-period (nCheck0 + nInstr0 = 6037) is
  /// prime so that deterministic sampling of a periodic program does not
  /// alias onto a fixed phase of its loop (a burst-period that divides
  /// the program's check period would sample the same code every burst).
  profiling::BurstyTracingConfig Tracing = {
      /*NCheck0=*/6'007, /*NInstr0=*/30,
      /*NAwake=*/50, /*NHibernate=*/150,
      /*HibernationEnabled=*/true};

  /// Hot data stream thresholds; HeatThreshold is recomputed every cycle
  /// from HeatTraceFraction.
  analysis::AnalysisConfig Analysis = {/*MinLength=*/10, /*MaxLength=*/100,
                                       /*HeatThreshold=*/0};
  /// A stream must account for at least this fraction of the collected
  /// trace (Section 4.1 uses 1%).
  double HeatTraceFraction = 0.01;
  /// Streams must contain more than this many unique references
  /// (Section 4.1 uses 10).
  uint64_t MinUniqueRefs = 10;
  /// Hottest-first cap on streams handed to the DFSM per cycle.
  uint64_t MaxStreamsPerCycle = 48;
  /// Skip a candidate stream when more than this fraction of its
  /// references is already covered by hotter installed streams.  Sequitur
  /// sees bursts starting at arbitrary phases, so the analysis often
  /// reports several rotations of the same underlying stream; installing
  /// them all multiplies the injected checks without adding prefetch
  /// opportunities.
  double MaxInstalledOverlap = 0.5;
  /// Upper bound on prefetches issued per complete prefix match.  The
  /// paper prefetches the whole tail; hardware bounds outstanding misses,
  /// so issuing far beyond the queue depth only burns issue slots.
  uint64_t MaxPrefetchesPerMatch = 24;
  /// Skip a stream when even its quietest head placement sits on pcs
  /// whose sampled traffic exceeds this multiple of the stream's own
  /// frequency: every execution of an instrumented pc pays the injected
  /// address compares, so checks on pcs that mostly execute for *other*
  /// data (e.g. a strided scan loop) cost more than the stream's
  /// prefetches can recover.
  double MaxHeadTrafficRatio = 40.0;
  /// Place each installed stream's matched head at its quietest window
  /// (see DynamicOptimizer.cpp).  This is an improvement over the paper,
  /// which matches the literal stream prefix; the headLen ablation turns
  /// it off to reproduce the paper's §4.3 prefix-length trade-off.
  bool QuietHeadPlacement = true;

  /// Prefix-match DFSM construction (HeadLength = 2 per Section 4.3).
  dfsm::DfsmConfig Dfsm;

  /// Memory hierarchy (paper's Pentium III shape by default).
  memsim::CacheConfig L1 = memsim::CacheConfig::pentiumIIIL1();
  memsim::CacheConfig L2 = memsim::CacheConfig::pentiumIIIL2();
  memsim::LatencyConfig Latency;

  CostModel Costs;

  /// Orthogonal hardware prefetcher stack (works in any mode): which
  /// members of the prefetcher zoo observe the demand stream, plus the
  /// dueling selector that picks a winner per hot address region.  The
  /// stride prefetcher is the paper's suggested complement ("could
  /// complement our scheme by prefetching data address sequences that do
  /// not qualify as hot data streams", §4.3); Markov is the hardware
  /// technique the paper calls "most similar" to its scheme (§5.1).
  prefetch::StackConfig Prefetchers;

  /// Closed-loop per-stream degree/distance tuning (prefetch/
  /// TuningPolicy.h): when enabled, one TuningPolicy per Runtime feeds
  /// the per-tag classification counters back into both issuing paths —
  /// the injected hot-stream prefetches and the hardware zoo — at every
  /// profiling-epoch boundary.  Off by default: every path keeps its
  /// static constants, byte for byte.
  prefetch::TuningConfig Tuning;

  /// Static-scheme model (the comparison the paper leaves for future
  /// work): keep the *first* successful optimization installed forever —
  /// no deoptimization, no further profiling, and no further framework
  /// overhead (a statically instrumented binary carries only the
  /// prefetch checks).
  bool PinFirstOptimization = false;

  /// Adaptive hibernation (the §5.2 extension the paper points to):
  /// when consecutive optimization cycles detect essentially the same
  /// streams, double the hibernation length (profile less, up to
  /// AdaptiveHibernationMaxFactor times the base); when the stream set
  /// shifts, fall back to the base length.
  bool AdaptiveHibernation = false;
  uint64_t AdaptiveHibernationMaxFactor = 8;
  /// Jaccard similarity of covered references above which two cycles'
  /// stream sets count as "the same behaviour".
  double AdaptiveStabilityThreshold = 0.7;

  /// Print a per-cycle summary of detected streams and selection
  /// decisions to stderr (used by examples/stream_inspector and when
  /// debugging workload/analysis interactions).
  bool VerboseAnalysis = false;
};

} // namespace core
} // namespace hds

#endif // HDS_CORE_OPTIMIZERCONFIG_H
