//===- core/PrefetchEngine.h - Injected-code interpreter -------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the injected detection and prefetching code (Section 3.1).
///
/// After each optimization step the engine holds the generated per-pc
/// check tables (dfsm::CheckCode) and the prefetch targets of every
/// installed hot data stream.  A data access at an instrumented pc scans
/// that pc's clauses: a clause whose address and source state both match
/// drives the DFSM state forward and, on a complete prefix match, issues
/// prefetches — the stream's remaining addresses for Dyn-pref, or the
/// sequentially following cache blocks for the Seq-pref straw man, or
/// nothing for No-pref (Section 4.3).  A failed match resets the state to
/// the start state, mirroring the "else v.seen = 0" arms of Figure 7.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_CORE_PREFETCHENGINE_H
#define HDS_CORE_PREFETCHENGINE_H

#include "core/OptimizerConfig.h"
#include "core/RunStats.h"
#include "dfsm/CheckCodeGen.h"
#include "memsim/MemoryHierarchy.h"
#include "obs/PrefetchStats.h"
#include "prefetch/TuningPolicy.h"
#include "vulcan/Image.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hds {
namespace core {

/// Interpreter for one optimization cycle's injected code.
class PrefetchEngine {
public:
  /// Prefetch targets for one installed stream: the addresses of its tail
  /// (v.tail = v_{headLen+1} ... v_{|v|}).  The tag is assigned by
  /// install() and rides along with every prefetch the stream fires, so
  /// the memory hierarchy can attribute effectiveness events back to it.
  struct InstalledStream {
    std::vector<memsim::Addr> TailAddrs;
    uint32_t Tag = obs::NoStreamTag;
  };

  /// Installs \p Code and \p Streams; \p ImageSiteCount sizes the fast
  /// site lookup table.  StreamIndex values inside the code refer into
  /// \p Streams.  Each stream is assigned the next free tag (unique
  /// across the whole run, surviving uninstall), and a row recording its
  /// identity is appended to streamHistory(); \p InstallCycle labels the
  /// optimization cycle doing the install.
  void install(dfsm::CheckCode Code, std::vector<InstalledStream> Streams,
               size_t ImageSiteCount, uint64_t InstallCycle = 0);

  /// Removes all injected code (deoptimization).
  void uninstall();

  bool installed() const { return Installed; }

  /// O(1): whether \p Site carries injected checks.
  bool siteInstrumented(vulcan::SiteId Site) const {
    return Installed && Site < SiteToTable.size() &&
           SiteToTable[static_cast<size_t>(Site)] >= 0;
  }

  /// Runs the injected code for an access of \p Addr at \p Site.
  /// Advances the simulated clock by the scan cost and issues prefetches
  /// according to \p Config.Mode.  Must only be called for instrumented
  /// sites.
  void onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                const OptimizerConfig &Config,
                memsim::MemoryHierarchy &Hierarchy, RunStats &Stats);

  /// Current DFSM state (tests).
  dfsm::StateId currentState() const { return State; }

  /// Number of installed streams.
  size_t streamCount() const { return Streams.size(); }

  /// The installed check tables (tests and cross-validation).
  const dfsm::CheckCode &installedCode() const { return Code; }

  /// The installed streams' tail addresses (tests).
  const std::vector<InstalledStream> &installedStreams() const {
    return Streams;
  }

  /// Identity rows (tag, install cycle, length) of every stream ever
  /// installed, in tag order; classification counters are zero — the
  /// Runtime joins them with the hierarchy's per-stream buckets.
  const std::vector<obs::StreamPrefetchStats> &streamHistory() const {
    return History;
  }

  /// Reserves tags [0, Base) for the hardware prefetcher stack: the first
  /// installed stream gets tag \p Base.  Must be called before any
  /// install(); the Runtime does this at construction so stream and
  /// prefetcher classification buckets never collide.
  void setStreamTagBase(uint32_t Base) {
    assert(History.empty() && "tag base must be set before any install");
    NextStreamTag = Base;
  }

  /// Attaches (or detaches, with null) the closed-loop tuner.  With a
  /// tuner, firePrefetches() issues each stream's tuned degree/distance
  /// window of its tail instead of the fixed MaxPrefetchesPerMatch
  /// prefix; without one, behavior is byte-identical to the fixed scheme.
  void setTuner(prefetch::TuningPolicy *Policy) { Tuner = Policy; }

private:
  /// Issues the prefetches for one completed stream.
  void firePrefetches(dfsm::StreamIndex StreamIdx, memsim::Addr MatchAddr,
                      const OptimizerConfig &Config,
                      memsim::MemoryHierarchy &Hierarchy, RunStats &Stats);

  /// Interned scan keys for one site's check table, built at install()
  /// time.  The hot clause scans in onAccess() run over these dense key
  /// arrays — all of a site's group addresses back to back, and all of
  /// its clause FromStates flattened behind prefix-sum offsets — instead
  /// of striding through the fat AddrGroupCode / CheckClause records.
  /// Payloads (ToState, completions) are fetched by index only after a
  /// key matches.  Scan order and clause counts are exactly those of the
  /// underlying table.
  struct SiteScan {
    std::vector<uint64_t> AddrKeys;          // Groups[I].Addr
    std::vector<uint32_t> ClauseOffset;      // group -> ClauseFrom range
    std::vector<dfsm::StateId> ClauseFrom;   // flattened Specific[..]
  };

  bool Installed = false;
  dfsm::CheckCode Code;
  std::vector<SiteScan> SiteScans; // parallel to Code.Sites
  std::vector<InstalledStream> Streams;
  std::vector<int32_t> SiteToTable; // SiteId -> index into Code.Sites
  dfsm::StateId State = 0;
  uint32_t NextStreamTag = 0;
  std::vector<obs::StreamPrefetchStats> History;
  prefetch::TuningPolicy *Tuner = nullptr;
};

} // namespace core
} // namespace hds

#endif // HDS_CORE_PREFETCHENGINE_H
