//===- core/PrefetchEngine.cpp - Injected-code interpreter ----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "core/PrefetchEngine.h"

#include <algorithm>
#include <cassert>

using namespace hds;
using namespace hds::core;

void PrefetchEngine::install(dfsm::CheckCode NewCode,
                             std::vector<InstalledStream> NewStreams,
                             size_t ImageSiteCount, uint64_t InstallCycle) {
  Code = std::move(NewCode);
  Streams = std::move(NewStreams);
  for (InstalledStream &Stream : Streams) {
    Stream.Tag = NextStreamTag++;
    obs::StreamPrefetchStats Row;
    Row.StreamTag = Stream.Tag;
    Row.InstallCycle = InstallCycle;
    Row.Length = Stream.TailAddrs.size();
    History.push_back(Row);
  }
  SiteToTable.assign(ImageSiteCount, -1);
  for (size_t I = 0; I < Code.Sites.size(); ++I) {
    assert(Code.Sites[I].Pc < ImageSiteCount && "pc outside the image");
    SiteToTable[static_cast<size_t>(Code.Sites[I].Pc)] =
        static_cast<int32_t>(I);
  }
  State = 0;
  Installed = true;
}

void PrefetchEngine::uninstall() {
  Code = dfsm::CheckCode();
  Streams.clear();
  SiteToTable.clear();
  State = 0;
  Installed = false;
}

void PrefetchEngine::firePrefetches(dfsm::StreamIndex StreamIdx,
                                    memsim::Addr MatchAddr,
                                    const OptimizerConfig &Config,
                                    memsim::MemoryHierarchy &Hierarchy,
                                    RunStats &Stats) {
  ++Stats.CompleteMatches;
  const InstalledStream &Stream = Streams.at(StreamIdx);
  const uint64_t Count = std::min<uint64_t>(Stream.TailAddrs.size(),
                                            Config.MaxPrefetchesPerMatch);
  switch (Config.Mode) {
  case RunMode::MatchNoPrefetch:
    break; // measure matching cost only (Figure 12 "No-pref")
  case RunMode::SequentialPrefetch: {
    // Prefetch the blocks sequentially following the last matched
    // reference; same prefetch count as the real scheme would issue.
    const uint64_t Block = Hierarchy.l1().config().BlockBytes;
    for (uint64_t I = 1; I <= Count; ++I) {
      Hierarchy.prefetchT0(MatchAddr + I * Block, /*ChargeIssueSlot=*/true,
                           Stream.Tag);
      ++Stats.PrefetchesRequested;
    }
    break;
  }
  case RunMode::DynamicPrefetch:
    for (uint64_t I = 0; I < Count; ++I) {
      Hierarchy.prefetchT0(Stream.TailAddrs[I], /*ChargeIssueSlot=*/true,
                           Stream.Tag);
      ++Stats.PrefetchesRequested;
    }
    break;
  default:
    assert(false && "prefetch engine installed in a non-matching mode");
    break;
  }
}

void PrefetchEngine::onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                              const OptimizerConfig &Config,
                              memsim::MemoryHierarchy &Hierarchy,
                              RunStats &Stats) {
  assert(siteInstrumented(Site) && "access at an uninstrumented site");
  const dfsm::SiteCheckCode &Table =
      Code.Sites[static_cast<size_t>(SiteToTable[static_cast<size_t>(Site)])];

  ++Stats.InstrumentedSiteHits;

  // Execute the injected if-else structure (Figure 7): scan the outer
  // address branches until one matches, then that branch's specific
  // state compares; with no specific match the default arm restarts
  // matching at d(start, a).  A non-matching address costs one compare
  // per address group and resets the state.
  uint64_t Scanned = 0;
  const dfsm::AddrGroupCode *Group = nullptr;
  for (const dfsm::AddrGroupCode &Candidate : Table.Groups) {
    ++Scanned;
    if (Candidate.Addr == Addr) {
      Group = &Candidate;
      break;
    }
  }

  const std::vector<dfsm::StreamIndex> *Completions = nullptr;
  if (!Group) {
    State = 0;
  } else {
    const dfsm::CheckClause *Match = nullptr;
    for (const dfsm::CheckClause &Clause : Group->Specific) {
      ++Scanned;
      if (Clause.FromState == State) {
        Match = &Clause;
        break;
      }
    }
    if (Match) {
      State = Match->ToState;
      Completions = &Match->CompletedStreams;
    } else {
      State = Group->DefaultToState;
      Completions = &Group->DefaultCompletions;
    }
  }

  Stats.MatchClausesScanned += Scanned;
  Hierarchy.tick(Config.Costs.MatchClauseCycles *
                     std::max<uint64_t>(1, Scanned),
                 obs::CyclePhase::PrefixMatch);

  if (Completions)
    for (dfsm::StreamIndex StreamIdx : *Completions)
      firePrefetches(StreamIdx, Addr, Config, Hierarchy, Stats);
}
