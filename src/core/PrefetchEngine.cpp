//===- core/PrefetchEngine.cpp - Injected-code interpreter ----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "core/PrefetchEngine.h"

#include <algorithm>
#include <cassert>

using namespace hds;
using namespace hds::core;

void PrefetchEngine::install(dfsm::CheckCode NewCode,
                             std::vector<InstalledStream> NewStreams,
                             size_t ImageSiteCount, uint64_t InstallCycle) {
  Code = std::move(NewCode);
  Streams = std::move(NewStreams);
  for (InstalledStream &Stream : Streams) {
    Stream.Tag = NextStreamTag++;
    obs::StreamPrefetchStats Row;
    Row.StreamTag = Stream.Tag;
    Row.InstallCycle = InstallCycle;
    Row.Length = Stream.TailAddrs.size();
    History.push_back(Row);
  }
  SiteToTable.assign(ImageSiteCount, -1);
  SiteScans.clear();
  SiteScans.reserve(Code.Sites.size());
  for (size_t I = 0; I < Code.Sites.size(); ++I) {
    assert(Code.Sites[I].Pc < ImageSiteCount && "pc outside the image");
    SiteToTable[static_cast<size_t>(Code.Sites[I].Pc)] =
        static_cast<int32_t>(I);

    // Intern the site's scan keys (see SiteScan): dense address and
    // FromState arrays in table order, clause ranges as prefix sums.
    SiteScan Scan;
    const dfsm::SiteCheckCode &Table = Code.Sites[I];
    Scan.AddrKeys.reserve(Table.Groups.size());
    Scan.ClauseOffset.reserve(Table.Groups.size() + 1);
    Scan.ClauseOffset.push_back(0);
    for (const dfsm::AddrGroupCode &Group : Table.Groups) {
      Scan.AddrKeys.push_back(Group.Addr);
      for (const dfsm::CheckClause &Clause : Group.Specific)
        Scan.ClauseFrom.push_back(Clause.FromState);
      Scan.ClauseOffset.push_back(
          static_cast<uint32_t>(Scan.ClauseFrom.size()));
    }
    SiteScans.push_back(std::move(Scan));
  }
  State = 0;
  Installed = true;
}

void PrefetchEngine::uninstall() {
  Code = dfsm::CheckCode();
  SiteScans.clear();
  Streams.clear();
  SiteToTable.clear();
  State = 0;
  Installed = false;
}

void PrefetchEngine::firePrefetches(dfsm::StreamIndex StreamIdx,
                                    memsim::Addr MatchAddr,
                                    const OptimizerConfig &Config,
                                    memsim::MemoryHierarchy &Hierarchy,
                                    RunStats &Stats) {
  ++Stats.CompleteMatches;
  const InstalledStream &Stream = Streams.at(StreamIdx);
  // Issue window over the tail: Degree bounds how many targets, Distance
  // skips the match-adjacent ones (whose prefetches have the least lead
  // time).  Without a tuner the window is [0, MaxPrefetchesPerMatch) —
  // the paper's fixed sequence, byte for byte; with one it is the
  // stream's closed-loop state (docs/tuning.md), including degree 0 =
  // squelched.
  uint64_t Degree = Config.MaxPrefetchesPerMatch;
  uint64_t Distance = 0;
  if (Tuner) {
    Degree = Tuner->degree(
        Stream.Tag, static_cast<uint32_t>(Config.MaxPrefetchesPerMatch));
    Distance = Tuner->distance(Stream.Tag);
  }
  const uint64_t Tail = Stream.TailAddrs.size();
  const uint64_t Count =
      std::min<uint64_t>(Tail > Distance ? Tail - Distance : 0, Degree);
  switch (Config.Mode) {
  case RunMode::MatchNoPrefetch:
    break; // measure matching cost only (Figure 12 "No-pref")
  case RunMode::SequentialPrefetch: {
    // Prefetch the blocks sequentially following the last matched
    // reference; same prefetch count as the real scheme would issue.
    const uint64_t Block = Hierarchy.l1().config().BlockBytes;
    for (uint64_t I = 1; I <= Count; ++I) {
      Hierarchy.prefetchT0(MatchAddr + (Distance + I) * Block,
                           /*ChargeIssueSlot=*/true, Stream.Tag);
      ++Stats.PrefetchesRequested;
    }
    break;
  }
  case RunMode::DynamicPrefetch:
    for (uint64_t I = 0; I < Count; ++I) {
      Hierarchy.prefetchT0(Stream.TailAddrs[Distance + I],
                           /*ChargeIssueSlot=*/true, Stream.Tag);
      ++Stats.PrefetchesRequested;
    }
    break;
  default:
    assert(false && "prefetch engine installed in a non-matching mode");
    break;
  }
}

void PrefetchEngine::onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                              const OptimizerConfig &Config,
                              memsim::MemoryHierarchy &Hierarchy,
                              RunStats &Stats) {
  assert(siteInstrumented(Site) && "access at an uninstrumented site");
  const size_t TableIdx =
      static_cast<size_t>(SiteToTable[static_cast<size_t>(Site)]);
  const dfsm::SiteCheckCode &Table = Code.Sites[TableIdx];
  const SiteScan &Scan = SiteScans[TableIdx];

  ++Stats.InstrumentedSiteHits;

  // Execute the injected if-else structure (Figure 7): scan the outer
  // address branches until one matches, then that branch's specific
  // state compares; with no specific match the default arm restarts
  // matching at d(start, a).  A non-matching address costs one compare
  // per address group and resets the state.  Both scans run over the
  // interned key arrays (SiteScan) in table order, so the compare
  // sequence — and therefore Scanned — is exactly the clause structure's.
  uint64_t Scanned = 0;
  const size_t NumGroups = Scan.AddrKeys.size();
  size_t GroupIdx = NumGroups;
  for (size_t I = 0; I < NumGroups; ++I) {
    ++Scanned;
    if (Scan.AddrKeys[I] == Addr) {
      GroupIdx = I;
      break;
    }
  }

  const std::vector<dfsm::StreamIndex> *Completions = nullptr;
  if (GroupIdx == NumGroups) {
    State = 0;
  } else {
    const dfsm::AddrGroupCode &Group = Table.Groups[GroupIdx];
    const uint32_t Begin = Scan.ClauseOffset[GroupIdx];
    const uint32_t End = Scan.ClauseOffset[GroupIdx + 1];
    uint32_t Match = End;
    for (uint32_t I = Begin; I < End; ++I) {
      ++Scanned;
      if (Scan.ClauseFrom[I] == State) {
        Match = I;
        break;
      }
    }
    if (Match != End) {
      const dfsm::CheckClause &Clause = Group.Specific[Match - Begin];
      State = Clause.ToState;
      Completions = &Clause.CompletedStreams;
    } else {
      State = Group.DefaultToState;
      Completions = &Group.DefaultCompletions;
    }
  }

  Stats.MatchClausesScanned += Scanned;
  Hierarchy.tick(Config.Costs.MatchClauseCycles *
                     std::max<uint64_t>(1, Scanned),
                 obs::CyclePhase::PrefixMatch);

  if (Completions)
    for (dfsm::StreamIndex StreamIdx : *Completions)
      firePrefetches(StreamIdx, Addr, Config, Hierarchy, Stats);
}
