//===- core/RunStats.h - Per-run and per-cycle statistics ------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters collected while running a benchmark under the dynamic
/// optimizer.  CycleStats holds exactly the quantities the paper's Table 2
/// reports per optimization cycle; RunStats aggregates a whole run.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_CORE_RUNSTATS_H
#define HDS_CORE_RUNSTATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hds {
namespace core {

/// One profile/analyze/optimize/hibernate cycle (Table 2 row material).
struct CycleStats {
  uint64_t TracedRefs = 0;
  size_t HotStreamsDetected = 0;
  size_t StreamsInstalled = 0; // after unique-refs / head-length filters
  size_t DfsmStates = 0;
  size_t DfsmTransitions = 0;
  size_t CheckClausesInjected = 0;
  size_t ProceduresModified = 0;
  size_t SitesInstrumented = 0;
  uint64_t GrammarRules = 0;
  uint64_t GrammarSymbols = 0;
  uint64_t AnalysisCostCycles = 0;
  /// Hibernation length chosen for the phase following this cycle (only
  /// differs from the configured base under adaptive hibernation).
  uint64_t NextHibernationPeriods = 0;
};

/// Aggregate counters for one run of one benchmark configuration.
struct RunStats {
  /// Completed optimization cycles (Table 2 column 2).
  std::vector<CycleStats> Cycles;

  uint64_t TotalAccesses = 0;
  uint64_t ChecksExecuted = 0;
  uint64_t TracedRefs = 0;

  /// Prefix matching activity during hibernation phases.
  uint64_t InstrumentedSiteHits = 0; // accesses at pcs carrying checks
  uint64_t MatchClausesScanned = 0;
  uint64_t CompleteMatches = 0;
  uint64_t PrefetchesRequested = 0;

  /// Procedure-entry events that ran stale (pre-patch) code because their
  /// activation record predates the binary modification (Section 3.2).
  uint64_t StaleFrameAccesses = 0;
};

/// \name Stable serialization accessors
/// Field enumeration with a fixed, append-only order shared by every
/// serializer (the engine's binary wire format relies on encode and
/// decode walking the very same sequence).  \p Visit is invoked once per
/// scalar counter with a reference to the field; pass a const struct to
/// read and a mutable one to fill during decode.  New fields must be
/// appended at the end, never reordered or removed, or the wire protocol
/// version must be bumped.
/// @{
template <typename CycleStatsT, typename Fn>
void visitCycleStatsCounters(CycleStatsT &&Stats, Fn &&Visit) {
  Visit(Stats.TracedRefs);
  Visit(Stats.HotStreamsDetected);
  Visit(Stats.StreamsInstalled);
  Visit(Stats.DfsmStates);
  Visit(Stats.DfsmTransitions);
  Visit(Stats.CheckClausesInjected);
  Visit(Stats.ProceduresModified);
  Visit(Stats.SitesInstrumented);
  Visit(Stats.GrammarRules);
  Visit(Stats.GrammarSymbols);
  Visit(Stats.AnalysisCostCycles);
  Visit(Stats.NextHibernationPeriods);
}

template <typename RunStatsT, typename Fn>
void visitRunStatsCounters(RunStatsT &&Stats, Fn &&Visit) {
  Visit(Stats.TotalAccesses);
  Visit(Stats.ChecksExecuted);
  Visit(Stats.TracedRefs);
  Visit(Stats.InstrumentedSiteHits);
  Visit(Stats.MatchClausesScanned);
  Visit(Stats.CompleteMatches);
  Visit(Stats.PrefetchesRequested);
  Visit(Stats.StaleFrameAccesses);
}
/// @}

} // namespace core
} // namespace hds

#endif // HDS_CORE_RUNSTATS_H
