//===- core/RunStats.h - Per-run and per-cycle statistics ------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters collected while running a benchmark under the dynamic
/// optimizer.  CycleStats holds exactly the quantities the paper's Table 2
/// reports per optimization cycle; RunStats aggregates a whole run.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_CORE_RUNSTATS_H
#define HDS_CORE_RUNSTATS_H

#include "obs/Metrics.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hds {
namespace core {

/// One profile/analyze/optimize/hibernate cycle (Table 2 row material).
struct CycleStats {
  uint64_t TracedRefs = 0;
  size_t HotStreamsDetected = 0;
  size_t StreamsInstalled = 0; // after unique-refs / head-length filters
  size_t DfsmStates = 0;
  size_t DfsmTransitions = 0;
  size_t CheckClausesInjected = 0;
  size_t ProceduresModified = 0;
  size_t SitesInstrumented = 0;
  uint64_t GrammarRules = 0;
  uint64_t GrammarSymbols = 0;
  uint64_t AnalysisCostCycles = 0;
  /// Hibernation length chosen for the phase following this cycle (only
  /// differs from the configured base under adaptive hibernation).
  uint64_t NextHibernationPeriods = 0;
};

/// Aggregate counters for one run of one benchmark configuration.
struct RunStats {
  /// Completed optimization cycles (Table 2 column 2).
  std::vector<CycleStats> Cycles;

  uint64_t TotalAccesses = 0;
  uint64_t ChecksExecuted = 0;
  uint64_t TracedRefs = 0;

  /// Prefix matching activity during hibernation phases.
  uint64_t InstrumentedSiteHits = 0; // accesses at pcs carrying checks
  uint64_t MatchClausesScanned = 0;
  uint64_t CompleteMatches = 0;
  uint64_t PrefetchesRequested = 0;

  /// Procedure-entry events that ran stale (pre-patch) code because their
  /// activation record predates the binary modification (Section 3.2).
  uint64_t StaleFrameAccesses = 0;
};

/// \name Stable metric enumerations
/// Typed field enumeration with a fixed, append-only order shared by
/// every serializer (the engine's binary wire format relies on encode
/// and decode walking the very same sequence, and the metric ids are the
/// JSON keys).  \p Visit is invoked once per scalar counter with its
/// obs::MetricDef and a reference to the field; pass a const struct to
/// read and a mutable one to fill during decode.  New fields must be
/// appended at the end, never reordered or removed, or the wire protocol
/// version must be bumped (see obs/Metrics.h).
/// @{
template <typename CycleStatsT, typename Fn>
void visitCycleStatsMetrics(CycleStatsT &&Stats, Fn &&Visit) {
  using obs::MetricDef;
  using obs::MetricKind;
  Visit(MetricDef{"traced_refs", "references",
                  "data references recorded by the profiler this cycle"},
        Stats.TracedRefs);
  Visit(MetricDef{"hot_streams_detected", "streams",
                  "hot data streams the analysis extracted"},
        Stats.HotStreamsDetected);
  Visit(MetricDef{"streams_installed", "streams",
                  "streams surviving the install filters"},
        Stats.StreamsInstalled);
  Visit(MetricDef{"dfsm_states", "states",
                  "states of the generated prefix-match DFSM",
                  MetricKind::Gauge},
        Stats.DfsmStates);
  Visit(MetricDef{"dfsm_transitions", "transitions",
                  "transitions of the generated prefix-match DFSM",
                  MetricKind::Gauge},
        Stats.DfsmTransitions);
  Visit(MetricDef{"check_clauses_injected", "clauses",
                  "check clauses injected into the binary"},
        Stats.CheckClausesInjected);
  Visit(MetricDef{"procedures_modified", "procedures",
                  "procedures copied and patched by dynamic Vulcan"},
        Stats.ProceduresModified);
  Visit(MetricDef{"sites_instrumented", "sites",
                  "access sites carrying injected checks"},
        Stats.SitesInstrumented);
  Visit(MetricDef{"grammar_rules", "rules",
                  "Sequitur grammar rules at analysis time",
                  MetricKind::Gauge},
        Stats.GrammarRules);
  Visit(MetricDef{"grammar_symbols", "symbols",
                  "Sequitur right-hand-side symbols at analysis time",
                  MetricKind::Gauge},
        Stats.GrammarSymbols);
  Visit(MetricDef{"analysis_cost_cycles", "cycles",
                  "simulated cost charged for this analysis step"},
        Stats.AnalysisCostCycles);
  Visit(MetricDef{"next_hibernation_periods", "periods",
                  "hibernation length chosen for the following phase",
                  MetricKind::Gauge},
        Stats.NextHibernationPeriods);
}

template <typename RunStatsT, typename Fn>
void visitRunStatsMetrics(RunStatsT &&Stats, Fn &&Visit) {
  using obs::MetricDef;
  Visit(MetricDef{"accesses", "accesses",
                  "data references the workload executed"},
        Stats.TotalAccesses);
  Visit(MetricDef{"checks_executed", "checks",
                  "dynamic checks at entries and back edges"},
        Stats.ChecksExecuted);
  Visit(MetricDef{"traced_refs", "references",
                  "references recorded across all awake phases"},
        Stats.TracedRefs);
  Visit(MetricDef{"instrumented_site_hits", "accesses",
                  "accesses at pcs carrying injected checks"},
        Stats.InstrumentedSiteHits);
  Visit(MetricDef{"match_clauses_scanned", "clauses",
                  "check clauses scanned during prefix matching"},
        Stats.MatchClausesScanned);
  Visit(MetricDef{"complete_matches", "matches",
                  "complete prefix matches (streams fired)"},
        Stats.CompleteMatches);
  Visit(MetricDef{"prefetches_requested", "prefetches",
                  "prefetches the injected code requested"},
        Stats.PrefetchesRequested);
  Visit(MetricDef{"stale_frame_accesses", "accesses",
                  "accesses that ran stale pre-patch code"},
        Stats.StaleFrameAccesses);
}
/// @}

} // namespace core
} // namespace hds

#endif // HDS_CORE_RUNSTATS_H
