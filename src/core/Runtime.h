//===- core/Runtime.h - The mediated execution environment ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution environment benchmarks run against — the public API of
/// the whole system.
///
/// A workload declares its static structure once (procedures and data
/// access sites, i.e. pc's) and then executes by calling enterProcedure /
/// leaveProcedure / loopBackEdge (the dynamic check points of Figure 2),
/// load / store (data references), compute (pure computation cycles), and
/// allocate (heap objects).  The runtime drives, per the configured
/// RunMode:
///
///   * the memory hierarchy simulator (every access, every mode),
///   * the bursty tracing counters at every dynamic check,
///   * the temporal profiler while in instrumented code during awake
///     phases,
///   * the dynamic optimizer at phase boundaries, and
///   * the injected prefix-match/prefetch code at instrumented pc's
///     during hibernation.
///
/// This mediation layer is the substitution for Vulcan's binary editing
/// (DESIGN.md §1): the set of operations is exactly what the paper's
/// edited binaries perform, with costs charged in simulated cycles.
///
/// Example (see examples/quickstart.cpp for a complete program):
/// \code
///   hds::core::OptimizerConfig Config;
///   hds::core::Runtime Rt(Config);
///   auto Proc = Rt.declareProcedure("walk");
///   auto Site = Rt.declareSite(Proc, "node->next");
///   auto Node = Rt.allocate(32);
///   {
///     hds::core::Runtime::ProcedureScope Scope(Rt, Proc);
///     Rt.load(Site, Node);
///     Rt.compute(4);
///   }
///   uint64_t Cycles = Rt.cycles();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef HDS_CORE_RUNTIME_H
#define HDS_CORE_RUNTIME_H

#include "core/DynamicOptimizer.h"
#include "core/OptimizerConfig.h"
#include "core/PrefetchEngine.h"
#include "core/RunStats.h"
#include "memsim/MemoryHierarchy.h"
#include "prefetch/PrefetcherStack.h"
#include "prefetch/TuningPolicy.h"
#include "obs/CycleAccount.h"
#include "obs/PrefetchStats.h"
#include "obs/Timeline.h"
#include "profiling/BurstyTracer.h"
#include "vulcan/Image.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hds {
namespace core {

/// Observer of every Runtime API event, in program order — the single
/// observation mechanism of the runtime.  The trace record/replay
/// subsystem (src/replay) implements this to capture a run as a
/// re-executable event stream, and tooling (hds_run --dump-trace)
/// subclasses it to print the reference stream; the callbacks cover
/// exactly the public Runtime surface, so replaying them through a fresh
/// Runtime reproduces the original simulation state transition for
/// transition.  Costs one branch per event when no observer is installed.
///
/// Data accesses are delivered in batches: the runtime buffers them and
/// hands over a contiguous block via onAccessBatch, flushing before any
/// other callback so observers still see the unfiltered stream in exact
/// program order.  Observers that only care about per-event semantics
/// override onAccess and inherit the fan-out; throughput-sensitive ones
/// (the trace recorder) override onAccessBatch and consume whole blocks,
/// amortizing the virtual dispatch over runs of consecutive accesses.
class RuntimeObserver {
public:
  /// One buffered data reference, exactly the onAccess argument tuple.
  struct AccessEvent {
    vulcan::SiteId Site;
    memsim::Addr Addr;
    bool IsStore;
  };

  virtual ~RuntimeObserver();

  virtual void onDeclareProcedure(vulcan::ProcId Proc,
                                  const std::string &Name);
  virtual void onDeclareSite(vulcan::SiteId Site, vulcan::ProcId Proc,
                             const std::string &Label);
  virtual void onAllocate(memsim::Addr Result, uint64_t Bytes,
                          uint64_t Align);
  virtual void onPadHeap(uint64_t Bytes);
  virtual void onEnterProcedure(vulcan::ProcId Proc);
  virtual void onLeaveProcedure();
  virtual void onLoopBackEdge();
  virtual void onAccess(vulcan::SiteId Site, memsim::Addr Addr,
                        bool IsStore);
  /// A contiguous block of buffered accesses, oldest first.  The default
  /// implementation fans out to onAccess per event.
  virtual void onAccessBatch(const AccessEvent *Events, size_t Count);
  virtual void onCompute(uint64_t Cycles);
};

/// The mediated execution environment.
class Runtime {
public:
  explicit Runtime(const OptimizerConfig &Config);

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// \name Static program structure (done once, before execution).
  /// @{
  vulcan::ProcId declareProcedure(std::string Name);
  vulcan::SiteId declareSite(vulcan::ProcId Proc,
                             std::string Label = std::string());
  /// @}

  /// \name Simulated heap.
  /// @{

  /// Bump-allocates \p Bytes (aligned to \p Align) and returns the
  /// address.  Allocation order controls data layout, which is how the
  /// workloads model sequentially vs. non-sequentially allocated hot data
  /// streams (Section 4.3's parser discussion).
  memsim::Addr allocate(uint64_t Bytes, uint64_t Align = 8);

  /// Skips \p Bytes of address space, scattering subsequent allocations
  /// onto different cache blocks/sets.
  void padHeap(uint64_t Bytes);
  /// @}

  /// \name Execution events.
  /// @{

  /// Procedure entry: pushes an activation record (snapshotting the
  /// procedure's code version for stale-frame semantics, Section 3.2) and
  /// executes a dynamic check.
  void enterProcedure(vulcan::ProcId Proc);

  /// Procedure exit: pops the activation record.
  void leaveProcedure();

  /// Loop back-edge: executes a dynamic check (Figure 2).
  void loopBackEdge();

  /// Data references.  Loads and stores are modelled alike (a data
  /// reference is "a load or store of a particular address", §2.1).
  void load(vulcan::SiteId Site, memsim::Addr Addr) {
    access(Site, Addr, /*IsStore=*/false);
  }
  void store(vulcan::SiteId Site, memsim::Addr Addr) {
    access(Site, Addr, /*IsStore=*/true);
  }

  /// Pure computation taking \p Cycles cycles.
  void compute(uint64_t Cycles) {
    Hierarchy.tick(Cycles);
    if (Observer) {
      flushObserver();
      Observer->onCompute(Cycles);
    }
  }
  /// @}

  /// \name Results and component access.
  /// @{
  uint64_t cycles() const { return Hierarchy.now(); }
  const RunStats &stats() const { return Stats; }

  /// Snapshot of the attributed cycle account: every simulated cycle by
  /// phase (pure compute, demand stall, checks, profiling, matching,
  /// prefetch issue, analysis).  total() always equals cycles().
  obs::CycleBreakdown cycleBreakdown() const {
    return Hierarchy.account().snapshot();
  }

  /// Per-hot-data-stream prefetch effectiveness: one row per stream ever
  /// installed (identity from the prefetch engine, classification counts
  /// from the memory hierarchy).
  std::vector<obs::StreamPrefetchStats> streamPrefetchStats() const;

  /// Phase timeline (awake / analysis / hibernation spans) recorded by
  /// the optimizer; rendered by `hds_run --trace-events`.
  const obs::Timeline &timeline() const { return Timeline; }

  const OptimizerConfig &config() const { return Config; }
  memsim::MemoryHierarchy &memory() { return Hierarchy; }
  const memsim::MemoryHierarchy &memory() const { return Hierarchy; }
  vulcan::Image &image() { return TheImage; }
  const vulcan::Image &image() const { return TheImage; }
  const profiling::BurstyTracer &tracer() const { return Tracer; }
  const PrefetchEngine &engine() const { return Engine; }
  DynamicOptimizer &optimizer() { return Optimizer; }
  /// The hardware prefetcher stack, or nullptr when no prefetcher is
  /// enabled.
  prefetch::PrefetcherStack *prefetcherStack() const {
    return Prefetchers.get();
  }
  /// Per-prefetcher effectiveness rows (identity + training counts from
  /// the prefetchers, classification counts joined from the memory
  /// hierarchy's per-tag buckets).  Empty when no prefetcher is enabled.
  std::vector<obs::PrefetcherStats> prefetcherStats() const;
  /// The closed-loop tuner, or nullptr when Config.Tuning is disabled.
  prefetch::TuningPolicy *tuningPolicy() const { return Tuner.get(); }
  /// @}

  /// Installs (or, with nullptr, removes) the full-event observer.  Not
  /// owned; must outlive its installation.  Observers see the
  /// *unfiltered* event stream — the same thing the paper's instrumented
  /// code version sees.  Any buffered accesses are flushed to the
  /// outgoing observer first, so detaching (the last step of every
  /// recording) always leaves the observer with the complete stream.
  void setObserver(RuntimeObserver *NewObserver) {
    flushObserver();
    Observer = NewObserver;
  }

  /// Delivers buffered access events to the observer now.  Called
  /// automatically before every non-access observer callback and on
  /// setObserver; observers that sample mid-run can call it directly to
  /// synchronize.
  void flushObserver() {
    if (PendingAccesses == 0)
      return;
    const size_t Count = PendingAccesses;
    PendingAccesses = 0;
    if (Observer)
      Observer->onAccessBatch(Pending.data(), Count);
  }

  /// RAII procedure activation.
  class ProcedureScope {
  public:
    ProcedureScope(Runtime &R, vulcan::ProcId Proc) : Rt(R) {
      Rt.enterProcedure(Proc);
    }
    ~ProcedureScope() { Rt.leaveProcedure(); }
    ProcedureScope(const ProcedureScope &) = delete;
    ProcedureScope &operator=(const ProcedureScope &) = delete;

  private:
    Runtime &Rt;
  };

private:
  struct Frame {
    vulcan::ProcId Proc;
    uint32_t CodeVersionAtEntry;
  };

  /// Shared load/store path.  Lives in the header: one simulated access
  /// is a few dozen instructions end to end, so the call boundary would
  /// dominate (the workload loop, this dispatcher, and the hierarchy /
  /// cache lookups all inline into one straight-line block; static
  /// libraries without LTO get no cross-TU inlining otherwise).  The
  /// instrumented-mode tail — tracing cost, Sequitur feed, prefix
  /// matching — stays out of line; Original mode never reaches it.
  void access(vulcan::SiteId Site, memsim::Addr Addr, bool IsStore) {
    if (Observer)
      bufferAccess(Site, Addr, IsStore);
    ++Stats.TotalAccesses;
    const uint64_t Latency = Hierarchy.access(Addr);

    // Hardware prefetchers observe every demand access regardless of mode.
    if (Prefetchers)
      Prefetchers->onAccess(Site, Addr, Latency,
                            Latency > Config.Latency.L1HitCycles, Hierarchy);

    // Closed-loop tuning epoch clock, also mode-independent: counted in
    // demand accesses so epoch boundaries — and thus every adjustment —
    // are a pure function of the observed stream (docs/tuning.md).
    if (Tuner && Tuner->onDemandAccess())
      Tuner->rollEpoch(Hierarchy.streamClasses());

    if (Config.Mode == RunMode::Original)
      return;
    accessInstrumented(Site, Addr);
  }

  /// The instrumented-code-version part of access(): tracing cost,
  /// profiler feed, and the injected prefix-match/prefetch code.
  void accessInstrumented(vulcan::SiteId Site, memsim::Addr Addr);

  /// Queues one access for the observer, handing off a full block when
  /// the buffer fills.
  void bufferAccess(vulcan::SiteId Site, memsim::Addr Addr, bool IsStore) {
    Pending[PendingAccesses++] = {Site, Addr, IsStore};
    if (PendingAccesses == Pending.size())
      flushObserver();
  }

  /// One dynamic check (procedure entry or loop back-edge).
  void dynamicCheck();

  /// Whether the innermost activation record runs current (patched) code.
  bool currentFrameIsFresh() const;

  static profiling::BurstyTracingConfig
  effectiveTracingConfig(const OptimizerConfig &Config);

  OptimizerConfig Config;
  vulcan::Image TheImage;
  memsim::MemoryHierarchy Hierarchy;
  profiling::BurstyTracer Tracer;
  PrefetchEngine Engine;
  RunStats Stats;
  obs::Timeline Timeline;
  DynamicOptimizer Optimizer;
  std::unique_ptr<prefetch::PrefetcherStack> Prefetchers;
  std::unique_ptr<prefetch::TuningPolicy> Tuner;
  RuntimeObserver *Observer = nullptr;
  /// Access-event staging buffer (see RuntimeObserver::onAccessBatch).
  /// 256 events keeps the buffer inside L1 while leaving the per-access
  /// observer cost at one store plus a capacity check.
  std::array<RuntimeObserver::AccessEvent, 256> Pending;
  size_t PendingAccesses = 0;
  std::vector<Frame> CallStack;
  memsim::Addr HeapBreak;
};

} // namespace core
} // namespace hds

#endif // HDS_CORE_RUNTIME_H
