//===- src/lint/SchemaLock.cpp - W1 wire/metric schema lock ---------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "lint/SchemaLock.h"

#include "lint/ScopeTracker.h"
#include "lint/TokenUtil.h"

#include <algorithm>
#include <cstdlib>

namespace hds {
namespace lint {

namespace {

using Toks = std::vector<Token>;

bool isVisitMetricsName(const std::string &Name) {
  return Name.size() > std::string("visitMetrics").size() &&
         startsWith(Name, "visit") && endsWith(Name, "Metrics");
}

} // namespace

std::vector<SchemaSection> collectSchema(const std::vector<LexedFile> &Files) {
  std::vector<SchemaSection> Sections;
  for (const LexedFile &File : Files) {
    const Toks &T = File.Toks;

    // The wire protocol version constant.
    if (inTree(File.Path, "src/engine"))
      for (size_t I = 0; I + 2 < T.size(); ++I)
        if (isIdent(T, I, "ProtocolVersion") && isPunct(T, I + 1, "=") &&
            T[I + 2].K == Token::Number) {
          SchemaSection S;
          S.Kind = "const";
          S.Name = "wire";
          S.Path = File.Path;
          S.Line = T[I].Line;
          S.Entries.push_back(
              {"ProtocolVersion",
               std::strtoll(T[I + 2].Text.c_str(), nullptr, 0)});
          Sections.push_back(std::move(S));
          break;
        }

    // Enums marked hds-schema-enum.
    for (const EnumDef &E : findEnums(File)) {
      if (!E.SchemaLocked)
        continue;
      SchemaSection S;
      S.Kind = "enum";
      S.Name = E.Name;
      S.Path = File.Path;
      S.Line = E.Line;
      for (const auto &[Name, Value] : E.Enumerators)
        S.Entries.push_back({Name, Value});
      Sections.push_back(std::move(S));
    }

    // visit*Metrics enumeration functions: the ordered MetricDef id list.
    for (size_t I = 1; I < T.size(); ++I) {
      if (T[I].K != Token::Ident || !isVisitMetricsName(T[I].Text) ||
          !isPunct(T, I + 1, "(") || !isIdent(T, I - 1, "void"))
        continue;
      size_t ParamClose = matchingClose(T, I + 1);
      if (ParamClose == T.size() || !isPunct(T, ParamClose + 1, "{"))
        continue;
      size_t BodyClose = matchingClose(T, ParamClose + 1);
      if (BodyClose == T.size())
        continue;
      SchemaSection S;
      S.Kind = "metrics";
      S.Name = T[I].Text;
      S.Path = File.Path;
      S.Line = T[I].Line;
      long long Ordinal = 0;
      for (size_t J = ParamClose + 1; J < BodyClose; ++J)
        if (isIdent(T, J, "MetricDef") && isPunct(T, J + 1, "{") &&
            J + 2 < BodyClose && T[J + 2].K == Token::String)
          S.Entries.push_back({T[J + 2].Text, Ordinal++});
      Sections.push_back(std::move(S));
    }
  }
  std::sort(Sections.begin(), Sections.end(),
            [](const SchemaSection &A, const SchemaSection &B) {
              if (A.Kind != B.Kind)
                return A.Kind < B.Kind;
              return A.Name < B.Name;
            });
  return Sections;
}

std::string renderSchemaLock(const std::vector<SchemaSection> &Sections) {
  std::string Out;
  Out += "# hds-schema-lock-v1\n";
  Out += "# Canonical snapshot of the wire/metric schema (docs/engine.md).\n";
  Out += "# Regenerate after a legal append with:\n";
  Out += "#   build/tools/hds_lint --write-schema-lock "
         "tests/golden/schema.lock src tools bench tests\n";
  Out += "# Reordering, removing, or renumbering an existing entry is a\n";
  Out += "# W1 lint error: the schema is append-only.\n";
  for (const SchemaSection &S : Sections) {
    Out += "\n[" + S.Kind + " " + S.Name + "]\n";
    for (const SchemaEntry &E : S.Entries)
      Out += E.Name + " " + std::to_string(E.Value) + "\n";
  }
  return Out;
}

bool parseSchemaLock(std::string_view Text, const std::string &LockPath,
                     std::vector<SchemaSection> &Out, std::string &Error) {
  Out.clear();
  size_t Pos = 0;
  unsigned LineNo = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.empty() || Line.front() == '#')
      continue;
    if (Line.front() == '[') {
      size_t Close = Line.find(']');
      size_t Space = Line.find(' ');
      if (Close == std::string_view::npos || Space == std::string_view::npos ||
          Space > Close) {
        Error = LockPath + ":" + std::to_string(LineNo) +
                ": malformed section header";
        return false;
      }
      SchemaSection S;
      S.Kind = std::string(Line.substr(1, Space - 1));
      S.Name = std::string(Line.substr(Space + 1, Close - Space - 1));
      S.Path = LockPath;
      S.Line = LineNo;
      Out.push_back(std::move(S));
      continue;
    }
    size_t Space = Line.find(' ');
    if (Space == std::string_view::npos || Out.empty()) {
      Error = LockPath + ":" + std::to_string(LineNo) +
              ": entry outside a section or missing its value";
      return false;
    }
    SchemaEntry E;
    E.Name = std::string(Line.substr(0, Space));
    E.Value = std::strtoll(std::string(Line.substr(Space + 1)).c_str(),
                           nullptr, 0);
    Out.back().Entries.push_back(std::move(E));
  }
  return true;
}

void compareSchema(const std::vector<SchemaSection> &Locked,
                   const std::vector<SchemaSection> &Current,
                   const std::string &LockPath, std::vector<Finding> &Out) {
  auto FindCurrent = [&](const SchemaSection &L) -> const SchemaSection * {
    for (const SchemaSection &C : Current)
      if (C.Kind == L.Kind && C.Name == L.Name)
        return &C;
    return nullptr;
  };

  bool Stale = false;
  for (const SchemaSection &L : Locked) {
    const SchemaSection *C = FindCurrent(L);
    if (!C) {
      Out.push_back({"W1", LockPath, L.Line,
                     "locked schema section [" + L.Kind + " " + L.Name +
                         "] no longer exists in the tree",
                     "the schema is append-only: restore the section, or "
                     "document the breaking change and regenerate the lock "
                     "in the same commit"});
      continue;
    }
    // The locked entry list must be a prefix of the current one, name and
    // value both: anything else breaks readers of the old schema.
    for (size_t I = 0; I < L.Entries.size(); ++I) {
      if (I >= C->Entries.size()) {
        Out.push_back({"W1", C->Path, C->Line,
                       "[" + L.Kind + " " + L.Name + "] entry '" +
                           L.Entries[I].Name +
                           "' was removed; the schema is append-only",
                       "restore the entry — old readers index by it"});
        break;
      }
      const SchemaEntry &LE = L.Entries[I];
      const SchemaEntry &CE = C->Entries[I];
      if (LE.Name != CE.Name) {
        bool Later = false;
        for (size_t K = I + 1; K < C->Entries.size(); ++K)
          if (C->Entries[K].Name == LE.Name)
            Later = true;
        Out.push_back({"W1", C->Path, C->Line,
                       "[" + L.Kind + " " + L.Name + "] entry '" + LE.Name +
                           "' was " +
                           (Later ? "reordered (now after '" + CE.Name + "')"
                                  : "removed or renamed (found '" + CE.Name +
                                        "' at its position)"),
                       "the schema is append-only: new entries go at the "
                       "end, existing ones never move"});
        break;
      }
      if (LE.Value != CE.Value) {
        // The wire protocol version is the one sanctioned mutation: it
        // must move forward when the frame payload evolves (skew is
        // rejected at the frame header, so old readers are never lied
        // to).  A bump only leaves the lock stale until regenerated;
        // moving backwards is still a finding.
        if (L.Kind == "const" && L.Name == "wire" &&
            LE.Name == "ProtocolVersion" && CE.Value > LE.Value) {
          Stale = true;
          continue;
        }
        Out.push_back({"W1", C->Path, C->Line,
                       "[" + L.Kind + " " + L.Name + "] entry '" + LE.Name +
                           "' was renumbered from " +
                           std::to_string(LE.Value) + " to " +
                           std::to_string(CE.Value),
                       "existing wire tags and enum values are frozen; "
                       "append a new entry instead"});
        break;
      }
    }
    if (C->Entries.size() > L.Entries.size())
      Stale = true;
  }
  for (const SchemaSection &C : Current) {
    bool Known = false;
    for (const SchemaSection &L : Locked)
      if (L.Kind == C.Kind && L.Name == C.Name)
        Known = true;
    if (!Known)
      Stale = true;
  }
  if (Stale)
    Out.push_back({"W1", LockPath, 1,
                   "schema.lock is stale: the tree appended schema entries "
                   "or sections not yet in the lock",
                   "regenerate with `build/tools/hds_lint "
                   "--write-schema-lock " +
                       LockPath + " src tools bench tests` and commit the "
                                  "diff"});
}

} // namespace lint
} // namespace hds
