//===- src/lint/LockDiscipline.cpp - T1 guarded-field checking ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "lint/LockDiscipline.h"

#include "lint/ScopeTracker.h"
#include "lint/TokenUtil.h"

#include <set>

namespace hds {
namespace lint {

namespace {

using Toks = std::vector<Token>;

/// Container member calls that mutate the receiver.
bool isMutatingMethod(const std::string &Name) {
  static const std::set<std::string> Methods = {
      "push_back", "push_front",    "pop_back", "pop_front", "clear",
      "erase",     "insert",        "emplace",  "emplace_back",
      "emplace_front", "assign",    "resize",   "reserve",   "swap"};
  return Methods.count(Name) != 0;
}

bool isCompoundAssign(const std::string &P) {
  return P == "+=" || P == "-=" || P == "*=" || P == "/=" || P == "%=" ||
         P == "&=" || P == "|=" || P == "^=" || P == "<<=" || P == ">>=";
}

/// Position of \p Marker when the comment IS an annotation: nothing but
/// whitespace and doc-comment punctuation may precede it.  Prose that
/// merely mentions the marker ("fields annotated hds-guarded-by(...)")
/// does not count.
size_t markerStart(const std::string &Text, std::string_view Marker) {
  size_t Pos = Text.find(Marker);
  if (Pos == std::string::npos)
    return std::string::npos;
  for (size_t I = 0; I < Pos; ++I)
    if (std::string_view(" \t\r\n/*!<`").find(Text[I]) ==
        std::string_view::npos)
      return std::string::npos;
  return Pos;
}

/// Parses "hds-guarded-by(Name)" / "hds-requires(Name)" out of a comment.
/// Returns the mutex name, or "" when the marker is absent or malformed.
std::string parseMarker(const std::string &Text, std::string_view Marker) {
  size_t Pos = markerStart(Text, Marker);
  if (Pos == std::string::npos)
    return {};
  size_t Open = Pos + Marker.size();
  if (Open >= Text.size() || Text[Open] != '(')
    return {};
  size_t Close = Text.find(')', Open);
  if (Close == std::string::npos)
    return {};
  return Text.substr(Open + 1, Close - Open - 1);
}

/// The field declared on line \p Line: first identifier followed by ';',
/// '=', '{', or '['.  Returns the token index, or T.size().
size_t fieldDeclOnLine(const Toks &T, unsigned Line) {
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].Line != Line || T[I].K != Token::Ident)
      continue;
    if (isPunct(T, I + 1, ";") || isPunct(T, I + 1, "=") ||
        isPunct(T, I + 1, "{") || isPunct(T, I + 1, "["))
      return I;
  }
  return T.size();
}

/// Innermost class span containing token \p Tok.
const ClassSpan *owningClass(const std::vector<ClassSpan> &Classes,
                             size_t Tok) {
  const ClassSpan *Best = nullptr;
  for (const ClassSpan &CS : Classes)
    if (CS.Open < Tok && Tok < CS.Close &&
        (!Best || CS.Close - CS.Open < Best->Close - Best->Open))
      Best = &CS;
  return Best;
}

/// One acquired lock in the current function walk.
struct ActiveLock {
  std::string Var;
  std::vector<std::string> Mutexes;
  int Depth = 0; ///< brace depth at the declaration; released below it
  bool Held = true;
  /// Held-state saved by manual lock()/unlock() toggles in nested blocks,
  /// restored when the block closes.  The linear token walk cannot see
  /// that `if (done) { L.unlock(); return; }` never reaches the code
  /// after the block; scoping the toggle to its block models the common
  /// unlock-then-exit pattern without flow analysis.
  std::vector<std::pair<int, bool>> SavedHeld;
};

/// Extracts the mutex names from a lock constructor argument list
/// [ArgsOpen, ArgsClose): the last identifier of each top-level argument.
/// `std::defer_lock` / `std::try_to_lock` mean the mutex is not yet held.
void lockCtorMutexes(const Toks &T, size_t ArgsOpen, size_t ArgsClose,
                     std::vector<std::string> &Mutexes, bool &HeldAtCtor) {
  std::string Last;
  int Depth = 0;
  for (size_t I = ArgsOpen + 1; I < ArgsClose; ++I) {
    if (T[I].K == Token::Punct) {
      const std::string &P = T[I].Text;
      if (P == "(" || P == "[" || P == "{")
        ++Depth;
      else if (P == ")" || P == "]" || P == "}")
        --Depth;
      else if (P == "," && Depth == 0) {
        if (!Last.empty())
          Mutexes.push_back(Last);
        Last.clear();
      }
      continue;
    }
    if (T[I].K == Token::Ident)
      Last = T[I].Text;
  }
  if (!Last.empty())
    Mutexes.push_back(Last);
  HeldAtCtor = true;
  std::vector<std::string> Real;
  for (const std::string &M : Mutexes) {
    if (M == "defer_lock")
      HeldAtCtor = false;
    else if (M != "adopt_lock" && M != "try_to_lock")
      Real.push_back(M);
  }
  Mutexes = std::move(Real);
}

} // namespace

LockRegistry collectLockAnnotations(const std::vector<LexedFile> &Files,
                                    std::vector<Finding> &Sup) {
  LockRegistry Reg;
  for (const LexedFile &File : Files) {
    std::vector<ClassSpan> Classes;
    std::vector<FunctionBody> Bodies;
    bool Scanned = false;
    for (const Comment &Note : File.Comments) {
      std::string GuardMutex = parseMarker(Note.Text, "hds-guarded-by");
      std::string ReqMutex = parseMarker(Note.Text, "hds-requires");
      if (GuardMutex.empty() && ReqMutex.empty()) {
        // A marker without a parenthesized mutex name is a silent no-op
        // waiting to happen — report it.
        if (markerStart(Note.Text, "hds-guarded-by") != std::string::npos ||
            markerStart(Note.Text, "hds-requires") != std::string::npos)
          Sup.push_back({"SUP", File.Path, Note.Line,
                         "lock annotation is missing its (mutexName)",
                         "write `// hds-guarded-by(Mutex)` or "
                         "`// hds-requires(Mutex)`"});
        continue;
      }
      if (!Scanned) {
        Classes = findClassSpans(File.Toks);
        Bodies = findFunctionBodies(File.Toks, Classes);
        Scanned = true;
      }
      // The annotation attaches to its own lines or the line below.
      bool Attached = false;
      if (!GuardMutex.empty()) {
        for (unsigned L = Note.Line; L <= Note.EndLine + 1 && !Attached;
             ++L) {
          size_t Tok = fieldDeclOnLine(File.Toks, L);
          if (Tok == File.Toks.size())
            continue;
          const ClassSpan *CS = owningClass(Classes, Tok);
          if (!CS)
            continue;
          Reg.Fields[CS->Name][File.Toks[Tok].Text] = GuardMutex;
          Attached = true;
        }
        if (!Attached)
          Sup.push_back({"SUP", File.Path, Note.Line,
                         "hds-guarded-by annotation does not attach to a "
                         "field declaration inside a class",
                         "place it on the field's line or the line above"});
      }
      if (!ReqMutex.empty()) {
        for (const FunctionBody &FB : Bodies)
          if (FB.Line >= Note.Line && FB.Line <= Note.EndLine + 1) {
            Reg.Requires[FB.ClassName][FB.Name] = ReqMutex;
            Attached = true;
            break;
          }
        if (!Attached)
          Sup.push_back({"SUP", File.Path, Note.Line,
                         "hds-requires annotation does not attach to a "
                         "function definition",
                         "place it on the line above the definition whose "
                         "callers must hold the mutex"});
      }
    }
  }
  return Reg;
}

void checkLockDiscipline(const LexedFile &File, const LockRegistry &Registry,
                         std::vector<Finding> &Out) {
  if (Registry.empty())
    return;
  const Toks &T = File.Toks;

  // Fast reject: does the file mention any guarded class or field at all?
  std::set<std::string> Interesting;
  for (const auto &[Class, Fields] : Registry.Fields) {
    Interesting.insert(Class);
    for (const auto &[Field, Mutex] : Fields) {
      (void)Mutex;
      Interesting.insert(Field);
    }
  }
  for (const auto &[Class, Fns] : Registry.Requires) {
    Interesting.insert(Class);
    for (const auto &[Fn, Mutex] : Fns) {
      (void)Mutex;
      Interesting.insert(Fn);
    }
  }
  bool Mentions = false;
  for (const Token &Tok : T)
    if (Tok.K == Token::Ident && Interesting.count(Tok.Text)) {
      Mentions = true;
      break;
    }
  if (!Mentions)
    return;

  std::vector<ClassSpan> Classes = findClassSpans(T);
  std::vector<FunctionBody> Bodies = findFunctionBodies(T, Classes);

  auto FieldMutex = [&](const std::string &Class,
                        const std::string &Field) -> const std::string * {
    auto CIt = Registry.Fields.find(Class);
    if (CIt == Registry.Fields.end())
      return nullptr;
    auto FIt = CIt->second.find(Field);
    return FIt == CIt->second.end() ? nullptr : &FIt->second;
  };
  auto RequiredMutex = [&](const std::string &Class,
                           const std::string &Fn) -> const std::string * {
    auto CIt = Registry.Requires.find(Class);
    if (CIt == Registry.Requires.end())
      return nullptr;
    auto FIt = CIt->second.find(Fn);
    return FIt == CIt->second.end() ? nullptr : &FIt->second;
  };

  for (const FunctionBody &FB : Bodies) {
    bool OwnerAnnotated = Registry.Fields.count(FB.ClassName) != 0 ||
                          Registry.Requires.count(FB.ClassName) != 0;
    if (FB.IsCtorDtor && OwnerAnnotated)
      continue; // single-threaded by construction

    // The body of an hds-requires function holds its mutex throughout.
    std::set<std::string> AlwaysHeld;
    if (const std::string *M = RequiredMutex(FB.ClassName, FB.Name))
      AlwaysHeld.insert(*M);

    std::map<std::string, std::string> VarClass; // local var -> guarded class
    std::vector<ActiveLock> Locks;
    int Depth = 0;

    auto MutexHeld = [&](const std::string &M) {
      if (AlwaysHeld.count(M))
        return true;
      for (const ActiveLock &L : Locks)
        if (L.Held)
          for (const std::string &Held : L.Mutexes)
            if (Held == M)
              return true;
      return false;
    };

    for (size_t I = FB.NameTok; I < FB.Close && I < T.size(); ++I) {
      if (T[I].K == Token::Punct) {
        if (T[I].Text == "{") {
          ++Depth;
        } else if (T[I].Text == "}") {
          --Depth;
          while (!Locks.empty() && Locks.back().Depth > Depth)
            Locks.pop_back();
          for (ActiveLock &L : Locks)
            while (!L.SavedHeld.empty() && L.SavedHeld.back().first > Depth) {
              L.Held = L.SavedHeld.back().second;
              L.SavedHeld.pop_back();
            }
        }
        continue;
      }
      if (T[I].K != Token::Ident)
        continue;

      // Local declarations binding an annotated class type to a name:
      // `ServeState State;`, `ServeState &State` (parameter).
      if (Registry.Fields.count(T[I].Text) ||
          Registry.Requires.count(T[I].Text)) {
        size_t J = I + 1;
        while (isPunct(T, J, "&") || isPunct(T, J, "*") ||
               isIdent(T, J, "const"))
          ++J;
        if (J < T.size() && T[J].K == Token::Ident &&
            !isPunct(T, J + 1, "("))
          VarClass[T[J].Text] = T[I].Text;
      }

      // Lock acquisition: std::lock_guard/scoped_lock/unique_lock,
      // optionally templated, then the lock variable and its ctor args.
      if (T[I].Text == "lock_guard" || T[I].Text == "scoped_lock" ||
          T[I].Text == "unique_lock") {
        size_t J = I + 1;
        if (isPunct(T, J, "<")) {
          size_t C = matchingTemplateClose(T, J);
          if (C == T.size())
            continue;
          J = C + 1;
        }
        if (J >= T.size() || T[J].K != Token::Ident)
          continue;
        std::string Var = T[J].Text;
        size_t ArgsOpen = J + 1;
        if (!isPunct(T, ArgsOpen, "(") && !isPunct(T, ArgsOpen, "{"))
          continue;
        size_t ArgsClose = matchingClose(T, ArgsOpen);
        if (ArgsClose == T.size())
          continue;
        ActiveLock L;
        L.Var = Var;
        L.Depth = Depth;
        lockCtorMutexes(T, ArgsOpen, ArgsClose, L.Mutexes, L.Held);
        Locks.push_back(std::move(L));
        I = ArgsClose;
        continue;
      }

      // Manual lock()/unlock() on a tracked lock variable.
      if ((isPunct(T, I + 1, ".") &&
           (isIdent(T, I + 2, "unlock") || isIdent(T, I + 2, "lock")) &&
           isPunct(T, I + 3, "("))) {
        for (ActiveLock &L : Locks)
          if (L.Var == T[I].Text) {
            if (Depth > L.Depth)
              L.SavedHeld.emplace_back(Depth, L.Held);
            L.Held = isIdent(T, I + 2, "lock");
          }
      }

      // Access-path scan.  A path starts at an identifier not preceded
      // by '.', '->', or '::'.
      if (I > FB.NameTok &&
          (isPunct(T, I - 1, ".") || isPunct(T, I - 1, "->") ||
           isPunct(T, I - 1, "::")))
        continue;
      std::vector<std::string> Comps{T[I].Text};
      size_t J = I + 1;
      while (J < T.size()) {
        if (isPunct(T, J, "[")) {
          size_t C = matchingClose(T, J);
          if (C == T.size())
            break;
          J = C + 1;
          continue;
        }
        if ((isPunct(T, J, ".") || isPunct(T, J, "->")) && J + 1 < T.size() &&
            T[J + 1].K == Token::Ident) {
          Comps.push_back(T[J + 1].Text);
          J += 2;
          continue;
        }
        break;
      }
      if (J >= T.size())
        continue;
      const Token &Op = T[J];

      bool PreIncDec = I > 0 && (isPunct(T, I - 1, "++") ||
                                 isPunct(T, I - 1, "--"));
      bool PostMutates =
          Op.K == Token::Punct &&
          (Op.Text == "+=" || Op.Text == "++" || Op.Text == "--" ||
           isCompoundAssign(Op.Text));
      bool PlainAssign = Op.K == Token::Punct && Op.Text == "=";
      if (PlainAssign) {
        // `Type Name = ...` is a declaration/initialization, not a
        // mutation of a previously declared object.
        bool DeclContext =
            I > 0 && (T[I - 1].K == Token::Ident || isPunct(T, I - 1, ">") ||
                      isPunct(T, I - 1, "*") || isPunct(T, I - 1, "&"));
        PostMutates = PostMutates || (!DeclContext && Comps.size() >= 1);
        if (DeclContext)
          PlainAssign = false;
      }
      bool MethodCall = Op.K == Token::Punct && Op.Text == "(" &&
                        Comps.size() >= 2 &&
                        isMutatingMethod(Comps.back());
      bool Mutates = PreIncDec || PostMutates || MethodCall;

      // Resolve the path to (guarded class, field).
      const std::string *Mutex = nullptr;
      std::string Field;
      std::string ViaClass;
      // Field components: everything except a trailing mutating method.
      size_t FieldCount = MethodCall ? Comps.size() - 1 : Comps.size();
      if (FieldCount >= 1) {
        const std::string &Base = Comps.front();
        if (Base == "this" && FieldCount >= 2) {
          Mutex = FieldMutex(FB.ClassName, Comps[1]);
          Field = Comps[1];
          ViaClass = FB.ClassName;
        } else if (auto VIt = VarClass.find(Base);
                   VIt != VarClass.end() && FieldCount >= 2) {
          Mutex = FieldMutex(VIt->second, Comps[1]);
          Field = Comps[1];
          ViaClass = VIt->second;
        } else if (!FB.ClassName.empty()) {
          Mutex = FieldMutex(FB.ClassName, Base);
          Field = Base;
          ViaClass = FB.ClassName;
        }
      }
      if (Mutex && Mutates && !MutexHeld(*Mutex))
        Out.push_back(
            {"T1", File.Path, T[I].Line,
             "mutation of '" + ViaClass + "::" + Field + "' (guarded by '" +
                 *Mutex + "') outside a scope holding it",
             "take a std::lock_guard/scoped_lock on '" + *Mutex +
                 "' around the mutation, move it into an hds-requires "
                 "function, or annotate `// hds-lint: lock-ok(<why>)`"});

      // Calls to hds-requires functions must hold the named mutex.
      if (Op.K == Token::Punct && Op.Text == "(" && !MethodCall) {
        const std::string *Req = nullptr;
        std::string Callee = Comps.back();
        std::string OnClass;
        if (Comps.size() == 1) {
          OnClass = FB.ClassName;
        } else if (Comps.front() == "this") {
          OnClass = FB.ClassName;
        } else if (auto VIt = VarClass.find(Comps.front());
                   VIt != VarClass.end()) {
          OnClass = VIt->second;
        }
        if (!OnClass.empty())
          Req = RequiredMutex(OnClass, Callee);
        if (Req && !MutexHeld(*Req))
          Out.push_back(
              {"T1", File.Path, T[I].Line,
               "call to '" + OnClass + "::" + Callee +
                   "' requires holding '" + *Req + "'",
               "take the lock before calling, or annotate "
               "`// hds-lint: lock-ok(<why>)`"});
      }
    }
  }
}

} // namespace lint
} // namespace hds
