//===- src/lint/IncludeGraph.cpp - Preprocessor-lite include graph --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "lint/IncludeGraph.h"

#include <set>

namespace hds {
namespace lint {

namespace {

bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.compare(0, Prefix.size(), Prefix) == 0;
}

bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::vector<std::string> includesDelimited(const LexedFile &File, char Open,
                                           char Close) {
  std::vector<std::string> Out;
  for (const Directive &D : File.Directives) {
    if (!startsWith(D.Text, "include"))
      continue;
    size_t B = D.Text.find(Open);
    if (B == std::string::npos)
      continue;
    size_t E = D.Text.find(Close, B + 1);
    if (E != std::string::npos)
      Out.push_back(D.Text.substr(B + 1, E - B - 1));
  }
  return Out;
}

} // namespace

std::vector<std::string> quotedIncludes(const LexedFile &File) {
  return includesDelimited(File, '"', '"');
}

std::vector<std::string> angleIncludes(const LexedFile &File) {
  return includesDelimited(File, '<', '>');
}

IncludeGraph buildIncludeGraph(const std::vector<LexedFile> &Files) {
  std::map<std::string, std::vector<std::string>> Direct;
  for (const LexedFile &F : Files)
    Direct.emplace(F.Path, quotedIncludes(F));

  // Resolve a quoted include to a linted file path by suffix match.
  auto Resolve = [&](const std::string &Inc) -> const std::string * {
    for (const auto &[Path, Incs] : Direct) {
      (void)Incs;
      if (Path == Inc || endsWith(Path, std::string("/").append(Inc)))
        return &Path;
    }
    return nullptr;
  };

  IncludeGraph Graph;
  for (const LexedFile &F : Files) {
    std::set<std::string> Visited;
    std::vector<std::string> Work{F.Path};
    while (!Work.empty()) {
      std::string Cur = Work.back();
      Work.pop_back();
      if (!Visited.insert(Cur).second)
        continue;
      auto It = Direct.find(Cur);
      if (It == Direct.end())
        continue;
      for (const std::string &Inc : It->second)
        if (const std::string *Target = Resolve(Inc))
          Work.push_back(*Target);
    }
    Graph.Reachable.emplace(F.Path, std::vector<std::string>(Visited.begin(),
                                                             Visited.end()));
  }
  return Graph;
}

} // namespace lint
} // namespace hds
