//===- src/lint/LockDiscipline.h - T1 guarded-field checking ---*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// T1 lock discipline, a clang-thread-safety-lite pass over the token
/// stream.  Fields annotated `// hds-guarded-by(MutexName)` may only be
/// mutated inside a scope that holds that mutex — a `std::lock_guard`,
/// `std::scoped_lock`, or `std::unique_lock` naming it, or the body of a
/// function annotated `// hds-requires(MutexName)` (whose callers are in
/// turn checked at every call site).  Constructors and destructors of the
/// owning class are structurally exempt: no second thread can hold a
/// reference there.
///
/// The pass is intentionally conservative about aliasing: it resolves an
/// object prefix (`State.Pending`) only through local declarations and
/// reference parameters of annotated class types, and a bare field name
/// only inside member functions of the owning class.  What it cannot
/// resolve it does not check — annotations make checking opt-in, so a
/// miss is a soft spot, never a false alarm.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_LOCKDISCIPLINE_H
#define HDS_LINT_LOCKDISCIPLINE_H

#include "lint/Finding.h"
#include "lint/Lexer.h"

#include <map>
#include <string>
#include <vector>

namespace hds {
namespace lint {

/// Cross-TU registry of lock annotations, keyed by owning class.
struct LockRegistry {
  /// class name -> field name -> guarding mutex name.
  std::map<std::string, std::map<std::string, std::string>> Fields;
  /// class name -> function name -> mutex the caller must hold.
  std::map<std::string, std::map<std::string, std::string>> Requires;

  bool empty() const { return Fields.empty() && Requires.empty(); }
};

/// Collects `hds-guarded-by` / `hds-requires` annotations from every file.
/// Malformed annotations (no field or function on the attached line)
/// produce SUP findings in \p Sup.
LockRegistry collectLockAnnotations(const std::vector<LexedFile> &Files,
                                    std::vector<Finding> &Sup);

/// Runs the T1 check over one file against the cross-TU registry.
void checkLockDiscipline(const LexedFile &File, const LockRegistry &Registry,
                         std::vector<Finding> &Out);

} // namespace lint
} // namespace hds

#endif // HDS_LINT_LOCKDISCIPLINE_H
