//===- src/lint/Rules.cpp - Project invariant rules -----------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "lint/Rules.h"

#include "lint/IncludeGraph.h"
#include "lint/LockDiscipline.h"
#include "lint/SchemaLock.h"
#include "lint/ScopeTracker.h"
#include "lint/TokenUtil.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string_view>

namespace hds {
namespace lint {

namespace {

//===----------------------------------------------------------------------===//
// Suppressions
//===----------------------------------------------------------------------===//

/// One parsed suppression note.  Usage is tracked so --stale-suppressions
/// can report notes whose rule no longer fires where they point.
struct SuppressionNote {
  std::string Tag;
  unsigned CommentLine = 0; ///< where the note itself lives
  unsigned Begin = 0;       ///< first line it covers
  unsigned End = 0;         ///< last line it covers (inclusive)
  bool FileWide = false;
  bool Used = false;
};

struct Suppressions {
  std::vector<SuppressionNote> Notes;
};

bool isKnownTag(const std::string &Tag) {
  for (const RuleInfo &R : ruleCatalog())
    if (R.Tag && Tag == R.Tag)
      return true;
  return false;
}

/// Parses "tag1(reason), tag2(reason)" starting at \p Text[Pos].  Invalid
/// entries (unknown tag, missing or empty reason) produce SUP findings.
void parseSuppressionList(const std::string &Text, size_t Pos,
                          const Comment &Note, const std::string &Path,
                          std::set<std::string> &Out,
                          std::vector<Finding> &Sup) {
  size_t I = Pos;
  while (I < Text.size()) {
    while (I < Text.size() &&
           (std::isspace(static_cast<unsigned char>(Text[I])) ||
            Text[I] == ','))
      ++I;
    if (I >= Text.size())
      break;
    size_t TagBegin = I;
    while (I < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[I])) ||
            Text[I] == '-' || Text[I] == '_'))
      ++I;
    std::string Tag = Text.substr(TagBegin, I - TagBegin);
    std::string Reason;
    if (I < Text.size() && Text[I] == '(') {
      size_t Close = Text.find(')', I);
      if (Close == std::string::npos) {
        Sup.push_back({"SUP", Path, Note.Line,
                       "unterminated reason in hds-lint suppression",
                       "write `// hds-lint: " + Tag + "(<why>)`"});
        return;
      }
      Reason = Text.substr(I + 1, Close - I - 1);
      I = Close + 1;
    }
    size_t RB = Reason.find_first_not_of(" \t");
    bool HasReason = RB != std::string::npos;
    if (Tag.empty())
      return; // prose mentioning "hds-lint:", not a suppression
    if (!isKnownTag(Tag)) {
      Sup.push_back({"SUP", Path, Note.Line,
                     "unknown hds-lint suppression tag '" + Tag + "'",
                     "see docs/static-analysis.md for the tag catalogue"});
      continue;
    }
    if (!HasReason) {
      Sup.push_back({"SUP", Path, Note.Line,
                     "hds-lint suppression '" + Tag +
                         "' is missing a reason and is ignored",
                     "write `// hds-lint: " + Tag + "(<why>)`"});
      continue;
    }
    Out.insert(Tag);
  }
}

Suppressions collectSuppressions(const LexedFile &File,
                                 std::vector<Finding> &Sup) {
  Suppressions S;
  for (const Comment &Note : File.Comments) {
    size_t FilePos = Note.Text.find("hds-lint-file:");
    size_t LinePos = Note.Text.find("hds-lint:");
    std::set<std::string> Tags;
    if (FilePos != std::string::npos) {
      parseSuppressionList(Note.Text, FilePos + 14, Note, File.Path, Tags,
                           Sup);
      for (const std::string &Tag : Tags)
        S.Notes.push_back({Tag, Note.Line, 0, 0, true, false});
    } else if (LinePos != std::string::npos) {
      parseSuppressionList(Note.Text, LinePos + 9, Note, File.Path, Tags,
                           Sup);
      for (const std::string &Tag : Tags)
        S.Notes.push_back(
            {Tag, Note.Line, Note.Line, Note.EndLine + 1, false, false});
    }
  }
  return S;
}

/// Marks every note covering (Tag, Line) as used; true when any did.
bool trySuppress(Suppressions &S, const std::string &Tag, unsigned Line) {
  bool Hit = false;
  for (SuppressionNote &N : S.Notes)
    if (N.Tag == Tag && (N.FileWide || (Line >= N.Begin && Line <= N.End))) {
      N.Used = true;
      Hit = true;
    }
  return Hit;
}

//===----------------------------------------------------------------------===//
// Project index: unordered-container names, via the include graph (D2)
//===----------------------------------------------------------------------===//

using Toks = std::vector<Token>;

bool isUnorderedContainerName(const std::string &S) {
  return S == "unordered_map" || S == "unordered_set" ||
         S == "unordered_multimap" || S == "unordered_multiset";
}

/// Scans one file for declarations whose type is an unordered container
/// (directly or through a `using` alias declared in the same file) and
/// records the declared variable / accessor names.
std::set<std::string> collectUnorderedNames(const LexedFile &File) {
  std::set<std::string> Names;
  const Toks &T = File.Toks;
  std::set<std::string> Aliases;
  for (size_t I = 0; I < T.size(); ++I) {
    bool IsUnordered = T[I].K == Token::Ident &&
                       isUnorderedContainerName(T[I].Text);
    bool IsAliasUse = T[I].K == Token::Ident && Aliases.count(T[I].Text) &&
                      !isPunct(T, I + 1, "=");
    if (!IsUnordered && !IsAliasUse)
      continue;

    // `using A = std::unordered_map<...>` — record the alias name.
    if (IsUnordered) {
      size_t AliasName = I;
      // Walk back over `std ::` qualification.
      if (AliasName >= 2 && isPunct(T, AliasName - 1, "::"))
        AliasName -= 2;
      if (AliasName >= 2 && isPunct(T, AliasName - 1, "=") &&
          T[AliasName - 2].K == Token::Ident && AliasName >= 3 &&
          isIdent(T, AliasName - 3, "using")) {
        Aliases.insert(T[AliasName - 2].Text);
      }
    }

    // Skip past the template argument list, if any.
    size_t After = I + 1;
    if (IsUnordered) {
      if (!isPunct(T, I + 1, "<"))
        continue;
      size_t Close = matchingTemplateClose(T, I + 1);
      if (Close == T.size())
        continue;
      After = Close + 1;
    }

    // `...> ::iterator` etc: not a declaration.
    if (isPunct(T, After, "::"))
      continue;
    // Skip ref/pointer declarators.
    while (isPunct(T, After, "&") || isPunct(T, After, "*") ||
           isIdent(T, After, "const"))
      ++After;
    if (After < T.size() && T[After].K == Token::Ident)
      Names.insert(T[After].Text);
  }
  return Names;
}

struct ProjectIndex {
  /// Per display path: unordered names visible after resolving quoted
  /// includes transitively across the linted file set.
  std::map<std::string, std::set<std::string>> Visible;
};

ProjectIndex buildIndex(const std::vector<LexedFile> &Files) {
  std::map<std::string, std::set<std::string>> Own;
  for (const LexedFile &F : Files)
    Own.emplace(F.Path, collectUnorderedNames(F));

  IncludeGraph Graph = buildIncludeGraph(Files);
  ProjectIndex Index;
  for (const LexedFile &F : Files) {
    std::set<std::string> Names;
    auto It = Graph.Reachable.find(F.Path);
    if (It != Graph.Reachable.end())
      for (const std::string &Reached : It->second) {
        auto OIt = Own.find(Reached);
        if (OIt != Own.end())
          Names.insert(OIt->second.begin(), OIt->second.end());
      }
    Index.Visible.emplace(F.Path, std::move(Names));
  }
  return Index;
}

//===----------------------------------------------------------------------===//
// D1: ambient randomness / wall clock / environment
//===----------------------------------------------------------------------===//

void checkD1(const LexedFile &File, std::vector<Finding> &Out) {
  if (!inTree(File.Path, "src") || isFile(File.Path, "support/Rng.h"))
    return;
  static const char *BannedCalls[] = {
      "rand",      "srand",         "rand_r",   "drand48", "lrand48",
      "time",      "clock",         "gettimeofday", "clock_gettime",
      "localtime", "gmtime",        "getenv",   "setenv",  "putenv"};
  static const char *BannedNames[] = {
      "random_device",  "mt19937",       "mt19937_64",
      "minstd_rand",    "minstd_rand0",  "default_random_engine",
      "system_clock",   "steady_clock",  "high_resolution_clock",
      "chrono",         "uniform_int_distribution",
      "uniform_real_distribution", "normal_distribution",
      "bernoulli_distribution"};
  const Toks &T = File.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident)
      continue;
    for (const char *Name : BannedCalls)
      if (isFreeCall(T, I, Name))
        Out.push_back(
            {"D1", File.Path, T[I].Line,
             "call to '" + T[I].Text +
                 "' introduces ambient nondeterminism in src/",
             "use hds::Rng (support/Rng.h) with an explicit seed, or pass "
             "the value in as a parameter"});
    for (const char *Name : BannedNames)
      if (T[I].Text == Name)
        Out.push_back(
            {"D1", File.Path, T[I].Line,
             "use of '" + T[I].Text +
                 "' introduces ambient nondeterminism in src/",
             "use hds::Rng (support/Rng.h) with an explicit seed; wall "
             "clocks and std::random are banned in src/"});
  }
}

//===----------------------------------------------------------------------===//
// D2: iteration over unordered containers
//===----------------------------------------------------------------------===//

void checkD2(const LexedFile &File, const ProjectIndex &Index,
             std::vector<Finding> &Out) {
  auto VisIt = Index.Visible.find(File.Path);
  if (VisIt == Index.Visible.end() || VisIt->second.empty())
    return;
  const std::set<std::string> &Unordered = VisIt->second;
  const Toks &T = File.Toks;

  auto Report = [&](unsigned Line, const std::string &Name,
                    const char *What) {
    Out.push_back(
        {"D2", File.Path, Line,
         std::string(What) + " '" + Name +
             "' iterates an unordered container; iteration order is not "
             "deterministic across standard libraries",
         "iterate a sorted copy of the keys, switch to an ordered/indexed "
         "container, or annotate `// hds-lint: ordered-ok(<why the order "
         "cannot affect results>)`"});
  };

  for (size_t I = 0; I < T.size(); ++I) {
    // Range-for whose sequence mentions an unordered name.
    if (isIdent(T, I, "for") && isPunct(T, I + 1, "(")) {
      size_t Close = matchingClose(T, I + 1);
      if (Close == T.size())
        continue;
      // Find the top-level ':' of a range-for (absent in classic for).
      size_t Colon = T.size();
      int Depth = 0;
      for (size_t J = I + 2; J < Close; ++J) {
        if (T[J].K != Token::Punct)
          continue;
        const std::string &P = T[J].Text;
        if (P == "(" || P == "[" || P == "{")
          ++Depth;
        else if (P == ")" || P == "]" || P == "}")
          --Depth;
        else if (P == ":" && Depth == 0) {
          Colon = J;
          break;
        } else if (P == ";" && Depth == 0)
          break; // classic for
      }
      if (Colon == T.size())
        continue;
      for (size_t J = Colon + 1; J < Close; ++J)
        if (T[J].K == Token::Ident && Unordered.count(T[J].Text)) {
          Report(T[I].Line, T[J].Text, "range-for over");
          break;
        }
      continue;
    }

    // Explicit iterator walk: X.begin() / X->begin() / X.cbegin().
    if ((isPunct(T, I, ".") || isPunct(T, I, "->")) &&
        (isIdent(T, I + 1, "begin") || isIdent(T, I + 1, "cbegin")) &&
        isPunct(T, I + 2, "(") && I > 0 && T[I - 1].K == Token::Ident &&
        Unordered.count(T[I - 1].Text)) {
      // `Vec.assign(M.begin(), M.end())` style copies still enumerate in
      // hash order, so they are flagged too — constructing a container
      // from them is only safe when the destination re-sorts.
      Report(T[I].Line, T[I - 1].Text, "iterator walk of");
    }
  }
}

//===----------------------------------------------------------------------===//
// D3: pointer-keyed ordering
//===----------------------------------------------------------------------===//

/// True when the token range [Begin, End) (one template argument) denotes
/// a raw pointer type: last meaningful token is '*'.
bool isPointerTypeArg(const Toks &T, size_t Begin, size_t End) {
  for (size_t I = End; I > Begin; --I) {
    const Token &Tok = T[I - 1];
    if (Tok.K == Token::Ident && Tok.Text == "const")
      continue;
    return Tok.K == Token::Punct && Tok.Text == "*";
  }
  return false;
}

void checkD3(const LexedFile &File, std::vector<Finding> &Out) {
  const Toks &T = File.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident)
      continue;
    const std::string &Name = T[I].Text;

    // std::map<T*, ...> / std::set<T*> / std::less<T*>.
    bool IsOrderedContainer = Name == "map" || Name == "set" ||
                              Name == "multimap" || Name == "multiset" ||
                              Name == "less";
    if (IsOrderedContainer && isPunct(T, I + 1, "<") && I >= 2 &&
        isPunct(T, I - 1, "::") && isIdent(T, I - 2, "std")) {
      size_t Close = matchingTemplateClose(T, I + 1);
      if (Close != T.size()) {
        // First top-level template argument.
        size_t ArgEnd = Close;
        int Depth = 0;
        for (size_t J = I + 2; J < Close; ++J) {
          if (T[J].K != Token::Punct)
            continue;
          const std::string &P = T[J].Text;
          if (P == "<" || P == "(")
            ++Depth;
          else if (P == ">" || P == ")")
            --Depth;
          else if (P == "," && Depth == 0) {
            ArgEnd = J;
            break;
          }
        }
        if (isPointerTypeArg(T, I + 2, ArgEnd))
          Out.push_back(
              {"D3", File.Path, T[I].Line,
               "std::" + Name + " keyed by a raw pointer orders entries by "
                                "address, which varies run to run",
               "key by a stable id (RefId, stream index, name) or sort by "
               "a value-based field; annotate `// hds-lint: "
               "pointer-key-ok(<why>)` only if iteration order is never "
               "observed"});
      }
    }

    // std::sort / stable_sort with a comparator lambda comparing two
    // pointer parameters by value.
    bool IsSort = Name == "sort" || Name == "stable_sort" ||
                  Name == "partial_sort" || Name == "nth_element";
    if (IsSort && isPunct(T, I + 1, "(")) {
      size_t CallClose = matchingClose(T, I + 1);
      if (CallClose == T.size())
        continue;
      for (size_t J = I + 2; J < CallClose; ++J) {
        if (!isPunct(T, J, "["))
          continue;
        size_t CaptureClose = matchingClose(T, J);
        if (CaptureClose == T.size() || !isPunct(T, CaptureClose + 1, "("))
          break;
        size_t ParamClose = matchingClose(T, CaptureClose + 1);
        if (ParamClose == T.size())
          break;
        // Collect names of pointer-typed parameters.
        std::set<std::string> PtrParams;
        bool SawStar = false;
        for (size_t K = CaptureClose + 2; K < ParamClose; ++K) {
          if (isPunct(T, K, "*"))
            SawStar = true;
          else if (isPunct(T, K, ",")) {
            SawStar = false;
          } else if (T[K].K == Token::Ident && SawStar &&
                     (isPunct(T, K + 1, ",") || K + 1 == ParamClose))
            PtrParams.insert(T[K].Text);
        }
        if (PtrParams.size() < 2)
          break;
        size_t BodyOpen = ParamClose + 1;
        while (BodyOpen < CallClose && !isPunct(T, BodyOpen, "{"))
          ++BodyOpen;
        if (BodyOpen >= CallClose)
          break;
        size_t BodyClose = matchingClose(T, BodyOpen);
        for (size_t K = BodyOpen; K + 2 < BodyClose; ++K)
          if (T[K].K == Token::Ident && PtrParams.count(T[K].Text) &&
              (isPunct(T, K + 1, "<") || isPunct(T, K + 1, ">")) &&
              T[K + 2].K == Token::Ident && PtrParams.count(T[K + 2].Text))
            Out.push_back(
                {"D3", File.Path, T[K].Line,
                 "comparator orders by raw pointer value; the resulting "
                 "order varies with allocation layout",
                 "compare a stable field of the pointees instead, or "
                 "annotate `// hds-lint: pointer-key-ok(<why>)`"});
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// D4: raw allocation outside designated allocator files
//===----------------------------------------------------------------------===//

void checkD4(const LexedFile &File, std::vector<Finding> &Out) {
  if (!inTree(File.Path, "src"))
    return;
  static const char *AllocCalls[] = {"malloc",       "calloc", "realloc",
                                     "free",         "strdup", "aligned_alloc",
                                     "posix_memalign"};
  const Toks &T = File.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident)
      continue;
    bool PrevIsOperator = I > 0 && isIdent(T, I - 1, "operator");
    if (T[I].Text == "new" && !PrevIsOperator) {
      Out.push_back({"D4", File.Path, T[I].Line,
                     "raw `new` outside a designated allocator file",
                     "use std::make_unique / containers, or mark the file "
                     "with `// hds-lint-file: alloc-ok(<why>)` if it is an "
                     "intrusive-structure allocator by design"});
    } else if (T[I].Text == "delete" && !PrevIsOperator &&
               !(I > 0 && isPunct(T, I - 1, "="))) {
      Out.push_back({"D4", File.Path, T[I].Line,
                     "raw `delete` outside a designated allocator file",
                     "use std::unique_ptr ownership, or mark the file with "
                     "`// hds-lint-file: alloc-ok(<why>)`"});
    } else {
      for (const char *Name : AllocCalls)
        if (isFreeCall(T, I, Name))
          Out.push_back({"D4", File.Path, T[I].Line,
                         "C allocation call '" + T[I].Text +
                             "' outside a designated allocator file",
                         "use RAII containers, or mark the file with "
                         "`// hds-lint-file: alloc-ok(<why>)`"});
  }
  }
}

//===----------------------------------------------------------------------===//
// H1: header hygiene
//===----------------------------------------------------------------------===//

/// Canonical include-guard name: HDS_ + path components from the nearest
/// top-level tree (dropping a leading "src"), upper-cased, with non-alnum
/// mapped to '_': src/core/RunStats.h -> HDS_CORE_RUNSTATS_H.
std::string canonicalGuard(const std::string &Path) {
  static const char *Roots[] = {"src", "tools", "bench", "tests", "examples"};
  // Split the path into components.
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : Path) {
    if (C == '/') {
      if (!Cur.empty())
        Parts.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Parts.push_back(Cur);

  size_t Begin = 0;
  for (size_t I = Parts.size(); I > 0; --I)
    for (const char *Root : Roots)
      if (Parts[I - 1] == Root) {
        Begin = Parts[I - 1] == std::string("src") ? I : I - 1;
        goto found;
      }
found:
  std::string Guard = "HDS";
  for (size_t I = Begin; I < Parts.size(); ++I) {
    Guard += '_';
    for (char C : Parts[I])
      Guard += std::isalnum(static_cast<unsigned char>(C))
                   ? static_cast<char>(
                         std::toupper(static_cast<unsigned char>(C)))
                   : '_';
  }
  return Guard;
}

void checkH1(const LexedFile &File, const std::vector<HeaderReq> &Table,
             std::vector<Finding> &Out) {
  if (!isHeaderPath(File.Path))
    return;

  // Guard structure.
  bool HasPragmaOnce = false;
  for (const Directive &D : File.Directives)
    if (startsWith(D.Text, "pragma") &&
        D.Text.find("once") != std::string::npos)
      HasPragmaOnce = true;

  if (!HasPragmaOnce) {
    if (File.Directives.empty() ||
        !startsWith(File.Directives.front().Text, "ifndef")) {
      Out.push_back({"H1", File.Path, 1,
                     "header has no include guard (or the guard is not the "
                     "first preprocessor directive)",
                     "open with `#ifndef " + canonicalGuard(File.Path) +
                         "` / `#define ...` and close with `#endif`"});
    } else {
      const std::string &IfLine = File.Directives.front().Text;
      std::string Guard = IfLine.substr(6);
      size_t B = Guard.find_first_not_of(" \t");
      Guard = B == std::string::npos ? std::string() : Guard.substr(B);
      size_t E = Guard.find_first_of(" \t");
      if (E != std::string::npos)
        Guard = Guard.substr(0, E);
      std::string Expected = canonicalGuard(File.Path);
      if (Guard != Expected)
        Out.push_back({"H1", File.Path, File.Directives.front().Line,
                       "include guard '" + Guard +
                           "' does not match the canonical name",
                       "rename the guard to '" + Expected + "'"});
      if (File.Directives.size() < 2 ||
          !startsWith(File.Directives[1].Text, "define ") ||
          File.Directives[1].Text.find(Guard) == std::string::npos)
        Out.push_back({"H1", File.Path, File.Directives.front().Line,
                       "include guard '" + Guard +
                           "' is not #defined immediately after #ifndef",
                       "pair `#ifndef " + Guard + "` with `#define " +
                           Guard + "`"});
    }
  }

  // Self-containment: used symbols must be included by this header.
  std::set<std::string> Included;
  for (const Directive &D : File.Directives) {
    if (!startsWith(D.Text, "include"))
      continue;
    size_t B = D.Text.find_first_of("<\"");
    size_t E = D.Text.find_first_of(">\"", B + 1);
    if (B != std::string::npos && E != std::string::npos)
      Included.insert(D.Text.substr(B + 1, E - B - 1));
  }
  const Toks &T = File.Toks;
  std::set<std::string> AlreadyFlagged;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident)
      continue;
    for (const HeaderReq &Req : Table) {
      if (T[I].Text != Req.Symbol || AlreadyFlagged.count(Req.Symbol))
        continue;
      if (Req.NeedsStd &&
          !(I >= 2 && isPunct(T, I - 1, "::") && isIdent(T, I - 2, "std")))
        continue;
      if (!Req.NeedsStd &&
          (isPunct(T, I + 1, "::") ||
           (I > 0 && (isPunct(T, I - 1, ".") || isPunct(T, I - 1, "->")))))
        continue;
      bool Satisfied = false;
      for (const std::string &H : Req.Headers)
        if (Included.count(H))
          Satisfied = true;
      if (!Satisfied) {
        AlreadyFlagged.insert(Req.Symbol);
        Out.push_back({"H1", File.Path, T[I].Line,
                       "header uses '" + T[I].Text + "' but does not "
                       "include <" + Req.Headers.front() +
                           "> itself (not self-contained)",
                       "add `#include <" + Req.Headers.front() +
                           ">` to this header"});
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// C1: cycle accounting must route through the accounting API
//===----------------------------------------------------------------------===//

/// What the type-based half of C1 discovered about the accounting class:
/// the file defining `class CycleAccount` and its member field names.
/// When no defining file is in the linted set, the type net is inert and
/// only the legacy name net applies.
struct CycleAccountInfo {
  std::string DefiningFile;
  std::set<std::string> Fields;
};

/// Finds `class CycleAccount { ... }` in the linted set and collects its
/// member fields: identifiers at class-body depth declared as
/// `<type> Name =`, `<type> Name[`, or `<type> Name;`.  Locals inside
/// member function bodies sit at deeper brace depth and never match.
CycleAccountInfo findCycleAccount(const std::vector<LexedFile> &Files) {
  CycleAccountInfo Info;
  for (const LexedFile &File : Files) {
    const Toks &T = File.Toks;
    for (size_t I = 0; I + 2 < T.size(); ++I) {
      if (!isIdent(T, I, "class") || !isIdent(T, I + 1, "CycleAccount") ||
          !isPunct(T, I + 2, "{"))
        continue;
      Info.DefiningFile = File.Path;
      int Depth = 1;
      for (size_t J = I + 3; J < T.size() && Depth > 0; ++J) {
        if (T[J].K == Token::Punct && T[J].Text == "{")
          ++Depth;
        else if (T[J].K == Token::Punct && T[J].Text == "}")
          --Depth;
        else if (Depth == 1 && T[J].K == Token::Ident &&
                 J > 0 && T[J - 1].K == Token::Ident &&
                 (isPunct(T, J + 1, "=") || isPunct(T, J + 1, "[") ||
                  isPunct(T, J + 1, ";")))
          Info.Fields.insert(T[J].Text);
      }
      return Info;
    }
  }
  return Info;
}

void checkC1(const LexedFile &File, const CycleAccountInfo &Account,
             std::vector<Finding> &Out) {
  if (!inTree(File.Path, "src/memsim") && !inTree(File.Path, "src/core") &&
      !inTree(File.Path, "src/vulcan") && !inTree(File.Path, "src/obs"))
    return;
  // The defining file is the designated accounting primitive: mutating
  // its own fields there is the whole point (CycleAccount::charge).
  const bool IsDefiningFile = File.Path == Account.DefiningFile;
  const Toks &T = File.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident)
      continue;
    const std::string &Name = T[I].Text;
    const bool LegacyCounter =
        Name == "Now" || (Name.size() > 6 && endsWith(Name, "Cycles"));
    const bool AccountField = !IsDefiningFile && Account.Fields.count(Name);
    if (!LegacyCounter && !AccountField)
      continue;
    // Element mutations count too: skip a balanced subscript so
    // `Phases[P] += N` is seen as a mutation of Phases.
    size_t After = I + 1;
    if (isPunct(T, After, "[")) {
      int Depth = 1;
      for (++After; After < T.size() && Depth > 0; ++After) {
        if (T[After].K == Token::Punct && T[After].Text == "[")
          ++Depth;
        else if (T[After].K == Token::Punct && T[After].Text == "]")
          --Depth;
      }
    }
    bool Mutates =
        isPunct(T, After, "+=") || isPunct(T, After, "-=") ||
        isPunct(T, After, "++") || isPunct(T, After, "--") ||
        (I > 0 && (isPunct(T, I - 1, "++") || isPunct(T, I - 1, "--")));
    if (Mutates)
      Out.push_back(
          {"C1", File.Path, T[I].Line,
           "ad-hoc arithmetic on cycle counter '" + Name +
               "' bypasses the cycle-accounting API",
           "route the charge through obs::CycleAccount::charge() (via "
           "MemoryHierarchy::tick() with a CyclePhase) so the clock, the "
           "phase attribution, and replay fidelity stay consistent; only "
           "the CycleAccount definition itself may touch its fields"});
  }
}

//===----------------------------------------------------------------------===//
// D5: cycle / heat accounting must stay in integer arithmetic
//===----------------------------------------------------------------------===//

/// Names the simulator treats as cycle or heat accumulators.  Deliberately
/// narrow: configuration ratios like HeatTraceFraction or thresholds like
/// HeatThreshold do not match.
bool isAccountingCounterName(const std::string &Name) {
  return Name == "Now" || Name == "Heat" ||
         (Name.size() > 6 && endsWith(Name, "Cycles")) ||
         (Name.size() > 4 && endsWith(Name, "Heat"));
}

/// True for pp-number text that denotes a floating literal (has a decimal
/// point, an exponent, or an f suffix); hex literals never match.
bool isFloatLiteral(const std::string &Text) {
  if (Text.size() > 1 && Text[0] == '0' &&
      (Text[1] == 'x' || Text[1] == 'X'))
    return false;
  for (char C : Text)
    if (C == '.' || C == 'e' || C == 'E' || C == 'f' || C == 'F')
      return true;
  return false;
}

void checkD5(const LexedFile &File, std::vector<Finding> &Out) {
  if (!inTree(File.Path, "src"))
    return;
  const Toks &T = File.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident)
      continue;
    const std::string &Name = T[I].Text;
    if (!isAccountingCounterName(Name))
      continue;

    // Floating declaration: `double Heat`, `float StallCycles`.
    if (I > 0 && T[I - 1].K == Token::Ident &&
        (T[I - 1].Text == "float" || T[I - 1].Text == "double"))
      Out.push_back(
          {"D5", File.Path, T[I].Line,
           "cycle/heat counter '" + Name + "' declared as '" +
               T[I - 1].Text +
               "'; floating accumulation rounds and breaks bit-exact "
               "replay",
           "store cycle and heat counters as uint64_t and convert to "
           "double only at the reporting boundary, or annotate "
           "`// hds-lint: float-cycles-ok(<why>)`"});

    // Floating accumulation: `Heat += 0.5`, `StallCycles *= Factor` with
    // a floating-valued right-hand side.
    bool Compound = isPunct(T, I + 1, "+=") || isPunct(T, I + 1, "-=") ||
                    isPunct(T, I + 1, "*=") || isPunct(T, I + 1, "/=");
    if (!Compound)
      continue;
    for (size_t J = I + 2; J < T.size(); ++J) {
      if (T[J].K == Token::Punct && (T[J].Text == ";" || T[J].Text == "{"))
        break;
      bool FloatValued =
          (T[J].K == Token::Number && isFloatLiteral(T[J].Text)) ||
          (T[J].K == Token::Ident &&
           (T[J].Text == "float" || T[J].Text == "double"));
      if (FloatValued) {
        Out.push_back(
            {"D5", File.Path, T[I].Line,
             "floating-point accumulation into cycle/heat counter '" +
                 Name + "'; results drift with evaluation order",
             "accumulate in integers (scale fixed-point if a ratio is "
             "needed), or annotate `// hds-lint: float-cycles-ok(<why>)`"});
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// E1: exhaustive dispatch over marked enums
//===----------------------------------------------------------------------===//

/// One enum marked `// hds-exhaustive`, cross-TU.  The owning class and
/// scoped-ness decide which label spellings attribute a switch to it:
/// `Enum::Member` always, `OwningClass::Member` and bare `Member` only
/// for unscoped enums (the latter only inside the owning class's scope).
/// Attribution additionally requires the member name to actually belong
/// to the enum, so a switch over some other enum that happens to share
/// the name (every third enum is called `Kind`) is never misattributed.
struct MarkedEnum {
  std::string Name;
  std::string OwningClass; ///< "" for namespace-scope enums
  bool Scoped = false;
  std::set<std::string> Members;
  std::vector<std::string> Order; ///< declaration order, for messages
};
using MarkedEnums = std::vector<MarkedEnum>;

MarkedEnums collectMarkedEnums(const std::vector<LexedFile> &Files) {
  MarkedEnums Marked;
  for (const LexedFile &File : Files)
    for (const EnumDef &E : findEnums(File)) {
      if (!E.Exhaustive)
        continue;
      MarkedEnum M;
      M.Name = E.Name;
      M.OwningClass = E.OwningClass;
      M.Scoped = E.Scoped;
      for (const auto &[Name, Value] : E.Enumerators) {
        (void)Value;
        M.Members.insert(Name);
        M.Order.push_back(Name);
      }
      Marked.push_back(std::move(M));
    }
  return Marked;
}

void checkE1(const LexedFile &File, const MarkedEnums &Marked,
             std::vector<Finding> &Out) {
  if (Marked.empty())
    return;
  const Toks &T = File.Toks;
  const std::vector<ClassSpan> Classes = findClassSpans(T);
  const std::vector<FunctionBody> Bodies = findFunctionBodies(T, Classes);
  for (size_t I = 0; I < T.size(); ++I) {
    if (!isIdent(T, I, "switch") || !isPunct(T, I + 1, "("))
      continue;
    size_t CondClose = matchingClose(T, I + 1);
    if (CondClose == T.size() || !isPunct(T, CondClose + 1, "{"))
      continue;
    size_t BodyClose = matchingClose(T, CondClose + 1);
    if (BodyClose == T.size())
      continue;

    // Class scopes the switch sits in: lexically nested class bodies
    // plus the owning class of an out-of-line member definition.  Bare
    // `case Member:` labels resolve against these.
    std::set<std::string> EnclosingClasses;
    for (const ClassSpan &CS : Classes)
      if (CS.Open < I && I < CS.Close)
        EnclosingClasses.insert(CS.Name);
    for (const FunctionBody &FB : Bodies)
      if (FB.Open < I && I < FB.Close && !FB.ClassName.empty())
        EnclosingClasses.insert(FB.ClassName);

    // Depth-1 labels only: labels of nested switches belong to them.
    std::map<size_t, std::set<std::string>> Covered; // enum idx -> members
    bool HasDefault = false;
    unsigned DefaultLine = 0;
    int Depth = 0;
    for (size_t J = CondClose + 1; J < BodyClose; ++J) {
      if (T[J].K == Token::Punct) {
        if (T[J].Text == "{")
          ++Depth;
        else if (T[J].Text == "}")
          --Depth;
        continue;
      }
      if (Depth != 1)
        continue;
      if (isIdent(T, J, "default") && isPunct(T, J + 1, ":")) {
        HasDefault = true;
        DefaultLine = T[J].Line;
      } else if (isIdent(T, J, "case")) {
        // Bare label: `case Member:` — a single identifier.  Valid only
        // for unscoped enums, and for class-nested ones only inside the
        // owning class's own scope.
        if (T[J + 1].K == Token::Ident && isPunct(T, J + 2, ":"))
          for (size_t E = 0; E < Marked.size(); ++E)
            if (!Marked[E].Scoped && Marked[E].Members.count(T[J + 1].Text) &&
                (Marked[E].OwningClass.empty() ||
                 EnclosingClasses.count(Marked[E].OwningClass)))
              Covered[E].insert(T[J + 1].Text);
        // Qualified: scan the label up to its ':' for `Qual :: Member`
        // pairs.  The qualifier may be the enum itself (any enum) or
        // the owning class (unscoped nested enums only).
        for (size_t K = J + 1; K < BodyClose && !isPunct(T, K, ":"); ++K) {
          if (T[K].K != Token::Ident || !isPunct(T, K + 1, "::") ||
              K + 2 >= BodyClose || T[K + 2].K != Token::Ident)
            continue;
          for (size_t E = 0; E < Marked.size(); ++E) {
            bool QualMatches =
                T[K].Text == Marked[E].Name ||
                (!Marked[E].Scoped && !Marked[E].OwningClass.empty() &&
                 T[K].Text == Marked[E].OwningClass);
            if (QualMatches && Marked[E].Members.count(T[K + 2].Text))
              Covered[E].insert(T[K + 2].Text);
          }
        }
      }
    }

    for (const auto &[EnumIdx, Members] : Covered) {
      const MarkedEnum &Enum = Marked[EnumIdx];
      if (HasDefault)
        Out.push_back(
            {"E1", File.Path, DefaultLine,
             "switch over hds-exhaustive enum '" + Enum.Name +
                 "' has a `default:`; it would silently swallow new "
                 "enumerators",
             "remove the default and cover every enumerator explicitly "
             "(a trailing return after the switch handles the "
             "out-of-range case), or annotate "
             "`// hds-lint: exhaustive-ok(<why>)`"});
      std::string Missing;
      for (const std::string &M : Enum.Order)
        if (!Members.count(M))
          Missing += (Missing.empty() ? "" : ", ") + M;
      if (!Missing.empty())
        Out.push_back(
            {"E1", File.Path, T[I].Line,
             "switch over hds-exhaustive enum '" + Enum.Name +
                 "' does not cover: " + Missing,
             "add the missing `case " + Enum.Name +
                 "::...` labels, or annotate "
                 "`// hds-lint: exhaustive-ok(<why>)`"});
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// H1 table plumbing
//===----------------------------------------------------------------------===//

const std::vector<HeaderReq> &fallbackHeaderTable() {
  // Curated mapping, kept only as the fallback for builds without a
  // compile database.  Symbols checked exclusively through the generated
  // table (optional, variant, expected) are deliberately absent.
  static const std::vector<HeaderReq> Reqs = {
      {"vector", true, {"vector"}, false},
      {"array", true, {"array"}, false},
      {"span", true, {"span"}, false},
      {"string", true, {"string"}, false},
      {"unordered_map", true, {"unordered_map"}, false},
      {"unordered_set", true, {"unordered_set"}, false},
      {"map", true, {"map"}, false},
      {"set", true, {"set"}, false},
      {"deque", true, {"deque"}, false},
      {"function", true, {"functional"}, false},
      {"pair", true, {"utility", "map", "unordered_map"}, false},
      {"unique_ptr", true, {"memory"}, false},
      {"shared_ptr", true, {"memory"}, false},
      {"make_unique", true, {"memory"}, false},
      {"sort", true, {"algorithm"}, false},
      {"stable_sort", true, {"algorithm"}, false},
      {"lower_bound", true, {"algorithm"}, false},
      {"upper_bound", true, {"algorithm"}, false},
      {"ostream", true, {"ostream", "iostream", "sstream", "iosfwd"}, false},
      {"istream", true, {"istream", "iostream", "sstream", "iosfwd"}, false},
      {"uint8_t", false, {"cstdint", "stdint.h"}, false},
      {"uint16_t", false, {"cstdint", "stdint.h"}, false},
      {"uint32_t", false, {"cstdint", "stdint.h"}, false},
      {"uint64_t", false, {"cstdint", "stdint.h"}, false},
      {"int8_t", false, {"cstdint", "stdint.h"}, false},
      {"int16_t", false, {"cstdint", "stdint.h"}, false},
      {"int32_t", false, {"cstdint", "stdint.h"}, false},
      {"int64_t", false, {"cstdint", "stdint.h"}, false},
      {"uintptr_t", false, {"cstdint", "stdint.h"}, false},
      {"size_t", false, {"cstddef", "cstdint", "cstdio", "cstring"}, false},
      {"assert", false, {"cassert", "assert.h"}, false},
      {"memcpy", false, {"cstring", "string.h"}, false},
      {"memset", false, {"cstring", "string.h"}, false},
      {"memmove", false, {"cstring", "string.h"}, false},
  };
  return Reqs;
}

std::vector<std::pair<std::string, bool>> h1SymbolKeys() {
  std::vector<std::pair<std::string, bool>> Keys;
  for (const HeaderReq &Req : fallbackHeaderTable())
    Keys.emplace_back(Req.Symbol, Req.NeedsStd);
  // Generated-only symbols: no curated entry to fall back to.
  Keys.emplace_back("optional", true);
  Keys.emplace_back("variant", true);
  Keys.emplace_back("expected", true);
  return Keys;
}

std::vector<HeaderReq> mergeHeaderTable(std::vector<HeaderReq> Generated) {
  std::set<std::string> Have;
  for (const HeaderReq &Req : Generated)
    Have.insert(Req.Symbol);
  for (const HeaderReq &Req : fallbackHeaderTable())
    if (!Have.count(Req.Symbol))
      Generated.push_back(Req);
  return Generated;
}

//===----------------------------------------------------------------------===//
// Catalogue and driver
//===----------------------------------------------------------------------===//

const std::vector<RuleInfo> &ruleCatalog() {
  static const std::vector<RuleInfo> Rules = {
      {"D1", "randomness-ok",
       "no ambient randomness, wall clock, or environment reads in src/"},
      {"D2", "ordered-ok",
       "no iteration over unordered containers without an ordered-ok note"},
      {"D3", "pointer-key-ok",
       "no ordering or sorting keyed on raw pointer values"},
      {"D4", "alloc-ok",
       "no raw new/delete/malloc outside designated allocator files"},
      {"H1", "header-ok",
       "canonical include guards and self-contained headers (symbol→header "
       "table generated from compile_commands.json when available)"},
      {"C1", "cycles-ok",
       "cycle charging must route through obs::CycleAccount::charge (the "
       "rule discovers the class's fields from its definition)"},
      {"D5", "float-cycles-ok",
       "cycle and heat accounting must use integer arithmetic, not "
       "float/double"},
      {"T1", "lock-ok",
       "fields annotated hds-guarded-by(Mutex) mutate only inside a scope "
       "holding that mutex (lock_guard/scoped_lock/unique_lock or an "
       "hds-requires function)"},
      {"W1", nullptr,
       "the wire/metric schema must extend tests/golden/schema.lock "
       "append-only: no reorder, removal, or renumber"},
      {"E1", "exhaustive-ok",
       "switches over hds-exhaustive enums cover every enumerator, with "
       "no default"},
      {"SUP", nullptr, "hds-lint suppression comments must be well-formed"},
      {"STALE", nullptr,
       "suppression notes whose rule no longer fires there "
       "(--stale-suppressions)"},
  };
  return Rules;
}

std::vector<Finding> runLint(const std::vector<LexedFile> &Files,
                             const LintOptions &Opts) {
  ProjectIndex Index = buildIndex(Files);
  const CycleAccountInfo Account = findCycleAccount(Files);
  const MarkedEnums Marked = collectMarkedEnums(Files);
  const std::vector<HeaderReq> &H1Table =
      Opts.HeaderTable ? *Opts.HeaderTable : fallbackHeaderTable();

  auto RuleEnabled = [&](const char *Id) {
    if (Opts.OnlyRules.empty())
      return true;
    return std::find(Opts.OnlyRules.begin(), Opts.OnlyRules.end(), Id) !=
           Opts.OnlyRules.end();
  };

  std::vector<Finding> Result;

  // Cross-TU passes: the T1 annotation registry and the W1 schema check.
  std::vector<Finding> AnnotationSup;
  LockRegistry Locks = collectLockAnnotations(Files, AnnotationSup);
  if (RuleEnabled("SUP"))
    for (Finding &F : AnnotationSup)
      Result.push_back(std::move(F));
  if (RuleEnabled("W1") && Opts.SchemaLockText) {
    std::vector<SchemaSection> Locked;
    std::string Error;
    if (!parseSchemaLock(*Opts.SchemaLockText, Opts.SchemaLockPath, Locked,
                         Error)) {
      Result.push_back({"W1", Opts.SchemaLockPath, 1, Error,
                        "regenerate the lock with --write-schema-lock"});
    } else {
      compareSchema(Locked, collectSchema(Files), Opts.SchemaLockPath,
                    Result);
    }
  }

  for (const LexedFile &File : Files) {
    std::vector<Finding> SupFindings;
    Suppressions Sup = collectSuppressions(File, SupFindings);

    std::vector<Finding> Raw;
    if (RuleEnabled("D1"))
      checkD1(File, Raw);
    if (RuleEnabled("D2"))
      checkD2(File, Index, Raw);
    if (RuleEnabled("D3"))
      checkD3(File, Raw);
    if (RuleEnabled("D4"))
      checkD4(File, Raw);
    if (RuleEnabled("H1"))
      checkH1(File, H1Table, Raw);
    if (RuleEnabled("C1"))
      checkC1(File, Account, Raw);
    if (RuleEnabled("D5"))
      checkD5(File, Raw);
    if (RuleEnabled("T1"))
      checkLockDiscipline(File, Locks, Raw);
    if (RuleEnabled("E1"))
      checkE1(File, Marked, Raw);

    for (Finding &F : Raw) {
      const char *Tag = nullptr;
      for (const RuleInfo &R : ruleCatalog())
        if (F.RuleId == R.Id)
          Tag = R.Tag;
      if (Tag && trySuppress(Sup, Tag, F.Line))
        continue;
      Result.push_back(std::move(F));
    }
    if (RuleEnabled("SUP"))
      for (Finding &F : SupFindings)
        Result.push_back(std::move(F));
    if (Opts.ReportStale && RuleEnabled("STALE"))
      for (const SuppressionNote &N : Sup.Notes)
        if (!N.Used)
          Result.push_back(
              {"STALE", File.Path, N.CommentLine,
               "suppression '" + N.Tag + "' no longer suppresses anything " +
                   (N.FileWide ? "in this file" : "on the line it covers"),
               "remove the stale `hds-lint` note (or re-point it at the "
               "line that still needs it)"});
  }

  std::sort(Result.begin(), Result.end(),
            [](const Finding &A, const Finding &B) {
              if (A.Path != B.Path)
                return A.Path < B.Path;
              if (A.Line != B.Line)
                return A.Line < B.Line;
              return A.RuleId < B.RuleId;
            });
  // Identical findings can arise when one line trips a rule twice.
  Result.erase(std::unique(Result.begin(), Result.end(),
                           [](const Finding &A, const Finding &B) {
                             return A.Path == B.Path && A.Line == B.Line &&
                                    A.RuleId == B.RuleId &&
                                    A.Message == B.Message;
                           }),
               Result.end());
  return Result;
}

std::string formatFinding(const Finding &F) {
  std::string S = F.Path + ":" + std::to_string(F.Line) + ": [" + F.RuleId +
                  "] " + F.Message;
  if (!F.FixHint.empty())
    S += "\n  fix: " + F.FixHint;
  return S;
}

} // namespace lint
} // namespace hds
