//===- src/lint/SchemaLock.h - W1 wire/metric schema lock ------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// W1 schema lock: the append-only wire/metric schema policy, machine
/// enforced.  The collector snapshots three kinds of schema surface from
/// the lexed tree:
///
///   const wire          the Wire.h ProtocolVersion constant
///   enum <Name>         enums marked `// hds-schema-enum` (frame types,
///                       spec/result payload tags) with resolved values
///   metrics <visitFn>   the ordered metric-id list of each
///                       `visit*Metrics` enumeration function
///
/// The canonical rendering is committed as tests/golden/schema.lock.
/// Comparing the committed lock against a fresh snapshot yields W1
/// findings for any reorder, removal, or renumber of a locked entry;
/// legal appends yield a "lock is stale — regenerate" finding so the
/// committed artifact can never silently lag the tree.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_SCHEMALOCK_H
#define HDS_LINT_SCHEMALOCK_H

#include "lint/Finding.h"
#include "lint/Lexer.h"

#include <string>
#include <string_view>
#include <vector>

namespace hds {
namespace lint {

struct SchemaEntry {
  std::string Name;
  long long Value = 0; ///< enum value, const value, or metric ordinal
};

struct SchemaSection {
  std::string Kind; ///< "const", "enum", or "metrics"
  std::string Name; ///< "wire", "FrameType", "visitRunStatsMetrics", ...
  std::vector<SchemaEntry> Entries;
  std::string Path; ///< defining source file, or the lock file when parsed
  unsigned Line = 0;
};

/// Snapshots the schema surface of \p Files, sorted by (Kind, Name) so
/// the rendering is stable under file moves.
std::vector<SchemaSection> collectSchema(const std::vector<LexedFile> &Files);

/// Renders \p Sections in the canonical lock format.
std::string renderSchemaLock(const std::vector<SchemaSection> &Sections);

/// Parses a lock file previously produced by renderSchemaLock.  Returns
/// false and sets \p Error on malformed input.
bool parseSchemaLock(std::string_view Text, const std::string &LockPath,
                     std::vector<SchemaSection> &Out, std::string &Error);

/// Appends W1 findings for every way \p Current breaks the append-only
/// contract relative to \p Locked (reorder, removal, renumber), plus a
/// regenerate reminder when Current legally extends the lock.
void compareSchema(const std::vector<SchemaSection> &Locked,
                   const std::vector<SchemaSection> &Current,
                   const std::string &LockPath, std::vector<Finding> &Out);

} // namespace lint
} // namespace hds

#endif // HDS_LINT_SCHEMALOCK_H
