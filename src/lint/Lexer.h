//===- src/lint/Lexer.h - Token-level C++ lexer ----------------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small token-level lexer for C++ sources, sufficient for hds_lint's
/// rule engine.  It deliberately does not parse: rules operate on the token
/// stream plus the preprocessor directive and comment side channels.  No
/// libclang dependency — the tool must build anywhere the project builds.
///
/// The lexer understands line/block comments, string and character
/// literals (including raw strings), digraph-free punctuation up to three
/// characters, preprocessor directives with backslash continuations, and
/// identifiers/numbers.  Comments never enter the token stream; they are
/// collected separately so the suppression scanner can inspect them.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_LEXER_H
#define HDS_LINT_LEXER_H

#include <string>
#include <string_view>
#include <vector>

namespace hds {
namespace lint {

/// One lexed token.  Keywords are ordinary Ident tokens; rules match on
/// the text.
struct Token {
  enum Kind {
    Ident,   ///< identifiers and keywords
    Number,  ///< numeric literals (pp-number, loosely)
    String,  ///< string literal, text excludes quotes
    CharLit, ///< character literal
    Punct,   ///< operator / punctuation, longest-match up to 3 chars
  };

  Kind K = Punct;
  std::string Text;
  unsigned Line = 0;
};

/// One preprocessor directive, continuations joined.  Text starts after
/// the '#' and is whitespace-trimmed, e.g. "include <vector>" or
/// "ifndef HDS_FOO_H".
struct Directive {
  unsigned Line = 0;
  std::string Text;
};

/// One comment (either style).  Line is the line the comment starts on.
/// Text excludes the comment markers.
struct Comment {
  unsigned Line = 0;
  unsigned EndLine = 0;
  std::string Text;
};

/// A fully lexed source file.  Path is the display path rules use for
/// scoping (it may be virtual, e.g. in tests).
struct LexedFile {
  std::string Path;
  std::vector<Token> Toks;
  std::vector<Directive> Directives;
  std::vector<Comment> Comments;
  unsigned LineCount = 0;
};

/// Lexes \p Source, attributing findings to \p DisplayPath.
LexedFile lexSource(std::string DisplayPath, std::string_view Source);

} // namespace lint
} // namespace hds

#endif // HDS_LINT_LEXER_H
